// Command chainsim runs one discrete-event simulation of an NFV service
// chain and prints the measurement summary — the low-level tool behind the
// pamctl experiments, useful for exploring custom loads.
//
// Usage:
//
//	chainsim [-chain figure1|long] [-rate 1.0] [-size 1024] [-dur 200ms]
//	         [-process cbr|poisson] [-policy none|pam|naive] [-series]
//
// With -policy, the selection algorithm runs against the overloaded chain
// first and the simulation uses the resulting placement.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chain"
	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func main() {
	chainName := flag.String("chain", "figure1", "chain: figure1 or long")
	rate := flag.Float64("rate", 1.0, "offered load (Gbps)")
	size := flag.Int("size", 1024, "frame size (bytes)")
	dur := flag.Duration("dur", 200*time.Millisecond, "traffic duration (virtual)")
	process := flag.String("process", "cbr", "arrival process: cbr or poisson")
	policy := flag.String("policy", "none", "pre-run selection: none, pam, naive")
	series := flag.Bool("series", false, "print telemetry time series")
	flag.Parse()

	if err := run(*chainName, *rate, *size, *dur, *process, *policy, *series); err != nil {
		fmt.Fprintf(os.Stderr, "chainsim: %v\n", err)
		os.Exit(1)
	}
}

func run(chainName string, rate float64, size int, dur time.Duration, process, policy string, series bool) error {
	p := scenario.DefaultParams()
	var c *chain.Chain
	cat := device.Table1()
	switch chainName {
	case "figure1":
		c = scenario.Figure1Chain()
	case "long":
		c = scenario.LongChain()
		cat = device.ExtendedCatalog()
	default:
		return fmt.Errorf("unknown chain %q", chainName)
	}

	if policy != "none" {
		v := scenario.View(c, p, device.Gbps(1/0.9125))
		v.Catalog = cat
		var sel core.Selector
		switch policy {
		case "pam":
			sel = core.PAM{}
		case "naive":
			sel = core.NaiveCheapestOnCPU{}
		default:
			return fmt.Errorf("unknown policy %q", policy)
		}
		plan, err := sel.Select(v)
		if err != nil {
			return fmt.Errorf("%s: %w", sel.Name(), err)
		}
		fmt.Println(plan)
		c = plan.Result
	}

	cfg := chainsim.Config{
		Chain:         c,
		Catalog:       cat,
		NFOverhead:    p.NFOverhead,
		Link:          pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps},
		DMAEngineGbps: p.DMAEngineGbps.Float(),
		QueueCapacity: p.QueueCapacity,
		Seed:          p.Seed,
		Warmup:        10 * time.Millisecond,
	}
	if series {
		cfg.SampleEvery = 10 * time.Millisecond
	}
	s, err := chainsim.New(cfg)
	if err != nil {
		return err
	}
	proc := traffic.ProcessCBR
	if process == "poisson" {
		proc = traffic.ProcessPoisson
	}
	src, err := traffic.NewGen(rate, traffic.FixedSize(size), proc, 16, 0, dur, p.Seed)
	if err != nil {
		return err
	}
	s.Inject(src)
	res := s.Run(dur + 50*time.Millisecond)

	fmt.Printf("chain:      %s (crossings=%d)\n", c, c.Crossings())
	fmt.Printf("offered:    %.3f Gbps (%d frames of %dB, %s)\n", res.OfferedGbps, res.OfferedPkts, size, process)
	fmt.Printf("delivered:  %.3f Gbps (%d frames, loss %.2f%%)\n", res.DeliveredGbps, res.Delivered, res.LossRate*100)
	fmt.Printf("latency:    %v\n", res.Latency)
	fmt.Printf("device:     NIC util %.3f, CPU util %.3f\n", res.NICUtil, res.CPUUtil)
	if series {
		fmt.Println("telemetry (t, nicUtil, cpuUtil, deliveredGbps):")
		for i := range res.NICSeries {
			fmt.Printf("  %8v %.3f %.3f %.3f\n",
				res.NICSeries[i].T, res.NICSeries[i].V, res.CPUSeries[i].V, res.ThrSeries[i].V)
		}
	}
	return nil
}
