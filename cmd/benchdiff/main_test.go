package main

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func entry(pkg, name string, metrics map[string]float64) benchfmt.Entry {
	return benchfmt.Entry{Name: name, Pkg: pkg, Iterations: 1, Metrics: metrics}
}

func report(es ...benchfmt.Entry) benchfmt.Report {
	return benchfmt.Report{Benchmarks: es}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{
		"frames/s": 100000, "allocs/op": 2, "ns/op": 10000,
	}))
	cur := report(entry("repro", "BenchmarkDataplane", map[string]float64{
		"frames/s": 95000, "allocs/op": 2, "ns/op": 50000, // ns/op is unguarded noise
	}))
	problems, guarded := Diff(base, cur, 0.10, 0)
	if len(problems) != 0 {
		t.Fatalf("problems = %v, want none (5%% drop within 10%%)", problems)
	}
	if guarded != 2 {
		t.Errorf("guarded = %d, want 2 (frames/s + allocs/op; ns/op unguarded)", guarded)
	}
}

func TestDiffCatchesThroughputDrop(t *testing.T) {
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100000}))
	cur := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 89000}))
	problems, _ := Diff(base, cur, 0.10, 0)
	if len(problems) != 1 || problems[0].Metric != "frames/s" {
		t.Fatalf("problems = %v, want one frames/s regression (11%% drop)", problems)
	}
}

func TestDiffCatchesPerChainGbpsDrop(t *testing.T) {
	base := report(entry("repro", "BenchmarkMultiTenantDataplane", map[string]float64{"perchain_Gbps": 2.0}))
	cur := report(entry("repro", "BenchmarkMultiTenantDataplane", map[string]float64{"perchain_Gbps": 1.5}))
	problems, _ := Diff(base, cur, 0.10, 0)
	if len(problems) != 1 || problems[0].Metric != "perchain_Gbps" {
		t.Fatalf("problems = %v, want one perchain_Gbps regression", problems)
	}
}

func TestDiffCatchesAllocRise(t *testing.T) {
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{"allocs/op": 2}))
	cur := report(entry("repro", "BenchmarkDataplane", map[string]float64{"allocs/op": 3}))
	problems, _ := Diff(base, cur, 0.10, 0)
	if len(problems) != 1 || problems[0].Metric != "allocs/op" {
		t.Fatalf("problems = %v, want one allocs/op regression (+50%%)", problems)
	}
}

// A zero-alloc baseline is a hard floor: relative thresholds are
// meaningless on zero, so any new allocation must fail regardless of the
// threshold.
func TestDiffZeroAllocBaselineIsHardFloor(t *testing.T) {
	base := report(entry("repro/internal/emul", "BenchmarkGateContention/workers=16",
		map[string]float64{"allocs/op": 0, "frames/s": 5e7}))
	cur := report(entry("repro/internal/emul", "BenchmarkGateContention/workers=16",
		map[string]float64{"allocs/op": 1, "frames/s": 5e7}))
	problems, _ := Diff(base, cur, 0.50, 0)
	if len(problems) != 1 || !strings.Contains(problems[0].Reason, "zero-alloc") {
		t.Fatalf("problems = %v, want the zero-alloc hard floor to trip", problems)
	}
	// And an unchanged zero passes.
	problems, _ = Diff(base, base, 0.10, 0)
	if len(problems) != 0 {
		t.Fatalf("problems = %v on identical reports", problems)
	}
}

func TestDiffMissingBenchmarkFails(t *testing.T) {
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 1}))
	problems, _ := Diff(base, report(), 0.10, 0)
	if len(problems) != 1 || !strings.Contains(problems[0].Reason, "missing") {
		t.Fatalf("problems = %v, want a missing-benchmark failure", problems)
	}
}

func TestDiffNewBenchmarkTolerated(t *testing.T) {
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100}))
	cur := report(
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100}),
		entry("repro", "BenchmarkBrandNew", map[string]float64{"frames/s": 1}),
	)
	problems, _ := Diff(base, cur, 0.10, 0)
	if len(problems) != 0 {
		t.Fatalf("problems = %v; a benchmark without a baseline must not fail the diff", problems)
	}
}

// An old baseline without pkg qualification must still match the same
// benchmark in a pkg-qualified current run, by bare name.
func TestDiffNameFallbackAcrossArtifactGenerations(t *testing.T) {
	base := report(entry("", "BenchmarkDataplane", map[string]float64{"frames/s": 100000}))
	cur := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 50000}))
	problems, _ := Diff(base, cur, 0.10, 0)
	if len(problems) != 1 || problems[0].Metric != "frames/s" {
		t.Fatalf("problems = %v, want the halved frames/s caught via name fallback", problems)
	}
}

// Fold must reduce a -count=N run to best-of-N per metric: max for
// higher-better metrics, min for lower-better — so one slow sample
// (scheduler noise) cannot fail the ratchet, and one lucky sample in the
// baseline cannot permanently raise the bar for lower-better metrics.
func TestFoldTakesBestOfN(t *testing.T) {
	rep := report(
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 80000, "allocs/op": 25, "ns/op": 12000}),
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 123000, "allocs/op": 26, "ns/op": 8000}),
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 110000, "allocs/op": 25, "ns/op": 9000}),
	)
	folded := Fold(rep)
	if len(folded.Benchmarks) != 1 {
		t.Fatalf("folded to %d entries, want 1", len(folded.Benchmarks))
	}
	m := folded.Benchmarks[0].Metrics
	if m["frames/s"] != 123000 || m["allocs/op"] != 25 || m["ns/op"] != 8000 {
		t.Errorf("folded metrics = %v, want best-of-3 per direction", m)
	}
	// And Diff folds both sides itself: three noisy current runs whose best
	// matches the baseline must pass even though two samples are >10% slow.
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 120000}))
	problems, _ := Diff(base, rep, 0.10, 0)
	if len(problems) != 0 {
		t.Fatalf("problems = %v; best-of-N must absorb slow samples", problems)
	}
}

// The allowed band widens by the baseline's own run-to-run spread: a
// baseline whose three samples swing 40% cannot ratchet a 15% drop of the
// best sample, but a collapse past threshold+spread still fails.
func TestDiffBandWidensByBaselineSpread(t *testing.T) {
	base := report(
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 60000}),
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100000}),
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 90000}),
	) // spread (100k−60k)/100k = 40% → allowed 50%
	within := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 55000})) // −45%
	problems, _ := Diff(base, within, 0.10, 0)
	if len(problems) != 0 {
		t.Fatalf("problems = %v; −45%% is inside threshold+spread = 50%%", problems)
	}
	collapse := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 40000})) // −60%
	problems, _ = Diff(base, collapse, 0.10, 0)
	if len(problems) != 1 {
		t.Fatalf("problems = %v; −60%% must fail even against a noisy baseline", problems)
	}
}

// allocs/op ratchets only when the baseline reproduces it within 2%: a
// run-to-run-varying allocation count is contention dynamics (slow-path
// timer churn), not per-op work, and must be exempt — while a stable count
// keeps its tight bound.
func TestDiffAllocGuardRequiresStableBaseline(t *testing.T) {
	unstable := report(
		entry("repro", "BenchmarkSharedDeviceContention", map[string]float64{"allocs/op": 306}),
		entry("repro", "BenchmarkSharedDeviceContention", map[string]float64{"allocs/op": 321}),
	) // 4.7% spread → unguarded
	cur := report(entry("repro", "BenchmarkSharedDeviceContention", map[string]float64{"allocs/op": 380}))
	problems, guarded := Diff(unstable, cur, 0.10, 0)
	if len(problems) != 0 || guarded != 0 {
		t.Fatalf("problems = %v guarded = %d; unstable alloc counts must not ratchet", problems, guarded)
	}
	stable := report(
		entry("repro", "BenchmarkDataplane", map[string]float64{"allocs/op": 25}),
		entry("repro", "BenchmarkDataplane", map[string]float64{"allocs/op": 25}),
	)
	problems, guarded = Diff(stable, report(entry("repro", "BenchmarkDataplane", map[string]float64{"allocs/op": 30})), 0.10, 0)
	if len(problems) != 1 || guarded != 1 {
		t.Fatalf("problems = %v guarded = %d; a stable alloc count must keep its bound", problems, guarded)
	}
}

// The noise floor covers cross-smoke regime shifts: samples within one
// smoke share a process and CPU-frequency/neighbor regime, so a baseline
// with a deceptively tight recorded spread must still tolerate a moderate
// drop — while a real collapse past threshold+floor fails, and allocs/op
// keeps its tight band (the floor must not widen it, or every alloc count
// would escape its 2%-stability ratchet).
func TestDiffNoiseFloorAbsorbsRegimeShift(t *testing.T) {
	base := report(
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100000, "allocs/op": 10}),
		entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 99000, "allocs/op": 10}),
	) // 1% recorded spread; floored to 12% → allowed 22%
	shifted := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 82000}))
	problems, _ := Diff(base, shifted, 0.10, 0.12)
	if n := len(problems); n != 1 || problems[0].Metric != "allocs/op" {
		t.Fatalf("problems = %v, want only the vanished allocs/op (−18%% frames/s inside 22%% band)", problems)
	}
	collapsed := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 70000, "allocs/op": 10}))
	problems, _ = Diff(base, collapsed, 0.10, 0.12)
	if len(problems) != 1 || problems[0].Metric != "frames/s" {
		t.Fatalf("problems = %v, want −30%% frames/s caught past the 22%% band", problems)
	}
	// allocs/op band stays threshold+spread, unfloored: +15% must still fail.
	risen := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100000, "allocs/op": 11.5}))
	problems, _ = Diff(base, risen, 0.10, 0.12)
	if len(problems) != 1 || problems[0].Metric != "allocs/op" {
		t.Fatalf("problems = %v, want the +15%% allocs/op caught despite the 12%% floor", problems)
	}
}

// A guarded metric that vanishes from the current run (e.g. the smoke lost
// -benchmem) must fail rather than silently stop ratcheting.
func TestDiffMissingMetricFails(t *testing.T) {
	base := report(entry("repro", "BenchmarkDataplane", map[string]float64{"allocs/op": 2, "frames/s": 100}))
	cur := report(entry("repro", "BenchmarkDataplane", map[string]float64{"frames/s": 100}))
	problems, _ := Diff(base, cur, 0.10, 0)
	if len(problems) != 1 || problems[0].Metric != "allocs/op" {
		t.Fatalf("problems = %v, want the vanished allocs/op caught", problems)
	}
}
