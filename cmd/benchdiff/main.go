// Command benchdiff ratchets the perf trajectory: it compares a freshly
// generated BENCH.json against the checked-in baseline and exits non-zero
// when any guarded metric regresses past the threshold (default 10%), so a
// change that quietly slows the dataplane — fewer frames/s, lower per-chain
// goodput, new allocations on the hot path — fails CI instead of landing.
//
//	go run ./cmd/benchdiff -baseline BENCH.json -current bench_new.json
//
// Guarded metrics and their directions are fixed: frames/s, perchain_Gbps,
// agg_Gbps, crossing_Gbps and fairness must not drop; allocs/op must not
// rise (a zero-alloc baseline is a hard floor — any new allocation on a
// zero-alloc path is a regression regardless of threshold, because a
// relative bound on zero is meaningless). ns/op and B/op are reported for
// context but not guarded: wall-time on a shared CI runner is too noisy to
// ratchet, and B/op moves with allocs/op.
//
// Noise control, in two layers (a fixed 10% bound on a single sample of a
// wall-clock emulation flakes hopelessly — see scripts/benchsmoke.sh):
//
//   - The smoke runs every benchmark -count times and the artifact keeps
//     all samples; both sides of the diff are folded best-of-N first, and
//     each metric's allowed band is then widened by the baseline's own
//     observed run-to-run spread. A metric the baseline itself shows
//     swinging 40% between runs cannot honestly be ratcheted at 10% — but
//     the spread travels with the artifact, so the bound is exactly as
//     tight as that benchmark's reproducibility allows, and a real
//     collapse (the lock-free fast path reverting to the mutex, 6×) still
//     fails by an order of magnitude. For throughput metrics the spread is
//     additionally floored at -minnoise (default 12%): samples within one
//     smoke share a process and a CPU-frequency/neighbor regime, so a
//     tight recorded spread can understate the shift between two smokes
//     run minutes apart on a shared runner. The floor does not apply to
//     allocs/op, whose guard depends on the raw spread being tiny.
//   - allocs/op ratchets only when the baseline's samples agree within 2%:
//     a run-to-run-stable allocation count is per-op work (the thing a
//     ratchet should freeze), while a varying one is contention dynamics —
//     timer churn in the gates' slow path, proportional to how often the
//     scheduler made workers collide — and ratcheting it ratchets the
//     scheduler.
//
// Baselines are machine-relative: after an intentional perf change (or a
// runner change), refresh with the one-liner in README §Perf trajectory
// and commit the new BENCH.json alongside the change that justifies it.
// Benchmarks present only in the current run are reported and tolerated
// (new benchmarks need a baseline before they ratchet); benchmarks present
// only in the baseline fail the diff — a deleted benchmark must be deleted
// from the baseline too, deliberately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/benchfmt"
)

// higherBetter metrics must not drop below baseline×(1−threshold).
var higherBetter = map[string]bool{
	"frames/s":      true,
	"perchain_Gbps": true,
	"agg_Gbps":      true,
	"crossing_Gbps": true,
	"fairness":      true,
}

// lowerBetter metrics must not rise above baseline×(1+threshold); a zero
// baseline is a hard floor.
var lowerBetter = map[string]bool{
	"allocs/op": true,
}

// Problem is one detected regression (or structural mismatch).
type Problem struct {
	Bench  string
	Metric string
	Base   float64
	Cur    float64
	Reason string
}

func (p Problem) String() string {
	if p.Metric == "" {
		return fmt.Sprintf("%s: %s", p.Bench, p.Reason)
	}
	return fmt.Sprintf("%s %s: baseline %g, current %g (%s)", p.Bench, p.Metric, p.Base, p.Cur, p.Reason)
}

// Fold merges repeated runs of the same benchmark (a -count=N smoke) into
// one entry per key, taking each guarded metric's best observation — max
// for higher-better, min for lower-better (and min for unguarded metrics,
// which are report-only). Best-of-N on both sides of the diff is the noise
// control that makes a 10% ratchet workable on a shared runner: scheduler
// noise only ever makes a run look slower, so comparing best against best
// cancels it instead of ratcheting against one lucky (or unlucky) sample.
func Fold(rep benchfmt.Report) benchfmt.Report {
	var out benchfmt.Report
	idx := make(map[string]int)
	for _, e := range rep.Benchmarks {
		i, seen := idx[e.Key()]
		if !seen {
			idx[e.Key()] = len(out.Benchmarks)
			c := e
			c.Metrics = make(map[string]float64, len(e.Metrics))
			for m, v := range e.Metrics {
				c.Metrics[m] = v
			}
			out.Benchmarks = append(out.Benchmarks, c)
			continue
		}
		got := out.Benchmarks[i].Metrics
		for m, v := range e.Metrics {
			prev, have := got[m]
			if !have || (higherBetter[m] && v > prev) || (!higherBetter[m] && v < prev) {
				got[m] = v
			}
		}
	}
	return out
}

// allocStableSpread is the agreement bound for ratcheting allocs/op: only
// an allocation count the baseline reproduces within this relative spread
// is per-op work worth freezing.
const allocStableSpread = 0.02

// spreads computes each (benchmark, metric)'s relative run-to-run spread,
// (max−min)/max, across the report's repeated samples. A single sample has
// spread 0.
func spreads(rep benchfmt.Report) map[string]float64 {
	lo := map[string]float64{}
	hi := map[string]float64{}
	for _, e := range rep.Benchmarks {
		for m, v := range e.Metrics {
			k := e.Key() + "\x00" + m
			if prev, ok := lo[k]; !ok || v < prev {
				lo[k] = v
			}
			if prev, ok := hi[k]; !ok || v > prev {
				hi[k] = v
			}
		}
	}
	out := make(map[string]float64, len(lo))
	for k, h := range hi {
		if h > 0 {
			out[k] = (h - lo[k]) / h
		}
	}
	return out
}

// Diff compares the current report against the baseline and returns every
// regression past the allowed band, plus how many (benchmark, metric)
// pairs were actually guarded — a caller can refuse a diff that guarded
// nothing. Both reports are folded to best-of-N first; each higher-better
// metric's band is threshold plus the larger of the baseline's observed
// spread and minNoise (the cross-smoke regime floor); allocs/op uses the
// raw spread both for its band and for its stability gate.
func Diff(base, cur benchfmt.Report, threshold, minNoise float64) (problems []Problem, guarded int) {
	noise := spreads(base)
	base, cur = Fold(base), Fold(cur)
	byKey := make(map[string]benchfmt.Entry, len(cur.Benchmarks))
	byName := make(map[string]benchfmt.Entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		byKey[e.Key()] = e
		byName[e.Name] = e
	}
	for _, b := range base.Benchmarks {
		c, ok := byKey[b.Key()]
		if !ok {
			// Tolerate a pkg-qualification mismatch between artifact
			// generations, but never an outright missing benchmark.
			if c, ok = byName[b.Name]; !ok {
				problems = append(problems, Problem{Bench: b.Key(),
					Reason: "present in baseline but missing from current run (delete it from the baseline if intentional)"})
				continue
			}
		}
		metrics := make([]string, 0, len(b.Metrics))
		for m := range b.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			bv := b.Metrics[m]
			cv, have := c.Metrics[m]
			spread := noise[b.Key()+"\x00"+m]
			switch {
			case higherBetter[m]:
				guarded++
				allowed := threshold + max(spread, minNoise)
				if !have {
					problems = append(problems, Problem{Bench: b.Key(), Metric: m, Base: bv, Cur: 0,
						Reason: "metric missing from current run"})
				} else if cv < bv*(1-allowed) {
					problems = append(problems, Problem{Bench: b.Key(), Metric: m, Base: bv, Cur: cv,
						Reason: fmt.Sprintf("dropped %.1f%% (> %.0f%% allowed = threshold + noise band)", (1-cv/bv)*100, allowed*100)})
				}
			case lowerBetter[m]:
				if spread > allocStableSpread {
					continue // contention-dynamics noise, not per-op work
				}
				guarded++
				allowed := threshold + spread
				if !have {
					problems = append(problems, Problem{Bench: b.Key(), Metric: m, Base: bv, Cur: 0,
						Reason: "metric missing from current run (run the smoke with -benchmem)"})
				} else if bv == 0 && cv > 0 {
					problems = append(problems, Problem{Bench: b.Key(), Metric: m, Base: bv, Cur: cv,
						Reason: "allocation on a zero-alloc path"})
				} else if bv > 0 && cv > bv*(1+allowed) {
					problems = append(problems, Problem{Bench: b.Key(), Metric: m, Base: bv, Cur: cv,
						Reason: fmt.Sprintf("rose %.1f%% (> %.0f%% allowed = threshold + baseline spread)", (cv/bv-1)*100, allowed*100)})
				}
			}
		}
	}
	return problems, guarded
}

func load(path string) (benchfmt.Report, error) {
	var rep benchfmt.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH.json", "checked-in baseline artifact")
	current := flag.String("current", "", "freshly generated artifact to compare (required)")
	threshold := flag.Float64("threshold", 0.10, "allowed relative regression per guarded metric")
	minNoise := flag.Float64("minnoise", 0.12, "floor on the per-metric noise band for throughput metrics (cross-smoke regime shifts)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}

	problems, guarded := Diff(base, cur, *threshold, *minNoise)
	base, cur = Fold(base), Fold(cur) // dedup for the messages below; Diff folds internally
	if guarded == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no guarded metrics in the baseline — refusing a vacuous pass")
		os.Exit(2)
	}

	known := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		known[b.Key()], known[b.Name] = true, true
	}
	for _, c := range cur.Benchmarks {
		if !known[c.Key()] && !known[c.Name] {
			fmt.Printf("note: %s has no baseline yet (refresh BENCH.json to start ratcheting it)\n", c.Key())
		}
	}

	fmt.Printf("benchdiff: %d guarded metric(s) across %d baseline benchmark(s), threshold %.0f%%\n",
		guarded, len(base.Benchmarks), *threshold*100)
	if len(problems) == 0 {
		fmt.Println("benchdiff: no regressions")
		return
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", p)
	}
	os.Exit(1)
}
