package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDataplane/batch=8-8         	  100000	     10523 ns/op	 95012 frames/s	     144 B/op	       2 allocs/op
BenchmarkPCIeDMAContention/chains=4-8 	       1	 363770313 ns/op	         2.041 agg_Gbps	         4.083 crossing_Gbps	         0.857 fairness
BenchmarkSharedDeviceContention/elems=16-8 	       1	 201000000 ns/op	         3.1 agg_Gbps	         0.92 fairness
PASS
ok  	repro	1.425s
`

func TestParseExtractsMetrics(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3\n%+v", len(rep.Benchmarks), rep)
	}
	dp := rep.Benchmarks[0]
	if dp.Name != "BenchmarkDataplane/batch=8" {
		t.Errorf("name = %q; the GOMAXPROCS suffix must be stripped", dp.Name)
	}
	if dp.Iterations != 100000 {
		t.Errorf("iterations = %d, want 100000", dp.Iterations)
	}
	if dp.Metrics["frames/s"] != 95012 || dp.Metrics["allocs/op"] != 2 {
		t.Errorf("dataplane metrics = %v", dp.Metrics)
	}
	dma := rep.Benchmarks[1]
	if dma.Metrics["crossing_Gbps"] != 4.083 || dma.Metrics["fairness"] != 0.857 {
		t.Errorf("dma metrics = %v", dma.Metrics)
	}
	if _, ok := rep.Benchmarks[2].Metrics["agg_Gbps"]; !ok {
		t.Errorf("shared-device metrics = %v", rep.Benchmarks[2].Metrics)
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok  \trepro\t1.2s\nrandom log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}
