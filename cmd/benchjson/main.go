// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact, so the perf trajectory — frames/s, aggregate Gbps,
// crossing Gbps, fairness, allocs/op — can be compared across commits
// without scraping logs. CI pipes the bench smoke through it and uploads
// the result as BENCH.json:
//
//	go test -run xxx -bench=. -benchtime=1x -benchmem . | go run ./cmd/benchjson -o BENCH.json
//
// Every benchmark line becomes one entry: the benchmark's name (GOMAXPROCS
// suffix stripped), its iteration count, and a metrics map keyed by unit
// (ns/op, B/op, allocs/op, plus any custom b.ReportMetric units). Non-bench
// lines (the goos/goarch preamble, PASS, logs) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact's top-level shape.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLineRE matches "BenchmarkName-8   	 123	 456 ns/op	 7.8 unit ...".
var benchLineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// Parse reads `go test -bench` output and extracts every benchmark entry.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		// The tail alternates value/unit pairs: "123 ns/op 0.5 fairness".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a metric tail (e.g. a stray log line)
			}
			e.Metrics[fields[i+1]] = v
		}
		if len(e.Metrics) == 0 {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return rep, sc.Err()
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}
