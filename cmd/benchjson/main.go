// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact, so the perf trajectory — frames/s, aggregate Gbps,
// crossing Gbps, fairness, allocs/op — can be compared across commits
// without scraping logs. CI pipes the bench smoke through it, uploads the
// result as BENCH.json, and feeds it to cmd/benchdiff against the
// checked-in baseline:
//
//	go test -run xxx -bench=. -benchtime=1x -benchmem . | go run ./cmd/benchjson -o BENCH.json
//
// The parsing lives in internal/benchfmt (shared with benchdiff): every
// benchmark line becomes one entry with the package it ran in, its
// iteration count, and a metrics map keyed by unit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}
