// escapecheck fails the build when a //pam:hotpath function gains a heap
// escape. It is the dynamic complement to pamlint's hotpath analyzer: the
// analyzer rejects constructs that always allocate (make, literals, fmt),
// while escapecheck asks the compiler's own escape analysis whether any
// value in a hot-path body was moved to the heap — catching escapes the
// syntax tree cannot see, like a pointer leaking through an interface.
//
// It runs `go build -gcflags=-m` over the requested packages (default
// ./...) and correlates every "escapes to heap" / "moved to heap"
// diagnostic against the line spans of //pam:hotpath functions. The build
// cache replays compiler diagnostics, so repeat runs are cheap. A reasoned
// per-line escape hatch exists, mirroring pamlint's:
//
//	buf := new(ring) //pam:escape-ok one-time prologue allocation
//
// Exit status: 0 clean, 1 findings, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: escapecheck [packages]\n\nFails if a //pam:hotpath function has a heap escape per go build -gcflags=-m.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	out, err := buildEscapeOutput(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapecheck: %v\n%s", err, out)
		os.Exit(2)
	}

	funcs, allowed, err := scanModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapecheck: %v\n", err)
		os.Exit(2)
	}

	findings := correlate(parseEscapes(out), funcs, allowed)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "escapecheck: %d hot-path heap escape(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("escapecheck: %d hot-path function(s) allocation-clean\n", len(funcs))
}

// buildEscapeOutput compiles the patterns with escape-analysis diagnostics
// on, returning the combined output. Binaries from main packages land in a
// throwaway directory so the module root stays clean.
func buildEscapeOutput(patterns []string) (string, error) {
	tmp, err := os.MkdirTemp("", "escapecheck")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)
	args := append([]string{"build", "-gcflags=-m", "-o", tmp}, patterns...)
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil && strings.Contains(string(out), "no main packages") {
		// -o rejects pattern sets with no main package; without it the
		// build compiles the packages and writes nothing.
		args = append([]string{"build", "-gcflags=-m"}, patterns...)
		out, err = exec.Command("go", args...).CombinedOutput()
	}
	return string(out), err
}

// escape is one compiler escape diagnostic, at a module-root-relative
// position.
type escape struct {
	file      string
	line, col int
	msg       string
}

// parseEscapes extracts the heap-escape diagnostics from -gcflags=-m
// output, dropping the rest of the compiler's chatter (inlining decisions,
// "leaking param" notes, "# package" headers).
func parseEscapes(out string) []escape {
	var escapes []escape
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// path.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		escapes = append(escapes, escape{
			file: filepath.ToSlash(parts[0]),
			line: ln,
			col:  col,
			msg:  strings.TrimSpace(parts[3]),
		})
	}
	return escapes
}

// hotFunc is the line span of one //pam:hotpath function.
type hotFunc struct {
	name       string
	file       string
	start, end int
}

// skipDirs mirrors the loader's exclusions: fixtures and VCS internals are
// not part of the checked tree.
var skipDirs = map[string]bool{".git": true, ".github": true, ".claude": true, "testdata": true, "vendor": true}

// scanModule parses every non-test .go file under root, collecting the
// spans of //pam:hotpath functions and the lines carrying //pam:escape-ok.
// Files are keyed by root-relative slash paths, matching the compiler's
// diagnostic positions when escapecheck runs at the module root.
func scanModule(root string) ([]hotFunc, map[string]map[int]bool, error) {
	var funcs []hotFunc
	allowed := make(map[string]map[int]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fns, ok := scanFile(fset, filepath.ToSlash(rel), src)
		funcs = append(funcs, fns...)
		if len(ok) > 0 {
			m := allowed[filepath.ToSlash(rel)]
			if m == nil {
				m = make(map[int]bool)
				allowed[filepath.ToSlash(rel)] = m
			}
			for _, line := range ok {
				m[line] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return funcs, allowed, nil
}

// scanFile extracts one file's hot-path spans and escape-ok lines. Parse
// errors are reported as a zero result rather than failing the run: a file
// the compiler accepted but the parser cannot read would have failed the
// build first.
func scanFile(fset *token.FileSet, rel string, src []byte) ([]hotFunc, []int) {
	f, err := parser.ParseFile(fset, rel, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, nil
	}
	var funcs []hotFunc
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !analysis.FuncDirective(fd, "hotpath") {
			continue
		}
		funcs = append(funcs, hotFunc{
			name:  funcName(fd),
			file:  rel,
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	var okLines []int
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, "//pam:escape-ok")
			if found && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				okLines = append(okLines, fset.Position(c.Pos()).Line)
			}
		}
	}
	return funcs, okLines
}

// funcName renders a FuncDecl as it reads in a diagnostic: method
// receivers keep their type.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeRecvType(&b, fd.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, t ast.Expr) {
	switch t := t.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr:
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		b.WriteString("?")
	}
}

// correlate reports every escape that lands inside a hot-path span and is
// not excused by an //pam:escape-ok on its line or the line above. Results
// are position-sorted and deduplicated (the compiler can emit the same
// diagnostic once per build configuration).
func correlate(escapes []escape, funcs []hotFunc, allowed map[string]map[int]bool) []string {
	spans := make(map[string][]hotFunc)
	for _, fn := range funcs {
		spans[fn.file] = append(spans[fn.file], fn)
	}
	seen := make(map[string]bool)
	var findings []string
	for _, e := range escapes {
		if allowed[e.file][e.line] || allowed[e.file][e.line-1] {
			continue
		}
		for _, fn := range spans[e.file] {
			if e.line < fn.start || e.line > fn.end {
				continue
			}
			f := fmt.Sprintf("%s:%d:%d: hot path %s: %s", e.file, e.line, e.col, fn.name, e.msg)
			if !seen[f] {
				seen[f] = true
				findings = append(findings, f)
			}
			break
		}
	}
	sort.Strings(findings)
	return findings
}
