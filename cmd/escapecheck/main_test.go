package main

import (
	"go/token"
	"strings"
	"testing"
)

// escapecheck's parse and correlate stages are pure functions over compiler
// output and source text, so they are tested here without invoking go
// build — the real -gcflags=-m run happens in scripts/benchsmoke.sh and CI.

const sampleOutput = `# repro/internal/fake
internal/fake/fake.go:10:6: can inline helper
internal/fake/fake.go:14:13: inlining call to helper
internal/fake/fake.go:20:9: make([]byte, n) escapes to heap
internal/fake/fake.go:25:2: moved to heap: counter
internal/fake/fake.go:31:10: leaking param: dst to result ~r0 level=0
internal/fake/fake.go:40:12: &job{} escapes to heap
other/pkg.go:7:3: composite literal escapes to heap
not a diagnostic line
bad:line:numbers: escapes to heap
`

func TestParseEscapes(t *testing.T) {
	got := parseEscapes(sampleOutput)
	want := []escape{
		{file: "internal/fake/fake.go", line: 20, col: 9, msg: "make([]byte, n) escapes to heap"},
		{file: "internal/fake/fake.go", line: 25, col: 2, msg: "moved to heap: counter"},
		{file: "internal/fake/fake.go", line: 40, col: 12, msg: "&job{} escapes to heap"},
		{file: "other/pkg.go", line: 7, col: 3, msg: "composite literal escapes to heap"},
	}
	if len(got) != len(want) {
		t.Fatalf("parseEscapes: got %d escapes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("escape %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

const sampleSource = `package fake

// hot is a checked hot path spanning lines 4-9.
//
//pam:hotpath
func hot(n int) []byte {
	b := make([]byte, n)
	return b
}

// cold allocates freely: not annotated.
func cold(n int) []byte {
	return make([]byte, n)
}

// excused is hot but carries a reasoned allow.
//
//pam:hotpath
func (w *worker) excused(n int) []byte {
	b := make([]byte, n) //pam:escape-ok prologue: one-time buffer
	return b
}

type worker struct{}
`

func TestScanFileAndCorrelate(t *testing.T) {
	fset := token.NewFileSet()
	funcs, okLines := scanFile(fset, "internal/fake/fake.go", []byte(sampleSource))

	if len(funcs) != 2 {
		t.Fatalf("scanFile: got %d hot funcs, want 2: %+v", len(funcs), funcs)
	}
	if funcs[0].name != "hot" || funcs[1].name != "(*worker).excused" {
		t.Errorf("hot func names: got %q, %q", funcs[0].name, funcs[1].name)
	}
	if len(okLines) != 1 || okLines[0] != 20 {
		t.Errorf("escape-ok lines: got %v, want [20]", okLines)
	}

	allowed := map[string]map[int]bool{"internal/fake/fake.go": {20: true}}
	escapes := []escape{
		// inside hot: flagged
		{file: "internal/fake/fake.go", line: 7, col: 11, msg: "make([]byte, n) escapes to heap"},
		// inside cold: not a hot path, silent
		{file: "internal/fake/fake.go", line: 13, col: 9, msg: "make([]byte, n) escapes to heap"},
		// inside excused, on the escape-ok line: silent
		{file: "internal/fake/fake.go", line: 20, col: 11, msg: "make([]byte, n) escapes to heap"},
		// duplicate of the first (compiler re-emit): deduplicated
		{file: "internal/fake/fake.go", line: 7, col: 11, msg: "make([]byte, n) escapes to heap"},
		// different file entirely: silent
		{file: "other/pkg.go", line: 7, col: 3, msg: "composite literal escapes to heap"},
	}
	got := correlate(escapes, funcs, allowed)
	if len(got) != 1 {
		t.Fatalf("correlate: got %d findings, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0], "hot path hot:") || !strings.Contains(got[0], "fake.go:7:11") {
		t.Errorf("finding = %q, want hot-path make escape at fake.go:7:11", got[0])
	}
}

func TestCorrelateAllowsLineAbove(t *testing.T) {
	funcs := []hotFunc{{name: "f", file: "a.go", start: 1, end: 10}}
	allowed := map[string]map[int]bool{"a.go": {4: true}}
	escapes := []escape{{file: "a.go", line: 5, col: 1, msg: "moved to heap: x"}}
	if got := correlate(escapes, funcs, allowed); len(got) != 0 {
		t.Errorf("escape under a line-above //pam:escape-ok should be silent, got %v", got)
	}
}
