// Command docscheck guards the repository's documentation from rot. It
// fails (exit 1) when:
//
//   - a markdown file contains an intra-repo link whose target does not
//     exist (links into DESIGN.md and between the top-level docs are load
//     bearing: several packages cite DESIGN.md sections from godoc),
//   - an internal package has no package-level godoc comment,
//   - a directory under examples/ is missing from README.md's example
//     table (every runnable walkthrough must stay discoverable), or
//   - a scenario.Params field has no provenance entry in DESIGN.md §5
//     (every calibrated default must say where its number comes from).
//
// External links (http/https/mailto) and pure-anchor links are not checked.
// CI runs it as the docs job; run it locally with `go run ./cmd/docscheck`.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// linkRE matches markdown link targets: [text](target). Reference-style
// links and autolinks are out of scope — the repo uses inline links.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	var problems []string

	problems = append(problems, checkMarkdownLinks(".")...)
	problems = append(problems, checkPackageDocs("./internal")...)
	problems = append(problems, checkExamplesIndexed("examples", "README.md")...)
	problems = append(problems, checkParamsProvenance("internal/scenario/scenario.go", "DESIGN.md")...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links, package godoc, example table and §5 provenance OK")
}

// checkMarkdownLinks verifies every relative link target in every tracked
// markdown file resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if target == "" ||
				strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an anchor suffix; the file must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

// checkExamplesIndexed verifies every example directory is mentioned in the
// README (as "examples/<name>"), keeping the example table complete.
func checkExamplesIndexed(examplesDir, readme string) []string {
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", examplesDir, err)}
	}
	data, err := os.ReadFile(readme)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", readme, err)}
	}
	var problems []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ref := examplesDir + "/" + e.Name()
		if !strings.Contains(string(data), ref) {
			problems = append(problems, fmt.Sprintf("%s: %q missing from the example table", readme, ref))
		}
	}
	return problems
}

// checkParamsProvenance verifies every field of scenario.Params has a
// provenance entry in DESIGN.md's §5 calibration section: each field name
// must appear backtick-quoted (`FieldName`) between the "## §5" heading and
// the next top-level heading. A calibrated default without provenance is
// how magic numbers rot. The rule's mechanics live in internal/analysis
// (shared with pamlint's provenance analyzer) so the docs job and the lint
// job cannot drift apart.
func checkParamsProvenance(scenarioFile, designFile string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, scenarioFile, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("parsing %s: %v", scenarioFile, err)}
	}
	fields := analysis.ParamsFieldNames(f)
	if len(fields) == 0 {
		return []string{fmt.Sprintf("%s: no exported scenario.Params fields found", scenarioFile)}
	}
	data, err := os.ReadFile(designFile)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", designFile, err)}
	}
	section, ok := analysis.ProvenanceSection(data)
	if !ok {
		return []string{fmt.Sprintf("%s: no \"## §5\" calibration section", designFile)}
	}
	return analysis.MissingProvenance(section, fields, designFile)
}

// checkPackageDocs verifies each package directory under root has a
// package-level doc comment on at least one non-test file.
func checkPackageDocs(root string) []string {
	var problems []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo, hasDoc := false, false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			hasGo = true
			f, err := parser.ParseFile(fset, filepath.Join(path, name), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if hasGo && !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package has no package-level godoc comment", path))
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}
