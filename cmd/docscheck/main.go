// Command docscheck guards the repository's documentation from rot. It
// fails (exit 1) when:
//
//   - a markdown file contains an intra-repo link whose target does not
//     exist (links into DESIGN.md and between the top-level docs are load
//     bearing: several packages cite DESIGN.md sections from godoc),
//   - an internal package has no package-level godoc comment, or
//   - a directory under examples/ is missing from README.md's example
//     table (every runnable walkthrough must stay discoverable).
//
// External links (http/https/mailto) and pure-anchor links are not checked.
// CI runs it as the docs job; run it locally with `go run ./cmd/docscheck`.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches markdown link targets: [text](target). Reference-style
// links and autolinks are out of scope — the repo uses inline links.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	var problems []string

	problems = append(problems, checkMarkdownLinks(".")...)
	problems = append(problems, checkPackageDocs("./internal")...)
	problems = append(problems, checkExamplesIndexed("examples", "README.md")...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: markdown links, package godoc and example table OK")
}

// checkMarkdownLinks verifies every relative link target in every tracked
// markdown file resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if target == "" ||
				strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an anchor suffix; the file must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}

// checkExamplesIndexed verifies every example directory is mentioned in the
// README (as "examples/<name>"), keeping the example table complete.
func checkExamplesIndexed(examplesDir, readme string) []string {
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", examplesDir, err)}
	}
	data, err := os.ReadFile(readme)
	if err != nil {
		return []string{fmt.Sprintf("reading %s: %v", readme, err)}
	}
	var problems []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ref := examplesDir + "/" + e.Name()
		if !strings.Contains(string(data), ref) {
			problems = append(problems, fmt.Sprintf("%s: %q missing from the example table", readme, ref))
		}
	}
	return problems
}

// checkPackageDocs verifies each package directory under root has a
// package-level doc comment on at least one non-test file.
func checkPackageDocs(root string) []string {
	var problems []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo, hasDoc := false, false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			hasGo = true
			f, err := parser.ParseFile(fset, filepath.Join(path, name), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if hasGo && !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package has no package-level godoc comment", path))
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}
