// Command pamlint is the repo's invariant multichecker: it loads the whole
// module (or the package patterns given as arguments), runs every analyzer
// in internal/analysis — hotpath, atomicfield, unitcheck, provenance — and
// exits non-zero when any invariant of the lock-free dataplane is violated.
// CI runs it in the lint job; run it locally with `go run ./cmd/pamlint
// ./...`. See DESIGN.md §6 for what each analyzer enforces and the
// annotation vocabulary (//pam:hotpath, //pam:slowpath, //pam:unit, ...)
// the checks are driven by.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pamlint [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo's invariant analyzers over the module (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := analysis.LoadModule(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pamlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pamlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", rel(pos.String()), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pamlint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("pamlint: %d package(s) clean\n", len(prog.Packages))
}

// rel trims the current working directory prefix from a position string so
// diagnostics print repo-relative paths.
func rel(pos string) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos
	}
	if len(pos) > len(wd)+1 && pos[:len(wd)] == wd {
		return pos[len(wd)+1:]
	}
	return pos
}
