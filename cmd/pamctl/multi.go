package main

// The multi command: N tenants' service chains share one SmartNIC+CPU
// pair. The chainsim engine evaluates the fluid model deterministically —
// per-tenant and aggregate utilizations, then the Multi-PAM plan for the
// overloaded aggregate; the emul engine runs the full live episode on the
// multi-chain emulator, where the shared per-device capacity gates make
// the summed overload physical: background tenants' delivered throughput
// collapses under the ramping tenant's demand, the detector fires on the
// measured aggregate, and a real chain-scoped migration restores the
// backgrounds to their calm-phase baseline.

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
)

func runMulti(engine string, p scenario.Params) error {
	switch engine {
	case "chainsim":
		return multiModel(p)
	case "emul":
		return multiEmul(p)
	}
	return fmt.Errorf("unknown engine %q (try: chainsim, emul)", engine)
}

// aggregateNICUtil sums SmartNIC utilization across the chains at the given
// per-chain throughputs.
func aggregateNICUtil(chains []*chain.Chain, thr []float64) (float64, error) {
	nic := device.Device{Kind: device.KindSmartNIC}
	cat := device.Table1()
	var u float64
	for i, c := range chains {
		ui, err := nic.Utilization(cat, c.TypesOn(device.KindSmartNIC), device.MeasuredGbps(thr[i]))
		if err != nil {
			return 0, err
		}
		u += ui
	}
	return u, nil
}

// multiModel walks the multi-tenant decision through the fluid model:
// deterministic, instant, no dataplane.
func multiModel(p scenario.Params) error {
	tenants := scenario.DefaultTenants(p)
	fmt.Println("engine: chainsim (fluid model, deterministic decision)")
	fmt.Println("tenants sharing one SmartNIC+CPU:")

	chains := make([]*chain.Chain, len(tenants))
	calm := make([]float64, len(tenants))
	hot := make([]float64, len(tenants))
	loads := make([]core.Load, len(tenants))
	for i, t := range tenants {
		chains[i] = t.Chain
		calm[i] = t.Phases[0].RateGbps
		hot[i] = t.Phases[len(t.Phases)-1].RateGbps
		loads[i] = core.Load{Chain: t.Chain, Throughput: device.MeasuredGbps(hot[i])}
		fmt.Printf("  %-12s %v  (%.1f Gbps calm, %.1f Gbps peak)\n", t.Chain.Name+":", t.Chain, calm[i], hot[i])
	}

	uCalm, err := aggregateNICUtil(chains, calm)
	if err != nil {
		return err
	}
	uHot, err := aggregateNICUtil(chains, hot)
	if err != nil {
		return err
	}
	fmt.Printf("\naggregate NIC utilization: %.2f calm -> %.2f at peak (threshold %.2f)\n",
		uCalm, uHot, core.DefaultOverloadThreshold)
	fmt.Println("every tenant is individually feasible; only the sum overloads the NIC")

	nicDev, cpuDev := scenario.Devices(p)
	plan, err := core.MultiPAM{}.SelectMulti(core.MultiView{
		Loads: loads, Catalog: device.Table1(), NIC: nicDev, CPU: cpuDev,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n%v\n", plan)
	uAfter, err := aggregateNICUtil(plan.Results, hot)
	if err != nil {
		return err
	}
	fmt.Printf("aggregate NIC utilization after plan: %.2f\n", uAfter)
	for i, res := range plan.Results {
		fmt.Printf("  %-12s %v\n", tenants[i].Chain.Name+":", res)
	}
	fmt.Println("\n(the same decision against the live dataplane: pamctl -engine emul multi)")
	return nil
}

// multiEmul runs the live multi-tenant episode on the multi-chain emulator.
func multiEmul(p scenario.Params) error {
	lp := scenario.DefaultLiveParams()
	tenants := scenario.DefaultTenants(p)
	fmt.Printf("engine: emul (wall clock, scale %.0fx, batch %d, %d workers)\n",
		lp.Scale, lp.BatchSize, lp.Workers)
	fmt.Println("tenants sharing one SmartNIC+CPU:")
	for _, t := range tenants {
		fmt.Printf("  %-12s %v\n", t.Chain.Name+":", t.Chain)
	}
	fmt.Printf("background tenants steady at %.1f Gbps; %q ramps %.1f -> %.1f Gbps...\n\n",
		scenario.MultiBackgroundGbps, tenants[len(tenants)-1].Chain.Name,
		scenario.MultiCalmGbps, scenario.MultiOverloadGbps)

	res, err := scenario.RunLiveMultiTenant(p, lp, tenants, core.MultiPAM{})
	if err != nil {
		return err
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	cols := []string{"t", "nic util", "cpu util"}
	for _, name := range res.Tenants {
		cols = append(cols, name+" Gbps")
	}
	cols = append(cols, "event")
	tbl := report.NewTable("\nmeasured telemetry (per sampling window, catalog units)", cols...)
	nicU := make([]float64, 0, len(res.Samples))
	for _, s := range res.Samples {
		marker := ""
		for _, e := range res.Events {
			if e.Kind == orchestrator.EventMigrated && e.At > s.At-s.Window && e.At <= s.At {
				marker = "<- Multi-PAM migrates " + e.Plan.Steps[0].Step.Element
			}
		}
		row := []any{s.At.Round(time.Millisecond), s.NIC.Utilization, s.CPU.Utilization}
		for _, cl := range s.Chains {
			row = append(row, cl.DeliveredGbps)
		}
		row = append(row, marker)
		tbl.AddRowf(row...)
		nicU = append(nicU, s.NIC.Utilization)
	}
	fmt.Println(tbl)
	fmt.Printf("aggregate NIC utilization over time: %s\n", report.Spark(nicU))
	fmt.Println("final placements:")
	for i, pl := range res.Placements {
		fmt.Printf("  %-12s %v\n", res.Tenants[i]+":", pl)
	}
	fmt.Println("per-tenant delivered: calm baseline -> during overload -> after push-aside:")
	for i, name := range res.Tenants {
		fmt.Printf("  %-12s %.2f -> %.2f -> %.2f Gbps\n",
			name+":", res.BaselineGbps[i], res.PreGbps[i], res.PostGbps[i])
	}
	fmt.Printf("frames: offered %d, delivered %d, dropped %d; %d migration(s) in %v\n",
		res.Final.Offered, res.Final.Delivered, res.Final.Dropped, res.Migrations,
		res.Elapsed.Round(time.Millisecond))
	return nil
}
