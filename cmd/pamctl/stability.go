package main

// The stability command: the control-loop stability harness. A stochastic
// hover workload keeps the shared SmartNIC fluctuating around the overload
// threshold while the live control plane runs Multi-PAM with the
// offload-reclaim policy; the harness then scans the migration history for
// ping-pong (an element pushed aside and reclaimed back within the bounce
// horizon) and reports each episode's time-to-relief and every tenant's
// delivered-throughput and latency percentiles. The command exits non-zero
// when the loop ping-pongs or never fires — so a seed sweep in CI fails
// loudly if a detector or reclaim change destabilizes the loop.

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
)

func runStability(engine string, p scenario.Params) error {
	if engine != "emul" {
		return fmt.Errorf("the stability harness measures a live dataplane; run it with -engine emul")
	}
	lp := scenario.DefaultLiveParams()
	cfg := scenario.StabilityConfig{}
	fmt.Printf("engine: emul (wall clock, scale %.0fx); seed %d\n", lp.Scale, p.Seed)
	fmt.Printf("hover: %.2f±%.2f Gbps, dwell ~%v; reclaim after %d calm windows; bounce horizon %v\n\n",
		scenario.StabilityHoverCenterGbps, scenario.StabilityHoverBandGbps,
		scenario.StabilityHoverDwell, scenario.StabilityReclaimAfter, scenario.StabilityPingPongHorizon)

	res, err := scenario.RunLiveStability(p, lp, cfg, nil)
	if err != nil {
		return err
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	fmt.Println("\nmigration history:")
	for _, m := range res.History {
		kind := "push-aside"
		if m.Reclaim {
			kind = "reclaim"
		}
		fmt.Printf("  [%8v] %-10s %s: %v -> %v (chain %d)\n",
			m.At.Round(time.Millisecond), kind, m.Element, m.From, m.To, m.ChainIndex)
	}

	fmt.Println("\nepisodes (relief = migration -> first window back under threshold):")
	for i, ep := range res.Episodes {
		relief := "not reached"
		if ep.Relief >= 0 {
			relief = ep.Relief.Round(time.Millisecond).String()
		}
		fmt.Printf("  #%d at %v: NIC demand %.2f -> %.2f, relief %s\n",
			i+1, ep.At.Round(time.Millisecond), ep.PreNICDemand, ep.PostNICDemand, relief)
	}

	tbl := report.NewTable("\nper-tenant delivered throughput and latency",
		"tenant", "mean Gbps", "p50", "p99", "p99.9", "latency")
	for _, ts := range res.PerTenant {
		tbl.AddRowf(ts.Name, ts.MeanGbps, ts.DeliveredP50, ts.DeliveredP99, ts.DeliveredP999, ts.Latency.String())
	}
	fmt.Println(tbl)

	nicU := make([]float64, 0, len(res.Samples))
	for _, s := range res.Samples {
		nicU = append(nicU, s.NIC.Utilization)
	}
	fmt.Printf("NIC demand over time: %s\n", report.Spark(nicU))
	fmt.Println("final placements:")
	for i, pl := range res.Placements {
		fmt.Printf("  %-14s %v\n", res.Tenants[i]+":", pl)
	}
	fmt.Printf("detector: %d episode(s), %d clear(s), %d rearm(s); %d migration(s), %d reclaim(s); settled=%v\n",
		res.DetectorEvents, res.DetectorClears, res.DetectorRearms,
		res.Migrations, res.Reclaims, res.Settled)

	if len(res.PingPongs) > 0 {
		for _, pp := range res.PingPongs {
			fmt.Printf("PING-PONG: %s bounced %v->%v at %v and back at %v\n",
				pp.Element, pp.Out.From, pp.Out.To,
				pp.Out.At.Round(time.Millisecond), pp.Back.At.Round(time.Millisecond))
		}
		return fmt.Errorf("control loop ping-ponged %d time(s) within %v", len(res.PingPongs), scenario.StabilityPingPongHorizon)
	}
	if res.DetectorEvents == 0 {
		return fmt.Errorf("hover never fired the detector — the harness did not exercise the loop")
	}
	relieved := false
	for _, ep := range res.Episodes {
		if ep.Relief >= 0 {
			relieved = true
		}
	}
	if !relieved && len(res.Episodes) > 0 {
		return fmt.Errorf("no episode reached relief")
	}
	fmt.Println("\nstable: no ping-pong, every episode relieved")
	return nil
}
