package main

// The live command: one control loop, two engines. The chainsim backend
// replays the hotspot scenario in deterministic virtual time; the emul
// backend closes the same loop on wall-clock time over the batched
// execution emulator, with overload detected from measured meter windows
// and a real UNO-style migration.

import (
	"fmt"
	"time"

	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/migrate"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func runLive(engine string, p scenario.Params) error {
	switch engine {
	case "chainsim":
		return liveDES(p)
	case "emul":
		return liveEmul(p)
	}
	return fmt.Errorf("unknown engine %q (try: chainsim, emul)", engine)
}

// liveDES runs the closed loop in virtual time on the discrete-event
// simulator: deterministic, instant, figure-precision.
func liveDES(p scenario.Params) error {
	link := pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps}
	sim, err := chainsim.New(chainsim.Config{
		Chain:         scenario.Figure1Chain(),
		Catalog:       device.Table1(),
		NFOverhead:    p.NFOverhead,
		Link:          link,
		DMAEngineGbps: p.DMAEngineGbps.Float(),
		QueueCapacity: p.QueueCapacity,
		Seed:          p.Seed,
		SampleEvery:   10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	orch, err := orchestrator.New(sim, orchestrator.Config{
		PollEvery: 10 * time.Millisecond,
		Selector:  core.PAM{},
		Detector:  telemetry.DetectorConfig{Consecutive: 3, Alpha: 0.5},
		Transport: migrate.PCIeTransport{Link: link, Setup: time.Millisecond},
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		return err
	}
	orch.Start()

	src, err := traffic.NewRamp([]traffic.Phase{
		{RateGbps: p.ProbeGbps, Duration: 150 * time.Millisecond},
		{RateGbps: 3.0, Duration: 450 * time.Millisecond},
	}, traffic.FixedSize(1024), traffic.ProcessCBR, 16, p.Seed)
	if err != nil {
		return err
	}
	sim.Inject(src)
	res := sim.Run(600 * time.Millisecond)

	fmt.Println("engine: chainsim (virtual time)")
	fmt.Println("control-plane events:")
	fmt.Print(orch.Describe())
	tbl := report.NewTable("telemetry (per sampling window)",
		"t", "nic util", "cpu util", "delivered Gbps", "event")
	thr := make([]float64, 0, len(res.ThrSeries))
	for i := range res.NICSeries {
		marker := ""
		for _, e := range orch.Events() {
			if e.Kind == orchestrator.EventMigrated &&
				e.At > res.NICSeries[i].T-10*time.Millisecond && e.At <= res.NICSeries[i].T {
				marker = "<- PAM migrates " + e.Plan.Steps[0].Step.Element
			}
		}
		tbl.AddRowf(res.NICSeries[i].T, res.NICSeries[i].V, res.CPUSeries[i].V, res.ThrSeries[i].V, marker)
		thr = append(thr, res.ThrSeries[i].V)
	}
	fmt.Println(tbl)
	fmt.Printf("delivered Gbps over time: %s\n", report.Spark(thr))
	fmt.Printf("final placement: %v\n", sim.Placement())
	fmt.Printf("delivered %.2f Gbps overall, loss %.1f%%, migrations: %d\n",
		res.DeliveredGbps, res.LossRate*100, res.Migrations)
	return nil
}

// liveEmul runs the same loop on wall-clock time over the batched emulator.
func liveEmul(p scenario.Params) error {
	lp := scenario.DefaultLiveParams()
	// The calibrated live overload differs from the DES default (DESIGN.md
	// §5: 4 Gbps would demand-overload the CPU too under shared gates), but
	// an explicit -overload flag must still win: rebuild the phase schedule
	// whenever the operator moved OverloadGbps off its default.
	over := scenario.LiveOverloadGbps
	if d := scenario.DefaultParams(); p.OverloadGbps != d.OverloadGbps {
		over = p.OverloadGbps
		lp.Phases = []traffic.Phase{
			{RateGbps: p.ProbeGbps, Duration: 300 * time.Millisecond},
			{RateGbps: over, Duration: 1200 * time.Millisecond},
		}
	}
	fmt.Printf("engine: emul (wall clock, scale %.0fx, batch %d, %d workers)\n",
		lp.Scale, lp.BatchSize, lp.Workers)
	fmt.Printf("ramping %.1f -> %.1f Gbps through %v...\n\n",
		p.ProbeGbps, over, scenario.Figure1Chain())

	res, err := scenario.RunLiveHotspot(p, lp, core.PAM{})
	if err != nil {
		return err
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	tbl := report.NewTable("\nmeasured telemetry (per sampling window, catalog units)",
		"t", "nic util", "cpu util", "delivered Gbps", "loss", "event")
	thr := make([]float64, 0, len(res.Samples))
	for _, s := range res.Samples {
		marker := ""
		for _, e := range res.Events {
			if e.Kind == orchestrator.EventMigrated && e.At > s.At-s.Window && e.At <= s.At {
				marker = "<- PAM migrates " + e.Plan.Steps[0].Step.Element
			}
		}
		tbl.AddRowf(s.At.Round(time.Millisecond), s.NIC.Utilization, s.CPU.Utilization,
			s.DeliveredGbps, s.LossRate, marker)
		thr = append(thr, s.DeliveredGbps)
	}
	fmt.Println(tbl)
	fmt.Printf("delivered Gbps over time: %s\n", report.Spark(thr))
	fmt.Printf("final placement: %v\n", res.Placement)
	fmt.Printf("recovery: %.2f Gbps before migration -> %.2f Gbps after\n", res.PreGbps, res.PostGbps)
	fmt.Printf("frames: offered %d, delivered %d, dropped %d (run %v)\n",
		res.Final.Offered, res.Final.Delivered, res.Final.Dropped, res.Elapsed.Round(time.Millisecond))
	return nil
}
