package main

// The fleet command: the paper's scale-out terminal case resolved one tier
// up. Two emulated servers each run the single-server closed loop; server
// A's storm tenant ramps both of A's devices past the threshold at once,
// so Multi-PAM has no feasible push-aside and the loop escalates instead.
// The fleet coordinator — owner of the tenant→server placement registry —
// picks the storm as the offender, verifies the calm server B can absorb
// it, and executes the staged cross-server chain migration over the
// transport: B freezes its copy of the chain, the registry flip reroutes
// the storm's traffic into the freeze buffers, A drains and snapshots, B
// restores and replays. The command exits non-zero when the escalation,
// the migration, or the recovery fails to materialize.

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
)

func runFleet(engine string, p scenario.Params) error {
	if engine != "emul" {
		return fmt.Errorf("the fleet tier drives live dataplanes; run it with -engine emul")
	}
	lp := scenario.DefaultLiveParams()
	fmt.Printf("engine: emul (wall clock, scale %.0fx); seed %d\n", lp.Scale, p.Seed)
	fmt.Printf("server %s: %.1f Gbps NIC + %.1f Gbps CPU backgrounds, storm %.1f -> %.1f Gbps at %v\n",
		scenario.FleetServerA, float64(scenario.FleetBusyNICGbps), float64(scenario.FleetBusyCPUGbps),
		float64(scenario.FleetStormCalmGbps), float64(scenario.FleetStormGbps), scenario.FleetStormOnset)
	fmt.Printf("server %s: %.1f Gbps background\n\n", scenario.FleetServerB, float64(scenario.FleetCalmNICGbps))

	res, err := scenario.RunFleetScaleOut(p, lp, nil)
	if err != nil {
		return err
	}

	for _, srv := range res.Servers {
		fmt.Printf("%s control-plane events:\n", srv)
		for _, e := range res.Events[srv] {
			fmt.Println("  " + e.Format(time.Millisecond))
		}
	}

	fmt.Println("\ncoordinator log:")
	for _, l := range res.CoordinatorLog {
		fmt.Println("  " + l)
	}

	tbl := report.NewTable("\ncross-server migrations", "tenant", "from", "to", "reason", "state B", "buffered", "took")
	for _, m := range res.Migrations {
		tbl.AddRowf(m.Tenant, string(m.From), string(m.To), m.Reason.String(),
			m.StateBytes, m.Buffered, m.Took.Round(time.Microsecond).String())
	}
	fmt.Println(tbl)

	for _, srv := range res.Servers {
		var nicU []float64
		for _, s := range res.Samples {
			if s.Server == srv {
				nicU = append(nicU, s.Load.NIC.Utilization)
			}
		}
		fmt.Printf("%s NIC demand over time: %s\n", srv, report.Spark(nicU))
	}
	fmt.Println("final placements:")
	for _, srv := range res.Servers {
		fmt.Printf("  %-8s %v\n", string(srv)+":", res.Placements[srv])
	}
	fmt.Printf("escalations: %d; source cleared: %v; storm delivered %.3f -> %.3f Gbps\n",
		res.Escalations, res.SourceCleared, res.StormPreGbps, res.StormPostGbps)

	if res.Escalations == 0 {
		return fmt.Errorf("server %s never escalated — the hot spot was not terminal", scenario.FleetServerA)
	}
	if len(res.Migrations) == 0 {
		return fmt.Errorf("the coordinator executed no cross-server migration")
	}
	if !res.SourceCleared {
		return fmt.Errorf("the source detector never cleared after the handoff")
	}
	if res.StormPostGbps <= res.StormPreGbps {
		return fmt.Errorf("the storm's delivered throughput did not recover (%.3f -> %.3f Gbps)",
			res.StormPreGbps, res.StormPostGbps)
	}
	fmt.Println("\nscale-out relieved: escalated, migrated, cleared, recovered")
	return nil
}
