// Command pamctl regenerates the paper's tables and figures and inspects
// PAM decisions.
//
// Usage:
//
//	pamctl all                  # run every artifact in DESIGN.md's index
//	pamctl table1               # Table 1 capacities
//	pamctl figure1              # Figure 1 placements/crossings narrative
//	pamctl figure2a             # Figure 2(a) latency comparison
//	pamctl figure2b             # Figure 2(b) throughput comparison
//	pamctl pcie                 # §1 PCIe microbenchmark
//	pamctl headline             # §3 18%-lower-latency claim
//	pamctl ablation-pcie        # A1: sensitivity to PCIe latency
//	pamctl ablation-naive       # A2: naive variants vs PAM
//	pamctl future-fpga          # §4 future work: FPGA SmartNIC profile
//	pamctl multistep            # A4: sliding-border multi-migration
//	pamctl plan                 # print the PAM plan for the Figure-1 chain
//	pamctl live                 # closed loop: detect → select → migrate
//	pamctl multi                # multi-tenant: N chains share one NIC+CPU
//	pamctl crossing             # crossing storm: the DMA engine saturates
//	pamctl stability            # stochastic hover: prove no ping-pong
//	pamctl fleet                # two servers: escalate, migrate a tenant
//
// The live command runs the full control plane on the engine selected with
// -engine: "chainsim" replays the hotspot scenario in deterministic virtual
// time on the discrete-event simulator, "emul" runs it on wall-clock time
// against the batched execution emulator, where overload is detected from
// measured meter windows and the migration is a real UNO-style state move
// (DESIGN.md §4).
//
// The multi command hosts several tenants' chains on one SmartNIC+CPU pair:
// every chain is individually feasible, but the summed NIC utilization
// overloads the device, and Multi-PAM pushes the globally cheapest border
// vNF aside. With -engine chainsim the decision is evaluated on the fluid
// model (deterministic, instant); with -engine emul the whole episode runs
// live on the multi-chain emulator, with a real chain-scoped migration that
// leaves background tenants forwarding undisturbed (DESIGN.md §4).
//
// The crossing command moves the hot spot onto the interconnect itself: a
// split chain plus crossing-heavy tenants saturate the shared PCIe DMA
// engine while both devices stay feasible, and the relief is a
// crossing-reducing border migration. With -engine emul the episode runs on
// the emulator's shared DMA-engine gate, detected from the measured
// per-direction crossing demand (DESIGN.md §4).
//
// The fleet command (emul only) runs the two-server scale-out scenario:
// one server's storm tenant overloads both of its devices at once — the
// terminal case where no local push-aside helps — and the per-server loop
// escalates to the fleet coordinator, which migrates the offending
// tenant's whole chain to a calm server through the staged cross-server
// handoff (freeze, reroute, drain, snapshot, restore, replay). The command
// exits non-zero when the escalate → migrate → clear → recover arc breaks
// (DESIGN.md §4).
//
// The stability command (emul only) runs the control-loop stability
// harness: a seeded stochastic workload hovers around the overload
// threshold, the loop runs Multi-PAM with the offload-reclaim policy, and
// the command exits non-zero if any element ping-pongs between devices or
// the detector never fires — the CI seed sweep (scripts/stabilityseeds.sh)
// relies on that exit code (DESIGN.md §5).
//
// Flags:
//
//	-csv       also print each table as CSV
//	-probe     latency probe load in Gbps (default 0.8)
//	-overload  overload offered load in Gbps (default 4.0)
//	-pcie      per-crossing PCIe latency (default 43µs)
//	-engine    live-loop backend: chainsim or emul (default chainsim)
//	-seed      seed for every randomized component (default 42)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	csv := flag.Bool("csv", false, "also print tables as CSV")
	probe := flag.Float64("probe", 0, "latency probe load (Gbps)")
	overload := flag.Float64("overload", 0, "overload offered load (Gbps)")
	pcieLat := flag.Duration("pcie", 0, "per-crossing PCIe latency")
	engine := flag.String("engine", "chainsim", "live-loop backend: chainsim or emul")
	seed := flag.Int64("seed", 0, "seed for every randomized component")
	flag.Parse()

	p := scenario.DefaultParams()
	if *probe > 0 {
		p.ProbeGbps = *probe
	}
	if *overload > 0 {
		p.OverloadGbps = *overload
	}
	if *pcieLat > 0 {
		p.PCIeLatency = *pcieLat
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	var err error
	switch cmd {
	case "live":
		err = runLive(*engine, p)
	case "multi":
		err = runMulti(*engine, p)
	case "crossing":
		err = runCrossing(*engine, p)
	case "stability":
		err = runStability(*engine, p)
	case "fleet":
		err = runFleet(*engine, p)
	default:
		err = run(cmd, p, *csv)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pamctl: %v\n", err)
		// The emulator's typed ambiguity error carries every chain hosting
		// the element; turn it into an actionable hint instead of leaving
		// the operator to guess which tenants collide.
		var amb *emul.AmbiguousElementError
		if errors.As(err, &amb) {
			fmt.Fprintf(os.Stderr, "pamctl: element %q is hosted by %d chains (%s); give tenants unique element names, or migrate through the owning chain (emul.Runtime.MigrateChain)\n",
				amb.Element, len(amb.Chains), strings.Join(amb.Chains, ", "))
		}
		os.Exit(1)
	}
}

func run(cmd string, p scenario.Params, csv bool) error {
	emit := func(a experiments.Artifact) {
		fmt.Println(a.Render())
		if csv {
			fmt.Println(a.Table.CSV())
		}
	}
	switch cmd {
	case "all":
		start := time.Now()
		arts, err := experiments.All(p)
		if err != nil {
			return err
		}
		for _, a := range arts {
			emit(a)
			fmt.Println()
		}
		fmt.Printf("(regenerated %d artifacts in %v)\n", len(arts), time.Since(start).Round(time.Millisecond))
		return nil
	case "table1":
		a, err := experiments.Table1(p)
		if err != nil {
			return err
		}
		emit(a)
	case "figure1":
		a, err := experiments.Figure1(p)
		if err != nil {
			return err
		}
		emit(a)
	case "figure2a":
		a, err := experiments.Figure2a(p)
		if err != nil {
			return err
		}
		emit(a)
	case "figure2b":
		a, err := experiments.Figure2b(p)
		if err != nil {
			return err
		}
		emit(a)
	case "pcie":
		emit(experiments.PCIeMicrobench(p))
	case "headline":
		a, gap, err := experiments.Headline(p)
		if err != nil {
			return err
		}
		emit(a)
		fmt.Printf("PAM reduces average service-chain latency by %.1f%% vs naive (paper: 18%%)\n", gap*100)
	case "ablation-pcie":
		a, err := experiments.AblationPCIe(p)
		if err != nil {
			return err
		}
		emit(a)
	case "ablation-naive":
		a, err := experiments.AblationNaive(p)
		if err != nil {
			return err
		}
		emit(a)
	case "future-fpga":
		a, err := experiments.FutureFPGA(p)
		if err != nil {
			return err
		}
		emit(a)
	case "multistep":
		a, err := experiments.MultiStep(p)
		if err != nil {
			return err
		}
		emit(a)
	case "plan":
		c := scenario.Figure1Chain()
		v := scenario.View(c, p, device.Gbps(1/0.9125))
		fmt.Printf("chain: %s\n", c)
		for _, sel := range []core.Selector{core.PAM{}, core.NaiveCheapestOnCPU{}, core.NaiveMinNICCapacity{}} {
			plan, err := sel.Select(v)
			if err != nil {
				fmt.Printf("%-18s %v\n", sel.Name()+":", err)
				continue
			}
			fmt.Printf("%-18s %v\n", sel.Name()+":", plan)
		}
	default:
		return fmt.Errorf("unknown command %q (try: all, table1, figure1, figure2a, figure2b, pcie, headline, ablation-pcie, ablation-naive, future-fpga, multistep, plan, live, multi, crossing, stability, fleet)", cmd)
	}
	return nil
}
