package main

// The crossing command: the overload lives on the PCIe interconnect. A
// split tenant (CPU→NIC→CPU, four DMA crossings per frame) plus
// crossing-heavy CPU-resident background tenants saturate the shared DMA
// engine while both devices stay feasible. The chainsim engine evaluates
// the fluid model — per-tenant crossing counts, the aggregate DMA-engine
// utilization calm vs. peak, and the Multi-PAM plan the crossing-bound
// trigger produces; the emul engine runs the live episode, where the
// emulator's shared DMA-engine gate makes the saturation physical and the
// relief is a real crossing-reducing migration.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
)

func runCrossing(engine string, p scenario.Params) error {
	switch engine {
	case "chainsim":
		return crossingModel(p)
	case "emul":
		return crossingEmul(p)
	}
	return fmt.Errorf("unknown engine %q (try: chainsim, emul)", engine)
}

// crossingDMAUtil sums the model's DMA-engine utilization across tenants at
// the given per-tenant throughputs.
func crossingDMAUtil(tenants []scenario.Tenant, thr []float64, nic device.Device) float64 {
	var u float64
	for i, t := range tenants {
		u += nic.DMAUtilization(device.MeasuredGbps(thr[i]), t.Chain.Crossings())
	}
	return u
}

// crossingModel walks the crossing-bound decision through the fluid model.
func crossingModel(p scenario.Params) error {
	tenants := scenario.CrossingTenants(p)
	tmpl := scenario.CrossView(p)
	fmt.Println("engine: chainsim (fluid model, deterministic decision)")
	fmt.Printf("DMA engine budget: %.1f Gbps of crossing bandwidth shared by all tenants\n", scenario.CrossLinkGbps)
	fmt.Println("tenants sharing one PCIe interconnect:")

	calm := make([]float64, len(tenants))
	hot := make([]float64, len(tenants))
	loads := make([]core.Load, len(tenants))
	for i, t := range tenants {
		calm[i] = t.Phases[0].RateGbps
		hot[i] = t.Phases[len(t.Phases)-1].RateGbps
		loads[i] = core.Load{Chain: t.Chain, Throughput: device.MeasuredGbps(hot[i])}
		fmt.Printf("  %-12s %v  (%d crossings/frame, %.2f Gbps calm, %.2f Gbps peak)\n",
			t.Chain.Name+":", t.Chain, t.Chain.Crossings(), calm[i], hot[i])
	}

	uCalm := crossingDMAUtil(tenants, calm, tmpl.NIC)
	uHot := crossingDMAUtil(tenants, hot, tmpl.NIC)
	fmt.Printf("\naggregate DMA-engine utilization: %.2f calm -> %.2f at peak (threshold %.2f)\n",
		uCalm, uHot, core.DefaultOverloadThreshold)
	fmt.Println("both devices stay feasible throughout; only the interconnect saturates")

	plan, err := core.MultiPAM{}.SelectMulti(core.MultiView{
		Loads: loads, Catalog: tmpl.Catalog, NIC: tmpl.NIC, CPU: tmpl.CPU,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n%v\n", plan)
	after := make([]scenario.Tenant, len(tenants))
	for i := range tenants {
		after[i] = scenario.Tenant{Chain: plan.Results[i]}
	}
	fmt.Printf("aggregate DMA-engine utilization after plan: %.2f\n",
		crossingDMAUtil(after, hot, tmpl.NIC))
	for i, res := range plan.Results {
		fmt.Printf("  %-12s %v  (%d crossings/frame)\n", tenants[i].Chain.Name+":", res, res.Crossings())
	}
	fmt.Println("\n(the same decision against the live dataplane: pamctl -engine emul crossing)")
	return nil
}

// crossingEmul runs the live crossing storm on the emulator.
func crossingEmul(p scenario.Params) error {
	lp := scenario.DefaultLiveParams()
	tenants := scenario.CrossingTenants(p)
	fmt.Printf("engine: emul (wall clock, scale %.0fx, batch %d, %d workers)\n",
		lp.Scale, lp.BatchSize, lp.Workers)
	fmt.Printf("DMA engine budget: %.1f Gbps of crossing bandwidth shared by all tenants\n", scenario.CrossLinkGbps)
	fmt.Println("tenants sharing one PCIe interconnect:")
	for _, t := range tenants {
		fmt.Printf("  %-12s %v  (%d crossings/frame)\n", t.Chain.Name+":", t.Chain, t.Chain.Crossings())
	}
	fmt.Printf("backgrounds steady at %.1f Gbps; %q ramps %.2f -> %.2f Gbps...\n\n",
		scenario.CrossBackgroundGbps, tenants[len(tenants)-1].Chain.Name,
		scenario.CrossSplitCalmGbps, scenario.CrossSplitOverloadGbps)

	res, err := scenario.RunLiveCrossingStorm(p, lp, tenants, core.MultiPAM{})
	if err != nil {
		return err
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	tbl := report.NewTable("\nmeasured telemetry (per sampling window, catalog units)",
		"t", "nic util", "cpu util", "dma demand", "dma grant", "split Gbps", "event")
	dmaU := make([]float64, 0, len(res.Samples))
	splitIdx := len(res.Tenants) - 1
	for _, s := range res.Samples {
		marker := ""
		for _, e := range res.Events {
			if e.Kind == orchestrator.EventMigrated && e.At > s.At-s.Window && e.At <= s.At {
				marker = "<- Multi-PAM migrates " + e.Plan.Steps[0].Step.Element
			}
		}
		split := 0.0
		if splitIdx < len(s.Chains) {
			split = s.Chains[splitIdx].DeliveredGbps
		}
		tbl.AddRowf(s.At.Round(time.Millisecond), s.NIC.Utilization, s.CPU.Utilization,
			s.DMA.Utilization, s.DMA.GrantRate, split, marker)
		dmaU = append(dmaU, s.DMA.Utilization)
	}
	fmt.Println(tbl)
	fmt.Printf("DMA-engine demand over time: %s\n", report.Spark(dmaU))
	fmt.Println("final placements:")
	for i, pl := range res.Placements {
		fmt.Printf("  %-12s %v  (%d crossings/frame)\n", res.Tenants[i]+":", pl, pl.Crossings())
	}
	fmt.Println("per-tenant delivered: calm baseline -> during storm -> after push-aside:")
	for i, name := range res.Tenants {
		fmt.Printf("  %-12s %.2f -> %.2f -> %.2f Gbps\n",
			name+":", res.BaselineGbps[i], res.PreGbps[i], res.PostGbps[i])
	}
	fmt.Printf("frames: offered %d, delivered %d, dropped %d; %d migration(s) in %v\n",
		res.Final.Offered, res.Final.Delivered, res.Final.Dropped, res.Migrations,
		res.Elapsed.Round(time.Millisecond))
	return nil
}
