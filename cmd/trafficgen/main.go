// Command trafficgen synthesizes workloads in the style of the paper's DPDK
// packet sender: it prints arrival schedules (for inspection or external
// consumption as CSV), raw frame hex dumps, tcpdump-compatible captures —
// or blasts the frames straight into the execution emulator's batched
// dataplane.
//
// Usage:
//
//	trafficgen [-rate 1.0] [-size 1024 | -imix] [-process cbr|poisson]
//	           [-dur 10ms] [-flows 16] [-mode schedule|frames|pcap|emulate]
//	           [-n 10] [-o out.pcap]
//	           [-batch 32] [-workers 1] [-scale 200] [-chains 1]
//	           [-cpuprofile cpu.pprof] [-mutexprofile mutex.pprof]
//
// -mode pcap materializes the schedule into real frames and writes a
// tcpdump-compatible capture. -mode emulate pushes the schedule through the
// Figure-1 chain on the live emulator: -batch sets the dataplane burst
// size, -workers the size of the run-to-completion pool, and -scale the
// Table-1 capacity divisor; delivered throughput, loss and the latency
// summary are printed at the end. -chains N hosts N copies of the Figure-1
// chain as separate tenants on the shared devices and spreads the schedule
// across them round-robin — the multi-tenant profiling workload.
//
// -cpuprofile and -mutexprofile write pprof profiles covering the run —
// the intended workflow is profiling the emulator's hot path under a real
// workload (`-mode emulate -cpuprofile cpu.pprof -mutexprofile
// mutex.pprof`, then `go tool pprof`): the CPU profile shows where the
// dataplane burns cycles, the mutex profile whether the shared gates'
// slow-path locks are contended at all when the lock-free fast path is
// doing its job.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/pcap"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func main() {
	rate := flag.Float64("rate", 1.0, "offered load (Gbps)")
	size := flag.Int("size", 1024, "frame size (bytes)")
	imix := flag.Bool("imix", false, "use the IMIX size mix instead of -size")
	process := flag.String("process", "cbr", "arrival process: cbr or poisson")
	dur := flag.Duration("dur", 10*time.Millisecond, "schedule duration")
	flows := flag.Uint64("flows", 16, "synthetic flow population")
	mode := flag.String("mode", "schedule", "output: schedule (CSV), frames (hex), pcap or emulate")
	n := flag.Int("n", 10, "frame count in -mode frames")
	out := flag.String("o", "", "output file for -mode pcap (default stdout)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	batch := flag.Int("batch", 32, "emulate: dataplane burst size (frames per wakeup)")
	workers := flag.Int("workers", 1, "emulate: run-to-completion pool size (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 200, "emulate: divisor applied to Table-1 device rates")
	chains := flag.Int("chains", 1, "emulate: tenant count (copies of the Figure-1 chain sharing the devices)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile covering the run to this file")
	flag.Parse()

	stop, err := startProfiles(*cpuprofile, *mutexprofile)
	if err == nil {
		err = run(*rate, *size, *imix, *process, *dur, *flows, *mode, *n, *out, *seed, *batch, *workers, *scale, *chains)
		if perr := stop(); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trafficgen: %v\n", err)
		os.Exit(1)
	}
}

// startProfiles arms the requested pprof profiles and returns the function
// that flushes them once the run is over. CPU sampling starts immediately;
// mutex profiling records every contention event (fraction 1 — this is a
// one-shot diagnostic run, not a production server) and is snapshotted at
// stop time.
func startProfiles(cpu, mutex string) (stop func() error, err error) {
	var cpuF *os.File
	if cpu != "" {
		if cpuF, err = os.Create(cpu); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		var err error
		if cpuF != nil {
			pprof.StopCPUProfile()
			err = cpuF.Close()
		}
		if mutex != "" {
			f, ferr := os.Create(mutex)
			if ferr != nil {
				return ferr
			}
			if perr := pprof.Lookup("mutex").WriteTo(f, 0); perr != nil && err == nil {
				err = perr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}

// tenantChains builds nchains independently named copies of the Figure-1
// chain, the multi-tenant emulation topology: every tenant runs the same
// four NFs in the same placement, so all contention is for the shared
// devices, not an artifact of asymmetric chains.
func tenantChains(nchains int) ([]*chain.Chain, error) {
	cs := make([]*chain.Chain, nchains)
	for i := range cs {
		c, err := chain.New(fmt.Sprintf("figure1-%02d", i),
			chain.Element{Name: scenario.NameLB, Type: device.TypeLoadBalancer, Loc: device.KindCPU},
			chain.Element{Name: scenario.NameLogger, Type: device.TypeLogger, Loc: device.KindSmartNIC},
			chain.Element{Name: scenario.NameMonitor, Type: device.TypeMonitor, Loc: device.KindSmartNIC},
			chain.Element{Name: scenario.NameFirewall, Type: device.TypeFirewall, Loc: device.KindSmartNIC},
		)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	return cs, nil
}

func run(rate float64, size int, imix bool, process string, dur time.Duration, flows uint64, mode string, n int, out string, seed int64, batch, workers int, scale float64, nchains int) error {
	var dist traffic.SizeDist = traffic.FixedSize(size)
	if imix {
		dist = traffic.NewIMIX()
	}
	proc := traffic.ProcessCBR
	if process == "poisson" {
		proc = traffic.ProcessPoisson
	}
	switch mode {
	case "schedule":
		src, err := traffic.NewGen(rate, dist, proc, flows, 0, dur, seed)
		if err != nil {
			return err
		}
		fmt.Println("at_ns,size_bytes,flow")
		count, bytes := 0, 0
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			fmt.Printf("%d,%d,%d\n", a.At.Nanoseconds(), a.Size, a.Flow)
			count++
			bytes += a.Size
		}
		fmt.Fprintf(os.Stderr, "generated %d arrivals, %.3f Gbps effective\n",
			count, float64(bytes)*8/dur.Seconds()/1e9)
	case "frames":
		synth := traffic.NewSynth(int(flows), seed)
		for i := 0; i < n; i++ {
			frame := synth.Frame(uint64(i)%flows, size)
			fmt.Printf("# frame %d (%dB)\n%s\n", i, len(frame), hex.Dump(frame))
		}
	case "pcap":
		src, err := traffic.NewGen(rate, dist, proc, flows, 0, dur, seed)
		if err != nil {
			return err
		}
		var sink io.Writer = os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			sink = f
		}
		w, err := pcap.NewWriter(sink, 0)
		if err != nil {
			return err
		}
		synth := traffic.NewSynth(int(flows), seed)
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			frame := synth.Frame(a.Flow, a.Size)
			if err := w.WritePacket(pcap.Packet{Time: a.At, Data: frame}); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d packets\n", w.Count())
	case "emulate":
		if nchains < 1 {
			return fmt.Errorf("-chains %d: need at least one tenant", nchains)
		}
		src, err := traffic.NewGen(rate, dist, proc, flows, 0, dur, seed)
		if err != nil {
			return err
		}
		cs, err := tenantChains(nchains)
		if err != nil {
			return err
		}
		rt, err := emul.New(emul.Config{
			Chains:     cs,
			Catalog:    device.Table1(),
			Link:       pcie.DefaultLink(),
			Scale:      scale,
			BatchSize:  batch,
			Workers:    workers,
			PoolFrames: true,
		})
		if err != nil {
			return err
		}
		rt.Start()
		synth := traffic.NewSynth(int(flows), seed)
		start := time.Now()
		for i := 0; ; i++ {
			a, ok := src.Next()
			if !ok {
				break
			}
			tmpl := synth.Frame(a.Flow, a.Size)
			frame := rt.AcquireFrame(len(tmpl))
			copy(frame, tmpl)
			// Pace arrivals against the wall clock so offered load matches
			// the schedule (the emulator throttles in real time).
			if ahead := a.At - time.Since(start); ahead > time.Millisecond {
				time.Sleep(ahead)
			}
			rt.SendChain(i%nchains, frame)
		}
		rt.Drain()
		res := rt.Results()
		rt.Close()
		elapsed := time.Since(start)
		fmt.Printf("emulated %v of traffic in %v (batch=%d workers=%d scale=%.0f chains=%d)\n",
			dur, elapsed.Round(time.Millisecond), batch, workers, scale, nchains)
		fmt.Printf("offered %d frames, delivered %d (%.3f Gbps emulated), ingress drops %d\n",
			res.Offered, res.Delivered, res.DeliveredGbps, res.IngressDrops)
		fmt.Printf("latency %v\n", res.Latency)
		for name, st := range rt.NFStats() {
			fmt.Printf("  %-10s %v\n", name, st)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
