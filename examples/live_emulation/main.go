// Live emulation: real serialized frames flow through the real NF
// implementations on a goroutine pipeline while PAM's chosen migration
// executes live — freeze, state snapshot over the (emulated) PCIe link,
// restore, replay — without losing the Monitor's flow statistics or the
// Firewall's connection cache.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/nf"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func main() {
	rt, err := emul.New(emul.Config{
		Chain:      scenario.Figure1Chain(),
		Catalog:    device.Table1(),
		Link:       pcie.DefaultLink(),
		Scale:      200, // Table-1 rates scaled down 200x for a dev machine
		BatchSize:  32,  // burst-granular dataplane: 32 frames per wakeup
		Workers:    2,   // run-to-completion pool of 2 workers
		PoolFrames: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	synth := traffic.NewSynth(32, 7)
	send := func(n int) {
		for i := 0; i < n; i++ {
			tmpl := synth.Frame(uint64(i%32), 512)
			frame := rt.AcquireFrame(len(tmpl)) // recycled at egress (PoolFrames)
			copy(frame, tmpl)
			rt.Send(frame)
		}
		rt.Drain()
	}

	send(2000)
	mon, _ := rt.Instance(scenario.NameMonitor)
	fmt.Printf("before migration: monitor tracks %d flows; placement %v\n",
		mon.(*nf.Monitor).FlowCount(), rt.Placement())

	// Ask PAM what to do about the (declared) hot spot and execute it live.
	view := scenario.View(rt.Placement(), scenario.DefaultParams(), device.Gbps(1.09))
	plan, err := core.PAM{}.Select(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PAM plan:", plan)
	for _, step := range plan.Steps {
		rep, err := rt.Migrate(step.Element, step.To)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("executed:", rep)
	}

	send(2000)
	mon2, _ := rt.Instance(scenario.NameMonitor)
	res := rt.Results()
	fmt.Printf("after migration: monitor tracks %d flows; placement %v\n",
		mon2.(*nf.Monitor).FlowCount(), rt.Placement())
	fmt.Printf("delivered %d frames, %d NF stats entries, latency %v\n",
		res.Delivered, len(rt.NFStats()), res.Latency)
	for name, st := range rt.NFStats() {
		fmt.Printf("  %-10s %v\n", name, st)
	}
}
