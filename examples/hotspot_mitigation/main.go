// Hotspot mitigation: the full closed loop of the paper, end to end on the
// batched execution emulator. Real serialized frames ramp up through the
// Figure-1 chain until the SmartNIC overloads; because the emulator
// throttles at one shared capacity gate per device, the whole chain
// physically collapses to the NIC residents' aggregate saturation
// (≈1.1 Gbps) while the measured *demand* (offered/θ) keeps climbing past
// the threshold. The control plane samples both from the dataplane's
// meters, the detector fires on the demand hot spot, PAM selects the
// border vNF, and the runtime executes a real UNO-style migration (freeze
// every shard, snapshot, transfer over the emulated PCIe link, replay)
// while traffic keeps flowing. The printed telemetry shows the hot spot
// forming, delivered throughput collapsing, the migration, and delivery
// recovering to the offered rate.
//
// The same loop in deterministic virtual time on the discrete-event
// simulator: `go run ./cmd/pamctl live` (and `-engine emul` for this run).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()
	fmt.Printf("chain: %v\n", scenario.Figure1Chain())
	fmt.Printf("ramp: %.1f Gbps calm, then %.1f Gbps overload (scale %.0fx, batch %d, %d workers)\n\n",
		p.ProbeGbps, scenario.LiveOverloadGbps, lp.Scale, lp.BatchSize, lp.Workers)

	// The paper's motivation: "as the network traffic fluctuates, NFs on
	// SmartNIC can also be overloaded". RunLiveHotspot paces the ramp into
	// the emulator while polling the live control plane every 25 ms.
	res, err := scenario.RunLiveHotspot(p, lp, core.PAM{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	fmt.Println("\nmeasured telemetry (emulation time, catalog units):")
	thr := make([]float64, 0, len(res.Samples))
	for _, s := range res.Samples {
		marker := ""
		for _, e := range res.Events {
			if e.Kind == orchestrator.EventMigrated && e.At > s.At-s.Window && e.At <= s.At {
				marker = "   <-- PAM pushes " + e.Plan.Steps[0].Step.Element + " aside"
			}
		}
		fmt.Printf("  %8v  nic=%.2f  cpu=%.2f  thr=%.2f  loss=%.2f%s\n",
			s.At.Round(time.Millisecond), s.NIC.Utilization, s.CPU.Utilization,
			s.DeliveredGbps, s.LossRate, marker)
		thr = append(thr, s.DeliveredGbps)
	}

	fmt.Printf("\ndelivered Gbps over time: %s\n", report.Spark(thr))
	fmt.Printf("final placement: %v\n", res.Placement)
	fmt.Printf("recovery: %.2f Gbps (shared-NIC hot spot) -> %.2f Gbps after push-aside\n",
		res.PreGbps, res.PostGbps)
	fmt.Printf("frames: offered %d, delivered %d, dropped %d; %d migration(s) in %v\n",
		res.Final.Offered, res.Final.Delivered, res.Final.Dropped, res.Migrations,
		res.Elapsed.Round(time.Millisecond))
}
