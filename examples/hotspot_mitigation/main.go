// Hotspot mitigation: the full closed loop of the paper in one run.
// Traffic ramps up until the SmartNIC overloads; the orchestrator polls
// device load (telemetry), fires the PAM selection, models the UNO-style
// state-transfer downtime, and installs the new placement — all in
// deterministic virtual time on the discrete-event simulator. The printed
// telemetry shows the hot spot forming and being relieved.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/migrate"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func main() {
	p := scenario.DefaultParams()
	link := pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps}

	sim, err := chainsim.New(chainsim.Config{
		Chain:         scenario.Figure1Chain(),
		Catalog:       device.Table1(),
		NFOverhead:    p.NFOverhead,
		Link:          link,
		DMAEngineGbps: float64(p.DMAEngineGbps),
		QueueCapacity: p.QueueCapacity,
		Seed:          p.Seed,
		SampleEvery:   10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	orch, err := orchestrator.New(sim, orchestrator.Config{
		PollEvery: 10 * time.Millisecond,
		Selector:  core.PAM{},
		Detector:  telemetry.DetectorConfig{Consecutive: 3, Alpha: 0.5},
		Transport: migrate.PCIeTransport{Link: link, Setup: time.Millisecond},
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		log.Fatal(err)
	}
	orch.Start()

	// The paper's motivation: "as the network traffic fluctuates, NFs on
	// SmartNIC can also be overloaded" — ramp 0.5 → 3 Gbps.
	src, err := traffic.NewRamp([]traffic.Phase{
		{RateGbps: 0.5, Duration: 150 * time.Millisecond},
		{RateGbps: 3.0, Duration: 450 * time.Millisecond},
	}, traffic.FixedSize(1024), traffic.ProcessCBR, 16, p.Seed)
	if err != nil {
		log.Fatal(err)
	}
	sim.Inject(src)

	res := sim.Run(600 * time.Millisecond)

	fmt.Println("control-plane events:")
	fmt.Print(orch.Describe())
	fmt.Println("\ntelemetry (virtual time, NIC util, CPU util, delivered Gbps):")
	for i := range res.NICSeries {
		marker := ""
		for _, e := range orch.Events() {
			if e.Kind == orchestrator.EventMigrated &&
				e.At > res.NICSeries[i].T-10*time.Millisecond && e.At <= res.NICSeries[i].T {
				marker = "   <-- PAM migrates " + e.Plan.Steps[0].Element
			}
		}
		fmt.Printf("  %8v  nic=%.2f  cpu=%.2f  thr=%.2f%s\n",
			res.NICSeries[i].T, res.NICSeries[i].V, res.CPUSeries[i].V, res.ThrSeries[i].V, marker)
	}
	fmt.Printf("\nfinal placement: %v\n", sim.Placement())
	fmt.Printf("delivered %.2f Gbps overall, loss %.1f%%, migrations: %d\n",
		res.DeliveredGbps, res.LossRate*100, res.Migrations)
}
