// Crossing storm: the hot spot lives on the PCIe interconnect, not on
// either device. Every crossing of every tenant draws on one shared DMA
// engine — the emulator charges each crossing burst PropDelay plus scaled
// serialization against a single link-seconds budget, the way the paper's
// §1 premise says traversals cost real interconnect capacity. One "split"
// tenant weaves CPU→NIC→CPU (four crossings per frame) while two
// crossing-heavy background tenants run entirely on the CPU (ingress +
// egress crossings each). The SmartNIC idles near 12% and the CPU near 50%
// — both devices are comfortably feasible at every moment — yet when the
// split tenant ramps, the summed crossing demand saturates the engine and
// every crossing tenant's delivered throughput physically collapses while
// the measured DMA demand keeps climbing past 1.
//
// The control plane sees the overload only because telemetry measures the
// interconnect: the LoadSampler reports per-direction DMA demand and grant,
// the detector smooths and fires on the DMA utilization, and Multi-PAM —
// told via MeasuredDMAUtil that the episode is crossing-bound — picks the
// one border vNF whose move *reduces* crossings: the split tenant's Logger.
// Pushing it to the CPU merges the two CPU segments, halves the split
// chain's crossings, cools the engine below threshold, and every tenant
// recovers. A border migration never adds crossings — here that PAM
// property is not just latency hygiene, it is the entire relief.
//
// The same decision on the fluid model: `go run ./cmd/pamctl crossing`;
// this run, as a CLI: `go run ./cmd/pamctl -engine emul crossing`.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()
	tenants := scenario.CrossingTenants(p)

	fmt.Println("tenants sharing one emulated PCIe DMA engine:")
	for _, t := range tenants {
		fmt.Printf("  %-12s %v  (%d crossings/frame)\n", t.Chain.Name+":", t.Chain, t.Chain.Crossings())
	}
	fmt.Printf("\nDMA budget %.1f Gbps; backgrounds steady at %.1f Gbps; %q ramps %.2f -> %.2f Gbps\n",
		scenario.CrossLinkGbps, scenario.CrossBackgroundGbps,
		tenants[len(tenants)-1].Chain.Name, scenario.CrossSplitCalmGbps, scenario.CrossSplitOverloadGbps)
	fmt.Printf("(scale %.0fx, batch %d, %d workers, poll every %v)\n\n",
		lp.Scale, lp.BatchSize, lp.Workers, lp.PollEvery)

	res, err := scenario.RunLiveCrossingStorm(p, lp, tenants, core.MultiPAM{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	fmt.Println("\nmeasured telemetry (emulation time, catalog units):")
	dmaU := make([]float64, 0, len(res.Samples))
	for _, s := range res.Samples {
		marker := ""
		for _, e := range res.Events {
			if e.Kind == orchestrator.EventMigrated && e.At > s.At-s.Window && e.At <= s.At {
				marker = "   <-- Multi-PAM pushes " + e.Plan.Steps[0].Step.Element + " aside"
			}
		}
		line := fmt.Sprintf("  %8v  nic=%.2f  cpu=%.2f  dma=%.2f (grant %.2f)",
			s.At.Round(time.Millisecond), s.NIC.Utilization, s.CPU.Utilization,
			s.DMA.Utilization, s.DMA.GrantRate)
		for _, cl := range s.Chains {
			line += fmt.Sprintf(" %s=%.2f", cl.Name, cl.DeliveredGbps)
		}
		fmt.Println(line + marker)
		dmaU = append(dmaU, s.DMA.Utilization)
	}

	fmt.Printf("\nDMA-engine demand over time: %s\n", report.Spark(dmaU))
	fmt.Println("final placements:")
	for i, pl := range res.Placements {
		fmt.Printf("  %-12s %v  (%d crossings/frame)\n", res.Tenants[i]+":", pl, pl.Crossings())
	}
	fmt.Println("per-tenant delivered: calm baseline -> during storm -> after push-aside:")
	for i, name := range res.Tenants {
		fmt.Printf("  %-12s %.2f -> %.2f -> %.2f Gbps\n",
			name+":", res.BaselineGbps[i], res.PreGbps[i], res.PostGbps[i])
	}
	fmt.Printf("frames: offered %d, delivered %d, dropped %d; %d migration(s) in %v\n",
		res.Final.Offered, res.Final.Delivered, res.Final.Dropped, res.Migrations,
		res.Elapsed.Round(time.Millisecond))
}
