// Quickstart: build the paper's Figure-1 service chain, overload the
// SmartNIC, and let PAM decide which vNF to push aside — the minimal
// end-to-end use of the library's public pieces.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
)

func main() {
	// 1. The service chain from the paper (derived from NFP): the Load
	//    Balancer on the CPU; Logger, Monitor, Firewall on the SmartNIC.
	ch := scenario.Figure1Chain()
	fmt.Println("chain:", ch)

	// 2. Telemetry says the chain currently carries ~1.09 Gbps and the
	//    SmartNIC is saturated (util = θ·(1/2 + 1/3.2 + 1/10) ≈ 1).
	params := scenario.DefaultParams()
	view := scenario.View(ch, params, device.Gbps(1.09))

	a, err := core.Analyze(ch, view, view.Throughput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NIC util: %.2f  CPU util: %.2f  crossings: %d\n",
		a.NICUtil, a.CPUUtil, a.Crossings)

	// 3. Run PAM (§2, Steps 1–3): it identifies the border vNFs
	//    {Logger, Firewall}, picks the min-capacity border (Logger,
	//    θS = 2 Gbps), verifies Eq. 2 and Eq. 3, and migrates it.
	plan, err := core.PAM{}.Select(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", plan)

	// 4. Compare against the naive (UNO-style) choice, which migrates the
	//    Monitor out of the middle of the SmartNIC segment and pays two
	//    extra PCIe crossings.
	naive, err := core.NaiveCheapestOnCPU{}.Select(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("naive:", naive)

	fmt.Printf("\nPAM keeps %d crossings (naive: %d) and raises the chain's "+
		"max throughput from %.2f to %.2f Gbps.\n",
		plan.After.Crossings, naive.After.Crossings,
		plan.Before.MaxThroughput.Float(), plan.After.MaxThroughput.Float())
}
