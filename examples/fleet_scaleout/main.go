// Fleet scale-out: what happens when push-aside runs out of road. One
// server's storm tenant ramps until *both* of its devices are past the
// overload threshold at once — the paper's terminal case, where every
// local Multi-PAM candidate would just move the hot spot to the other
// device. Instead of dead-ending, the per-server control loop reports a
// structured escalation upward; the fleet coordinator, which owns the
// tenant→server placement registry, ranks the server's tenants by their
// measured per-chain demand, picks the storm as the offender, verifies a
// calm second server can absorb it under the destination ceiling, and
// executes the staged cross-server chain migration: the destination's
// copy of the chain freezes first, the registry flip reroutes the storm's
// traffic into the freeze buffers (lossless), the source quiesces, drains
// and snapshots the NF state, and the destination restores, thaws and
// replays. The source detector clears, the storm's delivered throughput
// recovers on the new server, and the co-resident background tenants on
// both servers keep flowing throughout.
//
// The same run, as a CLI: `go run ./cmd/pamctl -engine emul fleet`.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/scenario"
)

func main() {
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()

	fmt.Printf("server %s: %.1f Gbps NIC + %.1f Gbps CPU backgrounds; storm ramps %.1f -> %.1f Gbps at %v\n",
		scenario.FleetServerA, float64(scenario.FleetBusyNICGbps), float64(scenario.FleetBusyCPUGbps),
		float64(scenario.FleetStormCalmGbps), float64(scenario.FleetStormGbps), scenario.FleetStormOnset)
	fmt.Printf("server %s: %.1f Gbps background — the fleet's headroom\n\n",
		scenario.FleetServerB, float64(scenario.FleetCalmNICGbps))

	res, err := scenario.RunFleetScaleOut(p, lp, nil)
	if err != nil {
		log.Fatal(err)
	}

	for _, srv := range res.Servers {
		fmt.Printf("%s control-plane events:\n", srv)
		for _, e := range res.Events[srv] {
			fmt.Println("  " + e.Format(time.Millisecond))
		}
	}
	fmt.Println("coordinator log:")
	for _, l := range res.CoordinatorLog {
		fmt.Println("  " + l)
	}
	for _, m := range res.Migrations {
		fmt.Printf("migrated %q %s -> %s (%s): %d state bytes shipped, %d rerouted frames replayed, %v\n",
			m.Tenant, m.From, m.To, m.Reason, m.StateBytes, m.Buffered, m.Took.Round(time.Microsecond))
	}
	fmt.Println("final placements:")
	for _, srv := range res.Servers {
		fmt.Printf("  %-8s %v\n", string(srv)+":", res.Placements[srv])
	}
	fmt.Printf("\nescalations: %d; source detector cleared: %v\n", res.Escalations, res.SourceCleared)
	fmt.Printf("storm delivered: %.3f Gbps squeezed on %s -> %.3f Gbps recovered on %s\n",
		res.StormPreGbps, scenario.FleetServerA, res.StormPostGbps, scenario.FleetServerB)
	if res.Escalations > 0 && len(res.Migrations) > 0 && res.SourceCleared {
		fmt.Println("relieved: the fleet tier did what no local migration could")
	}
}
