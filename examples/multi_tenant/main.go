// Multi-tenant push-aside: N service chains share one emulated SmartNIC+CPU
// pair, the multi-tenant setting of a real NFV server. Two background
// tenants (Monitor-only chains) run at a steady 0.9 Gbps while a third
// tenant — a Figure-1-style chain — ramps from calm into overload. Every
// chain stays individually feasible; only the *summed* SmartNIC demand
// crosses the threshold, which is exactly what the control plane measures:
// the LoadSampler sums offered-rate/θ across every element resident on the
// device, regardless of chain. And because the emulator throttles at one
// shared capacity gate per device, the overload is physical: the ramping
// tenant's bursts consume device time the background tenants needed, so
// their delivered throughput genuinely collapses (≈30-50% below baseline).
// Multi-PAM then runs the paper's selection globally — the border vNF with
// minimum θS across the union of every chain's borders, with Eq. 2/3 on
// the aggregate utilizations — and pushes the ramping tenant's Logger
// aside via a real UNO-style migration that freezes only that element's
// input rings. The printed telemetry shows the collapse and the
// recovery: after the push-aside the background tenants return to their
// calm-phase throughput.
//
// The same decision on the fluid model: `go run ./cmd/pamctl multi`; this
// run, as a CLI: `go run ./cmd/pamctl -engine emul multi`.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()
	tenants := scenario.DefaultTenants(p)

	fmt.Println("tenants sharing one emulated SmartNIC+CPU pair:")
	for _, t := range tenants {
		fmt.Printf("  %-12s %v\n", t.Chain.Name+":", t.Chain)
	}
	fmt.Printf("\nbackground tenants steady at %.1f Gbps; %q ramps %.1f -> %.1f Gbps\n",
		scenario.MultiBackgroundGbps, tenants[len(tenants)-1].Chain.Name,
		scenario.MultiCalmGbps, scenario.MultiOverloadGbps)
	fmt.Printf("(scale %.0fx, batch %d, %d workers, poll every %v)\n\n",
		lp.Scale, lp.BatchSize, lp.Workers, lp.PollEvery)

	res, err := scenario.RunLiveMultiTenant(p, lp, tenants, core.MultiPAM{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("control-plane events (downtime = measured transfer):")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}

	fmt.Println("\nmeasured telemetry (emulation time, catalog units):")
	nicU := make([]float64, 0, len(res.Samples))
	for _, s := range res.Samples {
		marker := ""
		for _, e := range res.Events {
			if e.Kind == orchestrator.EventMigrated && e.At > s.At-s.Window && e.At <= s.At {
				marker = "   <-- Multi-PAM pushes " + e.Plan.Steps[0].Step.Element + " aside"
			}
		}
		line := fmt.Sprintf("  %8v  nic=%.2f  cpu=%.2f ", s.At.Round(time.Millisecond),
			s.NIC.Utilization, s.CPU.Utilization)
		for _, cl := range s.Chains {
			line += fmt.Sprintf(" %s=%.2f", cl.Name, cl.DeliveredGbps)
		}
		fmt.Println(line + marker)
		nicU = append(nicU, s.NIC.Utilization)
	}

	fmt.Printf("\naggregate NIC utilization over time: %s\n", report.Spark(nicU))
	fmt.Println("final placements:")
	for i, pl := range res.Placements {
		fmt.Printf("  %-12s %v\n", res.Tenants[i]+":", pl)
	}
	fmt.Println("per-tenant delivered: calm baseline -> during overload -> after push-aside:")
	for i, name := range res.Tenants {
		fmt.Printf("  %-12s %.2f -> %.2f -> %.2f Gbps\n",
			name+":", res.BaselineGbps[i], res.PreGbps[i], res.PostGbps[i])
	}
	fmt.Printf("frames: offered %d, delivered %d, dropped %d; %d migration(s) in %v\n",
		res.Final.Offered, res.Final.Delivered, res.Final.Dropped, res.Migrations,
		res.Elapsed.Round(time.Millisecond))
}
