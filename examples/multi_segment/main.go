// Multi-segment chains: §2 notes that "due to the several packet
// transmissions between SmartNIC and CPU, there may be multiple border vNFs
// in a service chain". This example builds a six-NF chain that weaves across
// the PCIe boundary twice, shows the resulting border sets, and compares
// PAM's choice with the naive one at a hot spot.
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
)

func main() {
	ch := scenario.LongChain()
	fmt.Println("chain:", ch)
	fmt.Println("crossings:", ch.Crossings())

	bl, br := ch.Borders(chain.BorderModePaper)
	names := func(idx []int) []string {
		out := make([]string, len(idx))
		for i, j := range idx {
			out[i] = ch.At(j).Name
		}
		return out
	}
	fmt.Println("left borders BL:", names(bl))
	fmt.Println("right borders BR:", names(br))

	// The NIC hosts RateLimiter(8), Logger(2), Monitor(3.2), Firewall(10):
	// per-Gbit load 1/8 + 1/2 + 1/3.2 + 1/10 = 1.05 → saturation ≈ 0.95.
	p := scenario.DefaultParams()
	v := scenario.ViewExtended(ch, p, device.Gbps(0.95))

	for _, sel := range []core.Selector{core.PAM{}, core.NaiveCheapestOnCPU{}, core.NaiveMinCapacityLoop{}} {
		plan, err := sel.Select(v)
		if err != nil {
			log.Fatalf("%s: %v", sel.Name(), err)
		}
		fmt.Printf("\n%s\n", plan)
		a, err := core.Analyze(plan.Result, v, v.Throughput)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after: crossings=%d NIC=%.2f CPU=%.2f maxThroughput=%.2f Gbps\n",
			a.Crossings, a.NICUtil, a.CPUUtil, a.MaxThroughput.Float())
	}

	// Beyond the paper: several chains share one SmartNIC, so utilizations
	// add up and the hot spot is an aggregate property. MultiPAM runs the
	// same border logic over all chains at once.
	fmt.Println("\n--- multi-chain (two Figure-1 chains sharing the SmartNIC) ---")
	a1 := scenario.Figure1Chain()
	a2 := scenario.Figure1Chain()
	a2.Name = "figure1-b"
	mv := core.MultiView{
		Loads: []core.Load{
			{Chain: a1, Throughput: 0.55},
			{Chain: a2, Throughput: 0.55},
		},
		Catalog: device.Table1(),
	}
	mv.NIC, mv.CPU = scenario.Devices(p)
	mplan, err := core.MultiPAM{}.Select(mv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mplan)
	fmt.Println("each chain alone is at 50% NIC utilization; together they overload it,")
	fmt.Println("and MultiPAM pushes a border Logger aside without adding crossings anywhere.")
}
