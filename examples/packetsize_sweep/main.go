// Packet-size sweep: regenerates the paper's evaluation (§3) — the
// 64B–1500B sweep behind Figure 2(a) and 2(b), printed as tables and
// terminal bar charts, exactly as pamctl does but showing the library calls
// an application would make.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	p := scenario.DefaultParams()

	outs, err := experiments.SweepPolicies(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-12s %-14s %s\n", "policy", "crossings", "avg lat (µs)", "avg thr (Gbps)")
	for _, o := range outs {
		fmt.Printf("%-10s %-12d %-14.1f %.2f\n", o.Name, o.Crossings, o.AvgLatency, o.AvgThrough)
	}

	fig2a, err := experiments.Figure2a(p)
	if err != nil {
		log.Fatal(err)
	}
	fig2b, err := experiments.Figure2b(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(fig2a.Render())
	fmt.Println(fig2b.Render())
}
