// Control-loop stability under a hovering workload: the adversarial regime
// for any threshold-based overload detector. Two Monitor tenants pin the
// shared SmartNIC near its threshold and a third tenant's offered load
// fluctuates stochastically in a band that straddles the rate where the
// summed NIC demand crosses it — so the detector's input hovers exactly at
// the fire/clear boundary. The live control plane runs Multi-PAM plus the
// offload-reclaim policy (orchestrator.Config.ReclaimAfter): after an
// episode's push-aside, sustained calm keeps inviting the loop to restore
// the pushed element to the SmartNIC, and only the fluid-model headroom
// guard — gated on the detector's ClearThreshold — stands between offload
// restoration and migration ping-pong. With the calibrated hysteresis band
// the guard always refuses under hover (the predicted post-reclaim demand
// lands inside the band), so the loop pushes once and settles; the printed
// migration history and ping-pong scan prove it. Collapse the band to zero
// and the same run bounces the element back and forth — run
// `go test ./internal/scenario -run TestLiveStabilityDetunedPingPongs -v`
// to watch that negative control.
//
// The same run, as a CLI: `go run ./cmd/pamctl -engine emul stability`.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/scenario"
)

func main() {
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()
	cfg := scenario.StabilityConfig{}

	fmt.Printf("hover tenant: %.2f±%.2f Gbps (dwell ~%v) over two steady %.1f Gbps backgrounds\n",
		scenario.StabilityHoverCenterGbps, scenario.StabilityHoverBandGbps,
		scenario.StabilityHoverDwell, scenario.MultiBackgroundGbps)
	fmt.Printf("reclaim after %d calm windows, guarded by the hysteresis band; bounce horizon %v\n\n",
		scenario.StabilityReclaimAfter, scenario.StabilityPingPongHorizon)

	res, err := scenario.RunLiveStability(p, lp, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("control-plane events:")
	for _, e := range res.Events {
		fmt.Println("  " + e.Format(time.Millisecond))
	}
	fmt.Println("migration history (push-asides and reclaims):")
	for _, m := range res.History {
		kind := "push-aside"
		if m.Reclaim {
			kind = "reclaim"
		}
		fmt.Printf("  [%8v] %-10s %s: %v -> %v\n", m.At.Round(time.Millisecond), kind, m.Element, m.From, m.To)
	}
	for i, ep := range res.Episodes {
		fmt.Printf("episode #%d: NIC demand %.2f -> %.2f, relief %v\n",
			i+1, ep.PreNICDemand, ep.PostNICDemand, ep.Relief.Round(time.Millisecond))
	}
	fmt.Println("per-tenant delivered (p50/p99/p99.9) and latency:")
	for _, ts := range res.PerTenant {
		fmt.Printf("  %-14s %.2f / %.2f / %.2f Gbps; %s\n",
			ts.Name+":", ts.DeliveredP50, ts.DeliveredP99, ts.DeliveredP999, ts.Latency)
	}
	fmt.Printf("\ndetector: %d episode(s); %d migration(s), %d reclaim(s); ping-pongs: %d; settled=%v\n",
		res.DetectorEvents, res.Migrations, res.Reclaims, len(res.PingPongs), res.Settled)
	if len(res.PingPongs) == 0 {
		fmt.Println("stable: the hysteresis band kept the reclaim guard honest — no ping-pong")
	} else {
		for _, pp := range res.PingPongs {
			fmt.Printf("PING-PONG: %s bounced at %v and back at %v\n",
				pp.Element, pp.Out.At.Round(time.Millisecond), pp.Back.At.Round(time.Millisecond))
		}
	}
}
