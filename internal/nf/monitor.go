package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/flow"
)

// Monitor is a per-flow traffic statistics collector (packet/byte counts,
// first/last-seen, top talkers) — the paper's Monitor vNF and the hot spot
// of the Figure 1 narrative. Its flow table is the migratable state.
type Monitor struct {
	base
	flows *flow.Table

	mu         sync.Mutex
	totalBytes uint64
	totalPkts  uint64
}

// NewMonitor builds a monitor; ttl evicts idle flows (0 keeps them forever),
// maxFlows bounds the table.
func NewMonitor(name string, ttl time.Duration, maxFlows int) *Monitor {
	m := &Monitor{
		base:  newBase(name, device.TypeMonitor),
		flows: flow.NewTable(ttl, maxFlows),
	}
	m.attach(m, true) // totals under mutex, flow table sharded
	return m
}

// Process implements NF: account and pass.
func (m *Monitor) Process(ctx *Ctx) (Verdict, error) {
	m.mu.Lock()
	m.totalPkts++
	m.totalBytes += uint64(len(ctx.Frame))
	m.mu.Unlock()
	if ctx.HasFlow {
		m.flows.Touch(ctx.FlowKey, len(ctx.Frame), ctx.Now)
	}
	return m.account(VerdictPass, nil)
}

// ProcessBatch implements the batch fast path: the aggregate totals are
// updated under one lock acquisition for the whole burst and the outcome
// counters once per burst; only the sharded flow-table touch stays
// per-packet.
func (m *Monitor) ProcessBatch(ctxs []*Ctx) []Verdict {
	out := make([]Verdict, len(ctxs))
	var burstBytes uint64
	for i, ctx := range ctxs {
		burstBytes += uint64(len(ctx.Frame))
		if ctx.HasFlow {
			m.flows.Touch(ctx.FlowKey, len(ctx.Frame), ctx.Now)
		}
		out[i] = VerdictPass
	}
	m.mu.Lock()
	m.totalPkts += uint64(len(ctxs))
	m.totalBytes += burstBytes
	m.mu.Unlock()
	m.accountN(uint64(len(ctxs)), 0, 0)
	return out
}

// FlowCount returns the number of tracked flows.
func (m *Monitor) FlowCount() int { return m.flows.Len() }

// Totals returns aggregate packet and byte counts.
func (m *Monitor) Totals() (pkts, bytes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalPkts, m.totalBytes
}

// TopTalker is one entry of the top-N report.
type TopTalker struct {
	Key   flow.Key
	Bytes uint64
	Pkts  uint64
}

// TopTalkers returns the n highest-volume flows by bytes, descending.
func (m *Monitor) TopTalkers(n int) []TopTalker {
	var all []TopTalker
	m.flows.Range(func(e *flow.Entry) bool {
		all = append(all, TopTalker{Key: e.Key, Bytes: e.Bytes, Pkts: e.Packets})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].Key.String() < all[j].Key.String() // stable report order
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

type monitorState struct {
	Flows      []flow.Entry
	TotalBytes uint64
	TotalPkts  uint64
}

// Snapshot implements Stateful.
func (m *Monitor) Snapshot() ([]byte, error) {
	m.mu.Lock()
	st := monitorState{TotalBytes: m.totalBytes, TotalPkts: m.totalPkts}
	m.mu.Unlock()
	st.Flows = m.flows.Snapshot()
	for i := range st.Flows {
		st.Flows[i].Value = nil // opaque values are not serialized
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("monitor %s: snapshot: %w", m.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (m *Monitor) Restore(data []byte) error {
	var st monitorState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("monitor %s: restore: %w", m.name, err)
	}
	m.flows = flow.NewTable(0, 1<<16)
	m.flows.Restore(st.Flows)
	m.mu.Lock()
	m.totalBytes = st.TotalBytes
	m.totalPkts = st.TotalPkts
	m.mu.Unlock()
	return nil
}

var (
	_ NF       = (*Monitor)(nil)
	_ Stateful = (*Monitor)(nil)
)
