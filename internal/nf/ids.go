package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/packet"
)

// Alert is one IDS detection event.
type Alert struct {
	At     time.Duration
	Key    flow.Key
	Reason string
}

// IDS is a lightweight intrusion detector combining two classic detectors:
//
//   - SYN-flood detection: per-source half-open (SYN without ACK) counting
//     with a threshold, and
//   - port-scan detection: per-source distinct destination port counting
//     within a window.
//
// Offending packets are dropped once a source is flagged. Flag sets and
// counters are the migratable state.
type IDS struct {
	base
	synThreshold  int
	scanThreshold int

	mu       sync.Mutex
	halfOpen map[packet.IPv4Addr]int
	ports    map[packet.IPv4Addr]map[uint16]bool
	flagged  map[packet.IPv4Addr]string
	alerts   []Alert
}

// NewIDS builds an IDS; synThreshold flags a source after that many
// half-open SYNs, scanThreshold after that many distinct destination ports.
func NewIDS(name string, synThreshold, scanThreshold int) *IDS {
	if synThreshold < 1 {
		synThreshold = 100
	}
	if scanThreshold < 1 {
		scanThreshold = 50
	}
	ids := &IDS{
		base:          newBase(name, device.TypeIDS),
		synThreshold:  synThreshold,
		scanThreshold: scanThreshold,
		halfOpen:      make(map[packet.IPv4Addr]int),
		ports:         make(map[packet.IPv4Addr]map[uint16]bool),
		flagged:       make(map[packet.IPv4Addr]string),
	}
	ids.attach(ids, true) // all detector state under one mutex
	return ids
}

// Process implements NF.
func (d *IDS) Process(ctx *Ctx) (Verdict, error) {
	if !ctx.HasFlow {
		return d.account(VerdictPass, nil)
	}
	src := ctx.FlowKey.SrcIP
	d.mu.Lock()
	defer d.mu.Unlock()
	if reason, bad := d.flagged[src]; bad {
		_ = reason
		return d.account(VerdictDrop, nil)
	}
	// SYN-flood detector.
	if ctx.FlowKey.Proto == packet.ProtoTCP && ctx.Decoder.Has(packet.LayerTCP) {
		fl := ctx.Decoder.TCP.Flags
		if fl&packet.TCPSyn != 0 && fl&packet.TCPAck == 0 {
			d.halfOpen[src]++
			if d.halfOpen[src] >= d.synThreshold {
				d.flag(src, "syn-flood", ctx)
				return d.account(VerdictDrop, nil)
			}
		} else if fl&packet.TCPAck != 0 && d.halfOpen[src] > 0 {
			d.halfOpen[src]--
		}
	}
	// Port-scan detector.
	ps := d.ports[src]
	if ps == nil {
		ps = make(map[uint16]bool)
		d.ports[src] = ps
	}
	ps[ctx.FlowKey.DstPort] = true
	if len(ps) >= d.scanThreshold {
		d.flag(src, "port-scan", ctx)
		return d.account(VerdictDrop, nil)
	}
	return d.account(VerdictPass, nil)
}

// flag marks a source and records the alert (callers hold d.mu).
func (d *IDS) flag(src packet.IPv4Addr, reason string, ctx *Ctx) {
	d.flagged[src] = reason
	d.alerts = append(d.alerts, Alert{At: ctx.Now, Key: ctx.FlowKey, Reason: reason})
}

// Alerts returns a copy of recorded alerts.
func (d *IDS) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}

// FlaggedCount returns how many sources are currently blocked.
func (d *IDS) FlaggedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.flagged)
}

type idsState struct {
	SynThreshold  int
	ScanThreshold int
	HalfOpen      map[packet.IPv4Addr]int
	Ports         map[packet.IPv4Addr][]uint16
	Flagged       map[packet.IPv4Addr]string
	Alerts        []Alert
}

// Snapshot implements Stateful.
func (d *IDS) Snapshot() ([]byte, error) {
	d.mu.Lock()
	st := idsState{
		SynThreshold:  d.synThreshold,
		ScanThreshold: d.scanThreshold,
		HalfOpen:      make(map[packet.IPv4Addr]int, len(d.halfOpen)),
		Ports:         make(map[packet.IPv4Addr][]uint16, len(d.ports)),
		Flagged:       make(map[packet.IPv4Addr]string, len(d.flagged)),
		Alerts:        append([]Alert(nil), d.alerts...),
	}
	for k, v := range d.halfOpen {
		st.HalfOpen[k] = v
	}
	for k, m := range d.ports {
		for p := range m {
			st.Ports[k] = append(st.Ports[k], p)
		}
	}
	for k, v := range d.flagged {
		st.Flagged[k] = v
	}
	d.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("ids %s: snapshot: %w", d.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (d *IDS) Restore(data []byte) error {
	var st idsState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("ids %s: restore: %w", d.name, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synThreshold = st.SynThreshold
	d.scanThreshold = st.ScanThreshold
	d.halfOpen = st.HalfOpen
	if d.halfOpen == nil {
		d.halfOpen = make(map[packet.IPv4Addr]int)
	}
	d.ports = make(map[packet.IPv4Addr]map[uint16]bool, len(st.Ports))
	for k, list := range st.Ports {
		m := make(map[uint16]bool, len(list))
		for _, p := range list {
			m[p] = true
		}
		d.ports[k] = m
	}
	d.flagged = st.Flagged
	if d.flagged == nil {
		d.flagged = make(map[packet.IPv4Addr]string)
	}
	d.alerts = st.Alerts
	return nil
}

var (
	_ NF       = (*IDS)(nil)
	_ Stateful = (*IDS)(nil)
)
