package nf

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/packet"
)

// New constructs a default-configured NF instance of the given catalog type,
// the factory the emulator uses to materialize chain elements. Instances can
// always be built directly for custom configuration.
func New(name, nfType string) (NF, error) {
	switch nfType {
	case device.TypeFirewall:
		return NewFirewall(name, DefaultFirewallRules(), false), nil
	case device.TypeLogger:
		return NewLogger(name, 4096), nil
	case device.TypeMonitor:
		return NewMonitor(name, 0, 1<<16), nil
	case device.TypeLoadBalancer:
		return NewLoadBalancer(name, DefaultBackends())
	case device.TypeNAT:
		return NewNAT(name, packet.IPv4Addr{203, 0, 113, 1}, 20000, 60000)
	case device.TypeDPI:
		return NewDPI(name, DefaultSignatures(), true), nil
	case device.TypeRateLimiter:
		return NewRateLimiter(name, 8, 0), nil
	case device.TypeIDS:
		return NewIDS(name, 100, 50), nil
	default:
		return nil, fmt.Errorf("nf: unknown type %q", nfType)
	}
}

// DefaultFirewallRules returns a small realistic rule set: block a bogon
// prefix, block telnet, allow everything else (default-allow instance).
func DefaultFirewallRules() []Rule {
	return []Rule{
		{Priority: 10, AnyProto: true, SrcIP: packet.IPv4Addr{198, 51, 100, 0}, SrcBits: 24, Action: ActionDeny},
		{Priority: 20, Proto: packet.ProtoTCP, DstPortMin: 23, DstPortMax: 23, Action: ActionDeny},
		{Priority: 100, AnyProto: true, Action: ActionAllow},
	}
}

// DefaultBackends returns the load balancer's default backend pool.
func DefaultBackends() []Backend {
	return []Backend{
		{IP: packet.IPv4Addr{192, 168, 100, 1}, Weight: 1},
		{IP: packet.IPv4Addr{192, 168, 100, 2}, Weight: 1},
		{IP: packet.IPv4Addr{192, 168, 100, 3}, Weight: 2},
	}
}

// DefaultSignatures returns the DPI default signature set.
func DefaultSignatures() []string {
	return []string{"EVILPAYLOAD", "SELECT * FROM", "/etc/passwd", "\x90\x90\x90\x90"}
}
