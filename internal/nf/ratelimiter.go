package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/flow"
)

// RateLimiter polices traffic with token buckets: one global bucket plus
// optional per-flow buckets. Buckets refill in virtual time (ctx.Now), so
// behaviour is identical under simulation and live emulation. Bucket levels
// are the migratable state.
type RateLimiter struct {
	base
	mu sync.Mutex

	globalRate  float64 // bytes per second; 0 disables
	globalBurst float64 // bucket size in bytes
	global      bucket

	perFlowRate  float64
	perFlowBurst float64
	flows        map[flow.Key]*bucket
}

type bucket struct {
	Tokens float64
	Last   time.Duration
}

// take refills the bucket at rate (bytes/s) up to burst and tries to spend
// n bytes.
func (b *bucket) take(n int, now time.Duration, rate, burst float64) bool {
	if now > b.Last {
		b.Tokens += rate * (now - b.Last).Seconds()
		if b.Tokens > burst {
			b.Tokens = burst
		}
		b.Last = now
	}
	if b.Tokens >= float64(n) {
		b.Tokens -= float64(n)
		return true
	}
	return false
}

// NewRateLimiter builds a limiter. globalGbps caps aggregate throughput and
// perFlowGbps each flow (0 disables either). Burst defaults to 125 KB
// (1 ms at 1 Gbps) scaled by the rate.
func NewRateLimiter(name string, globalGbps, perFlowGbps float64) *RateLimiter {
	toBps := func(g float64) float64 { return g * 1e9 / 8 }
	burst := func(bps float64) float64 {
		b := bps / 1000 // 1 ms worth
		if b < 3000 {
			b = 3000 // at least two max-size frames
		}
		return b
	}
	rl := &RateLimiter{
		base:  newBase(name, device.TypeRateLimiter),
		flows: make(map[flow.Key]*bucket),
	}
	rl.attach(rl, true) // all bucket state under one mutex
	if globalGbps > 0 {
		rl.globalRate = toBps(globalGbps)
		rl.globalBurst = burst(rl.globalRate)
		rl.global = bucket{Tokens: rl.globalBurst}
	}
	if perFlowGbps > 0 {
		rl.perFlowRate = toBps(perFlowGbps)
		rl.perFlowBurst = burst(rl.perFlowRate)
	}
	return rl
}

// Process implements NF.
func (rl *RateLimiter) Process(ctx *Ctx) (Verdict, error) {
	n := len(ctx.Frame)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if rl.globalRate > 0 && !rl.global.take(n, ctx.Now, rl.globalRate, rl.globalBurst) {
		return rl.account(VerdictDrop, nil)
	}
	if rl.perFlowRate > 0 && ctx.HasFlow {
		b := rl.flows[ctx.FlowKey]
		if b == nil {
			b = &bucket{Tokens: rl.perFlowBurst, Last: ctx.Now}
			rl.flows[ctx.FlowKey] = b
		}
		if !b.take(n, ctx.Now, rl.perFlowRate, rl.perFlowBurst) {
			return rl.account(VerdictDrop, nil)
		}
	}
	return rl.account(VerdictPass, nil)
}

// ProcessBatch implements the batch fast path: the bucket mutex is taken
// once for the whole burst (per-packet Process pays a lock/unlock round
// trip per frame) and accounting is batched. Verdicts stay per-packet —
// each frame spends its own tokens, so a burst can be split mid-way when
// the bucket runs dry.
func (rl *RateLimiter) ProcessBatch(ctxs []*Ctx) []Verdict {
	out := make([]Verdict, len(ctxs))
	var passed, dropped uint64
	rl.mu.Lock()
	for i, ctx := range ctxs {
		n := len(ctx.Frame)
		if rl.globalRate > 0 && !rl.global.take(n, ctx.Now, rl.globalRate, rl.globalBurst) {
			out[i] = VerdictDrop
			dropped++
			continue
		}
		if rl.perFlowRate > 0 && ctx.HasFlow {
			b := rl.flows[ctx.FlowKey]
			if b == nil {
				b = &bucket{Tokens: rl.perFlowBurst, Last: ctx.Now}
				rl.flows[ctx.FlowKey] = b
			}
			if !b.take(n, ctx.Now, rl.perFlowRate, rl.perFlowBurst) {
				out[i] = VerdictDrop
				dropped++
				continue
			}
		}
		out[i] = VerdictPass
		passed++
	}
	rl.mu.Unlock()
	rl.accountN(passed, dropped, 0)
	return out
}

type rlState struct {
	GlobalRate   float64
	GlobalBurst  float64
	Global       bucket
	PerFlowRate  float64
	PerFlowBurst float64
	Flows        map[flow.Key]bucket
}

// Snapshot implements Stateful.
func (rl *RateLimiter) Snapshot() ([]byte, error) {
	rl.mu.Lock()
	st := rlState{
		GlobalRate:   rl.globalRate,
		GlobalBurst:  rl.globalBurst,
		Global:       rl.global,
		PerFlowRate:  rl.perFlowRate,
		PerFlowBurst: rl.perFlowBurst,
		Flows:        make(map[flow.Key]bucket, len(rl.flows)),
	}
	for k, b := range rl.flows {
		st.Flows[k] = *b
	}
	rl.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("ratelimiter %s: snapshot: %w", rl.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (rl *RateLimiter) Restore(data []byte) error {
	var st rlState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("ratelimiter %s: restore: %w", rl.name, err)
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.globalRate, rl.globalBurst, rl.global = st.GlobalRate, st.GlobalBurst, st.Global
	rl.perFlowRate, rl.perFlowBurst = st.PerFlowRate, st.PerFlowBurst
	rl.flows = make(map[flow.Key]*bucket, len(st.Flows))
	for k, b := range st.Flows {
		cp := b
		rl.flows[k] = &cp
	}
	return nil
}

var (
	_ NF       = (*RateLimiter)(nil)
	_ Stateful = (*RateLimiter)(nil)
)
