package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/packet"
)

// Action is a firewall rule's disposition.
type Action uint8

// Actions.
const (
	ActionAllow Action = iota
	ActionDeny
)

// String names the action.
func (a Action) String() string {
	if a == ActionDeny {
		return "deny"
	}
	return "allow"
}

// Rule is a classic 5-tuple firewall rule with CIDR prefixes and port
// ranges. Zero-valued fields are wildcards (PrefixLen 0 matches everything;
// a port range of [0, 0] matches all ports when PortMax is 0).
type Rule struct {
	Priority               int // lower number = higher priority
	Proto                  packet.IPProto
	AnyProto               bool
	SrcIP                  packet.IPv4Addr
	SrcBits                uint8 // prefix length 0..32
	DstIP                  packet.IPv4Addr
	DstBits                uint8
	SrcPortMin, SrcPortMax uint16
	DstPortMin, DstPortMax uint16
	Action                 Action
}

// Matches reports whether the rule covers the flow key.
func (r Rule) Matches(k flow.Key) bool {
	if !r.AnyProto && r.Proto != k.Proto {
		return false
	}
	if !prefixMatch(r.SrcIP, r.SrcBits, k.SrcIP) {
		return false
	}
	if !prefixMatch(r.DstIP, r.DstBits, k.DstIP) {
		return false
	}
	if !portMatch(r.SrcPortMin, r.SrcPortMax, k.SrcPort) {
		return false
	}
	if !portMatch(r.DstPortMin, r.DstPortMax, k.DstPort) {
		return false
	}
	return true
}

func prefixMatch(net packet.IPv4Addr, bits uint8, ip packet.IPv4Addr) bool {
	if bits == 0 {
		return true
	}
	if bits > 32 {
		bits = 32
	}
	mask := ^uint32(0) << (32 - uint32(bits))
	return net.Uint32()&mask == ip.Uint32()&mask
}

func portMatch(lo, hi, p uint16) bool {
	if hi == 0 && lo == 0 {
		return true
	}
	return p >= lo && p <= hi
}

// Firewall is a stateful 5-tuple firewall: packets are matched against the
// prioritized rule table; established flows (previously allowed) short-cut
// the table via a connection cache, which is the migratable state.
type Firewall struct {
	base
	mu          sync.RWMutex
	rules       []Rule
	defaultDrop bool
	conns       *flow.Table
}

// NewFirewall builds a firewall with the given rule set. defaultDrop selects
// the policy for packets matching no rule. Rules are evaluated in priority
// order (stable for equal priorities).
func NewFirewall(name string, rules []Rule, defaultDrop bool) *Firewall {
	f := &Firewall{
		base:        newBase(name, device.TypeFirewall),
		defaultDrop: defaultDrop,
		conns:       flow.NewTable(0, 1<<16),
	}
	f.attach(f, true) // rule table under RWMutex, conn cache sharded
	f.setRules(rules)
	return f
}

func (f *Firewall) setRules(rules []Rule) {
	cp := make([]Rule, len(rules))
	copy(cp, rules)
	// Stable insertion sort by priority keeps equal-priority order.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j].Priority < cp[j-1].Priority; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	f.mu.Lock()
	f.rules = cp
	f.mu.Unlock()
}

// Rules returns a copy of the active rule table in evaluation order.
func (f *Firewall) Rules() []Rule {
	f.mu.RLock()
	defer f.mu.RUnlock()
	cp := make([]Rule, len(f.rules))
	copy(cp, f.rules)
	return cp
}

// Process implements NF: allow/deny by connection cache, then rule table,
// then default policy. Non-IPv4 frames pass (the firewall is L3/L4).
func (f *Firewall) Process(ctx *Ctx) (Verdict, error) {
	if !ctx.HasFlow {
		return f.account(VerdictPass, nil)
	}
	if _, ok := f.conns.Lookup(ctx.FlowKey.Canonical(), ctx.Now); ok {
		f.conns.Touch(ctx.FlowKey.Canonical(), len(ctx.Frame), ctx.Now)
		return f.account(VerdictPass, nil)
	}
	f.mu.RLock()
	verdict := VerdictPass
	if f.defaultDrop {
		verdict = VerdictDrop
	}
	for _, r := range f.rules {
		if r.Matches(ctx.FlowKey) {
			if r.Action == ActionDeny {
				verdict = VerdictDrop
			} else {
				verdict = VerdictPass
			}
			break
		}
	}
	f.mu.RUnlock()
	if verdict == VerdictPass {
		f.conns.Touch(ctx.FlowKey.Canonical(), len(ctx.Frame), ctx.Now)
	}
	return f.account(verdict, nil)
}

// ProcessBatch implements the batch fast path: the rule table is read once
// per burst instead of once per packet (setRules replaces the slice
// wholesale, so holding the header outside the lock is safe), and the four
// outcome counters are updated once per burst.
func (f *Firewall) ProcessBatch(ctxs []*Ctx) []Verdict {
	out := make([]Verdict, len(ctxs))
	f.mu.RLock()
	rules := f.rules
	defaultDrop := f.defaultDrop
	f.mu.RUnlock()
	var passed, dropped uint64
	for i, ctx := range ctxs {
		if !ctx.HasFlow {
			out[i] = VerdictPass
			passed++
			continue
		}
		k := ctx.FlowKey.Canonical()
		if _, ok := f.conns.Lookup(k, ctx.Now); ok {
			f.conns.Touch(k, len(ctx.Frame), ctx.Now)
			out[i] = VerdictPass
			passed++
			continue
		}
		verdict := VerdictPass
		if defaultDrop {
			verdict = VerdictDrop
		}
		for _, r := range rules {
			if r.Matches(ctx.FlowKey) {
				if r.Action == ActionDeny {
					verdict = VerdictDrop
				} else {
					verdict = VerdictPass
				}
				break
			}
		}
		if verdict == VerdictPass {
			f.conns.Touch(k, len(ctx.Frame), ctx.Now)
			passed++
		} else {
			dropped++
		}
		out[i] = verdict
	}
	f.accountN(passed, dropped, 0)
	return out
}

// ConnCount returns the number of cached established connections.
func (f *Firewall) ConnCount() int { return f.conns.Len() }

// firewallState is the gob-serialized migratable state.
type firewallState struct {
	Rules       []Rule
	DefaultDrop bool
	Conns       []flow.Entry
}

// Snapshot implements Stateful.
func (f *Firewall) Snapshot() ([]byte, error) {
	f.mu.RLock()
	st := firewallState{
		Rules:       append([]Rule(nil), f.rules...),
		DefaultDrop: f.defaultDrop,
		Conns:       f.conns.Snapshot(),
	}
	f.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("firewall %s: snapshot: %w", f.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (f *Firewall) Restore(data []byte) error {
	var st firewallState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("firewall %s: restore: %w", f.name, err)
	}
	f.setRules(st.Rules)
	f.mu.Lock()
	f.defaultDrop = st.DefaultDrop
	f.mu.Unlock()
	f.conns = flow.NewTable(0, 1<<16)
	f.conns.Restore(st.Conns)
	return nil
}

var (
	_ NF       = (*Firewall)(nil)
	_ Stateful = (*Firewall)(nil)
)
