package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/pcap"
)

// LogRecord is one entry in the Logger's ring buffer.
type LogRecord struct {
	At   time.Duration
	Key  flow.Key
	Size int
	// Frame holds the (possibly truncated) frame bytes when the logger was
	// built with capture enabled; nil otherwise.
	Frame []byte
}

// Logger records per-packet metadata into a fixed-size ring buffer, the way
// the paper's Logger vNF journals traffic. The ring (plus its cursor) is the
// migratable state; its low SmartNIC capacity in Table 1 (2 Gbps) reflects
// the memory-write-heavy workload.
type Logger struct {
	base
	mu      sync.Mutex
	ring    []LogRecord
	next    int
	wraps   uint64
	snapLen int // >0 enables frame capture, truncated to this length
}

// NewLogger builds a logger with capacity records in its ring (min 1).
func NewLogger(name string, capacity int) *Logger {
	if capacity < 1 {
		capacity = 1
	}
	l := &Logger{
		base: newBase(name, device.TypeLogger),
		ring: make([]LogRecord, 0, capacity),
	}
	l.attach(l, true) // ring fully mutex-protected
	return l
}

// NewLoggerCapture builds a logger that additionally captures frame bytes
// (truncated to snapLen) so the journal can be exported as a pcap capture
// with WritePcap.
func NewLoggerCapture(name string, capacity, snapLen int) *Logger {
	l := NewLogger(name, capacity)
	if snapLen < 1 {
		snapLen = pcap.DefaultSnapLen
	}
	l.snapLen = snapLen
	return l
}

// Process implements NF: journal and pass.
func (l *Logger) Process(ctx *Ctx) (Verdict, error) {
	rec := LogRecord{At: ctx.Now, Size: len(ctx.Frame)}
	if ctx.HasFlow {
		rec.Key = ctx.FlowKey
	}
	if l.snapLen > 0 {
		n := len(ctx.Frame)
		if n > l.snapLen {
			n = l.snapLen
		}
		rec.Frame = make([]byte, n)
		copy(rec.Frame, ctx.Frame[:n])
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.next] = rec
		l.next++
		if l.next == cap(l.ring) {
			l.next = 0
			l.wraps++
		}
	}
	l.mu.Unlock()
	return l.account(VerdictPass, nil)
}

// Records returns the journal contents in ring order (oldest first).
func (l *Logger) Records() []LogRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogRecord, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// WritePcap exports the journal (oldest first) as a tcpdump-compatible
// capture. Records without captured frames (capture disabled) are skipped;
// it returns how many packets were written.
func (l *Logger) WritePcap(w io.Writer) (int, error) {
	recs := l.Records()
	pw, err := pcap.NewWriter(w, l.snapLenOrDefault())
	if err != nil {
		return 0, err
	}
	for _, r := range recs {
		if r.Frame == nil {
			continue
		}
		if err := pw.WritePacket(pcap.Packet{Time: r.At, Data: r.Frame, OrigLen: r.Size}); err != nil {
			return pw.Count(), err
		}
	}
	return pw.Count(), nil
}

func (l *Logger) snapLenOrDefault() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapLen > 0 {
		return l.snapLen
	}
	return pcap.DefaultSnapLen
}

type loggerState struct {
	Ring    []LogRecord
	Next    int
	Wraps   uint64
	Cap     int
	SnapLen int
}

// Snapshot implements Stateful.
func (l *Logger) Snapshot() ([]byte, error) {
	l.mu.Lock()
	st := loggerState{
		Ring:    append([]LogRecord(nil), l.ring...),
		Next:    l.next,
		Wraps:   l.wraps,
		Cap:     cap(l.ring),
		SnapLen: l.snapLen,
	}
	l.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("logger %s: snapshot: %w", l.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (l *Logger) Restore(data []byte) error {
	var st loggerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("logger %s: restore: %w", l.name, err)
	}
	if st.Cap < 1 {
		st.Cap = 1
	}
	l.mu.Lock()
	l.ring = make([]LogRecord, len(st.Ring), st.Cap)
	copy(l.ring, st.Ring)
	l.next = st.Next
	l.wraps = st.Wraps
	l.snapLen = st.SnapLen
	l.mu.Unlock()
	return nil
}

var (
	_ NF       = (*Logger)(nil)
	_ Stateful = (*Logger)(nil)
)
