package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/packet"
)

// Backend is a load-balancer target.
type Backend struct {
	IP     packet.IPv4Addr
	Weight int // ≥1; relative share of new flows
}

// LoadBalancer is an L4 load balancer: new flows are assigned to a backend
// by weighted rendezvous hashing on the symmetric flow hash (so both
// directions stick), the destination IP is rewritten and checksums fixed.
// The flow→backend binding table is the migratable state — exactly the kind
// of state OpenNF/UNO-style migration must move without loss.
type LoadBalancer struct {
	base
	mu       sync.RWMutex
	backends []Backend
	bindings *flow.Table
	rewrites metrics.Counter
}

// NewLoadBalancer builds a load balancer over the given backends (at least
// one; weights below 1 are raised to 1).
func NewLoadBalancer(name string, backends []Backend) (*LoadBalancer, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("loadbalancer %s: no backends", name)
	}
	cp := make([]Backend, len(backends))
	copy(cp, backends)
	for i := range cp {
		if cp[i].Weight < 1 {
			cp[i].Weight = 1
		}
	}
	lb := &LoadBalancer{
		base:     newBase(name, device.TypeLoadBalancer),
		backends: cp,
		bindings: flow.NewTable(0, 1<<16),
	}
	// Binding entries are only mutated by the shard owning the flow.
	lb.attach(lb, true)
	return lb, nil
}

// Backends returns a copy of the backend set.
func (lb *LoadBalancer) Backends() []Backend {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	cp := make([]Backend, len(lb.backends))
	copy(cp, lb.backends)
	return cp
}

// Process implements NF: bind the flow to a backend (existing binding wins),
// rewrite the destination IP, and fix checksums.
func (lb *LoadBalancer) Process(ctx *Ctx) (Verdict, error) {
	if !ctx.HasFlow {
		return lb.account(VerdictPass, nil) // non-IPv4 passes untouched
	}
	key := ctx.FlowKey.Canonical()
	var target packet.IPv4Addr
	if e, ok := lb.bindings.Lookup(key, ctx.Now); ok {
		target = e.Value.(packet.IPv4Addr)
		lb.bindings.Touch(key, len(ctx.Frame), ctx.Now)
	} else {
		target = lb.pick(key)
		e := lb.bindings.Touch(key, len(ctx.Frame), ctx.Now)
		e.Value = target
	}
	if err := rewriteDstIP(ctx.Frame, target); err != nil {
		return lb.account(VerdictDrop, err)
	}
	lb.rewrites.Inc()
	return lb.account(VerdictPass, nil)
}

// pick selects a backend by weighted rendezvous hashing: deterministic for
// a key regardless of backend order, stable under backend addition/removal
// except for the moved share.
func (lb *LoadBalancer) pick(key flow.Key) packet.IPv4Addr {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	h := key.SymmetricHash()
	var best uint64
	var bestIP packet.IPv4Addr
	for _, b := range lb.backends {
		score := mix(h ^ uint64(b.IP.Uint32()))
		// Weighted rendezvous: replicate weight times with distinct salts.
		for w := 0; w < b.Weight; w++ {
			s := mix(score + uint64(w)*0x9e3779b97f4a7c15)
			if s > best {
				best, bestIP = s, b.IP
			}
		}
	}
	return bestIP
}

// mix is a 64-bit finalizer (splitmix64's avalanche).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rewriteDstIP rewrites the IPv4 destination address in place and fixes the
// IP and transport checksums.
func rewriteDstIP(frame []byte, ip packet.IPv4Addr) error {
	if len(frame) < packet.EthernetHeaderLen+packet.IPv4MinHeaderLen {
		return fmt.Errorf("loadbalancer: %w", packet.ErrTruncated)
	}
	copy(frame[packet.EthernetHeaderLen+16:packet.EthernetHeaderLen+20], ip[:])
	if err := packet.FixupIPv4Checksum(frame); err != nil {
		return err
	}
	// Transport checksum covers the pseudo-header; best effort for TCP/UDP.
	if err := packet.FixupTransportChecksum(frame); err != nil {
		// ICMP and other protocols carry no pseudo-header checksum.
		if frame[packet.EthernetHeaderLen+9] == byte(packet.ProtoTCP) ||
			frame[packet.EthernetHeaderLen+9] == byte(packet.ProtoUDP) {
			return err
		}
	}
	return nil
}

// lbBinding is the serializable flow→backend pair.
type lbBinding struct {
	Entry flow.Entry
	IP    packet.IPv4Addr
}

type lbState struct {
	Backends []Backend
	Bindings []lbBinding
}

// Snapshot implements Stateful.
func (lb *LoadBalancer) Snapshot() ([]byte, error) {
	st := lbState{Backends: lb.Backends()}
	for _, e := range lb.bindings.Snapshot() {
		ip, _ := e.Value.(packet.IPv4Addr)
		e.Value = nil
		st.Bindings = append(st.Bindings, lbBinding{Entry: e, IP: ip})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("loadbalancer %s: snapshot: %w", lb.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (lb *LoadBalancer) Restore(data []byte) error {
	var st lbState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("loadbalancer %s: restore: %w", lb.name, err)
	}
	lb.mu.Lock()
	lb.backends = st.Backends
	lb.mu.Unlock()
	lb.bindings = flow.NewTable(0, 1<<16)
	for _, b := range st.Bindings {
		e := b.Entry
		e.Value = b.IP
		lb.bindings.Restore([]flow.Entry{e})
	}
	return nil
}

var (
	_ NF       = (*LoadBalancer)(nil)
	_ Stateful = (*LoadBalancer)(nil)
)
