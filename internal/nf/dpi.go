package nf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/device"
)

// DPI scans application payloads for a signature set using an Aho–Corasick
// automaton (all patterns matched in one pass). Matching packets are dropped
// (inline IPS behaviour) or passed with a hit counter, per BlockOnMatch.
// Its payload-heavy workload explains the low NIC capacity in the extended
// catalog. The automaton is rebuilt from patterns on restore; match counts
// migrate.
type DPI struct {
	base
	blockOnMatch bool

	mu       sync.RWMutex
	patterns []string
	ac       *ahoCorasick
	hits     map[string]uint64
}

// NewDPI builds a DPI engine over the given byte-string patterns.
func NewDPI(name string, patterns []string, blockOnMatch bool) *DPI {
	d := &DPI{
		base:         newBase(name, device.TypeDPI),
		blockOnMatch: blockOnMatch,
		hits:         make(map[string]uint64),
	}
	d.attach(d, true) // automaton behind RWMutex, hit counters locked
	d.setPatterns(patterns)
	return d
}

func (d *DPI) setPatterns(patterns []string) {
	cp := append([]string(nil), patterns...)
	d.mu.Lock()
	d.patterns = cp
	d.ac = newAhoCorasick(cp)
	d.mu.Unlock()
}

// Process implements NF: scan the application payload (or the whole frame
// when no transport layer decoded).
func (d *DPI) Process(ctx *Ctx) (Verdict, error) {
	payload := ctx.Decoder.Payload
	if payload == nil {
		payload = ctx.Frame
	}
	d.mu.RLock()
	matches := d.ac.scan(payload)
	d.mu.RUnlock()
	if len(matches) == 0 {
		return d.account(VerdictPass, nil)
	}
	d.mu.Lock()
	for _, m := range matches {
		d.hits[m]++
	}
	d.mu.Unlock()
	if d.blockOnMatch {
		return d.account(VerdictDrop, nil)
	}
	return d.account(VerdictPass, nil)
}

// Hits returns a copy of the per-pattern match counters.
func (d *DPI) Hits() map[string]uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]uint64, len(d.hits))
	for k, v := range d.hits {
		out[k] = v
	}
	return out
}

type dpiState struct {
	Patterns     []string
	BlockOnMatch bool
	Hits         map[string]uint64
}

// Snapshot implements Stateful.
func (d *DPI) Snapshot() ([]byte, error) {
	d.mu.RLock()
	st := dpiState{
		Patterns:     append([]string(nil), d.patterns...),
		BlockOnMatch: d.blockOnMatch,
		Hits:         make(map[string]uint64, len(d.hits)),
	}
	for k, v := range d.hits {
		st.Hits[k] = v
	}
	d.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("dpi %s: snapshot: %w", d.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (d *DPI) Restore(data []byte) error {
	var st dpiState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("dpi %s: restore: %w", d.name, err)
	}
	d.setPatterns(st.Patterns)
	d.mu.Lock()
	d.blockOnMatch = st.BlockOnMatch
	d.hits = st.Hits
	if d.hits == nil {
		d.hits = make(map[string]uint64)
	}
	d.mu.Unlock()
	return nil
}

// ahoCorasick is a byte-level Aho–Corasick automaton over a dense goto
// table (256-way per node): O(len(input)) scan independent of pattern count.
type ahoCorasick struct {
	next [][256]int32
	fail []int32
	out  [][]string
}

// newAhoCorasick builds the automaton for the patterns (empty patterns are
// ignored).
func newAhoCorasick(patterns []string) *ahoCorasick {
	ac := &ahoCorasick{
		next: make([][256]int32, 1),
		fail: make([]int32, 1),
		out:  make([][]string, 1),
	}
	for i := range ac.next[0] {
		ac.next[0][i] = -1
	}
	// Build the trie.
	for _, p := range patterns {
		if p == "" {
			continue
		}
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if ac.next[cur][c] == -1 {
				ac.next = append(ac.next, [256]int32{})
				for j := range ac.next[len(ac.next)-1] {
					ac.next[len(ac.next)-1][j] = -1
				}
				ac.fail = append(ac.fail, 0)
				ac.out = append(ac.out, nil)
				ac.next[cur][c] = int32(len(ac.next) - 1)
			}
			cur = ac.next[cur][c]
		}
		ac.out[cur] = append(ac.out[cur], p)
	}
	// BFS to fill failure links and convert to a full goto function.
	queue := make([]int32, 0, len(ac.next))
	for c := 0; c < 256; c++ {
		if ac.next[0][c] == -1 {
			ac.next[0][c] = 0
		} else {
			ac.fail[ac.next[0][c]] = 0
			queue = append(queue, ac.next[0][c])
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ac.out[u] = append(ac.out[u], ac.out[ac.fail[u]]...)
		for c := 0; c < 256; c++ {
			v := ac.next[u][c]
			if v == -1 {
				ac.next[u][c] = ac.next[ac.fail[u]][c]
				continue
			}
			ac.fail[v] = ac.next[ac.fail[u]][c]
			queue = append(queue, v)
		}
	}
	return ac
}

// scan returns the distinct patterns found in data (each reported once).
func (ac *ahoCorasick) scan(data []byte) []string {
	var found []string
	var seen map[string]bool
	cur := int32(0)
	for _, b := range data {
		cur = ac.next[cur][b]
		if outs := ac.out[cur]; len(outs) > 0 {
			if seen == nil {
				seen = make(map[string]bool, 4)
			}
			for _, p := range outs {
				if !seen[p] {
					seen[p] = true
					found = append(found, p)
				}
			}
		}
	}
	return found
}

var (
	_ NF       = (*DPI)(nil)
	_ Stateful = (*DPI)(nil)
)
