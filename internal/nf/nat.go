package nf

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/packet"
)

// NAT is a source-NAT: outbound flows are rewritten to the external IP with
// an allocated external port; the binding table (flow → external port) is
// the migratable state. Port allocation is deterministic round-robin over
// the configured range so migrated instances continue the sequence.
type NAT struct {
	base
	externalIP packet.IPv4Addr
	portMin    uint16
	portMax    uint16

	mu       sync.Mutex
	nextPort uint16
	bindings map[flow.Key]uint16
	inUse    map[uint16]bool
}

// NewNAT builds a source-NAT translating to externalIP with ports from
// [portMin, portMax].
func NewNAT(name string, externalIP packet.IPv4Addr, portMin, portMax uint16) (*NAT, error) {
	if portMax < portMin {
		return nil, fmt.Errorf("nat %s: empty port range [%d,%d]", name, portMin, portMax)
	}
	n := &NAT{
		base:       newBase(name, device.TypeNAT),
		externalIP: externalIP,
		portMin:    portMin,
		portMax:    portMax,
		nextPort:   portMin,
		bindings:   make(map[flow.Key]uint16),
		inUse:      make(map[uint16]bool),
	}
	n.attach(n, true) // binding allocation under one mutex
	return n, nil
}

// Process implements NF: allocate or reuse a binding, rewrite source
// IP/port, fix checksums. Non-TCP/UDP IPv4 passes with only the IP
// rewritten; non-IPv4 passes untouched.
func (n *NAT) Process(ctx *Ctx) (Verdict, error) {
	if !ctx.HasFlow {
		return n.account(VerdictPass, nil)
	}
	hasPorts := ctx.FlowKey.Proto == packet.ProtoTCP || ctx.FlowKey.Proto == packet.ProtoUDP
	var port uint16
	if hasPorts {
		var err error
		port, err = n.bind(ctx.FlowKey)
		if err != nil {
			return n.account(VerdictDrop, err)
		}
	}
	if err := n.rewrite(ctx.Frame, port, hasPorts); err != nil {
		return n.account(VerdictDrop, err)
	}
	return n.account(VerdictPass, nil)
}

// bind returns the flow's external port, allocating one if new.
func (n *NAT) bind(k flow.Key) (uint16, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.bindings[k]; ok {
		return p, nil
	}
	span := int(n.portMax-n.portMin) + 1
	for tries := 0; tries < span; tries++ {
		p := n.nextPort
		n.nextPort++
		if n.nextPort > n.portMax || n.nextPort < n.portMin {
			n.nextPort = n.portMin
		}
		if !n.inUse[p] {
			n.inUse[p] = true
			n.bindings[k] = p
			return p, nil
		}
	}
	return 0, fmt.Errorf("nat %s: port range exhausted", n.name)
}

// rewrite updates the source IP (and port when hasPorts) in place.
func (n *NAT) rewrite(frame []byte, port uint16, hasPorts bool) error {
	if len(frame) < packet.EthernetHeaderLen+packet.IPv4MinHeaderLen {
		return fmt.Errorf("nat: %w", packet.ErrTruncated)
	}
	ipb := frame[packet.EthernetHeaderLen:]
	hlen := int(ipb[0]&0x0f) * 4
	if hlen < packet.IPv4MinHeaderLen || len(ipb) < hlen {
		return fmt.Errorf("nat: %w", packet.ErrBadHeader)
	}
	copy(ipb[12:16], n.externalIP[:])
	if hasPorts && len(ipb) >= hlen+4 {
		binary.BigEndian.PutUint16(ipb[hlen:hlen+2], port)
	}
	if err := packet.FixupIPv4Checksum(frame); err != nil {
		return err
	}
	if hasPorts {
		return packet.FixupTransportChecksum(frame)
	}
	return nil
}

// Bindings returns a copy of the active flow→port map.
func (n *NAT) Bindings() map[flow.Key]uint16 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[flow.Key]uint16, len(n.bindings))
	for k, v := range n.bindings {
		out[k] = v
	}
	return out
}

type natState struct {
	ExternalIP packet.IPv4Addr
	PortMin    uint16
	PortMax    uint16
	NextPort   uint16
	Bindings   map[flow.Key]uint16
}

// Snapshot implements Stateful.
func (n *NAT) Snapshot() ([]byte, error) {
	n.mu.Lock()
	st := natState{
		ExternalIP: n.externalIP,
		PortMin:    n.portMin,
		PortMax:    n.portMax,
		NextPort:   n.nextPort,
		Bindings:   make(map[flow.Key]uint16, len(n.bindings)),
	}
	for k, v := range n.bindings {
		st.Bindings[k] = v
	}
	n.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nat %s: snapshot: %w", n.name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Stateful.
func (n *NAT) Restore(data []byte) error {
	var st natState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nat %s: restore: %w", n.name, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.externalIP = st.ExternalIP
	n.portMin, n.portMax = st.PortMin, st.PortMax
	n.nextPort = st.NextPort
	n.bindings = st.Bindings
	if n.bindings == nil {
		n.bindings = make(map[flow.Key]uint16)
	}
	n.inUse = make(map[uint16]bool, len(n.bindings))
	for _, p := range n.bindings {
		n.inUse[p] = true
	}
	return nil
}

var (
	_ NF       = (*NAT)(nil)
	_ Stateful = (*NAT)(nil)
)
