package nf_test

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/traffic"
)

// mkCtx builds a processing context from a synthesized frame.
func mkCtx(t *testing.T, frame []byte, now time.Duration) (*nf.Ctx, *packet.Decoder) {
	t.Helper()
	d := packet.NewDecoder()
	if _, err := d.Decode(frame); err != nil {
		t.Fatalf("decode: %v", err)
	}
	ctx := &nf.Ctx{Frame: frame, Decoder: d, Now: now}
	if k, ok := flow.FromDecoder(d); ok {
		ctx.FlowKey, ctx.HasFlow = k, true
	}
	return ctx, d
}

func udpFrame(t *testing.T, src, dst packet.IPv4Addr, sp, dp uint16, payload []byte) []byte {
	t.Helper()
	b := packet.NewBuilder()
	fr := b.BuildUDP4(
		packet.Ethernet{Type: packet.EtherTypeIPv4},
		packet.IPv4{Version: 4, TTL: 64, Src: src, Dst: dst},
		packet.UDP{SrcPort: sp, DstPort: dp}, payload)
	out := make([]byte, len(fr))
	copy(out, fr)
	return out
}

func tcpFrame(t *testing.T, src, dst packet.IPv4Addr, sp, dp uint16, flags uint8) []byte {
	t.Helper()
	b := packet.NewBuilder()
	fr := b.BuildTCP4(
		packet.Ethernet{Type: packet.EtherTypeIPv4},
		packet.IPv4{Version: 4, TTL: 64, Src: src, Dst: dst},
		packet.TCP{SrcPort: sp, DstPort: dp, Flags: flags, Window: 1024}, nil)
	out := make([]byte, len(fr))
	copy(out, fr)
	return out
}

// --- Firewall ---------------------------------------------------------------

func TestFirewallRuleMatching(t *testing.T) {
	fw := nf.NewFirewall("fw", []nf.Rule{
		{Priority: 1, Proto: packet.ProtoUDP, DstPortMin: 53, DstPortMax: 53, Action: nf.ActionDeny},
		{Priority: 9, AnyProto: true, Action: nf.ActionAllow},
	}, false)

	dns := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{8, 8, 8, 8}, 4444, 53, nil)
	ctx, _ := mkCtx(t, dns, 0)
	if v, _ := fw.Process(ctx); v != nf.VerdictDrop {
		t.Errorf("dns verdict = %v, want drop", v)
	}
	web := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{8, 8, 8, 8}, 4444, 80, nil)
	ctx, _ = mkCtx(t, web, 0)
	if v, _ := fw.Process(ctx); v != nf.VerdictPass {
		t.Errorf("web verdict = %v, want pass", v)
	}
	st := fw.Stats()
	if st.Processed != 2 || st.Dropped != 1 || st.Passed != 1 {
		t.Errorf("stats = %v", st)
	}
}

func TestFirewallPrefixMatch(t *testing.T) {
	fw := nf.NewFirewall("fw", []nf.Rule{
		{Priority: 1, AnyProto: true, SrcIP: packet.IPv4Addr{192, 168, 0, 0}, SrcBits: 16, Action: nf.ActionDeny},
	}, false)
	in := udpFrame(t, packet.IPv4Addr{192, 168, 44, 2}, packet.IPv4Addr{1, 1, 1, 1}, 1, 2, nil)
	ctx, _ := mkCtx(t, in, 0)
	if v, _ := fw.Process(ctx); v != nf.VerdictDrop {
		t.Error("prefix-matched packet passed")
	}
	out := udpFrame(t, packet.IPv4Addr{192, 169, 44, 2}, packet.IPv4Addr{1, 1, 1, 1}, 1, 2, nil)
	ctx, _ = mkCtx(t, out, 0)
	if v, _ := fw.Process(ctx); v != nf.VerdictPass {
		t.Error("non-matching packet dropped")
	}
}

func TestFirewallDefaultDropAndConnCache(t *testing.T) {
	fw := nf.NewFirewall("fw", []nf.Rule{
		{Priority: 1, Proto: packet.ProtoUDP, DstPortMin: 1000, DstPortMax: 2000, Action: nf.ActionAllow},
	}, true)
	allowed := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 0, 2}, 555, 1500, nil)
	ctx, _ := mkCtx(t, allowed, 0)
	if v, _ := fw.Process(ctx); v != nf.VerdictPass {
		t.Fatal("rule-allowed packet dropped")
	}
	if fw.ConnCount() != 1 {
		t.Errorf("conns = %d, want 1", fw.ConnCount())
	}
	// Reverse direction hits the connection cache despite no reverse rule.
	rev := udpFrame(t, packet.IPv4Addr{10, 0, 0, 2}, packet.IPv4Addr{10, 0, 0, 1}, 1500, 555, nil)
	ctx, _ = mkCtx(t, rev, time.Millisecond)
	if v, _ := fw.Process(ctx); v != nf.VerdictPass {
		t.Error("established reverse packet dropped")
	}
	// Unknown flow falls to default drop.
	other := udpFrame(t, packet.IPv4Addr{10, 9, 9, 9}, packet.IPv4Addr{10, 0, 0, 2}, 1, 9999, nil)
	ctx, _ = mkCtx(t, other, 0)
	if v, _ := fw.Process(ctx); v != nf.VerdictDrop {
		t.Error("default-drop packet passed")
	}
}

func TestFirewallSnapshotRestore(t *testing.T) {
	fw := nf.NewFirewall("fw", nf.DefaultFirewallRules(), false)
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 0, 2}, 5, 80, nil)
	ctx, _ := mkCtx(t, fr, 0)
	if _, err := fw.Process(ctx); err != nil {
		t.Fatal(err)
	}
	blob, err := fw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fw2 := nf.NewFirewall("fw", nil, true)
	if err := fw2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if len(fw2.Rules()) != len(nf.DefaultFirewallRules()) {
		t.Errorf("restored %d rules", len(fw2.Rules()))
	}
	if fw2.ConnCount() != 1 {
		t.Errorf("restored conns = %d", fw2.ConnCount())
	}
}

// --- Logger -----------------------------------------------------------------

func TestLoggerRingWrap(t *testing.T) {
	lg := nf.NewLogger("log", 4)
	for i := 0; i < 6; i++ {
		fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, byte(i + 1)}, packet.IPv4Addr{1, 1, 1, 1}, uint16(i), 9, nil)
		ctx, _ := mkCtx(t, fr, time.Duration(i)*time.Millisecond)
		if v, _ := lg.Process(ctx); v != nf.VerdictPass {
			t.Fatal("logger dropped")
		}
	}
	recs := lg.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	// Oldest-first: entries 2..5 survive.
	if recs[0].At != 2*time.Millisecond || recs[3].At != 5*time.Millisecond {
		t.Errorf("ring order wrong: %v", recs)
	}
}

func TestLoggerSnapshotRestore(t *testing.T) {
	lg := nf.NewLogger("log", 8)
	for i := 0; i < 5; i++ {
		fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 1, 1, 1}, uint16(i), 9, nil)
		ctx, _ := mkCtx(t, fr, time.Duration(i))
		lg.Process(ctx)
	}
	blob, err := lg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lg2 := nf.NewLogger("log", 1)
	if err := lg2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if len(lg2.Records()) != 5 {
		t.Errorf("restored %d records", len(lg2.Records()))
	}
}

// --- Monitor ----------------------------------------------------------------

func TestMonitorFlowAccounting(t *testing.T) {
	mon := nf.NewMonitor("mon", 0, 0)
	a := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 1, 1, 1}, 10, 20, make([]byte, 100))
	bfr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 2}, packet.IPv4Addr{1, 1, 1, 1}, 30, 40, make([]byte, 300))
	for i := 0; i < 3; i++ {
		ctx, _ := mkCtx(t, a, 0)
		mon.Process(ctx)
	}
	ctx, _ := mkCtx(t, bfr, 0)
	mon.Process(ctx)
	if mon.FlowCount() != 2 {
		t.Errorf("flows = %d", mon.FlowCount())
	}
	pkts, bytes := mon.Totals()
	if pkts != 4 || bytes == 0 {
		t.Errorf("totals = %d pkts %d bytes", pkts, bytes)
	}
	top := mon.TopTalkers(1)
	if len(top) != 1 || top[0].Pkts != 3 {
		t.Errorf("top = %+v", top)
	}
}

func TestMonitorSnapshotRestore(t *testing.T) {
	mon := nf.NewMonitor("mon", 0, 0)
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 1, 1, 1}, 10, 20, nil)
	ctx, _ := mkCtx(t, fr, 0)
	mon.Process(ctx)
	blob, err := mon.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mon2 := nf.NewMonitor("mon", 0, 0)
	if err := mon2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if mon2.FlowCount() != 1 {
		t.Errorf("restored flows = %d", mon2.FlowCount())
	}
	pkts, _ := mon2.Totals()
	if pkts != 1 {
		t.Errorf("restored pkts = %d", pkts)
	}
}

// --- LoadBalancer -----------------------------------------------------------

func TestLoadBalancerStickyRewrite(t *testing.T) {
	lb, err := nf.NewLoadBalancer("lb", nf.DefaultBackends())
	if err != nil {
		t.Fatal(err)
	}
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{20, 0, 0, 9}, 700, 80, []byte("req"))
	ctx, dec := mkCtx(t, fr, 0)
	if v, err := lb.Process(ctx); v != nf.VerdictPass || err != nil {
		t.Fatalf("verdict=%v err=%v", v, err)
	}
	if _, err := dec.Decode(fr); err != nil {
		t.Fatal(err)
	}
	first := dec.IP4.Dst
	found := false
	for _, b := range lb.Backends() {
		if b.IP == first {
			found = true
		}
	}
	if !found {
		t.Fatalf("rewritten dst %v is not a backend", first)
	}
	if !packet.VerifyIPv4Checksum(fr[packet.EthernetHeaderLen:]) {
		t.Error("checksum invalid after rewrite")
	}
	// Same flow → same backend on every subsequent packet.
	for i := 0; i < 5; i++ {
		fr2 := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{20, 0, 0, 9}, 700, 80, []byte("req"))
		ctx2, dec2 := mkCtx(t, fr2, time.Duration(i))
		lb.Process(ctx2)
		dec2.Decode(fr2)
		if dec2.IP4.Dst != first {
			t.Fatalf("flow moved backend: %v vs %v", dec2.IP4.Dst, first)
		}
	}
}

func TestLoadBalancerSpreadsFlows(t *testing.T) {
	lb, err := nf.NewLoadBalancer("lb", nf.DefaultBackends())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[packet.IPv4Addr]int{}
	dec := packet.NewDecoder()
	for i := 0; i < 200; i++ {
		fr := udpFrame(t, packet.IPv4Addr{10, 0, byte(i), byte(i%250 + 1)}, packet.IPv4Addr{20, 0, 0, 9}, uint16(1000+i), 80, nil)
		ctx, _ := mkCtx(t, fr, 0)
		lb.Process(ctx)
		dec.Decode(fr)
		counts[dec.IP4.Dst]++
	}
	if len(counts) < 3 {
		t.Errorf("flows landed on %d backends, want 3: %v", len(counts), counts)
	}
	// The weight-2 backend should receive roughly twice the share.
	heavy := counts[packet.IPv4Addr{192, 168, 100, 3}]
	if heavy < 60 {
		t.Errorf("weight-2 backend got %d/200", heavy)
	}
}

func TestLoadBalancerNeedsBackends(t *testing.T) {
	if _, err := nf.NewLoadBalancer("lb", nil); err == nil {
		t.Error("empty backends accepted")
	}
}

func TestLoadBalancerSnapshotRestore(t *testing.T) {
	lb, _ := nf.NewLoadBalancer("lb", nf.DefaultBackends())
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{20, 0, 0, 9}, 700, 80, nil)
	ctx, dec := mkCtx(t, fr, 0)
	lb.Process(ctx)
	dec.Decode(fr)
	bound := dec.IP4.Dst

	blob, err := lb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lb2, _ := nf.NewLoadBalancer("lb", []nf.Backend{{IP: packet.IPv4Addr{9, 9, 9, 9}}})
	if err := lb2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	// The restored instance must keep the existing binding.
	fr2 := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{20, 0, 0, 9}, 700, 80, nil)
	ctx2, dec2 := mkCtx(t, fr2, time.Millisecond)
	lb2.Process(ctx2)
	dec2.Decode(fr2)
	if dec2.IP4.Dst != bound {
		t.Errorf("binding lost across migration: %v vs %v", dec2.IP4.Dst, bound)
	}
}

// --- NAT --------------------------------------------------------------------

func TestNATRewritesAndIsStable(t *testing.T) {
	n, err := nf.NewNAT("nat", packet.IPv4Addr{203, 0, 113, 7}, 40000, 40010)
	if err != nil {
		t.Fatal(err)
	}
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 2, 3, 4}, 1234, 80, []byte("x"))
	ctx, dec := mkCtx(t, fr, 0)
	if v, err := n.Process(ctx); v != nf.VerdictPass || err != nil {
		t.Fatalf("verdict=%v err=%v", v, err)
	}
	dec.Decode(fr)
	if dec.IP4.Src != (packet.IPv4Addr{203, 0, 113, 7}) {
		t.Errorf("src = %v", dec.IP4.Src)
	}
	port1 := dec.UDP.SrcPort
	if port1 < 40000 || port1 > 40010 {
		t.Errorf("port = %d outside range", port1)
	}
	if !packet.VerifyIPv4Checksum(fr[packet.EthernetHeaderLen:]) {
		t.Error("bad IP checksum after NAT")
	}
	// Same flow gets the same port.
	fr2 := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 2, 3, 4}, 1234, 80, []byte("y"))
	ctx2, dec2 := mkCtx(t, fr2, 0)
	n.Process(ctx2)
	dec2.Decode(fr2)
	if dec2.UDP.SrcPort != port1 {
		t.Errorf("binding unstable: %d vs %d", dec2.UDP.SrcPort, port1)
	}
}

func TestNATPortExhaustion(t *testing.T) {
	n, _ := nf.NewNAT("nat", packet.IPv4Addr{203, 0, 113, 7}, 40000, 40001)
	for i := 0; i < 2; i++ {
		fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, byte(i + 1)}, packet.IPv4Addr{1, 2, 3, 4}, uint16(1000+i), 80, nil)
		ctx, _ := mkCtx(t, fr, 0)
		if v, _ := n.Process(ctx); v != nf.VerdictPass {
			t.Fatalf("flow %d rejected early", i)
		}
	}
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 99}, packet.IPv4Addr{1, 2, 3, 4}, 999, 80, nil)
	ctx, _ := mkCtx(t, fr, 0)
	if v, _ := n.Process(ctx); v != nf.VerdictDrop {
		t.Error("exhausted NAT accepted new flow")
	}
}

func TestNATSnapshotRestoreKeepsBindings(t *testing.T) {
	n, _ := nf.NewNAT("nat", packet.IPv4Addr{203, 0, 113, 7}, 40000, 40010)
	fr := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 2, 3, 4}, 1234, 80, nil)
	ctx, dec := mkCtx(t, fr, 0)
	n.Process(ctx)
	dec.Decode(fr)
	port := dec.UDP.SrcPort

	blob, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := nf.NewNAT("nat", packet.IPv4Addr{0, 0, 0, 0}, 1, 2)
	if err := n2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	fr2 := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{1, 2, 3, 4}, 1234, 80, nil)
	ctx2, dec2 := mkCtx(t, fr2, 0)
	n2.Process(ctx2)
	dec2.Decode(fr2)
	if dec2.UDP.SrcPort != port {
		t.Errorf("binding lost: %d vs %d", dec2.UDP.SrcPort, port)
	}
	if len(n2.Bindings()) != 1 {
		t.Errorf("bindings = %d", len(n2.Bindings()))
	}
}

// --- DPI --------------------------------------------------------------------

func TestDPIMatchesAndBlocks(t *testing.T) {
	d := nf.NewDPI("dpi", []string{"EVIL", "BAD"}, true)
	hit := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, []byte("xxEVILxx"))
	ctx, _ := mkCtx(t, hit, 0)
	if v, _ := d.Process(ctx); v != nf.VerdictDrop {
		t.Error("signature packet passed")
	}
	clean := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, []byte("hello world"))
	ctx, _ = mkCtx(t, clean, 0)
	if v, _ := d.Process(ctx); v != nf.VerdictPass {
		t.Error("clean packet dropped")
	}
	if d.Hits()["EVIL"] != 1 {
		t.Errorf("hits = %v", d.Hits())
	}
}

func TestDPIOverlappingPatterns(t *testing.T) {
	d := nf.NewDPI("dpi", []string{"abc", "bcd", "cde"}, false)
	fr := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, []byte("xabcdex"))
	ctx, _ := mkCtx(t, fr, 0)
	d.Process(ctx)
	h := d.Hits()
	if h["abc"] != 1 || h["bcd"] != 1 || h["cde"] != 1 {
		t.Errorf("hits = %v, want all three overlapping patterns", h)
	}
}

func TestDPISnapshotRestore(t *testing.T) {
	d := nf.NewDPI("dpi", []string{"SIG"}, true)
	fr := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, []byte("SIG"))
	ctx, _ := mkCtx(t, fr, 0)
	d.Process(ctx)
	blob, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2 := nf.NewDPI("dpi", nil, false)
	if err := d2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if d2.Hits()["SIG"] != 1 {
		t.Errorf("hits lost: %v", d2.Hits())
	}
	// The automaton must be rebuilt: new matches still detected and blocked.
	ctx2, _ := mkCtx(t, fr, 0)
	if v, _ := d2.Process(ctx2); v != nf.VerdictDrop {
		t.Error("restored DPI no longer blocks")
	}
}

// --- RateLimiter ------------------------------------------------------------

func TestRateLimiterGlobalCap(t *testing.T) {
	rl := nf.NewRateLimiter("rl", 0.001, 0) // 1 Mbps → 125 KB/s; burst 3 KB
	fr := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, make([]byte, 1000))
	passed, dropped := 0, 0
	// Offer 100 KB instantly (t=0): only the burst passes.
	for i := 0; i < 100; i++ {
		ctx, _ := mkCtx(t, fr, 0)
		v, _ := rl.Process(ctx)
		if v == nf.VerdictPass {
			passed++
		} else {
			dropped++
		}
	}
	if passed == 0 || dropped == 0 {
		t.Fatalf("passed=%d dropped=%d, want both nonzero", passed, dropped)
	}
	if passed > 5 {
		t.Errorf("passed=%d exceeds burst", passed)
	}
	// After a second, tokens refill.
	ctx, _ := mkCtx(t, fr, time.Second)
	if v, _ := rl.Process(ctx); v != nf.VerdictPass {
		t.Error("refilled bucket still drops")
	}
}

func TestRateLimiterPerFlow(t *testing.T) {
	rl := nf.NewRateLimiter("rl", 0, 0.001)
	frA := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, make([]byte, 1000))
	frB := udpFrame(t, packet.IPv4Addr{3, 3, 3, 3}, packet.IPv4Addr{2, 2, 2, 2}, 9, 2, make([]byte, 1000))
	// Exhaust flow A's bucket.
	for i := 0; i < 50; i++ {
		ctx, _ := mkCtx(t, frA, 0)
		rl.Process(ctx)
	}
	ctxA, _ := mkCtx(t, frA, 0)
	vA, _ := rl.Process(ctxA)
	ctxB, _ := mkCtx(t, frB, 0)
	vB, _ := rl.Process(ctxB)
	if vA != nf.VerdictDrop {
		t.Error("exhausted flow passed")
	}
	if vB != nf.VerdictPass {
		t.Error("fresh flow dropped (per-flow isolation broken)")
	}
}

func TestRateLimiterSnapshotRestore(t *testing.T) {
	rl := nf.NewRateLimiter("rl", 0.001, 0)
	fr := udpFrame(t, packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, 1, 2, make([]byte, 2900))
	ctx, _ := mkCtx(t, fr, 0)
	rl.Process(ctx) // drains most of the 3000-byte burst
	blob, err := rl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rl2 := nf.NewRateLimiter("rl", 1, 1)
	if err := rl2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	// The restored bucket must still be nearly empty at t=0.
	ctx2, _ := mkCtx(t, fr, 0)
	if v, _ := rl2.Process(ctx2); v != nf.VerdictDrop {
		t.Error("restored limiter forgot bucket level")
	}
}

// --- IDS --------------------------------------------------------------------

func TestIDSSynFlood(t *testing.T) {
	ids := nf.NewIDS("ids", 10, 1000)
	attacker := packet.IPv4Addr{6, 6, 6, 6}
	var blocked bool
	for i := 0; i < 15; i++ {
		fr := tcpFrame(t, attacker, packet.IPv4Addr{10, 0, 0, 2}, uint16(2000+i), 80, packet.TCPSyn)
		ctx, _ := mkCtx(t, fr, 0)
		v, _ := ids.Process(ctx)
		if v == nf.VerdictDrop {
			blocked = true
		}
	}
	if !blocked {
		t.Fatal("syn flood not detected")
	}
	if ids.FlaggedCount() != 1 {
		t.Errorf("flagged = %d", ids.FlaggedCount())
	}
	alerts := ids.Alerts()
	if len(alerts) != 1 || alerts[0].Reason != "syn-flood" {
		t.Errorf("alerts = %v", alerts)
	}
	// Innocent source still passes.
	fr := tcpFrame(t, packet.IPv4Addr{10, 0, 0, 50}, packet.IPv4Addr{10, 0, 0, 2}, 5555, 80, packet.TCPAck)
	ctx, _ := mkCtx(t, fr, 0)
	if v, _ := ids.Process(ctx); v != nf.VerdictPass {
		t.Error("innocent source blocked")
	}
}

func TestIDSPortScan(t *testing.T) {
	ids := nf.NewIDS("ids", 1000, 20)
	scanner := packet.IPv4Addr{7, 7, 7, 7}
	var blocked bool
	for p := uint16(1); p <= 30; p++ {
		fr := tcpFrame(t, scanner, packet.IPv4Addr{10, 0, 0, 2}, 4000, p, packet.TCPAck)
		ctx, _ := mkCtx(t, fr, 0)
		if v, _ := ids.Process(ctx); v == nf.VerdictDrop {
			blocked = true
		}
	}
	if !blocked {
		t.Fatal("port scan not detected")
	}
}

func TestIDSSnapshotRestore(t *testing.T) {
	ids := nf.NewIDS("ids", 5, 1000)
	attacker := packet.IPv4Addr{6, 6, 6, 6}
	for i := 0; i < 10; i++ {
		fr := tcpFrame(t, attacker, packet.IPv4Addr{10, 0, 0, 2}, uint16(2000+i), 80, packet.TCPSyn)
		ctx, _ := mkCtx(t, fr, 0)
		ids.Process(ctx)
	}
	blob, err := ids.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ids2 := nf.NewIDS("ids", 5, 1000)
	if err := ids2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	// The flag must survive migration: attacker stays blocked.
	fr := tcpFrame(t, attacker, packet.IPv4Addr{10, 0, 0, 2}, 9999, 80, packet.TCPAck)
	ctx, _ := mkCtx(t, fr, 0)
	if v, _ := ids2.Process(ctx); v != nf.VerdictDrop {
		t.Error("restored IDS forgot flagged source")
	}
}

// --- factory ----------------------------------------------------------------

func TestFactoryBuildsEveryCatalogType(t *testing.T) {
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeLoadBalancer, device.TypeNAT, device.TypeDPI,
		device.TypeRateLimiter, device.TypeIDS,
	}
	synth := traffic.NewSynth(4, 1)
	for _, typ := range types {
		inst, err := nf.New("x-"+typ, typ)
		if err != nil {
			t.Fatalf("New(%s): %v", typ, err)
		}
		if inst.Type() != typ {
			t.Errorf("type = %q, want %q", inst.Type(), typ)
		}
		// Every instance must process a realistic frame without error.
		fr := synth.Frame(0, 512)
		ctx, _ := mkCtx(t, fr, 0)
		if _, err := inst.Process(ctx); err != nil {
			t.Errorf("%s.Process: %v", typ, err)
		}
	}
	if _, err := nf.New("x", "bogus"); err == nil {
		t.Error("unknown type accepted")
	}
}

// Every stateful NF's snapshot must round-trip through a fresh instance of
// the same type without error (migration safety).
func TestAllStatefulSnapshotRoundTrip(t *testing.T) {
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeLoadBalancer, device.TypeNAT, device.TypeDPI,
		device.TypeRateLimiter, device.TypeIDS,
	}
	synth := traffic.NewSynth(8, 2)
	for _, typ := range types {
		src, err := nf.New("m-"+typ, typ)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			fr := synth.Frame(uint64(i%8), 256)
			ctx, _ := mkCtx(t, fr, time.Duration(i)*time.Microsecond)
			src.Process(ctx)
		}
		sf, ok := src.(nf.Stateful)
		if !ok {
			t.Fatalf("%s is not Stateful", typ)
		}
		blob, err := sf.Snapshot()
		if err != nil {
			t.Fatalf("%s snapshot: %v", typ, err)
		}
		dst, _ := nf.New("m-"+typ, typ)
		if err := dst.(nf.Stateful).Restore(blob); err != nil {
			t.Fatalf("%s restore: %v", typ, err)
		}
	}
}
