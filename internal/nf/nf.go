// Package nf is the network-function framework of the reproduction: the NF
// interface real packets flow through in the execution emulator, the
// processing context with its pre-decoded layers, verdicts, per-NF
// statistics, and state snapshot/restore hooks consumed by the UNO-style
// migration mechanism (internal/migrate).
//
// Eight NFs are implemented: the paper's four (Firewall, Logger, Monitor,
// LoadBalancer) plus NAT, DPI, RateLimiter and IDS for wider chains. All are
// functionally real — the Firewall matches rules, the NAT rewrites headers
// and fixes checksums, the DPI scans payloads with Aho–Corasick — because
// migration must move real state between devices.
package nf

import (
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/packet"
)

// Verdict is an NF's decision for a packet.
type Verdict uint8

// Verdicts.
const (
	// VerdictPass forwards the packet to the next NF unchanged or modified
	// in place.
	VerdictPass Verdict = iota
	// VerdictDrop discards the packet (firewall deny, rate limit, IDS
	// block).
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	if v == VerdictDrop {
		return "drop"
	}
	return "pass"
}

// Ctx carries one packet through an NF. Frame is the mutable wire frame;
// Decoder holds its pre-decoded layers (decoded once per chain hop by the
// runtime, shared by the NFs of a segment); Now is virtual or wall-clock
// time; FlowKey is the extracted 5-tuple when IPv4.
type Ctx struct {
	Frame   []byte
	Decoder *packet.Decoder
	Now     time.Duration
	FlowKey flow.Key
	HasFlow bool
}

// NF is a network function instance. Process must be safe for concurrent
// calls only if the NF is marked Concurrent; the emulator serializes calls
// otherwise. Implementations must not retain ctx or its frame beyond the
// call.
type NF interface {
	// Name returns the instance name (unique within a chain).
	Name() string
	// Type returns the catalog type name (device.Type*).
	Type() string
	// Process handles one packet and returns the verdict and an error for
	// malformed input the NF refuses to handle (counted, packet dropped).
	Process(ctx *Ctx) (Verdict, error)
	// Stats returns a snapshot of the NF's counters.
	Stats() Stats
}

// Stateful is implemented by NFs carrying migratable runtime state. The
// migration mechanism calls Snapshot on the source instance, transfers the
// bytes, and Restore on the destination instance.
type Stateful interface {
	NF
	// Snapshot serializes the NF's dynamic state.
	Snapshot() ([]byte, error)
	// Restore installs a snapshot taken from an instance of the same type.
	Restore(data []byte) error
}

// Stats counts an NF's packet outcomes.
type Stats struct {
	Processed uint64
	Passed    uint64
	Dropped   uint64
	Errors    uint64
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("processed=%d passed=%d dropped=%d errors=%d",
		s.Processed, s.Passed, s.Dropped, s.Errors)
}

// base carries the bookkeeping shared by all NF implementations.
type base struct {
	name      string
	typ       string
	processed metrics.Counter
	passed    metrics.Counter
	dropped   metrics.Counter
	errors    metrics.Counter
}

func newBase(name, typ string) base { return base{name: name, typ: typ} }

// Name implements NF.
func (b *base) Name() string { return b.name }

// Type implements NF.
func (b *base) Type() string { return b.typ }

// Stats implements NF.
func (b *base) Stats() Stats {
	return Stats{
		Processed: b.processed.Load(),
		Passed:    b.passed.Load(),
		Dropped:   b.dropped.Load(),
		Errors:    b.errors.Load(),
	}
}

// account records the outcome of one Process call.
func (b *base) account(v Verdict, err error) (Verdict, error) {
	b.processed.Inc()
	if err != nil {
		b.errors.Inc()
		return VerdictDrop, err
	}
	if v == VerdictDrop {
		b.dropped.Inc()
	} else {
		b.passed.Inc()
	}
	return v, nil
}
