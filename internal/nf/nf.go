// Package nf is the network-function framework of the reproduction: the NF
// interface real packets flow through in the execution emulator, the
// processing context with its pre-decoded layers, verdicts, per-NF
// statistics, and state snapshot/restore hooks consumed by the UNO-style
// migration mechanism (internal/migrate).
//
// Eight NFs are implemented: the paper's four (Firewall, Logger, Monitor,
// LoadBalancer) plus NAT, DPI, RateLimiter and IDS for wider chains. All are
// functionally real — the Firewall matches rules, the NAT rewrites headers
// and fixes checksums, the DPI scans payloads with Aho–Corasick — because
// migration must move real state between devices.
//
// The dataplane contract is batch-granular: the emulator hands each NF a
// burst of contexts via ProcessBatch, which every NF supports (the embedded
// base adapter falls back to per-packet Process; Firewall, Monitor and
// RateLimiter implement hand-written fast paths that amortize locking and
// accounting across the burst). ConcurrencySafe advertises whether an
// instance tolerates concurrent ProcessBatch calls from multiple worker
// shards — true for all built-in NFs, which lock internally — under the
// proviso that packets of one flow are never processed concurrently (the
// emulator guarantees this by flow-hash sharding).
package nf

import (
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/packet"
)

// Verdict is an NF's decision for a packet.
type Verdict uint8

// Verdicts.
const (
	// VerdictPass forwards the packet to the next NF unchanged or modified
	// in place.
	VerdictPass Verdict = iota
	// VerdictDrop discards the packet (firewall deny, rate limit, IDS
	// block).
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	if v == VerdictDrop {
		return "drop"
	}
	return "pass"
}

// Ctx carries one packet through an NF. Frame is the mutable wire frame;
// Decoder holds its pre-decoded layers (decoded once per chain hop by the
// runtime, shared by the NFs of a segment); Now is virtual or wall-clock
// time; FlowKey is the extracted 5-tuple when IPv4.
type Ctx struct {
	Frame   []byte
	Decoder *packet.Decoder
	Now     time.Duration
	FlowKey flow.Key
	HasFlow bool
}

// NF is a network function instance. Process and ProcessBatch must be safe
// for concurrent calls only if ConcurrencySafe reports true; the emulator
// serializes calls onto a single worker otherwise. Implementations must not
// retain ctx (or its frame or decoder) beyond the call — the runtime reuses
// context and layer structs across bursts.
type NF interface {
	// Name returns the instance name (unique within a chain).
	Name() string
	// Type returns the catalog type name (device.Type*).
	Type() string
	// Process handles one packet and returns the verdict and an error for
	// malformed input the NF refuses to handle (counted, packet dropped).
	Process(ctx *Ctx) (Verdict, error)
	// ProcessBatch handles a burst of packets and returns one verdict per
	// context, in order. It is the hot path of the batched dataplane:
	// implementations amortize locks and counters across the burst where
	// they can, and fall back to per-packet Process (via the base adapter)
	// where they can't. The returned slice is owned by the caller.
	ProcessBatch(ctxs []*Ctx) []Verdict
	// ConcurrencySafe reports whether the instance tolerates concurrent
	// Process/ProcessBatch calls from multiple dataplane shards, provided
	// no two shards carry packets of the same flow (the emulator's
	// flow-hash sharding guarantees that). NFs return false unless they
	// opt in; the emulator then pins them to one worker.
	ConcurrencySafe() bool
	// Stats returns a snapshot of the NF's counters.
	Stats() Stats
}

// Stateful is implemented by NFs carrying migratable runtime state. The
// migration mechanism calls Snapshot on the source instance, transfers the
// bytes, and Restore on the destination instance.
type Stateful interface {
	NF
	// Snapshot serializes the NF's dynamic state.
	Snapshot() ([]byte, error)
	// Restore installs a snapshot taken from an instance of the same type.
	Restore(data []byte) error
}

// Stats counts an NF's packet outcomes.
type Stats struct {
	Processed uint64
	Passed    uint64
	Dropped   uint64
	Errors    uint64
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("processed=%d passed=%d dropped=%d errors=%d",
		s.Processed, s.Passed, s.Dropped, s.Errors)
}

// base carries the bookkeeping shared by all NF implementations and adapts
// them to the batch contract: it supplies a correct (serial) ProcessBatch
// default and the ConcurrencySafe capability flag, so an NF only writes a
// batch fast path when one is worth having.
type base struct {
	name       string
	typ        string
	self       NF // the embedding NF, for the serial batch fallback
	concurrent bool
	processed  metrics.Counter
	passed     metrics.Counter
	dropped    metrics.Counter
	errors     metrics.Counter
}

func newBase(name, typ string) base { return base{name: name, typ: typ} }

// bind registers the embedding NF (so the default ProcessBatch can dispatch
// to its Process) and its concurrency capability. Every constructor calls
// it once before the instance escapes.
func (b *base) attach(self NF, concurrent bool) {
	b.self = self
	b.concurrent = concurrent
}

// Name implements NF.
func (b *base) Name() string { return b.name }

// Type implements NF.
func (b *base) Type() string { return b.typ }

// Stats implements NF.
func (b *base) Stats() Stats {
	return Stats{
		Processed: b.processed.Load(),
		Passed:    b.passed.Load(),
		Dropped:   b.dropped.Load(),
		Errors:    b.errors.Load(),
	}
}

// ProcessBatch implements NF with the serial fallback: one Process call per
// context. NFs with a profitable amortization (batched locking, batched
// accounting) shadow this method.
func (b *base) ProcessBatch(ctxs []*Ctx) []Verdict {
	out := make([]Verdict, len(ctxs))
	for i, ctx := range ctxs {
		out[i], _ = b.self.Process(ctx)
	}
	return out
}

// ConcurrencySafe implements NF. The default is false — a new NF must opt
// in (via bind) after auditing its locking.
func (b *base) ConcurrencySafe() bool { return b.concurrent }

// account records the outcome of one Process call.
func (b *base) account(v Verdict, err error) (Verdict, error) {
	b.processed.Inc()
	if err != nil {
		b.errors.Inc()
		return VerdictDrop, err
	}
	if v == VerdictDrop {
		b.dropped.Inc()
	} else {
		b.passed.Inc()
	}
	return v, nil
}

// accountN records the aggregate outcome of one batch in four atomic adds,
// the batched counterpart of account used by the ProcessBatch fast paths.
func (b *base) accountN(passed, dropped, errs uint64) {
	b.processed.Add(passed + dropped + errs)
	b.passed.Add(passed)
	b.dropped.Add(dropped)
	b.errors.Add(errs)
}
