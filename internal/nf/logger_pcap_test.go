package nf_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/nf"
	"repro/internal/pcap"
	"repro/internal/traffic"
)

func TestLoggerCaptureExportsPcap(t *testing.T) {
	lg := nf.NewLoggerCapture("log", 64, 96)
	synth := traffic.NewSynth(4, 9)
	var wantSizes []int
	for i := 0; i < 10; i++ {
		fr := synth.Frame(uint64(i%4), 200+i*10)
		ctx, _ := mkCtx(t, fr, time.Duration(i)*time.Millisecond)
		if v, _ := lg.Process(ctx); v != nf.VerdictPass {
			t.Fatal("logger dropped")
		}
		wantSizes = append(wantSizes, len(fr))
	}

	var buf bytes.Buffer
	n, err := lg.WritePcap(&buf)
	if err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	if n != 10 {
		t.Fatalf("wrote %d packets, want 10", n)
	}
	pkts, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(pkts) != 10 {
		t.Fatalf("read %d packets", len(pkts))
	}
	for i, p := range pkts {
		if p.OrigLen != wantSizes[i] {
			t.Errorf("pkt %d origlen = %d, want %d", i, p.OrigLen, wantSizes[i])
		}
		if len(p.Data) > 96 {
			t.Errorf("pkt %d not truncated to snaplen: %d", i, len(p.Data))
		}
		if p.Time != time.Duration(i)*time.Millisecond {
			t.Errorf("pkt %d time = %v", i, p.Time)
		}
	}
}

func TestLoggerCaptureSurvivesMigration(t *testing.T) {
	lg := nf.NewLoggerCapture("log", 8, 128)
	synth := traffic.NewSynth(2, 9)
	for i := 0; i < 5; i++ {
		ctx, _ := mkCtx(t, synth.Frame(0, 256), time.Duration(i))
		lg.Process(ctx)
	}
	blob, err := lg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lg2 := nf.NewLogger("log", 1) // plain logger; restore brings capture config
	if err := lg2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := lg2.WritePcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("restored journal exported %d packets, want 5", n)
	}
}

func TestPlainLoggerExportsNothing(t *testing.T) {
	lg := nf.NewLogger("log", 8)
	synth := traffic.NewSynth(2, 9)
	ctx, _ := mkCtx(t, synth.Frame(0, 256), 0)
	lg.Process(ctx)
	var buf bytes.Buffer
	n, err := lg.WritePcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("plain logger exported %d packets", n)
	}
}
