package nf_test

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/traffic"
)

// mkBatch builds a burst of contexts from synthetic frames, one private
// decoder per slot, the way the emulator's pool workers do.
func mkBatch(t *testing.T, synth *traffic.Synth, flows uint64, n, size int) []*nf.Ctx {
	t.Helper()
	ctxs := make([]*nf.Ctx, n)
	for i := 0; i < n; i++ {
		fr := synth.Frame(uint64(i)%flows, size)
		ctx, _ := mkCtx(t, fr, time.Duration(i)*time.Microsecond)
		ctxs[i] = ctx
	}
	return ctxs
}

// TestProcessBatchMatchesSerial feeds the same burst to two fresh instances
// of every catalog type — one per-packet, one batched — and requires
// identical verdicts and identical statistics. This pins the hand-written
// fast paths (Firewall, Monitor, RateLimiter) to the serial semantics and
// exercises the base adapter for the rest.
func TestProcessBatchMatchesSerial(t *testing.T) {
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeLoadBalancer, device.TypeNAT, device.TypeDPI,
		device.TypeRateLimiter, device.TypeIDS,
	}
	for _, typ := range types {
		t.Run(typ, func(t *testing.T) {
			serial, err := nf.New("s-"+typ, typ)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := nf.New("b-"+typ, typ)
			if err != nil {
				t.Fatal(err)
			}
			const n, size = 96, 512
			synth := traffic.NewSynth(8, 7)
			sctxs := mkBatch(t, synth, 8, n, size)
			synth2 := traffic.NewSynth(8, 7) // identical frame sequence
			bctxs := mkBatch(t, synth2, 8, n, size)

			want := make([]nf.Verdict, n)
			for i, ctx := range sctxs {
				want[i], _ = serial.Process(ctx)
			}
			got := batched.ProcessBatch(bctxs)
			if len(got) != n {
				t.Fatalf("ProcessBatch returned %d verdicts, want %d", len(got), n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("packet %d: batch %v, serial %v", i, got[i], want[i])
				}
			}
			if serial.Stats() != batched.Stats() {
				t.Errorf("stats diverge: serial %v, batch %v", serial.Stats(), batched.Stats())
			}
		})
	}
}

// TestConcurrencySafeCapability: every built-in NF locks internally and
// advertises it, so the emulator may shard all of them.
func TestConcurrencySafeCapability(t *testing.T) {
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeLoadBalancer, device.TypeNAT, device.TypeDPI,
		device.TypeRateLimiter, device.TypeIDS,
	}
	for _, typ := range types {
		inst, err := nf.New("c-"+typ, typ)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.ConcurrencySafe() {
			t.Errorf("%s: ConcurrencySafe() = false, want true", typ)
		}
	}
}

// TestFirewallBatchDeniesWithinBurst: a deny rule must hit mid-burst, and
// allowed flows must land in the connection cache exactly as with the
// serial path.
func TestFirewallBatchDeniesWithinBurst(t *testing.T) {
	bad := packet.IPv4Addr{10, 0, 0, 66}
	rules := []nf.Rule{
		{Priority: 1, AnyProto: true, SrcIP: bad, SrcBits: 32, Action: nf.ActionDeny},
		{Priority: 9, AnyProto: true, Action: nf.ActionAllow},
	}
	fw := nf.NewFirewall("fw", rules, false)
	good := udpFrame(t, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 1}, 1000, 80, []byte("ok"))
	evil := udpFrame(t, bad, packet.IPv4Addr{10, 0, 1, 1}, 1000, 80, []byte("no"))
	var ctxs []*nf.Ctx
	for i := 0; i < 6; i++ {
		fr := good
		if i%2 == 1 {
			fr = evil
		}
		ctx, _ := mkCtx(t, fr, time.Duration(i))
		ctxs = append(ctxs, ctx)
	}
	verdicts := fw.ProcessBatch(ctxs)
	for i, v := range verdicts {
		want := nf.VerdictPass
		if i%2 == 1 {
			want = nf.VerdictDrop
		}
		if v != want {
			t.Errorf("packet %d: %v, want %v", i, v, want)
		}
	}
	if fw.ConnCount() != 1 {
		t.Errorf("conn cache has %d entries, want 1", fw.ConnCount())
	}
	st := fw.Stats()
	if st.Processed != 6 || st.Passed != 3 || st.Dropped != 3 {
		t.Errorf("stats: %v", st)
	}
}

// TestRateLimiterBatchSplitsBurst: the global bucket can run dry mid-burst;
// the tail of the burst must be dropped packet-by-packet, not all-or-nothing.
func TestRateLimiterBatchSplitsBurst(t *testing.T) {
	// 1 Gbps global → 125e6 B/s; burst bucket = 125 kB. 512-byte frames at
	// the same virtual instant: ~244 pass, the rest must drop.
	rl := nf.NewRateLimiter("rl", 1, 0)
	synth := traffic.NewSynth(4, 3)
	ctxs := make([]*nf.Ctx, 300)
	for i := range ctxs {
		ctx, _ := mkCtx(t, synth.Frame(uint64(i%4), 512), 0)
		ctxs[i] = ctx
	}
	verdicts := rl.ProcessBatch(ctxs)
	var passed, dropped int
	for i, v := range verdicts {
		if v == nf.VerdictPass {
			passed++
			if dropped > 0 {
				t.Errorf("packet %d passed after a drop: bucket cannot refill at constant Now", i)
			}
		} else {
			dropped++
		}
	}
	if passed == 0 || dropped == 0 {
		t.Fatalf("burst not split: passed=%d dropped=%d", passed, dropped)
	}
	st := rl.Stats()
	if st.Passed != uint64(passed) || st.Dropped != uint64(dropped) {
		t.Errorf("stats %v disagree with verdicts pass=%d drop=%d", st, passed, dropped)
	}
}

// TestBatchFastPathAllocs: the hand-written fast paths may allocate only
// the returned verdict slice (1 alloc per burst), nothing per packet.
func TestBatchFastPathAllocs(t *testing.T) {
	synth := traffic.NewSynth(8, 5)
	ctxs := mkBatch(t, synth, 8, 64, 512)

	fw := nf.NewFirewall("fw", nf.DefaultFirewallRules(), false)
	fw.ProcessBatch(ctxs) // warm the connection cache
	if n := testing.AllocsPerRun(200, func() { fw.ProcessBatch(ctxs) }); n > 1 {
		t.Errorf("Firewall.ProcessBatch: %.2f allocs/burst, want ≤1", n)
	}
	mon := nf.NewMonitor("mon", 0, 1<<16)
	mon.ProcessBatch(ctxs)
	if n := testing.AllocsPerRun(200, func() { mon.ProcessBatch(ctxs) }); n > 1 {
		t.Errorf("Monitor.ProcessBatch: %.2f allocs/burst, want ≤1", n)
	}
	rl := nf.NewRateLimiter("rl", 1000, 0) // high rate: all pass, no map growth
	rl.ProcessBatch(ctxs)
	if n := testing.AllocsPerRun(200, func() { rl.ProcessBatch(ctxs) }); n > 1 {
		t.Errorf("RateLimiter.ProcessBatch: %.2f allocs/burst, want ≤1", n)
	}
}
