package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// MeterCell is one worker's private slice of a ShardedMeter: a set of
// counters sized and padded to a cache line so two workers' cells never
// share one. Writes are plain atomic adds (the cell may be shared by
// several foreign writers — see ShardedMeter — so adds must be atomic, but
// with one worker per cell they are uncontended and cost a handful of
// nanoseconds). The observed-interval end is maintained with a CAS-max so
// concurrent writers can never move it backwards.
type MeterCell struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
	drops   atomic.Uint64
	end     atomic.Int64 // latest observed virtual time, nanoseconds
	_       [32]byte     // pad to 64 bytes: no false sharing between cells
}

// observe advances the cell's interval end to now if it is later.
//
//pam:hotpath
func (c *MeterCell) observe(now time.Duration) {
	n := int64(now)
	for {
		e := c.end.Load()
		if n <= e || c.end.CompareAndSwap(e, n) {
			return
		}
	}
}

// ObserveN records a burst of packets delivered together at virtual time
// now.
//
//pam:hotpath
func (c *MeterCell) ObserveN(packets, bytes uint64, now time.Duration) {
	if packets == 0 {
		return
	}
	c.packets.Add(packets)
	c.bytes.Add(bytes)
	c.observe(now)
}

// Drop records one dropped packet at virtual time now.
//
//pam:hotpath
func (c *MeterCell) Drop(now time.Duration) { c.DropN(1, now) }

// DropN records a burst of n packets dropped together at virtual time now.
//
//pam:hotpath
func (c *MeterCell) DropN(n uint64, now time.Duration) {
	if n == 0 {
		return
	}
	c.drops.Add(n)
	c.observe(now)
}

// ShardedMeter is a Meter whose counters are split across per-worker cells,
// the per-worker-counters idiom of DPDK-style dataplanes: each worker
// writes only its own cell on the hot path (no shared cache line, no
// mutex), and readers fold the cells into totals at sampling boundaries.
// The fold is not a consistent snapshot across cells — concurrent writers
// may land between cell reads — which is the same monotonic-counter
// semantics the single-cell Meter already had, and exactly what
// window-differencing samplers need.
//
// Cell 0 is conventionally the shared overflow cell for writers without a
// worker identity (SendChain callers and other ingress paths); it tolerates
// multiple concurrent writers at atomic-add cost. In the emulator the
// worker identity is the run-to-completion pool worker: pool worker i
// writes cell i+1 in every meter it touches — its own element's delivery
// meter and a successor's queue-drop meter alike — so a meter's cell count
// follows the pool size, not the element's shard count.
type ShardedMeter struct {
	start time.Duration
	cells []MeterCell
}

// NewShardedMeter returns a meter with the given number of cells whose
// interval starts at the given virtual time. cells must be at least 1.
func NewShardedMeter(cells int, start time.Duration) *ShardedMeter {
	if cells < 1 {
		cells = 1
	}
	return &ShardedMeter{start: start, cells: make([]MeterCell, cells)}
}

// Cell returns the i-th counter cell. Workers resolve their cell once and
// write to it directly.
func (m *ShardedMeter) Cell(i int) *MeterCell { return &m.cells[i] }

// Cells returns how many cells the meter carries.
func (m *ShardedMeter) Cells() int { return len(m.cells) }

// Packets folds the cells into the total delivered packet count.
func (m *ShardedMeter) Packets() uint64 {
	var t uint64
	for i := range m.cells {
		t += m.cells[i].packets.Load()
	}
	return t
}

// Bytes folds the cells into the total delivered byte count.
func (m *ShardedMeter) Bytes() uint64 {
	var t uint64
	for i := range m.cells {
		t += m.cells[i].bytes.Load()
	}
	return t
}

// Drops folds the cells into the total dropped packet count.
func (m *ShardedMeter) Drops() uint64 {
	var t uint64
	for i := range m.cells {
		t += m.cells[i].drops.Load()
	}
	return t
}

// Elapsed returns the observed measurement interval: the latest cell end
// minus the start.
func (m *ShardedMeter) Elapsed() time.Duration {
	var end int64
	for i := range m.cells {
		if e := m.cells[i].end.Load(); e > end {
			end = e
		}
	}
	if d := time.Duration(end) - m.start; d > 0 {
		return d
	}
	return 0
}

// Gbps returns the delivered goodput in gigabits per second over the
// observed interval, or 0 if the interval is empty.
func (m *ShardedMeter) Gbps() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(m.Bytes()) * 8 / el.Seconds() / 1e9
}

// PPS returns delivered packets per second over the observed interval.
func (m *ShardedMeter) PPS() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(m.Packets()) / el.Seconds()
}

// LossRate returns drops/(drops+delivered), or 0 when nothing was offered.
func (m *ShardedMeter) LossRate() float64 {
	d := m.Drops()
	p := m.Packets()
	if d+p == 0 {
		return 0
	}
	return float64(d) / float64(d+p)
}

// String summarizes the meter for logs.
func (m *ShardedMeter) String() string {
	return fmt.Sprintf("pkts=%d drops=%d rate=%.3fGbps loss=%.1f%%",
		m.Packets(), m.Drops(), m.Gbps(), m.LossRate()*100)
}
