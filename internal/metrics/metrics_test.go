package metrics_test

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestHistogramBasics(t *testing.T) {
	h := metrics.NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram not zeroed")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-50500) > 1 {
		t.Errorf("mean = %v, want 50500", got)
	}
	// The p50 estimate must be within the sub-bucket resolution (~6.25%).
	p50 := float64(h.Percentile(50))
	if p50 < 50000*0.97 || p50 > 50000*1.07 {
		t.Errorf("p50 = %v, want ≈50000", p50)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := metrics.NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Errorf("min=%d count=%d", h.Min(), h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := metrics.NewHistogram(), metrics.NewHistogram()
	for i := 0; i < 50; i++ {
		a.Record(100)
		b.Record(10000)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Errorf("count = %d", a.Count())
	}
	if a.Min() != 100 || a.Max() != 10000 {
		t.Errorf("min/max = %d/%d", a.Min(), a.Max())
	}
	if a.Sum() != 50*100+50*10000 {
		t.Errorf("sum = %d", a.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := metrics.NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramRecordN(t *testing.T) {
	h := metrics.NewHistogram()
	h.RecordN(500, 10)
	if h.Count() != 10 || h.Sum() != 5000 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

// Property: percentile estimates are within the documented relative error
// of the exact empirical quantile.
func TestPropertyPercentileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := metrics.NewHistogram()
		n := 100 + r.Intn(1000)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(r.Intn(10_000_000))
			h.Record(xs[i])
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, p := range []float64{50, 90, 99} {
			rank := int(math.Ceil(p/100*float64(n))) - 1
			exact := xs[rank]
			got := h.Percentile(p)
			// Estimate must be >= exact (upper bucket bound) and within
			// the 1/16 sub-bucket resolution.
			if got < exact || float64(got) > float64(exact)*1.0626+64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterRates(t *testing.T) {
	m := metrics.NewMeter(0)
	// 1000 packets × 1250 bytes over 10 ms = 1 Gbps, 100 kpps.
	for i := 0; i < 1000; i++ {
		m.Observe(1250, time.Duration(i+1)*10*time.Microsecond)
	}
	if got := m.Gbps(); math.Abs(got-1.0) > 0.001 {
		t.Errorf("Gbps = %v, want 1.0", got)
	}
	if got := m.PPS(); math.Abs(got-100000) > 100 {
		t.Errorf("PPS = %v, want 100000", got)
	}
	if m.LossRate() != 0 {
		t.Errorf("loss = %v", m.LossRate())
	}
	m.Drop(11 * time.Millisecond)
	if got := m.LossRate(); math.Abs(got-1.0/1001) > 1e-9 {
		t.Errorf("loss = %v", got)
	}
}

func TestMeterReset(t *testing.T) {
	m := metrics.NewMeter(0)
	m.Observe(100, time.Millisecond)
	m.Reset(2 * time.Millisecond)
	if m.Packets() != 0 || m.Gbps() != 0 {
		t.Error("reset did not clear")
	}
	m.Observe(100, 3*time.Millisecond)
	if m.Elapsed() != time.Millisecond {
		t.Errorf("elapsed = %v, want 1ms", m.Elapsed())
	}
}

func TestWelford(t *testing.T) {
	var w metrics.Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 || math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("n=%d mean=%v", w.N(), w.Mean())
	}
	// Sample variance of the set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := metrics.Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := metrics.Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := metrics.Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := metrics.Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts metrics.TimeSeries
	for i := 0; i < 10; i++ {
		ts.Append(time.Duration(i)*time.Millisecond, float64(i))
	}
	if ts.Len() != 10 {
		t.Errorf("len = %d", ts.Len())
	}
	last, ok := ts.Last()
	if !ok || last.V != 9 {
		t.Errorf("last = %+v ok=%v", last, ok)
	}
	// Mean of values with T >= 5ms: (5+6+7+8+9)/5 = 7.
	if got := ts.MeanAfter(5 * time.Millisecond); got != 7 {
		t.Errorf("MeanAfter = %v, want 7", got)
	}
}

func TestCounter(t *testing.T) {
	var c metrics.Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("load = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Error("reset failed")
	}
}

func TestFormatBars(t *testing.T) {
	s := metrics.FormatBars([]string{"a", "bb"}, []float64{1, 2}, 10, "x")
	if s == "" {
		t.Error("empty bars")
	}
	if metrics.FormatBars([]string{"a"}, []float64{1, 2}, 10, "x") != "" {
		t.Error("mismatched lengths must return empty")
	}
}

func TestHistogramRecordBatch(t *testing.T) {
	a := metrics.NewHistogram()
	b := metrics.NewHistogram()
	vs := []int64{0, 1, 17, 1000, 99999, 1 << 40, -5}
	a.RecordBatch(vs)
	for _, v := range vs {
		b.Record(v)
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Errorf("RecordBatch diverges from Record: %+v vs %+v", a.Snapshot(), b.Snapshot())
	}
	for _, p := range []float64{50, 90, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Errorf("p%.0f: batch %d vs serial %d", p, a.Percentile(p), b.Percentile(p))
		}
	}
	a.RecordBatch(nil) // no-op
	if a.Count() != uint64(len(vs)) {
		t.Errorf("empty batch changed count: %d", a.Count())
	}
}

func TestMeterObserveNDropN(t *testing.T) {
	m := metrics.NewMeter(0)
	m.ObserveN(32, 32*512, time.Second)
	m.DropN(8, 2*time.Second)
	m.ObserveN(0, 0, 5*time.Second) // no-op, must not move the interval
	m.DropN(0, 9*time.Second)       // no-op
	if m.Packets() != 32 || m.Bytes() != 32*512 || m.Drops() != 8 {
		t.Errorf("counters: pkts=%d bytes=%d drops=%d", m.Packets(), m.Bytes(), m.Drops())
	}
	if m.Elapsed() != 2*time.Second {
		t.Errorf("elapsed = %v, want 2s", m.Elapsed())
	}
	wantGbps := float64(32*512) * 8 / 2 / 1e9
	if math.Abs(m.Gbps()-wantGbps) > 1e-12 {
		t.Errorf("gbps = %v, want %v", m.Gbps(), wantGbps)
	}
	if got := m.LossRate(); math.Abs(got-8.0/40.0) > 1e-12 {
		t.Errorf("loss = %v", got)
	}
}

func TestMeterObserveNConcurrent(t *testing.T) {
	m := metrics.NewMeter(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.ObserveN(4, 4*100, time.Duration(i))
				m.DropN(1, time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if m.Packets() != 8*1000*4 || m.Drops() != 8*1000 {
		t.Errorf("lost updates: pkts=%d drops=%d", m.Packets(), m.Drops())
	}
}
