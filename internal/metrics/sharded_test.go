package metrics_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestShardedMeterFold checks that per-cell writes fold into the same
// totals, rates and loss the single-cell Meter would report: counters sum
// across cells, the interval end is the max across cells.
func TestShardedMeterFold(t *testing.T) {
	m := metrics.NewShardedMeter(3, 0)
	if m.Cells() != 3 {
		t.Fatalf("cells = %d, want 3", m.Cells())
	}
	// 1000 packets × 1250 bytes over 10 ms = 1 Gbps, spread round-robin
	// across the cells; the last write lands the interval end on cell 1.
	for i := 0; i < 1000; i++ {
		m.Cell(i%3).ObserveN(1, 1250, time.Duration(i+1)*10*time.Microsecond)
	}
	if m.Packets() != 1000 || m.Bytes() != 1000*1250 {
		t.Errorf("fold: pkts=%d bytes=%d", m.Packets(), m.Bytes())
	}
	if m.Elapsed() != 10*time.Millisecond {
		t.Errorf("elapsed = %v, want 10ms (max across cells)", m.Elapsed())
	}
	if got := m.Gbps(); math.Abs(got-1.0) > 0.001 {
		t.Errorf("Gbps = %v, want 1.0", got)
	}
	if got := m.PPS(); math.Abs(got-100000) > 100 {
		t.Errorf("PPS = %v, want 100000", got)
	}
	m.Cell(2).DropN(8, 11*time.Millisecond)
	if m.Drops() != 8 {
		t.Errorf("drops = %d", m.Drops())
	}
	if got := m.LossRate(); math.Abs(got-8.0/1008) > 1e-12 {
		t.Errorf("loss = %v", got)
	}
	if m.Elapsed() != 11*time.Millisecond {
		t.Errorf("elapsed after drop = %v, want 11ms", m.Elapsed())
	}
}

// TestShardedMeterEndMonotonic checks the CAS-max on the interval end: an
// observation at an earlier virtual time must never move the end backwards,
// and zero-count observations must not move it at all.
func TestShardedMeterEndMonotonic(t *testing.T) {
	m := metrics.NewShardedMeter(2, 0)
	m.Cell(0).ObserveN(1, 100, 5*time.Millisecond)
	m.Cell(1).ObserveN(1, 100, 2*time.Millisecond) // earlier, other cell
	m.Cell(0).ObserveN(1, 100, 3*time.Millisecond) // earlier, same cell
	if m.Elapsed() != 5*time.Millisecond {
		t.Errorf("elapsed = %v, want 5ms: end moved backwards", m.Elapsed())
	}
	m.Cell(0).ObserveN(0, 0, time.Second) // no packets: must not advance
	m.Cell(1).DropN(0, time.Second)
	if m.Elapsed() != 5*time.Millisecond {
		t.Errorf("elapsed = %v after zero-count writes, want 5ms", m.Elapsed())
	}
}

// TestShardedMeterStartOffset mirrors the single-cell Meter's interval
// semantics: elapsed is measured from the construction-time start, clamped
// at zero when nothing has been observed past it.
func TestShardedMeterStartOffset(t *testing.T) {
	m := metrics.NewShardedMeter(1, 2*time.Millisecond)
	if m.Elapsed() != 0 || m.Gbps() != 0 || m.PPS() != 0 {
		t.Error("fresh meter must report an empty interval")
	}
	m.Cell(0).ObserveN(1, 100, 3*time.Millisecond)
	if m.Elapsed() != time.Millisecond {
		t.Errorf("elapsed = %v, want 1ms past start", m.Elapsed())
	}
}

// TestShardedMeterCellClamp guards the constructor's floor: fewer than one
// cell is clamped to one so Cell(0) — the shared overflow cell — always
// exists.
func TestShardedMeterCellClamp(t *testing.T) {
	m := metrics.NewShardedMeter(0, 0)
	if m.Cells() != 1 {
		t.Fatalf("cells = %d, want 1", m.Cells())
	}
	m.Cell(0).Drop(time.Millisecond)
	if m.Drops() != 1 {
		t.Error("overflow cell lost a drop")
	}
}

// TestShardedMeterConcurrent hammers every cell — including cell 0, the
// multi-writer overflow cell — from concurrent goroutines and checks no
// update is lost. Run under -race: this is the hot-path write pattern of
// the pool workers.
func TestShardedMeterConcurrent(t *testing.T) {
	const workers, writes = 8, 1000
	m := metrics.NewShardedMeter(workers+1, 0)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				m.Cell(g+1).ObserveN(4, 4*100, time.Duration(i))
				m.Cell(0).DropN(1, time.Duration(i)) // everyone shares cell 0
			}
		}(g)
	}
	wg.Wait()
	if m.Packets() != workers*writes*4 || m.Drops() != workers*writes {
		t.Errorf("lost updates: pkts=%d drops=%d", m.Packets(), m.Drops())
	}
	if m.Elapsed() != time.Duration(writes-1) {
		t.Errorf("elapsed = %v, want %v", m.Elapsed(), time.Duration(writes-1))
	}
}
