// Package metrics provides measurement primitives used throughout the PAM
// reproduction: log-bucketed latency histograms, throughput meters, online
// moment accumulators and time series.
//
// The histogram design follows the HDR-histogram idea: values are bucketed by
// order of magnitude with a fixed number of linear sub-buckets per magnitude,
// giving a bounded relative error (~1/subBuckets) at every scale while using
// a small, fixed amount of memory. All methods are safe for concurrent use
// unless noted otherwise.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// subBucketBits fixes the per-magnitude resolution of Histogram. With 5 bits
// the linear region spans [0, 32) exactly and every later power-of-two row
// is split into 16 linear sub-buckets, bounding relative quantile error at
// about 1/16 (6.25%).
const subBucketBits = 5

const subBucketCount = 1 << subBucketBits

// Histogram records non-negative int64 samples (typically latencies in
// nanoseconds) into logarithmic buckets and answers quantile queries. The
// zero value is ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketIndex maps a sample to its bucket. Values in [0, subBucketCount)
// map linearly; above that each power of two is split into subBucketCount/2
// linear sub-buckets.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBucketCount {
		return int(v)
	}
	// Position of the highest set bit beyond the linear region. Row r
	// (r = exp − subBucketBits ≥ 0) holds values [2^exp, 2^(exp+1)) in
	// subBucketCount/2 linear sub-buckets of width 2^(r+1).
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), >= subBucketBits
	shift := exp - subBucketBits + 1
	base := (exp - subBucketBits) * (subBucketCount / 2)
	offset := int(v>>uint(shift)) - subBucketCount/2
	return subBucketCount + base + offset
}

// bucketLow returns the smallest value mapping to bucket i; bucketHigh the
// largest. Together they bound the true sample value.
func bucketLow(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	i -= subBucketCount
	exp := i / (subBucketCount / 2)
	off := i % (subBucketCount / 2)
	shift := exp + 1
	return int64(subBucketCount/2+off) << uint(shift)
}

func bucketHigh(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	next := bucketLow(i + 1)
	return next - 1
}

// recordLocked adds n identical samples; callers hold h.mu.
func (h *Histogram) recordLocked(v int64, n uint64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if h.counts == nil {
		h.min = math.MaxInt64
	}
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx] += n
	h.count += n
	h.sum += v * int64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	h.mu.Lock()
	h.recordLocked(v, 1)
	h.mu.Unlock()
}

// RecordN adds n identical samples.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	h.mu.Lock()
	h.recordLocked(v, n)
	h.mu.Unlock()
}

// RecordBatch adds a burst of distinct samples under one lock acquisition,
// the batched hot-path variant Record used per-frame: the burst dataplane
// records a whole egress batch of latencies in one critical section.
func (h *Histogram) RecordBatch(vs []int64) {
	if len(vs) == 0 {
		return
	}
	h.mu.Lock()
	for _, v := range vs {
		h.recordLocked(v, 1)
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of recorded samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns an estimate of the p-th percentile (p in [0,100]).
// The estimate is the upper bound of the bucket containing the rank, so the
// relative error is bounded by the sub-bucket resolution. Returns 0 when the
// histogram is empty.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			hi := bucketHigh(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Merge adds all samples recorded in other into h. min/max/sum are combined
// exactly; per-bucket counts are summed.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || h == other {
		return
	}
	other.mu.Lock()
	counts := make([]uint64, len(other.counts))
	copy(counts, other.counts)
	ocount, osum, omin, omax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	if ocount == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(counts) > len(h.counts) {
		grown := make([]uint64, len(counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.count == 0 {
		h.min = omin
		h.max = omax
	} else {
		if omin < h.min {
			h.min = omin
		}
		if omax > h.max {
			h.max = omax
		}
	}
	h.count += ocount
	h.sum += osum
}

// Reset clears the histogram back to the empty state.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.counts = nil
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
	h.mu.Unlock()
}

// Snapshot returns an immutable copy of the histogram's summary statistics.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// Summary holds point-in-time statistics extracted from a Histogram.
type Summary struct {
	Count               uint64
	Mean                float64
	Min, Max            int64
	P50, P90, P99, P999 int64
}

// String renders the summary on one line, treating samples as nanoseconds.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
		s.Count, s.Mean/1e3, float64(s.P50)/1e3, float64(s.P90)/1e3, float64(s.P99)/1e3, float64(s.P999)/1e3, float64(s.Max)/1e3)
}

// Welford accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use. Not safe for concurrent use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Quantile computes the p-quantile (p in [0,1]) of xs by sorting a copy.
// It returns 0 for an empty slice. Intended for small result sets where
// exactness matters more than speed.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	// Linear interpolation between closest ranks.
	pos := p * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// FormatBars renders a simple horizontal ASCII bar chart for labelled values,
// used by the report package to approximate the paper's figures in a
// terminal. width is the maximum bar width in characters.
func FormatBars(labels []string, values []float64, width int, unit string) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	maxv := values[0]
	for _, v := range values {
		if v > maxv {
			maxv = v
		}
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if maxv > 0 {
			n = int(math.Round(values[i] / maxv * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.2f %s\n", maxLabel, l, strings.Repeat("#", n), values[i], unit)
	}
	return b.String()
}
