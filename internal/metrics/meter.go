package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates packet and byte counts over a measurement interval and
// converts them to rates. Time is supplied by the caller (virtual simulator
// time or wall-clock), which keeps the meter usable from both the
// discrete-event simulator and the live emulator. Safe for concurrent use.
type Meter struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
	drops   atomic.Uint64

	mu    sync.Mutex
	start time.Duration // virtual time at Reset/creation
	end   time.Duration // last observed virtual time
}

// NewMeter returns a meter whose interval starts at the given virtual time.
func NewMeter(start time.Duration) *Meter {
	return &Meter{start: start, end: start}
}

// Observe records a delivered packet of size bytes at virtual time now.
func (m *Meter) Observe(bytes int, now time.Duration) {
	m.packets.Add(1)
	m.bytes.Add(uint64(bytes))
	m.mu.Lock()
	if now > m.end {
		m.end = now
	}
	m.mu.Unlock()
}

// ObserveN records a burst of packets delivered together at virtual time
// now: one atomic add per counter for the whole burst, the batched hot-path
// variant of Observe used by the burst dataplane.
func (m *Meter) ObserveN(packets, bytes uint64, now time.Duration) {
	if packets == 0 {
		return
	}
	m.packets.Add(packets)
	m.bytes.Add(bytes)
	m.mu.Lock()
	if now > m.end {
		m.end = now
	}
	m.mu.Unlock()
}

// Drop records a dropped packet at virtual time now.
func (m *Meter) Drop(now time.Duration) {
	m.drops.Add(1)
	m.mu.Lock()
	if now > m.end {
		m.end = now
	}
	m.mu.Unlock()
}

// DropN records a burst of n packets dropped together at virtual time now.
func (m *Meter) DropN(n uint64, now time.Duration) {
	if n == 0 {
		return
	}
	m.drops.Add(n)
	m.mu.Lock()
	if now > m.end {
		m.end = now
	}
	m.mu.Unlock()
}

// Packets returns the number of delivered packets.
func (m *Meter) Packets() uint64 { return m.packets.Load() }

// Bytes returns the number of delivered bytes.
func (m *Meter) Bytes() uint64 { return m.bytes.Load() }

// Drops returns the number of dropped packets.
func (m *Meter) Drops() uint64 { return m.drops.Load() }

// Elapsed returns the observed measurement interval.
func (m *Meter) Elapsed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.end - m.start
}

// Gbps returns the delivered goodput in gigabits per second over the
// observed interval, or 0 if the interval is empty.
func (m *Meter) Gbps() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(m.bytes.Load()) * 8 / el.Seconds() / 1e9
}

// PPS returns delivered packets per second over the observed interval.
func (m *Meter) PPS() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(m.packets.Load()) / el.Seconds()
}

// LossRate returns drops/(drops+delivered), or 0 when nothing was offered.
func (m *Meter) LossRate() float64 {
	d := m.drops.Load()
	p := m.packets.Load()
	if d+p == 0 {
		return 0
	}
	return float64(d) / float64(d+p)
}

// Reset clears counters and restarts the interval at virtual time now.
func (m *Meter) Reset(now time.Duration) {
	m.packets.Store(0)
	m.bytes.Store(0)
	m.drops.Store(0)
	m.mu.Lock()
	m.start = now
	m.end = now
	m.mu.Unlock()
}

// String summarizes the meter for logs.
func (m *Meter) String() string {
	return fmt.Sprintf("pkts=%d drops=%d rate=%.3fGbps loss=%.1f%%",
		m.Packets(), m.Drops(), m.Gbps(), m.LossRate()*100)
}

// Counter is a simple atomic counter with a name, used for NF statistics.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Point is a single (time, value) observation in a TimeSeries.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-only sequence of timestamped observations, used to
// trace device utilization and chain throughput across a simulation run.
// Safe for concurrent appends.
type TimeSeries struct {
	mu  sync.Mutex
	pts []Point
}

// Append adds an observation.
func (ts *TimeSeries) Append(t time.Duration, v float64) {
	ts.mu.Lock()
	ts.pts = append(ts.pts, Point{T: t, V: v})
	ts.mu.Unlock()
}

// Points returns a copy of all observations in insertion order.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cp := make([]Point, len(ts.pts))
	copy(cp, ts.pts)
	return cp
}

// Len returns the number of observations.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.pts)
}

// Last returns the most recent observation and true, or a zero Point and
// false when the series is empty.
func (ts *TimeSeries) Last() (Point, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.pts) == 0 {
		return Point{}, false
	}
	return ts.pts[len(ts.pts)-1], true
}

// MeanAfter returns the mean of observations with T >= from, or 0 if none.
// Useful for discarding a warm-up prefix.
func (ts *TimeSeries) MeanAfter(from time.Duration) float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var sum float64
	var n int
	for _, p := range ts.pts {
		if p.T >= from {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
