// Package telemetry implements the load-monitoring side of the paper's
// control loop: "The network administrators can periodically query the load
// of SmartNIC and CPU and execute the PAM border vNF selection algorithm"
// (§2). It smooths raw device samples with EWMA and detects overload with
// hysteresis (consecutive hot windows) so a single bursty window does not
// trigger a migration.
package telemetry

import (
	"sync"
	"time"
)

// Sample is one polling window's measurements.
type Sample struct {
	At      time.Duration
	NICUtil float64
	CPUUtil float64
	// DMAUtil is the measured PCIe/DMA-engine demand utilization (offered
	// crossing load over the shared engine budget). Zero when the backend
	// does not measure the interconnect; a crossing-bound overload shows up
	// here while both device utilizations stay feasible.
	DMAUtil       float64
	DeliveredGbps float64
	LossRate      float64
}

// EWMA is an exponentially weighted moving average. The zero value is
// unseeded; the first Observe seeds it.
type EWMA struct {
	Alpha  float64 // weight of the newest sample, (0,1]; 0 defaults to 0.3
	value  float64
	seeded bool
}

// Observe folds in a sample and returns the new average.
func (e *EWMA) Observe(x float64) float64 {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	if !e.seeded {
		e.value = x
		e.seeded = true
		return x
	}
	e.value = a*x + (1-a)*e.value
	return e.value
}

// Value returns the current average (0 when unseeded).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether any sample has been observed.
func (e *EWMA) Seeded() bool { return e.seeded }

// DetectorConfig tunes overload detection.
type DetectorConfig struct {
	// Threshold is the smoothed NIC utilization at which a window counts
	// as hot (default 0.95, matching core.DefaultOverloadThreshold).
	Threshold float64
	// ClearThreshold re-arms the detector once smoothed utilization falls
	// below it (default Threshold−0.15), providing hysteresis.
	ClearThreshold float64
	// Consecutive is how many hot windows in a row fire the detector
	// (default 3).
	Consecutive int
	// Alpha is the EWMA weight (default 0.3).
	Alpha float64
	// LossTrigger also counts a window as hot when its loss rate reaches
	// this fraction, regardless of utilization (default 0.01; a saturated
	// device pins utilization at 1.0, so loss is the sharper signal).
	LossTrigger float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.95
	}
	if c.ClearThreshold <= 0 {
		c.ClearThreshold = c.Threshold - 0.15
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 3
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.3
	}
	if c.LossTrigger <= 0 {
		c.LossTrigger = 0.01
	}
	return c
}

// Detector turns a stream of samples into overload events with hysteresis.
// NIC utilization and DMA-engine utilization are smoothed separately and
// either reaching the threshold makes a window hot — a crossing-bound
// overload must fire the loop even when both devices stay feasible. Safe
// for concurrent use.
type Detector struct {
	mu     sync.Mutex
	cfg    DetectorConfig
	util   EWMA
	dma    EWMA
	thr    EWMA
	hot    int
	fired  bool
	events int
	clears int
	rearms int
}

// NewDetector builds a detector.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{cfg: cfg, util: EWMA{Alpha: cfg.Alpha}, dma: EWMA{Alpha: cfg.Alpha}, thr: EWMA{Alpha: cfg.Alpha}}
}

// Observe folds in one sample. It returns fire=true exactly once per
// overload episode (when Consecutive hot windows accumulate); the detector
// re-arms after the smoothed utilization drops below ClearThreshold.
// The returned throughput is the smoothed delivered Gbps — the θcur the
// selection algorithm should use.
func (d *Detector) Observe(s Sample) (fire bool, throughput float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	u := d.util.Observe(s.NICUtil)
	du := d.dma.Observe(s.DMAUtil)
	throughput = d.thr.Observe(s.DeliveredGbps)

	hotWindow := u >= d.cfg.Threshold || du >= d.cfg.Threshold || s.LossRate >= d.cfg.LossTrigger
	if d.fired {
		if u < d.cfg.ClearThreshold && du < d.cfg.ClearThreshold && s.LossRate < d.cfg.LossTrigger {
			d.fired = false
			d.hot = 0
			d.clears++
		}
		return false, throughput
	}
	if hotWindow {
		d.hot++
		if d.hot >= d.cfg.Consecutive {
			d.fired = true
			d.events++
			return true, throughput
		}
	} else {
		d.hot = 0
	}
	return false, throughput
}

// Rearm resets the episode state so a persistent overload can fire again
// without first clearing. The control loop re-arms after an episode whose
// plan could not be computed (e.g. the both-overloaded terminal case) or
// failed to execute. The overload was already confirmed by Consecutive hot
// windows, so the re-armed detector keeps the streak minus one: a single
// further hot window re-fires (sustained overload retries within one
// window), while one cool window demands full re-confirmation.
func (d *Detector) Rearm() {
	d.mu.Lock()
	d.fired = false
	d.hot = d.cfg.Consecutive - 1
	d.rearms++
	d.mu.Unlock()
}

// Events returns how many overload episodes have fired.
func (d *Detector) Events() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}

// Clears returns how many fired episodes ended by utilization falling below
// ClearThreshold. Together with Events it measures fire/clear churn: a
// detector hovering at the threshold with a healthy hysteresis band clears
// at most once per genuine relief, while a band of zero churns.
func (d *Detector) Clears() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clears
}

// Rearms returns how many times the control loop re-armed the detector
// after an episode without an executable plan.
func (d *Detector) Rearms() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rearms
}

// Config returns the detector's configuration with defaults applied.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Fired reports whether the detector is inside an overload episode (fired
// and not yet re-armed by utilization falling below ClearThreshold).
func (d *Detector) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// SmoothedUtil returns the current smoothed NIC utilization.
func (d *Detector) SmoothedUtil() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.util.Value()
}

// SmoothedDMAUtil returns the current smoothed DMA-engine utilization.
func (d *Detector) SmoothedDMAUtil() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dma.Value()
}
