package telemetry

// Regression tests for a detector hovering exactly at Threshold: the
// hysteresis band must turn a noisy hover into one episode instead of
// fire/clear churn, and Rearm must re-fire within one window of *sustained*
// overload while a single cool window demands full re-confirmation.

import "testing"

// hover feeds alternating utilization samples hi,hi,lo,... and counts fires.
func hover(d *Detector, cycles int, hi, lo float64) int {
	fires := 0
	for i := 0; i < cycles; i++ {
		for _, u := range []float64{hi, hi, lo} {
			if fire, _ := d.Observe(Sample{NICUtil: u}); fire {
				fires++
			}
		}
	}
	return fires
}

func TestDetectorHoverBandPreventsChurn(t *testing.T) {
	// Utilization oscillates just across the threshold (0.96/0.94 around
	// 0.95). With a healthy band the dips never reach ClearThreshold, so the
	// episode stays open: one fire, zero clears, however long the hover.
	d := NewDetector(DetectorConfig{Threshold: 0.95, ClearThreshold: 0.80, Consecutive: 2, Alpha: 1})
	fires := hover(d, 10, 0.96, 0.94)
	if fires != 1 || d.Events() != 1 {
		t.Errorf("tuned band: fires=%d events=%d, want exactly one episode", fires, d.Events())
	}
	if d.Clears() != 0 {
		t.Errorf("tuned band: %d clears during a hover that never relieved", d.Clears())
	}
}

func TestDetectorZeroBandChurns(t *testing.T) {
	// Collapse the band (ClearThreshold = Threshold) and the same hover
	// clears on every dip and re-fires on every crest: fire/clear churn,
	// one episode per cycle.
	d := NewDetector(DetectorConfig{Threshold: 0.95, ClearThreshold: 0.95, Consecutive: 2, Alpha: 1})
	fires := hover(d, 10, 0.96, 0.94)
	if fires < 3 {
		t.Errorf("zero band: fires=%d, want churn (>= 3 episodes)", fires)
	}
	if d.Clears() < 3 {
		t.Errorf("zero band: clears=%d, want churn", d.Clears())
	}
}

func TestRearmRefiresWithinOneSustainedWindow(t *testing.T) {
	d := NewDetector(DetectorConfig{Threshold: 0.9, ClearThreshold: 0.5, Consecutive: 3, Alpha: 1})
	for i := 0; i < 3; i++ {
		if fire, _ := d.Observe(Sample{NICUtil: 1.0}); fire != (i == 2) {
			t.Fatalf("window %d: fire=%v", i, fire)
		}
	}
	// The overload was confirmed by Consecutive windows; after Rearm a
	// single further hot window re-fires.
	d.Rearm()
	if fire, _ := d.Observe(Sample{NICUtil: 1.0}); !fire {
		t.Error("sustained overload did not re-fire within one window of Rearm")
	}
	if d.Events() != 2 || d.Rearms() != 1 {
		t.Errorf("events=%d rearms=%d, want 2 and 1", d.Events(), d.Rearms())
	}
}

func TestRearmCoolWindowDemandsFullReconfirmation(t *testing.T) {
	d := NewDetector(DetectorConfig{Threshold: 0.9, ClearThreshold: 0.5, Consecutive: 3, Alpha: 1})
	for i := 0; i < 3; i++ {
		d.Observe(Sample{NICUtil: 1.0})
	}
	d.Rearm()
	// One cool window resets the retained streak: the next fire needs the
	// full Consecutive hot windows again.
	if fire, _ := d.Observe(Sample{NICUtil: 0.1}); fire {
		t.Fatal("cool window fired")
	}
	for i := 0; i < 2; i++ {
		if fire, _ := d.Observe(Sample{NICUtil: 1.0}); fire {
			t.Fatalf("re-fired after only %d hot windows post-cool", i+1)
		}
	}
	if fire, _ := d.Observe(Sample{NICUtil: 1.0}); !fire {
		t.Error("did not re-fire after full re-confirmation")
	}
}
