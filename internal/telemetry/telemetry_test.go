package telemetry_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/telemetry"
)

func TestEWMASeedAndConverge(t *testing.T) {
	e := telemetry.EWMA{Alpha: 0.5}
	if e.Seeded() {
		t.Error("zero value claims seeded")
	}
	if got := e.Observe(10); got != 10 {
		t.Errorf("first observe = %v, want seed value", got)
	}
	e.Observe(0)
	if got := e.Value(); got != 5 {
		t.Errorf("value = %v, want 5", got)
	}
	for i := 0; i < 50; i++ {
		e.Observe(1)
	}
	if math.Abs(e.Value()-1) > 1e-6 {
		t.Errorf("did not converge: %v", e.Value())
	}
}

func TestEWMADefaultAlpha(t *testing.T) {
	var e telemetry.EWMA // Alpha 0 → default 0.3
	e.Observe(0)
	e.Observe(10)
	if math.Abs(e.Value()-3) > 1e-9 {
		t.Errorf("value = %v, want 3 (alpha 0.3)", e.Value())
	}
}

func sample(at int, util, thr float64) telemetry.Sample {
	return telemetry.Sample{At: time.Duration(at) * time.Second, NICUtil: util, DeliveredGbps: thr}
}

func TestDetectorFiresAfterConsecutiveHotWindows(t *testing.T) {
	d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.9, Consecutive: 3, Alpha: 1})
	for i := 0; i < 2; i++ {
		if fire, _ := d.Observe(sample(i, 0.99, 1)); fire {
			t.Fatalf("fired after %d windows", i+1)
		}
	}
	fire, thr := d.Observe(sample(3, 0.99, 1))
	if !fire {
		t.Fatal("did not fire after 3 hot windows")
	}
	if thr != 1 {
		t.Errorf("throughput = %v", thr)
	}
	if d.Events() != 1 {
		t.Errorf("events = %d", d.Events())
	}
}

func TestDetectorColdWindowResetsStreak(t *testing.T) {
	d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.9, Consecutive: 3, Alpha: 1})
	d.Observe(sample(0, 0.99, 1))
	d.Observe(sample(1, 0.99, 1))
	d.Observe(sample(2, 0.1, 1)) // streak broken
	d.Observe(sample(3, 0.99, 1))
	if fire, _ := d.Observe(sample(4, 0.99, 1)); fire {
		t.Fatal("fired without 3 consecutive hot windows")
	}
}

func TestDetectorFiresOnDMAOnlyOverload(t *testing.T) {
	// A crossing-bound overload: both device utilizations stay low, only
	// the DMA-engine demand is past threshold. The detector must fire, and
	// must not clear while the engine stays hot.
	d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.9, Consecutive: 3, Alpha: 1})
	dmaSample := func(at int, dma float64) telemetry.Sample {
		return telemetry.Sample{At: time.Duration(at) * time.Second, NICUtil: 0.3, CPUUtil: 0.2, DMAUtil: dma, DeliveredGbps: 1}
	}
	for i := 0; i < 2; i++ {
		if fire, _ := d.Observe(dmaSample(i, 1.2)); fire {
			t.Fatalf("fired after %d windows", i+1)
		}
	}
	if fire, _ := d.Observe(dmaSample(2, 1.2)); !fire {
		t.Fatal("did not fire after 3 DMA-hot windows")
	}
	if got := d.SmoothedDMAUtil(); got != 1.2 {
		t.Errorf("SmoothedDMAUtil = %v, want 1.2 at alpha 1", got)
	}
	// NIC cooling below the clear threshold does not clear the episode
	// while the engine stays hot: the next observation must not re-fire
	// (hysteresis) and the detector must still report the episode.
	d.Observe(dmaSample(3, 1.2))
	if !d.Fired() {
		t.Fatal("episode cleared while the DMA engine stayed hot")
	}
	// Once the engine cools the episode clears and can fire again.
	d.Observe(dmaSample(4, 0.1))
	if d.Fired() {
		t.Fatal("episode did not clear after the engine cooled")
	}
	for i := 5; i < 8; i++ {
		d.Observe(dmaSample(i, 1.2))
	}
	if d.Events() != 2 {
		t.Errorf("events = %d, want 2", d.Events())
	}
}

func TestDetectorHysteresisFiresOncePerEpisode(t *testing.T) {
	d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.9, ClearThreshold: 0.5, Consecutive: 1, Alpha: 1})
	fire, _ := d.Observe(sample(0, 0.99, 1))
	if !fire {
		t.Fatal("no fire")
	}
	// Still hot: must not fire again.
	for i := 1; i < 5; i++ {
		if fire, _ := d.Observe(sample(i, 0.99, 1)); fire {
			t.Fatal("refired while hot")
		}
	}
	// Cool below the clear threshold, then heat again → second episode.
	d.Observe(sample(6, 0.1, 1))
	d.Observe(sample(7, 0.1, 1))
	d.Observe(sample(8, 0.1, 1))
	var refired bool
	for i := 9; i < 15; i++ {
		if f, _ := d.Observe(sample(i, 0.99, 1)); f {
			refired = true
		}
	}
	if !refired {
		t.Fatal("did not re-arm after cooling")
	}
	if d.Events() != 2 {
		t.Errorf("events = %d, want 2", d.Events())
	}
}

func TestDetectorLossTrigger(t *testing.T) {
	d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.99, Consecutive: 1, Alpha: 1, LossTrigger: 0.05})
	// Utilization looks moderate but loss is heavy (saturated device pins
	// util at ~1.0 but never above — loss is the sharper signal).
	s := telemetry.Sample{NICUtil: 0.5, DeliveredGbps: 1, LossRate: 0.2}
	if fire, _ := d.Observe(s); !fire {
		t.Fatal("loss trigger did not fire")
	}
}

func TestDetectorSmoothedThroughput(t *testing.T) {
	d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.9, Consecutive: 1, Alpha: 0.5})
	d.Observe(sample(0, 0.1, 2.0))
	_, thr := d.Observe(sample(1, 0.1, 1.0))
	if math.Abs(thr-1.5) > 1e-9 {
		t.Errorf("smoothed throughput = %v, want 1.5", thr)
	}
}

// Property: the detector fires at most once between clears, for any random
// utilization sequence.
func TestPropertySingleFirePerEpisode(t *testing.T) {
	f := func(seq []byte) bool {
		d := telemetry.NewDetector(telemetry.DetectorConfig{Threshold: 0.9, ClearThreshold: 0.5, Consecutive: 2, Alpha: 1})
		armed := true
		for i, b := range seq {
			u := float64(b) / 255
			fire, _ := d.Observe(sample(i, u, 1))
			if fire && !armed {
				return false // fired twice without an intervening clear
			}
			if fire {
				armed = false
			}
			if !armed && u < 0.5 {
				armed = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
