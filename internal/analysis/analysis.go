// Package analysis is the repo's static-invariant checker core: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a whole-module loader, built
// only on the standard library's go/ast, go/parser, go/types and
// go/importer. The container this repo grows in carries no module
// dependencies and the build forbids adding any, so the x/tools multichecker
// cannot be vendored — instead the same Analyzer/Pass shape is provided
// here, close enough that an analyzer written against this package ports to
// x/tools by changing one import.
//
// The analyzers themselves (hotpath, atomicfield, unitcheck, provenance —
// see DESIGN.md §6) guard the invariants the lock-free dataplane rests on:
// no blocking or allocating calls in run-to-completion hot paths, no mixed
// atomic/plain access to a field, no unit-domain mixing outside the named
// conversion helpers, and no calibrated scenario knob without a DESIGN §5
// provenance entry. cmd/pamlint is the multichecker driver; the
// analysistest subpackage runs each analyzer against a testdata fixture
// package with want-comment expectations.
//
// Source annotations the analyzers read (all are ordinary comments, so the
// annotated code compiles unchanged):
//
//	//pam:hotpath            on a function: run-to-completion hot path; the
//	                         hotpath analyzer checks it and everything it
//	                         transitively calls inside the module.
//	//pam:slowpath           on a function: a guarded slow-path entry (FIFO
//	                         queue, parking, rendezvous). Hot paths may call
//	                         it; its body is not descended into.
//	//pam:slowpath-ok reason on a statement line: allow this one blocking or
//	                         allocating construct (a deliberate, guarded
//	                         exception) without descending into it.
//	//pam:nonatomic-ok reason on a statement line: allow a plain access to a
//	                         field that is accessed atomically elsewhere
//	                         (e.g. a read pre-publication).
//	//pam:unit domain        on a named type: values carry this unit domain.
//	//pam:unitconv           on a function: a named unit-conversion helper;
//	                         unit domains may enter, leave and mix here.
//	//pam:escape-ok reason   on a statement line: cmd/escapecheck tolerates a
//	                         heap escape reported for this line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer describes one invariant checker, mirroring the x/tools shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fixtures.
	Name string
	// Doc is the one-paragraph description printed by pamlint -help.
	Doc string
	// Run executes the analyzer over one package and reports findings via
	// the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Package is one type-checked package of the loaded program.
type Package struct {
	// Path is the import path ("repro/internal/emul").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files holds the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo carries the type-checker's expression/object maps.
	TypesInfo *types.Info

	// lineDirectives caches per-file pam: directives by line (lazy).
	dirOnce        sync.Once
	lineDirectives map[string]map[int][]string
}

// Program is the whole loaded module: every requested package plus the
// cross-package indexes analyzers need for transitive walks.
type Program struct {
	Fset *token.FileSet
	// ModuleDir is the module root (where go.mod and DESIGN.md live).
	ModuleDir string
	// ModulePath is the module's import path prefix ("repro").
	ModulePath string
	// Packages holds every loaded module package, in load order.
	Packages []*Package

	indexOnce sync.Once
	funcDecls map[*types.Func]*funcIn

	factsMu sync.Mutex
	facts   map[string]any
}

// funcIn locates one function declaration inside the program.
type funcIn struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Report   func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Fact computes a program-wide fact once per program and caches it, so an
// analyzer that needs a whole-module index (the atomicfield access map, the
// unitcheck type table) does not rebuild it for every package pass.
func (prog *Program) Fact(key string, build func() any) any {
	prog.factsMu.Lock()
	defer prog.factsMu.Unlock()
	if prog.facts == nil {
		prog.facts = make(map[string]any)
	}
	if v, ok := prog.facts[key]; ok {
		return v
	}
	v := build()
	prog.facts[key] = v
	return v
}

// FuncDecl resolves a function object to its declaration and hosting
// package, or nil when the function has no body in the loaded program
// (stdlib, assembly, interface methods).
func (prog *Program) FuncDecl(fn *types.Func) (*Package, *ast.FuncDecl) {
	prog.indexOnce.Do(prog.buildIndex)
	if fi, ok := prog.funcDecls[fn]; ok {
		return fi.pkg, fi.decl
	}
	return nil, nil
}

func (prog *Program) buildIndex() {
	prog.funcDecls = make(map[*types.Func]*funcIn)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					prog.funcDecls[fn] = &funcIn{pkg: pkg, decl: fd}
				}
			}
		}
	}
}

// PackageFor returns the loaded package owning the given types.Package, or
// nil when it is outside the program (stdlib).
func (prog *Program) PackageFor(tp *types.Package) *Package {
	for _, pkg := range prog.Packages {
		if pkg.Types == tp {
			return pkg
		}
	}
	return nil
}

// AnalyzerDiagnostic pairs a finding with the analyzer that produced it,
// as collected by Run.
type AnalyzerDiagnostic struct {
	Analyzer *Analyzer
	Diagnostic
}

// Run executes every analyzer over every package of the program and returns
// the findings sorted by file position. A nil error with findings means the
// tree violates an invariant; an error means an analyzer itself failed.
func Run(prog *Program, analyzers []*Analyzer) ([]AnalyzerDiagnostic, error) {
	var out []AnalyzerDiagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer: a,
				Prog:     prog,
				Pkg:      pkg,
				Report: func(d Diagnostic) {
					out = append(out, AnalyzerDiagnostic{Analyzer: a, Diagnostic: d})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].Pos), prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer.Name < out[j].Analyzer.Name
	})
	return out, nil
}

// All returns the repo's analyzer suite in reporting order — the set
// cmd/pamlint runs.
func All() []*Analyzer {
	return []*Analyzer{HotPath, AtomicField, UnitCheck, Provenance}
}
