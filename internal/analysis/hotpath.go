package analysis

// The hotpath analyzer: functions annotated //pam:hotpath are
// run-to-completion dataplane paths (ring push/pop, SendChain, the gate
// fast path, the worker poll loop). go vet and -race only see such code
// misbehave when a rare interleaving fires; this analyzer instead walks the
// static call graph from every annotated root and rejects constructs that
// block, take the wrong clocks, or allocate:
//
//   - calls to banned functions: time.Now/Sleep/After/Tick/NewTimer/
//     NewTicker, mutex/rwmutex acquisition (Lock/RLock/TryLock),
//     sync.Cond operations, WaitGroup.Wait, runtime.Gosched/GC — and any
//     call into the fmt, log or errors packages (formatting allocates and
//     boxes). time.Since is deliberately allowed: against a monotonic
//     anchor it is a runtime clock read with no allocation, the idiom the
//     gates' nano-unit clock is built on.
//   - blocking channel operations: bare sends and receives, selects
//     without a default clause, and ranging over a channel. A select WITH
//     a default is non-blocking by construction (the Dekker-style
//     park/wake signal idiom) and passes.
//   - go statements (spawning allocates and schedules).
//   - heap-allocating constructs: make, new, func literals (closures),
//     slice/map/chan composite literals, taking the address of a composite
//     literal, string concatenation and string<->[]byte conversions.
//     Struct composite literals pass — they stay on the stack unless they
//     escape, which cmd/escapecheck guards dynamically from the compiler's
//     own -m analysis.
//
// The walk descends transitively into every in-module callee with a body.
// Three escapes bound it:
//
//   - a callee annotated //pam:hotpath is a root of its own — checked
//     separately, not re-walked;
//   - a callee annotated //pam:slowpath is a guarded slow-path entry (the
//     gate's FIFO queue, the zero-rate park, the control rendezvous): the
//     call is allowed and the body not descended;
//   - a line annotated //pam:slowpath-ok <reason> allows that one construct
//     (and does not descend into calls on it) — the explicit, reasoned
//     allowlist for deliberate exceptions like the SendChain close-guard
//     read-lock.
//
// Interface method calls and calls through function values are not
// resolvable statically and pass; the NF ProcessBatch contract is guarded
// by its own batch tests instead.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath is the //pam:hotpath invariant analyzer.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//pam:hotpath functions must not block, take locks, read wall clocks or allocate (transitively)",
	Run:  runHotPath,
}

// hotpathBannedFuncs maps types.Func.FullName() of known blocking or
// clock-reading functions to a short reason.
var hotpathBannedFuncs = map[string]string{
	"time.Now":       "wall-clock read",
	"time.Sleep":     "sleeps",
	"time.After":     "blocks and allocates a timer",
	"time.Tick":      "allocates a ticker",
	"time.NewTimer":  "allocates a timer",
	"time.NewTicker": "allocates a ticker",

	"(*sync.Mutex).Lock":       "mutex acquisition",
	"(*sync.Mutex).TryLock":    "mutex acquisition",
	"(*sync.RWMutex).Lock":     "mutex acquisition",
	"(*sync.RWMutex).TryLock":  "mutex acquisition",
	"(*sync.RWMutex).RLock":    "read-lock acquisition",
	"(*sync.RWMutex).TryRLock": "read-lock acquisition",
	"(sync.Locker).Lock":       "mutex acquisition",

	"(*sync.Cond).Wait":      "condition wait",
	"(*sync.Cond).Signal":    "condition signal",
	"(*sync.Cond).Broadcast": "condition broadcast",
	"(*sync.WaitGroup).Wait": "waitgroup wait",

	"runtime.Gosched": "yields the processor",
	"runtime.GC":      "forces a collection",
}

// hotpathBannedPkgs are packages a hot path may not call into at all.
var hotpathBannedPkgs = map[string]string{
	"fmt":    "formatting allocates",
	"log":    "logging allocates and locks",
	"errors": "error construction allocates",
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !FuncDirective(fd, "hotpath") {
				continue
			}
			if fd.Body == nil {
				continue
			}
			w := &hotpathWalker{
				pass:     pass,
				rootName: funcDisplayName(pass, fd),
				visited:  make(map[*ast.FuncDecl]bool),
				reported: make(map[token.Pos]bool),
			}
			w.checkFunc(pass.Pkg, fd, nil)
		}
	}
	return nil
}

// hotpathWalker carries one root's transitive walk.
type hotpathWalker struct {
	pass     *Pass
	rootName string
	visited  map[*ast.FuncDecl]bool
	reported map[token.Pos]bool
}

// report emits one diagnostic per position per root, with the call chain
// from the root when the violation sits in a transitive callee.
func (w *hotpathWalker) report(pos token.Pos, chain []string, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	msg := "hot path " + w.rootName + ": " + fmt.Sprintf(format, args...)
	if len(chain) > 0 {
		msg += " (via " + strings.Join(chain, " → ") + ")"
	}
	w.pass.Reportf(pos, "%s", msg)
}

// checkFunc walks one function body in the package that declares it.
func (w *hotpathWalker) checkFunc(pkg *Package, fd *ast.FuncDecl, chain []string) {
	if w.visited[fd] || fd.Body == nil {
		return
	}
	w.visited[fd] = true
	w.checkBody(pkg, fd.Body, chain)
}

// allowed reports whether the line holding pos carries //pam:slowpath-ok.
func (w *hotpathWalker) allowed(pkg *Package, pos token.Pos) bool {
	return pkg.LineAllowed(w.pass.Prog.Fset, pos, "slowpath-ok")
}

// checkBody walks a statement tree, flagging banned constructs and
// descending into in-module callees.
func (w *hotpathWalker) checkBody(pkg *Package, body ast.Node, chain []string) {
	info := pkg.TypesInfo
	// Comm statements of any select are judged at the SelectStmt level (a
	// select with a default is non-blocking; one without is flagged — or
	// allowed — as a unit); collect them first so the generic send/receive
	// checks skip them.
	nonblocking := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				nonblocking[cc.Comm] = true
				// A receive comm is an ExprStmt or AssignStmt wrapping
				// the arrow expression; mark the expression too.
				switch s := cc.Comm.(type) {
				case *ast.ExprStmt:
					nonblocking[s.X] = true
				case *ast.AssignStmt:
					for _, r := range s.Rhs {
						nonblocking[r] = true
					}
				}
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && !w.allowed(pkg, n.Pos()) {
				w.report(n.Pos(), chain, "blocking select")
				return false
			}
		case *ast.SendStmt:
			if !nonblocking[n] && !w.allowed(pkg, n.Pos()) {
				w.report(n.Pos(), chain, "blocking channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking[n] && !w.allowed(pkg, n.Pos()) {
				w.report(n.Pos(), chain, "blocking channel receive")
			}
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND && !w.allowed(pkg, n.Pos()) {
				_ = cl
				w.report(n.Pos(), chain, "allocates: address of composite literal")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !w.allowed(pkg, n.Pos()) {
					w.report(n.Pos(), chain, "range over channel")
				}
			}
		case *ast.GoStmt:
			if !w.allowed(pkg, n.Pos()) {
				w.report(n.Pos(), chain, "spawns goroutine")
			}
		case *ast.FuncLit:
			if !w.allowed(pkg, n.Pos()) {
				w.report(n.Pos(), chain, "allocates: func literal")
			}
			return false // flagged (or allowed) as a unit; don't walk inside
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil && !w.allowed(pkg, n.Pos()) {
				switch t.Underlying().(type) {
				case *types.Slice:
					w.report(n.Pos(), chain, "allocates: slice literal")
				case *types.Map:
					w.report(n.Pos(), chain, "allocates: map literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil && !w.allowed(pkg, n.Pos()) {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						// Constant folding is free; only flag runtime concat.
						if info.Types[n].Value == nil {
							w.report(n.Pos(), chain, "allocates: string concatenation")
						}
					}
				}
			}
		case *ast.CallExpr:
			w.checkCall(pkg, n, chain)
			// Arguments and the call target still need walking; checkCall
			// only resolves the callee.
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkCall resolves one call expression: banned target, allocation via
// conversion, or a descent into an in-module callee.
func (w *hotpathWalker) checkCall(pkg *Package, call *ast.CallExpr, chain []string) {
	info := pkg.TypesInfo

	// Type conversions: string<->[]byte allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if to != nil && from != nil && isStringByteConv(to, from) && !w.allowed(pkg, call.Pos()) {
			w.report(call.Pos(), chain, "allocates: string/[]byte conversion")
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		// Builtins: make and new allocate.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Builtin); ok {
				switch obj.Name() {
				case "make", "new":
					if !w.allowed(pkg, call.Pos()) {
						w.report(call.Pos(), chain, "allocates: %s", obj.Name())
					}
				}
			}
		}
		return // dynamic call through a func value: not resolvable
	}

	full := fn.FullName()
	if reason, ok := hotpathBannedFuncs[full]; ok {
		if !w.allowed(pkg, call.Pos()) {
			w.report(call.Pos(), chain, "calls %s (%s)", shortName(full), reason)
		}
		return
	}
	if fn.Pkg() != nil {
		if reason, ok := hotpathBannedPkgs[fn.Pkg().Path()]; ok {
			if !w.allowed(pkg, call.Pos()) {
				w.report(call.Pos(), chain, "calls %s (%s)", shortName(full), reason)
			}
			return
		}
	}

	// Descend into in-module callees with bodies.
	declPkg, decl := w.pass.Prog.FuncDecl(fn)
	if decl == nil {
		return // stdlib leaf, interface method, or bodyless declaration
	}
	if FuncDirective(decl, "hotpath") {
		return // a hot-path root of its own; checked separately
	}
	if FuncDirective(decl, "slowpath") {
		return // guarded slow-path entry: allowed, not descended
	}
	if w.allowed(pkg, call.Pos()) {
		return // the call line is explicitly allowed; don't descend
	}
	w.checkFunc(declPkg, decl, append(chain[:len(chain):len(chain)], decl.Name.Name))
}

// calleeFunc resolves a call's static target function, or nil for builtins
// and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return nil // dynamic dispatch: not statically resolvable
				}
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// isStringByteConv reports a string <-> []byte (or []rune) conversion.
func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// funcDisplayName renders a declaration as "(*Type).Method" or "Func".
func funcDisplayName(pass *Pass, fd *ast.FuncDecl) string {
	if fn, ok := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return shortName(fn.FullName())
	}
	return fd.Name.Name
}

// shortName strips module path prefixes from a FullName for readability:
// "(*repro/internal/emul.gate).tryTake" → "(*emul.gate).tryTake".
func shortName(full string) string {
	for {
		i := strings.LastIndexByte(full, '/')
		if i < 0 {
			return full
		}
		// Remove back to the preceding separator.
		j := strings.LastIndexAny(full[:i], "(* ")
		full = full[:j+1] + full[i+1:]
	}
}
