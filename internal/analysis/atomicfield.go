package analysis

// The atomicfield analyzer: a struct field accessed through sync/atomic
// anywhere in the program must be accessed atomically everywhere. The
// classic bug this catches is the Dekker-style sleeping flag or a gate
// balance counter read with a plain load in one place and atomic ops
// elsewhere — the racy mix -race only reports when the interleaving
// actually fires, and the compiler never does.
//
// Mechanically: a whole-program pass collects every field whose address is
// passed to a sync/atomic function (atomic.LoadInt64(&s.f), AddUint64,
// CompareAndSwap...); a second pass flags every other mention of those
// fields — a plain read, a plain write, a ++ — that is not itself the
// address argument of an atomic call. Fields declared with the atomic
// wrapper types (atomic.Int64, atomic.Bool, ...) cannot be accessed
// non-atomically except by copying the struct (which go vet's copylocks
// already rejects), so they need no checking here; the analyzer exists for
// the classic &field form.
//
// A line annotated //pam:nonatomic-ok <reason> is exempt — the documented
// escape for single-threaded phases like initialization before the
// goroutines that share the field exist.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField is the mixed atomic/plain access analyzer.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicField,
}

// atomicFacts is the whole-program index the analyzer computes once.
type atomicFacts struct {
	// fields is the set of struct fields that appear as &x.f arguments to
	// sync/atomic calls anywhere in the program.
	fields map[*types.Var]bool
	// atomicUses is the set of SelectorExpr positions that ARE the &x.f of
	// an atomic call — the allowed mentions.
	atomicUses map[token.Pos]bool
}

func runAtomicField(pass *Pass) error {
	facts := pass.Prog.Fact("atomicfield", func() any {
		return collectAtomicFacts(pass.Prog)
	}).(*atomicFacts)

	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := info.Selections[se]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			fld, ok := sel.Obj().(*types.Var)
			if !ok || !facts.fields[fld] {
				return true
			}
			if facts.atomicUses[se.Pos()] {
				return true
			}
			if pass.Pkg.LineAllowed(pass.Prog.Fset, se.Pos(), "nonatomic-ok") {
				return true
			}
			pass.Reportf(se.Pos(), "non-atomic access to field %s.%s, which is accessed atomically elsewhere",
				fieldOwner(fld), fld.Name())
			return true
		})
	}
	return nil
}

// collectAtomicFacts scans every loaded package for &x.f arguments to
// sync/atomic functions.
func collectAtomicFacts(prog *Program) *atomicFacts {
	facts := &atomicFacts{
		fields:     make(map[*types.Var]bool),
		atomicUses: make(map[token.Pos]bool),
	}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					se, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					sel, ok := info.Selections[se]
					if !ok || sel.Kind() != types.FieldVal {
						continue
					}
					if fld, ok := sel.Obj().(*types.Var); ok {
						facts.fields[fld] = true
						facts.atomicUses[se.Pos()] = true
					}
				}
				return true
			})
		}
	}
	return facts
}

// fieldOwner names the struct type declaring the field, best-effort.
func fieldOwner(fld *types.Var) string {
	if fld.Pkg() != nil {
		// The field's parent scope does not name the struct; report the
		// package-qualified field for unambiguous grepping.
		return fld.Pkg().Name()
	}
	return "?"
}
