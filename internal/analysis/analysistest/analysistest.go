// Package analysistest runs analyzers against golden fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the build
// environment cannot vendor — see the parent package's doc). A fixture is a
// directory of Go source under testdata/ whose lines carry want comments:
//
//	el.mu.Lock() // want "mutex acquisition"
//
// Run loads the fixture, applies the analyzers, and reports as test errors
// every diagnostic with no matching want comment and every want comment no
// diagnostic matched. The want argument is a regular expression matched
// against the diagnostic message; several want comments on one line match
// several diagnostics in order of appearance.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want comment: a line and the message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of one want comment. Both `// want
// "p"` and `// want "p1" "p2"` forms are accepted, mirroring x/tools.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE splits the want payload into its quoted patterns.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// Run loads the fixture package rooted at dir, runs the analyzers over it,
// and checks the diagnostics against the fixture's want comments. moduleDir
// is reported as the program's module root (fixtures that exercise the
// provenance analyzer place a DESIGN.md there; others pass dir).
func Run(t *testing.T, dir, moduleDir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.LoadDir(dir, moduleDir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	want := collectWants(t, prog)
	got, err := analysis.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	for _, d := range got {
		pos := prog.Fset.Position(d.Diagnostic.Pos)
		if !matchWant(want, pos, d.Diagnostic.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s",
				pos.Filename, pos.Line, d.Analyzer.Name, d.Diagnostic.Message)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.pattern)
		}
	}
}

// collectWants scans every fixture file's comments for want expectations.
func collectWants(t *testing.T, prog *analysis.Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
						pat := q[1]
						if pat == "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v",
								pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{
							file:    pos.Filename,
							line:    pos.Line,
							pattern: re,
						})
					}
				}
			}
		}
	}
	return wants
}

// matchWant marks and reports the first unmatched expectation on the
// diagnostic's line whose pattern matches the message.
func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Diagnostics formats a diagnostic list for debugging fixture failures.
func Diagnostics(prog *analysis.Program, ds []analysis.AnalyzerDiagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		pos := prog.Fset.Position(d.Diagnostic.Pos)
		fmt.Fprintf(&b, "%s:%d: %s: %s\n", pos.Filename, pos.Line, d.Analyzer.Name, d.Diagnostic.Message)
	}
	return b.String()
}
