// Golden-fixture tests for the four pamlint analyzers, plus a whole-tree
// run asserting the real codebase is clean — the same invariant CI's lint
// job enforces, kept under tier-1 so a violation fails `go test ./...`
// even where the lint job doesn't run.
package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotPathFixture(t *testing.T) {
	analysistest.Run(t, "testdata/hotpath", "testdata/hotpath", analysis.HotPath)
}

func TestAtomicFieldFixture(t *testing.T) {
	analysistest.Run(t, "testdata/atomicfield", "testdata/atomicfield", analysis.AtomicField)
}

func TestUnitCheckFixture(t *testing.T) {
	analysistest.Run(t, "testdata/unitcheck", "testdata/unitcheck", analysis.UnitCheck)
}

func TestProvenanceFixture(t *testing.T) {
	analysistest.Run(t, "testdata/provenance", "testdata/provenance", analysis.Provenance)
}

// TestTreeClean runs every analyzer over the whole module, as `pamlint
// ./...` does. Loading the module through the source importer takes a few
// seconds, so -short skips it.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is slow; skipped under -short")
	}
	prog, err := analysis.LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	ds, err := analysis.Run(prog, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(ds) > 0 {
		t.Errorf("tree is not pamlint-clean:\n%s", analysistest.Diagnostics(prog, ds))
	}
}
