package analysis

// The unitcheck analyzer: quantities in different unit domains may only mix
// through the named conversion helpers. The dataplane juggles catalog Gbps,
// bytes per second, normalized device-seconds, link-seconds and their int64
// nano-unit fixed points; Go's type system keeps *named* types apart inside
// expressions but lets any explicit conversion erase the distinction — the
// class of bug behind PR 4's token-balance clamp, where a balance in one
// unit regime was carried into another.
//
// A named type annotated
//
//	//pam:unit <domain>
//	type Gbps float64
//
// declares its values to carry that domain. Outside functions annotated
// //pam:unitconv (the named conversion helpers), three conversions are
// rejected:
//
//   - unit type → unit type of a different domain (cross-domain cast),
//   - unit type → plain numeric (stripping the unit),
//   - plain non-constant numeric → unit type (laundering a raw number into
//     a domain).
//
// Constant conversions (Gbps(2.0) in a config literal) pass: literals are
// how domain values are born. A line annotated //pam:unitconv-ok <reason>
// exempts a single conversion.

import (
	"go/ast"
	"go/types"
)

// UnitCheck is the unit-domain conversion analyzer.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "//pam:unit domains may only mix through //pam:unitconv helpers",
	Run:  runUnitCheck,
}

// unitFacts maps named types to their declared unit domain.
type unitFacts struct {
	domains map[*types.TypeName]string
}

func runUnitCheck(pass *Pass) error {
	facts := pass.Prog.Fact("unitcheck", func() any {
		return collectUnitFacts(pass.Prog)
	}).(*unitFacts)
	if len(facts.domains) == 0 {
		return nil
	}

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if FuncDirective(d, "unitconv") || d.Body == nil {
					continue
				}
				checkUnitConversions(pass, facts, d.Body)
			case *ast.GenDecl:
				checkUnitConversions(pass, facts, d)
			}
		}
	}
	return nil
}

// collectUnitFacts scans every loaded package for //pam:unit type
// declarations. The directive may sit on the TypeSpec or on its GenDecl.
func collectUnitFacts(prog *Program) *unitFacts {
	facts := &unitFacts{domains: make(map[*types.TypeName]string)}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				declArg, declOK := docDirective(gd.Doc, "unit")
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					arg, ok := docDirective(ts.Doc, "unit")
					if !ok {
						arg, ok = declArg, declOK
					}
					if !ok || arg == "" {
						continue
					}
					if tn, isTN := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName); isTN {
						facts.domains[tn] = arg
					}
				}
			}
		}
	}
	return facts
}

// domainOf resolves the unit domain a type carries, following named-type
// chains ("type devSec seconds" inherits seconds' domain unless annotated
// itself).
func domainOf(facts *unitFacts, t types.Type) (string, bool) {
	for {
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		if d, ok := facts.domains[named.Obj()]; ok {
			return d, true
		}
		u := named.Underlying()
		if u == t {
			return "", false
		}
		t = u
	}
}

// checkUnitConversions flags cross-domain and domain-stripping conversions
// in one declaration body.
func checkUnitConversions(pass *Pass, facts *unitFacts, root ast.Node) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		arg := call.Args[0]
		if av, ok := info.Types[arg]; ok && av.Value != nil {
			return true // constant conversion: literals are born in-domain
		}
		to, from := tv.Type, info.TypeOf(arg)
		if to == nil || from == nil {
			return true
		}
		toDom, toUnit := domainOf(facts, to)
		fromDom, fromUnit := domainOf(facts, from)
		if !toUnit && !fromUnit {
			return true
		}
		if pass.Pkg.LineAllowed(pass.Prog.Fset, call.Pos(), "unitconv-ok") {
			return true
		}
		switch {
		case toUnit && fromUnit && toDom != fromDom:
			pass.Reportf(call.Pos(),
				"cross-domain unit conversion %s → %s outside a //pam:unitconv helper",
				fromDom, toDom)
		case !toUnit && fromUnit && isNumeric(to):
			pass.Reportf(call.Pos(),
				"conversion strips unit domain %s outside a //pam:unitconv helper", fromDom)
		case toUnit && !fromUnit && isNumeric(from):
			pass.Reportf(call.Pos(),
				"raw value cast into unit domain %s outside a //pam:unitconv helper", toDom)
		}
		return true
	})
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
