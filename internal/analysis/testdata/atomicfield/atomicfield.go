// The atomicfield analyzer's golden fixture: a field accessed through
// sync/atomic in one function and with plain loads, stores and increments
// elsewhere — the racy mix the analyzer exists to reject — plus the
// //pam:nonatomic-ok escape and fields that must stay silent.
package fixture

import "sync/atomic"

type meters struct {
	served  uint64 // mixed: atomic adds and plain reads — the seeded bug
	dropped uint64 // atomic-only: never flagged
	label   int    // plain-only: never flagged
}

// record is the atomic side of the mix: it establishes both fields as
// atomically-accessed.
func record(m *meters) {
	atomic.AddUint64(&m.served, 1)
	atomic.AddUint64(&m.dropped, 1)
}

// snapshot reads served with a plain load — the classic torn read on
// 32-bit platforms and a -race finding only when the interleaving fires.
func snapshot(m *meters) uint64 {
	return m.served // want `non-atomic access to field fixture.served`
}

// bump increments served without the atomic RMW, losing concurrent adds.
func bump(m *meters) {
	m.served++ // want `non-atomic access to field fixture.served`
}

// atomicReader stays on the atomic API: silent.
func atomicReader(m *meters) uint64 {
	return atomic.LoadUint64(&m.dropped)
}

// plainReader touches only the never-atomic field: silent.
func plainReader(m *meters) int {
	return m.label
}

// initAllowed is the documented escape: single-threaded initialization
// before the goroutines that share the field exist.
func initAllowed() *meters {
	m := &meters{}
	m.served = 0 //pam:nonatomic-ok constructor runs before any sharing
	return m
}
