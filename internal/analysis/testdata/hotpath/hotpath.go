// The hotpath analyzer's golden fixture: one seeded violation per rule,
// plus the escapes (//pam:slowpath boundary, //pam:slowpath-ok line) that
// must stay silent.
package fixture

import (
	"fmt"
	"sync"
	"time"
)

type counterState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	wg    sync.WaitGroup
	count int
	ch    chan int
}

// clockRead reads the wall clock on a hot path.
//
//pam:hotpath
func clockRead() time.Time {
	return time.Now() // want `calls time.Now \(wall-clock read\)`
}

// monotonicRead uses the blessed clock idiom: time.Since against an anchor.
//
//pam:hotpath
func monotonicRead(epoch time.Time) time.Duration {
	return time.Since(epoch) // allowed: monotonic read, no allocation
}

// locker takes a mutex on a hot path.
//
//pam:hotpath
func locker(s *counterState) {
	s.mu.Lock() // want `calls \(\*sync.Mutex\).Lock \(mutex acquisition\)`
	s.count++
	s.mu.Unlock() // Unlock is allowed: release never blocks
}

// condWaiter parks on a condition variable.
//
//pam:hotpath
func condWaiter(s *counterState) {
	s.cond.Wait() // want `calls \(\*sync.Cond\).Wait \(condition wait\)`
}

// wgWaiter blocks on a WaitGroup (Add and Done are fine).
//
//pam:hotpath
func wgWaiter(s *counterState) {
	s.wg.Add(1)
	s.wg.Done()
	s.wg.Wait() // want `calls \(\*sync.WaitGroup\).Wait \(waitgroup wait\)`
}

// sender performs a bare, blocking channel send.
//
//pam:hotpath
func sender(s *counterState) {
	s.ch <- 1 // want `blocking channel send`
}

// receiver performs a bare, blocking channel receive.
//
//pam:hotpath
func receiver(s *counterState) int {
	return <-s.ch // want `blocking channel receive`
}

// blockingSelect selects with no default clause.
//
//pam:hotpath
func blockingSelect(s *counterState) {
	select { // want `blocking select`
	case <-s.ch:
	}
}

// nonblockingSelect is the Dekker-style park/wake signal idiom: a select
// with a default never blocks and must pass.
//
//pam:hotpath
func nonblockingSelect(s *counterState) {
	select {
	case s.ch <- 1:
	default:
	}
}

// allocator hits the heap three ways.
//
//pam:hotpath
func allocator(n int) []int {
	m := map[int]int{} // want `allocates: map literal`
	_ = m
	_ = make([]byte, n) // want `allocates: make`
	return []int{n}     // want `allocates: slice literal`
}

// formatter calls into fmt.
//
//pam:hotpath
func formatter(n int) string {
	return fmt.Sprint(n) // want `calls fmt.Sprint \(formatting allocates\)`
}

// stringConcat builds a string at runtime.
//
//pam:hotpath
func stringConcat(a, b string) string {
	return a + b // want `allocates: string concatenation`
}

// byteConv converts between string and []byte.
//
//pam:hotpath
func byteConv(s string) []byte {
	return []byte(s) // want `allocates: string/\[\]byte conversion`
}

// spawner launches a goroutine.
//
//pam:hotpath
func spawner() {
	go func() {}() // want `spawns goroutine` `allocates: func literal`
}

// transitive violates only through a helper two frames down; the
// diagnostic lands at the violation with the call chain in the message.
//
//pam:hotpath
func transitive(s *counterState) {
	indirect(s)
}

func indirect(s *counterState) {
	deepest(s)
}

func deepest(s *counterState) {
	time.Sleep(time.Millisecond) // want `calls time.Sleep \(sleeps\) \(via indirect → deepest\)`
}

// guarded calls into an annotated slow-path entry: allowed, not descended.
//
//pam:hotpath
func guarded(s *counterState) {
	slowEntry(s)
}

// slowEntry is a deliberate slow-path boundary; its body may block.
//
//pam:slowpath
func slowEntry(s *counterState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

// excused carries a reasoned line-level allow.
//
//pam:hotpath
func excused(s *counterState) {
	s.mu.Lock() //pam:slowpath-ok fixture: deliberate exception
	s.mu.Unlock()
}

// clean is a compliant hot path: atomics-free arithmetic, struct literal,
// append into caller-provided storage.
//
//pam:hotpath
func clean(dst []int, n int) []int {
	type pair struct{ a, b int }
	p := pair{a: n, b: n * 2}
	return append(dst, p.a+p.b)
}
