// The unitcheck analyzer's golden fixture: two unit domains, the three
// rejected conversion shapes (cross-domain, strip, launder), the blessed
// escapes (//pam:unitconv helpers, //pam:unitconv-ok lines), and constant
// conversions that must stay silent.
package fixture

// Gbps expresses catalog throughput.
//
//pam:unit gbps
type Gbps float64

// DevSeconds expresses normalized device time.
//
//pam:unit device-seconds
type DevSeconds float64

// MeasuredGbps is the blessed float64 → Gbps entry point.
//
//pam:unitconv
func MeasuredGbps(v float64) Gbps { return Gbps(v) }

// costOf is the blessed Gbps → DevSeconds conversion helper.
//
//pam:unitconv
func costOf(bytes int, g Gbps) DevSeconds {
	return DevSeconds(float64(bytes) * 8 / (float64(g) * 1e9))
}

// crossDomain casts one unit domain straight into another.
func crossDomain(g Gbps) DevSeconds {
	return DevSeconds(g) // want `cross-domain unit conversion gbps → device-seconds`
}

// strip erases the unit with a bare numeric conversion.
func strip(g Gbps) float64 {
	return float64(g) // want `conversion strips unit domain gbps`
}

// launder casts a raw measurement into a domain without the helper.
func launder(v float64) Gbps {
	return Gbps(v) // want `raw value cast into unit domain gbps`
}

// constants are born in-domain: a constant conversion is silent.
func constants() Gbps {
	return Gbps(9.5)
}

// viaHelpers routes every mix through the blessed helpers: silent.
func viaHelpers(bytes int, raw float64) DevSeconds {
	return costOf(bytes, MeasuredGbps(raw))
}

// excused carries a reasoned line-level allow.
func excused(g Gbps) float64 {
	return float64(g) //pam:unitconv-ok fixture: deliberate exception
}
