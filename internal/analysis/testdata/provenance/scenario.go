// The provenance analyzer's golden fixture: a scenario.Params struct whose
// fields must each appear backtick-quoted in the sibling DESIGN.md's §5
// calibration section. OfferedGbps is documented there; MysteryKnob is the
// seeded violation.
package scenario

// Params is the fixture's calibrated knob set.
type Params struct {
	OfferedGbps float64
	MysteryKnob float64 // want `field "MysteryKnob" has no provenance entry in DESIGN.md §5`
	internal    int     // unexported: exempt from provenance
}

var _ = Params{}.internal
