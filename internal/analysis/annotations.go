package analysis

// Directive scanning: the analyzers are driven by //pam:... comments (see
// the package doc for the full list). A function-level directive lives in
// the declaration's doc comment; a line-level directive is a trailing or
// own-line comment on the statement it exempts.

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive parses one comment line into a pam: directive name and its
// argument remainder ("" when none). Not a directive → ok=false.
func directive(text string) (name, arg string, ok bool) {
	t := strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(t, "pam:") {
		return "", "", false
	}
	t = strings.TrimPrefix(t, "pam:")
	if i := strings.IndexAny(t, " \t"); i >= 0 {
		return t[:i], strings.TrimSpace(t[i+1:]), true
	}
	return t, "", true
}

// docDirective reports whether the doc comment group carries the named
// pam: directive, returning its argument.
func docDirective(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if n, arg, ok := directive(c.Text); ok && n == name {
			return arg, true
		}
	}
	return "", false
}

// FuncDirective reports whether the function declaration is annotated with
// the named pam: directive (in its doc comment).
func FuncDirective(fd *ast.FuncDecl, name string) bool {
	_, ok := docDirective(fd.Doc, name)
	return ok
}

// lineDirectiveTable builds the package's file→line→directive-names map
// once. Every comment in every file is considered, so both trailing
// comments (`x() //pam:slowpath-ok park`) and own-line comments directly
// above a statement count for the line they sit on.
func (pkg *Package) lineDirectiveTable(fset *token.FileSet) map[string]map[int][]string {
	pkg.dirOnce.Do(func() {
		pkg.lineDirectives = make(map[string]map[int][]string)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					n, _, ok := directive(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					m := pkg.lineDirectives[pos.Filename]
					if m == nil {
						m = make(map[int][]string)
						pkg.lineDirectives[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], n)
				}
			}
		}
	})
	return pkg.lineDirectives
}

// LineAllowed reports whether the source line holding pos (in pkg) carries
// the named pam: directive — the per-line escape hatch mechanism. A
// directive on the line directly above the statement also counts, so multi
// line constructs can be annotated without trailing comments.
func (pkg *Package) LineAllowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	m := pkg.lineDirectiveTable(fset)[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range m[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}
