package analysis

// The loader: parses and type-checks module packages using only the
// standard library. Module-internal imports are resolved recursively from
// source; standard-library imports go through go/importer's "source"
// importer (which compiles stdlib packages from $GOROOT/src, needing no
// pre-built export data). There is deliberately no support for third-party
// modules: the repo has none and the build environment forbids adding any.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// moduleRE extracts the module path from a go.mod.
var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// skipDirs are directory names never treated as package dirs.
var skipDirs = map[string]bool{
	".git": true, ".github": true, ".claude": true,
	"testdata": true, "vendor": true,
}

// LoadModule parses and type-checks the module rooted at moduleDir,
// restricted to the package patterns ("./..." for everything, "./sub/..."
// for a subtree, "./dir" for one package; an empty pattern list means
// "./..."). Only non-test files are loaded: the invariants the analyzers
// guard live in the dataplane sources, and test files routinely use the
// constructs the hot path bans.
func LoadModule(moduleDir string, patterns []string) (*Program, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modData, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	m := moduleRE.FindSubmatch(modData)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", moduleDir)
	}
	modPath := string(m[1])

	dirs, err := packageDirs(abs, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:       fset,
		moduleDir:  abs,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		loaded:     make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	prog := &Program{Fset: fset, ModuleDir: abs, ModulePath: modPath}
	for _, dir := range dirs {
		rel, err := filepath.Rel(abs, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	return prog, nil
}

// LoadDir type-checks a single directory as one package with stdlib-only
// imports — the analysistest loader for fixture packages under testdata.
// moduleDir is what Prog.ModuleDir reports (fixtures place a DESIGN.md
// there for the provenance analyzer).
func LoadDir(dir, moduleDir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:       fset,
		moduleDir:  abs,
		modulePath: "fixture",
		std:        importer.ForCompiler(fset, "source", nil),
		loaded:     make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	pkg, err := ld.loadDir("fixture", abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	absMod, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	return &Program{
		Fset:       fset,
		ModuleDir:  absMod,
		ModulePath: "fixture",
		Packages:   []*Package{pkg},
	}, nil
}

// packageDirs expands the patterns into package directories (dirs holding
// at least one non-test .go file), sorted for deterministic order.
func packageDirs(moduleDir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "./..." || pat == "...":
			if err := walkPackageDirs(moduleDir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(moduleDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := walkPackageDirs(root, add); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(moduleDir, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(out)
	return out, nil
}

func walkPackageDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if skipDirs[d.Name()] {
			return filepath.SkipDir
		}
		add(path)
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// constraintExcluded reports whether the file's //go:build constraint
// excludes it from a default build on this platform: the "race" and any
// unknown custom tags evaluate false, GOOS/GOARCH/unix/gc/go1.x true. The
// analyzers see exactly the file set `go build ./...` compiles.
func constraintExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(defaultBuildTag) {
				return true
			}
		}
	}
	return false
}

func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return runtime.GOOS == "linux" || runtime.GOOS == "darwin"
	}
	return strings.HasPrefix(tag, "go1.")
}

// loader resolves imports: module packages from source (recursively),
// everything else through the stdlib source importer.
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	loaded     map[string]*Package
	loading    map[string]bool
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in module package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load type-checks one module package by import path, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
	pkg, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// loadDir parses and type-checks the non-test files of one directory.
// Returns (nil, nil) when the directory holds no non-test Go files.
func (l *loader) loadDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if constraintExcluded(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
