package analysis

// The provenance analyzer: every exported field of scenario.Params — the
// calibrated knobs every live scenario runs on — must have a provenance
// entry in DESIGN.md §5, i.e. appear backtick-quoted in the calibration
// section. A calibrated default without provenance is how magic numbers
// rot: PRs 4, 5 and 8 each re-derived scenario constants from the shared
// gates' physics, and the §5 table is where those derivations live.
//
// The rule predates this analyzer (cmd/docscheck has enforced it since PR
// 4); the mechanics now live here, shared by both binaries, so the docs job
// and the lint job cannot drift apart. The analyzer fires on any package
// named "scenario" declaring a struct type Params, and reads DESIGN.md from
// the module root.

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
)

// Provenance is the DESIGN §5 scenario-knob provenance analyzer.
var Provenance = &Analyzer{
	Name: "provenance",
	Doc:  "every exported scenario.Params field needs a DESIGN.md §5 provenance entry",
	Run:  runProvenance,
}

func runProvenance(pass *Pass) error {
	if pass.Pkg.Types.Name() != "scenario" {
		return nil
	}
	var params *ast.StructType
	var fields []*ast.Ident
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Params" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			params = st
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if name.IsExported() {
						fields = append(fields, name)
					}
				}
			}
			return false
		})
	}
	if params == nil {
		return nil
	}
	design, err := os.ReadFile(filepath.Join(pass.Prog.ModuleDir, "DESIGN.md"))
	if err != nil {
		pass.Reportf(params.Pos(), "scenario.Params declared but DESIGN.md is unreadable: %v", err)
		return nil
	}
	section, ok := ProvenanceSection(design)
	if !ok {
		pass.Reportf(params.Pos(), "DESIGN.md has no \"## §5\" calibration section for scenario.Params provenance")
		return nil
	}
	for _, name := range fields {
		if !strings.Contains(section, "`"+name.Name+"`") {
			pass.Reportf(name.Pos(), "scenario.Params field %q has no provenance entry in DESIGN.md §5", name.Name)
		}
	}
	return nil
}

// ProvenanceSection extracts DESIGN.md's §5 calibration section: from the
// "## §5" heading to the next top-level heading. Shared with cmd/docscheck
// so the provenance rule lives in exactly one place.
func ProvenanceSection(design []byte) (string, bool) {
	section := string(design)
	i := strings.Index(section, "## §5")
	if i < 0 {
		return "", false
	}
	section = section[i:]
	if j := strings.Index(section[5:], "\n## "); j >= 0 {
		section = section[:5+j]
	}
	return section, true
}

// ParamsFieldNames returns the exported field names of a struct type named
// Params declared in the file, for parser-only callers like docscheck.
func ParamsFieldNames(f *ast.File) []string {
	var fields []string
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "Params" {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				if name.IsExported() {
					fields = append(fields, name.Name)
				}
			}
		}
		return false
	})
	return fields
}

// MissingProvenance returns one problem string per field with no
// backtick-quoted mention in the §5 section — the docscheck-facing form of
// the provenance rule.
func MissingProvenance(section string, fields []string, designFile string) []string {
	var problems []string
	for _, name := range fields {
		if !strings.Contains(section, "`"+name+"`") {
			problems = append(problems, fmt.Sprintf(
				"%s: scenario.Params field %q has no provenance entry in DESIGN.md §5", designFile, name))
		}
	}
	return problems
}
