package orchestrator_test

// Offload-reclaim tests: after a push-aside and sustained calm, the loop
// migrates the pushed element back (restoring SmartNIC offload), records
// both legs in the migration history, and FindPingPongs sees the bounce.
// The confirmation depth (ReclaimAfter calm windows + the same number of
// consecutive headroom-guard passes) and the cooldown both gate the move.

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/orchestrator"
	"repro/internal/scenario"
)

func TestLiveLoopReclaimsAfterCalm(t *testing.T) {
	rt := newLiveRuntime(t)
	rt.Start()
	defer rt.Close()
	p := scenario.DefaultParams()
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery:    10 * time.Millisecond,
		Selector:     pushAside{},
		Detector:     hairTrigger(),
		Cooldown:     time.Millisecond,
		ReclaimAfter: 2,
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}

	sendFrames(t, rt, 200)
	live.Poll() // hot window -> fire -> push logger0 to the CPU
	if live.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1\nlog:\n%s", live.Migrations(), live.Describe())
	}

	// Idle windows: the first clears the detector, then ReclaimAfter calm
	// windows arm the policy and ReclaimAfter guard-pass windows execute the
	// reclaim (the guard passes trivially — an idle device predicts ~zero
	// utilization for the restored placement).
	for i := 0; i < 6 && live.Reclaims() == 0; i++ {
		time.Sleep(2 * time.Millisecond)
		live.Poll()
	}
	if live.Reclaims() != 1 {
		t.Fatalf("reclaims = %d, want 1\nlog:\n%s", live.Reclaims(), live.Describe())
	}
	got := rt.Placement()
	if got.At(got.Index(scenario.NameLogger)).Loc != device.KindSmartNIC {
		t.Errorf("reclaim not applied to the dataplane: %v", got)
	}
	var reclaimed int
	for _, e := range live.Events() {
		if e.Kind == orchestrator.EventReclaimed {
			reclaimed++
			if e.Downtime <= 0 {
				t.Error("reclaim migration reported no measured downtime")
			}
		}
	}
	if reclaimed != 1 {
		t.Errorf("EventReclaimed count = %d, want 1\nlog:\n%s", reclaimed, live.Describe())
	}

	hist := live.History()
	if len(hist) != 2 {
		t.Fatalf("history = %+v, want push + reclaim", hist)
	}
	if hist[0].Reclaim || !hist[1].Reclaim {
		t.Errorf("history legs mislabelled: %+v", hist)
	}
	if hist[1].From != hist[0].To || hist[1].To != hist[0].From {
		t.Errorf("reclaim leg does not reverse the push: %+v", hist)
	}
	pp := orchestrator.FindPingPongs(hist, time.Hour)
	if len(pp) != 1 || pp[0].Element != scenario.NameLogger {
		t.Errorf("FindPingPongs on a push+reclaim pair = %+v, want one bounce", pp)
	}
}

func TestLiveLoopReclaimDisabledByDefault(t *testing.T) {
	rt := newLiveRuntime(t)
	rt.Start()
	defer rt.Close()
	p := scenario.DefaultParams()
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery: 10 * time.Millisecond,
		Selector:  pushAside{},
		Detector:  hairTrigger(),
		Cooldown:  time.Millisecond,
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}
	sendFrames(t, rt, 200)
	live.Poll()
	for i := 0; i < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		live.Poll()
	}
	if live.Reclaims() != 0 {
		t.Errorf("reclaim ran with ReclaimAfter unset: %s", live.Describe())
	}
	got := rt.Placement()
	if got.At(got.Index(scenario.NameLogger)).Loc != device.KindCPU {
		t.Errorf("placement changed without a reclaim: %v", got)
	}
}

func TestFindPingPongs(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	mv := func(at int, ci int, el string, from, to device.Kind) orchestrator.Migration {
		return orchestrator.Migration{At: ms(at), ChainIndex: ci, Element: el, From: from, To: to}
	}
	nic, cpu := device.KindSmartNIC, device.KindCPU
	hist := []orchestrator.Migration{
		mv(0, 0, "a", nic, cpu),
		mv(50, 1, "a", cpu, nic),   // different chain: not a bounce
		mv(100, 0, "b", nic, cpu),  // different element
		mv(200, 0, "a", cpu, nic),  // bounce of the first move (within horizon)
		mv(900, 0, "a", nic, cpu),  // out again...
		mv(2000, 0, "a", cpu, nic), // ...but back only after the horizon
	}
	got := orchestrator.FindPingPongs(hist, ms(500))
	if len(got) != 1 {
		t.Fatalf("ping-pongs = %+v, want exactly one", got)
	}
	if got[0].Element != "a" || got[0].Out.At != 0 || got[0].Back.At != ms(200) {
		t.Errorf("wrong bounce matched: %+v", got[0])
	}
	// A wide horizon admits every adjacent reversal pair: 0↔200, 200↔900
	// (back-then-out is a bounce too) and 900↔2000.
	if n := len(orchestrator.FindPingPongs(hist, ms(5000))); n != 3 {
		t.Errorf("wide horizon found %d bounces, want 3", n)
	}
	if n := len(orchestrator.FindPingPongs(nil, ms(500))); n != 0 {
		t.Errorf("empty history found %d bounces", n)
	}
}
