package orchestrator

// The engine-agnostic core of the control plane. Both backends — the
// discrete-event simulator (virtual time, orchestrator.go) and the execution
// emulator (wall-clock, live.go) — drive the same loop: feed one telemetry
// window to the overload detector, and when an episode fires, run the
// selector over a freshly built view and hand the plan to the backend's
// executor. Policy (detector hysteresis, cooldown, migration budget, event
// logging) lives here exactly once, so a control decision reproduced in
// virtual time is the same decision the emulator executes against real
// packet-processing code.
//
// The loop is natively multi-chain: it polls a core.MultiView (per-chain
// placements and measured throughputs over shared devices), runs a
// core.MultiSelector, and hands the resulting core.MultiPlan to the backend
// to execute chain by chain. A single-chain deployment is the one-load
// special case — Config.Selector wraps the paper's single-chain policies
// through core.AsMulti, and every decision reduces to exactly the PR-2
// behaviour.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/migrate"
	"repro/internal/telemetry"
)

// Config parameterizes the control loop; it is shared by both backends.
type Config struct {
	// PollEvery is the telemetry query period (the paper's "periodically
	// query the load"). In the DES backend it must match or exceed the
	// simulation's SampleEvery; in the live backend it is the wall-clock
	// sampling period.
	PollEvery time.Duration
	// Selector decides what to migrate on overload in a single-chain
	// deployment; it is lifted into the multi-chain loop via core.AsMulti.
	// Set exactly one of Selector and MultiSelector.
	Selector core.Selector
	// MultiSelector decides what to migrate across every hosted chain
	// (e.g. core.MultiPAM). Set exactly one of Selector and MultiSelector.
	MultiSelector core.MultiSelector
	// Detector tunes overload detection; zero value uses defaults.
	Detector telemetry.DetectorConfig
	// Transport models state-transfer cost; nil disables migration delay.
	// Only the DES backend uses it — the emulator measures real snapshot
	// sizes and reports real transfer times.
	Transport migrate.Transport
	// StateBytes approximates the per-vNF snapshot size for the transfer
	// model (the DES has no materialized NF state; the emulator measures
	// real sizes). Default 64 KiB.
	StateBytes int
	// MaxMigrations bounds how many plans get executed (0 = unbounded).
	MaxMigrations int
	// Cooldown suppresses new plans for this long after one executes
	// (default 2×PollEvery).
	Cooldown time.Duration
}

// selector resolves the configured policy into the loop's native
// multi-chain form.
func (c Config) selector() (core.MultiSelector, error) {
	switch {
	case c.Selector != nil && c.MultiSelector != nil:
		return nil, errors.New("orchestrator: set Selector or MultiSelector, not both")
	case c.MultiSelector != nil:
		return c.MultiSelector, nil
	case c.Selector != nil:
		return core.AsMulti(c.Selector), nil
	}
	return nil, errors.New("orchestrator: nil selector")
}

// Event records one control-loop action for reports and tests.
type Event struct {
	At       time.Duration
	Kind     EventKind
	Plan     core.MultiPlan
	Err      error
	Downtime time.Duration
}

// EventKind classifies control-loop events.
type EventKind uint8

// Event kinds.
const (
	// EventMigrated records an executed plan.
	EventMigrated EventKind = iota
	// EventSkipped records an overload with no executable plan (e.g. the
	// paper's both-overloaded terminal case) or a plan whose execution
	// failed.
	EventSkipped
	// EventCooldown records an overload episode suppressed because the
	// previous migration is still within Config.Cooldown.
	EventCooldown
	// EventLimited records an overload episode suppressed by
	// Config.MaxMigrations.
	EventLimited
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSkipped:
		return "skipped"
	case EventCooldown:
		return "cooldown"
	case EventLimited:
		return "limit-reached"
	}
	return "migrated"
}

// loop is the shared poll/detect/select/execute state machine. exec applies
// a plan to the backend's dataplane, chain by chain, and returns the
// migration downtime it incurred (modelled for the DES, measured for the
// emulator).
type loop struct {
	cfg      Config
	sel      core.MultiSelector
	detector *telemetry.Detector
	view     func() core.MultiView
	exec     func(plan core.MultiPlan) (time.Duration, error)

	// decideMu serializes whole decisions (detect → select → execute), so
	// concurrent polls — the live backend's background ticker plus a manual
	// Poll — cannot both slip past the cooldown/budget checks and execute
	// overlapping plans. mu guards only the fields below and is safe to
	// take from exec callbacks while decideMu is held.
	decideMu sync.Mutex

	mu       sync.Mutex
	events   []Event
	lastMove time.Duration
	moved    bool // a plan (possibly partial) has executed; lastMove is set
	migrated int
}

func newLoop(cfg Config, view func() core.MultiView, exec func(core.MultiPlan) (time.Duration, error)) (*loop, error) {
	if cfg.PollEvery <= 0 {
		return nil, errors.New("orchestrator: PollEvery must be positive")
	}
	sel, err := cfg.selector()
	if err != nil {
		return nil, err
	}
	if cfg.StateBytes <= 0 {
		cfg.StateBytes = 64 << 10
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * cfg.PollEvery
	}
	return &loop{
		cfg:      cfg,
		sel:      sel,
		detector: telemetry.NewDetector(cfg.Detector),
		view:     view,
		exec:     exec,
	}, nil
}

// observe feeds one telemetry window to the detector and, when an overload
// episode fires, runs selection and execution. now is the backend's clock
// (virtual or wall) and timestamps any resulting event.
func (l *loop) observe(now time.Duration, s telemetry.Sample) {
	l.decideMu.Lock()
	defer l.decideMu.Unlock()

	fire, throughput := l.detector.Observe(s)
	if !fire {
		return
	}
	l.mu.Lock()
	if l.cfg.MaxMigrations > 0 && l.migrated >= l.cfg.MaxMigrations {
		l.events = append(l.events, Event{At: now, Kind: EventLimited})
		l.mu.Unlock()
		return
	}
	if l.moved && now-l.lastMove < l.cfg.Cooldown {
		l.events = append(l.events, Event{At: now, Kind: EventCooldown})
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()

	v := l.view()
	rescale(v.Loads, throughput)
	plan, err := l.sel.SelectMulti(v)
	if err != nil {
		// The episode produced no executable plan. Re-arm the detector so
		// the decision is retried after another Consecutive hot windows:
		// measured throughput moves, so a terminal verdict now (e.g.
		// both-overloaded at this θcur) need not be terminal next window.
		l.detector.Rearm()
		l.appendEvent(Event{At: now, Kind: EventSkipped, Err: err})
		return
	}
	downtime, err := l.exec(plan)
	if err != nil {
		// Execution failed; re-arm for a retry like the no-plan case. A
		// non-zero downtime means some steps did apply (a partial
		// migration), so the cooldown still starts — the dataplane just
		// moved and must settle before the next attempt.
		l.detector.Rearm()
		l.mu.Lock()
		if downtime > 0 {
			l.moved = true
			l.lastMove = now
		}
		l.events = append(l.events, Event{At: now, Kind: EventSkipped, Plan: plan, Err: err})
		l.mu.Unlock()
		return
	}
	l.mu.Lock()
	l.moved = true
	l.migrated++
	l.lastMove = now
	l.events = append(l.events, Event{At: now, Kind: EventMigrated, Plan: plan, Downtime: downtime})
	l.mu.Unlock()
}

// rescale pins the view's aggregate throughput to the detector's smoothed
// measured delivered rate — the θcur selection must use (DESIGN.md §4) —
// while preserving the backend's measured per-chain mix. With one chain
// this reduces to overwriting its throughput with the smoothed value; with
// several and no per-chain measurements yet, the total is split evenly.
func rescale(loads []core.Load, smoothedTotal float64) {
	if len(loads) == 0 {
		return
	}
	var raw float64
	for _, ld := range loads {
		raw += float64(ld.Throughput)
	}
	if raw > 0 {
		f := smoothedTotal / raw
		for i := range loads {
			loads[i].Throughput = device.Gbps(float64(loads[i].Throughput) * f)
		}
		return
	}
	each := device.Gbps(smoothedTotal / float64(len(loads)))
	for i := range loads {
		loads[i].Throughput = each
	}
}

func (l *loop) appendEvent(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the control-loop event log.
func (l *loop) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Migrations returns how many plans were executed.
func (l *loop) Migrations() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.migrated
}

// Detector exposes the loop's overload detector (reports inspect its
// smoothed view; tests assert episode counts and re-arming).
func (l *loop) Detector() *telemetry.Detector { return l.detector }

// Format renders the event as one log line, rounding timestamps to round
// (0 keeps full precision). Every surface printing the event log — Describe,
// pamctl live/multi, the hotspot and multi-tenant examples — goes through
// it, so a new EventKind renders everywhere at once.
func (e Event) Format(round time.Duration) string {
	at := e.At
	if round > 0 {
		at = at.Round(round)
	}
	switch {
	case e.Err != nil:
		return fmt.Sprintf("[%8v] %v: %v", at, e.Kind, e.Err)
	case e.Kind == EventMigrated:
		return fmt.Sprintf("[%8v] %v: %v (downtime %v)", at, e.Kind, e.Plan, e.Downtime)
	default:
		return fmt.Sprintf("[%8v] %v: overload episode suppressed", at, e.Kind)
	}
}

// Describe renders the event log for reports.
func (l *loop) Describe() string {
	s := ""
	for _, e := range l.Events() {
		s += e.Format(0) + "\n"
	}
	return s
}
