package orchestrator

// The engine-agnostic core of the control plane. Both backends — the
// discrete-event simulator (virtual time, orchestrator.go) and the execution
// emulator (wall-clock, live.go) — drive the same loop: feed one telemetry
// window to the overload detector, and when an episode fires, run the
// selector over a freshly built view and hand the plan to the backend's
// executor. Policy (detector hysteresis, cooldown, migration budget, event
// logging) lives here exactly once, so a control decision reproduced in
// virtual time is the same decision the emulator executes against real
// packet-processing code.
//
// The loop is natively multi-chain: it polls a core.MultiView (per-chain
// placements and measured throughputs over shared devices), runs a
// core.MultiSelector, and hands the resulting core.MultiPlan to the backend
// to execute chain by chain. A single-chain deployment is the one-load
// special case — Config.Selector wraps the paper's single-chain policies
// through core.AsMulti, and every decision reduces to exactly the PR-2
// behaviour.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/migrate"
	"repro/internal/telemetry"
)

// Config parameterizes the control loop; it is shared by both backends.
type Config struct {
	// PollEvery is the telemetry query period (the paper's "periodically
	// query the load"). In the DES backend it must match or exceed the
	// simulation's SampleEvery; in the live backend it is the wall-clock
	// sampling period.
	PollEvery time.Duration
	// Selector decides what to migrate on overload in a single-chain
	// deployment; it is lifted into the multi-chain loop via core.AsMulti.
	// Set exactly one of Selector and MultiSelector.
	Selector core.Selector
	// MultiSelector decides what to migrate across every hosted chain
	// (e.g. core.MultiPAM). Set exactly one of Selector and MultiSelector.
	MultiSelector core.MultiSelector
	// Detector tunes overload detection; zero value uses defaults.
	Detector telemetry.DetectorConfig
	// Transport models state-transfer cost; nil disables migration delay.
	// Only the DES backend uses it — the emulator measures real snapshot
	// sizes and reports real transfer times.
	Transport migrate.Transport
	// StateBytes approximates the per-vNF snapshot size for the transfer
	// model (the DES has no materialized NF state; the emulator measures
	// real sizes). Default 64 KiB.
	StateBytes int
	// MaxMigrations bounds how many plans get executed (0 = unbounded).
	// Reclaims (see ReclaimAfter) do not count against the budget.
	MaxMigrations int
	// Cooldown suppresses new plans for this long after one executes
	// (default 2×PollEvery). Reclaims honor it too.
	Cooldown time.Duration
	// ReclaimAfter enables offload reclaim, the reverse of a push-aside:
	// once the detector is clear and the smoothed NIC and DMA utilizations
	// have stayed below ClearThreshold for this many consecutive polled
	// windows, the loop migrates the most recently pushed element back to
	// the device it came from — restoring SmartNIC offload after the storm
	// passes. The move is guarded by the fluid model: it only executes when
	// the predicted utilization of the destination (and the DMA engine, if
	// the return adds crossings) stays below ClearThreshold for this many
	// consecutive windows as well (single-window measurements are noisy), so
	// the hysteresis band Threshold−ClearThreshold is exactly the headroom
	// that keeps a reclaimed element from re-firing the detector — a band of
	// zero invites migration ping-pong under load hovering at the
	// threshold. 0 disables reclaim (the default; prior behaviour).
	ReclaimAfter int
}

// selector resolves the configured policy into the loop's native
// multi-chain form.
func (c Config) selector() (core.MultiSelector, error) {
	switch {
	case c.Selector != nil && c.MultiSelector != nil:
		return nil, errors.New("orchestrator: set Selector or MultiSelector, not both")
	case c.MultiSelector != nil:
		return c.MultiSelector, nil
	case c.Selector != nil:
		return core.AsMulti(c.Selector), nil
	}
	return nil, errors.New("orchestrator: nil selector")
}

// Event records one control-loop action for reports and tests.
type Event struct {
	At       time.Duration
	Kind     EventKind
	Plan     core.MultiPlan
	Err      error
	Downtime time.Duration
	// Escalation carries the structured scale-out report for
	// EventEscalated entries.
	Escalation *core.Escalation
}

// EventKind classifies control-loop events.
type EventKind uint8

// Event kinds.
const (
	// EventMigrated records an executed plan.
	EventMigrated EventKind = iota
	// EventSkipped records an overload with no executable plan (e.g. the
	// paper's both-overloaded terminal case) or a plan whose execution
	// failed.
	EventSkipped
	// EventCooldown records an overload episode suppressed because the
	// previous migration is still within Config.Cooldown.
	EventCooldown
	// EventLimited records an overload episode suppressed by
	// Config.MaxMigrations.
	EventLimited
	// EventReclaimed records an executed reclaim: a previously pushed-aside
	// element migrated back to its original device after the overload
	// passed (Config.ReclaimAfter).
	EventReclaimed
	// EventEscalated records the scale-out terminal case (both devices hot,
	// no feasible Multi-PAM plan) reported upward as a structured
	// core.Escalation instead of a dead-end skip. The loop still re-arms:
	// if no fleet tier acts, the verdict is retried like any skip.
	EventEscalated
	// EventExternal records an externally-driven chain migration the fleet
	// tier executed against this server's dataplane (NoteExternalMove):
	// the loop starts its cooldown and drops the chain's reclaim
	// candidates, but the move itself was not its decision.
	EventExternal
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSkipped:
		return "skipped"
	case EventCooldown:
		return "cooldown"
	case EventLimited:
		return "limit-reached"
	case EventReclaimed:
		return "reclaimed"
	case EventEscalated:
		return "escalated"
	case EventExternal:
		return "external-move"
	}
	return "migrated"
}

// Migration records one executed element move — the unit the stability
// harness analyses. Push-asides and reclaims both append here, so the full
// per-element trajectory (A→B, B→A, …) is reconstructible.
type Migration struct {
	At         time.Duration
	ChainIndex int
	Element    string
	From, To   device.Kind
	// Reclaim marks moves executed by the reclaim policy rather than a
	// selector plan.
	Reclaim bool
}

// PingPong is one detected bounce: the same element moved A→B and back
// B→A within the horizon — the oscillation a stable control loop must not
// produce when load hovers at the threshold.
type PingPong struct {
	Element    string
	ChainIndex int
	Out, Back  Migration
}

// FindPingPongs scans a migration history for bounces: for every move, the
// next opposite move of the same element within horizon forms a ping-pong.
// Each outbound move is counted at most once.
func FindPingPongs(hist []Migration, horizon time.Duration) []PingPong {
	var out []PingPong
	for i := 0; i < len(hist); i++ {
		a := hist[i]
		for j := i + 1; j < len(hist); j++ {
			b := hist[j]
			if b.At-a.At > horizon {
				break
			}
			if a.ChainIndex != b.ChainIndex || a.Element != b.Element {
				continue
			}
			if a.From == b.To && a.To == b.From {
				out = append(out, PingPong{Element: a.Element, ChainIndex: a.ChainIndex, Out: a, Back: b})
				break
			}
		}
	}
	return out
}

// loop is the shared poll/detect/select/execute state machine. exec applies
// a plan to the backend's dataplane, chain by chain, and returns the
// migration downtime it incurred (modelled for the DES, measured for the
// emulator).
type loop struct {
	cfg      Config
	sel      core.MultiSelector
	detector *telemetry.Detector
	view     func() core.MultiView
	exec     func(plan core.MultiPlan) (time.Duration, error)

	// decideMu serializes whole decisions (detect → select → execute), so
	// concurrent polls — the live backend's background ticker plus a manual
	// Poll — cannot both slip past the cooldown/budget checks and execute
	// overlapping plans. mu guards only the fields below and is safe to
	// take from exec callbacks while decideMu is held.
	decideMu sync.Mutex

	mu       sync.Mutex
	events   []Event
	lastMove time.Duration
	moved    bool // a plan (possibly partial) has executed; lastMove is set
	migrated int
	history  []Migration
	// pushed is the reclaim-candidate stack: fully executed plan steps in
	// order, popped as reclaims undo them (LIFO — the last push-aside is
	// the first offload restored).
	pushed   []Migration
	calm     int // consecutive below-ClearThreshold windows (reclaim gate)
	armed    int // consecutive windows the reclaim headroom guard held
	reclaims int
	// escalate, when set, receives the structured scale-out report for
	// every terminal-case episode (see OnEscalation).
	escalate func(core.Escalation)
}

func newLoop(cfg Config, view func() core.MultiView, exec func(core.MultiPlan) (time.Duration, error)) (*loop, error) {
	if cfg.PollEvery <= 0 {
		return nil, errors.New("orchestrator: PollEvery must be positive")
	}
	sel, err := cfg.selector()
	if err != nil {
		return nil, err
	}
	if cfg.StateBytes <= 0 {
		cfg.StateBytes = 64 << 10
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * cfg.PollEvery
	}
	return &loop{
		cfg:      cfg,
		sel:      sel,
		detector: telemetry.NewDetector(cfg.Detector),
		view:     view,
		exec:     exec,
	}, nil
}

// observe feeds one telemetry window to the detector and, when an overload
// episode fires, runs selection and execution. now is the backend's clock
// (virtual or wall) and timestamps any resulting event.
func (l *loop) observe(now time.Duration, s telemetry.Sample) {
	l.decideMu.Lock()
	defer l.decideMu.Unlock()

	fire, throughput := l.detector.Observe(s)
	if !fire {
		l.maybeReclaim(now, throughput)
		return
	}
	l.mu.Lock()
	if l.cfg.MaxMigrations > 0 && l.migrated >= l.cfg.MaxMigrations {
		l.events = append(l.events, Event{At: now, Kind: EventLimited})
		l.mu.Unlock()
		return
	}
	if l.moved && now-l.lastMove < l.cfg.Cooldown {
		l.events = append(l.events, Event{At: now, Kind: EventCooldown})
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()

	v := l.view()
	rescale(v.Loads, throughput)
	plan, err := l.sel.SelectMulti(v)
	if err != nil {
		// The episode produced no executable plan. Re-arm the detector so
		// the decision is retried after another Consecutive hot windows:
		// measured throughput moves, so a terminal verdict now (e.g.
		// both-overloaded at this θcur) need not be terminal next window.
		l.detector.Rearm()
		if errors.Is(err, core.ErrBothOverloaded) {
			// The paper's scale-out terminal case: report it upward as a
			// structured escalation rather than a dead-end skip, so a fleet
			// tier can relieve the server by migrating a tenant away.
			esc := escalationFrom(now, v, s, throughput)
			l.mu.Lock()
			l.events = append(l.events, Event{At: now, Kind: EventEscalated, Err: err, Escalation: &esc})
			fn := l.escalate
			l.mu.Unlock()
			if fn != nil {
				fn(esc)
			}
			return
		}
		l.appendEvent(Event{At: now, Kind: EventSkipped, Err: err})
		return
	}
	downtime, err := l.exec(plan)
	if err != nil {
		// Execution failed; re-arm for a retry like the no-plan case. A
		// non-zero downtime means some steps did apply (a partial
		// migration), so the cooldown still starts — the dataplane just
		// moved and must settle before the next attempt.
		l.detector.Rearm()
		l.mu.Lock()
		if downtime > 0 {
			l.moved = true
			l.lastMove = now
		}
		l.events = append(l.events, Event{At: now, Kind: EventSkipped, Plan: plan, Err: err})
		l.mu.Unlock()
		return
	}
	l.mu.Lock()
	l.moved = true
	l.migrated++
	l.lastMove = now
	l.calm, l.armed = 0, 0
	for _, st := range plan.Steps {
		m := Migration{At: now, ChainIndex: st.ChainIndex, Element: st.Step.Element, From: st.Step.From, To: st.Step.To}
		l.history = append(l.history, m)
		l.pushed = append(l.pushed, m)
	}
	l.events = append(l.events, Event{At: now, Kind: EventMigrated, Plan: plan, Downtime: downtime})
	l.mu.Unlock()
}

// maybeReclaim runs the reclaim policy on a quiet window (no fire): after
// Config.ReclaimAfter consecutive windows below the detector's clear
// threshold, the most recently pushed element migrates back to the device
// it came from — if the fluid model predicts the restored placement stays
// below ClearThreshold. Called with decideMu held.
func (l *loop) maybeReclaim(now time.Duration, throughput float64) {
	if l.cfg.ReclaimAfter <= 0 {
		return
	}
	l.mu.Lock()
	n := len(l.pushed)
	l.mu.Unlock()
	if n == 0 {
		return
	}
	dcfg := l.detector.Config()
	if l.detector.Fired() ||
		l.detector.SmoothedUtil() >= dcfg.ClearThreshold ||
		l.detector.SmoothedDMAUtil() >= dcfg.ClearThreshold {
		l.mu.Lock()
		l.calm, l.armed = 0, 0
		l.mu.Unlock()
		return
	}
	l.mu.Lock()
	l.calm++
	ready := l.calm >= l.cfg.ReclaimAfter && !(l.moved && now-l.lastMove < l.cfg.Cooldown)
	cand := l.pushed[len(l.pushed)-1]
	l.mu.Unlock()
	if !ready {
		return
	}

	v := l.view()
	rescale(v.Loads, throughput)
	plan, drop := reclaimPlan(v, cand, dcfg.ClearThreshold)
	if drop {
		// The element is no longer where the push left it (a later plan or
		// an operator moved it); the candidate can never be reclaimed.
		l.mu.Lock()
		if len(l.pushed) > 0 {
			l.pushed = l.pushed[:len(l.pushed)-1]
		}
		l.armed = 0
		l.mu.Unlock()
		return
	}
	if plan == nil {
		// Headroom guard: reclaiming now would re-approach overload. The
		// guard must then hold for ReclaimAfter consecutive windows before a
		// reclaim executes — re-arm the streak.
		l.mu.Lock()
		l.armed = 0
		l.mu.Unlock()
		return
	}
	l.mu.Lock()
	l.armed++
	ok := l.armed >= l.cfg.ReclaimAfter
	l.mu.Unlock()
	if !ok {
		// The guard held this window, but a single window's measurements are
		// noisy — a dwell boundary where the chain delivered little makes a
		// reclaim look safe. Only a sustained streak (ReclaimAfter windows,
		// same confirmation depth as the calm gate) executes.
		return
	}
	downtime, err := l.exec(*plan)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calm, l.armed = 0, 0
	if err != nil {
		if downtime > 0 {
			l.moved = true
			l.lastMove = now
		}
		l.events = append(l.events, Event{At: now, Kind: EventSkipped, Plan: *plan, Err: err})
		return
	}
	l.pushed = l.pushed[:len(l.pushed)-1]
	l.moved = true
	l.lastMove = now
	l.reclaims++
	l.history = append(l.history, Migration{
		At: now, ChainIndex: cand.ChainIndex, Element: cand.Element,
		From: cand.To, To: cand.From, Reclaim: true,
	})
	l.events = append(l.events, Event{At: now, Kind: EventReclaimed, Plan: *plan, Downtime: downtime})
}

// reclaimPlan builds the reverse plan for a pushed element, or reports that
// the candidate must be dropped (element no longer in the pushed-to
// placement). A nil plan with drop=false means the headroom guard refused
// the move this window: the predicted utilization of the return device —
// its measured utilization plus the element's own θcur/θ share — or the
// predicted DMA utilization (when the return adds crossings) would reach
// clear. The guard is what makes the hysteresis band a stability margin.
func reclaimPlan(v core.MultiView, cand Migration, clear float64) (*core.MultiPlan, bool) {
	if cand.ChainIndex < 0 || cand.ChainIndex >= len(v.Loads) {
		return nil, true
	}
	load := v.Loads[cand.ChainIndex]
	idx := load.Chain.Index(cand.Element)
	if idx < 0 || load.Chain.At(idx).Loc != cand.To {
		return nil, true
	}
	elemType := load.Chain.At(idx).Type

	dev := v.CPU
	measured := v.MeasuredCPUUtil
	if cand.From == device.KindSmartNIC {
		dev = v.NIC
		measured = v.MeasuredNICUtil
	}
	added, err := dev.Utilization(v.Catalog, []string{elemType}, load.Throughput)
	if err != nil {
		return nil, true // cannot run on the return device anymore
	}
	if measured+added >= clear {
		return nil, false
	}
	restored := load.Chain.Clone()
	if err := restored.Move(cand.Element, cand.From); err != nil {
		return nil, true
	}
	if extra := restored.Crossings() - load.Chain.Crossings(); extra > 0 {
		if v.MeasuredDMAUtil+v.NIC.DMAUtilization(load.Throughput, extra) >= clear {
			return nil, false
		}
	}
	results := make([]*chain.Chain, len(v.Loads))
	for i, ld := range v.Loads {
		if i == cand.ChainIndex {
			results[i] = restored
		} else {
			results[i] = ld.Chain.Clone()
		}
	}
	return &core.MultiPlan{
		Selector: "reclaim",
		Steps: []core.MultiStepEntry{{
			ChainIndex: cand.ChainIndex,
			Step:       core.Step{Element: cand.Element, From: cand.To, To: cand.From},
		}},
		Results: results,
	}, false
}

// rescale pins the view's aggregate throughput to the detector's smoothed
// measured delivered rate — the θcur selection must use (DESIGN.md §4) —
// while preserving the backend's measured per-chain mix. With one chain
// this reduces to overwriting its throughput with the smoothed value; with
// several and no per-chain measurements yet, the total is split evenly.
func rescale(loads []core.Load, smoothedTotal float64) {
	if len(loads) == 0 {
		return
	}
	var raw float64
	for _, ld := range loads {
		raw += ld.Throughput.Float()
	}
	if raw > 0 {
		f := smoothedTotal / raw
		for i := range loads {
			loads[i].Throughput = device.MeasuredGbps(loads[i].Throughput.Float() * f)
		}
		return
	}
	each := device.MeasuredGbps(smoothedTotal / float64(len(loads)))
	for i := range loads {
		loads[i].Throughput = each
	}
}

// escalationFrom builds the structured scale-out report for a terminal
// verdict: the measured demand picture from the window that fired, with
// the reason classified against the same measured utilizations the
// selector checked. A model-driven backend (no measured utilizations in
// the view) reaches the verdict by exhausting candidates, which is the
// no-feasible-plan form.
func escalationFrom(now time.Duration, v core.MultiView, s telemetry.Sample, throughput float64) core.Escalation {
	th := v.OverloadThreshold
	if th <= 0 {
		th = core.DefaultOverloadThreshold
	}
	reason := core.EscalateNoFeasiblePlan
	if v.MeasuredNICUtil >= th && v.MeasuredCPUUtil >= th {
		reason = core.EscalateBothOverloaded
	}
	return core.Escalation{
		At:            now,
		Reason:        reason,
		NICUtil:       s.NICUtil,
		CPUUtil:       s.CPUUtil,
		DMAUtil:       s.DMAUtil,
		DeliveredGbps: throughput,
	}
}

// OnEscalation installs the hook that receives every terminal-case report
// (nil uninstalls it). The hook runs on the polling goroutine with the
// loop's decision lock held, so it must not block and must not call back
// into the loop — a fleet agent forwards the report to its coordinator's
// queue and returns.
func (l *loop) OnEscalation(fn func(core.Escalation)) {
	l.mu.Lock()
	l.escalate = fn
	l.mu.Unlock()
}

// Suspend takes the loop's decision lock and returns the release. While
// suspended no poll can detect, select or execute, which is how the fleet
// tier keeps the local control plane's hands off the dataplane during an
// externally-driven cross-server migration. Polls taken meanwhile block
// until resume.
func (l *loop) Suspend() (resume func()) {
	l.decideMu.Lock()
	return l.decideMu.Unlock
}

// NoteExternalMove records that the fleet tier moved a chain in or out of
// this server's dataplane: the cooldown starts (the dataplane just changed
// and must settle before the next local decision), the reclaim streaks
// reset, and any reclaim candidates belonging to the moved chain are
// dropped — their elements are no longer this server's to restore.
func (l *loop) NoteExternalMove(now time.Duration, chainIdx int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.moved = true
	l.lastMove = now
	l.calm, l.armed = 0, 0
	kept := l.pushed[:0]
	for _, m := range l.pushed {
		if m.ChainIndex != chainIdx {
			kept = append(kept, m)
		}
	}
	l.pushed = kept
	l.events = append(l.events, Event{At: now, Kind: EventExternal})
}

func (l *loop) appendEvent(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the control-loop event log.
func (l *loop) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Migrations returns how many plans were executed.
func (l *loop) Migrations() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.migrated
}

// Reclaims returns how many reclaim moves were executed.
func (l *loop) Reclaims() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reclaims
}

// History returns a copy of every executed element move (push-asides and
// reclaims) in execution order — the input to FindPingPongs.
func (l *loop) History() []Migration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Migration(nil), l.history...)
}

// Detector exposes the loop's overload detector (reports inspect its
// smoothed view; tests assert episode counts and re-arming).
func (l *loop) Detector() *telemetry.Detector { return l.detector }

// Format renders the event as one log line, rounding timestamps to round
// (0 keeps full precision). Every surface printing the event log — Describe,
// pamctl live/multi, the hotspot and multi-tenant examples — goes through
// it, so a new EventKind renders everywhere at once.
func (e Event) Format(round time.Duration) string {
	at := e.At
	if round > 0 {
		at = at.Round(round)
	}
	switch {
	case e.Kind == EventEscalated && e.Escalation != nil:
		return fmt.Sprintf("[%8v] %v: %v", at, e.Kind, *e.Escalation)
	case e.Err != nil:
		return fmt.Sprintf("[%8v] %v: %v", at, e.Kind, e.Err)
	case e.Kind == EventMigrated || e.Kind == EventReclaimed:
		return fmt.Sprintf("[%8v] %v: %v (downtime %v)", at, e.Kind, e.Plan, e.Downtime)
	case e.Kind == EventExternal:
		return fmt.Sprintf("[%8v] %v: fleet tier migrated a chain in or out", at, e.Kind)
	default:
		return fmt.Sprintf("[%8v] %v: overload episode suppressed", at, e.Kind)
	}
}

// Describe renders the event log for reports.
func (l *loop) Describe() string {
	s := ""
	for _, e := range l.Events() {
		s += e.Format(0) + "\n"
	}
	return s
}
