package orchestrator_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func newLiveRuntime(t *testing.T) *emul.Runtime {
	t.Helper()
	rt, err := emul.New(emul.Config{
		Chain:   scenario.Figure1Chain(),
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   100, // generous: nothing throttles in these tests
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// pushAside is a test selector that always plans the Figure-1 PAM step
// (logger0 to the CPU), letting the tests exercise the execution path
// without real overload.
type pushAside struct{}

func (pushAside) Name() string { return "push-aside-stub" }

func (pushAside) Select(v core.View) (core.Plan, error) {
	work := v.Chain.Clone()
	if err := work.Move(scenario.NameLogger, device.KindCPU); err != nil {
		return core.Plan{}, err
	}
	return core.Plan{
		Selector: "push-aside-stub",
		Steps: []core.Step{{
			Element: scenario.NameLogger,
			From:    device.KindSmartNIC,
			To:      device.KindCPU,
		}},
		Result: work,
	}, nil
}

// noPlan is a test selector whose episodes never produce an executable plan.
type noPlan struct{}

func (noPlan) Name() string { return "no-plan-stub" }

func (noPlan) Select(core.View) (core.Plan, error) {
	return core.Plan{}, core.ErrBothOverloaded
}

// hairTrigger fires the detector on any served traffic — one hot window at
// a utilization far below real overload — and re-arms on any idle window.
func hairTrigger() telemetry.DetectorConfig {
	return telemetry.DetectorConfig{
		Threshold:      0.0001,
		ClearThreshold: 0.00005,
		Consecutive:    1,
		Alpha:          1,
	}
}

func sendFrames(t *testing.T, rt *emul.Runtime, n int) {
	t.Helper()
	synth := traffic.NewSynth(8, 3)
	for i := 0; i < n; i++ {
		tmpl := synth.Frame(uint64(i%8), 512)
		frame := rt.AcquireFrame(len(tmpl))
		copy(frame, tmpl)
		rt.Send(frame)
	}
	rt.Drain()
	// A sampling window below 1ms reads as degenerate and reports zero
	// load; make sure the next Poll sees this traffic.
	time.Sleep(2 * time.Millisecond)
}

func TestLiveLoopExecutesRealMigration(t *testing.T) {
	rt := newLiveRuntime(t)
	rt.Start()
	defer rt.Close()
	p := scenario.DefaultParams()
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery: 10 * time.Millisecond,
		Selector:  pushAside{},
		Detector:  hairTrigger(),
		Cooldown:  time.Hour,
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}

	sendFrames(t, rt, 200)
	live.Poll() // hot window -> fire -> plan -> real migration

	if live.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1\nlog:\n%s", live.Migrations(), live.Describe())
	}
	evs := live.Events()
	if len(evs) != 1 || evs[0].Kind != orchestrator.EventMigrated {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Downtime <= 0 {
		t.Error("no measured state-transfer downtime")
	}
	got := rt.Placement()
	if got.At(got.Index(scenario.NameLogger)).Loc != device.KindCPU {
		t.Errorf("placement not applied to the dataplane: %v", got)
	}

	// A second episode within the cooldown is logged and suppressed. The
	// idle window in between re-arms the detector (utilization falls below
	// ClearThreshold), so the next hot window is a genuine second episode.
	time.Sleep(2 * time.Millisecond)
	live.Poll() // idle window: clears
	sendFrames(t, rt, 200)
	live.Poll() // hot again: fires, suppressed by cooldown
	var cooldowns int
	for _, e := range live.Events() {
		if e.Kind == orchestrator.EventCooldown {
			cooldowns++
		}
	}
	if cooldowns == 0 {
		t.Errorf("no cooldown event after second episode:\n%s", live.Describe())
	}
	if live.Migrations() != 1 {
		t.Errorf("cooldown did not hold: %d migrations\n%s", live.Migrations(), live.Describe())
	}
}

func TestLiveLoopSkipsAndRearmsOnUnexecutablePlan(t *testing.T) {
	rt := newLiveRuntime(t)
	rt.Start()
	defer rt.Close()
	p := scenario.DefaultParams()
	// Every fired episode yields the both-overloaded terminal error, is
	// logged as a structured escalation, and the detector re-arms so the
	// next hot window can fire a genuine retry.
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery: 10 * time.Millisecond,
		Selector:  noPlan{},
		Detector:  hairTrigger(),
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sendFrames(t, rt, 100)
		live.Poll()
	}
	evs := live.Events()
	if len(evs) < 2 {
		t.Fatalf("want repeated escalation events after re-arm, got %+v", evs)
	}
	for _, e := range evs {
		if e.Kind != orchestrator.EventEscalated {
			t.Errorf("unexpected event %+v", e)
		}
	}
	if live.Migrations() != 0 {
		t.Errorf("migrated without overload: %s", live.Describe())
	}
	if live.Detector().Events() < 2 {
		t.Errorf("detector did not re-arm: %d episodes", live.Detector().Events())
	}
}

func TestLiveLoopBackgroundPoller(t *testing.T) {
	rt := newLiveRuntime(t)
	rt.Start()
	defer rt.Close()
	p := scenario.DefaultParams()
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery: 5 * time.Millisecond,
		Selector:  core.PAM{},
	}, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}
	live.Start()
	live.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(live.Samples()) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	live.Stop()
	live.Stop() // idempotent
	if n := len(live.Samples()); n < 3 {
		t.Fatalf("background poller took %d samples, want >= 3", n)
	}
	n := len(live.Samples())
	time.Sleep(20 * time.Millisecond)
	if len(live.Samples()) != n {
		t.Error("poller still sampling after Stop")
	}
}

func TestNewLiveValidation(t *testing.T) {
	rt := newLiveRuntime(t)
	if _, err := orchestrator.NewLive(rt, orchestrator.Config{Selector: core.PAM{}}, core.View{}); err == nil {
		t.Error("zero PollEvery accepted")
	}
	if _, err := orchestrator.NewLive(rt, orchestrator.Config{PollEvery: time.Second}, core.View{}); err == nil {
		t.Error("nil selector accepted")
	}
}
