package orchestrator_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/migrate"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func newSim(t *testing.T) *chainsim.Sim {
	t.Helper()
	p := scenario.DefaultParams()
	s, err := chainsim.New(chainsim.Config{
		Chain:         scenario.Figure1Chain(),
		Catalog:       device.Table1(),
		NFOverhead:    p.NFOverhead,
		Link:          pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps},
		DMAEngineGbps: float64(p.DMAEngineGbps),
		QueueCapacity: p.QueueCapacity,
		Seed:          p.Seed,
		SampleEvery:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func orchConfig() orchestrator.Config {
	return orchestrator.Config{
		PollEvery: 5 * time.Millisecond,
		Selector:  core.PAM{},
		Detector:  telemetry.DetectorConfig{Consecutive: 3, Alpha: 0.5},
		Transport: migrate.PCIeTransport{Link: pcie.DefaultLink(), Setup: time.Millisecond},
	}
}

func TestControlLoopMigratesOnOverload(t *testing.T) {
	p := scenario.DefaultParams()
	s := newSim(t)
	o, err := orchestrator.New(s, orchConfig(), scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}
	o.Start()

	// Ramp: calm, then a hot spot well past the NIC saturation point.
	src, err := traffic.NewRamp([]traffic.Phase{
		{RateGbps: 0.5, Duration: 100 * time.Millisecond},
		{RateGbps: 3.0, Duration: 500 * time.Millisecond},
	}, traffic.FixedSize(1024), traffic.ProcessCBR, 16, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(src)
	res := s.Run(600 * time.Millisecond)

	if o.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1\nlog:\n%s", o.Migrations(), o.Describe())
	}
	evs := o.Events()
	if len(evs) == 0 || evs[0].Kind != orchestrator.EventMigrated {
		t.Fatalf("events = %v", evs)
	}
	plan := evs[0].Plan
	if plan.Selector != "PAM" || len(plan.Steps) != 1 || plan.Steps[0].Step.Element != scenario.NameLogger {
		t.Errorf("plan = %v, want PAM migrating logger0", plan)
	}
	if evs[0].Downtime <= 0 {
		t.Error("no modelled migration downtime")
	}
	// The placement must have been applied to the dataplane.
	got := s.Placement()
	if got.At(got.Index(scenario.NameLogger)).Loc != device.KindCPU {
		t.Errorf("placement not applied: %v", got)
	}
	if res.Migrations != 1 {
		t.Errorf("sim recorded %d migrations", res.Migrations)
	}
}

func TestControlLoopQuietWhenUnderloaded(t *testing.T) {
	p := scenario.DefaultParams()
	s := newSim(t)
	o, err := orchestrator.New(s, orchConfig(), scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	src, err := traffic.NewGen(0.5, traffic.FixedSize(1024), traffic.ProcessCBR, 16, 0, 300*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(src)
	s.Run(300 * time.Millisecond)
	if o.Migrations() != 0 {
		t.Errorf("migrated under calm load:\n%s", o.Describe())
	}
}

func TestControlLoopRespectsMaxMigrations(t *testing.T) {
	p := scenario.DefaultParams()
	s := newSim(t)
	cfg := orchConfig()
	cfg.MaxMigrations = 0 // unbounded
	cfg.Selector = core.NaiveCheapestOnCPU{}
	o, err := orchestrator.New(s, cfg, scenario.View(scenario.Figure1Chain(), p, 0))
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	src, _ := traffic.NewGen(3.5, traffic.FixedSize(1024), traffic.ProcessCBR, 16, 0, 900*time.Millisecond, 1)
	s.Inject(src)
	s.Run(900 * time.Millisecond)
	// The naive policy migrates Monitor; the NIC (Logger+Firewall) is still
	// hot at 3.5 offered (sat 1.67), so a second episode may fire; the
	// detector's hysteresis plus cooldown must keep it bounded and the log
	// must explain each event.
	if o.Migrations() > 3 {
		t.Errorf("runaway migrations: %d\n%s", o.Migrations(), o.Describe())
	}
	if o.Describe() == "" {
		t.Error("no event log")
	}
}

func TestNewValidation(t *testing.T) {
	s := newSim(t)
	if _, err := orchestrator.New(s, orchestrator.Config{Selector: core.PAM{}}, core.View{}); err == nil {
		t.Error("zero PollEvery accepted")
	}
	if _, err := orchestrator.New(s, orchestrator.Config{PollEvery: time.Second}, core.View{}); err == nil {
		t.Error("nil selector accepted")
	}
}

func TestSkippedEventWhenBothOverloaded(t *testing.T) {
	// Force Eq. 2 failures: a catalog where the CPU cannot absorb anything.
	p := scenario.DefaultParams()
	s := newSim(t)
	cfg := orchConfig()
	v := scenario.View(scenario.Figure1Chain(), p, 0)
	cat := v.Catalog.Clone()
	cat[device.TypeLogger] = device.Capacity{SmartNIC: 2, CPU: 0.2}
	cat[device.TypeMonitor] = device.Capacity{SmartNIC: 3.2, CPU: 0.2}
	cat[device.TypeFirewall] = device.Capacity{SmartNIC: 10, CPU: 0.2}
	v.Catalog = cat
	o, err := orchestrator.New(s, cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	src, _ := traffic.NewGen(3.0, traffic.FixedSize(1024), traffic.ProcessCBR, 16, 0, 400*time.Millisecond, 1)
	s.Inject(src)
	s.Run(400 * time.Millisecond)
	if o.Migrations() != 0 {
		t.Fatalf("migrated despite infeasible CPU:\n%s", o.Describe())
	}
	var sawEscalation bool
	for _, e := range o.Events() {
		if e.Kind == orchestrator.EventEscalated && errors.Is(e.Err, core.ErrBothOverloaded) {
			sawEscalation = true
			if e.Escalation == nil {
				t.Error("escalated event carries no structured report")
			} else if e.Escalation.Reason != core.EscalateNoFeasiblePlan {
				// The DES view carries no measured utilizations, so the
				// verdict is reached by exhausting candidates.
				t.Errorf("reason = %v, want no-feasible-plan", e.Escalation.Reason)
			}
		}
	}
	if !sawEscalation {
		t.Errorf("no both-overloaded escalation event:\n%s", o.Describe())
	}
}
