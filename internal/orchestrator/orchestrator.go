// Package orchestrator closes the paper's control loop over a running chain
// simulation: periodically poll device load (telemetry), detect SmartNIC
// hot spots, run a selection policy (PAM or a naive baseline), model the
// migration's state-transfer cost, and install the new placement.
//
// The orchestrator operates entirely in virtual time on the simulation's
// event engine, so control-plane behaviour is as deterministic and
// reproducible as the dataplane.
package orchestrator

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/migrate"
	"repro/internal/telemetry"
)

// Config parameterizes the control loop.
type Config struct {
	// PollEvery is the telemetry query period (the paper's "periodically
	// query the load"). Must match or exceed the simulation's SampleEvery.
	PollEvery time.Duration
	// Selector decides what to migrate on overload.
	Selector core.Selector
	// Detector tunes overload detection; zero value uses defaults.
	Detector telemetry.DetectorConfig
	// Transport models state-transfer cost; nil disables migration delay.
	Transport migrate.Transport
	// StateBytes approximates the per-vNF snapshot size for the transfer
	// model (the DES has no materialized NF state; the emulator measures
	// real sizes). Default 64 KiB.
	StateBytes int
	// MaxMigrations bounds how many plans get executed (0 = unbounded).
	MaxMigrations int
	// Cooldown suppresses new plans for this long after one executes
	// (default 2×PollEvery).
	Cooldown time.Duration
}

// Event records one control-loop action for reports and tests.
type Event struct {
	At       time.Duration
	Kind     EventKind
	Plan     core.Plan
	Err      error
	Downtime time.Duration
}

// EventKind classifies control-loop events.
type EventKind uint8

// Event kinds.
const (
	// EventMigrated records an executed plan.
	EventMigrated EventKind = iota
	// EventSkipped records an overload with no executable plan (e.g. the
	// paper's both-overloaded terminal case).
	EventSkipped
)

// String names the kind.
func (k EventKind) String() string {
	if k == EventSkipped {
		return "skipped"
	}
	return "migrated"
}

// Orchestrator drives one simulation's control loop.
type Orchestrator struct {
	cfg      Config
	sim      *chainsim.Sim
	view     func() core.View // rebuilt each decision on the live placement
	detector *telemetry.Detector
	events   []Event
	lastMove time.Duration
	moved    int
}

// New attaches a control loop to a simulation. viewTemplate supplies the
// device models and catalog; its Chain and Throughput fields are replaced
// with live values at each decision.
func New(sim *chainsim.Sim, cfg Config, viewTemplate core.View) (*Orchestrator, error) {
	if cfg.PollEvery <= 0 {
		return nil, errors.New("orchestrator: PollEvery must be positive")
	}
	if cfg.Selector == nil {
		return nil, errors.New("orchestrator: nil selector")
	}
	if cfg.StateBytes <= 0 {
		cfg.StateBytes = 64 << 10
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * cfg.PollEvery
	}
	o := &Orchestrator{
		cfg:      cfg,
		sim:      sim,
		detector: telemetry.NewDetector(cfg.Detector),
	}
	o.view = func() core.View {
		v := viewTemplate
		v.Chain = sim.Placement()
		return v
	}
	return o, nil
}

// Start schedules the first poll; subsequent polls self-schedule. Call
// before running the simulation.
func (o *Orchestrator) Start() {
	o.sim.Engine().After(o.cfg.PollEvery, o.poll)
}

func (o *Orchestrator) poll() {
	defer o.sim.Engine().After(o.cfg.PollEvery, o.poll)

	nicU, cpuU, delivered := o.sim.WindowStats()
	now := o.sim.Engine().Now()
	fire, throughput := o.detector.Observe(telemetry.Sample{
		At:            now,
		NICUtil:       nicU,
		CPUUtil:       cpuU,
		DeliveredGbps: delivered,
	})
	if !fire {
		return
	}
	if o.cfg.MaxMigrations > 0 && o.moved >= o.cfg.MaxMigrations {
		return
	}
	if o.lastMove > 0 && now-o.lastMove < o.cfg.Cooldown {
		return
	}

	v := o.view()
	v.Throughput = device.Gbps(throughput)
	plan, err := o.cfg.Selector.Select(v)
	if err != nil {
		o.events = append(o.events, Event{At: now, Kind: EventSkipped, Err: err})
		return
	}
	// Model the migration downtime: one state transfer per step, applied
	// as a delay before the new placement takes effect.
	var downtime time.Duration
	if o.cfg.Transport != nil {
		for range plan.Steps {
			downtime += o.cfg.Transport.TransferTime(o.cfg.StateBytes)
		}
	}
	o.moved++
	o.lastMove = now
	apply := func() {
		if err := o.sim.SetPlacement(plan.Result); err != nil {
			o.events = append(o.events, Event{At: o.sim.Engine().Now(), Kind: EventSkipped, Err: err})
			return
		}
	}
	if downtime > 0 {
		o.sim.Engine().After(downtime, apply)
	} else {
		apply()
	}
	o.events = append(o.events, Event{At: now, Kind: EventMigrated, Plan: plan, Downtime: downtime})
}

// Events returns a copy of the control-loop event log.
func (o *Orchestrator) Events() []Event {
	return append([]Event(nil), o.events...)
}

// Migrations returns how many plans were executed.
func (o *Orchestrator) Migrations() int { return o.moved }

// Describe renders the event log for reports.
func (o *Orchestrator) Describe() string {
	s := ""
	for _, e := range o.events {
		if e.Err != nil {
			s += fmt.Sprintf("[%8v] %v: %v\n", e.At, e.Kind, e.Err)
			continue
		}
		s += fmt.Sprintf("[%8v] %v: %v (downtime %v)\n", e.At, e.Kind, e.Plan, e.Downtime)
	}
	return s
}
