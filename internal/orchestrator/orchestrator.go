// Package orchestrator closes the paper's control loop over a running
// dataplane: periodically poll device load (telemetry), detect SmartNIC hot
// spots, run a selection policy (PAM, Multi-PAM or a naive baseline),
// account the migration's state-transfer cost, and install the new
// placement.
//
// One loop, two backends. The poll/detect/select/execute core (loop.go) is
// engine-agnostic and natively multi-chain — it polls a core.MultiView,
// runs a core.MultiSelector and executes core.MultiPlan steps chain by
// chain. Orchestrator drives it in virtual time on the discrete-event
// simulator's event engine, so control-plane behaviour is as deterministic
// and reproducible as that dataplane, while Live (live.go) drives the same
// core on wall-clock time over the execution emulator, where overload is
// detected from measured meter windows summed across every hosted tenant
// chain and migrations run the real UNO freeze/transfer/restore sequence.
// See DESIGN.md §4.
package orchestrator

import (
	"time"

	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// multiViewFrom assembles the loop's native view around live per-chain
// loads, copying the shared device/catalog parameters from the template.
// nicUtil/cpuUtil/dmaUtil, when positive, carry the backend's measured
// demand utilizations into the selector's overload check (the live
// emulator's shared device gates collapse delivered throughput, so the
// fluid model at θcur goes blind during the very overload being handled;
// dmaUtil makes a crossing-bound overload — the shared DMA engine
// saturated while both devices stay feasible — selectable at all); the DES
// backend passes zeros and keeps the pure-model check.
func multiViewFrom(t core.View, loads []core.Load, nicUtil, cpuUtil, dmaUtil float64) core.MultiView {
	return core.MultiView{
		Loads:             loads,
		Catalog:           t.Catalog,
		NIC:               t.NIC,
		CPU:               t.CPU,
		BorderMode:        t.BorderMode,
		OverloadThreshold: t.OverloadThreshold,
		MeasuredNICUtil:   nicUtil,
		MeasuredCPUUtil:   cpuUtil,
		MeasuredDMAUtil:   dmaUtil,
	}
}

// Orchestrator drives one simulation's control loop in virtual time.
type Orchestrator struct {
	*loop
	sim *chainsim.Sim
}

// New attaches a control loop to a simulation. viewTemplate supplies the
// device models and catalog; the view's chain and throughput are replaced
// with live values at each decision. The simulator hosts one chain, so the
// loop's multi-chain view carries a single load.
func New(sim *chainsim.Sim, cfg Config, viewTemplate core.View) (*Orchestrator, error) {
	o := &Orchestrator{sim: sim}
	view := func() core.MultiView {
		return multiViewFrom(viewTemplate, []core.Load{{Chain: sim.Placement()}}, 0, 0, 0)
	}
	l, err := newLoop(cfg, view, o.execute)
	if err != nil {
		return nil, err
	}
	o.loop = l
	return o, nil
}

// execute models the migration downtime — one state transfer per step,
// applied as a virtual-time delay before the new placements take effect —
// and schedules the placement swap for each planned chain (the simulator
// hosts chain 0).
func (o *Orchestrator) execute(plan core.MultiPlan) (time.Duration, error) {
	var downtime time.Duration
	if o.cfg.Transport != nil {
		for range plan.Steps {
			downtime += o.cfg.Transport.TransferTime(o.cfg.StateBytes)
		}
	}
	apply := func() {
		for _, result := range plan.Results {
			if err := o.sim.SetPlacement(result); err != nil {
				o.appendEvent(Event{At: o.sim.Engine().Now(), Kind: EventSkipped, Err: err})
			}
		}
	}
	if downtime > 0 {
		o.sim.Engine().After(downtime, apply)
	} else {
		apply()
	}
	return downtime, nil
}

// Start schedules the first poll; subsequent polls self-schedule. Call
// before running the simulation.
func (o *Orchestrator) Start() {
	o.sim.Engine().After(o.cfg.PollEvery, o.poll)
}

func (o *Orchestrator) poll() {
	defer o.sim.Engine().After(o.cfg.PollEvery, o.poll)
	nicU, cpuU, dmaU, delivered := o.sim.WindowStats()
	o.observe(o.sim.Engine().Now(), telemetry.Sample{
		At:            o.sim.Engine().Now(),
		NICUtil:       nicU,
		CPUUtil:       cpuU,
		DMAUtil:       dmaU,
		DeliveredGbps: delivered,
	})
}
