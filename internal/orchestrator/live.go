package orchestrator

// The wall-clock backend: the same control loop as the DES Orchestrator,
// closed over the execution emulator. Telemetry comes from measured meter
// windows (emul.LoadSampler) summed across every hosted tenant chain,
// selection runs over a multi-chain view built from the runtime's live
// placements and the measured per-chain delivered rates (rescaled so their
// total is the detector's smoothed measured throughput), and plans execute
// as real UNO-style migrations (emul.Runtime.MigrateChain), chain by chain:
// every shard of the migrating element frozen, state snapshot transferred
// over the emulated link, queues replayed — while every other tenant keeps
// forwarding. This is the first place all layers of the repository run in
// one process.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
)

// Live drives the control loop over an execution-emulator runtime on
// wall-clock time.
type Live struct {
	*loop
	rt      *emul.Runtime
	sampler *emul.LoadSampler

	smu     sync.Mutex
	samples []emul.LoadSample
	// perChain is the last non-degenerate window's measured delivered rate
	// per hosted chain (catalog units) — the per-chain mix the selection
	// view apportions the smoothed throughput by.
	perChain []float64
	// nicUtil/cpuUtil/dmaUtil are the last window's measured *demand*
	// utilizations (Σ offered/θ per device; offered crossing load over the
	// shared engine budget for dmaUtil). They ride into the selection view
	// so the overload recheck sees the demand the shared gates could not
	// grant — delivered throughput alone goes blind during a collapse, and
	// a crossing-bound overload is invisible to the device utilizations
	// entirely.
	nicUtil, cpuUtil, dmaUtil float64

	stop chan struct{}
	done chan struct{}
}

// NewLive attaches a control loop to a started (or about-to-start) runtime.
// viewTemplate supplies the device models and catalog; the view's chains
// and throughputs are replaced at each decision with the runtime's live
// placements and the measured (smoothed) delivered rates. Config.Transport
// and Config.StateBytes are ignored: the emulator measures real snapshot
// sizes and reports real transfer times. A runtime hosting several chains
// needs Config.MultiSelector (e.g. core.MultiPAM); Config.Selector covers
// the single-chain case.
func NewLive(rt *emul.Runtime, cfg Config, viewTemplate core.View) (*Live, error) {
	o := &Live{rt: rt, sampler: emul.NewLoadSampler(rt)}
	view := func() core.MultiView {
		placements := rt.Placements()
		per := o.chainRates(len(placements))
		loads := make([]core.Load, len(placements))
		for i, c := range placements {
			loads[i] = core.Load{Chain: c, Throughput: device.MeasuredGbps(per[i])}
		}
		o.smu.Lock()
		nicU, cpuU, dmaU := o.nicUtil, o.cpuUtil, o.dmaUtil
		o.smu.Unlock()
		return multiViewFrom(viewTemplate, loads, nicU, cpuU, dmaU)
	}
	l, err := newLoop(cfg, view, o.execute)
	if err != nil {
		return nil, err
	}
	o.loop = l
	return o, nil
}

// chainRates returns the latest per-chain delivered rates, zero-filled to n.
func (o *Live) chainRates(n int) []float64 {
	out := make([]float64, n)
	o.smu.Lock()
	copy(out, o.perChain)
	o.smu.Unlock()
	return out
}

// execute applies the plan step by step via live migration, addressing each
// step to its chain. The returned downtime is the sum of measured
// state-transfer times. A failing step aborts the remainder; earlier steps
// stay applied (each is individually loss-free).
func (o *Live) execute(plan core.MultiPlan) (time.Duration, error) {
	var downtime time.Duration
	for _, st := range plan.Steps {
		rep, err := o.rt.MigrateChain(st.ChainIndex, st.Step.Element, st.Step.To)
		if err != nil {
			return downtime, fmt.Errorf("live migrate chain %d %s: %w", st.ChainIndex, st.Step.Element, err)
		}
		downtime += rep.Transfer
	}
	return downtime, nil
}

// Poll closes the current sampling window and runs one control decision on
// it. The background ticker calls it every Config.PollEvery; tests and
// single-threaded drivers (scenario.RunLiveHotspot, RunLiveMultiTenant)
// call it directly for deterministic window boundaries.
func (o *Live) Poll() {
	ls := o.sampler.Sample()
	if ls.Window < time.Millisecond {
		// Degenerate window (back-to-back catch-up polls after a stall,
		// e.g. a migration freeze): the sampler measured nothing and left
		// its cursor in place, so feeding the zero-load sample onward would
		// dilute the EWMA and reset the detector's hot streak for free.
		return
	}
	o.smu.Lock()
	o.samples = append(o.samples, ls)
	o.nicUtil, o.cpuUtil, o.dmaUtil = ls.NIC.Utilization, ls.CPU.Utilization, ls.DMA.Utilization
	if len(ls.Chains) > 0 {
		if o.perChain == nil {
			o.perChain = make([]float64, len(ls.Chains))
		}
		for i, cl := range ls.Chains {
			if i < len(o.perChain) {
				o.perChain[i] = cl.DeliveredGbps
			}
		}
	}
	o.smu.Unlock()
	o.observe(ls.At, ls.Telemetry())
}

// Samples returns a copy of every sampling window taken so far, the measured
// telemetry timeline reports render.
func (o *Live) Samples() []emul.LoadSample {
	o.smu.Lock()
	defer o.smu.Unlock()
	return append([]emul.LoadSample(nil), o.samples...)
}

// LastSample returns the most recent non-degenerate sampling window, or
// false before the first one closes. The fleet agent enriches escalation
// reports with its per-chain breakdown so the coordinator can identify the
// offending tenant.
func (o *Live) LastSample() (emul.LoadSample, bool) {
	o.smu.Lock()
	defer o.smu.Unlock()
	if len(o.samples) == 0 {
		return emul.LoadSample{}, false
	}
	return o.samples[len(o.samples)-1], true
}

// Runtime exposes the dataplane this loop controls (the fleet agent
// executes chain handoffs against it).
func (o *Live) Runtime() *emul.Runtime { return o.rt }

// NoteExternalMove is NoteExternalMove on the underlying loop stamped with
// the runtime's clock.
func (o *Live) NoteExternalMove(chainIdx int) {
	o.loop.NoteExternalMove(o.rt.Elapsed(), chainIdx)
}

// Start launches the background poller. Stop (or abandoning the runtime)
// ends it; Start after Stop restarts it.
func (o *Live) Start() {
	o.smu.Lock()
	defer o.smu.Unlock()
	if o.stop != nil {
		return
	}
	o.stop = make(chan struct{})
	o.done = make(chan struct{})
	go o.run(o.stop, o.done)
}

func (o *Live) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(o.cfg.PollEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			o.Poll()
		}
	}
}

// Stop halts the background poller and waits for it to exit. Safe to call
// when the poller was never started.
func (o *Live) Stop() {
	o.smu.Lock()
	stop, done := o.stop, o.done
	o.stop, o.done = nil, nil
	o.smu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
