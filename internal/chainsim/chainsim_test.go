package chainsim_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func figConfig(t *testing.T, c *chain.Chain) chainsim.Config {
	t.Helper()
	p := scenario.DefaultParams()
	return chainsim.Config{
		Chain:         c,
		Catalog:       device.Table1(),
		NFOverhead:    p.NFOverhead,
		Link:          pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps},
		DMAEngineGbps: float64(p.DMAEngineGbps),
		QueueCapacity: p.QueueCapacity,
		Seed:          p.Seed,
		Warmup:        10 * time.Millisecond,
	}
}

func run(t *testing.T, cfg chainsim.Config, rateGbps float64, size int, dur time.Duration, proc traffic.Process) chainsim.Result {
	t.Helper()
	s, err := chainsim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src, err := traffic.NewGen(rateGbps, traffic.FixedSize(size), proc, 16, 0, dur, cfg.Seed)
	if err != nil {
		t.Fatalf("NewGen: %v", err)
	}
	s.Inject(src)
	return s.Run(dur + 50*time.Millisecond) // drain tail
}

func TestUnloadedLatencyMatchesAnalyticalModel(t *testing.T) {
	// At negligible load there is no queueing, so the end-to-end latency of
	// the Figure-1 chain at 1024B must equal the hand computation in
	// DESIGN.md §5: device service + per-NF overhead + crossings.
	p := scenario.DefaultParams()
	cfg := figConfig(t, scenario.Figure1Chain())
	res := run(t, cfg, 0.05, 1024, 200*time.Millisecond, traffic.ProcessCBR)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	bits := 1024.0 * 8
	crossing := float64(p.PCIeLatency.Nanoseconds()) + bits/p.PCIeBandwidthGbps + bits/float64(p.DMAEngineGbps)
	service := bits/2 + bits/3.2 + bits/10 + bits/4 // Logger, Monitor, Firewall (NIC), LB (CPU) in ns at Gbps
	overhead := 4 * float64(p.NFOverhead.Nanoseconds())
	want := 2*crossing + service + overhead
	got := res.Latency.Mean
	if math.Abs(got-want) > want*0.02 {
		t.Errorf("mean latency = %.0fns, analytical %.0fns (>2%% off)", got, want)
	}
}

func TestSaturationMatchesFluidModel(t *testing.T) {
	// Offered 4 Gbps against the original Figure-1 placement: the NIC
	// saturates at 1/(0.9125 + 2/40) = 1.039 Gbps in the fluid model; the
	// DES must deliver within a few percent of that (boundary/queue effects
	// allowed) and drop the rest.
	cfg := figConfig(t, scenario.Figure1Chain())
	res := run(t, cfg, 4.0, 1024, 300*time.Millisecond, traffic.ProcessCBR)
	want := 1 / 0.9125 // DMA engines (40/2 = 20 Gbps) never bind
	if math.Abs(res.DeliveredGbps-want) > want*0.05 {
		t.Errorf("delivered = %.3f Gbps, fluid model %.3f", res.DeliveredGbps, want)
	}
	if res.Dropped == 0 {
		t.Error("overload produced no drops")
	}
	if res.NICUtil < 0.95 {
		t.Errorf("NIC util = %.3f, want ≈1 under overload", res.NICUtil)
	}
}

func TestPoliciesReproduceFigure2Ordering(t *testing.T) {
	// The three placements (Original / Naive / PAM) must reproduce the
	// paper's Figure 2 shape: latency Original ≈ PAM < Naive (≈18% gap),
	// and throughput Original < Naive ≤ PAM.
	p := scenario.DefaultParams()
	orig := scenario.Figure1Chain()
	v := scenario.View(orig, p, 1.09) // delivered at overload ≈ NIC saturation 1.096

	pamPlan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("PAM: %v", err)
	}
	naivePlan, err := core.NaiveCheapestOnCPU{}.Select(v)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}

	type outcome struct {
		lat float64
		thr float64
	}
	measure := func(c *chain.Chain) outcome {
		cfg := figConfig(t, c)
		// Latency probes use Poisson arrivals: deterministic CBR phase-locks
		// into bunching artifacts behind heterogeneous job sizes (see the
		// methodology note in EXPERIMENTS.md); throughput-at-overload is
		// insensitive to the arrival process.
		lat := run(t, cfg, p.ProbeGbps, 1024, 200*time.Millisecond, traffic.ProcessPoisson)
		thr := run(t, cfg, p.OverloadGbps, 1024, 200*time.Millisecond, traffic.ProcessCBR)
		return outcome{lat: lat.Latency.Mean, thr: thr.DeliveredGbps}
	}
	o := measure(orig)
	n := measure(naivePlan.Result)
	pm := measure(pamPlan.Result)

	if !(o.thr < n.thr && n.thr <= pm.thr+0.01) {
		t.Errorf("throughput ordering wrong: orig=%.3f naive=%.3f pam=%.3f", o.thr, n.thr, pm.thr)
	}
	gap := (n.lat - pm.lat) / n.lat
	if gap < 0.12 || gap > 0.25 {
		t.Errorf("latency gap (naive-pam)/naive = %.3f, want ≈0.18", gap)
	}
	// "The service chain latency with PAM is almost unchanged compared to
	// the latency before migration" (§3). The pre-migration chain runs
	// closer to saturation, so it carries some extra queueing delay.
	if math.Abs(o.lat-pm.lat)/o.lat > 0.10 {
		t.Errorf("PAM latency %.0f deviates >10%% from original %.0f", pm.lat, o.lat)
	}
}

func TestSetPlacementMidRun(t *testing.T) {
	// Start overloaded, migrate per PAM mid-run, and verify delivered
	// throughput in the post-migration window exceeds the pre-migration
	// window.
	p := scenario.DefaultParams()
	cfg := figConfig(t, scenario.Figure1Chain())
	cfg.SampleEvery = 10 * time.Millisecond
	cfg.Warmup = 0
	s, err := chainsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewGen(2.5, traffic.FixedSize(1024), traffic.ProcessCBR, 16, 0, 600*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(src)
	s.Run(200 * time.Millisecond)
	_, _, _, before := s.WindowStats()

	// Decide from telemetry: the measured (delivered) throughput is the
	// θcur the controller sees.
	v := scenario.View(s.Placement(), p, device.Gbps(before))
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("PAM: %v", err)
	}
	if err := s.SetPlacement(plan.Result); err != nil {
		t.Fatalf("SetPlacement: %v", err)
	}
	res := s.Run(500 * time.Millisecond)
	_, _, _, after := s.WindowStats()
	if after <= before {
		t.Errorf("throughput did not improve after migration: before=%.3f after=%.3f", before, after)
	}
	if res.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", res.Migrations)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	p := scenario.DefaultParams()
	_ = p
	if _, err := chainsim.New(chainsim.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	// A chain whose element cannot run on its device must be rejected.
	c, err := chain.New("bad",
		chain.Element{Name: "dpi", Type: device.TypeDPI, Loc: device.KindSmartNIC})
	if err != nil {
		t.Fatal(err)
	}
	cfg := figConfig(t, c) // Table1 has no DPI entry
	if _, err := chainsim.New(cfg); err == nil {
		t.Error("config with unknown capacity accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := figConfig(t, scenario.Figure1Chain())
	r1 := run(t, cfg, 1.0, 512, 100*time.Millisecond, traffic.ProcessPoisson)
	r2 := run(t, cfg, 1.0, 512, 100*time.Millisecond, traffic.ProcessPoisson)
	if r1.Delivered != r2.Delivered || r1.Latency.Mean != r2.Latency.Mean {
		t.Errorf("simulation not deterministic: %+v vs %+v", r1.Latency, r2.Latency)
	}
}
