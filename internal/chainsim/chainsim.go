// Package chainsim simulates an NFV service chain spanning the SmartNIC and
// host CPU with deterministic discrete-event precision. It is the
// measurement substrate for every figure in the reproduction: per-packet
// latency (ns resolution, no GC jitter), delivered throughput, drops, and
// device utilization, under any chain placement and offered load.
//
// Model (DESIGN.md §5):
//
//   - Each device is a FIFO queueing server with a normalized resource
//     budget; a frame of L bits visiting vNF i on device d occupies the
//     server for L/θd_i seconds, which makes aggregate device saturation
//     coincide exactly with the paper's Σ θ/θd_i = 1 condition.
//   - Each vNF visit additionally adds a fixed pipeline latency
//     (virtualization overhead) that does not occupy the server.
//   - Each PCIe crossing occupies the SmartNIC's DMA engines — separate
//     hardware from the NPU microengines, modelled as their own server —
//     for L/θ_DMA seconds, then delays the packet by the link's
//     propagation + serialization time.
//   - The pipeline holds at most QueueCapacity frames at once (the NIC's
//     packet-buffer memory); arrivals beyond that are dropped at ingress,
//     which is how overload manifests as throughput loss. Dropping at
//     admission rather than mid-pipeline means no device work is wasted on
//     doomed frames, so measured saturation coincides with the fluid model.
//
// Placement can be swapped mid-run (SetPlacement), taking effect for frames
// arriving afterwards — the orchestrator uses this to execute migration
// plans while traffic flows.
package chainsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Config parameterizes a simulation.
type Config struct {
	Chain         *chain.Chain
	Catalog       device.Catalog
	NFOverhead    time.Duration // per-vNF pipeline latency
	Link          pcie.Link
	DMAEngineGbps float64 // separate DMA-engine capacity; 0 disables the stage
	QueueCapacity int     // max frames in flight (NIC buffer); 0 = unbounded
	Seed          int64
	Warmup        time.Duration // discard latency/throughput before this
	SampleEvery   time.Duration // telemetry period; 0 disables sampling
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Chain == nil {
		return errors.New("chainsim: nil chain")
	}
	if err := c.Chain.Validate(); err != nil {
		return err
	}
	if c.Catalog == nil {
		return errors.New("chainsim: nil catalog")
	}
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.NFOverhead < 0 {
		return fmt.Errorf("chainsim: negative NF overhead %v", c.NFOverhead)
	}
	// Verify every element has a capacity on its device up front, so the
	// simulation cannot fail mid-run.
	for _, e := range c.Chain.Elems {
		if _, err := c.Catalog.Lookup(e.Type, e.Loc); err != nil {
			return fmt.Errorf("chainsim: %w", err)
		}
	}
	return nil
}

// Sim is a running chain simulation.
type Sim struct {
	cfg Config
	eng *sim.Engine
	cur *chain.Chain

	nic *sim.Server
	cpu *sim.Server
	dma *sim.Server // the SmartNIC's DMA engines, separate hardware

	latency *metrics.Histogram
	meter   *metrics.Meter

	inFlight     int
	offeredBytes uint64
	offeredPkts  uint64
	migrations   int
	ingressDrops uint64

	nicSeries *metrics.TimeSeries
	cpuSeries *metrics.TimeSeries
	dmaSeries *metrics.TimeSeries
	thrSeries *metrics.TimeSeries

	lastNICBusy time.Duration
	lastCPUBusy time.Duration
	lastDMABusy time.Duration
	lastBytes   uint64
	lastSample  time.Duration
}

// New builds a simulation. The configured chain is cloned; SetPlacement
// installs new placements later.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.New(cfg.Seed)
	s := &Sim{
		cfg:       cfg,
		eng:       eng,
		cur:       cfg.Chain.Clone(),
		nic:       sim.NewServer(eng, 0), // admission is bounded globally
		cpu:       sim.NewServer(eng, 0),
		dma:       sim.NewServer(eng, 0),
		latency:   metrics.NewHistogram(),
		meter:     metrics.NewMeter(cfg.Warmup),
		nicSeries: &metrics.TimeSeries{},
		cpuSeries: &metrics.TimeSeries{},
		dmaSeries: &metrics.TimeSeries{},
		thrSeries: &metrics.TimeSeries{},
	}
	if cfg.SampleEvery > 0 {
		eng.After(cfg.SampleEvery, s.sample)
	}
	return s, nil
}

// Engine exposes the event engine so control-plane logic (the orchestrator)
// can schedule decisions in virtual time.
func (s *Sim) Engine() *sim.Engine { return s.eng }

// Placement returns a copy of the active placement.
func (s *Sim) Placement() *chain.Chain { return s.cur.Clone() }

// SetPlacement installs a new placement for subsequently arriving frames.
// In-flight frames complete on the path they started (the UNO-style
// migration mechanism buffers and replays state; see internal/migrate).
func (s *Sim) SetPlacement(c *chain.Chain) error {
	if err := c.Validate(); err != nil {
		return err
	}
	for _, e := range c.Elems {
		if _, err := s.cfg.Catalog.Lookup(e.Type, e.Loc); err != nil {
			return fmt.Errorf("chainsim: %w", err)
		}
	}
	s.cur = c.Clone()
	s.migrations++
	return nil
}

// Inject schedules a traffic source's arrivals. Arrivals are pulled lazily,
// one event ahead, so even unbounded sources cost O(1) queued events.
func (s *Sim) Inject(src traffic.Source) {
	a, ok := src.Next()
	if !ok {
		return
	}
	s.scheduleArrival(src, a)
}

func (s *Sim) scheduleArrival(src traffic.Source, a traffic.Arrival) {
	at := a.At
	if at < s.eng.Now() {
		at = s.eng.Now()
	}
	s.eng.At(at, func() {
		s.admit(a)
		if next, ok := src.Next(); ok {
			s.scheduleArrival(src, next)
		}
	})
}

// admit starts one frame's journey along the current placement, or drops it
// at ingress when the pipeline is full.
func (s *Sim) admit(a traffic.Arrival) {
	s.offeredPkts++
	s.offeredBytes += uint64(a.Size)
	if s.cfg.QueueCapacity > 0 && s.inFlight >= s.cfg.QueueCapacity {
		s.ingressDrops++
		if s.eng.Now() >= s.cfg.Warmup {
			s.meter.Drop(s.eng.Now())
		}
		return
	}
	s.inFlight++
	p := &journey{
		sim:     s,
		placed:  s.cur, // snapshot: SetPlacement replaces s.cur wholesale
		arrived: s.eng.Now(),
		size:    a.Size,
		path:    s.buildPath(),
	}
	p.step(0)
}

// hop is one stage of a frame's path: either a visit to the device hosting
// a contiguous run of vNFs (positions [start, end] of the placement the
// frame was admitted under) or a PCIe crossing.
type hop struct {
	kind       hopKind
	side       device.Kind
	start, end int
}

type hopKind uint8

const (
	hopDevice hopKind = iota
	hopCrossing
)

// buildPath compiles the current placement into hops. Consecutive vNFs on
// one device collapse into a single server visit whose occupancy is the sum
// of per-vNF service times, matching the fluid model exactly.
func (s *Sim) buildPath() []hop {
	segs := s.cur.Segments()
	hops := make([]hop, 0, 2*len(segs)+2)
	side := device.KindSmartNIC // ingress
	for _, seg := range segs {
		segSide := seg.Side
		if segSide == device.KindFPGA {
			segSide = device.KindSmartNIC
		}
		if segSide != side {
			hops = append(hops, hop{kind: hopCrossing})
			side = segSide
		}
		hops = append(hops, hop{kind: hopDevice, side: segSide, start: seg.Start, end: seg.End})
	}
	if side != device.KindSmartNIC {
		hops = append(hops, hop{kind: hopCrossing})
	}
	return hops
}

func (s *Sim) serverFor(k device.Kind) *sim.Server {
	if k == device.KindCPU {
		return s.cpu
	}
	return s.nic // FPGA shares the NIC-side budget in this model
}

// journey walks one frame through its hops against the placement snapshot
// captured at admission, so mid-run SetPlacement never corrupts in-flight
// frames.
type journey struct {
	sim     *Sim
	placed  *chain.Chain
	arrived time.Duration
	size    int
	path    []hop
}

func (j *journey) step(i int) {
	s := j.sim
	if i >= len(j.path) {
		// Egress: release the buffer slot and record the outcome if past
		// warmup. Filtering on exit time (not arrival) keeps the delivery
		// meter free of the queue-fill dead window under overload.
		s.inFlight--
		if now := s.eng.Now(); now >= s.cfg.Warmup {
			s.latency.Record(int64(now - j.arrived))
			s.meter.Observe(j.size, now)
		}
		return
	}
	h := j.path[i]
	switch h.kind {
	case hopDevice:
		service, overhead := j.segmentCost(h.start, h.end)
		s.serverFor(h.side).Submit(service, func(_, _ time.Duration) {
			s.eng.After(overhead, func() { j.step(i + 1) })
		})
	case hopCrossing:
		wire := s.cfg.Link.CrossingTime(j.size)
		if s.cfg.DMAEngineGbps > 0 {
			svc := gbpsService(j.size, s.cfg.DMAEngineGbps)
			s.dma.Submit(svc, func(_, _ time.Duration) {
				s.eng.After(wire, func() { j.step(i + 1) })
			})
		} else {
			s.eng.After(wire, func() { j.step(i + 1) })
		}
	}
}

// segmentCost computes the server occupancy and pipeline latency for the
// chain elements in positions [start, end] of the placement snapshot the
// frame was admitted under.
func (j *journey) segmentCost(start, end int) (service, overhead time.Duration) {
	s := j.sim
	for i := start; i <= end && i < j.placed.Len(); i++ {
		e := j.placed.At(i)
		g, err := s.cfg.Catalog.Lookup(e.Type, e.Loc)
		if err != nil {
			// Validated at SetPlacement; cannot happen mid-run.
			continue
		}
		service += gbpsService(j.size, g.Float())
		overhead += s.cfg.NFOverhead
	}
	return service, overhead
}

// gbpsService converts a frame size and a Gbps rate into occupancy time.
func gbpsService(sizeBytes int, gbps float64) time.Duration {
	if gbps <= 0 {
		return 0
	}
	sec := float64(sizeBytes) * 8 / (gbps * 1e9)
	return time.Duration(sec * float64(time.Second))
}

// sample appends one telemetry window to the series.
func (s *Sim) sample() {
	now := s.eng.Now()
	win := now - s.lastSample
	if win > 0 {
		nicBusy := s.nic.BusyTime()
		cpuBusy := s.cpu.BusyTime()
		dmaBusy := s.dma.BusyTime()
		s.nicSeries.Append(now, float64(nicBusy-s.lastNICBusy)/float64(win))
		s.cpuSeries.Append(now, float64(cpuBusy-s.lastCPUBusy)/float64(win))
		s.dmaSeries.Append(now, float64(dmaBusy-s.lastDMABusy)/float64(win))
		bytes := s.meter.Bytes()
		s.thrSeries.Append(now, float64(bytes-s.lastBytes)*8/win.Seconds()/1e9)
		s.lastNICBusy, s.lastCPUBusy, s.lastDMABusy, s.lastBytes = nicBusy, cpuBusy, dmaBusy, bytes
	}
	s.lastSample = now
	s.eng.After(s.cfg.SampleEvery, s.sample)
}

// WindowStats returns utilization and delivered throughput over the last
// completed telemetry window (or zeros when sampling is disabled). It is
// the load signal the orchestrator's poller consumes. dmaUtil is the DMA
// engines' busy fraction — zero when the DMA stage is disabled — so the
// virtual-time detector sees the same three-resource signal as the
// emulator's demand sampler.
func (s *Sim) WindowStats() (nicUtil, cpuUtil, dmaUtil, deliveredGbps float64) {
	if p, ok := s.nicSeries.Last(); ok {
		nicUtil = p.V
	}
	if p, ok := s.cpuSeries.Last(); ok {
		cpuUtil = p.V
	}
	if p, ok := s.dmaSeries.Last(); ok {
		dmaUtil = p.V
	}
	if p, ok := s.thrSeries.Last(); ok {
		deliveredGbps = p.V
	}
	return nicUtil, cpuUtil, dmaUtil, deliveredGbps
}

// Result summarizes a finished run.
type Result struct {
	Latency       metrics.Summary
	Hist          *metrics.Histogram
	OfferedPkts   uint64
	Delivered     uint64
	Dropped       uint64 // ingress (NIC buffer) drops past warmup
	OfferedGbps   float64
	DeliveredGbps float64
	LossRate      float64
	NICUtil       float64
	CPUUtil       float64
	Migrations    int
	Duration      time.Duration
	NICSeries     []metrics.Point
	CPUSeries     []metrics.Point
	DMASeries     []metrics.Point
	ThrSeries     []metrics.Point
}

// Run advances the simulation to the given virtual time and summarizes it.
// It may be called repeatedly with increasing horizons.
func (s *Sim) Run(until time.Duration) Result {
	s.eng.Run(until)
	el := s.eng.Now()
	meas := el - s.cfg.Warmup
	var offered float64
	if el > 0 {
		offered = float64(s.offeredBytes) * 8 / el.Seconds() / 1e9
	}
	// The delivery window ends at the last observed egress, so a drain
	// period after the source stops does not dilute the measured rate; the
	// same window bounds utilization for consistency.
	res := Result{
		Latency:       s.latency.Snapshot(),
		Hist:          s.latency,
		OfferedPkts:   s.offeredPkts,
		Delivered:     s.meter.Packets(),
		Dropped:       s.meter.Drops(),
		OfferedGbps:   offered,
		DeliveredGbps: s.meter.Gbps(),
		LossRate:      s.meter.LossRate(),
		NICUtil:       s.nic.Utilization(minDur(el, s.cfg.Warmup+s.meter.Elapsed())),
		CPUUtil:       s.cpu.Utilization(minDur(el, s.cfg.Warmup+s.meter.Elapsed())),
		Migrations:    s.migrations,
		Duration:      el,
		NICSeries:     s.nicSeries.Points(),
		CPUSeries:     s.cpuSeries.Points(),
		DMASeries:     s.dmaSeries.Points(),
		ThrSeries:     s.thrSeries.Points(),
	}
	_ = meas
	return res
}

func minDur(a, b time.Duration) time.Duration {
	if b > 0 && b < a {
		return b
	}
	return a
}
