package experiments_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// quickParams shrinks the sweep so experiment tests stay fast while
// exercising the full code path.
func quickParams() scenario.Params {
	p := scenario.DefaultParams()
	p.PacketSizes = []int{1024}
	return p
}

func TestPlacementsMatchFigure1(t *testing.T) {
	p := quickParams()
	orig, naive, pam, err := experiments.Placements(p)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Crossings() != 2 || naive.Crossings() != 4 || pam.Crossings() != 2 {
		t.Errorf("crossings = %d/%d/%d, want 2/4/2",
			orig.Crossings(), naive.Crossings(), pam.Crossings())
	}
	if naive.At(naive.Index(scenario.NameMonitor)).Loc != device.KindCPU {
		t.Error("naive did not migrate the Monitor (Figure 1(b))")
	}
	if pam.At(pam.Index(scenario.NameLogger)).Loc != device.KindCPU {
		t.Error("PAM did not migrate the Logger (Figure 1(c))")
	}
}

func TestSweepReproducesPaperShape(t *testing.T) {
	p := quickParams()
	outs, err := experiments.SweepPolicies(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	var orig, naive, pam experiments.PolicyOutcome
	for _, o := range outs {
		switch o.Name {
		case "Original":
			orig = o
		case "Naive":
			naive = o
		case "PAM":
			pam = o
		}
	}
	// Figure 2(a): Original ≈ PAM < Naive, gap ≈ 18%.
	gap := (naive.AvgLatency - pam.AvgLatency) / naive.AvgLatency
	if gap < 0.12 || gap > 0.25 {
		t.Errorf("latency gap = %.3f, want ≈0.18", gap)
	}
	// Figure 2(b): Original < Naive ≤ PAM.
	if !(orig.AvgThrough < naive.AvgThrough && naive.AvgThrough <= pam.AvgThrough+0.02) {
		t.Errorf("throughput ordering: %.2f / %.2f / %.2f",
			orig.AvgThrough, naive.AvgThrough, pam.AvgThrough)
	}
}

func TestTable1MeasurementsMatchCatalog(t *testing.T) {
	a, err := experiments.Table1(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Table.Rows))
	}
	// Spot-check the Logger row: θS 2.0 measured within 10%.
	for _, row := range a.Table.Rows {
		if row[0] != device.TypeLogger {
			continue
		}
		meas, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		if meas < 1.8 || meas > 2.2 {
			t.Errorf("Logger θS measured %.2f, want ≈2.0", meas)
		}
	}
	if !strings.Contains(a.Render(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestFigure1ArtifactNarrative(t *testing.T) {
	a, err := experiments.Figure1(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	r := a.Render()
	for _, want := range []string{"(a) original", "(b) naive", "(c) PAM", "logger0", "fw0"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPCIeMicrobenchArtifact(t *testing.T) {
	a := experiments.PCIeMicrobench(quickParams())
	if len(a.Table.Rows) != 1 { // one packet size in quickParams
		t.Fatalf("rows = %d", len(a.Table.Rows))
	}
}

func TestFPGAProfileSwapsColumn(t *testing.T) {
	cat := experiments.FPGAProfile(device.Table1())
	if cat[device.TypeMonitor].SmartNIC != device.Table1()[device.TypeMonitor].FPGA {
		t.Error("FPGA profile did not replace the SmartNIC column")
	}
}

func TestMultiStepSlides(t *testing.T) {
	a, err := experiments.MultiStep(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) < 2 {
		t.Fatalf("steps = %d, want ≥2 (sliding border)", len(a.Table.Rows))
	}
	for _, row := range a.Table.Rows {
		if row[2] != "2" {
			t.Errorf("crossings drifted: %v", row)
		}
	}
}

func TestHeadlineGapNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	start := time.Now()
	_, gap, err := experiments.Headline(scenario.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("headline gap %.3f in %v", gap, time.Since(start))
	if gap < 0.15 || gap > 0.21 {
		t.Errorf("headline gap = %.1f%%, want ≈18%%", gap*100)
	}
}
