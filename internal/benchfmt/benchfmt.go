// Package benchfmt is the shared vocabulary of the perf-trajectory
// tooling: the parsed form of `go test -bench` output (one Entry per
// benchmark line, a Report per run) and the parser that extracts it.
// cmd/benchjson serializes Reports into the BENCH.json artifact CI
// uploads every run; cmd/benchdiff compares a fresh Report against the
// checked-in baseline and fails the build on regression.
package benchfmt

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Key identifies the benchmark across runs: the package-qualified name,
// falling back to the bare name for pre-Pkg artifacts.
func (e Entry) Key() string {
	if e.Pkg == "" {
		return e.Name
	}
	return e.Pkg + "." + e.Name
}

// Report is the artifact's top-level shape.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLineRE matches "BenchmarkName-8   	 123	 456 ns/op	 7.8 unit ...".
var benchLineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// Parse reads `go test -bench` output and extracts every benchmark entry,
// attributing each to the most recent `pkg:` preamble line (the form `go
// test` emits once per package in a multi-package run). Each entry carries
// the benchmark's name (GOMAXPROCS suffix stripped), its iteration count,
// and a metrics map keyed by unit (ns/op, B/op, allocs/op with -benchmem,
// plus any custom b.ReportMetric units). Non-bench lines (the goos/goarch
// preamble, PASS, logs) are ignored.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		m := benchLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The tail alternates value/unit pairs: "123 ns/op 0.5 fairness".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a metric tail (e.g. a stray log line)
			}
			e.Metrics[fields[i+1]] = v
		}
		if len(e.Metrics) == 0 {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return rep, sc.Err()
}
