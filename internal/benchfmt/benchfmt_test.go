package benchfmt_test

import (
	"repro/internal/benchfmt"

	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDataplane/batch=8-8         	  100000	     10523 ns/op	 95012 frames/s	     144 B/op	       2 allocs/op
BenchmarkPCIeDMAContention/chains=4-8 	       1	 363770313 ns/op	         2.041 agg_Gbps	         4.083 crossing_Gbps	         0.857 fairness
BenchmarkSharedDeviceContention/elems=16-8 	       1	 201000000 ns/op	         3.1 agg_Gbps	         0.92 fairness
PASS
ok  	repro	1.425s
`

// Output of a -benchmem smoke run spanning two packages: the same pkg:
// preamble appears once per package, and every line carries the B/op and
// allocs/op columns.
const multiPkgBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkDataplane/batch=8-8         	  100000	     10523 ns/op	 95012 frames/s	     144 B/op	       2 allocs/op
PASS
ok  	repro	1.425s
goos: linux
goarch: amd64
pkg: repro/internal/emul
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkGateContention/workers=16-8 	138253726	        18.09 ns/op	  55283255 frames/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/emul	12.597s
`

func TestParseExtractsMetrics(t *testing.T) {
	rep, err := benchfmt.Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3\n%+v", len(rep.Benchmarks), rep)
	}
	dp := rep.Benchmarks[0]
	if dp.Name != "BenchmarkDataplane/batch=8" {
		t.Errorf("name = %q; the GOMAXPROCS suffix must be stripped", dp.Name)
	}
	if dp.Iterations != 100000 {
		t.Errorf("iterations = %d, want 100000", dp.Iterations)
	}
	if dp.Metrics["frames/s"] != 95012 || dp.Metrics["allocs/op"] != 2 {
		t.Errorf("dataplane metrics = %v", dp.Metrics)
	}
	dma := rep.Benchmarks[1]
	if dma.Metrics["crossing_Gbps"] != 4.083 || dma.Metrics["fairness"] != 0.857 {
		t.Errorf("dma metrics = %v", dma.Metrics)
	}
	if _, ok := rep.Benchmarks[2].Metrics["agg_Gbps"]; !ok {
		t.Errorf("shared-device metrics = %v", rep.Benchmarks[2].Metrics)
	}
}

// TestParseTracksPackageContext feeds a two-package -benchmem run through
// Parse: each entry must carry the package it ran in (so same-named
// benchmarks in different packages cannot alias in a baseline diff), Key()
// must qualify the name with it, and the -benchmem columns (B/op,
// allocs/op) must come through as metrics — zeros included, since a
// zero-alloc hot path is exactly the value a ratchet wants to guard.
func TestParseTracksPackageContext(t *testing.T) {
	rep, err := benchfmt.Parse(strings.NewReader(multiPkgBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2\n%+v", len(rep.Benchmarks), rep)
	}
	dp, gate := rep.Benchmarks[0], rep.Benchmarks[1]
	if dp.Pkg != "repro" || gate.Pkg != "repro/internal/emul" {
		t.Errorf("pkg attribution = %q / %q", dp.Pkg, gate.Pkg)
	}
	if got := gate.Key(); got != "repro/internal/emul.BenchmarkGateContention/workers=16" {
		t.Errorf("key = %q", got)
	}
	if gate.Metrics["frames/s"] != 55283255 {
		t.Errorf("gate metrics = %v", gate.Metrics)
	}
	for _, unit := range []string{"B/op", "allocs/op"} {
		if v, ok := gate.Metrics[unit]; !ok || v != 0 {
			t.Errorf("%s = %v (present=%v), want an explicit 0", unit, v, ok)
		}
	}
	if dp.Metrics["allocs/op"] != 2 || dp.Metrics["B/op"] != 144 {
		t.Errorf("-benchmem columns lost: %v", dp.Metrics)
	}
	// A bare-name entry (old artifact without pkg) keys by name alone.
	if got := (benchfmt.Entry{Name: "BenchmarkX"}).Key(); got != "BenchmarkX" {
		t.Errorf("bare key = %q", got)
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	rep, err := benchfmt.Parse(strings.NewReader("PASS\nok  \trepro\t1.2s\nrandom log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}
