package migrate_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/migrate"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/pcie"
)

func TestMoveTransfersState(t *testing.T) {
	src := nf.NewMonitor("mon", 0, 0)
	// Put some state into the source.
	d := packet.NewDecoder()
	b := packet.NewBuilder()
	fr := b.BuildUDP4(packet.Ethernet{Type: packet.EtherTypeIPv4},
		packet.IPv4{Version: 4, TTL: 64, Src: packet.IPv4Addr{1, 1, 1, 1}, Dst: packet.IPv4Addr{2, 2, 2, 2}},
		packet.UDP{SrcPort: 1, DstPort: 2}, nil)
	d.Decode(fr)
	k, _ := flow.FromDecoder(d)
	ctx := &nf.Ctx{Frame: fr, Decoder: d, FlowKey: k, HasFlow: true}
	src.Process(ctx)

	dst := nf.NewMonitor("mon", 0, 0)
	rep, err := migrate.Move(src, dst, migrate.PCIeTransport{Link: pcie.DefaultLink(), Setup: time.Millisecond})
	if err != nil {
		t.Fatalf("Move: %v", err)
	}
	if rep.StateBytes == 0 {
		t.Error("no state transferred")
	}
	if rep.Transfer < time.Millisecond {
		t.Errorf("transfer = %v, want ≥ setup", rep.Transfer)
	}
	if dst.FlowCount() != 1 {
		t.Errorf("destination flows = %d", dst.FlowCount())
	}
}

func TestMoveTypeMismatch(t *testing.T) {
	a := nf.NewMonitor("x", 0, 0)
	c := nf.NewLogger("x", 8)
	if _, err := migrate.Move(a, c, migrate.PCIeTransport{}); !errors.Is(err, migrate.ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
}

func TestPCIeTransportCost(t *testing.T) {
	tr := migrate.PCIeTransport{
		Link:  pcie.Link{PropDelay: 40 * time.Microsecond, BandwidthGbps: 64},
		Setup: time.Millisecond,
	}
	small := tr.TransferTime(64)
	big := tr.TransferTime(10 << 20)
	if small >= big {
		t.Errorf("transfer not monotone: %v vs %v", small, big)
	}
	if small < time.Millisecond {
		t.Errorf("transfer %v below setup cost", small)
	}
}

func TestBufferHoldReplayOrder(t *testing.T) {
	b := migrate.NewBuffer(8)
	for i := 0; i < 5; i++ {
		if err := b.Hold([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	var got []byte
	n, err := b.Replay(func(f []byte) error {
		got = append(got, f[0])
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("replay n=%d err=%v", n, err)
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("replay out of order: %v", got)
		}
	}
	if b.Len() != 0 {
		t.Error("buffer not drained")
	}
}

func TestBufferOverflow(t *testing.T) {
	b := migrate.NewBuffer(2)
	b.Hold([]byte{1})
	b.Hold([]byte{2})
	if err := b.Hold([]byte{3}); !errors.Is(err, migrate.ErrBufferOverflow) {
		t.Fatalf("err = %v, want overflow", err)
	}
	if b.Overflow() != 1 {
		t.Errorf("overflow = %d", b.Overflow())
	}
}

func TestBufferCopiesFrames(t *testing.T) {
	b := migrate.NewBuffer(2)
	frame := []byte{42}
	b.Hold(frame)
	frame[0] = 99 // caller mutates after Hold
	b.Replay(func(f []byte) error {
		if f[0] != 42 {
			t.Errorf("buffer aliased caller memory: %d", f[0])
		}
		return nil
	})
}

func TestBufferReplayError(t *testing.T) {
	b := migrate.NewBuffer(4)
	b.Hold([]byte{1})
	b.Hold([]byte{2})
	fail := errors.New("downstream full")
	n, err := b.Replay(func(f []byte) error {
		if f[0] == 2 {
			return fail
		}
		return nil
	})
	if n != 1 || !errors.Is(err, fail) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if b.Len() != 1 {
		t.Errorf("len = %d, remaining frame must stay held", b.Len())
	}
}

// End-to-end: every catalog NF type migrates loss-free with state intact.
func TestMoveAllTypes(t *testing.T) {
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeLoadBalancer, device.TypeNAT, device.TypeDPI,
		device.TypeRateLimiter, device.TypeIDS,
	}
	tr := migrate.PCIeTransport{Link: pcie.DefaultLink()}
	for _, typ := range types {
		src, err := nf.New("a", typ)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := nf.New("a", typ)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := migrate.Move(src, dst, tr)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if rep.Stateless {
			t.Errorf("%s reported stateless; all catalog NFs carry state", typ)
		}
	}
}
