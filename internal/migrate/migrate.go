// Package migrate implements the vNF migration mechanism PAM assumes — the
// paper adopts "the NF migration mechanism between SmartNIC and CPU
// introduced in [4] (UNO)", which is itself an OpenNF-style loss-free move:
//
//  1. Freeze — the source instance stops accepting packets; arrivals are
//     buffered.
//  2. Snapshot — the source's dynamic state is serialized (nf.Stateful).
//  3. Transfer — the snapshot crosses the PCIe link (cost modelled from its
//     size and the link parameters).
//  4. Restore — a destination instance of the same type installs the state.
//  5. Replay — buffered packets are re-injected at the destination, then
//     live traffic resumes.
//
// The package provides the state mover, the transfer-cost model and the
// freeze buffer; the execution emulator and the orchestrator drive them.
package migrate

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/nf"
	"repro/internal/pcie"
)

// Errors.
var (
	// ErrTypeMismatch reports source/destination of different catalog types.
	ErrTypeMismatch = errors.New("migrate: source and destination types differ")
	// ErrBufferOverflow reports freeze-buffer exhaustion (packets lost).
	ErrBufferOverflow = errors.New("migrate: freeze buffer overflow")
)

// Transport models the cost of moving a state snapshot between devices.
type Transport interface {
	// TransferTime returns how long moving n bytes takes.
	TransferTime(n int) time.Duration
}

// PCIeTransport moves snapshots across the NIC↔CPU PCIe link, paying the
// link's propagation latency once per direction plus serialization at the
// link bandwidth, and a fixed control-plane setup cost (UNO reports
// millisecond-scale moves).
type PCIeTransport struct {
	Link  pcie.Link
	Setup time.Duration // control-plane handshake; defaults to 1 ms if negative is clamped to 0
}

// TransferTime implements Transport.
func (t PCIeTransport) TransferTime(n int) time.Duration {
	d := t.Setup
	if d < 0 {
		d = 0
	}
	return d + t.Link.PropDelay + t.Link.SerializationTime(n)
}

// Report describes one completed migration.
type Report struct {
	Element    string
	StateBytes int
	Transfer   time.Duration // snapshot transfer time (downtime component)
	Buffered   int           // packets buffered during the freeze
	Replayed   int           // packets replayed at the destination
	Stateless  bool          // true when the NF carries no migratable state
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("migrated %s: state=%dB transfer=%v buffered=%d replayed=%d",
		r.Element, r.StateBytes, r.Transfer, r.Buffered, r.Replayed)
}

// Move transfers dynamic state from src to dst (same catalog type). When the
// type is stateless (does not implement nf.Stateful) the move is just the
// control-plane handshake. The returned report carries the modelled transfer
// time; the caller (emulator/orchestrator) applies it as downtime.
func Move(src, dst nf.NF, tr Transport) (Report, error) {
	if src.Type() != dst.Type() {
		return Report{}, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, src.Type(), dst.Type())
	}
	rep := Report{Element: src.Name()}
	ssrc, okS := src.(nf.Stateful)
	sdst, okD := dst.(nf.Stateful)
	if !okS || !okD {
		rep.Stateless = true
		rep.Transfer = tr.TransferTime(0)
		return rep, nil
	}
	blob, err := ssrc.Snapshot()
	if err != nil {
		return Report{}, fmt.Errorf("migrate %s: %w", src.Name(), err)
	}
	rep.StateBytes = len(blob)
	rep.Transfer = tr.TransferTime(len(blob))
	if err := sdst.Restore(blob); err != nil {
		return Report{}, fmt.Errorf("migrate %s: %w", src.Name(), err)
	}
	return rep, nil
}

// Buffer is the freeze buffer: it holds frames arriving while the NF is
// frozen and replays them in order at the destination. Bounded; overflow is
// reported so the caller can count losses.
type Buffer struct {
	frames   [][]byte
	cap      int
	overflow int
}

// NewBuffer creates a freeze buffer holding up to capacity frames (min 1).
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{cap: capacity}
}

// Hold copies and stores a frame, returning ErrBufferOverflow when full.
func (b *Buffer) Hold(frame []byte) error {
	if len(b.frames) >= b.cap {
		b.overflow++
		return ErrBufferOverflow
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	b.frames = append(b.frames, cp)
	return nil
}

// Len returns the number of held frames.
func (b *Buffer) Len() int { return len(b.frames) }

// Overflow returns how many frames were rejected.
func (b *Buffer) Overflow() int { return b.overflow }

// Replay hands each held frame to deliver in arrival order and empties the
// buffer. Delivery errors abort and leave the remaining frames held.
func (b *Buffer) Replay(deliver func(frame []byte) error) (int, error) {
	n := 0
	for len(b.frames) > 0 {
		f := b.frames[0]
		if err := deliver(f); err != nil {
			return n, err
		}
		b.frames = b.frames[1:]
		n++
	}
	return n, nil
}
