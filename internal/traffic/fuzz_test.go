package traffic

// Fuzzes the composition invariants of the workload engine: any Merge of
// Gen/Ramp sources bounded by Take must preserve the Source contract
// (non-decreasing arrival times), deliver the offered bytes its CBR
// components imply, and be bit-identical under identical seeds.

import (
	"testing"
	"time"
)

func collectAll(src Source) []Arrival {
	var out []Arrival
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// buildComposite assembles Take(Merge(Gen CBR, Ramp), n) from fuzzed knobs.
func buildComposite(t *testing.T, rateA, rateB float64, size int, seed int64, n int) Source {
	t.Helper()
	genSrc, err := NewGen(rateA, FixedSize(size), ProcessCBR, 4, 0, 80*time.Millisecond, seed)
	if err != nil {
		t.Fatalf("NewGen(%v): %v", rateA, err)
	}
	rampSrc, err := NewRamp([]Phase{
		{RateGbps: rateB, Duration: 50 * time.Millisecond},
		{RateGbps: rateB * 2, Duration: 50 * time.Millisecond},
	}, FixedSize(size), ProcessCBR, 4, seed+1)
	if err != nil {
		t.Fatalf("NewRamp(%v): %v", rateB, err)
	}
	return &Take{Src: NewMerge(genSrc, rampSrc), N: n}
}

func FuzzSourceComposition(f *testing.F) {
	f.Add(0.001, 0.002, 256, int64(1), 100)
	f.Add(0.0005, 0.01, 64, int64(42), 50)
	f.Add(0.02, 0.0001, 1500, int64(-7), 300)
	f.Add(0.003, 0.003, 512, int64(0), 1)
	f.Fuzz(func(t *testing.T, rateA, rateB float64, size int, seed int64, n int) {
		// Clamp the fuzzed knobs into the constructors' valid domain — the
		// invariants must hold across all of it.
		if rateA < 1e-6 || rateA > 0.1 || rateB < 1e-6 || rateB > 0.1 {
			t.Skip()
		}
		if size < 64 || size > 1500 {
			t.Skip()
		}
		if n < 1 || n > 2000 {
			t.Skip()
		}

		got := collectAll(buildComposite(t, rateA, rateB, size, seed, n))
		if len(got) > n {
			t.Fatalf("Take(%d) yielded %d arrivals", n, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].At < got[i-1].At {
				t.Fatalf("arrival %d regressed: %v after %v", i, got[i].At, got[i-1].At)
			}
		}
		for i, a := range got {
			if a.Size != size {
				t.Fatalf("arrival %d size %d, want %d", i, a.Size, size)
			}
		}

		// Identical seeds and knobs reproduce the identical stream.
		again := collectAll(buildComposite(t, rateA, rateB, size, seed, n))
		if len(again) != len(got) {
			t.Fatalf("same seed, different lengths: %d vs %d", len(got), len(again))
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("same seed, arrival %d differs: %+v vs %+v", i, got[i], again[i])
			}
		}

		// The unbounded Gen component alone must offer bytes at its CBR rate:
		// over k arrivals the span is exactly (k-1) gaps within one gap of
		// rounding, so measured rate stays within 1% once a few frames exist.
		solo, err := NewGen(rateA, FixedSize(size), ProcessCBR, 4, 0, time.Hour, seed)
		if err != nil {
			t.Fatal(err)
		}
		probe := collectAll(&Take{Src: solo, N: 64})
		if len(probe) >= 8 {
			span := probe[len(probe)-1].At - probe[0].At
			if span > 0 {
				bits := float64((len(probe) - 1) * size * 8)
				rate := bits / span.Seconds() / 1e9
				if diff := (rate - rateA) / rateA; diff > 0.01 || diff < -0.01 {
					t.Fatalf("CBR offered rate %.6f Gbps, want %.6f (±1%%)", rate, rateA)
				}
			}
		}
	})
}
