package traffic

// Replay wires internal/pcap into the workload engine: a captured trace
// becomes a Source, so recorded traffic drives the same scenarios as the
// synthetic generators. Timestamps are normalized to the first packet,
// sizes are wire (original) lengths, and flows are the RSS-style FlowHash
// of the captured bytes — so a replayed capture shards across dataplane
// workers exactly as live traffic with the same 5-tuples would.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
)

// Replay adapts a pcap capture into an arrival Source. Speed rescales the
// capture's time axis: 2.0 replays twice as fast (half the gaps, double the
// offered rate), 0.5 at half speed. Records are sorted by timestamp so the
// Source contract (non-decreasing arrival times) holds even for captures
// merged from several interfaces.
type Replay struct {
	pkts  []pcap.Packet
	first time.Duration
	speed float64
	idx   int
}

// NewReplay reads a whole capture from r and replays it at the given speed
// (0 defaults to 1: the capture's native pacing).
func NewReplay(r io.Reader, speed float64) (*Replay, error) {
	pkts, err := pcap.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return NewReplayPackets(pkts, speed)
}

// NewReplayPackets wraps already-decoded records.
func NewReplayPackets(pkts []pcap.Packet, speed float64) (*Replay, error) {
	if speed == 0 {
		speed = 1
	}
	if speed < 0 {
		return nil, fmt.Errorf("traffic: negative replay speed %v", speed)
	}
	cp := make([]pcap.Packet, len(pkts))
	copy(cp, pkts)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Time < cp[j].Time })
	rp := &Replay{pkts: cp, speed: speed}
	if len(cp) > 0 {
		rp.first = cp[0].Time
	}
	return rp, nil
}

// NewReplayRate reads a capture and rescales its replay speed so the mean
// offered rate over the capture's span equals targetGbps — pacing and
// burst structure are preserved, only the time axis stretches.
func NewReplayRate(r io.Reader, targetGbps float64) (*Replay, error) {
	if targetGbps <= 0 {
		return nil, fmt.Errorf("traffic: non-positive replay target rate %v", targetGbps)
	}
	rp, err := NewReplay(r, 1)
	if err != nil {
		return nil, err
	}
	native := rp.OfferedGbps()
	if native <= 0 {
		return nil, fmt.Errorf("traffic: capture has no measurable rate (%d packets)", len(rp.pkts))
	}
	rp.speed = targetGbps / native
	return rp, nil
}

// OfferedGbps returns the capture's mean offered rate at the configured
// replay speed (wire bytes over the replayed span), or 0 when the capture
// spans no time.
func (r *Replay) OfferedGbps() float64 {
	if len(r.pkts) == 0 {
		return 0
	}
	span := r.pkts[len(r.pkts)-1].Time - r.first
	if span <= 0 {
		return 0
	}
	var bytes float64
	for _, p := range r.pkts {
		bytes += float64(r.wireLen(p))
	}
	return bytes * 8 / (float64(span) / float64(time.Second)) / 1e9 * r.speed
}

// Len returns the number of records in the capture.
func (r *Replay) Len() int { return len(r.pkts) }

func (r *Replay) wireLen(p pcap.Packet) int {
	if p.OrigLen > 0 {
		return p.OrigLen
	}
	return len(p.Data)
}

// Next implements Source.
func (r *Replay) Next() (Arrival, bool) {
	if r.idx >= len(r.pkts) {
		return Arrival{}, false
	}
	p := r.pkts[r.idx]
	r.idx++
	return Arrival{
		At:   time.Duration(float64(p.Time-r.first) / r.speed),
		Size: r.wireLen(p),
		Flow: packet.FlowHash(p.Data),
	}, true
}
