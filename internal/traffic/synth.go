package traffic

import (
	"math/rand"

	"repro/internal/packet"
)

// Synth fabricates real serialized frames for the execution emulator and NF
// tests: a fixed population of synthetic UDP/TCP flows with stable 5-tuples,
// from which frames of any requested wire size can be minted.
type Synth struct {
	flows []flowTemplate
	bld   *packet.Builder
	rng   *rand.Rand
}

type flowTemplate struct {
	eth    packet.Ethernet
	ip     packet.IPv4
	udp    packet.UDP
	tcp    packet.TCP
	useTCP bool
}

// NewSynth creates a synthesizer with n flows (n ≥ 1) drawn deterministically
// from seed. Flows alternate UDP and TCP.
func NewSynth(n int, seed int64) *Synth {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Synth{
		flows: make([]flowTemplate, n),
		bld:   packet.NewBuilder(),
		rng:   rng,
	}
	for i := range s.flows {
		var t flowTemplate
		t.eth.Src = randMAC(rng)
		t.eth.Dst = randMAC(rng)
		t.ip.Version = 4
		t.ip.TTL = 64
		t.ip.Src = packet.IPv4Addr{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}
		t.ip.Dst = packet.IPv4Addr{192, 168, byte(rng.Intn(256)), byte(1 + rng.Intn(254))}
		sport := uint16(1024 + rng.Intn(64000))
		dport := wellKnownPorts[rng.Intn(len(wellKnownPorts))]
		t.useTCP = i%2 == 1
		if t.useTCP {
			t.tcp.SrcPort, t.tcp.DstPort = sport, dport
			t.tcp.Flags = packet.TCPAck
			t.tcp.Window = 65535
		} else {
			t.udp.SrcPort, t.udp.DstPort = sport, dport
		}
		s.flows[i] = t
	}
	return s
}

var wellKnownPorts = []uint16{53, 80, 443, 8080, 5060, 123}

// Frame mints a frame for the given flow with the requested wire size in
// bytes (clamped to [MinFrameSize, MaxFrameSize]). The returned slice is
// owned by the caller (a fresh copy per call).
func (s *Synth) Frame(flow uint64, size int) []byte {
	if size < packet.MinFrameSize {
		size = packet.MinFrameSize
	}
	if size > packet.MaxFrameSize {
		size = packet.MaxFrameSize
	}
	t := &s.flows[flow%uint64(len(s.flows))]
	var raw []byte
	if t.useTCP {
		overhead := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.TCPMinHeaderLen
		payload := make([]byte, max(0, size-overhead))
		fillPayload(payload, flow)
		tcp := t.tcp
		tcp.Seq += uint32(flow) // vary a little per call site
		raw = s.bld.BuildTCP4(t.eth, t.ip, tcp, payload)
	} else {
		overhead := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.UDPHeaderLen
		payload := make([]byte, max(0, size-overhead))
		fillPayload(payload, flow)
		raw = s.bld.BuildUDP4(t.eth, t.ip, t.udp, payload)
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// FlowCount returns the synthetic flow population size.
func (s *Synth) FlowCount() int { return len(s.flows) }

func fillPayload(p []byte, flow uint64) {
	for i := range p {
		p[i] = byte(uint64(i) + flow)
	}
}

func randMAC(r *rand.Rand) packet.MAC {
	var m packet.MAC
	for i := range m {
		m[i] = byte(r.Intn(256))
	}
	m[0] &^= 1 // never multicast
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
