// Package traffic generates workloads in the style of the DPDK packet
// sender the paper's evaluation uses (§3): configurable offered load,
// frame-size sweeps from 64B to 1500B, and several arrival processes (CBR,
// Poisson, on/off bursts, piecewise ramps). Sources produce timestamped
// arrivals for the discrete-event simulator; the Synth type additionally
// produces real serialized frames for the execution emulator and the NF
// unit tests.
package traffic

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrival is one offered frame: its arrival time at the chain ingress, the
// wire size in bytes, and the flow it belongs to.
type Arrival struct {
	At   time.Duration
	Size int
	Flow uint64
}

// Source yields arrivals in non-decreasing time order. Next returns ok=false
// when the source is exhausted.
type Source interface {
	Next() (a Arrival, ok bool)
}

// SizeDist samples frame sizes.
type SizeDist interface {
	Sample(r *rand.Rand) int
}

// FixedSize always returns the same frame size.
type FixedSize int

// Sample implements SizeDist.
func (f FixedSize) Sample(*rand.Rand) int { return int(f) }

// UniformSize samples uniformly in [Min, Max].
type UniformSize struct{ Min, Max int }

// Sample implements SizeDist.
func (u UniformSize) Sample(r *rand.Rand) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + r.Intn(u.Max-u.Min+1)
}

// WeightedSize samples from discrete sizes with weights.
type WeightedSize struct {
	Sizes   []int
	Weights []float64
	total   float64
}

// NewIMIX returns the classic Internet mix: 64B×7, 594B×4, 1518B×1
// (clamped to 1500B frames to match the paper's sweep upper bound).
func NewIMIX() *WeightedSize {
	return &WeightedSize{Sizes: []int{64, 594, 1500}, Weights: []float64{7, 4, 1}}
}

// Sample implements SizeDist.
func (w *WeightedSize) Sample(r *rand.Rand) int {
	if w.total == 0 {
		for _, x := range w.Weights {
			w.total += x
		}
	}
	if w.total <= 0 || len(w.Sizes) == 0 {
		return 64
	}
	x := r.Float64() * w.total
	for i, wt := range w.Weights {
		if x < wt {
			return w.Sizes[i]
		}
		x -= wt
	}
	return w.Sizes[len(w.Sizes)-1]
}

// Process selects the arrival process of a generator.
type Process uint8

// Arrival processes.
const (
	// ProcessCBR spaces frames deterministically at the offered rate.
	ProcessCBR Process = iota
	// ProcessPoisson draws exponential interarrival gaps at the offered
	// rate (memoryless, the standard open-loop model).
	ProcessPoisson
)

// Gen is a finite arrival source at a constant offered load.
type Gen struct {
	rate     float64 // bits per second
	sizes    SizeDist
	process  Process
	flows    uint64
	start    time.Duration
	duration time.Duration
	rng      *rand.Rand

	now     time.Duration
	started bool
}

// NewGen creates a generator offering rateGbps of load with the given size
// distribution and arrival process over [start, start+duration). flows sets
// how many synthetic flows the traffic is spread across (≥1).
func NewGen(rateGbps float64, sizes SizeDist, process Process, flows uint64, start, duration time.Duration, seed int64) (*Gen, error) {
	if rateGbps <= 0 {
		return nil, fmt.Errorf("traffic: non-positive rate %v", rateGbps)
	}
	if flows == 0 {
		flows = 1
	}
	if sizes == nil {
		sizes = FixedSize(1024)
	}
	return &Gen{
		rate:     rateGbps * 1e9,
		sizes:    sizes,
		process:  process,
		flows:    flows,
		start:    start,
		duration: duration,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Next implements Source.
func (g *Gen) Next() (Arrival, bool) {
	size := g.sizes.Sample(g.rng)
	bits := float64(size) * 8
	mean := time.Duration(bits / g.rate * float64(time.Second))
	var gap time.Duration
	switch g.process {
	case ProcessPoisson:
		gap = time.Duration(g.rng.ExpFloat64() * float64(mean))
	default:
		gap = mean
	}
	if !g.started {
		g.started = true
		g.now = g.start
		// First arrival lands one gap into the interval so that CBR spacing
		// is uniform from the very start.
		g.now += gap
	} else {
		g.now += gap
	}
	if g.now >= g.start+g.duration {
		return Arrival{}, false
	}
	return Arrival{At: g.now, Size: size, Flow: g.rng.Uint64() % g.flows}, true
}

// Phase is one stage of a Ramp: offered load held for a duration.
type Phase struct {
	RateGbps float64
	Duration time.Duration
}

// Ramp chains constant-rate phases back to back, modelling the traffic
// fluctuation that creates the paper's hot spot ("as the network traffic
// fluctuates, NFs on SmartNIC can also be overloaded", §1).
type Ramp struct {
	phases  []Phase
	sizes   SizeDist
	process Process
	flows   uint64
	seed    int64

	idx   int
	cur   *Gen
	start time.Duration
}

// NewRamp builds a ramp source from phases.
func NewRamp(phases []Phase, sizes SizeDist, process Process, flows uint64, seed int64) (*Ramp, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("traffic: empty ramp")
	}
	return &Ramp{phases: phases, sizes: sizes, process: process, flows: flows, seed: seed}, nil
}

// Next implements Source.
func (r *Ramp) Next() (Arrival, bool) {
	for {
		if r.cur == nil {
			if r.idx >= len(r.phases) {
				return Arrival{}, false
			}
			p := r.phases[r.idx]
			g, err := NewGen(p.RateGbps, r.sizes, r.process, r.flows, r.start, p.Duration, r.seed+int64(r.idx))
			if err != nil {
				// A zero-rate phase is silence: skip it.
				r.start += p.Duration
				r.idx++
				continue
			}
			r.cur = g
		}
		a, ok := r.cur.Next()
		if ok {
			return a, true
		}
		r.start += r.phases[r.idx].Duration
		r.idx++
		r.cur = nil
	}
}

// Merge multiplexes sources into one time-ordered stream (k-way merge).
type Merge struct {
	srcs []Source
	head []*Arrival
}

// NewMerge wraps the sources.
func NewMerge(srcs ...Source) *Merge {
	m := &Merge{srcs: srcs, head: make([]*Arrival, len(srcs))}
	for i, s := range srcs {
		if a, ok := s.Next(); ok {
			cp := a
			m.head[i] = &cp
		}
	}
	return m
}

// Next implements Source.
func (m *Merge) Next() (Arrival, bool) {
	best := -1
	for i, h := range m.head {
		if h == nil {
			continue
		}
		if best == -1 || h.At < m.head[best].At {
			best = i
		}
	}
	if best == -1 {
		return Arrival{}, false
	}
	out := *m.head[best]
	if a, ok := m.srcs[best].Next(); ok {
		cp := a
		m.head[best] = &cp
	} else {
		m.head[best] = nil
	}
	return out, true
}

// Take caps a source at n arrivals, handy in tests.
type Take struct {
	Src Source
	N   int
}

// Next implements Source.
func (t *Take) Next() (Arrival, bool) {
	if t.N <= 0 {
		return Arrival{}, false
	}
	t.N--
	return t.Src.Next()
}
