package traffic_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/traffic"
)

func drain(src traffic.Source) []traffic.Arrival {
	var out []traffic.Arrival
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestCBRRateAndSpacing(t *testing.T) {
	g, err := traffic.NewGen(1.0, traffic.FixedSize(1250), traffic.ProcessCBR, 4, 0, 100*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(g)
	// 1 Gbps at 1250B = 100 kpps → 10µs spacing → 10000 arrivals in 100ms.
	if len(arr) < 9990 || len(arr) > 10000 {
		t.Fatalf("arrivals = %d, want ≈10000", len(arr))
	}
	gap := arr[1].At - arr[0].At
	if gap != 10*time.Microsecond {
		t.Errorf("gap = %v, want 10µs", gap)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	g, err := traffic.NewGen(1.0, traffic.FixedSize(1250), traffic.ProcessPoisson, 4, 0, 200*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(g)
	want := 20000.0
	if math.Abs(float64(len(arr))-want) > want*0.05 {
		t.Errorf("arrivals = %d, want ≈%v", len(arr), want)
	}
}

func TestGenRejectsBadRate(t *testing.T) {
	if _, err := traffic.NewGen(0, traffic.FixedSize(64), traffic.ProcessCBR, 1, 0, time.Second, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSizeDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if s := (traffic.FixedSize(999)).Sample(r); s != 999 {
		t.Errorf("fixed = %d", s)
	}
	u := traffic.UniformSize{Min: 64, Max: 128}
	for i := 0; i < 100; i++ {
		s := u.Sample(r)
		if s < 64 || s > 128 {
			t.Fatalf("uniform out of range: %d", s)
		}
	}
	im := traffic.NewIMIX()
	counts := map[int]int{}
	for i := 0; i < 12000; i++ {
		counts[im.Sample(r)]++
	}
	// Ratios 7:4:1 within generous tolerance.
	if counts[64] < 6000 || counts[594] < 3200 || counts[1500] < 700 {
		t.Errorf("imix counts = %v", counts)
	}
}

func TestRampPhases(t *testing.T) {
	rmp, err := traffic.NewRamp([]traffic.Phase{
		{RateGbps: 1, Duration: 50 * time.Millisecond},
		{RateGbps: 2, Duration: 50 * time.Millisecond},
	}, traffic.FixedSize(1250), traffic.ProcessCBR, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(rmp)
	var phase1, phase2 int
	for _, a := range arr {
		if a.At < 50*time.Millisecond {
			phase1++
		} else {
			phase2++
		}
	}
	// Phase 2 offers twice the rate → about twice the arrivals.
	if phase2 < phase1*3/2 {
		t.Errorf("phase1=%d phase2=%d, want ≈2x", phase1, phase2)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("ramp arrivals not monotone")
		}
	}
}

func TestRampSkipsZeroRatePhase(t *testing.T) {
	rmp, err := traffic.NewRamp([]traffic.Phase{
		{RateGbps: 0, Duration: 10 * time.Millisecond},
		{RateGbps: 1, Duration: 10 * time.Millisecond},
	}, traffic.FixedSize(1250), traffic.ProcessCBR, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(rmp)
	if len(arr) == 0 {
		t.Fatal("no arrivals after silent phase")
	}
	if arr[0].At < 10*time.Millisecond {
		t.Errorf("first arrival %v inside silent phase", arr[0].At)
	}
}

func TestMergeOrders(t *testing.T) {
	a, _ := traffic.NewGen(0.5, traffic.FixedSize(1250), traffic.ProcessCBR, 1, 0, 20*time.Millisecond, 1)
	b, _ := traffic.NewGen(0.5, traffic.FixedSize(500), traffic.ProcessCBR, 1, 0, 20*time.Millisecond, 2)
	m := traffic.NewMerge(a, b)
	arr := drain(m)
	if len(arr) == 0 {
		t.Fatal("merge empty")
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("merge not ordered at %d", i)
		}
	}
}

func TestTake(t *testing.T) {
	g, _ := traffic.NewGen(1, traffic.FixedSize(1250), traffic.ProcessCBR, 1, 0, time.Second, 1)
	tk := &traffic.Take{Src: g, N: 5}
	if got := len(drain(tk)); got != 5 {
		t.Errorf("take = %d", got)
	}
}

func TestSynthFramesDecode(t *testing.T) {
	s := traffic.NewSynth(8, 42)
	d := packet.NewDecoder()
	for fl := uint64(0); fl < 8; fl++ {
		for _, size := range []int{64, 512, 1500} {
			frame := s.Frame(fl, size)
			if len(frame) != size && len(frame) != packet.MinFrameSize {
				t.Fatalf("frame size = %d, want %d", len(frame), size)
			}
			if _, err := d.Decode(frame); err != nil {
				t.Fatalf("frame does not decode: %v", err)
			}
			if !d.Has(packet.LayerIPv4) {
				t.Fatal("frame missing IPv4")
			}
			if !d.Has(packet.LayerTCP) && !d.Has(packet.LayerUDP) {
				t.Fatal("frame missing transport")
			}
			if !packet.VerifyIPv4Checksum(frame[packet.EthernetHeaderLen:]) {
				t.Fatal("bad IP checksum")
			}
		}
	}
}

func TestSynthStableTuples(t *testing.T) {
	s := traffic.NewSynth(4, 1)
	d := packet.NewDecoder()
	f1 := s.Frame(2, 256)
	if _, err := d.Decode(f1); err != nil {
		t.Fatal(err)
	}
	src1 := d.IP4.Src
	f2 := s.Frame(2, 1024)
	if _, err := d.Decode(f2); err != nil {
		t.Fatal(err)
	}
	if d.IP4.Src != src1 {
		t.Error("same flow produced different 5-tuple")
	}
}

// Property: offered bytes over the interval match the configured rate
// within 2% for CBR at any size.
func TestPropertyCBRRate(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		size := 64 + int(sz%1436)
		g, err := traffic.NewGen(2.0, traffic.FixedSize(size), traffic.ProcessCBR, 1, 0, 50*time.Millisecond, seed)
		if err != nil {
			return false
		}
		var bytes int
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			bytes += a.Size
		}
		gbps := float64(bytes) * 8 / 0.05 / 1e9
		return math.Abs(gbps-2.0) < 0.04
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
