package traffic

// The stochastic workload layer: heavy-tailed size distributions and
// fluctuating arrival shapes. Related work treats heavy-tailed, bursty load
// as the *expected* regime for flow networks, not a corner case, and it is
// exactly the regime that stresses an overload-control loop: load hovering
// around the detector threshold invites migration ping-pong unless the
// hysteresis band and cooldown are tuned for rapid recovery (PAPERS.md:
// "Heavy tails in dynamic flow networks"; Perry & Whitt's overloaded-X
// rapid-recovery control). Every shape is seeded and compiles into the
// existing Ramp source, so stochastic workloads compose with Merge/Take and
// inherit the Source contract (non-decreasing arrival times).

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ParetoSize samples frame sizes from a bounded Pareto distribution with
// tail index Alpha over [Min, Max]: the classic heavy-tailed size model
// (smaller Alpha = heavier tail; Alpha ≤ 2 has infinite variance on the
// unbounded support). Zero fields default to Alpha 1.3 over [64, 1500].
type ParetoSize struct {
	Alpha    float64
	Min, Max int
}

// Sample implements SizeDist via the bounded-Pareto inverse CDF.
func (p ParetoSize) Sample(r *rand.Rand) int {
	alpha, lo, hi := p.Alpha, p.Min, p.Max
	if alpha <= 0 {
		alpha = 1.3
	}
	if lo <= 0 {
		lo = 64
	}
	if hi <= 0 {
		hi = 1500
	}
	if hi <= lo {
		return lo
	}
	u := r.Float64()
	// P(X ≤ x) = (1 − (L/x)^α) / (1 − (L/H)^α), inverted at u.
	ratio := math.Pow(float64(lo)/float64(hi), alpha)
	x := float64(lo) / math.Pow(1-u*(1-ratio), 1/alpha)
	s := int(x)
	if s < lo {
		s = lo
	}
	if s > hi {
		s = hi
	}
	return s
}

// LognormalSize samples frame sizes from a lognormal distribution
// exp(Mu + Sigma·N(0,1)), clamped to [Min, Max]. Zero Min/Max default to
// [64, 1500]; Mu/Sigma of zero default to a median of ~512 B with a heavy
// right tail (Mu = ln 512, Sigma = 0.8).
type LognormalSize struct {
	Mu, Sigma float64
	Min, Max  int
}

// Sample implements SizeDist.
func (l LognormalSize) Sample(r *rand.Rand) int {
	mu, sigma, lo, hi := l.Mu, l.Sigma, l.Min, l.Max
	if mu == 0 && sigma == 0 {
		mu, sigma = math.Log(512), 0.8
	}
	if lo <= 0 {
		lo = 64
	}
	if hi < lo {
		hi = 1500
		if hi < lo {
			hi = lo
		}
	}
	s := int(math.Exp(mu + sigma*r.NormFloat64()))
	if s < lo {
		s = lo
	}
	if s > hi {
		s = hi
	}
	return s
}

// Shape generates a seeded piecewise-constant offered-load schedule. Shapes
// compile into a Ramp via NewShaped, so every stochastic workload rides the
// same phase machinery (and Source contract) as the deterministic ramps.
type Shape interface {
	// Phases lays out the schedule covering [0, total). Implementations
	// draw all randomness from rng so identical seeds yield identical
	// schedules.
	Phases(total time.Duration, rng *rand.Rand) ([]Phase, error)
}

// NewShaped compiles a shape into an arrival source: the shape lays out the
// rate schedule (seeded), and a Ramp generates arrivals through it with the
// given size distribution and arrival process. The same seed reproduces the
// identical arrival stream.
func NewShaped(s Shape, total time.Duration, sizes SizeDist, process Process, flows uint64, seed int64) (*Ramp, error) {
	if total <= 0 {
		return nil, fmt.Errorf("traffic: non-positive shape duration %v", total)
	}
	rng := rand.New(rand.NewSource(seed))
	phases, err := s.Phases(total, rng)
	if err != nil {
		return nil, err
	}
	return NewRamp(phases, sizes, process, flows, seed+1)
}

// OnOff is a bursty source: bursts at HighGbps for ~On, idles at LowGbps
// (silence when 0) for ~Off, repeating. The duty cycle is On/(On+Off);
// Jitter (fraction in [0,1)) perturbs each burst and idle duration
// uniformly by ±Jitter so bursts do not phase-lock with polling windows.
type OnOff struct {
	HighGbps, LowGbps float64
	On, Off           time.Duration
	Jitter            float64
}

// Phases implements Shape.
func (c OnOff) Phases(total time.Duration, rng *rand.Rand) ([]Phase, error) {
	if c.HighGbps <= 0 || c.LowGbps < 0 {
		return nil, fmt.Errorf("traffic: on/off rates high=%v low=%v", c.HighGbps, c.LowGbps)
	}
	if c.On <= 0 || c.Off < 0 {
		return nil, fmt.Errorf("traffic: on/off durations on=%v off=%v", c.On, c.Off)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return nil, fmt.Errorf("traffic: on/off jitter %v outside [0,1)", c.Jitter)
	}
	jitter := func(d time.Duration) time.Duration {
		if c.Jitter == 0 || d == 0 {
			return d
		}
		f := 1 + c.Jitter*(2*rng.Float64()-1)
		return time.Duration(f * float64(d))
	}
	var phases []Phase
	var at time.Duration
	for at < total {
		on := jitter(c.On)
		phases = append(phases, Phase{RateGbps: c.HighGbps, Duration: on})
		at += on
		if at >= total {
			break
		}
		off := jitter(c.Off)
		if off > 0 {
			phases = append(phases, Phase{RateGbps: c.LowGbps, Duration: off})
			at += off
		}
	}
	return clipPhases(phases, total), nil
}

// FlashCrowd is a sudden surge: BaseGbps until At, a linear climb to
// PeakGbps over RampUp, a hold for Hold, a linear decay over Decay, then
// base again. Step discretizes the climbs (default 25 ms). The shape itself
// is deterministic — the randomness of a flash crowd lives in the arrival
// process and size distribution it is compiled with.
type FlashCrowd struct {
	BaseGbps, PeakGbps float64
	At, RampUp, Hold   time.Duration
	Decay              time.Duration
	Step               time.Duration
}

// Phases implements Shape.
func (c FlashCrowd) Phases(total time.Duration, _ *rand.Rand) ([]Phase, error) {
	if c.BaseGbps < 0 || c.PeakGbps <= c.BaseGbps {
		return nil, fmt.Errorf("traffic: flash crowd rates base=%v peak=%v", c.BaseGbps, c.PeakGbps)
	}
	step := c.Step
	if step <= 0 {
		step = 25 * time.Millisecond
	}
	var phases []Phase
	if c.At > 0 {
		phases = append(phases, Phase{RateGbps: c.BaseGbps, Duration: c.At})
	}
	ramp := func(from, to float64, over time.Duration) {
		if over <= 0 {
			return
		}
		n := int(over / step)
		if n < 1 {
			n = 1
		}
		d := over / time.Duration(n)
		for i := 0; i < n; i++ {
			f := (float64(i) + 0.5) / float64(n)
			phases = append(phases, Phase{RateGbps: from + (to-from)*f, Duration: d})
		}
	}
	ramp(c.BaseGbps, c.PeakGbps, c.RampUp)
	if c.Hold > 0 {
		phases = append(phases, Phase{RateGbps: c.PeakGbps, Duration: c.Hold})
	}
	ramp(c.PeakGbps, c.BaseGbps, c.Decay)
	var spent time.Duration
	for _, p := range phases {
		spent += p.Duration
	}
	if spent < total {
		phases = append(phases, Phase{RateGbps: c.BaseGbps, Duration: total - spent})
	}
	return clipPhases(phases, total), nil
}

// Diurnal modulates the offered load sinusoidally: MeanGbps ±
// AmplitudeGbps over Period, discretized at Step (default Period/24 — one
// "hour" per phase). Negative instantaneous rates clamp to silence.
type Diurnal struct {
	MeanGbps, AmplitudeGbps float64
	Period, Step            time.Duration
}

// Phases implements Shape.
func (c Diurnal) Phases(total time.Duration, _ *rand.Rand) ([]Phase, error) {
	if c.MeanGbps <= 0 || c.AmplitudeGbps < 0 {
		return nil, fmt.Errorf("traffic: diurnal rates mean=%v amplitude=%v", c.MeanGbps, c.AmplitudeGbps)
	}
	if c.Period <= 0 {
		return nil, fmt.Errorf("traffic: diurnal period %v", c.Period)
	}
	step := c.Step
	if step <= 0 {
		step = c.Period / 24
	}
	var phases []Phase
	for at := time.Duration(0); at < total; at += step {
		mid := float64(at) + float64(step)/2
		r := c.MeanGbps + c.AmplitudeGbps*math.Sin(2*math.Pi*mid/float64(c.Period))
		if r < 0 {
			r = 0
		}
		phases = append(phases, Phase{RateGbps: r, Duration: step})
	}
	return clipPhases(phases, total), nil
}

// Hover keeps the offered load fluctuating around CenterGbps inside
// ±BandGbps — the adversarial regime for an overload detector whose
// threshold sits inside the band. Excursions alternate between the lower
// and upper half of the band (each dwell's rate uniform in its half, its
// duration uniform in [Dwell/2, 3·Dwell/2)), so the schedule is guaranteed
// to straddle the center repeatedly rather than drift away.
type Hover struct {
	CenterGbps, BandGbps float64
	Dwell                time.Duration
}

// Phases implements Shape.
func (c Hover) Phases(total time.Duration, rng *rand.Rand) ([]Phase, error) {
	if c.CenterGbps <= 0 || c.BandGbps <= 0 || c.BandGbps >= c.CenterGbps {
		return nil, fmt.Errorf("traffic: hover center=%v band=%v (need 0 < band < center)", c.CenterGbps, c.BandGbps)
	}
	if c.Dwell <= 0 {
		return nil, fmt.Errorf("traffic: hover dwell %v", c.Dwell)
	}
	var phases []Phase
	var at time.Duration
	high := false
	for at < total {
		var r float64
		if high {
			r = c.CenterGbps + c.BandGbps*rng.Float64()
		} else {
			r = c.CenterGbps - c.BandGbps*rng.Float64()
		}
		d := time.Duration((0.5 + rng.Float64()) * float64(c.Dwell))
		phases = append(phases, Phase{RateGbps: r, Duration: d})
		at += d
		high = !high
	}
	return clipPhases(phases, total), nil
}

// clipPhases trims a schedule to exactly total, dropping overshoot from the
// final phase.
func clipPhases(phases []Phase, total time.Duration) []Phase {
	var at time.Duration
	for i, p := range phases {
		if at+p.Duration >= total {
			phases[i].Duration = total - at
			return phases[:i+1]
		}
		at += p.Duration
	}
	return phases
}
