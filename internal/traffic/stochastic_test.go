package traffic

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestParetoSizeBoundsAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ParetoSize{} // defaults: alpha 1.3 over [64, 1500]
	var sum float64
	n := 20000
	small := 0
	for i := 0; i < n; i++ {
		s := p.Sample(rng)
		if s < 64 || s > 1500 {
			t.Fatalf("sample %d outside [64, 1500]", s)
		}
		sum += float64(s)
		if s < 128 {
			small++
		}
	}
	mean := sum / float64(n)
	// Heavy tail: most mass near the minimum, yet the mean is dragged far
	// above it (bounded Pareto α=1.3 over [64,1500] has mean ≈ 230).
	if frac := float64(small) / float64(n); frac < 0.5 {
		t.Errorf("only %.2f of samples below 128 B — not head-heavy", frac)
	}
	if mean < 150 || mean > 350 {
		t.Errorf("mean %.1f outside the bounded-Pareto expectation", mean)
	}
}

func TestLognormalSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := LognormalSize{} // defaults: median ~512 within [64, 1500]
	var below, above int
	for i := 0; i < 10000; i++ {
		s := l.Sample(rng)
		if s < 64 || s > 1500 {
			t.Fatalf("sample %d outside [64, 1500]", s)
		}
		if s < 512 {
			below++
		} else {
			above++
		}
	}
	// The default median is ~512, so the clamp leaves both halves populated.
	if below < 2000 || above < 2000 {
		t.Errorf("median drifted: %d below / %d above 512", below, above)
	}
}

// phaseSpan sums a schedule's duration and integrates its offered bytes.
func phaseSpan(phases []Phase) (time.Duration, float64) {
	var span time.Duration
	var bits float64
	for _, p := range phases {
		span += p.Duration
		bits += p.RateGbps * 1e9 * p.Duration.Seconds()
	}
	return span, bits / 8
}

func TestOnOffDutyCycle(t *testing.T) {
	total := time.Second
	c := OnOff{HighGbps: 2, LowGbps: 0, On: 100 * time.Millisecond, Off: 100 * time.Millisecond}
	phases, err := c.Phases(total, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	span, bytes := phaseSpan(phases)
	if span != total {
		t.Fatalf("schedule spans %v, want %v", span, total)
	}
	// Duty cycle 50%: offered bytes = High × total/2 (jitter-free layout).
	want := 2.0 * 1e9 * total.Seconds() / 2 / 8
	if math.Abs(bytes-want)/want > 0.01 {
		t.Errorf("offered bytes %.0f, want ~%.0f (50%% duty cycle)", bytes, want)
	}
	for _, p := range phases {
		if p.RateGbps != 2 && p.RateGbps != 0 {
			t.Fatalf("unexpected rate %v in on/off schedule", p.RateGbps)
		}
	}
}

func TestOnOffJitterSeededDeterminism(t *testing.T) {
	c := OnOff{HighGbps: 1, LowGbps: 0.1, On: 50 * time.Millisecond, Off: 30 * time.Millisecond, Jitter: 0.3}
	a, err := c.Phases(time.Second, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.Phases(time.Second, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d phases", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("phase %d differs under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c2, _ := c.Phases(time.Second, rand.New(rand.NewSource(8)))
	same := len(a) == len(c2)
	if same {
		for i := range a {
			if a[i] != c2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced an identical jittered schedule")
	}
}

func TestFlashCrowdShape(t *testing.T) {
	total := time.Second
	c := FlashCrowd{BaseGbps: 0.5, PeakGbps: 3, At: 200 * time.Millisecond,
		RampUp: 100 * time.Millisecond, Hold: 200 * time.Millisecond, Decay: 100 * time.Millisecond}
	phases, err := c.Phases(total, nil)
	if err != nil {
		t.Fatal(err)
	}
	span, _ := phaseSpan(phases)
	if span != total {
		t.Fatalf("schedule spans %v, want %v", span, total)
	}
	peak := 0.0
	for _, p := range phases {
		if p.RateGbps < 0.5-1e-9 || p.RateGbps > 3+1e-9 {
			t.Fatalf("rate %v outside [base, peak]", p.RateGbps)
		}
		if p.RateGbps > peak {
			peak = p.RateGbps
		}
	}
	if peak != 3 {
		t.Errorf("hold never reached the peak: max %v", peak)
	}
	if phases[0].RateGbps != 0.5 || phases[len(phases)-1].RateGbps != 0.5 {
		t.Errorf("surge does not start and end at base: %v .. %v",
			phases[0].RateGbps, phases[len(phases)-1].RateGbps)
	}
}

func TestDiurnalShape(t *testing.T) {
	total := 2 * time.Second
	c := Diurnal{MeanGbps: 1, AmplitudeGbps: 1.5, Period: time.Second}
	phases, err := c.Phases(total, nil)
	if err != nil {
		t.Fatal(err)
	}
	span, _ := phaseSpan(phases)
	if span != total {
		t.Fatalf("schedule spans %v, want %v", span, total)
	}
	clamped := false
	for _, p := range phases {
		if p.RateGbps < 0 {
			t.Fatalf("negative rate %v", p.RateGbps)
		}
		if p.RateGbps == 0 {
			clamped = true
		}
	}
	// Amplitude > mean: the trough must clamp to silence.
	if !clamped {
		t.Error("trough never clamped to zero with amplitude > mean")
	}
}

func TestHoverStraddlesCenter(t *testing.T) {
	c := Hover{CenterGbps: 0.7, BandGbps: 0.2, Dwell: 100 * time.Millisecond}
	phases, err := c.Phases(2*time.Second, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	span, _ := phaseSpan(phases)
	if span != 2*time.Second {
		t.Fatalf("schedule spans %v, want 2s", span)
	}
	var below, above int
	for _, p := range phases {
		if p.RateGbps < 0.5-1e-9 || p.RateGbps > 0.9+1e-9 {
			t.Fatalf("rate %v escaped the hover band [0.5, 0.9]", p.RateGbps)
		}
		if p.RateGbps <= 0.7 {
			below++
		} else {
			above++
		}
	}
	// The alternating construction guarantees both halves are visited.
	if below == 0 || above == 0 {
		t.Errorf("hover drifted one-sided: %d below / %d above center", below, above)
	}
}

func TestShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []Shape{
		OnOff{HighGbps: 0, On: time.Millisecond},
		OnOff{HighGbps: 1, On: 0},
		OnOff{HighGbps: 1, On: time.Millisecond, Jitter: 1.5},
		FlashCrowd{BaseGbps: 1, PeakGbps: 0.5},
		Diurnal{MeanGbps: 0},
		Diurnal{MeanGbps: 1, AmplitudeGbps: 1, Period: 0},
		Hover{CenterGbps: 0, BandGbps: 0.1},
		Hover{CenterGbps: 0.5, BandGbps: 0.6}, // band wider than center
		Hover{CenterGbps: 0.5, BandGbps: 0.1, Dwell: 0},
	}
	for i, s := range cases {
		if _, err := s.Phases(time.Second, rng); err == nil {
			t.Errorf("case %d (%T%+v): invalid shape accepted", i, s, s)
		}
	}
}

func TestNewShapedDeterminismAndErrors(t *testing.T) {
	shape := Hover{CenterGbps: 0.001, BandGbps: 0.0002, Dwell: 50 * time.Millisecond}
	collect := func(seed int64) []Arrival {
		src, err := NewShaped(shape, 500*time.Millisecond, FixedSize(256), ProcessCBR, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			out = append(out, a)
		}
		return out
	}
	a, b := collect(11), collect(11)
	if len(a) == 0 {
		t.Fatal("shaped source produced no arrivals")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrival times regressed at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
	if _, err := NewShaped(shape, 0, FixedSize(256), ProcessCBR, 8, 1); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := NewShaped(Hover{}, time.Second, FixedSize(256), ProcessCBR, 8, 1); err == nil {
		t.Error("invalid shape accepted")
	}
}
