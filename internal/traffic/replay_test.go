package traffic

// Golden-file tests for the pcap replay source. testdata/replay.pcap is a
// tiny checked-in capture (four synthesized frames at known timestamps);
// regenerate it with `go test ./internal/traffic -run TestReplayGolden -update`
// after changing goldenPackets.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
)

var update = flag.Bool("update", false, "regenerate golden files")

const goldenPath = "testdata/replay.pcap"

// goldenPackets lays out the checked-in capture: four frames from four
// synthetic flows, deliberately offset from t=0 (replay must normalize to
// the first packet) with irregular gaps.
func goldenPackets(t *testing.T) []pcap.Packet {
	t.Helper()
	synth := NewSynth(4, 99)
	times := []time.Duration{
		1500 * time.Microsecond,
		1600 * time.Microsecond,
		1750 * time.Microsecond,
		2100 * time.Microsecond,
	}
	sizes := []int{64, 128, 256, 512}
	pkts := make([]pcap.Packet, len(times))
	for i := range times {
		frame := synth.Frame(uint64(i), sizes[i])
		pkts[i] = pcap.Packet{Time: times[i], Data: append([]byte(nil), frame...), OrigLen: len(frame)}
	}
	return pkts
}

func writeGolden(t *testing.T, pkts []pcap.Packet) {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReplayGolden(t *testing.T) {
	want := goldenPackets(t)
	if *update {
		writeGolden(t, want)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	r, err := NewReplay(bytes.NewReader(raw), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(want) {
		t.Fatalf("capture has %d records, want %d", r.Len(), len(want))
	}
	first := want[0].Time
	for i, p := range want {
		a, ok := r.Next()
		if !ok {
			t.Fatalf("source exhausted at %d", i)
		}
		if a.At != p.Time-first {
			t.Errorf("arrival %d at %v, want %v (normalized to first packet)", i, a.At, p.Time-first)
		}
		if a.Size != p.OrigLen {
			t.Errorf("arrival %d size %d, want wire length %d", i, a.Size, p.OrigLen)
		}
		if a.Flow != packet.FlowHash(p.Data) {
			t.Errorf("arrival %d flow %#x, want FlowHash of the captured bytes", i, a.Flow)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("source yielded past the capture")
	}
}

func TestReplaySpeedRescalesGaps(t *testing.T) {
	pkts := goldenPackets(t)
	r, err := NewReplayPackets(pkts, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := pkts[0].Time
	for i, p := range pkts {
		a, ok := r.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if want := (p.Time - first) / 2; a.At != want {
			t.Errorf("arrival %d at %v, want %v (speed 2 halves gaps)", i, a.At, want)
		}
	}
}

func TestReplayRateRescaling(t *testing.T) {
	pkts := goldenPackets(t)
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf, 0)
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	native, err := NewReplay(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	target := native.OfferedGbps() * 3
	r, err := NewReplayRate(bytes.NewReader(buf.Bytes()), target)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.OfferedGbps(); got < target*0.999 || got > target*1.001 {
		t.Errorf("rescaled offered rate %.9f, want %.9f", got, target)
	}
	// Tripling the rate compresses the span 3×.
	last := pkts[len(pkts)-1].Time - pkts[0].Time
	var a Arrival
	for i := 0; i < len(pkts); i++ {
		a, _ = r.Next()
	}
	if want := last / 3; a.At < want-time.Nanosecond || a.At > want+time.Nanosecond {
		t.Errorf("last arrival at %v, want %v", a.At, want)
	}
}

func TestReplaySortsOutOfOrderCaptures(t *testing.T) {
	pkts := goldenPackets(t)
	shuffled := []pcap.Packet{pkts[2], pkts[0], pkts[3], pkts[1]}
	r, err := NewReplayPackets(shuffled, 1)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration = -1
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		if a.At < prev {
			t.Fatalf("arrival regressed: %v after %v", a.At, prev)
		}
		prev = a.At
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplayPackets(nil, -1); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewReplayRate(bytes.NewReader(nil), 1); err == nil {
		t.Error("garbage capture accepted")
	}
	// A single-packet capture spans no time: no measurable rate to rescale.
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf, 0)
	if err := w.WritePacket(goldenPackets(t)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplayRate(bytes.NewReader(buf.Bytes()), 1); err == nil {
		t.Error("spanless capture accepted for rate rescaling")
	}
	if _, err := NewReplayRate(bytes.NewReader(buf.Bytes()), 0); err == nil {
		t.Error("zero target rate accepted")
	}
}
