package chain_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/device"
)

func mk(t *testing.T, locs ...device.Kind) *chain.Chain {
	t.Helper()
	elems := make([]chain.Element, len(locs))
	for i, l := range locs {
		elems[i] = chain.Element{Name: string(rune('a' + i)), Type: device.TypeFirewall, Loc: l}
	}
	c, err := chain.New("t", elems...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

const (
	S = device.KindSmartNIC
	C = device.KindCPU
)

func TestValidateRejectsEmpty(t *testing.T) {
	var c chain.Chain
	if err := c.Validate(); !errors.Is(err, chain.ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	_, err := chain.New("t",
		chain.Element{Name: "x", Type: device.TypeFirewall, Loc: S},
		chain.Element{Name: "x", Type: device.TypeLogger, Loc: S},
	)
	if !errors.Is(err, chain.ErrDupName) {
		t.Fatalf("err = %v, want ErrDupName", err)
	}
}

func TestCrossings(t *testing.T) {
	cases := []struct {
		locs []device.Kind
		want int
	}{
		{[]device.Kind{S}, 0},
		{[]device.Kind{C}, 2}, // in and out over PCIe
		{[]device.Kind{S, S, S}, 0},
		{[]device.Kind{C, S, S, S}, 2}, // figure 1(a)
		{[]device.Kind{C, S, C, S}, 4}, // figure 1(b): naive split
		{[]device.Kind{C, C, S, S}, 2}, // figure 1(c): PAM result
		{[]device.Kind{S, C, S, C}, 4},
		{[]device.Kind{C, C, C, C}, 2},
	}
	for _, tc := range cases {
		c := mk(t, tc.locs...)
		if got := c.Crossings(); got != tc.want {
			t.Errorf("%v crossings = %d, want %d", c.PlacementSignature(), got, tc.want)
		}
	}
}

func TestBordersFigure1(t *testing.T) {
	// LB(C) -> Logger(S) -> Monitor(S) -> Firewall(S): BL={1}, BR={3}
	// under the paper's mode (tail adjacent to the egress port counts).
	c := mk(t, C, S, S, S)
	bl, br := c.Borders(chain.BorderModePaper)
	if len(bl) != 1 || bl[0] != 1 {
		t.Errorf("BL = %v, want [1]", bl)
	}
	if len(br) != 1 || br[0] != 3 {
		t.Errorf("BR = %v, want [3]", br)
	}
	// Strict mode drops the tail.
	bl, br = c.Borders(chain.BorderModeStrict)
	if len(bl) != 1 || bl[0] != 1 {
		t.Errorf("strict BL = %v, want [1]", bl)
	}
	if len(br) != 0 {
		t.Errorf("strict BR = %v, want []", br)
	}
}

func TestBordersMultiSegment(t *testing.T) {
	// S C S S C S: NIC segments {0}, {2,3}, {5}.
	c := mk(t, S, C, S, S, C, S)
	bl, br := c.Borders(chain.BorderModePaper)
	wantBL := []int{0, 2, 5} // 0 is head; 2 and 5 follow CPU elements
	wantBR := []int{0, 3, 5} // 0 precedes CPU; 3 precedes CPU; 5 is tail
	if !eqInts(bl, wantBL) {
		t.Errorf("BL = %v, want %v", bl, wantBL)
	}
	if !eqInts(br, wantBR) {
		t.Errorf("BR = %v, want %v", br, wantBR)
	}
	bl, br = c.Borders(chain.BorderModeStrict)
	if !eqInts(bl, []int{2, 5}) {
		t.Errorf("strict BL = %v, want [2 5]", bl)
	}
	if !eqInts(br, []int{0, 3}) {
		t.Errorf("strict BR = %v, want [0 3]", br)
	}
}

func TestBordersSingleElementSegment(t *testing.T) {
	// C S C: the lone NIC vNF is both a left and a right border.
	c := mk(t, C, S, C)
	bl, br := c.Borders(chain.BorderModeStrict)
	if !eqInts(bl, []int{1}) || !eqInts(br, []int{1}) {
		t.Errorf("BL=%v BR=%v, want both [1]", bl, br)
	}
}

func TestSegments(t *testing.T) {
	c := mk(t, C, S, S, S)
	segs := c.Segments()
	want := []chain.Segment{{Start: 0, End: 0, Side: C}, {Start: 1, End: 3, Side: S}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

func TestFPGACountsAsNICSide(t *testing.T) {
	c, err := chain.New("t",
		chain.Element{Name: "a", Type: device.TypeFirewall, Loc: device.KindFPGA},
		chain.Element{Name: "b", Type: device.TypeLogger, Loc: S},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Crossings(); got != 0 {
		t.Errorf("crossings = %d, want 0 (FPGA is NIC-side)", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := mk(t, C, S, S)
	cc := c.Clone()
	cc.SetLoc(1, C)
	if c.At(1).Loc != S {
		t.Error("mutating clone changed original")
	}
}

func TestMoveUnknownElement(t *testing.T) {
	c := mk(t, S)
	if err := c.Move("nope", C); !errors.Is(err, chain.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPlacementSignatureAndString(t *testing.T) {
	c := mk(t, C, S, S)
	if got := c.PlacementSignature(); got != "CSS" {
		t.Errorf("signature = %q, want CSS", got)
	}
	if got := c.String(); got == "" {
		t.Error("String is empty")
	}
}

// Property: crossings always equals the number of side changes along
// NIC→elems→NIC, is even (path starts and ends on the NIC), and is bounded
// by len+1.
func TestPropertyCrossingsParityAndBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		locs := make([]device.Kind, n)
		for i := range locs {
			if r.Intn(2) == 0 {
				locs[i] = C
			} else {
				locs[i] = S
			}
		}
		elems := make([]chain.Element, n)
		for i, l := range locs {
			elems[i] = chain.Element{Name: string(rune('a' + i)), Type: device.TypeLogger, Loc: l}
		}
		c, err := chain.New("p", elems...)
		if err != nil {
			return false
		}
		x := c.Crossings()
		return x%2 == 0 && x >= 0 && x <= n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every strict border is also a paper border (strict ⊆ paper).
func TestPropertyStrictSubsetOfPaperBorders(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		elems := make([]chain.Element, n)
		for i := range elems {
			loc := S
			if r.Intn(2) == 0 {
				loc = C
			}
			elems[i] = chain.Element{Name: string(rune('a' + i)), Type: device.TypeLogger, Loc: loc}
		}
		c, err := chain.New("p", elems...)
		if err != nil {
			return false
		}
		sbl, sbr := c.Borders(chain.BorderModeStrict)
		pbl, pbr := c.Borders(chain.BorderModePaper)
		return subset(sbl, pbl) && subset(sbr, pbr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func subset(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
