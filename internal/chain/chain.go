// Package chain models NFV service chains spanning a SmartNIC and the host
// CPU: the ordered vNF sequence, per-vNF placement, PCIe-crossing
// accounting, and the border-vNF identification that is the heart of PAM's
// Step 1.
//
// Geometry convention (Figure 1 of the paper): packets physically arrive at
// and depart from the SmartNIC, so the packet path is
//
//	NIC ingress → vNF_1 → … → vNF_n → NIC egress
//
// and every adjacency whose two sides sit on different devices costs one
// PCIe crossing, including the implicit ingress/egress endpoints when the
// head/tail vNF lives on the CPU.
package chain

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/device"
)

// Element is one vNF instance in a chain: an instance name, the vNF type
// (the key into the capacity catalog) and its current placement.
type Element struct {
	Name string
	Type string
	Loc  device.Kind
}

// Chain is an ordered service chain. The zero value is an empty chain.
type Chain struct {
	Name  string
	Elems []Element
}

// Validation errors.
var (
	ErrEmpty    = errors.New("chain: empty chain")
	ErrDupName  = errors.New("chain: duplicate element name")
	ErrBadLoc   = errors.New("chain: unsupported placement")
	ErrNotFound = errors.New("chain: no such element")
)

// New builds a chain from elements and validates it.
func New(name string, elems ...Element) (*Chain, error) {
	c := &Chain{Name: name, Elems: elems}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks structural invariants: non-empty, unique instance names,
// placements restricted to SmartNIC/CPU/FPGA.
func (c *Chain) Validate() error {
	if len(c.Elems) == 0 {
		return ErrEmpty
	}
	seen := make(map[string]bool, len(c.Elems))
	for _, e := range c.Elems {
		if e.Name == "" || e.Type == "" {
			return fmt.Errorf("%w: element %+v", ErrNotFound, e)
		}
		if seen[e.Name] {
			return fmt.Errorf("%w: %q", ErrDupName, e.Name)
		}
		seen[e.Name] = true
		switch e.Loc {
		case device.KindSmartNIC, device.KindCPU, device.KindFPGA:
		default:
			return fmt.Errorf("%w: %v", ErrBadLoc, e.Loc)
		}
	}
	return nil
}

// Clone returns a deep copy; mutating the copy leaves the original intact.
func (c *Chain) Clone() *Chain {
	elems := make([]Element, len(c.Elems))
	copy(elems, c.Elems)
	return &Chain{Name: c.Name, Elems: elems}
}

// Len returns the number of vNFs.
func (c *Chain) Len() int { return len(c.Elems) }

// Index returns the position of the named element, or -1.
func (c *Chain) Index(name string) int {
	for i, e := range c.Elems {
		if e.Name == name {
			return i
		}
	}
	return -1
}

// At returns the element at position i.
func (c *Chain) At(i int) Element { return c.Elems[i] }

// SetLoc re-places the element at position i.
func (c *Chain) SetLoc(i int, k device.Kind) { c.Elems[i].Loc = k }

// Move re-places the named element, returning an error if it is absent.
func (c *Chain) Move(name string, k device.Kind) error {
	i := c.Index(name)
	if i < 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	c.Elems[i].Loc = k
	return nil
}

// On returns the positions of elements placed on kind k, in chain order.
func (c *Chain) On(k device.Kind) []int {
	var out []int
	for i, e := range c.Elems {
		if e.Loc == k {
			out = append(out, i)
		}
	}
	return out
}

// TypesOn returns the vNF type names placed on kind k, in chain order (with
// multiplicity), the form device.Utilization consumes.
func (c *Chain) TypesOn(k device.Kind) []string {
	var out []string
	for _, e := range c.Elems {
		if e.Loc == k {
			out = append(out, e.Type)
		}
	}
	return out
}

// Crossings counts physical PCIe crossings on the packet path, including
// the implicit NIC ingress before vNF_1 and NIC egress after vNF_n.
// FPGA placements count as NIC-side (the future-work FPGA sits on the NIC).
func (c *Chain) Crossings() int {
	if len(c.Elems) == 0 {
		return 0
	}
	n := 0
	prev := device.KindSmartNIC // ingress
	for _, e := range c.Elems {
		loc := normalizeSide(e.Loc)
		if loc != prev {
			n++
		}
		prev = loc
	}
	if prev != device.KindSmartNIC { // egress
		n++
	}
	return n
}

// normalizeSide folds FPGA into the NIC side of the PCIe bus.
func normalizeSide(k device.Kind) device.Kind {
	if k == device.KindFPGA {
		return device.KindSmartNIC
	}
	return k
}

// BorderMode selects how border vNFs are identified (see DESIGN.md §2,
// Inconsistency A discussion).
type BorderMode uint8

const (
	// BorderModePaper matches the paper's Figure 1 literally: a NIC vNF is
	// a border when its upstream (left border) or downstream (right border)
	// neighbour is placed on the CPU, or when it is the chain head/tail
	// (adjacent to the physical port).
	BorderModePaper BorderMode = iota
	// BorderModeStrict counts only CPU-abutting vNFs, which guarantees the
	// invariant "migrating a border vNF never increases PCIe crossings".
	BorderModeStrict
)

// Borders returns the left and right border sets BL and BR (positions of
// SmartNIC-resident vNFs) under the given mode. BL members have their
// upstream neighbour on the CPU (or are the chain head under
// BorderModePaper); BR members have their downstream neighbour on the CPU
// (or are the chain tail under BorderModePaper).
func (c *Chain) Borders(mode BorderMode) (bl, br []int) {
	n := len(c.Elems)
	for i, e := range c.Elems {
		if normalizeSide(e.Loc) != device.KindSmartNIC {
			continue
		}
		upCPU := i > 0 && normalizeSide(c.Elems[i-1].Loc) == device.KindCPU
		downCPU := i < n-1 && normalizeSide(c.Elems[i+1].Loc) == device.KindCPU
		head := i == 0
		tail := i == n-1
		switch mode {
		case BorderModePaper:
			if upCPU || head {
				bl = append(bl, i)
			}
			if downCPU || tail {
				br = append(br, i)
			}
		case BorderModeStrict:
			if upCPU {
				bl = append(bl, i)
			}
			if downCPU {
				br = append(br, i)
			}
		}
	}
	return bl, br
}

// Segments returns the maximal runs of consecutive same-side placements as
// (start, end) inclusive index pairs with their side, in chain order. Used
// by the simulator to schedule device visits and by reports.
type Segment struct {
	Start, End int
	Side       device.Kind
}

// Segments computes the placement runs of the chain.
func (c *Chain) Segments() []Segment {
	var segs []Segment
	for i, e := range c.Elems {
		side := normalizeSide(e.Loc)
		if len(segs) > 0 && segs[len(segs)-1].Side == side {
			segs[len(segs)-1].End = i
			continue
		}
		segs = append(segs, Segment{Start: i, End: i, Side: side})
	}
	return segs
}

// String renders the chain with placements, e.g.
// "LB(CPU) -> Logger(SmartNIC) -> Monitor(SmartNIC) -> Firewall(SmartNIC)".
func (c *Chain) String() string {
	var b strings.Builder
	for i, e := range c.Elems {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s(%v)", e.Name, e.Loc)
	}
	return b.String()
}

// PlacementSignature is a compact encoding of the placement vector (S/C/F
// per element), useful as a map key when memoizing evaluations.
func (c *Chain) PlacementSignature() string {
	var b strings.Builder
	for _, e := range c.Elems {
		switch e.Loc {
		case device.KindSmartNIC:
			b.WriteByte('S')
		case device.KindCPU:
			b.WriteByte('C')
		case device.KindFPGA:
			b.WriteByte('F')
		}
	}
	return b.String()
}
