// Package pcie models the PCIe interconnect between the SmartNIC and the
// host CPU — the cost PAM exists to avoid paying more of. The paper's §1
// measures "tens of microseconds" of added latency per extra traversal; the
// model decomposes a crossing into:
//
//   - a fixed propagation/setup latency (DMA descriptor post, doorbell,
//     completion interrupt) that dominates at NFV packet sizes, and
//   - a size-proportional serialization time at the link's effective
//     bandwidth, and
//   - optional FIFO queueing when crossings contend for the DMA engine.
//
// The same parameterization serves the discrete-event simulator (which adds
// queueing via sim.Server) and the live emulator (which sleeps).
package pcie

import (
	"fmt"
	"time"
)

// Link describes one direction of the SmartNIC↔CPU PCIe path.
type Link struct {
	// PropDelay is the fixed per-crossing latency.
	PropDelay time.Duration
	// BandwidthGbps is the effective serialization bandwidth; zero disables
	// the size-proportional term.
	BandwidthGbps float64
}

// DefaultLink returns the calibrated link of DESIGN.md §5: 43 µs fixed
// latency and 64 Gbps effective bandwidth (PCIe gen3 x8).
func DefaultLink() Link {
	return Link{PropDelay: 43 * time.Microsecond, BandwidthGbps: 64}
}

// SerializationTime returns the time the frame occupies the link.
//
//pam:hotpath
func (l Link) SerializationTime(frameBytes int) time.Duration {
	if l.BandwidthGbps <= 0 || frameBytes <= 0 {
		return 0
	}
	bits := float64(frameBytes) * 8
	sec := bits / (l.BandwidthGbps * 1e9)
	return time.Duration(sec * float64(time.Second))
}

// CrossingTime returns the total unloaded latency of one crossing for a
// frame: propagation plus serialization.
//
//pam:hotpath
func (l Link) CrossingTime(frameBytes int) time.Duration {
	return l.PropDelay + l.SerializationTime(frameBytes)
}

// EngineSeconds returns the DMA-engine occupancy of one burst crossing of n
// bytes, in seconds of the shared engine budget: the fixed per-burst
// descriptor overhead (PropDelay — post, doorbell, completion) plus the
// serialization time at the link slowed by scale. An emulator dividing its
// catalog rates by scale must multiply the size-proportional term by the
// same factor so that crossings saturate the engine at the same
// catalog-unit throughput the real link would.
//
//pam:hotpath
func (l Link) EngineSeconds(bytes int, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return l.PropDelay.Seconds() + l.SerializationTime(bytes).Seconds()*scale
}

// SerializationSeconds is SerializationTime at the link slowed by scale, as
// a float — the size-proportional share of EngineSeconds, used to meter
// offered crossing demand before a burst forms (the per-burst descriptor
// overhead is only knowable at admission).
//
//pam:hotpath
func (l Link) SerializationSeconds(bytes int, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return l.SerializationTime(bytes).Seconds() * scale
}

// Validate rejects nonsensical parameters.
func (l Link) Validate() error {
	if l.PropDelay < 0 {
		return fmt.Errorf("pcie: negative propagation delay %v", l.PropDelay)
	}
	if l.BandwidthGbps < 0 {
		return fmt.Errorf("pcie: negative bandwidth %v", l.BandwidthGbps)
	}
	return nil
}

// String describes the link.
func (l Link) String() string {
	return fmt.Sprintf("pcie(prop=%v bw=%.0fGbps)", l.PropDelay, l.BandwidthGbps)
}
