package pcie_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pcie"
)

func TestDefaultLinkIsTensOfMicroseconds(t *testing.T) {
	l := pcie.DefaultLink()
	ct := l.CrossingTime(1024)
	if ct < 10*time.Microsecond || ct > 100*time.Microsecond {
		t.Errorf("crossing = %v, want tens of µs (§1 of the paper)", ct)
	}
}

func TestSerializationTime(t *testing.T) {
	l := pcie.Link{BandwidthGbps: 64}
	// 1024B at 64 Gbps = 8192 bits / 64e9 = 128 ns.
	if got := l.SerializationTime(1024); got != 128*time.Nanosecond {
		t.Errorf("serialization = %v, want 128ns", got)
	}
	if got := l.SerializationTime(0); got != 0 {
		t.Errorf("zero bytes = %v", got)
	}
	if got := (pcie.Link{}).SerializationTime(1024); got != 0 {
		t.Errorf("zero bandwidth = %v", got)
	}
}

func TestCrossingTimeComposition(t *testing.T) {
	l := pcie.Link{PropDelay: 40 * time.Microsecond, BandwidthGbps: 64}
	want := 40*time.Microsecond + 128*time.Nanosecond
	if got := l.CrossingTime(1024); got != want {
		t.Errorf("crossing = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (pcie.Link{PropDelay: -time.Second}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	if err := (pcie.Link{BandwidthGbps: -1}).Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if err := pcie.DefaultLink().Validate(); err != nil {
		t.Errorf("default link invalid: %v", err)
	}
}

func TestEngineSeconds(t *testing.T) {
	const tol = 1e-12
	close := func(a, b float64) bool { return math.Abs(a-b) < tol }
	l := pcie.Link{PropDelay: 40 * time.Microsecond, BandwidthGbps: 64}
	// 1024B at 64 Gbps = 128 ns of serialization; at scale 1000 the scaled
	// link serializes 1000× slower, so one burst occupies the engine for
	// prop + 128 µs.
	if got, want := l.EngineSeconds(1024, 1000), 40e-6+128e-9*1000; !close(got, want) {
		t.Errorf("EngineSeconds = %v, want %v", got, want)
	}
	// Scale ≤ 0 falls back to the unscaled link.
	if got, want := l.EngineSeconds(1024, 0), 40e-6+128e-9; !close(got, want) {
		t.Errorf("unscaled EngineSeconds = %v, want %v", got, want)
	}
	// A zero link costs nothing: the gate degenerates to a no-op.
	if got := (pcie.Link{}).EngineSeconds(1024, 1000); got != 0 {
		t.Errorf("zero link EngineSeconds = %v, want 0", got)
	}
	// The serialization share excludes the per-burst descriptor overhead.
	if got, want := l.SerializationSeconds(1024, 1000), 128e-9*1000; !close(got, want) {
		t.Errorf("SerializationSeconds = %v, want %v", got, want)
	}
}

// Property: crossing time is monotone in frame size and always at least the
// propagation delay.
func TestPropertyCrossingMonotone(t *testing.T) {
	l := pcie.DefaultLink()
	f := func(a, b uint16) bool {
		x, y := int(a%1500)+1, int(b%1500)+1
		if x > y {
			x, y = y, x
		}
		cx, cy := l.CrossingTime(x), l.CrossingTime(y)
		return cx <= cy && cx >= l.PropDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
