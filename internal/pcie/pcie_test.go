package pcie_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pcie"
)

func TestDefaultLinkIsTensOfMicroseconds(t *testing.T) {
	l := pcie.DefaultLink()
	ct := l.CrossingTime(1024)
	if ct < 10*time.Microsecond || ct > 100*time.Microsecond {
		t.Errorf("crossing = %v, want tens of µs (§1 of the paper)", ct)
	}
}

func TestSerializationTime(t *testing.T) {
	l := pcie.Link{BandwidthGbps: 64}
	// 1024B at 64 Gbps = 8192 bits / 64e9 = 128 ns.
	if got := l.SerializationTime(1024); got != 128*time.Nanosecond {
		t.Errorf("serialization = %v, want 128ns", got)
	}
	if got := l.SerializationTime(0); got != 0 {
		t.Errorf("zero bytes = %v", got)
	}
	if got := (pcie.Link{}).SerializationTime(1024); got != 0 {
		t.Errorf("zero bandwidth = %v", got)
	}
}

func TestCrossingTimeComposition(t *testing.T) {
	l := pcie.Link{PropDelay: 40 * time.Microsecond, BandwidthGbps: 64}
	want := 40*time.Microsecond + 128*time.Nanosecond
	if got := l.CrossingTime(1024); got != want {
		t.Errorf("crossing = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (pcie.Link{PropDelay: -time.Second}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	if err := (pcie.Link{BandwidthGbps: -1}).Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if err := pcie.DefaultLink().Validate(); err != nil {
		t.Errorf("default link invalid: %v", err)
	}
}

// Property: crossing time is monotone in frame size and always at least the
// propagation delay.
func TestPropertyCrossingMonotone(t *testing.T) {
	l := pcie.DefaultLink()
	f := func(a, b uint16) bool {
		x, y := int(a%1500)+1, int(b%1500)+1
		if x > y {
			x, y = y, x
		}
		cx, cy := l.CrossingTime(x), l.CrossingTime(y)
		return cx <= cy && cx >= l.PropDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
