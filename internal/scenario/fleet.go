package scenario

// The fleet scale-out scenario: the paper's terminal case — both devices
// hot, no feasible Multi-PAM plan — resolved one tier up. Two emulated
// servers each run the full single-server closed loop (emul.Runtime +
// orchestrator.Live); a fleet.Coordinator owns the tenant→server placement
// registry and listens on a fleet.Transport. Server A hosts a NIC-heavy
// background, a CPU-heavy background, and a storm tenant whose ramp
// demand-overloads *both* devices at once, so the local loop cannot push
// any border vNF aside (every candidate move would overload the other
// device) and instead reports a structured escalation. The coordinator
// ranks A's tenants by their measured per-chain demand, picks the storm as
// the offender, verifies the calm server B can absorb it under the
// destination ceiling, and executes the staged cross-server chain
// migration: B's copy of the chain freezes, the registry flip reroutes the
// storm's traffic into the freeze buffers, A drains and snapshots, B
// restores and replays. A's detector then clears and its backgrounds
// recover while B's own background never stops flowing. The one runner
// backs the fleet_scaleout example, `pamctl -engine emul fleet`, and the
// -race fleet e2e test, so they all exercise an identical configuration
// (see DESIGN.md §4 and §5).

import (
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/fleet"
	"repro/internal/orchestrator"
	"repro/internal/traffic"
)

// Calibrated fleet defaults (provenance in DESIGN.md §5). Server A's
// steady backgrounds pin each device individually below threshold (NIC
// 1.4/2 = 0.70 via a Logger, CPU 2.8/4 = 0.70); the storm's ramp adds
// 1.3/2 = 0.65 NIC and 1.3/4 = 0.325 CPU demand, lifting A to NIC 1.35 /
// CPU 1.025 — the scale-out terminal case. Terminality must hold in the
// *model* too, or Multi-PAM finds a local escape instead of escalating:
// both loaded NIC residents are Loggers (θC = 4, the costliest CPU
// tenancy), so every Eq. 2 check lands the CPU ≥ 1 even on rescaled
// (measured-throughput) loads, and the idle chains' border elements carry
// no load, so moving one never satisfies Eq. 3 — the border set exhausts
// and the loop reports upward. Server B idles at NIC 0.094, so absorbing
// the storm lands it at NIC 0.744 / CPU 0.325, under the coordinator's
// 0.8 destination ceiling; and with the storm gone A falls back to
// 0.70/0.70, under the detector's 0.80 clear threshold — the escalate →
// migrate → clear arc the e2e asserts.
const (
	// FleetBusyNICGbps is server A's NIC-heavy background offered load.
	FleetBusyNICGbps = 1.4
	// FleetBusyCPUGbps is server A's CPU-heavy background offered load.
	FleetBusyCPUGbps = 2.8
	// FleetCalmNICGbps is server B's background offered load.
	FleetCalmNICGbps = 0.3
	// FleetStormCalmGbps is the storm tenant's pre-ramp offered load.
	FleetStormCalmGbps = 0.1
	// FleetStormGbps is the storm tenant's ramp offered load.
	FleetStormGbps = 1.3
	// FleetStormOnset is when the storm leaves its calm phase.
	FleetStormOnset = 400 * time.Millisecond
	// FleetTotal is the run length: the onset plus enough post-migration
	// windows for A's smoothed demand to decay below the clear threshold
	// and the recovered steady state to be measured.
	FleetTotal = 2 * time.Second
)

// The two emulated servers.
const (
	FleetServerA fleet.ServerID = "srv-a"
	FleetServerB fleet.ServerID = "srv-b"
)

// FleetStormIndex is the storm tenant's index in FleetTenants' population
// (and its chain index on both runtimes, since every server pre-provisions
// every tenant's chain in the same order).
const FleetStormIndex = 2

// FleetTenants returns the fleet population in canonical order: A's
// NIC-heavy Logger background, A's CPU-heavy Firewall background, the
// storm tenant (Logger on the NIC feeding a Firewall on the CPU — demand
// on both devices, so its ramp is what makes the hot spot terminal), and
// B's calm Monitor background. Each call builds fresh chains: the two
// runtimes must not share chain objects.
func FleetTenants(p Params) ([]Tenant, error) {
	busyNIC, err := chain.New("bg-nic-a",
		chain.Element{Name: "fna0", Type: device.TypeLogger, Loc: device.KindSmartNIC},
	)
	if err != nil {
		return nil, err
	}
	busyCPU, err := chain.New("bg-cpu-a",
		chain.Element{Name: "fca0", Type: device.TypeFirewall, Loc: device.KindCPU},
	)
	if err != nil {
		return nil, err
	}
	storm, err := chain.New("storm",
		chain.Element{Name: "fsl0", Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: "fsf0", Type: device.TypeFirewall, Loc: device.KindCPU},
	)
	if err != nil {
		return nil, err
	}
	calmNIC, err := chain.New("bg-nic-b",
		chain.Element{Name: "fnb0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		return nil, err
	}
	return []Tenant{
		{Chain: busyNIC, FrameSize: MultiFrameSize,
			Phases: []traffic.Phase{{RateGbps: FleetBusyNICGbps, Duration: FleetTotal}}},
		{Chain: busyCPU, FrameSize: MultiFrameSize,
			Phases: []traffic.Phase{{RateGbps: FleetBusyCPUGbps, Duration: FleetTotal}}},
		{Chain: storm, FrameSize: 512, Phases: []traffic.Phase{
			{RateGbps: FleetStormCalmGbps, Duration: FleetStormOnset},
			{RateGbps: FleetStormGbps, Duration: FleetTotal - FleetStormOnset},
		}},
		{Chain: calmNIC, FrameSize: MultiFrameSize,
			Phases: []traffic.Phase{{RateGbps: FleetCalmNICGbps, Duration: FleetTotal}}},
	}, nil
}

// tenantWeight estimates a tenant's placement weight as its peak summed
// demand utilization (Σ rate/θ over its elements at their current
// placement) — the same quantity the coordinator ranks offenders by.
func tenantWeight(cat device.Catalog, t Tenant) float64 {
	var rate float64
	for _, ph := range t.Phases {
		if ph.RateGbps > rate {
			rate = ph.RateGbps
		}
	}
	var w float64
	for i := 0; i < t.Chain.Len(); i++ {
		el := t.Chain.At(i)
		if th, err := cat.Lookup(el.Type, el.Loc); err == nil && th > 0 {
			w += rate / th.Float()
		}
	}
	return w
}

// FleetScaleOutResult is one fleet run's outcome.
type FleetScaleOutResult struct {
	// Tenants names the population (canonical order, = chain index on both
	// servers); Servers the fleet.
	Tenants []string
	Servers []fleet.ServerID
	// Samples is the fleet-wide telemetry timeline: each server's measured
	// window, tagged with its origin, in poll order.
	Samples []fleet.Sample
	// Events is each server's control-plane log.
	Events map[fleet.ServerID][]orchestrator.Event
	// Migrations is every cross-server migration the coordinator executed;
	// CoordinatorLog its human-readable event trail.
	Migrations     []fleet.Migration
	CoordinatorLog []string
	// Placements is the registry's final tenant→server map.
	Placements map[fleet.ServerID][]string
	// Escalations counts the source loop's scale-out reports.
	Escalations int
	// SourceCleared reports that A's detector saw the overload end after
	// the storm left (≥1 clear and not currently fired).
	SourceCleared bool
	// StormPreGbps is the storm's delivered throughput on A in the last
	// window before the handoff; StormPostGbps its mean delivered on B over
	// the run's final windows — the recovery the migration bought.
	StormPreGbps  float64
	StormPostGbps float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// RunFleetScaleOut drives the two-server fleet closed loop described in
// the package comment above. A nil selector selects core.MultiPAM.
func RunFleetScaleOut(p Params, lp LiveParams, sel core.MultiSelector) (*FleetScaleOutResult, error) {
	lp = lp.withDefaults(p)
	if sel == nil {
		sel = core.MultiPAM{}
	}
	// Fresh chains per server: both runtimes pre-provision the full
	// population so any tenant can land on either server.
	tenantsA, err := FleetTenants(p)
	if err != nil {
		return nil, err
	}
	tenantsB, err := FleetTenants(p)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(tenantsA))
	for i, t := range tenantsA {
		names[i] = t.Chain.Name
	}

	tr := fleet.NewChanTransport()
	defer tr.Close()
	type srv struct {
		id   fleet.ServerID
		rt   *emul.Runtime
		live *orchestrator.Live
	}
	servers := make([]*srv, 0, 2)
	for _, sc := range []struct {
		id      fleet.ServerID
		tenants []Tenant
	}{{FleetServerA, tenantsA}, {FleetServerB, tenantsB}} {
		rt, err := LiveMultiRuntime(p, lp, sc.tenants)
		if err != nil {
			return nil, err
		}
		rt.Start()
		defer rt.Close()
		live, err := orchestrator.NewLive(rt, orchestrator.Config{
			PollEvery:     lp.PollEvery,
			MultiSelector: sel,
			Detector:      lp.Detector,
			MaxMigrations: lp.MaxMigrations,
			Cooldown:      lp.Cooldown,
		}, View(nil, p, 0))
		if err != nil {
			return nil, err
		}
		if _, err := fleet.NewAgent(sc.id, live, tr); err != nil {
			return nil, err
		}
		servers = append(servers, &srv{id: sc.id, rt: rt, live: live})
	}

	reg, err := fleet.NewRegistry(FleetServerA, FleetServerB)
	if err != nil {
		return nil, err
	}
	// The scripted initial placement: everything but B's background on A —
	// the skew the escalation path exists to relieve.
	cat := device.Table1()
	for i, t := range tenantsA {
		reg.Assign(names[i], tenantWeight(cat, t))
		home := FleetServerA
		if i == len(tenantsA)-1 {
			home = FleetServerB
		}
		if err := reg.Move(names[i], home); err != nil {
			return nil, err
		}
	}
	coord := fleet.NewCoordinator(reg, tr, fleet.CoordinatorConfig{})
	coord.Start()

	drives, total, err := buildTenantDrives(p, lp, tenantsA, nil)
	if err != nil {
		return nil, err
	}

	// The pacer: the shared paceAndPoll loop, with two differences — every
	// send routes through the live registry (so the coordinator's flip
	// reroutes the storm mid-run), and every poll boundary polls both
	// servers' loops, tagging the samples fleet-wide.
	const slack = 500 * time.Microsecond
	byID := map[fleet.ServerID]*srv{}
	for _, s := range servers {
		byID[s.id] = s
	}
	var samples []fleet.Sample
	start := time.Now()
	nextPoll := lp.PollEvery
	for {
		now := time.Since(start)
		if now >= nextPoll {
			for _, s := range servers {
				s.live.Poll()
				if ls, ok := s.live.LastSample(); ok {
					samples = append(samples, fleet.Sample{Server: s.id, Load: ls})
				}
			}
			nextPoll += lp.PollEvery
			continue
		}
		best := -1
		for i := range drives {
			if drives[i].ok && (best < 0 || drives[i].next.At < drives[best].next.At) {
				best = i
			}
		}
		if best < 0 && now >= total {
			break
		}
		if best >= 0 && drives[best].next.At <= now+slack {
			d := &drives[best]
			if home, ok := reg.Lookup(names[best]); ok {
				s := byID[home]
				tmpl := d.synth.Frame(d.next.Flow, d.next.Size)
				frame := s.rt.AcquireFrame(len(tmpl))
				copy(frame, tmpl)
				s.rt.SendChain(best, frame) // false = ingress drop, already metered
			}
			d.next, d.ok = d.src.Next()
			continue
		}
		wake := nextPoll
		if best >= 0 && drives[best].next.At < wake {
			wake = drives[best].next.At
		}
		if best < 0 && total < wake {
			wake = total
		}
		if d := wake - now; d > 0 {
			time.Sleep(d)
		}
	}
	for _, s := range servers {
		s.rt.Drain()
	}
	elapsed := time.Since(start)

	// Quiesce the control tier before reading its state.
	if err := tr.Close(); err != nil {
		return nil, err
	}
	coord.Wait()

	res := &FleetScaleOutResult{
		Tenants:        names,
		Servers:        []fleet.ServerID{FleetServerA, FleetServerB},
		Samples:        samples,
		Events:         map[fleet.ServerID][]orchestrator.Event{},
		Migrations:     coord.Migrations(),
		CoordinatorLog: coord.Log(),
		Placements:     reg.Placements(),
		Elapsed:        elapsed,
	}
	for _, s := range servers {
		res.Events[s.id] = s.live.Events()
	}
	for _, e := range res.Events[FleetServerA] {
		if e.Kind == orchestrator.EventEscalated {
			res.Escalations++
		}
	}
	detA := byID[FleetServerA].live.Detector()
	res.SourceCleared = detA.Clears() >= 1 && !detA.Fired()
	res.StormPreGbps, res.StormPostGbps = stormRecovery(res)
	return res, nil
}

// stormRecovery extracts the storm tenant's delivered throughput around
// the handoff: the last window on the source before its loop recorded the
// departure, and the mean of the destination's final windows (at most
// recoveredWindows, the run-end boundary window dropped).
func stormRecovery(res *FleetScaleOutResult) (pre, post float64) {
	var migAt time.Duration = -1
	for _, e := range res.Events[FleetServerA] {
		if e.Kind == orchestrator.EventExternal {
			migAt = e.At
			break
		}
	}
	var onB []float64
	for _, s := range res.Samples {
		if FleetStormIndex >= len(s.Load.Chains) {
			continue
		}
		d := s.Load.Chains[FleetStormIndex].DeliveredGbps
		switch s.Server {
		case FleetServerA:
			if migAt >= 0 && s.Load.At < migAt {
				pre = d
			}
		case FleetServerB:
			onB = append(onB, d)
		}
	}
	if len(onB) > 1 {
		onB = onB[:len(onB)-1]
	}
	if len(onB) > recoveredWindows {
		onB = onB[len(onB)-recoveredWindows:]
	}
	for _, d := range onB {
		post += d
	}
	if len(onB) > 0 {
		post /= float64(len(onB))
	}
	return pre, post
}
