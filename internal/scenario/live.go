package scenario

// The live-hotspot scenario: the paper's closed loop run end to end on the
// batched execution emulator instead of the discrete-event simulator. Real
// frames ramp from a calm rate to LiveOverloadGbps; the shared per-device
// capacity gate collapses delivered throughput to the Figure-1 NIC
// residents' aggregate saturation while the control plane sees the
// SmartNIC's measured *demand* climb past the threshold, PAM pushes a
// border vNF aside via a real UNO-style migration, and delivery recovers
// to the offered rate. The one runner backs the hotspot_mitigation
// example, `pamctl -engine emul live`, and the -race control-loop tests,
// so they all exercise an identical configuration (see DESIGN.md §4).

import (
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// LiveParams parameterizes the wall-clock closed loop. Rates everywhere are
// in catalog (Table-1) units; Scale maps them onto what a development
// machine can actually push.
type LiveParams struct {
	// Scale divides catalog rates (and multiplies measurements back) so the
	// emulated devices saturate at development-machine rates. Default 1000.
	Scale float64
	// BatchSize and Workers configure the burst dataplane (defaults 8, 2).
	// The default batch is smaller than the emulator's usual 32: a burst is
	// admitted through the shared device gate in one transaction at a cost
	// of bytes/rate device-seconds, so at Scale 1000 a Logger burst of
	// 8×512 B already occupies the NIC for ~16 ms — larger batches stall
	// every co-resident element for tens of milliseconds per burst and blur
	// the 25 ms sampling windows (DESIGN.md §4).
	//
	// The multi-tenant runtime builders raise Workers to the tenant count
	// when it is smaller: the run-to-completion pool assigns a chain's
	// elements to worker chainIdx%Workers, and a worker that blocks inside
	// a saturated gate's FIFO carries every ring it owns with it. With one
	// worker per chain the only cross-tenant coupling is the gate itself —
	// exactly the physics the collapse assertions are calibrated against
	// (DESIGN.md §5).
	BatchSize int
	Workers   int
	// QueueDepth bounds each element's input queue (default 128 — shallow
	// enough that overload surfaces as loss within a few windows).
	QueueDepth int
	// FrameSize is the synthesized frame size in bytes (default 512).
	FrameSize int
	// Flows spreads traffic across this many synthetic flows (default 32),
	// exercising the flow-hash sharding of the dataplane.
	Flows int
	// PollEvery is the control loop's sampling period (default 25 ms).
	PollEvery time.Duration
	// Detector tunes overload detection. The zero value uses Consecutive 3
	// and Alpha 0.5: fast enough to catch a ramp within ~3 windows, smoothed
	// enough that the measured θcur at decision time is meaningful.
	Detector telemetry.DetectorConfig
	// MaxMigrations bounds executed plans (0 = unbounded).
	MaxMigrations int
	// Cooldown suppresses plans after a migration (default 2×PollEvery).
	Cooldown time.Duration
	// Phases is the offered-load schedule in catalog Gbps. Nil selects the
	// default hotspot ramp: calm at Params.ProbeGbps, then overload at
	// LiveOverloadGbps (not Params.OverloadGbps: with the emulator's shared
	// device gates the DES overload rate of 4 Gbps would demand-overload
	// the CPU too, turning the episode into the paper's scale-out terminal
	// case — see DESIGN.md §5).
	Phases []traffic.Phase
	// SleepPCIe makes the emulator really sleep PCIe crossings and state
	// transfers. Off by default: at Scale ≫ 1 real microsecond sleeps would
	// be out of proportion to the slowed-down dataplane.
	SleepPCIe bool
}

// LiveOverloadGbps is the live hotspot schedule's overload rate (provenance
// in DESIGN.md §5). It must sit between the shared-NIC saturation of the
// Figure-1 placement (≈1.096 Gbps: under the per-device capacity gate the
// whole chain collapses there, not at the Logger's private 2 Gbps) and the
// rate whose offered demand would overload the CPU as well — the LB's
// θC = 4 before the push, the LB+Logger's combined 1/(1/4+1/4) = 2 Gbps
// after it. At 1.8 Gbps the NIC's measured demand reaches ≈1.4 while the
// CPU stays ≤ 0.9 before and after the migration, so the episode detects,
// relieves and settles cleanly.
const LiveOverloadGbps = 1.8

// DefaultLiveParams returns the calibrated live-loop defaults (DESIGN.md §4).
func DefaultLiveParams() LiveParams {
	return LiveParams{
		Scale:      1000,
		BatchSize:  8,
		Workers:    2,
		QueueDepth: 128,
		FrameSize:  512,
		Flows:      32,
		PollEvery:  25 * time.Millisecond,
		Detector:   telemetry.DetectorConfig{Consecutive: 3, Alpha: 0.5},
	}
}

func (lp LiveParams) withDefaults(p Params) LiveParams {
	d := DefaultLiveParams()
	if lp.Scale <= 0 {
		lp.Scale = d.Scale
	}
	if lp.BatchSize <= 0 {
		lp.BatchSize = d.BatchSize
	}
	if lp.Workers <= 0 {
		lp.Workers = d.Workers
	}
	if lp.QueueDepth <= 0 {
		lp.QueueDepth = d.QueueDepth
	}
	if lp.FrameSize <= 0 {
		lp.FrameSize = d.FrameSize
	}
	if lp.Flows <= 0 {
		lp.Flows = d.Flows
	}
	if lp.PollEvery <= 0 {
		lp.PollEvery = d.PollEvery
	}
	if lp.Detector == (telemetry.DetectorConfig{}) {
		lp.Detector = d.Detector
	}
	if lp.Phases == nil {
		lp.Phases = []traffic.Phase{
			{RateGbps: p.ProbeGbps, Duration: 300 * time.Millisecond},
			{RateGbps: LiveOverloadGbps, Duration: 1200 * time.Millisecond},
		}
	}
	return lp
}

// LiveRuntime builds the Figure-1 chain on the batched emulator under the
// live parameters.
func LiveRuntime(p Params, lp LiveParams) (*emul.Runtime, error) {
	lp = lp.withDefaults(p)
	return emul.New(emul.Config{
		Chain:      Figure1Chain(),
		Catalog:    device.Table1(),
		Link:       pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps},
		Scale:      lp.Scale,
		QueueDepth: lp.QueueDepth,
		BatchSize:  lp.BatchSize,
		Workers:    lp.Workers,
		PoolFrames: true,
		SleepPCIe:  lp.SleepPCIe,
	})
}

// LiveHotspotResult is one closed-loop run's outcome.
type LiveHotspotResult struct {
	// Events is the control plane's log (migrations, skips, cooldowns).
	Events []orchestrator.Event
	// Samples is the measured telemetry timeline, one entry per poll.
	Samples []emul.LoadSample
	// Final is the runtime's end-of-run accounting.
	Final emul.Result
	// Placement is the chain after the run.
	Placement *chain.Chain
	// Migrations counts executed plans.
	Migrations int
	// PreGbps is the delivered throughput in the last full window before the
	// first migration (the hot spot's ceiling); zero when nothing migrated.
	PreGbps float64
	// PostGbps is the mean delivered throughput over the final windows (the
	// recovered ceiling under the same offered load for the default phases).
	PostGbps float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// RunLiveHotspot drives the closed loop: it paces the phase schedule against
// the wall clock into the emulator while polling the live control plane
// every PollEvery (the shared paceAndPoll driver with a single tenant).
func RunLiveHotspot(p Params, lp LiveParams, sel core.Selector) (*LiveHotspotResult, error) {
	lp = lp.withDefaults(p)
	rt, err := LiveRuntime(p, lp)
	if err != nil {
		return nil, err
	}
	rt.Start()
	defer rt.Close()

	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery:     lp.PollEvery,
		Selector:      sel,
		Detector:      lp.Detector,
		MaxMigrations: lp.MaxMigrations,
		Cooldown:      lp.Cooldown,
	}, View(Figure1Chain(), p, 0))
	if err != nil {
		return nil, err
	}

	// The single Figure-1 tenant, compiled by the shared drive builder (so
	// the hotspot run paces exactly like the multi-tenant ones).
	single := []Tenant{{Chain: Figure1Chain(), Phases: lp.Phases, FrameSize: lp.FrameSize, Flows: lp.Flows}}
	drives, total, err := buildTenantDrives(p, lp, single, nil)
	if err != nil {
		return nil, err
	}
	elapsed := paceAndPoll(rt, live, lp.PollEvery, drives, total)

	res := &LiveHotspotResult{
		Events:     live.Events(),
		Samples:    live.Samples(),
		Final:      rt.Results(),
		Placement:  rt.Placement(),
		Migrations: live.Migrations(),
		Elapsed:    elapsed,
	}
	res.PreGbps, res.PostGbps = recovery(res.Events, res.Samples)
	return res, nil
}

// recovery extracts the before/after delivered throughput around the first
// migration: the last full window before it, and the mean of the final
// quarter of windows after it (at most 4).
func recovery(events []orchestrator.Event, samples []emul.LoadSample) (pre, post float64) {
	var migAt time.Duration = -1
	for _, e := range events {
		if e.Kind == orchestrator.EventMigrated {
			migAt = e.At
			break
		}
	}
	if migAt < 0 || len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		if s.At < migAt {
			pre = s.DeliveredGbps
		}
	}
	tail := len(samples) / 4
	if tail > 4 {
		tail = 4
	}
	if tail < 1 {
		tail = 1
	}
	n := 0
	for _, s := range samples[len(samples)-tail:] {
		if s.At > migAt {
			post += s.DeliveredGbps
			n++
		}
	}
	if n > 0 {
		post /= float64(n)
	}
	return pre, post
}
