package scenario

// The live multi-tenant scenario: N tenants' service chains share one
// emulated SmartNIC+CPU pair on a single emul.Runtime. Background tenants
// run at steady load; one tenant ramps into overload, and although every
// chain stays individually feasible, the *summed* NIC demand crosses the
// threshold — the classic co-located-workload hot spot. Because the
// emulator throttles at shared per-device capacity gates, the overload is
// physical, not cosmetic: the ramping tenant's bursts consume device time
// the background tenants needed, so their delivered throughput genuinely
// collapses. The control plane detects the summed demand from measured
// meter windows aggregated across chains, Multi-PAM picks the globally
// cheapest border vNF (Eq. 1 over the union of every chain's borders,
// Eq. 2/3 on the aggregate utilizations) and pushes it aside via a real
// chain-scoped migration; with the ramp tenant's Logger off the NIC the
// background tenants recover to their calm-phase throughput. The one runner
// backs the multi_tenant example, `pamctl -engine emul multi`, and the
// -race multi-tenant tests, so they all exercise an identical configuration
// (see DESIGN.md §4 and §5).

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/traffic"
)

// Tenant is one hosted service chain and its offered-load schedule.
type Tenant struct {
	// Chain is the tenant's service chain; its name identifies the tenant
	// in reports and element names should be unique across tenants.
	Chain *chain.Chain
	// Phases is the tenant's offered-load schedule in catalog Gbps.
	Phases []traffic.Phase
	// FrameSize is the tenant's synthesized frame size in bytes (default
	// LiveParams.FrameSize).
	FrameSize int
	// Flows spreads the tenant's traffic across this many synthetic flows
	// (default LiveParams.Flows).
	Flows int
}

// Calibrated multi-tenant defaults (provenance in DESIGN.md §5): each
// background tenant offers a steady load far below its own chain's
// saturation, and the ramping tenant's overload rate is below *its* chain's
// feasibility ceiling too — only the sum across tenants crosses the
// SmartNIC's overload threshold, and the shared device gate turns that sum
// into a real collapse of the backgrounds' delivered throughput.
const (
	// MultiBackgroundGbps is each background tenant's steady offered load.
	MultiBackgroundGbps = 0.9
	// MultiCalmGbps is the ramping tenant's pre-overload offered load.
	MultiCalmGbps = 0.3
	// MultiOverloadGbps is the ramping tenant's overload offered load.
	// Raised from 1.5 when the worker pool landed (DESIGN §5, PR-8). The
	// pool holds exactly one in-flight burst per tenant in the gate FIFO
	// (one worker per chain), so the squeeze only bites once the ramp is
	// continuously queued at the gate. At 1.5 the ramp chain alone is
	// feasible on the NIC (Logger 1.5/2 + Firewall 1.5/10 ≈ 0.90): its
	// queue builds only through mutual waiting with the backgrounds, the
	// deep squeeze takes ≳150 ms to establish, and the pre-migration
	// windows measure the shallow transient. At 1.8 the ramp alone is
	// infeasible (burst cost ≈49 ms vs ≈45 ms inter-burst gap), its gate
	// backlog forms from the first overload window, and every FIFO round
	// the backgrounds wait behind a full ramp burst — the collapse the
	// e2e asserts. CPU feasibility after the push-aside is preserved:
	// 1.8 × (1/4 + 1/4) = 0.9 < 0.95.
	MultiOverloadGbps = 1.8
	// MultiFrameSize is the background tenants' frame size: small enough to
	// keep ≥8 frames per 25 ms sampling window at the background rate, so
	// per-window delivered throughput is smooth enough for the collapse and
	// recovery assertions.
	MultiFrameSize = 256
	// MultiRampFrameSize is the ramping tenant's frame size. Its bursts are
	// 5× the backgrounds' in bytes, so under contention the shared NIC gate
	// grants the ramp Logger disproportionate device time per FIFO round —
	// which is exactly how a heavy co-resident tenant squeezes its
	// neighbours on real hardware.
	MultiRampFrameSize = 1280
)

// DefaultTenants returns the calibrated multi-tenant population: two
// steady Monitor-only background tenants on the SmartNIC and one ramping
// tenant whose chain reproduces the Figure-1 geometry (LB on the CPU;
// Logger, Firewall on the NIC). The ramping tenant is the last entry.
func DefaultTenants(p Params) []Tenant {
	calm := 400 * time.Millisecond
	overload := 1100 * time.Millisecond
	total := calm + overload
	bgA, err := chain.New("bg-monitor-a",
		chain.Element{Name: "bgm0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		panic("scenario: bg-monitor-a chain invalid: " + err.Error()) // impossible by construction
	}
	bgB, err := chain.New("bg-monitor-b",
		chain.Element{Name: "bgn0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		panic("scenario: bg-monitor-b chain invalid: " + err.Error())
	}
	ramp, err := chain.New("ramp",
		chain.Element{Name: "rlb0", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: "rlog0", Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: "rfw0", Type: device.TypeFirewall, Loc: device.KindSmartNIC},
	)
	if err != nil {
		panic("scenario: ramp chain invalid: " + err.Error())
	}
	steady := []traffic.Phase{{RateGbps: MultiBackgroundGbps, Duration: total}}
	return []Tenant{
		{Chain: bgA, Phases: steady, FrameSize: MultiFrameSize},
		{Chain: bgB, Phases: steady, FrameSize: MultiFrameSize},
		{Chain: ramp, FrameSize: MultiRampFrameSize, Phases: []traffic.Phase{
			{RateGbps: MultiCalmGbps, Duration: calm},
			{RateGbps: MultiOverloadGbps, Duration: overload},
		}},
	}
}

// LiveMultiRuntime builds the tenants' chains on one batched emulator under
// the live parameters.
func LiveMultiRuntime(p Params, lp LiveParams, tenants []Tenant) (*emul.Runtime, error) {
	lp = lp.withDefaults(p)
	chains := make([]*chain.Chain, len(tenants))
	for i, t := range tenants {
		chains[i] = t.Chain
	}
	// One pool worker per tenant, so a worker blocked in a saturated gate's
	// FIFO stalls only its own chain's rings and the measured squeeze is the
	// gate's doing alone (see LiveParams.Workers).
	if lp.Workers < len(chains) {
		lp.Workers = len(chains)
	}
	return emul.New(emul.Config{
		Chains:     chains,
		Catalog:    device.Table1(),
		Link:       pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps},
		Scale:      lp.Scale,
		QueueDepth: lp.QueueDepth,
		BatchSize:  lp.BatchSize,
		Workers:    lp.Workers,
		PoolFrames: true,
		SleepPCIe:  lp.SleepPCIe,
	})
}

// LiveMultiTenantResult is one multi-tenant closed-loop run's outcome.
type LiveMultiTenantResult struct {
	// Tenants names the hosted chains, parallel to every per-tenant slice.
	Tenants []string
	// Events is the control plane's log (migrations, skips, cooldowns).
	Events []orchestrator.Event
	// Samples is the measured telemetry timeline, one entry per poll, with
	// per-tenant delivered rates in each sample's Chains.
	Samples []emul.LoadSample
	// Final is the runtime's aggregate end-of-run accounting; ChainFinal
	// the per-tenant breakdown.
	Final      emul.Result
	ChainFinal []emul.Result
	// Placements is each chain's placement after the run.
	Placements []*chain.Chain
	// Migrations counts executed plans.
	Migrations int
	// BaselineGbps is each tenant's mean delivered throughput over the calm
	// phase (the windows before the ramping tenant enters overload): the
	// steady state the collapse is measured against and recovery must
	// return to.
	BaselineGbps []float64
	// PreGbps and PostGbps are each tenant's mean delivered throughput over
	// the last full windows before the first migration (i.e. during the
	// summed overload, after the background collapse has set in) and over
	// the final windows of the run (both over at most recoveryWindows
	// windows); zero when nothing migrated.
	PreGbps  []float64
	PostGbps []float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// tenantDrive is one tenant's paced traffic state in the run loop.
type tenantDrive struct {
	src   traffic.Source
	synth *traffic.Synth
	next  traffic.Arrival
	ok    bool
}

// newDrive primes a drive on its source's first arrival.
func newDrive(src traffic.Source, synth *traffic.Synth) tenantDrive {
	d := tenantDrive{src: src, synth: synth}
	d.next, d.ok = src.Next()
	return d
}

// buildTenantDrives compiles every tenant's catalog-rate phase schedule
// into a primed wall-clock drive — the calm→ramp→poll boilerplate shared
// by every RunLive* runner: frame size and flow count defaulted from the
// live params, rates divided by Scale, seeds derived per tenant, and the
// returned total spanning the longest schedule. The optional override
// supplies a tenant's source directly (returning nil to fall through to
// the phase schedule); the stability runner uses it to swap the hover
// tenant's stochastic shape in while the backgrounds keep the standard
// ramp path.
func buildTenantDrives(p Params, lp LiveParams, tenants []Tenant,
	override func(i int, t Tenant, flows int) (traffic.Source, error)) ([]tenantDrive, time.Duration, error) {
	drives := make([]tenantDrive, len(tenants))
	var total time.Duration
	for i, t := range tenants {
		size, flows := t.FrameSize, t.Flows
		if size <= 0 {
			size = lp.FrameSize
		}
		if flows <= 0 {
			flows = lp.Flows
		}
		var dur time.Duration
		for _, ph := range t.Phases {
			dur += ph.Duration
		}
		if dur > total {
			total = dur
		}
		seed := p.Seed + int64(i)
		var src traffic.Source
		var err error
		if override != nil {
			src, err = override(i, t, flows)
			if err != nil {
				return nil, 0, fmt.Errorf("scenario: tenant %q: %w", t.Chain.Name, err)
			}
		}
		if src == nil {
			scaled := make([]traffic.Phase, len(t.Phases))
			for j, ph := range t.Phases {
				scaled[j] = traffic.Phase{RateGbps: ph.RateGbps / lp.Scale, Duration: ph.Duration}
			}
			src, err = traffic.NewRamp(scaled, traffic.FixedSize(size), traffic.ProcessCBR, uint64(flows), seed)
			if err != nil {
				return nil, 0, fmt.Errorf("scenario: tenant %q ramp: %w", t.Chain.Name, err)
			}
		}
		drives[i] = newDrive(src, traffic.NewSynth(flows, seed))
	}
	return drives, total, nil
}

// paceAndPoll is the wall-clock driver shared by RunLiveHotspot and
// RunLiveMultiTenant: it paces each drive's arrival schedule into its chain
// index on the shared runtime while polling the live control plane every
// pollEvery, single-threaded, so window boundaries are deterministic
// relative to the schedules even though the dataplane itself is concurrent.
// It runs until every source is exhausted and total has elapsed, drains the
// pipeline, and returns the wall-clock elapsed time.
func paceAndPoll(rt *emul.Runtime, live *orchestrator.Live, pollEvery time.Duration, drives []tenantDrive, total time.Duration) time.Duration {
	const slack = 500 * time.Microsecond
	start := time.Now()
	nextPoll := pollEvery
	for {
		now := time.Since(start)
		if now >= nextPoll {
			live.Poll()
			nextPoll += pollEvery
			continue
		}
		// The earliest pending arrival across tenants is the next send.
		best := -1
		for i := range drives {
			if drives[i].ok && (best < 0 || drives[i].next.At < drives[best].next.At) {
				best = i
			}
		}
		if best < 0 && now >= total {
			break
		}
		if best >= 0 && drives[best].next.At <= now+slack {
			d := &drives[best]
			tmpl := d.synth.Frame(d.next.Flow, d.next.Size)
			frame := rt.AcquireFrame(len(tmpl))
			copy(frame, tmpl)
			rt.SendChain(best, frame) // a false return is an ingress drop, already metered
			d.next, d.ok = d.src.Next()
			continue
		}
		wake := nextPoll
		if best >= 0 && drives[best].next.At < wake {
			wake = drives[best].next.At
		}
		if best < 0 && total < wake {
			wake = total
		}
		if d := wake - now; d > 0 {
			time.Sleep(d)
		}
	}
	rt.Drain()
	return time.Since(start)
}

// RunLiveMultiTenant drives the multi-tenant closed loop: every tenant's
// phase schedule is paced against the wall clock into its chain on one
// shared runtime while the live control plane polls every PollEvery,
// single-threaded, so window boundaries are deterministic relative to the
// schedules even though the dataplane itself is concurrent. A nil tenants
// slice selects DefaultTenants; a nil selector selects core.MultiPAM.
func RunLiveMultiTenant(p Params, lp LiveParams, tenants []Tenant, sel core.MultiSelector) (*LiveMultiTenantResult, error) {
	lp = lp.withDefaults(p)
	if tenants == nil {
		tenants = DefaultTenants(p)
	}
	rt, err := LiveMultiRuntime(p, lp, tenants)
	if err != nil {
		return nil, err
	}
	return runTenantLoop(p, lp, tenants, sel, rt, View(nil, p, 0))
}

// runTenantLoop is the shared driver behind RunLiveMultiTenant and
// RunLiveCrossingStorm: attach the live control plane to a started runtime
// under the given view template, pace every tenant's schedule, and collect
// the per-tenant collapse/recovery metrics. It owns (and closes) rt.
func runTenantLoop(p Params, lp LiveParams, tenants []Tenant, sel core.MultiSelector, rt *emul.Runtime, tmpl core.View) (*LiveMultiTenantResult, error) {
	if sel == nil {
		sel = core.MultiPAM{}
	}
	rt.Start()
	defer rt.Close()

	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery:     lp.PollEvery,
		MultiSelector: sel,
		Detector:      lp.Detector,
		MaxMigrations: lp.MaxMigrations,
		Cooldown:      lp.Cooldown,
	}, tmpl)
	if err != nil {
		return nil, err
	}

	drives, total, err := buildTenantDrives(p, lp, tenants, nil)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Chain.Name
	}

	elapsed := paceAndPoll(rt, live, lp.PollEvery, drives, total)

	res := &LiveMultiTenantResult{
		Tenants:    names,
		Events:     live.Events(),
		Samples:    live.Samples(),
		Final:      rt.Results(),
		ChainFinal: rt.ChainResults(),
		Placements: rt.Placements(),
		Migrations: live.Migrations(),
		Elapsed:    elapsed,
	}
	calmEnd := calmBoundary(tenants)
	res.PreGbps, res.PostGbps = recoveryPerTenant(res.Events, res.Samples, len(tenants), calmEnd)
	res.BaselineGbps = baselinePerTenant(res.Samples, len(tenants), calmEnd)
	return res, nil
}

// calmBoundary returns when the ramping tenant (the last one, by
// DefaultTenants convention) leaves its first phase — the calm/overload
// boundary the collapse and baseline metrics are anchored on. Zero when the
// population has no multi-phase last tenant.
func calmBoundary(tenants []Tenant) time.Duration {
	if len(tenants) == 0 {
		return 0
	}
	last := tenants[len(tenants)-1]
	if len(last.Phases) < 2 {
		return 0
	}
	return last.Phases[0].Duration
}

// baselinePerTenant computes each tenant's mean delivered throughput over
// the calm phase: every window that closed by calmEnd (see calmBoundary).
// A zero calmEnd means the population has no calm/overload boundary and
// yields zeros.
func baselinePerTenant(samples []emul.LoadSample, n int, calmEnd time.Duration) []float64 {
	out := make([]float64, n)
	if calmEnd <= 0 {
		return out
	}
	cnt := 0
	for _, s := range samples {
		if s.At > calmEnd {
			continue
		}
		cnt++
		for ti := range out {
			if ti < len(s.Chains) {
				out[ti] += s.Chains[ti].DeliveredGbps
			}
		}
	}
	if cnt > 0 {
		for ti := range out {
			out[ti] /= float64(cnt)
		}
	}
	return out
}

// recoveryWindows bounds how many sampling windows the per-tenant "during
// the overload" mean averages over: enough to smooth CBR quantization at
// the window boundary, few enough to stay inside the squeezed phase (the
// detector fires within a handful of windows, so there are rarely more).
const recoveryWindows = 4

// recoveredWindows bounds the post-migration mean. Wider than the pre-side
// window: the recovered steady state lasts hundreds of milliseconds, and a
// single OS-stall-stretched window near run end (delivery suppressed with
// no later catch-up window to balance it) must not eat the ±10% recovery
// bound on its own.
const recoveredWindows = 8

// recoveryPerTenant extracts each tenant's delivered throughput around the
// first migration: the mean of the last full windows before it — counting
// only windows that lie entirely past calmEnd, so the boundary window whose
// first half is still calm cannot dilute the measured collapse — and the
// mean of the run's final windows after it (at most recoveryWindows each).
func recoveryPerTenant(events []orchestrator.Event, samples []emul.LoadSample, n int, calmEnd time.Duration) (pre, post []float64) {
	pre = make([]float64, n)
	post = make([]float64, n)
	var migAt time.Duration = -1
	for _, e := range events {
		if e.Kind == orchestrator.EventMigrated {
			migAt = e.At
			break
		}
	}
	if migAt < 0 || len(samples) == 0 {
		return pre, post
	}
	mean := func(win []emul.LoadSample, ti int) float64 {
		var sum float64
		var cnt int
		for _, s := range win {
			if ti < len(s.Chains) {
				sum += s.Chains[ti].DeliveredGbps
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	var before, after []emul.LoadSample
	for _, s := range samples {
		if s.At < migAt {
			// Skip windows that touch the calm phase *and* the first full
			// overload window: the device gate spends its banked burst
			// (Config.DeviceBurst) right after onset, so that window still
			// measures calm-phase service, not steady contention.
			if s.At-s.Window >= calmEnd+s.Window {
				before = append(before, s)
			}
		} else if s.At > migAt {
			after = append(after, s)
		}
	}
	if len(before) > recoveryWindows {
		before = before[len(before)-recoveryWindows:]
	}
	// Drop the run's boundary window: the senders and the poll loop stop
	// together, so the final sample can cover a partial-traffic (or
	// stall-stretched) window whose delivered rate is mechanically low.
	if len(after) > 1 {
		after = after[:len(after)-1]
	}
	if len(after) > recoveredWindows {
		after = after[len(after)-recoveredWindows:]
	}
	for ti := 0; ti < n; ti++ {
		pre[ti] = mean(before, ti)
		post[ti] = mean(after, ti)
	}
	return pre, post
}
