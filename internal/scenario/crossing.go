package scenario

// The live crossing-storm scenario: the overload lives on the PCIe
// interconnect, not on either device. One "split" tenant weaves
// CPU→NIC→CPU — four DMA crossings per frame — while crossing-heavy
// background tenants run entirely on the CPU, paying ingress and egress
// crossings for every frame. Individually and even summed, the SmartNIC
// and CPU stay comfortably feasible; only the shared DMA engine saturates,
// and because the emulator charges every crossing burst against one
// link-seconds budget (emul dmagate), the saturation is physical: crossing
// tenants' delivered throughput collapses while the LoadSampler's measured
// DMA demand keeps climbing. The detector fires on that demand, Multi-PAM
// sees the crossing-bound overload through MeasuredDMAUtil, and its border
// migration — which never adds crossings — pushes the split tenant's
// Logger to the CPU, merging the two CPU segments and halving the split
// chain's crossings. The engine cools and every crossing tenant recovers.
// The one runner backs the crossing_storm example, `pamctl -engine emul
// crossing`, and the e2e test (see DESIGN.md §4 and §5).

import (
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/pcie"
	"repro/internal/traffic"
)

// Calibrated crossing-storm defaults (provenance in DESIGN.md §5): both
// devices stay far below threshold at every phase; only the summed crossing
// load saturates the DMA engine, and only during the split tenant's
// overload phase.
const (
	// CrossLinkGbps is the storm's DMA-engine budget (the emulated link's
	// effective bandwidth): small enough that the calibrated rates saturate
	// it while the devices idle.
	CrossLinkGbps = 4.4
	// CrossBackgroundGbps is each background tenant's steady offered load.
	CrossBackgroundGbps = 0.4
	// CrossSplitCalmGbps is the split tenant's pre-overload offered load.
	CrossSplitCalmGbps = 0.25
	// CrossSplitOverloadGbps is the split tenant's overload offered load.
	CrossSplitOverloadGbps = 1.0
	// CrossFrameSize is every storm tenant's frame size.
	CrossFrameSize = 256
)

// SplitChainName and the split tenant's element names.
const (
	SplitChainName  = "split"
	NameSplitLB0    = "slb0"
	NameSplitLogger = "slog0"
	NameSplitLB1    = "slb1"
)

// CrossingTenants returns the calibrated storm population: two CPU-resident
// Monitor tenants whose every frame crosses PCIe twice (ingress and
// egress), plus the split tenant — LB on the CPU, Logger on the NIC, LB on
// the CPU again, four crossings per frame — ramping into overload last, by
// the DefaultTenants convention.
func CrossingTenants(p Params) []Tenant {
	calm := 400 * time.Millisecond
	overload := 1100 * time.Millisecond
	total := calm + overload
	bgA, err := chain.New("bg-xing-a",
		chain.Element{Name: "xma0", Type: device.TypeMonitor, Loc: device.KindCPU},
	)
	if err != nil {
		panic("scenario: bg-xing-a chain invalid: " + err.Error()) // impossible by construction
	}
	bgB, err := chain.New("bg-xing-b",
		chain.Element{Name: "xmb0", Type: device.TypeMonitor, Loc: device.KindCPU},
	)
	if err != nil {
		panic("scenario: bg-xing-b chain invalid: " + err.Error())
	}
	split, err := chain.New(SplitChainName,
		chain.Element{Name: NameSplitLB0, Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: NameSplitLogger, Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: NameSplitLB1, Type: device.TypeLoadBalancer, Loc: device.KindCPU},
	)
	if err != nil {
		panic("scenario: split chain invalid: " + err.Error())
	}
	steady := []traffic.Phase{{RateGbps: CrossBackgroundGbps, Duration: total}}
	return []Tenant{
		{Chain: bgA, Phases: steady, FrameSize: CrossFrameSize},
		{Chain: bgB, Phases: steady, FrameSize: CrossFrameSize},
		{Chain: split, FrameSize: CrossFrameSize, Phases: []traffic.Phase{
			{RateGbps: CrossSplitCalmGbps, Duration: calm},
			{RateGbps: CrossSplitOverloadGbps, Duration: overload},
		}},
	}
}

// CrossView is the storm's selection-view template: the standard devices
// and catalog, but with the NIC's modelled DMA-engine capacity pinned to
// the emulated link's budget, so the fluid model's post-migration crossing
// estimate (Multi-PAM's termination check) predicts the same engine the
// dataplane actually charges.
func CrossView(p Params) core.View {
	v := View(nil, p, 0)
	v.NIC.DMAEngineGbps = CrossLinkGbps
	return v
}

// LiveCrossingRuntime builds the storm tenants' chains on one batched
// emulator whose PCIe link carries the storm's constrained DMA budget.
func LiveCrossingRuntime(p Params, lp LiveParams, tenants []Tenant) (*emul.Runtime, error) {
	lp = lp.withDefaults(p)
	chains := make([]*chain.Chain, len(tenants))
	for i, t := range tenants {
		chains[i] = t.Chain
	}
	// One pool worker per tenant — same tenancy isolation as
	// LiveMultiRuntime, here so a worker parked in the DMA gate's FIFO
	// cannot stall a co-resident tenant's rings.
	if lp.Workers < len(chains) {
		lp.Workers = len(chains)
	}
	return emul.New(emul.Config{
		Chains:     chains,
		Catalog:    device.Table1(),
		Link:       pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: CrossLinkGbps},
		Scale:      lp.Scale,
		QueueDepth: lp.QueueDepth,
		BatchSize:  lp.BatchSize,
		Workers:    lp.Workers,
		PoolFrames: true,
		SleepPCIe:  lp.SleepPCIe,
	})
}

// RunLiveCrossingStorm drives the crossing-bound closed loop end to end on
// the live emulator: paced storm traffic, measured telemetry (the DMA
// demand visible per direction), detection, a crossing-reducing Multi-PAM
// push-aside executed as a real chain-scoped migration, and recovery. A
// nil tenants slice selects CrossingTenants; a nil selector core.MultiPAM.
func RunLiveCrossingStorm(p Params, lp LiveParams, tenants []Tenant, sel core.MultiSelector) (*LiveMultiTenantResult, error) {
	lp = lp.withDefaults(p)
	if tenants == nil {
		tenants = CrossingTenants(p)
	}
	rt, err := LiveCrossingRuntime(p, lp, tenants)
	if err != nil {
		return nil, err
	}
	return runTenantLoop(p, lp, tenants, sel, rt, CrossView(p))
}
