package scenario_test

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/scenario"
)

func TestFigure1ChainShape(t *testing.T) {
	c := scenario.Figure1Chain()
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Crossings() != 2 {
		t.Errorf("crossings = %d, want 2", c.Crossings())
	}
	// §2's border example: left border Logger, right border Firewall.
	bl, br := c.Borders(chain.BorderModePaper)
	if len(bl) != 1 || c.At(bl[0]).Name != scenario.NameLogger {
		t.Errorf("BL = %v", bl)
	}
	if len(br) != 1 || c.At(br[0]).Name != scenario.NameFirewall {
		t.Errorf("BR = %v", br)
	}
	if c.At(0).Loc != device.KindCPU {
		t.Error("LB must start on the CPU")
	}
}

func TestLongChainWeaves(t *testing.T) {
	c := scenario.LongChain()
	if c.Crossings() < 4 {
		t.Errorf("crossings = %d, want a multi-segment weave", c.Crossings())
	}
	bl, br := c.Borders(chain.BorderModePaper)
	if len(bl)+len(br) < 3 {
		t.Errorf("borders = %v/%v, want multiple per §2", bl, br)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := scenario.DefaultParams()
	if p.PCIeLatency <= 0 || p.NFOverhead <= 0 || p.QueueCapacity <= 0 {
		t.Errorf("params not positive: %+v", p)
	}
	if len(p.PacketSizes) == 0 || p.PacketSizes[0] != 64 || p.PacketSizes[len(p.PacketSizes)-1] != 1500 {
		t.Errorf("sweep = %v, want 64..1500 per §3", p.PacketSizes)
	}
	if p.ProbeGbps >= p.OverloadGbps {
		t.Error("probe load must be below overload load")
	}
}

func TestViewWiring(t *testing.T) {
	p := scenario.DefaultParams()
	v := scenario.View(scenario.Figure1Chain(), p, 1.5)
	if v.Throughput != 1.5 {
		t.Errorf("throughput = %v", v.Throughput)
	}
	if v.NIC.Kind != device.KindSmartNIC || v.CPU.Kind != device.KindCPU {
		t.Error("device kinds wrong")
	}
	if v.NIC.DMAEngineGbps != p.DMAEngineGbps {
		t.Error("DMA engine capacity not wired")
	}
	if _, ok := v.Catalog[device.TypeLogger]; !ok {
		t.Error("catalog missing Table 1 entries")
	}
	ve := scenario.ViewExtended(scenario.LongChain(), p, 1)
	if _, ok := ve.Catalog[device.TypeDPI]; !ok {
		t.Error("extended catalog missing DPI")
	}
}
