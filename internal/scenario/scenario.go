// Package scenario defines the canonical experimental setups of the
// reproduction: the Figure-1 service chain, device parameters calibrated in
// DESIGN.md §5, and the offered-load/packet-size sweeps behind each paper
// artifact. Keeping them in one place guarantees the CLI tools, examples,
// benches and tests all run identical configurations.
package scenario

import (
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
)

// Element instance names of the Figure-1 chain.
const (
	NameLB       = "lb0"
	NameLogger   = "logger0"
	NameMonitor  = "monitor0"
	NameFirewall = "fw0"
)

// Params carries every calibrated constant of the reproduction. See
// DESIGN.md §5 for the provenance of each default.
type Params struct {
	// PCIeLatency is the one-way per-crossing latency ("tens of
	// microseconds", §1 of the paper).
	PCIeLatency time.Duration
	// PCIeBandwidth is the effective per-direction PCIe bandwidth used for
	// the size-proportional serialization term.
	PCIeBandwidthGbps float64
	// NFOverhead is the per-vNF pipeline (virtualization) latency added to
	// every packet, identical on NIC and CPU per DESIGN.md §5.
	NFOverhead time.Duration
	// DMAEngineGbps is the aggregate capacity of the SmartNIC's DMA
	// engines, a hardware resource separate from the NPU microengines;
	// each PCIe crossing consumes θ/DMAEngineGbps of it.
	DMAEngineGbps device.Gbps
	// QueueCapacity bounds each device queue in packets; arrivals beyond it
	// are dropped (tail drop), which is how overload manifests.
	QueueCapacity int
	// ProbeGbps is the offered load of the latency probe (Figure 2(a)):
	// below every placement's saturation so queueing stays moderate.
	ProbeGbps float64
	// OverloadGbps is the offered load that creates the hot spot
	// (Figure 2(b) and the trigger for migration).
	OverloadGbps float64
	// PacketSizes is the frame-size sweep of §3 (64B to 1500B).
	PacketSizes []int
	// Seed makes every randomized component deterministic.
	Seed int64
}

// DefaultParams returns the calibrated defaults of DESIGN.md §5.
func DefaultParams() Params {
	return Params{
		PCIeLatency:       43 * time.Microsecond,
		PCIeBandwidthGbps: 64, // PCIe gen3 x8 effective
		NFOverhead:        75 * time.Microsecond,
		DMAEngineGbps:     40,
		QueueCapacity:     4096, // ≈6 MB of NIC packet buffer at 1500B
		ProbeGbps:         0.8,
		OverloadGbps:      4.0,
		PacketSizes:       []int{64, 128, 256, 512, 1024, 1500},
		Seed:              42,
	}
}

// Figure1Chain returns the paper's service chain (derived from NFP [7]) in
// its pre-migration placement: the Load Balancer on the CPU and Logger,
// Monitor, Firewall on the SmartNIC. Packet path:
//
//	NIC ingress → PCIe → LB (CPU) → PCIe → Logger → Monitor → Firewall → egress
//
// giving 2 baseline PCIe crossings, left border {Logger} and right border
// {Firewall} exactly as §2 describes.
func Figure1Chain() *chain.Chain {
	c, err := chain.New("figure1",
		chain.Element{Name: NameLB, Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: NameLogger, Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: NameMonitor, Type: device.TypeMonitor, Loc: device.KindSmartNIC},
		chain.Element{Name: NameFirewall, Type: device.TypeFirewall, Loc: device.KindSmartNIC},
	)
	if err != nil {
		panic("scenario: figure1 chain invalid: " + err.Error()) // impossible by construction
	}
	return c
}

// LongChain returns a six-NF chain that weaves across the PCIe boundary
// twice, producing multiple border vNFs per side; used by tests and the
// multi-segment example ("there may be multiple border vNFs in a service
// chain", §2).
func LongChain() *chain.Chain {
	c, err := chain.New("long",
		chain.Element{Name: "rl0", Type: device.TypeRateLimiter, Loc: device.KindSmartNIC},
		chain.Element{Name: "lb0", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: "log0", Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: "mon0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
		chain.Element{Name: "dpi0", Type: device.TypeDPI, Loc: device.KindCPU},
		chain.Element{Name: "fw0", Type: device.TypeFirewall, Loc: device.KindSmartNIC},
	)
	if err != nil {
		panic("scenario: long chain invalid: " + err.Error())
	}
	return c
}

// Devices returns the SmartNIC and CPU device models under params.
func Devices(p Params) (nic, cpu device.Device) {
	nic = device.Device{Name: "agilio-cx", Kind: device.KindSmartNIC, DMAEngineGbps: p.DMAEngineGbps}
	cpu = device.Device{Name: "xeon-e5", Kind: device.KindCPU}
	return nic, cpu
}

// View assembles a core.View for the given chain at the measured throughput.
func View(c *chain.Chain, p Params, throughput device.Gbps) core.View {
	nic, cpu := Devices(p)
	return core.View{
		Chain:      c,
		Catalog:    device.Table1(),
		Throughput: throughput,
		NIC:        nic,
		CPU:        cpu,
		BorderMode: chain.BorderModePaper,
	}
}

// ViewExtended is View with the extended catalog (for chains using the
// additional NF types).
func ViewExtended(c *chain.Chain, p Params, throughput device.Gbps) core.View {
	v := View(c, p, throughput)
	v.Catalog = device.ExtendedCatalog()
	return v
}
