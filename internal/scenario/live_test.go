package scenario_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/orchestrator"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// TestLiveHotspotClosedLoop is the acceptance run of the live control plane:
// measured meter windows ramp into overload on the batched emulator, PAM
// fires exactly once and pushes the Figure-1 border vNF (logger0) aside via
// a real migration, a second overload episode inside the cooldown is
// suppressed, and served throughput recovers past the pre-migration
// ceiling. With the shared per-device capacity gates the pre-migration
// ceiling is the *whole NIC's* saturation under the Figure-1 residents
// (≈1.1 Gbps — no longer the Logger's private 2 Gbps), detection rides on
// measured demand (offered/θ, which keeps climbing while delivered
// collapses), and recovery lifts delivered to the offered rate. Wall-clock
// (about 1.7 s) and concurrent, so it doubles as a race-detector workout
// for the whole stack.
func TestLiveHotspotClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock closed-loop run")
	}
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()
	lp.Cooldown = time.Hour // any later episode must be suppressed
	lp.Phases = []traffic.Phase{
		{RateGbps: p.ProbeGbps, Duration: 250 * time.Millisecond},
		{RateGbps: scenario.LiveOverloadGbps, Duration: 700 * time.Millisecond},
		{RateGbps: 0.3, Duration: 300 * time.Millisecond}, // clears the detector
		// The post-migration placement absorbs LiveOverloadGbps cleanly
		// (that is what recovery means under shared gates), and its CPU-side
		// saturation (LB+Logger, 2 Gbps) now caps what can even reach the
		// NIC — so the second episode is driven by the DES overload rate,
		// whose LB-queue overflow fires the detector's loss trigger.
		{RateGbps: p.OverloadGbps, Duration: 500 * time.Millisecond},
	}

	res, err := scenario.RunLiveHotspot(p, lp, core.PAM{})
	if err != nil {
		t.Fatal(err)
	}

	var migrated, cooldowns int
	var mig orchestrator.Event
	for _, e := range res.Events {
		switch e.Kind {
		case orchestrator.EventMigrated:
			if migrated == 0 {
				mig = e
			}
			migrated++
		case orchestrator.EventCooldown:
			cooldowns++
		}
	}
	if migrated != 1 {
		t.Fatalf("migrations = %d, want exactly 1\nevents:\n%+v", migrated, res.Events)
	}
	if res.Migrations != 1 {
		t.Errorf("result.Migrations = %d, want 1", res.Migrations)
	}
	// The plan must be PAM pushing the Figure-1 border vNF aside.
	if mig.Plan.Selector != "PAM" || len(mig.Plan.Steps) != 1 ||
		mig.Plan.Steps[0].Step.Element != scenario.NameLogger ||
		mig.Plan.Steps[0].Step.To != device.KindCPU {
		t.Errorf("plan = %v, want PAM migrating %s to the CPU", mig.Plan, scenario.NameLogger)
	}
	if mig.Downtime <= 0 {
		t.Error("no measured state-transfer downtime")
	}
	// And it must be applied to the running dataplane.
	i := res.Placement.Index(scenario.NameLogger)
	if i < 0 || res.Placement.At(i).Loc != device.KindCPU {
		t.Errorf("final placement %v does not have %s on the CPU", res.Placement, scenario.NameLogger)
	}
	// The second overload episode (after the calm phase re-arms the
	// detector) must be suppressed by the cooldown, not executed.
	if cooldowns == 0 {
		t.Errorf("no cooldown suppression recorded\nevents:\n%+v", res.Events)
	}

	// Recovery: pre-migration delivery is capped by the shared NIC gate at
	// the Figure-1 residents' aggregate saturation, 1/(1/2+1/3.2+1/10) ≈
	// 1.1 Gbps; with the Logger pushed aside the chain can carry the full
	// 1.8 Gbps offered load (NIC ≈ 2.4, CPU = 2.0 post-move saturations).
	// Generous margins keep a loaded CI machine from flaking.
	if res.PreGbps <= 0 || res.PreGbps > 1.5 {
		t.Errorf("pre-migration delivered %.2f Gbps, want (0, 1.5] (shared-NIC-capped)", res.PreGbps)
	}
	if res.PostGbps < 1.5 {
		t.Errorf("post-migration delivered %.2f Gbps, want >= 1.5 (recovered)", res.PostGbps)
	}
	if res.PostGbps < res.PreGbps*1.15 {
		t.Errorf("throughput did not recover: %.2f -> %.2f Gbps", res.PreGbps, res.PostGbps)
	}
	if len(res.Samples) < 10 {
		t.Errorf("telemetry timeline too short: %d windows", len(res.Samples))
	}
}
