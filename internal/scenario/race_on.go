//go:build race

package scenario

// RaceInstrumented reports whether this binary was built with the race
// detector. The live closed-loop scenarios are wall-clock physics on
// ~25 ms sampling windows; race instrumentation slows the dataplane's
// compute by roughly an order of magnitude, which stretches windows and
// lumps burst completions until per-window delivered-throughput readings
// stop being meaningful (a squeezed tenant can read above its offered
// rate in a catch-up window). Tests use this to keep every structural
// assertion — migrations, plans, placements, demand detection, relief —
// while skipping only the fine-grained per-tenant throughput bounds that
// the non-race run asserts precisely.
const RaceInstrumented = true
