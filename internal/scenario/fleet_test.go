package scenario_test

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/scenario"
)

// tenantSeries extracts one tenant's per-window delivered throughput on one
// server, in poll order, alongside the window end times.
func tenantSeries(res *scenario.FleetScaleOutResult, srv fleet.ServerID, ti int) (rates []float64, at []time.Duration) {
	for _, s := range res.Samples {
		if s.Server != srv || ti >= len(s.Load.Chains) {
			continue
		}
		rates = append(rates, s.Load.Chains[ti].DeliveredGbps)
		at = append(at, s.Load.At)
	}
	return rates, at
}

// rollingMin returns the smallest mean over any `win` consecutive samples —
// the sustained-delivery floor (single windows are too granular: a tenant's
// CBR bursts need not align with 25 ms sampling windows).
func rollingMin(rates []float64, win int) float64 {
	if len(rates) < win {
		win = len(rates)
	}
	if win == 0 {
		return 0
	}
	min := -1.0
	for i := 0; i+win <= len(rates); i++ {
		var sum float64
		for _, r := range rates[i : i+win] {
			sum += r
		}
		if m := sum / float64(win); min < 0 || m < min {
			min = m
		}
	}
	return min
}

func tailMean(rates []float64, n int) float64 {
	if len(rates) > 1 {
		rates = rates[:len(rates)-1] // run-end boundary window
	}
	if len(rates) > n {
		rates = rates[len(rates)-n:]
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if len(rates) == 0 {
		return 0
	}
	return sum / float64(len(rates))
}

// TestFleetScaleOut is the fleet tier's -race e2e: server A's storm ramp
// overloads both devices at once (the scale-out terminal case), the local
// loop escalates instead of dead-ending, the coordinator migrates the storm
// to the calm server B over the transport, A's detector clears, the storm's
// delivered throughput recovers on B, and the co-resident backgrounds on
// both servers keep flowing throughout.
func TestFleetScaleOut(t *testing.T) {
	p := scenario.DefaultParams()
	res, err := scenario.RunFleetScaleOut(p, scenario.LiveParams{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	diag := func() string {
		out := "\ncoordinator log:\n"
		for _, l := range res.CoordinatorLog {
			out += "  " + l + "\n"
		}
		out += "server A events:\n"
		for _, e := range res.Events[scenario.FleetServerA] {
			out += "  " + e.Format(time.Millisecond) + "\n"
		}
		return out
	}

	// The terminal case was reported upward, not swallowed.
	if res.Escalations == 0 {
		t.Fatalf("server A never escalated%s", diag())
	}
	// The coordinator migrated the storm A -> B through the transport.
	if len(res.Migrations) != 1 {
		t.Fatalf("migrations = %v, want exactly one%s", res.Migrations, diag())
	}
	m := res.Migrations[0]
	if m.Tenant != "storm" || m.From != scenario.FleetServerA || m.To != scenario.FleetServerB {
		t.Errorf("migration %v, want storm srv-a -> srv-b", m)
	}
	if m.StateBytes == 0 {
		t.Error("no NF state shipped with the storm chain")
	}
	if home, ok := res.Placements[scenario.FleetServerB]; !ok || len(home) != 2 {
		t.Errorf("final placements %v, want storm joined bg-nic-b on srv-b", res.Placements)
	}
	// The source detector saw the overload end.
	if !res.SourceCleared {
		t.Errorf("server A's detector never cleared%s", diag())
	}
	// The storm's delivered throughput recovered on B: during A's collapse
	// both devices were saturated, so its pre-handoff delivery was capped
	// well below offered; on B the chain is feasible again.
	if res.StormPostGbps < 0.75*scenario.FleetStormGbps {
		t.Errorf("storm delivered %.3f Gbps on srv-b, want >= 75%% of the %.1f offered%s",
			res.StormPostGbps, float64(scenario.FleetStormGbps), diag())
	}
	if res.StormPostGbps <= res.StormPreGbps {
		t.Errorf("storm did not recover: pre %.3f -> post %.3f Gbps%s",
			res.StormPreGbps, res.StormPostGbps, diag())
	}

	// Co-resident backgrounds on both servers keep flowing. B's background
	// shares its NIC with the arriving storm yet stays feasible; A's
	// backgrounds are squeezed during the collapse but never starve, and
	// recover to near baseline once the storm leaves.
	for _, tc := range []struct {
		name     string
		srv      fleet.ServerID
		ti       int
		offered  float64
		floor    float64 // sustained rolling-mean floor over the whole run
		recovery float64 // tail mean as a fraction of offered
	}{
		{"bg-nic-b", scenario.FleetServerB, 3, scenario.FleetCalmNICGbps, 0.10, 0.70},
		{"bg-nic-a", scenario.FleetServerA, 0, scenario.FleetBusyNICGbps, 0.05, 0.70},
		{"bg-cpu-a", scenario.FleetServerA, 1, scenario.FleetBusyCPUGbps, 0.05, 0.70},
	} {
		rates, _ := tenantSeries(res, tc.srv, tc.ti)
		if len(rates) < 8 {
			t.Fatalf("%s: only %d windows sampled", tc.name, len(rates))
		}
		interior := rates[1 : len(rates)-1] // boundary windows are partial
		if m := rollingMin(interior, 4); m < tc.floor {
			t.Errorf("%s sustained delivery dropped to %.3f Gbps, floor %.2f%s",
				tc.name, m, tc.floor, diag())
		}
		if tm := tailMean(rates, 8); tm < tc.recovery*tc.offered {
			t.Errorf("%s tail mean %.3f Gbps, want >= %.0f%% of %.2f offered%s",
				tc.name, tm, 100*tc.recovery, tc.offered, diag())
		}
	}
}
