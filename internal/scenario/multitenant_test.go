package scenario_test

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/orchestrator"
	"repro/internal/scenario"
)

// TestLiveMultiTenantClosedLoop is the acceptance run of the multi-tenant
// control plane over the shared-capacity dataplane: three tenants share one
// emulated SmartNIC+CPU pair, the background tenants hold steady while one
// tenant ramps, and although every chain is individually feasible the
// summed NIC *demand* crosses the threshold. Because the emulator throttles
// at one capacity gate per device, the overload is physical: the background
// tenants' delivered throughput must genuinely collapse (≥20% below their
// calm-phase baseline) while the ramp tenant's bursts consume the NIC's
// budget, and must recover to within 10% of the baseline once Multi-PAM
// pushes the ramp tenant's border vNF aside via a real chain-scoped
// migration. Wall-clock and concurrent, so it doubles as a race-detector
// workout for the multi-chain stack.
func TestLiveMultiTenantClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock closed-loop run")
	}
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()

	res, err := scenario.RunLiveMultiTenant(p, lp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var migrated int
	var mig orchestrator.Event
	for _, e := range res.Events {
		if e.Kind == orchestrator.EventMigrated {
			if migrated == 0 {
				mig = e
			}
			migrated++
		}
	}
	if migrated != 1 {
		t.Fatalf("migrations = %d, want exactly 1\nevents:\n%+v", migrated, res.Events)
	}
	if res.Migrations != 1 {
		t.Errorf("result.Migrations = %d, want 1", res.Migrations)
	}

	// The plan must be Multi-PAM pushing a border vNF of *some* chain off
	// the SmartNIC — on the calibrated defaults the global θS argmin is the
	// ramping tenant's Logger.
	if mig.Plan.Selector != "Multi-PAM" || len(mig.Plan.Steps) != 1 {
		t.Fatalf("plan = %v, want one Multi-PAM step", mig.Plan)
	}
	step := mig.Plan.Steps[0]
	if step.Step.To != device.KindCPU {
		t.Errorf("step %v does not move to the CPU", step)
	}
	if step.ChainIndex < 0 || step.ChainIndex >= len(res.Tenants) {
		t.Fatalf("step chain index %d out of range", step.ChainIndex)
	}
	if res.Tenants[step.ChainIndex] != "ramp" || step.Step.Element != "rlog0" {
		t.Errorf("step = %v (chain %q), want rlog0 of the ramp tenant", step, res.Tenants[step.ChainIndex])
	}
	if mig.Downtime <= 0 {
		t.Error("no measured state-transfer downtime")
	}
	// And it must be applied to the running dataplane of that chain only.
	moved := res.Placements[step.ChainIndex]
	if i := moved.Index(step.Step.Element); i < 0 || moved.At(i).Loc != device.KindCPU {
		t.Errorf("placement %v does not have %s on the CPU", moved, step.Step.Element)
	}
	for ci, pl := range res.Placements {
		if ci == step.ChainIndex {
			continue
		}
		for _, e := range pl.Elems {
			if e.Loc == device.KindCPU && e.Type != device.TypeLoadBalancer {
				t.Errorf("untouched chain %q moved: %v", res.Tenants[ci], pl)
			}
		}
	}

	// The hot spot must have been a *summed* one: some pre-migration window
	// crossed the threshold in aggregate demand while the shared gate capped
	// the granted share near the device budget, and the episode's relief
	// shows in the final windows.
	var peakDemand, grantSum, grantWin, final float64
	for _, s := range res.Samples {
		if s.At < mig.At {
			if s.NIC.Utilization > peakDemand {
				peakDemand = s.NIC.Utilization
			}
			// The grant cap is asserted on the *mean* over the hot windows,
			// not per window: served/θ is metered at burst completion, and a
			// single ramp burst carries ≈41 ms of device time — 1.6× one
			// 25 ms window's whole budget — so any individual window lands
			// near 0 or near 2 by quantization alone. The mean over the hot
			// phase is the physical claim: the gate never grants faster than
			// its refill plus the banked DeviceBurst.
			if s.NIC.Utilization >= 0.95 {
				grantSum += s.NIC.GrantUtilization * s.Window.Seconds()
				grantWin += s.Window.Seconds()
			}
		}
	}
	if len(res.Samples) > 0 {
		final = res.Samples[len(res.Samples)-1].NIC.Utilization
	}
	if peakDemand < 0.95 {
		t.Errorf("aggregate NIC demand never crossed the threshold before the migration: peak %.2f", peakDemand)
	}
	if grantWin > 0 {
		if mean := grantSum / grantWin; mean > 1.35 {
			t.Errorf("NIC granted %.2f device budget on average over the hot pre-migration windows; the shared gate should cap near 1.0", mean)
		}
	}
	if final >= 0.95 {
		t.Errorf("aggregate NIC demand not relieved: final %.2f", final)
	}

	// The collapse must be real and the recovery complete: every background
	// tenant (all but the ramping last one) delivers ≥20% below its calm
	// baseline during the overload, then returns to within 10% of it. Under
	// the race detector the per-window delivered meter loses its signal
	// (see scenario.RaceInstrumented) and these bounds are asserted by the
	// regular run only.
	for ti := 0; !scenario.RaceInstrumented && ti < len(res.Tenants)-1; ti++ {
		base, during, post := res.BaselineGbps[ti], res.PreGbps[ti], res.PostGbps[ti]
		if base < 0.5*scenario.MultiBackgroundGbps {
			t.Errorf("tenant %q calm baseline %.2f Gbps, implausibly low", res.Tenants[ti], base)
			continue
		}
		if during > 0.80*base {
			t.Errorf("tenant %q delivered %.3f Gbps during the overload (baseline %.3f): no real collapse (<20%%)",
				res.Tenants[ti], during, base)
		}
		if math.Abs(post-base) > 0.10*base {
			t.Errorf("tenant %q did not recover: %.3f Gbps after migration vs %.3f baseline (>10%%)",
				res.Tenants[ti], post, base)
		}
	}
	if len(res.Samples) < 10 {
		t.Errorf("telemetry timeline too short: %d windows", len(res.Samples))
	}
}
