//go:build !race

package scenario

// RaceInstrumented is false in regular builds — see race_on.go.
const RaceInstrumented = false
