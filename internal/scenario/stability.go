package scenario

// The control-loop stability harness: a stochastic workload hovers around
// the overload threshold — the adversarial regime for any hysteresis-based
// detector — and the harness proves the closed loop does not ping-pong.
// Two steady Monitor tenants pin the shared SmartNIC near its threshold;
// the hover tenant's offered load fluctuates in a band straddling the rate
// at which the summed NIC demand crosses the detector threshold (the
// calibration is in DESIGN.md §5). A correctly tuned loop fires, pushes the
// hover tenant's Logger aside once, and settles: the offload-reclaim policy
// (orchestrator.Config.ReclaimAfter) keeps wanting to restore the Logger to
// the NIC, but its fluid-model headroom guard — gated on ClearThreshold —
// predicts the restored placement would re-approach overload and refuses.
// Collapse the hysteresis band to zero (ClearThreshold = Threshold) and the
// same run reclaims during a low dwell, re-fires at the next high dwell and
// bounces the element A→B→A: the band is demonstrably what buys stability.

import (
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/metrics"
	"repro/internal/orchestrator"
	"repro/internal/traffic"
)

// Calibrated stability defaults (provenance in DESIGN.md §5). The hover band
// is placed so that the summed NIC demand crosses the detector threshold
// only during upper-half dwells: backgrounds contribute 2×0.9/3.2 ≈ 0.56 and
// the hover chain's NIC residents (Logger θS=2, Firewall θS=10) add 0.6 per
// offered Gbps, so demand sweeps ≈[0.86, 1.10] across the band and crosses
// 0.95 at ≈0.645 Gbps — inside the band, as hovering requires.
const (
	// StabilityHoverCenterGbps is the hover tenant's mean offered load.
	StabilityHoverCenterGbps = 0.70
	// StabilityHoverBandGbps is the hover excursion half-width.
	StabilityHoverBandGbps = 0.20
	// StabilityHoverDwell is the mean dwell per excursion: 6 sampling
	// windows, enough for the detector's Consecutive streak to fill within
	// one high dwell.
	StabilityHoverDwell = 150 * time.Millisecond
	// StabilityReclaimAfter is how many consecutive clear windows arm the
	// offload-reclaim policy.
	StabilityReclaimAfter = 3
	// StabilityPingPongHorizon is the bounce window: an element moved out
	// and back within it counts as a ping-pong.
	StabilityPingPongHorizon = 500 * time.Millisecond
	// StabilityTotal is the default run length (≈13 hover dwells).
	StabilityTotal = 2 * time.Second
)

// StabilityConfig parameterizes the stability run. The zero value selects
// the calibrated hover defaults above.
type StabilityConfig struct {
	// HoverCenterGbps / HoverBandGbps / HoverDwell shape the hover tenant's
	// stochastic schedule (defaults above).
	HoverCenterGbps float64
	HoverBandGbps   float64
	HoverDwell      time.Duration
	// Total is the run length (default StabilityTotal).
	Total time.Duration
	// ReclaimAfter arms the offload-reclaim policy (default
	// StabilityReclaimAfter; negative disables reclaim).
	ReclaimAfter int
	// Horizon is the ping-pong scan window (default
	// StabilityPingPongHorizon).
	Horizon time.Duration
	// Sizes is the hover tenant's frame-size distribution (default
	// FixedSize(MultiFrameSize); plug in traffic.ParetoSize for heavy
	// tails).
	Sizes traffic.SizeDist
	// Ramp replaces the stochastic hover with a deterministic two-phase
	// ramp between the band edges — the baseline the stochastic run's
	// time-to-relief is compared against.
	Ramp bool
}

func (c StabilityConfig) withDefaults() StabilityConfig {
	if c.HoverCenterGbps <= 0 {
		c.HoverCenterGbps = StabilityHoverCenterGbps
	}
	if c.HoverBandGbps <= 0 {
		c.HoverBandGbps = StabilityHoverBandGbps
	}
	if c.HoverDwell <= 0 {
		c.HoverDwell = StabilityHoverDwell
	}
	if c.Total <= 0 {
		c.Total = StabilityTotal
	}
	if c.ReclaimAfter == 0 {
		c.ReclaimAfter = StabilityReclaimAfter
	}
	if c.Horizon <= 0 {
		c.Horizon = StabilityPingPongHorizon
	}
	if c.Sizes == nil {
		c.Sizes = traffic.FixedSize(MultiFrameSize)
	}
	return c
}

// StabilityEpisode is one overload episode's lifecycle: when its plan
// executed, the peak NIC demand leading up to it, and how long delivery
// took to recover.
type StabilityEpisode struct {
	// At is when the episode's migration executed.
	At time.Duration
	// PreNICDemand is the peak windowed NIC demand utilization between the
	// previous episode's relief and this migration.
	PreNICDemand float64
	// PostNICDemand is the windowed NIC demand at the relief window — for a
	// converged episode it is strictly below PreNICDemand (the Eq. 3 border
	// slide really shed load).
	PostNICDemand float64
	// Relief is the time from the migration to the first window whose NIC
	// demand is below the detector threshold with negligible loss; −1 when
	// the run ended first.
	Relief time.Duration
}

// TenantStability is one tenant's delivered-service summary over the run.
type TenantStability struct {
	Name string
	// Latency is the tenant's end-to-end latency distribution.
	Latency metrics.Summary
	// DeliveredP50/P99/P999 are quantiles of the tenant's per-window
	// delivered throughput (catalog Gbps): the flatness of a background
	// tenant's delivery under a hovering neighbour.
	DeliveredP50  float64
	DeliveredP99  float64
	DeliveredP999 float64
	// MeanGbps is the tenant's mean per-window delivered throughput.
	MeanGbps float64
}

// LiveStabilityResult is one stability run's outcome.
type LiveStabilityResult struct {
	// Tenants names the hosted chains, parallel to per-tenant slices.
	Tenants []string
	// Events is the control plane's log.
	Events []orchestrator.Event
	// Samples is the measured telemetry timeline.
	Samples []emul.LoadSample
	// Final and ChainFinal are the end-of-run accounting.
	Final      emul.Result
	ChainFinal []emul.Result
	// Placements is each chain's placement after the run.
	Placements []*chain.Chain
	// History is every executed element move in order; PingPongs the
	// bounces FindPingPongs detected in it (empty for a stable loop).
	History   []orchestrator.Migration
	PingPongs []orchestrator.PingPong
	// Episodes is the per-episode relief analysis.
	Episodes []StabilityEpisode
	// PerTenant is each tenant's delivered/latency summary.
	PerTenant []TenantStability
	// Migrations counts executed plans; Reclaims executed reclaim moves.
	Migrations int
	Reclaims   int
	// DetectorEvents/Clears/Rearms are the detector's episode counters.
	DetectorEvents int
	DetectorClears int
	DetectorRearms int
	// Settled reports that the run's final window was below the detector
	// threshold with negligible loss — the loop ended at rest.
	Settled bool
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// StabilityTenants returns the stability population: the two steady Monitor
// backgrounds from the multi-tenant scenario plus the hover tenant's
// Figure-1-geometry chain (LB on the CPU; Logger, Firewall on the NIC).
// The hover tenant is the last entry; its Phases are filled in by
// RunLiveStability from the configured shape.
func StabilityTenants(cfg StabilityConfig) ([]Tenant, error) {
	cfg = cfg.withDefaults()
	bgA, err := chain.New("bg-monitor-a",
		chain.Element{Name: "bgm0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		return nil, err
	}
	bgB, err := chain.New("bg-monitor-b",
		chain.Element{Name: "bgn0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		return nil, err
	}
	hover, err := chain.New("hover",
		chain.Element{Name: "hlb0", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: "hlog0", Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: "hfw0", Type: device.TypeFirewall, Loc: device.KindSmartNIC},
	)
	if err != nil {
		return nil, err
	}
	steady := []traffic.Phase{{RateGbps: MultiBackgroundGbps, Duration: cfg.Total}}
	return []Tenant{
		{Chain: bgA, Phases: steady, FrameSize: MultiFrameSize},
		{Chain: bgB, Phases: steady, FrameSize: MultiFrameSize},
		{Chain: hover, FrameSize: MultiFrameSize},
	}, nil
}

// hoverSource builds the hover tenant's arrival source in wall-clock units
// (catalog rates divided by scale). The stochastic variant compiles the
// seeded Hover shape; the Ramp variant is the deterministic baseline: calm
// at the band's lower edge, then overload at its upper edge.
func hoverSource(cfg StabilityConfig, scale float64, flows int, seed int64) (traffic.Source, error) {
	lo := (cfg.HoverCenterGbps - cfg.HoverBandGbps) / scale
	hi := (cfg.HoverCenterGbps + cfg.HoverBandGbps) / scale
	if cfg.Ramp {
		calm := cfg.Total / 4
		return traffic.NewRamp([]traffic.Phase{
			{RateGbps: lo, Duration: calm},
			{RateGbps: hi, Duration: cfg.Total - calm},
		}, cfg.Sizes, traffic.ProcessCBR, uint64(flows), seed)
	}
	shape := traffic.Hover{
		CenterGbps: cfg.HoverCenterGbps / scale,
		BandGbps:   cfg.HoverBandGbps / scale,
		Dwell:      cfg.HoverDwell,
	}
	return traffic.NewShaped(shape, cfg.Total, cfg.Sizes, traffic.ProcessCBR, uint64(flows), seed)
}

// RunLiveStability drives the stability run: the tenant population above on
// one shared emulator, the live control plane with Multi-PAM and the
// offload-reclaim policy, the hover tenant paced through its stochastic
// schedule — then the migration history is scanned for ping-pongs and each
// episode's time-to-relief measured. A nil selector selects core.MultiPAM.
func RunLiveStability(p Params, lp LiveParams, cfg StabilityConfig, sel core.MultiSelector) (*LiveStabilityResult, error) {
	cfg = cfg.withDefaults()
	lp = lp.withDefaults(p)
	if sel == nil {
		sel = core.MultiPAM{}
	}
	tenants, err := StabilityTenants(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := LiveMultiRuntime(p, lp, tenants)
	if err != nil {
		return nil, err
	}
	rt.Start()
	defer rt.Close()

	reclaimAfter := cfg.ReclaimAfter
	if reclaimAfter < 0 {
		reclaimAfter = 0
	}
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery:     lp.PollEvery,
		MultiSelector: sel,
		Detector:      lp.Detector,
		MaxMigrations: lp.MaxMigrations,
		Cooldown:      lp.Cooldown,
		ReclaimAfter:  reclaimAfter,
	}, View(nil, p, 0))
	if err != nil {
		return nil, err
	}

	// The shared builder handles the backgrounds' phase schedules; the hover
	// tenant (last, by StabilityTenants convention) overrides with its
	// stochastic (or ramp-baseline) shape.
	drives, _, err := buildTenantDrives(p, lp, tenants,
		func(i int, t Tenant, flows int) (traffic.Source, error) {
			if i != len(tenants)-1 {
				return nil, nil
			}
			return hoverSource(cfg, lp.Scale, flows, p.Seed+int64(i))
		})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Chain.Name
	}

	elapsed := paceAndPoll(rt, live, lp.PollEvery, drives, cfg.Total)

	det := live.Detector()
	res := &LiveStabilityResult{
		Tenants:        names,
		Events:         live.Events(),
		Samples:        live.Samples(),
		Final:          rt.Results(),
		ChainFinal:     rt.ChainResults(),
		Placements:     rt.Placements(),
		History:        live.History(),
		Migrations:     live.Migrations(),
		Reclaims:       live.Reclaims(),
		DetectorEvents: det.Events(),
		DetectorClears: det.Clears(),
		DetectorRearms: det.Rearms(),
		Elapsed:        elapsed,
	}
	res.PingPongs = orchestrator.FindPingPongs(res.History, cfg.Horizon)
	thr := det.Config()
	res.Episodes = stabilityEpisodes(res.Events, res.Samples, thr.Threshold, thr.LossTrigger)
	res.PerTenant = tenantStability(names, res.Samples, res.ChainFinal)
	if n := len(res.Samples); n > 0 {
		last := res.Samples[n-1]
		res.Settled = last.NIC.Utilization < thr.Threshold && last.LossRate < thr.LossTrigger
	}
	return res, nil
}

// stabilityEpisodes pairs each executed migration (reclaims excluded) with
// the telemetry around it: peak NIC demand since the previous relief, and
// the first subsequent window back under the threshold.
func stabilityEpisodes(events []orchestrator.Event, samples []emul.LoadSample, threshold, lossTrigger float64) []StabilityEpisode {
	var out []StabilityEpisode
	var from time.Duration
	for _, e := range events {
		if e.Kind != orchestrator.EventMigrated {
			continue
		}
		ep := StabilityEpisode{At: e.At, Relief: -1}
		for _, s := range samples {
			switch {
			case s.At > from && s.At <= e.At:
				if s.NIC.Utilization > ep.PreNICDemand {
					ep.PreNICDemand = s.NIC.Utilization
				}
			case s.At > e.At:
				if s.NIC.Utilization < threshold && s.LossRate < lossTrigger {
					ep.PostNICDemand = s.NIC.Utilization
					ep.Relief = s.At - e.At
				}
			}
			if ep.Relief >= 0 {
				from = e.At + ep.Relief
				break
			}
		}
		out = append(out, ep)
	}
	return out
}

// tenantStability summarizes each tenant's delivered-throughput quantiles
// (over per-window measurements) and latency distribution.
func tenantStability(names []string, samples []emul.LoadSample, finals []emul.Result) []TenantStability {
	out := make([]TenantStability, len(names))
	for ti, name := range names {
		var rates []float64
		var sum float64
		for _, s := range samples {
			if ti < len(s.Chains) {
				rates = append(rates, s.Chains[ti].DeliveredGbps)
				sum += s.Chains[ti].DeliveredGbps
			}
		}
		st := TenantStability{
			Name:          name,
			DeliveredP50:  metrics.Quantile(rates, 0.50),
			DeliveredP99:  metrics.Quantile(rates, 0.99),
			DeliveredP999: metrics.Quantile(rates, 0.999),
		}
		if len(rates) > 0 {
			st.MeanGbps = sum / float64(len(rates))
		}
		if ti < len(finals) {
			st.Latency = finals[ti].Latency
		}
		out[ti] = st
	}
	return out
}
