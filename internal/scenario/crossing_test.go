package scenario_test

import (
	"testing"

	"repro/internal/device"
	"repro/internal/orchestrator"
	"repro/internal/scenario"
)

// TestLiveCrossingStormClosedLoop is the acceptance run of the
// crossing-bound control plane: the overload lives on the shared PCIe DMA
// engine, not on either device. Three tenants' crossings draw on one
// link-seconds budget; during the split tenant's ramp the measured DMA
// demand crosses the threshold while the SmartNIC and CPU demands stay
// feasible, the detector fires on the DMA utilization, and Multi-PAM —
// seeing the crossing-bound overload through MeasuredDMAUtil — pushes the
// split tenant's Logger to the CPU. The move is crossing-reducing (4 → 2),
// the engine cools below threshold, and the split tenant's delivered
// throughput recovers from its collapse to the offered rate. Wall-clock and
// concurrent: it doubles as a -race workout for the DMA gate.
func TestLiveCrossingStormClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock closed-loop run")
	}
	p := scenario.DefaultParams()
	lp := scenario.DefaultLiveParams()

	res, err := scenario.RunLiveCrossingStorm(p, lp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var migrated int
	var mig orchestrator.Event
	for _, e := range res.Events {
		if e.Kind == orchestrator.EventMigrated {
			if migrated == 0 {
				mig = e
			}
			migrated++
		}
	}
	if migrated != 1 {
		t.Fatalf("migrations = %d, want exactly 1\nevents:\n%+v", migrated, res.Events)
	}

	// The plan must be the crossing-neutral relief: the split tenant's
	// Logger — the only NIC-resident border in the storm — pushed to the
	// CPU, merging the chain's two CPU segments.
	if mig.Plan.Selector != "Multi-PAM" || len(mig.Plan.Steps) != 1 {
		t.Fatalf("plan = %v, want one Multi-PAM step", mig.Plan)
	}
	step := mig.Plan.Steps[0]
	splitIdx := len(res.Tenants) - 1
	if step.ChainIndex != splitIdx || step.Step.Element != scenario.NameSplitLogger || step.Step.To != device.KindCPU {
		t.Fatalf("step = %+v, want %s of the split tenant -> CPU", step, scenario.NameSplitLogger)
	}
	if got := res.Placements[splitIdx].Crossings(); got != 2 {
		t.Errorf("split chain crossings after the push-aside = %d, want 2 (was 4)", got)
	}

	// The overload must have been crossing-bound, detected from measured
	// telemetry: some pre-migration window shows DMA demand past the
	// threshold while both device demands stay clearly below it, and the
	// engine's grant is pinned near its 1.0 link-seconds/s budget.
	var hot bool
	var peakDMA, grantSum, grantWin float64
	for _, s := range res.Samples {
		if s.At >= mig.At {
			break
		}
		if s.DMA.Utilization > peakDMA {
			peakDMA = s.DMA.Utilization
		}
		if s.DMA.Utilization >= 0.95 {
			hot = true
			if s.NIC.Utilization >= 0.80 {
				t.Errorf("window %v: NIC demand %.2f during the DMA-hot phase; the overload should be crossing-bound",
					s.At, s.NIC.Utilization)
			}
			if s.CPU.Utilization >= 0.95 {
				t.Errorf("window %v: CPU demand %.2f during the DMA-hot phase", s.At, s.CPU.Utilization)
			}
			// Mean over the hot windows, not per window: grant is metered at
			// burst completion, so a single window swings far above or below
			// the refill rate by quantization alone (see the multi-tenant
			// test's grant assertion for the full argument).
			grantSum += s.DMA.GrantRate * s.Window.Seconds()
			grantWin += s.Window.Seconds()
			if s.DMA.ToCPU.Demand <= 0 || s.DMA.ToNIC.Demand <= 0 {
				t.Errorf("window %v: per-direction DMA demand = %+v, want both sides loaded", s.At, s.DMA)
			}
		}
	}
	if grantWin > 0 {
		if mean := grantSum / grantWin; mean > 1.45 {
			t.Errorf("engine granted %.2f link-seconds/s on average over the hot windows; the shared gate should cap near 1.0", mean)
		}
	}
	if !hot {
		t.Errorf("measured DMA demand never crossed the threshold before the migration: peak %.2f", peakDMA)
	}

	// Relief: the engine cools below threshold and the split tenant's
	// delivered throughput recovers from the collapse to the offered rate.
	if len(res.Samples) == 0 {
		t.Fatal("no telemetry samples")
	}
	final := res.Samples[len(res.Samples)-1]
	if final.DMA.Utilization >= 0.95 {
		t.Errorf("DMA demand not relieved: final %.2f", final.DMA.Utilization)
	}
	pre, post := res.PreGbps[splitIdx], res.PostGbps[splitIdx]
	if pre > 0.85*scenario.CrossSplitOverloadGbps {
		t.Errorf("split tenant delivered %.2f Gbps during the storm (offered %.2f): no real crossing collapse",
			pre, scenario.CrossSplitOverloadGbps)
	}
	if post < 0.85*scenario.CrossSplitOverloadGbps {
		t.Errorf("split tenant did not recover: %.2f Gbps after the push-aside (offered %.2f)",
			post, scenario.CrossSplitOverloadGbps)
	}
	if post <= pre {
		t.Errorf("no recovery: %.2f Gbps during vs %.2f after", pre, post)
	}
	if len(res.Samples) < 10 {
		t.Errorf("telemetry timeline too short: %d windows", len(res.Samples))
	}
}
