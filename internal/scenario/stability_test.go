package scenario

// Stability-harness tests (wall-clock, race-detector friendly): the tuned
// loop must fire at least once under the hover workload and never ping-pong,
// each episode must genuinely shed NIC demand, time-to-relief must stay
// within 2× the deterministic-ramp baseline, and collapsing the hysteresis
// band to zero must demonstrably produce the ping-pong the tuned band
// prevents. See DESIGN.md §5 for the hover calibration.

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// stabilitySeeds are the fixed seeds the stability assertions hold for (the
// CI smoke script loops the same three).
var stabilitySeeds = []int64{1, 2, 3}

func runStability(t *testing.T, seed int64, lp LiveParams, cfg StabilityConfig) *LiveStabilityResult {
	t.Helper()
	p := DefaultParams()
	p.Seed = seed
	res, err := RunLiveStability(p, lp, cfg, nil)
	if err != nil {
		t.Fatalf("seed %d: RunLiveStability: %v", seed, err)
	}
	t.Logf("seed %d: events=%d migrations=%d reclaims=%d pingpongs=%d det(ev=%d clr=%d re=%d) settled=%v",
		seed, len(res.Events), res.Migrations, res.Reclaims, len(res.PingPongs),
		res.DetectorEvents, res.DetectorClears, res.DetectorRearms, res.Settled)
	for _, ep := range res.Episodes {
		t.Logf("seed %d: episode at=%v pre=%.3f post=%.3f relief=%v", seed, ep.At, ep.PreNICDemand, ep.PostNICDemand, ep.Relief)
	}
	for _, ts := range res.PerTenant {
		t.Logf("seed %d: tenant %s mean=%.3f p50=%.3f p99=%.3f p99.9=%.3f lat{%v}",
			seed, ts.Name, ts.MeanGbps, ts.DeliveredP50, ts.DeliveredP99, ts.DeliveredP999, ts.Latency)
	}
	return res
}

// TestLiveStabilityNoPingPong is the harness's core claim: across the fixed
// seeds, the tuned loop fires on the hovering load, relieves it, and never
// bounces an element back and forth — and every relieved episode really
// sheds NIC demand (monotone convergence of the border slide).
func TestLiveStabilityNoPingPong(t *testing.T) {
	for _, seed := range stabilitySeeds {
		res := runStability(t, seed, LiveParams{}, StabilityConfig{})
		if res.DetectorEvents < 1 || res.Migrations < 1 {
			t.Errorf("seed %d: expected at least one episode and migration, got events=%d migrations=%d",
				seed, res.DetectorEvents, res.Migrations)
		}
		if len(res.PingPongs) != 0 {
			t.Errorf("seed %d: tuned loop ping-ponged: %+v", seed, res.PingPongs)
		}
		if res.Reclaims != 0 {
			t.Errorf("seed %d: headroom guard should block every reclaim under hover, executed %d", seed, res.Reclaims)
		}
		relieved := 0
		for i, ep := range res.Episodes {
			if ep.Relief < 0 {
				continue
			}
			relieved++
			if ep.PostNICDemand >= ep.PreNICDemand {
				t.Errorf("seed %d: episode %d did not shed demand: pre=%.3f post=%.3f",
					seed, i, ep.PreNICDemand, ep.PostNICDemand)
			}
		}
		if relieved < 1 {
			t.Errorf("seed %d: no episode reached relief", seed)
		}
		for _, ts := range res.PerTenant {
			if !(ts.DeliveredP999 >= ts.DeliveredP99 && ts.DeliveredP99 >= ts.DeliveredP50) {
				t.Errorf("seed %d: tenant %s quantiles out of order: p50=%.3f p99=%.3f p99.9=%.3f",
					seed, ts.Name, ts.DeliveredP50, ts.DeliveredP99, ts.DeliveredP999)
			}
			if ts.DeliveredP50 <= 0 || ts.Latency.Count == 0 {
				t.Errorf("seed %d: tenant %s reported no delivery (p50=%.3f latency n=%d)",
					seed, ts.Name, ts.DeliveredP50, ts.Latency.Count)
			}
		}
	}
}

// TestLiveStabilityReliefBounded compares the stochastic run's
// time-to-relief against the deterministic two-phase ramp baseline: hovering
// noise must not stretch recovery beyond 2× the clean-ramp relief (plus one
// polling window of measurement slack).
func TestLiveStabilityReliefBounded(t *testing.T) {
	lp := LiveParams{}
	base := runStability(t, stabilitySeeds[0], lp, StabilityConfig{Ramp: true})
	baseline := time.Duration(-1)
	for _, ep := range base.Episodes {
		if ep.Relief >= 0 {
			baseline = ep.Relief
			break
		}
	}
	if baseline < 0 {
		t.Fatalf("ramp baseline never reached relief: %+v", base.Episodes)
	}
	pollEvery := DefaultLiveParams().PollEvery
	bound := 2*baseline + pollEvery
	for _, seed := range stabilitySeeds {
		res := runStability(t, seed, lp, StabilityConfig{})
		for i, ep := range res.Episodes {
			if ep.Relief >= 0 && ep.Relief > bound {
				t.Errorf("seed %d: episode %d relief %v exceeds bound %v (baseline %v)",
					seed, i, ep.Relief, bound, baseline)
			}
		}
	}
}

// TestLiveStabilityDetunedPingPongs is the negative control: collapse the
// hysteresis band to zero (ClearThreshold = Threshold) and the reclaim
// guard loses its stability margin — the loop restores the Logger during a
// low dwell, the next high dwell re-fires, and the element bounces. The
// assertion the tuned loop passes must demonstrably fail here.
func TestLiveStabilityDetunedPingPongs(t *testing.T) {
	lp := LiveParams{
		Detector: telemetry.DetectorConfig{
			Threshold:      0.95,
			ClearThreshold: 0.95, // hysteresis band collapsed to zero
			Consecutive:    3,
			Alpha:          0.5,
		},
	}
	bounced := false
	for _, seed := range stabilitySeeds {
		res := runStability(t, seed, lp, StabilityConfig{})
		if len(res.PingPongs) > 0 {
			bounced = true
			if res.Reclaims < 1 {
				t.Errorf("seed %d: ping-pong without a reclaim leg: %+v", seed, res.PingPongs)
			}
		}
	}
	if !bounced {
		t.Errorf("band-0 detector never ping-ponged across seeds %v — the stability assertion would not discriminate", stabilitySeeds)
	}
}
