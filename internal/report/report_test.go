package report_test

import (
	"strings"
	"testing"

	"repro/internal/report"
)

func TestTableRendering(t *testing.T) {
	tbl := report.NewTable("Title", "a", "bbbb")
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	s := tbl.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "bbbb") {
		t.Errorf("render missing parts:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
	// Columns must align: every data line has the separator column width.
	if len(lines[2]) < len("longer")+2+1 {
		t.Errorf("separator too narrow: %q", lines[2])
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tbl := report.NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	if len(tbl.Rows[0]) != 3 {
		t.Errorf("row = %v", tbl.Rows[0])
	}
}

func TestAddRowfFormats(t *testing.T) {
	tbl := report.NewTable("", "a", "b")
	tbl.AddRowf(1.23456, 42)
	if tbl.Rows[0][0] != "1.235" || tbl.Rows[0][1] != "42" {
		t.Errorf("row = %v", tbl.Rows[0])
	}
}

func TestCSVQuoting(t *testing.T) {
	tbl := report.NewTable("", "name", "note")
	tbl.AddRow("a,b", `say "hi"`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
}

func TestBars(t *testing.T) {
	s := report.Bars("chart", []string{"x", "yy"}, []float64{1, 2}, "Gbps")
	if !strings.Contains(s, "chart") || !strings.Contains(s, "Gbps") {
		t.Errorf("bars missing parts:\n%s", s)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths wrong:\n%s", s)
	}
}

func TestBarsZeroValues(t *testing.T) {
	s := report.Bars("", []string{"a"}, []float64{0}, "x")
	if s == "" {
		t.Error("zero bars must still render")
	}
}

func TestSpark(t *testing.T) {
	s := report.Spark([]float64{0, 1, 2, 4})
	if got, want := len([]rune(s)), 4; got != want {
		t.Fatalf("spark runes = %d, want %d", got, want)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("spark extremes wrong: %q", s)
	}
	if runes[1] == runes[3] {
		t.Errorf("spark does not scale: %q", s)
	}
	if report.Spark(nil) != "" {
		t.Error("empty series must render empty")
	}
	if got := report.Spark([]float64{0, 0}); []rune(got)[0] != '▁' {
		t.Errorf("all-zero series = %q, want low blocks", got)
	}
}
