// Package report renders experiment results as aligned ASCII tables, bar
// charts and CSV, approximating the paper's tables and figures in terminal
// output. It is deliberately dependency-free so every layer can use it.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells, each rendered with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC-4180-style quoting
// for cells containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// sparks are the eight block glyphs Spark quantizes into.
var sparks = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line unicode sparkline scaled to the series
// maximum — the terminal form of a telemetry time series (the control-plane
// reports use it for delivered throughput around a migration).
func Spark(values []float64) string {
	maxv := 0.0
	for _, v := range values {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]rune, 0, len(values))
	for _, v := range values {
		i := 0
		if maxv > 0 && v > 0 {
			i = int(v / maxv * float64(len(sparks)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparks) {
				i = len(sparks) - 1
			}
		}
		out = append(out, sparks[i])
	}
	return string(out)
}

// Bars renders a labelled horizontal bar chart (terminal "figure").
func Bars(title string, labels []string, values []float64, unit string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxv := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxv {
			maxv = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	const width = 48
	for i, l := range labels {
		n := 0
		if maxv > 0 {
			n = int(values[i]/maxv*width + 0.5)
		}
		fmt.Fprintf(&b, "  %-*s | %-*s %8.2f %s\n", maxLabel, l, width, strings.Repeat("#", n), values[i], unit)
	}
	return b.String()
}
