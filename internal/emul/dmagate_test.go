package emul

// White-box tests of the shared DMA-engine gate: crossing bursts from
// concurrent tenants must draw on one link budget (no per-shard private
// links), split it without starvation, and never mint engine time. Run
// under -race: senders and pool workers cross concurrently.

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/traffic"
)

// crossingRuntime hosts n single-Monitor-on-CPU tenants: every frame
// crosses PCIe twice (ingress to the CPU, egress back to the NIC), so the
// DMA engine — not the CPU — is the bottleneck at a small link bandwidth.
func crossingRuntime(t testing.TB, n int, linkGbps float64) *Runtime {
	t.Helper()
	chains := make([]*chain.Chain, n)
	for i := range chains {
		c, err := chain.New("xing-"+string(rune('a'+i)),
			chain.Element{Name: "xm" + string(rune('a'+i)), Type: device.TypeMonitor, Loc: device.KindCPU},
		)
		if err != nil {
			t.Fatal(err)
		}
		chains[i] = c
	}
	r, err := New(Config{
		Chains:     chains,
		Catalog:    device.Table1(),
		Link:       pcie.Link{PropDelay: 43 * time.Microsecond, BandwidthGbps: linkGbps},
		Scale:      1000,
		QueueDepth: 32,
		BatchSize:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDMAGateSharesLinkBudget saturates two crossing-heavy tenants and
// requires (a) the total granted engine time to stay within the physical
// budget — one link-second per second plus the banked burst — and (b) both
// tenants to keep crossing: the FIFO ticket queue shares the engine instead
// of letting one tenant's shards monopolize it.
func TestDMAGateSharesLinkBudget(t *testing.T) {
	// At 2 Gbps of link for Monitors whose CPU capacity is 10 Gbps each,
	// the engine binds long before the device gate does.
	r := crossingRuntime(t, 2, 2)
	r.Start()
	start := time.Now()

	synth := traffic.NewSynth(8, 3)
	for time.Since(start) < 250*time.Millisecond {
		for k := 0; k < 4; k++ {
			r.SendChain(0, synth.Frame(uint64(k), 256))
			r.SendChain(1, synth.Frame(uint64(k+4), 256))
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	dc := r.dma.counters()
	servedA := r.chains[0].meter.Packets()
	servedB := r.chains[1].meter.Packets()
	r.Close()

	if servedA == 0 || servedB == 0 {
		t.Fatalf("a tenant's crossings starved: delivered %d / %d", servedA, servedB)
	}
	share := float64(servedA) / float64(servedA+servedB)
	if share < 0.3 || share > 0.7 {
		t.Errorf("crossing split %.2f / %.2f; equal tenants should each get ~half", share, 1-share)
	}
	// Conservation: the engine cannot grant more than one link-second per
	// second plus its banked burst, with slack for the burst in flight.
	if limit := elapsed + 0.010 + 0.020; dc.granted > limit {
		t.Errorf("engine granted %.3f link-seconds in %.3f s (limit %.3f); budget minted",
			dc.granted, elapsed, limit)
	}
	// Under saturation most of the budget must have been granted — this is
	// what pins aggregate crossing throughput at the link budget.
	if dc.granted < 0.5*elapsed {
		t.Errorf("engine granted only %.3f link-seconds in %.3f s under saturation", dc.granted, elapsed)
	}
	// Both directions were exercised (ingress toCPU, egress toNIC).
	if dc.grantBytes[dmaToCPU] == 0 || dc.grantBytes[dmaToNIC] == 0 {
		t.Errorf("grant bytes per direction = %v, want both positive", dc.grantBytes)
	}
}

// TestDMAGateZeroLinkIsFree pins the degenerate configuration: a zero link
// costs no engine time, so crossings never block and the gate reports only
// byte counts (demand in link-seconds stays zero).
func TestDMAGateZeroLinkIsFree(t *testing.T) {
	c, err := chain.New("z", chain.Element{Name: "zm0", Type: device.TypeMonitor, Loc: device.KindCPU})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Chain: c, Catalog: device.Table1(), Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	synth := traffic.NewSynth(4, 1)
	for i := 0; i < 50; i++ {
		r.Send(synth.Frame(uint64(i%4), 256))
	}
	r.Drain()
	dc := r.dma.counters()
	if dc.granted != 0 || dc.grantUnits[dmaToCPU] != 0 {
		t.Errorf("zero link granted %v link-seconds", dc.granted)
	}
	if dc.grantBytes[dmaToCPU] == 0 {
		t.Error("crossing bytes not accounted on a zero link")
	}
}
