package emul

// The shared DMA-engine gate for PCIe crossings. Before this file existed
// every shard slept its crossings privately (and only with SleepPCIe set),
// so N workers or N tenant chains crossing simultaneously each saw the full
// link — a crossing-bound hot spot could never physically form, even though
// the paper's premise is that every traversal costs shared interconnect
// capacity. The dmaGate closes that gap exactly the way the deviceGate
// closed it for compute: ONE token bucket per runtime, denominated in
// link-seconds and refilled at 1.0 per wall-clock second, charged by every
// crossing burst of every chain.
//
// One shared engine, not one per direction (the DESIGN §4 decision): the
// discrete-event simulator models a single DMA server charged once per
// crossing, and NFP-class SmartNICs expose their DMA blocks as an aggregate
// pool serving both ring directions — a per-direction split would also hand
// a multi-tenant runtime twice the budget. Telemetry still attributes
// demand and grant per direction (NIC→CPU vs CPU→NIC) so a one-sided storm
// is visible as such.
//
// Costing: a burst of B crossing bytes occupies the engine for
// pcie.Link.EngineSeconds(B, Scale) — the fixed per-burst descriptor
// overhead (PropDelay) plus the serialization time at the link slowed by
// Config.Scale, mirroring how element bursts cost bytes/scaledRate
// device-seconds. Offered demand is metered separately at frame arrival
// (serialization share only, including frames a full queue later drops), so
// the LoadSampler can report crossing demand that keeps climbing while the
// engine's grant is pinned at ~1.0 link-second per second.
//
// Every counter on the crossing path — demand at frame arrival, grant at
// burst admission — is a lock-free atomic: an uncontended crossing costs
// the gate's CAS fast path plus two atomic adds, and the LoadSampler folds
// the cells only at window boundaries.

import (
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/pcie"
)

// dmaDir indexes the two crossing directions for telemetry attribution.
type dmaDir int

const (
	dmaToCPU dmaDir = iota // NIC/FPGA side → host CPU
	dmaToNIC               // host CPU → NIC side (including final egress)
)

// dirTo maps the receiving device of a crossing to its direction.
func dirTo(k device.Kind) dmaDir {
	if k == device.KindCPU {
		return dmaToCPU
	}
	return dmaToNIC
}

// dmaGate is the runtime's shared DMA-engine budget. The embedded gate runs
// at a fixed rate of 1.0 link-second per wall-clock second with the same
// bankable burst as the device gates; a zero link (no PropDelay, no
// bandwidth) makes every cost zero and the gate a no-op.
type dmaGate struct {
	gate
	link  pcie.Link
	scale float64

	// Offered demand is metered per frame on the ingress/forward hot paths;
	// the link-seconds form is derived in counters() (serialization is
	// linear in bytes). Grant accounting is per burst, in the gate's own
	// nano-unit fixed point, and equally lock-free: the crossing hot path
	// never takes a mutex.
	demandBytes [2]atomic.Uint64
	grantNanos  [2]atomic.Int64 // granted link-time per direction, nano-units
	grantBytes  [2]atomic.Uint64
}

// newDMAGate builds the shared engine for the runtime's link at its rate
// scale, with burst worth of bankable link time.
func newDMAGate(link pcie.Link, scale float64, burst time.Duration) *dmaGate {
	g := &dmaGate{link: link, scale: scale}
	g.setRate(1.0, burst.Seconds())
	return g
}

// offer meters crossing demand: bytes arrived at a queue from which they
// will cross in direction dir, counted whether or not the queue (or the
// engine) ever admits them. Only the size-proportional share is metered —
// the per-burst descriptor overhead is unknowable before bursts form. One
// atomic add: this sits on the per-frame Send path of every CPU-headed
// chain and must not contend with the gate's burst admissions.
//
//pam:hotpath
func (d *dmaGate) offer(dir dmaDir, bytes uint64) {
	d.demandBytes[dir].Add(bytes)
}

// serializationUnits converts cumulative crossing bytes into link-seconds —
// the float64 form of pcie.Link.SerializationSeconds, safe for counters
// beyond the int range.
func (d *dmaGate) serializationUnits(bytes uint64) float64 {
	if d.link.BandwidthGbps <= 0 {
		return 0
	}
	scale := d.scale
	if scale <= 0 {
		scale = 1
	}
	return float64(bytes) * 8 / (d.link.BandwidthGbps * 1e9) * scale
}

// cross charges one burst's crossing of bytes in direction dir against the
// shared engine budget, blocking until it is granted. A zero link costs
// nothing and never blocks; the byte counters still record the crossing.
//
//pam:hotpath
func (d *dmaGate) cross(dir dmaDir, bytes int) {
	cost := d.link.EngineSeconds(bytes, d.scale)
	if cost > 0 {
		need := nanoUnits(cost)
		d.takeNanos(need)
		d.grantNanos[dir].Add(need)
	}
	d.grantBytes[dir].Add(uint64(bytes))
}

// dmaCounters is a snapshot of the gate's cumulative per-direction
// accounting; the LoadSampler differences consecutive snapshots into a
// window's demand and grant rates.
type dmaCounters struct {
	demandUnits [2]float64
	demandBytes [2]uint64
	grantUnits  [2]float64
	grantBytes  [2]uint64
	granted     float64 // the gate's own total grant, link-seconds
}

// counters snapshots the cumulative accounting. Pure atomic loads — the
// cells are written lock-free on the hot path and folded here, at window
// boundaries only.
func (d *dmaGate) counters() dmaCounters {
	c := dmaCounters{granted: d.grantedUnits()}
	for i := range c.demandBytes {
		b := d.demandBytes[i].Load()
		c.demandBytes[i] = b
		c.demandUnits[i] = d.serializationUnits(b)
		c.grantUnits[i] = float64(d.grantNanos[i].Load()) / 1e9
		c.grantBytes[i] = d.grantBytes[i].Load()
	}
	return c
}
