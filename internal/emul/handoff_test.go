package emul_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/nf"
	"repro/internal/pcie"
	"repro/internal/traffic"
)

// monChain builds the one-element Monitor chain the handoff tests migrate:
// Monitor carries a flow table, so a faithful restore is observable.
func monChain(t *testing.T) *chain.Chain {
	t.Helper()
	c, err := chain.New("tenant-m",
		chain.Element{Name: "mon", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func handoffRuntime(t *testing.T) *emul.Runtime {
	t.Helper()
	r, err := emul.New(emul.Config{
		Chain:   monChain(t),
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func pumpChain(t *testing.T, r *emul.Runtime, ci, n int) {
	t.Helper()
	synth := traffic.NewSynth(8, 3)
	for i := 0; i < n; i++ {
		// Retry ring backpressure: the scaled gate drains slower than a
		// tight send loop, and a rejected frame here is congestion, not the
		// quiesce mechanism under test.
		ok := false
		for try := 0; try < 200 && !ok; try++ {
			ok = r.SendChain(ci, synth.Frame(uint64(i%8), 512))
			if !ok {
				time.Sleep(100 * time.Microsecond)
			}
		}
		if !ok {
			t.Fatalf("frame %d rejected persistently", i)
		}
	}
	r.Drain()
}

// TestChainHandoffRoundTrip walks the full cross-server sequence two fleet
// agents perform — destination freeze, source quiesce/drain/freeze/snapshot,
// destination restore/thaw — and checks the three properties a handoff must
// deliver: the source stops accepting, the Monitor's flow state arrives
// intact on the destination, and frames rerouted during the freeze window
// replay instead of dropping.
func TestChainHandoffRoundTrip(t *testing.T) {
	src := handoffRuntime(t)
	dst := handoffRuntime(t)
	src.Start()
	dst.Start()
	defer src.Close()
	defer dst.Close()

	// Populate migratable state on the source.
	pumpChain(t, src, 0, 400)
	srcMon, _ := src.Instance("mon")
	wantPkts, wantBytes := srcMon.(*nf.Monitor).Totals()
	wantFlows := srcMon.(*nf.Monitor).FlowCount()
	if wantPkts == 0 || wantFlows == 0 {
		t.Fatalf("source monitor saw no traffic (pkts=%d flows=%d)", wantPkts, wantFlows)
	}

	// Destination freezes first: anything rerouted to it from here on
	// buffers in the rings and replays after the thaw.
	if err := dst.FreezeChain(0); err != nil {
		t.Fatal(err)
	}
	synth := traffic.NewSynth(8, 9)
	const rerouted = 50
	for i := 0; i < rerouted; i++ {
		if !dst.SendChain(0, synth.Frame(uint64(i%8), 512)) {
			t.Fatalf("rerouted frame %d rejected by frozen destination", i)
		}
	}

	// Source side: close ingress, let in-flight frames finish, freeze,
	// snapshot.
	if err := src.QuiesceChain(0); err != nil {
		t.Fatal(err)
	}
	if src.SendChain(0, synth.Frame(0, 512)) {
		t.Error("quiesced chain accepted a frame")
	}
	if err := src.DrainChain(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := src.FreezeChain(0); err != nil {
		t.Fatal(err)
	}
	snap, err := src.SnapshotChain(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.StateBytes() == 0 {
		t.Error("snapshot of a stateful chain carries no state")
	}

	// Destination side: install and thaw.
	stateBytes, err := dst.RestoreChain(0, snap)
	if err != nil {
		t.Fatal(err)
	}
	if stateBytes != snap.StateBytes() {
		t.Errorf("restored %d state bytes, snapshot holds %d", stateBytes, snap.StateBytes())
	}
	buffered, err := dst.ThawChain(0)
	if err != nil {
		t.Fatal(err)
	}
	if buffered != rerouted {
		t.Errorf("thaw found %d buffered frames, want %d", buffered, rerouted)
	}
	dst.Drain()

	dstMon, _ := dst.Instance("mon")
	gotPkts, gotBytes := dstMon.(*nf.Monitor).Totals()
	// The restored totals plus the replayed reroutes, exactly: nothing lost,
	// nothing double-counted.
	if gotPkts != wantPkts+rerouted {
		t.Errorf("destination monitor pkts = %d, want %d restored + %d replayed", gotPkts, wantPkts, rerouted)
	}
	if gotBytes <= wantBytes {
		t.Errorf("destination monitor bytes = %d, want > restored %d", gotBytes, wantBytes)
	}
	if fc := dstMon.(*nf.Monitor).FlowCount(); fc < wantFlows {
		t.Errorf("destination flow table holds %d flows, source had %d", fc, wantFlows)
	}

	// The destination serves new traffic; the source stays parked.
	pumpChain(t, dst, 0, 100)
	if src.SendChain(0, synth.Frame(0, 512)) {
		t.Error("parked source chain accepted a frame after handoff")
	}
}

// TestResumeChainAborts exercises the abort path: a source that quiesced and
// froze for a handoff that fell through returns to full service.
func TestResumeChainAborts(t *testing.T) {
	r := handoffRuntime(t)
	r.Start()
	defer r.Close()

	if err := r.QuiesceChain(0); err != nil {
		t.Fatal(err)
	}
	if err := r.FreezeChain(0); err != nil {
		t.Fatal(err)
	}
	if err := r.ResumeChain(0); err != nil {
		t.Fatal(err)
	}
	pumpChain(t, r, 0, 100)
	mon, _ := r.Instance("mon")
	if pkts, _ := mon.(*nf.Monitor).Totals(); pkts != 100 {
		t.Errorf("resumed chain delivered %d frames to the monitor, want 100", pkts)
	}
}

// TestHandoffGuards checks every protocol violation surfaces as an error
// instead of racing the dataplane.
func TestHandoffGuards(t *testing.T) {
	r := handoffRuntime(t)
	r.Start()
	defer r.Close()

	if err := r.DrainChain(0, time.Second); err == nil || !strings.Contains(err.Error(), "not quiesced") {
		t.Errorf("drain without quiesce: err = %v", err)
	}
	if _, err := r.SnapshotChain(0); err == nil || !strings.Contains(err.Error(), "not frozen") {
		t.Errorf("snapshot of a live chain: err = %v", err)
	}
	if _, err := r.RestoreChain(0, emul.ChainSnapshot{Elements: make([]emul.ElementSnapshot, 1)}); err == nil {
		t.Error("restore into a live chain accepted")
	}
	if _, err := r.SnapshotChain(7); err == nil {
		t.Error("snapshot of a bogus index accepted")
	}
	if err := r.QuiesceChain(-1); err == nil {
		t.Error("quiesce of a bogus index accepted")
	}

	// Structural mismatch: freeze, then offer a snapshot of a different chain.
	if err := r.FreezeChain(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RestoreChain(0, emul.ChainSnapshot{Chain: "other"}); err == nil {
		t.Error("element-count mismatch accepted")
	}
	bad := emul.ChainSnapshot{Chain: "other", Elements: []emul.ElementSnapshot{
		{Name: "mon", Type: device.TypeLogger, Loc: device.KindSmartNIC},
	}}
	if _, err := r.RestoreChain(0, bad); err == nil || !strings.Contains(err.Error(), "hosts") {
		t.Errorf("type mismatch: err = %v", err)
	}
	if _, err := r.ThawChain(0); err != nil {
		t.Fatal(err)
	}

	if idx := r.ChainIndex("tenant-m"); idx != 0 {
		t.Errorf("ChainIndex(tenant-m) = %d", idx)
	}
	if idx := r.ChainIndex("nope"); idx != -1 {
		t.Errorf("ChainIndex(nope) = %d", idx)
	}
}

// TestRestoreReplaysPlacement proves RestoreChain reproduces the source's
// border position, not the chain's declared layout: the source migrated its
// element to the CPU before the handoff, so the destination must come up
// with the element on the CPU too.
func TestRestoreReplaysPlacement(t *testing.T) {
	src := handoffRuntime(t)
	dst := handoffRuntime(t)
	src.Start()
	dst.Start()
	defer src.Close()
	defer dst.Close()

	pumpChain(t, src, 0, 50)
	if _, err := src.MigrateChain(0, "mon", device.KindCPU); err != nil {
		t.Fatal(err)
	}
	if err := src.QuiesceChain(0); err != nil {
		t.Fatal(err)
	}
	if err := src.DrainChain(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := src.FreezeChain(0); err != nil {
		t.Fatal(err)
	}
	snap, err := src.SnapshotChain(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Elements[0].Loc != device.KindCPU {
		t.Fatalf("snapshot recorded loc %v, want CPU", snap.Elements[0].Loc)
	}

	if err := dst.FreezeChain(0); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.RestoreChain(0, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ThawChain(0); err != nil {
		t.Fatal(err)
	}
	pl := dst.Placement()
	if loc := pl.At(0).Loc; loc != device.KindCPU {
		t.Errorf("destination placement %v, want the snapshot's CPU position", loc)
	}
	// And the restored placement actually forwards.
	pumpChain(t, dst, 0, 50)
	mon, _ := dst.Instance("mon")
	if pkts, _ := mon.(*nf.Monitor).Totals(); pkts < 100 {
		t.Errorf("restored CPU placement forwarded %d pkts, want >= 100", pkts)
	}
}
