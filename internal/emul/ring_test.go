package emul

import (
	"sync"
	"testing"
	"time"
)

// Internal-package tests for the MPSC ring backing every (element, shard)
// input queue of the worker pool. The properties checked here are exactly
// the ones the dataplane leans on: push is non-blocking and reports full,
// popBatch stops at the publish gap, slots survive arbitrarily many laps,
// and concurrent producers never reorder their own frames (per-flow FIFO
// reduces to per-producer FIFO because a flow hashes to one shard and a
// sender pushes its frames in order).

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {64, 64}, {65, 128}, {4096, 4096},
	} {
		if got := len(newRing(tc.ask).slots); got != tc.want {
			t.Errorf("newRing(%d): capacity %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingFullAndEmpty(t *testing.T) {
	q := newRing(8)
	if !q.empty() {
		t.Fatal("fresh ring not empty")
	}
	if n := q.popBatch(make([]job, 4)); n != 0 {
		t.Fatalf("popBatch on empty ring returned %d", n)
	}
	for i := 0; i < 8; i++ {
		if !q.push(job{hash: uint64(i)}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.push(job{hash: 99}) {
		t.Fatal("push accepted into a full ring")
	}
	if q.empty() {
		t.Fatal("full ring reports empty")
	}
	if got := q.pending(); got != 8 {
		t.Fatalf("pending = %d, want 8", got)
	}
	// Draining one slot must re-admit exactly one push.
	if n := q.popBatch(make([]job, 1)); n != 1 {
		t.Fatalf("popBatch drained %d, want 1", n)
	}
	if !q.push(job{hash: 100}) {
		t.Fatal("push rejected after a slot was freed")
	}
	if q.push(job{hash: 101}) {
		t.Fatal("push accepted past capacity after refill")
	}
}

func TestRingWraparoundOrder(t *testing.T) {
	// Cycle a small ring through many laps with mixed batch sizes; every
	// dequeue must observe the exact enqueue sequence.
	q := newRing(8)
	dst := make([]job, 3)
	var sent, got uint64
	for lap := 0; lap < 200; lap++ {
		for q.push(job{hash: sent}) {
			sent++
		}
		for {
			n := q.popBatch(dst[:1+lap%3])
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if dst[i].hash != got {
					t.Fatalf("lap %d: dequeued %d, want %d", lap, dst[i].hash, got)
				}
				got++
			}
		}
	}
	if got != sent || !q.empty() {
		t.Fatalf("drained %d of %d sent; empty=%v", got, sent, q.empty())
	}
}

func TestRingConcurrentProducersFIFOPerProducer(t *testing.T) {
	// N producers hammer one ring while a single consumer drains it — the
	// shard topology in miniature. Global order is unspecified, but each
	// producer's own sequence must come out monotonic, or per-flow FIFO is
	// broken. Run under -race to check the publish/consume memory ordering.
	const (
		producers = 8
		perProd   = 5000
	)
	q := newRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Encode (producer, seq) in the hash; spin on full like a
				// forwarding worker would retry after a drop window.
				for !q.push(job{hash: uint64(p)<<32 | uint64(i)}) {
					time.Sleep(time.Microsecond)
				}
			}
		}(p)
	}

	last := make([]int64, producers)
	for i := range last {
		last[i] = -1
	}
	dst := make([]job, 32)
	total := 0
	deadline := time.Now().Add(20 * time.Second)
	for total < producers*perProd {
		n := q.popBatch(dst)
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("consumer stalled at %d/%d", total, producers*perProd)
			}
			continue
		}
		for i := 0; i < n; i++ {
			p := int(dst[i].hash >> 32)
			seq := int64(dst[i].hash & 0xffffffff)
			if seq <= last[p] {
				t.Fatalf("producer %d reordered: saw %d after %d", p, seq, last[p])
			}
			last[p] = seq
		}
		total += n
	}
	wg.Wait()
	for p, l := range last {
		if l != perProd-1 {
			t.Errorf("producer %d: last seq %d, want %d", p, l, perProd-1)
		}
	}
}
