package emul

// White-box tests of the per-worker token leases: a lease drawn under one
// placement generation must never be spent under another (the lease form of
// the setRate fast→slow clamp guarantee), and every return path — stale
// generation, gate change, migration freeze — must keep the gate's grant
// accounting exact, neither leaking nor minting device budget. Run under
// -race: the freeze test exercises the lease against live pool workers and
// the migration coordinator.

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/traffic"
)

// TestLeaseStaleGenerationNotSpent drives worker.charge directly through a
// placement-generation bump on the same gate — the retarget case: an element
// re-placed fast→slow keeps its device, but a lease drawn under the old rate
// must be returned to the gate and re-drawn, never spent. The balance tells
// the two apart: returning and re-drawing debits the gate by the new burst's
// cost plus a fresh quantum, while spending the stale lease would leave the
// balance untouched.
func TestLeaseStaleGenerationNotSpent(t *testing.T) {
	dev := newDeviceGate(device.KindSmartNIC, 10*time.Millisecond)
	burst := dev.burstN.Load()
	quantum := burst / leaseDiv // one resident-free worker's lease quantum

	w := &worker{}
	cost1, cost2 := 0.0001, 0.0002
	need1, need2 := nanoUnits(cost1), nanoUnits(cost2)

	w.charge(cost1, dev, 1)
	if w.leaseDev != dev || w.leaseGen != 1 {
		t.Fatalf("lease pinned to gen %d on %v, want gen 1 on the charged gate", w.leaseGen, w.leaseDev)
	}
	if w.leaseNanos != quantum {
		t.Fatalf("lease drawn = %d nano-units, want quantum %d", w.leaseNanos, quantum)
	}
	if got, want := dev.balance.Load(), burst-need1-quantum; got != want {
		t.Fatalf("balance after first charge = %d, want %d", got, want)
	}

	// The generation bump: the stale lease must go back through returnNanos
	// and a fresh lease come out, visible as a further balance debit of
	// need2+quantum (spending the stale lease would debit nothing).
	w.charge(cost2, dev, 2)
	if w.leaseGen != 2 {
		t.Errorf("lease generation after retarget charge = %d, want 2", w.leaseGen)
	}
	if got, want := dev.balance.Load(), burst-need1-need2-quantum; got != want {
		t.Errorf("balance after retarget charge = %d, want %d: stale lease spent or not returned", got, want)
	}
	// Conservation: the gate's net grant is exactly what was spent plus the
	// one outstanding lease.
	if got, want := dev.granted.Load(), need1+need2+w.leaseNanos; got != want {
		t.Errorf("granted = %d nano-units, want spent+outstanding = %d", got, want)
	}
}

// TestLeaseReturnedOnGateChange migrates a shard's charges to a different
// gate: the lease held from the old gate must be returned to the old gate —
// its net grant drops back to exactly the budget spent there — and the new
// gate charged fresh.
func TestLeaseReturnedOnGateChange(t *testing.T) {
	nic := newDeviceGate(device.KindSmartNIC, 10*time.Millisecond)
	cpu := newDeviceGate(device.KindCPU, 10*time.Millisecond)

	w := &worker{}
	cost1, cost2 := 0.0001, 0.0003
	w.charge(cost1, nic, 1)
	if w.leaseDev != nic || w.leaseNanos == 0 {
		t.Fatal("no lease drawn from the first gate")
	}

	w.charge(cost2, cpu, 5)
	if w.leaseDev != cpu || w.leaseGen != 5 {
		t.Fatalf("lease after gate change pinned to %v gen %d, want the new gate gen 5", w.leaseDev, w.leaseGen)
	}
	if got, want := nic.granted.Load(), nanoUnits(cost1); got != want {
		t.Errorf("old gate granted = %d nano-units, want exactly spent %d: lease leaked across gates", got, want)
	}
	if got, want := cpu.granted.Load(), nanoUnits(cost2)+w.leaseNanos; got != want {
		t.Errorf("new gate granted = %d nano-units, want spent+outstanding = %d", got, want)
	}
}

// TestLeaseReturnForfeitsAboveLimit guards the no-minting edge of
// returnNanos: a return into a bucket already at its limit is forfeited, not
// banked, and the grant counter is only credited back by what was actually
// banked — the balance can never exceed the configured cap.
func TestLeaseReturnForfeitsAboveLimit(t *testing.T) {
	dev := newDeviceGate(device.KindSmartNIC, 10*time.Millisecond)
	burst := dev.burstN.Load()

	// Bucket is seeded full: a return must be forfeited entirely.
	dev.returnNanos(1000)
	if got := dev.balance.Load(); got != burst {
		t.Fatalf("balance after return into a full bucket = %d, want %d", got, burst)
	}
	if got := dev.granted.Load(); got != 0 {
		t.Errorf("granted after forfeited return = %d, want 0: counter credited for unbanked tokens", got)
	}

	// Partial headroom: only the headroom is banked and credited back.
	if !dev.tryTake(500) {
		t.Fatal("seeded gate declined a tiny take")
	}
	dev.returnNanos(1000)
	if got := dev.balance.Load(); got != burst {
		t.Errorf("balance after partial return = %d, want refilled to %d", got, burst)
	}
	if got := dev.granted.Load(); got != 0 {
		t.Errorf("granted after partial return = %d, want 0 (500 taken, 500 banked back)", got)
	}
}

// TestFrozenShardReturnsLease is the freeze-path conservation test: a live
// element serves a known workload (banking a lease along the way), then
// migrates. The freeze quiesces the worker, which must return its unspent
// lease before acking — so the instant the migration completes, the source
// gate's net grant equals exactly the device time the workload cost, with
// no lease budget stranded on the frozen worker. Run under -race.
func TestFrozenShardReturnsLease(t *testing.T) {
	r := twoTenantRuntime(t, device.TypeMonitor, device.TypeMonitor, pcie.DefaultLink(), false)
	r.Start()
	defer r.Close()

	el := r.chains[0].elems[0]
	rate := el.placed.Load().bps

	const frames, frameBytes = 20, 256
	synth := traffic.NewSynth(8, 11)
	sent := 0
	for i := 0; i < frames; i++ {
		if r.SendChain(0, synth.Frame(uint64(i%4), frameBytes)) {
			sent++
		}
		time.Sleep(200 * time.Microsecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for el.meter.Packets() < uint64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("served %d of %d frames before deadline", el.meter.Packets(), sent)
		}
		time.Sleep(time.Millisecond)
	}

	// Freeze and move the element off the NIC: pause() must return the
	// worker's banked lease before acking the freeze.
	if _, err := r.MigrateChain(0, "ga0", device.KindCPU); err != nil {
		t.Fatalf("MigrateChain: %v", err)
	}

	// Exact conservation: with the lease back, the NIC's net grant is the
	// workload's true cost — Σ ceil-rounded burst costs, so at most one
	// nano-unit (1e-9 device-seconds) of overcharge per burst.
	want := float64(sent*frameBytes) / rate
	got := r.gates[device.KindSmartNIC].grantedUnits()
	if tol := float64(sent) * 1e-9; got < want || got > want+tol {
		t.Errorf("NIC granted %.9f device-seconds after freeze, want %.9f (+%.0g rounding): lease stranded or minted",
			got, want, tol)
	}
}
