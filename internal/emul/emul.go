// Package emul is the execution-based emulation runtime: real serialized
// frames flow through the real NF implementations (internal/nf) on a
// goroutine pipeline, with per-vNF token-bucket throttling that reproduces
// the Table-1 capacity asymmetry between SmartNIC and CPU, PCIe crossings
// emulated as latency, and live UNO-style migration (freeze → state
// transfer → restore → replay) while traffic flows.
//
// The emulator complements the discrete-event simulator: chainsim produces
// the paper's figures with virtual-clock precision; emul demonstrates that
// the same control decisions work against actual packet-processing code
// with actual migratable state. Rates are scaled down by Config.Scale so a
// development machine can saturate the emulated devices.
package emul

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/pcie"
)

// Config parameterizes a Runtime.
type Config struct {
	Chain   *chain.Chain
	Catalog device.Catalog
	// Link models PCIe crossings (slept as latency).
	Link pcie.Link
	// Scale divides catalog rates so the host can saturate them: an NF with
	// θ = 2 Gbps and Scale = 1000 is throttled to 2 Mbps. Default 1000.
	Scale float64
	// QueueDepth bounds each NF's input queue in frames (default 256); the
	// queue doubles as the migration freeze buffer.
	QueueDepth int
	// SleepPCIe enables real sleeps for PCIe crossings. Off, crossings are
	// only accounted (useful for fast tests).
	SleepPCIe bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Chain == nil {
		return c, errors.New("emul: nil chain")
	}
	if err := c.Chain.Validate(); err != nil {
		return c, err
	}
	if c.Catalog == nil {
		return c, errors.New("emul: nil catalog")
	}
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c, nil
}

// job is one frame in flight.
type job struct {
	frame    []byte
	ingress  time.Duration
	crossing bool // the frame crossed PCIe to reach this element
}

// element is one chain position: its NF instance, current placement, input
// queue and throttle.
type element struct {
	name string
	typ  string

	mu   sync.Mutex
	inst nf.NF
	loc  atomic.Int32 // device.Kind

	in     chan job
	gate   gate
	drops  atomic.Uint64
	parent *Runtime
	pos    int

	ctrl chan migrateReq
}

type migrateReq struct {
	to   device.Kind
	resp chan migrateResp
}

type migrateResp struct {
	rep migrate.Report
	err error
}

// Runtime is a running emulated chain.
type Runtime struct {
	cfg   Config
	elems []*element

	start   time.Time
	started atomic.Bool
	closed  atomic.Bool

	latency      *metrics.Histogram
	meter        *metrics.Meter
	offered      atomic.Uint64 // frames offered at ingress
	ingressDrops atomic.Uint64 // Send rejections (first queue full)
	inFlight     sync.WaitGroup

	egress func(frame []byte) // optional tap for tests
}

// New builds a runtime with default-configured NF instances per element.
func New(cfg Config) (*Runtime, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:     cfg,
		latency: metrics.NewHistogram(),
		meter:   metrics.NewMeter(0),
	}
	for i, e := range cfg.Chain.Elems {
		inst, err := nf.New(e.Name, e.Type)
		if err != nil {
			return nil, fmt.Errorf("emul: element %d: %w", i, err)
		}
		rate, err := cfg.Catalog.Lookup(e.Type, e.Loc)
		if err != nil {
			return nil, fmt.Errorf("emul: element %d: %w", i, err)
		}
		el := &element{
			name:   e.Name,
			typ:    e.Type,
			inst:   inst,
			in:     make(chan job, cfg.QueueDepth),
			ctrl:   make(chan migrateReq),
			parent: r,
			pos:    i,
		}
		el.loc.Store(int32(e.Loc))
		el.gate.setRate(bytesPerSec(rate, cfg.Scale))
		r.elems = append(r.elems, el)
	}
	return r, nil
}

// bytesPerSec converts a catalog rate to the emulated throttle rate.
func bytesPerSec(g device.Gbps, scale float64) float64 {
	return float64(g) * 1e9 / 8 / scale
}

// Start launches the element workers. It must be called once before Send.
func (r *Runtime) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	r.start = time.Now()
	for _, el := range r.elems {
		go el.run()
	}
}

// now returns emulation time (wall-clock since Start).
func (r *Runtime) now() time.Duration { return time.Since(r.start) }

// Send offers one frame to the chain ingress. It reports false when the
// first element's queue is full (ingress drop). The frame is owned by the
// runtime afterwards.
func (r *Runtime) Send(frame []byte) bool {
	if !r.started.Load() || r.closed.Load() {
		return false
	}
	r.offered.Add(1)
	first := r.elems[0]
	j := job{
		frame:    frame,
		ingress:  r.now(),
		crossing: device.Kind(first.loc.Load()) == device.KindCPU, // NIC ingress → CPU
	}
	r.inFlight.Add(1)
	select {
	case first.in <- j:
		return true
	default:
		r.inFlight.Done()
		r.ingressDrops.Add(1)
		r.meter.Drop(r.now())
		return false
	}
}

// Drain blocks until every accepted frame has left the pipeline.
func (r *Runtime) Drain() { r.inFlight.Wait() }

// Close shuts the pipeline down after draining. The runtime cannot be
// restarted.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	r.Drain()
	for _, el := range r.elems {
		close(el.in)
	}
}

// SetEgressTap installs fn to receive every delivered frame (tests).
// Must be set before Start.
func (r *Runtime) SetEgressTap(fn func(frame []byte)) { r.egress = fn }

// run is the per-element worker: control messages (migration) preempt
// packet work; the bounded input channel doubles as the freeze buffer while
// a migration is in progress.
func (el *element) run() {
	dec := packet.NewDecoder()
	for {
		select {
		case req := <-el.ctrl:
			req.resp <- el.doMigrate(req.to)
			continue
		default:
		}
		select {
		case req := <-el.ctrl:
			req.resp <- el.doMigrate(req.to)
		case j, ok := <-el.in:
			if !ok {
				return
			}
			el.process(j, dec)
		}
	}
}

// process runs one frame through this element's NF and forwards it.
func (el *element) process(j job, dec *packet.Decoder) {
	r := el.parent

	// Emulate the device capacity: the gate admits len(frame) bytes at the
	// element's current rate.
	el.gate.take(len(j.frame))

	// PCIe crossing latency to reach this element, if any.
	if j.crossing && r.cfg.SleepPCIe {
		time.Sleep(r.cfg.Link.CrossingTime(len(j.frame)))
	}

	_, _ = dec.Decode(j.frame) // NFs tolerate partial decodes
	ctx := nf.Ctx{
		Frame:   j.frame,
		Decoder: dec,
		Now:     r.now(),
	}
	if k, ok := flow.FromDecoder(dec); ok {
		ctx.FlowKey, ctx.HasFlow = k, true
	}
	el.mu.Lock()
	inst := el.inst
	el.mu.Unlock()
	verdict, _ := inst.Process(&ctx)
	if verdict == nf.VerdictDrop {
		r.inFlight.Done()
		return
	}

	// Forward to the next element or egress.
	if el.pos == len(r.elems)-1 {
		// Egress: crossing back to the NIC when the tail is on the CPU.
		if device.Kind(el.loc.Load()) == device.KindCPU && r.cfg.SleepPCIe {
			time.Sleep(r.cfg.Link.CrossingTime(len(j.frame)))
		}
		now := r.now()
		r.latency.Record(int64(now - j.ingress))
		r.meter.Observe(len(j.frame), now)
		if r.egress != nil {
			r.egress(j.frame)
		}
		r.inFlight.Done()
		return
	}
	next := r.elems[el.pos+1]
	j.crossing = el.loc.Load() != next.loc.Load()
	select {
	case next.in <- j:
	default:
		next.drops.Add(1)
		r.meter.Drop(r.now())
		r.inFlight.Done()
	}
}

// doMigrate performs the UNO sequence on the worker goroutine: the element
// is implicitly frozen (no packets consumed) for the duration; arriving
// frames accumulate in the bounded input queue and are replayed by virtue
// of FIFO consumption after the swap.
func (el *element) doMigrate(to device.Kind) migrateResp {
	r := el.parent
	from := device.Kind(el.loc.Load())
	if from == to {
		return migrateResp{rep: migrate.Report{Element: el.name}}
	}
	rate, err := r.cfg.Catalog.Lookup(el.typ, to)
	if err != nil {
		return migrateResp{err: err}
	}
	fresh, err := nf.New(el.name, el.typ)
	if err != nil {
		return migrateResp{err: err}
	}
	tr := migrate.PCIeTransport{Link: r.cfg.Link, Setup: time.Millisecond}
	el.mu.Lock()
	old := el.inst
	el.mu.Unlock()
	rep, err := migrate.Move(old, fresh, tr)
	if err != nil {
		return migrateResp{err: err}
	}
	rep.Buffered = len(el.in)
	if r.cfg.SleepPCIe {
		time.Sleep(rep.Transfer)
	}
	el.mu.Lock()
	el.inst = fresh
	el.mu.Unlock()
	el.loc.Store(int32(to))
	el.gate.setRate(bytesPerSec(rate, r.cfg.Scale))
	rep.Replayed = rep.Buffered // FIFO consumption replays the queue
	return migrateResp{rep: rep}
}

// Migrate live-moves the named element to the device, returning the
// migration report. Loss-free: frames arriving during the move wait in the
// element's queue (up to QueueDepth).
func (r *Runtime) Migrate(name string, to device.Kind) (migrate.Report, error) {
	for _, el := range r.elems {
		if el.name != name {
			continue
		}
		req := migrateReq{to: to, resp: make(chan migrateResp, 1)}
		el.ctrl <- req
		resp := <-req.resp
		return resp.rep, resp.err
	}
	return migrate.Report{}, fmt.Errorf("emul: no element %q", name)
}

// Placement returns the current placement as a chain.
func (r *Runtime) Placement() *chain.Chain {
	c := r.cfg.Chain.Clone()
	for i, el := range r.elems {
		c.SetLoc(i, device.Kind(el.loc.Load()))
	}
	return c
}

// NFStats returns the per-element NF statistics by name.
func (r *Runtime) NFStats() map[string]nf.Stats {
	out := make(map[string]nf.Stats, len(r.elems))
	for _, el := range r.elems {
		el.mu.Lock()
		out[el.name] = el.inst.Stats()
		el.mu.Unlock()
	}
	return out
}

// Instance returns the live NF instance for a name (tests inspect state).
func (r *Runtime) Instance(name string) (nf.NF, bool) {
	for _, el := range r.elems {
		if el.name == name {
			el.mu.Lock()
			defer el.mu.Unlock()
			return el.inst, true
		}
	}
	return nil, false
}

// Result summarizes the run so far. The accounting identity is
//
//	accepted Sends = Delivered + Σ NF verdict drops + Σ QueueDrops
//
// with ingress rejections (Send returning false) counted separately in
// IngressDrops.
type Result struct {
	Latency       metrics.Summary
	Offered       uint64
	Delivered     uint64
	Dropped       uint64 // all drops seen by the meter (ingress + queue)
	IngressDrops  uint64
	DeliveredGbps float64 // at emulated (scaled) rate
	QueueDrops    map[string]uint64
}

// Results snapshots the runtime's measurements.
func (r *Runtime) Results() Result {
	qd := make(map[string]uint64, len(r.elems))
	for _, el := range r.elems {
		qd[el.name] = el.drops.Load()
	}
	return Result{
		Latency:       r.latency.Snapshot(),
		Offered:       r.offered.Load(),
		Delivered:     r.meter.Packets(),
		Dropped:       r.meter.Drops(),
		IngressDrops:  r.ingressDrops.Load(),
		DeliveredGbps: r.meter.Gbps(),
		QueueDrops:    qd,
	}
}

// gate is a token bucket throttling a worker to a byte rate. take blocks
// (sleeps) until the requested bytes are available. Rate changes take
// effect immediately (migration changes the device).
type gate struct {
	mu     sync.Mutex
	rate   float64 // bytes/s
	tokens float64
	burst  float64
	last   time.Time
}

func (g *gate) setRate(bps float64) {
	g.mu.Lock()
	g.rate = bps
	g.burst = bps / 100 // 10 ms of burst
	if g.burst < float64(packet.MaxFrameSize) {
		g.burst = float64(packet.MaxFrameSize)
	}
	if g.last.IsZero() {
		g.last = time.Now()
		g.tokens = g.burst
	}
	g.mu.Unlock()
}

// take blocks until n bytes of budget are available.
func (g *gate) take(n int) {
	for {
		g.mu.Lock()
		now := time.Now()
		g.tokens += g.rate * now.Sub(g.last).Seconds()
		g.last = now
		if g.tokens > g.burst {
			g.tokens = g.burst
		}
		if g.tokens >= float64(n) {
			g.tokens -= float64(n)
			g.mu.Unlock()
			return
		}
		need := (float64(n) - g.tokens) / g.rate
		g.mu.Unlock()
		time.Sleep(time.Duration(need * float64(time.Second)))
	}
}
