// Package emul is the execution-based emulation runtime: real serialized
// frames flow through the real NF implementations (internal/nf) on a
// run-to-completion worker pool, throttled by one shared capacity gate per
// emulated device — a token bucket in normalized device-seconds that
// reproduces both the Table-1 capacity asymmetry between SmartNIC and CPU
// and the paper's linear contention model (co-resident vNFs whose summed
// demand exceeds the device budget physically collapse each other's
// throughput) — with PCIe crossings drawing on one shared DMA-engine budget
// in link-seconds (so simultaneous crossings contend for the interconnect
// just as co-resident vNFs contend for a device) and live UNO-style
// migration (freeze → state transfer → restore → replay) while traffic
// flows.
//
// The dataplane is batch-granular, in the style of a DPDK burst loop.
// Config.Workers pool goroutines (default GOMAXPROCS) each own a stable
// subset of per-(element, shard) lock-free MPSC ring queues and poll them
// in round-robin, draining up to Config.BatchSize frames per visit. A burst
// shares one token-bucket transaction, one PCIe propagation charge, and one
// ProcessBatch call; when the burst's survivors continue to a successor
// element on the same device whose shard the same worker owns, they are
// processed run-to-completion in the same visit, with no re-queue hop.
// Frames are distributed to shards by an RSS-style flow hash, so per-flow
// FIFO order is preserved end to end. With Config.PoolFrames, delivered and
// dropped frame buffers are recycled through an internal pool
// (AcquireFrame), making steady-state emulation nearly allocation-free.
//
// One runtime hosts N service chains sharing the same emulated SmartNIC and
// CPU — the multi-tenant setting of a real NFV server. Each chain owns its
// elements, its ingress (SendChain) and its egress accounting; devices are
// shared *physically*: every element resident on a device draws on that
// device's one capacity gate, so a summed-demand hot spot slows every
// co-resident tenant down, and the control plane's LoadSampler reports
// both the offered demand (which keeps climbing) and the granted share
// (which the gate caps) per device across chains. Migration is
// chain-scoped: a push-aside freezes only the migrating element's rings,
// so every other tenant keeps forwarding — even tenants whose rings are
// polled by the same pool worker — while one tenant's vNF moves across
// PCIe and re-attaches to its new device's gate.
//
// The emulator complements the discrete-event simulator: chainsim produces
// the paper's figures with virtual-clock precision; emul demonstrates that
// the same control decisions work against actual packet-processing code
// with actual migratable state. Rates are scaled down by Config.Scale so a
// development machine can saturate the emulated devices.
package emul

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/pcie"
)

// Config parameterizes a Runtime.
type Config struct {
	// Chain is the single-tenant convenience form: equivalent to Chains
	// holding exactly this chain. Set one of Chain or Chains, not both.
	Chain *chain.Chain
	// Chains hosts several tenants' service chains on the same emulated
	// SmartNIC+CPU pair. Chain names must be unique; element names must be
	// unique within a chain (and should be unique across chains so that
	// Migrate-by-name stays unambiguous).
	Chains  []*chain.Chain
	Catalog device.Catalog
	// Link models PCIe crossings. Every crossing burst draws
	// PropDelay + scaled serialization from the runtime's one shared
	// DMA-engine budget (see dmagate.go), so concurrent crossings contend
	// for the link instead of each seeing it unloaded; a zero Link makes
	// crossings free. SleepPCIe additionally sleeps the unloaded latency.
	Link pcie.Link
	// Scale divides catalog rates so the host can saturate them: an NF with
	// θ = 2 Gbps and Scale = 1000 is throttled to 2 Mbps. Default 1000.
	Scale float64
	// QueueDepth bounds each NF's input queue in frames (default 256); the
	// queue doubles as the migration freeze buffer. Sharded elements split
	// the depth across their shards; each shard's ring rounds its share up
	// to the next power of two (minimum 8).
	QueueDepth int
	// BatchSize caps how many frames a worker drains and processes per ring
	// visit (default 32, clamped to QueueDepth). The burst shares one
	// token-bucket transaction, one PCIe propagation charge and one
	// ProcessBatch call.
	BatchSize int
	// Workers sizes the run-to-completion worker pool: this many goroutines
	// total serve every element of every hosted chain (default GOMAXPROCS).
	// An element whose NF reports ConcurrencySafe is sharded into Workers
	// flow-hash shards, shard i owned by pool worker i; a non-safe element
	// keeps a single shard, owned by worker chainIndex mod Workers so
	// single-shard tenants spread across the pool. Frames are assigned to
	// shards by flow-key hash, preserving per-flow FIFO order.
	Workers int
	// DeviceBurst is each shared device gate's fairness burst, expressed as
	// bankable device time (default 10ms). An idle device accumulates up to
	// this much budget, so a fresh burst is admitted immediately; under
	// contention it bounds how long one element can monopolize the device
	// between grants. Smaller values tighten fairness between co-resident
	// elements, larger ones favour batch efficiency.
	DeviceBurst time.Duration
	// PoolFrames recycles every delivered or dropped frame's buffer into
	// the runtime's frame pool. Callers should then obtain frames with
	// AcquireFrame and must not retain frames in an egress tap beyond the
	// call. Off by default: frames are left to the GC.
	PoolFrames bool
	// SleepPCIe enables real sleeps for the unloaded PCIe crossing latency
	// on top of the shared DMA-engine charge (which models occupancy and
	// contention, not the latency floor). Off, crossings cost only their
	// engine budget.
	SleepPCIe bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Chain != nil && len(c.Chains) > 0 {
		return c, errors.New("emul: set Chain or Chains, not both")
	}
	if c.Chain != nil {
		c.Chains = []*chain.Chain{c.Chain}
		c.Chain = nil
	}
	if len(c.Chains) == 0 {
		return c, errors.New("emul: nil chain")
	}
	names := make(map[string]bool, len(c.Chains))
	for i, ch := range c.Chains {
		if ch == nil {
			return c, fmt.Errorf("emul: chain %d is nil", i)
		}
		if err := ch.Validate(); err != nil {
			return c, err
		}
		if len(c.Chains) > 1 && names[ch.Name] {
			return c, fmt.Errorf("emul: duplicate chain name %q", ch.Name)
		}
		names[ch.Name] = true
	}
	if c.Catalog == nil {
		return c, errors.New("emul: nil catalog")
	}
	// chainsim validates its link up front; the emulator historically did
	// not, silently accepting a negative PropDelay or bandwidth that later
	// produced negative sleeps and negative gate costs.
	if err := c.Link.Validate(); err != nil {
		return c, fmt.Errorf("emul: %w", err)
	}
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.BatchSize > c.QueueDepth {
		c.BatchSize = c.QueueDepth
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DeviceBurst <= 0 {
		c.DeviceBurst = 10 * time.Millisecond
	}
	return c, nil
}

// job is one frame in flight.
type job struct {
	frame    []byte
	hash     uint64 // RSS-style flow hash, computed once at ingress
	ingress  time.Duration
	crossing bool // the frame crossed PCIe to reach this element
}

// tenantChain is one hosted service chain: its elements, its egress
// accounting, and its ingress counters. Chains share the runtime's emulated
// devices but nothing else — freezing one chain's element never blocks
// another chain's traffic.
type tenantChain struct {
	idx   int
	name  string
	spec  *chain.Chain
	elems []*element

	latency *metrics.Histogram
	// meter carries egress deliveries + this chain's drops, sharded into
	// per-pool-worker cells (cell 0 for writers without a worker identity)
	// so the tail writers never contend on one counter line.
	meter        *metrics.ShardedMeter
	offered      atomic.Uint64 // frames offered at this chain's ingress
	ingressDrops atomic.Uint64 // SendChain rejections (first queue full)

	// inflight counts this chain's accepted frames still inside the
	// pipeline — the per-chain slice of Runtime.inFlight. DrainChain polls
	// it to zero during a cross-server handoff.
	inflight atomic.Int64
	// quiesced closes this chain's ingress: SendChain rejects without
	// metering, so a chain parked after its tenant migrated away neither
	// accepts traffic nor pollutes the source server's demand telemetry.
	quiesced atomic.Bool
}

// element is one chain position: its NF instance, current placement, input
// shards and its attachment to the shared device gate.
type element struct {
	name string
	typ  string

	// inst is the element's live NF instance, published as an atomic
	// pointer: processBurst loads it once per burst with no lock, and
	// doMigrate swaps it only while the element is frozen, so no burst of
	// this element is in flight anywhere during the store.
	inst atomic.Pointer[nf.NF]
	loc  atomic.Int32 // device.Kind

	// placed is the element's position on the shared capacity model,
	// published as one immutable placement value so the per-burst read
	// (chargeFor) is a single atomic load with no torn rate/device/
	// generation triple. rateMu and rateCond exist only for the zero-rate
	// park: a worker that loads a non-positive rate parks in awaitRate
	// until place — or Close — broadcasts.
	placed   atomic.Pointer[placement]
	rateMu   sync.Mutex
	rateCond *sync.Cond

	// paused freezes the element for a live migration: owning workers skip
	// its rings (which then buffer arrivals — the freeze buffer) and never
	// process it inline. Set by the migration coordinator before the pause
	// rendezvous, cleared after the swap.
	paused atomic.Bool

	shards []*shard
	// owners is the deduplicated set of pool workers owning at least one of
	// this element's shards — the rendezvous set for a migration freeze.
	owners []*worker
	drops  atomic.Uint64
	parent *Runtime
	ch     *tenantChain
	pos    int // position within ch.elems

	// meter measures this element's served load: ObserveN counts every burst
	// the element actually processed (its granted rate), Drop/DropN every
	// frame lost entering its queues. It is sharded into per-pool-worker
	// cells (worker w writes cell w+1; cell 0 takes ingress-side writes),
	// folded only when the LoadSampler samples.
	// offeredBytes/offeredPkts count every frame that *arrived* at the
	// element's queues — including frames the full queue rejected — so the
	// LoadSampler can report offered demand separately from the device
	// gate's grant.
	meter        *metrics.ShardedMeter
	offeredBytes atomic.Uint64
	offeredPkts  atomic.Uint64

	// epochMu guards epochs: the element's cumulative meter totals at each
	// past migration, recorded while the element is frozen. A LoadSampler
	// splits its window at these cuts so the slice served on the old device
	// is attributed to — and priced at the catalog capacity of — that
	// device, instead of the whole window being charged to wherever the
	// element sits at sample time. Append-only (migrations are rare and
	// cooldown-bounded); samplers keep their own consumption cursor.
	epochMu sync.Mutex
	epochs  []locEpoch

	migMu sync.Mutex // serializes migrations of this element
}

// placement is one immutable position of an element on the shared capacity
// model: bps its catalog capacity on the current device scaled to bytes/s
// (the divisor that converts a burst's bytes into normalized
// device-seconds), dev the device gate those seconds are charged to, and
// gen a generation counter place bumps on every retarget — a worker
// holding a token lease from an older generation must return it to the
// gate it was drawn from instead of spending stale budget. place publishes
// a fresh value on every change; readers treat a loaded placement as
// read-only.
type placement struct {
	bps float64
	gen uint64
	dev *deviceGate
}

// chargeFor returns the burst's cost in normalized device-seconds, the
// gate to charge it to and the placement generation the cost was computed
// under (a lease drawn for this burst is valid only while that generation
// holds). The placed regime is one atomic load and a division; a
// non-positive rate falls through to awaitRate's park. It reports ok=false
// when the runtime closed while the worker was parked: an abandoned park
// must release its burst instead of stranding Drain on frames nobody will
// ever serve.
//
//pam:hotpath
func (el *element) chargeFor(totalBytes int) (cost float64, dev *deviceGate, gen uint64, ok bool) {
	p := el.placed.Load()
	if p == nil || p.bps <= 0 {
		if p, ok = el.awaitRate(); !ok {
			return 0, nil, 0, false
		}
	}
	return float64(totalBytes) / p.bps, p.dev, p.gen, true
}

// awaitRate parks until place publishes a positive rate (an element
// observed before its first placement must park, not spin), reporting
// ok=false when the runtime closed while parked: Close broadcasts the rate
// conditions after setting closed. The re-check-under-lock pairs with
// place, which publishes the new placement before taking rateMu to
// broadcast — a parked worker either sees the fresh rate or receives the
// wakeup.
//
//pam:slowpath
func (el *element) awaitRate() (*placement, bool) {
	el.rateMu.Lock()
	defer el.rateMu.Unlock()
	for {
		if p := el.placed.Load(); p != nil && p.bps > 0 {
			return p, true
		}
		if el.parent.closed.Load() {
			return nil, false
		}
		el.rateCond.Wait()
	}
}

// place points the element at a device gate with its scaled catalog rate
// there, moving the resident bookkeeping. Attach/detach never touches the
// gates' banked tokens, so re-placement (a live migration) cannot leak or
// mint device budget. Bumping the generation invalidates every worker's
// outstanding token lease: a lease drawn under the old rate (or from the
// old gate) is returned, never spent — the lease form of the setRate
// fast→slow clamp guarantee. The broadcast releases any worker parked on a
// zero-rate element. Callers are serialized (the constructor, then
// migrations under migMu), so the load-then-store pair cannot lose an
// update.
func (el *element) place(dev *deviceGate, bps float64) {
	old := el.placed.Load()
	gen := uint64(1)
	if old != nil {
		gen = old.gen + 1
	}
	if old == nil || old.dev != dev {
		if old != nil && old.dev != nil {
			old.dev.detach()
		}
		dev.attach()
	}
	el.placed.Store(&placement{bps: bps, gen: gen, dev: dev})
	el.rateMu.Lock()
	el.rateCond.Broadcast()
	el.rateMu.Unlock()
}

// shard is one input queue of an element: a lock-free MPSC ring (which
// doubles as the migration freeze buffer) statically owned by one pool
// worker — the single consumer.
type shard struct {
	el    *element
	idx   int // shard index within the element
	q     *ring
	owner *worker
}

// shardFor maps a flow hash to the element's shard, pinning each flow to
// one shard (and therefore one owning worker).
func (el *element) shardFor(h uint64) *shard {
	if len(el.shards) == 1 {
		return el.shards[0]
	}
	return el.shards[h%uint64(len(el.shards))]
}

// pauseReq is the migration coordinator's rendezvous with one owning
// worker: the worker signals acked once it is between bursts (its token
// lease returned). There is no resume barrier — the worker keeps draining
// every non-paused ring it owns while the frozen element migrates.
type pauseReq struct {
	acked chan struct{}
}

// worker is one goroutine of the run-to-completion pool. It owns a static
// subset of every element's shards and polls their rings round-robin in
// chain, then position order, so upstream elements of a chain are visited
// before downstream ones and every tenant gets one burst opportunity per
// sweep.
type worker struct {
	idx int
	r   *Runtime

	shards []*shard // owned rings, in visit order

	// Parking: a worker with no runnable work sets sleeping, re-checks its
	// rings (producers push first and read sleeping second, so one of the
	// two sides always observes the other) and blocks on wake. Producers
	// signal wake — capacity 1, non-blocking send — after a push.
	wake     chan struct{}
	sleeping atomic.Bool

	// ctrl carries migration pause rendezvous; ctrlPending lets the hot
	// loop test for pending control work with one atomic load instead of a
	// channel poll per burst.
	ctrl        chan *pauseReq
	ctrlPending atomic.Int32

	// The worker's token lease: device budget drawn from leaseDev in bulk
	// (drawLease) and charged burst-by-burst with plain local arithmetic —
	// the amortization that keeps the steady uncontended path free of
	// shared-memory traffic. Owned exclusively by the worker goroutine
	// (the pause rendezvous and the run loop's exit both execute on it),
	// so no synchronization applies. leaseGen pins the placement generation
	// the lease was drawn under; a stale lease is returned to leaseDev,
	// never spent.
	leaseDev   *deviceGate
	leaseGen   uint64
	leaseNanos int64
}

// charge admits a burst of cost device-seconds against dev: first from the
// worker's local lease (free), then by drawing a fresh lease on the CAS
// fast path, and only on exhaustion through the gate's blocking FIFO path.
// gen is the placement generation the cost was computed under; a lease
// from any other generation (element migrated, rate retargeted) is
// returned to its own gate first so stale budget is never spent.
//
//pam:hotpath
func (w *worker) charge(cost float64, dev *deviceGate, gen uint64) {
	need := nanoUnits(cost)
	if w.leaseDev == dev && w.leaseGen == gen {
		if w.leaseNanos >= need {
			w.leaseNanos -= need
			return
		}
		// Spend the remainder toward this burst; the rest comes fresh.
		need -= w.leaseNanos
		w.leaseNanos = 0
	} else if w.leaseDev != nil {
		w.releaseLease()
	}
	if extra, ok := dev.drawLease(need); ok {
		w.leaseDev, w.leaseGen, w.leaseNanos = dev, gen, extra
		return
	}
	// Token exhaustion: the contended regime. Block on the FIFO path with
	// no lease — under contention per-burst grants are what keeps
	// co-resident elements sharing the budget fairly.
	dev.takeNanos(need)
}

// releaseLease returns the worker's unspent lease to the gate it was drawn
// from. Called on migration freeze, on a stale generation, and on worker
// exit, so banked budget can never outlive the placement it was drawn
// under — gate budget conservation stays exact.
func (w *worker) releaseLease() {
	if w.leaseDev != nil && w.leaseNanos > 0 {
		w.leaseDev.returnNanos(w.leaseNanos)
	}
	w.leaseDev, w.leaseGen, w.leaseNanos = nil, 0, 0
}

// wakeIfSleeping nudges a parked worker. Callers first make their work
// visible (ring publish, ctrlPending increment, paused clear); the
// worker's park sequence stores sleeping before its final work re-check,
// so either the producer sees sleeping and signals, or the worker sees the
// work — a lost wakeup requires both loads to precede both stores, which
// the total order on sequentially consistent atomics forbids.
//
//pam:hotpath
func (w *worker) wakeIfSleeping() {
	if w.sleeping.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// Runtime is a running emulated multi-chain dataplane.
type Runtime struct {
	cfg    Config
	chains []*tenantChain

	// gates is the shared-capacity registry: one token bucket per device
	// instance, keyed by device.Kind, shared by every resident element
	// across all hosted chains. Built once in New; the map is immutable.
	gates map[device.Kind]*deviceGate
	// dma is the shared DMA-engine budget every PCIe crossing of every
	// chain draws on — the interconnect analogue of the per-device gates.
	dma *dmaGate

	workers  []*worker
	stop     chan struct{} // closed by Close after Drain: workers exit
	workerWG sync.WaitGroup

	start   time.Time
	started atomic.Bool
	closed  atomic.Bool
	closeMu sync.RWMutex // excludes Send and Migrate against Close

	frames   *packet.FramePool
	decoders *packet.DecoderPool

	inFlight sync.WaitGroup

	egress func(chainIdx int, frame []byte) // optional tap for tests
}

// New builds a runtime with default-configured NF instances per element.
func New(cfg Config) (*Runtime, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:      cfg,
		gates:    newDeviceGates(cfg.DeviceBurst),
		dma:      newDMAGate(cfg.Link, cfg.Scale, cfg.DeviceBurst),
		stop:     make(chan struct{}),
		frames:   packet.NewFramePool(),
		decoders: packet.NewDecoderPool(),
	}
	r.workers = make([]*worker, cfg.Workers)
	for i := range r.workers {
		r.workers[i] = &worker{
			idx:  i,
			r:    r,
			wake: make(chan struct{}, 1),
			ctrl: make(chan *pauseReq, 4),
		}
	}
	for ci, spec := range cfg.Chains {
		tc := &tenantChain{
			idx:     ci,
			name:    spec.Name,
			spec:    spec.Clone(),
			latency: metrics.NewHistogram(),
			meter:   metrics.NewShardedMeter(cfg.Workers+1, 0),
		}
		for i, e := range spec.Elems {
			inst, err := nf.New(e.Name, e.Type)
			if err != nil {
				return nil, fmt.Errorf("emul: chain %q element %d: %w", spec.Name, i, err)
			}
			rate, err := cfg.Catalog.Lookup(e.Type, e.Loc)
			if err != nil {
				return nil, fmt.Errorf("emul: chain %q element %d: %w", spec.Name, i, err)
			}
			el := &element{
				name:   e.Name,
				typ:    e.Type,
				parent: r,
				ch:     tc,
				pos:    i,
				meter:  metrics.NewShardedMeter(cfg.Workers+1, 0),
			}
			el.inst.Store(&inst)
			el.loc.Store(int32(e.Loc))
			el.rateCond = sync.NewCond(&el.rateMu)
			gate, err := r.gateFor(e.Loc)
			if err != nil {
				return nil, fmt.Errorf("emul: chain %q element %d: %w", spec.Name, i, err)
			}
			el.place(gate, bytesPerSec(rate, cfg.Scale))
			nshards := 1
			if inst.ConcurrencySafe() {
				nshards = cfg.Workers
			}
			depth := (cfg.QueueDepth + nshards - 1) / nshards
			for s := 0; s < nshards; s++ {
				// Static shard→worker ownership: a sharded element's shard i
				// belongs to worker i (flows hash straight to their worker);
				// a single-shard element belongs to worker chainIdx mod
				// Workers, spreading single-shard tenants across the pool.
				oi := s
				if nshards == 1 {
					oi = ci
				}
				ow := r.workers[oi%cfg.Workers]
				sh := &shard{el: el, idx: s, q: newRing(depth), owner: ow}
				el.shards = append(el.shards, sh)
				ow.shards = append(ow.shards, sh)
			}
			for _, sh := range el.shards {
				seen := false
				for _, ow := range el.owners {
					if ow == sh.owner {
						seen = true
						break
					}
				}
				if !seen {
					el.owners = append(el.owners, sh.owner)
				}
			}
			tc.elems = append(tc.elems, el)
		}
		r.chains = append(r.chains, tc)
	}
	return r, nil
}

// bytesPerSec converts a catalog rate to the emulated throttle rate — the
// named gbps → bytes/s conversion helper the unitcheck analyzer requires.
//
//pam:unitconv
func bytesPerSec(g device.Gbps, scale float64) float64 {
	return float64(g) * 1e9 / 8 / scale
}

// gateFor resolves the shared capacity gate of a device kind, returning a
// typed *UnknownDeviceKindError instead of a nil gate for a kind outside
// device.Kinds (the registry is built from that list, so this only trips
// when a caller fabricates a Kind value).
func (r *Runtime) gateFor(k device.Kind) (*deviceGate, error) {
	if g, ok := r.gates[k]; ok {
		return g, nil
	}
	return nil, &UnknownDeviceKindError{Kind: k}
}

// Start launches the worker pool. It must be called once before Send.
func (r *Runtime) Start() {
	if r.closed.Load() || !r.started.CompareAndSwap(false, true) {
		return
	}
	r.start = time.Now()
	for _, w := range r.workers {
		r.workerWG.Add(1)
		go w.run()
	}
}

// now returns emulation time (wall-clock since Start).
func (r *Runtime) now() time.Duration { return time.Since(r.start) }

// AcquireFrame returns a frame buffer of length n from the runtime's pool.
// With Config.PoolFrames set, every delivered or dropped frame's buffer is
// recycled into the same pool, so steady-state traffic generated through
// AcquireFrame allocates nothing.
func (r *Runtime) AcquireFrame(n int) []byte { return r.frames.Get(n) }

// recycle returns a finished frame's buffer to the pool when pooling is on.
func (r *Runtime) recycle(frame []byte) {
	if r.cfg.PoolFrames {
		r.frames.Put(frame)
	}
}

// NumChains returns how many service chains the runtime hosts.
func (r *Runtime) NumChains() int { return len(r.chains) }

// Send offers one frame to chain 0's ingress — the whole dataplane when the
// runtime hosts a single chain. See SendChain.
func (r *Runtime) Send(frame []byte) bool { return r.SendChain(0, frame) }

// SendChain offers one frame to the given chain's ingress. It reports false
// when the chain index is out of range or the first element's queue is full
// (ingress drop). The frame is owned by the runtime once accepted; a
// rejected frame stays with the caller. The push itself is one lock-free
// ring publish plus (only when the owning worker is parked) one wake
// signal: zero allocations in steady state.
//
//pam:hotpath
func (r *Runtime) SendChain(ci int, frame []byte) bool {
	// The read lock excludes Close: once closed is set under the write
	// lock, no Send can be past the check below, so Close's Drain cannot
	// miss an in-flight increment. The deliberate exception to the
	// hot-path no-locks rule: an RWMutex read lock is one atomic in the
	// uncontended regime and only ever contends against Close itself.
	r.closeMu.RLock() //pam:slowpath-ok close-exclusion read lock
	defer r.closeMu.RUnlock()
	if !r.started.Load() || r.closed.Load() || ci < 0 || ci >= len(r.chains) {
		return false
	}
	tc := r.chains[ci]
	if tc.quiesced.Load() {
		// Ingress closed for a cross-server handoff: reject without
		// metering — these frames belong to the destination server now.
		return false
	}
	tc.offered.Add(1)
	first := tc.elems[0]
	// Offered demand is metered before the queue decides: an ingress-dropped
	// frame still arrived, and the LoadSampler's demand utilization must see
	// it even when the shared device gate cannot grant it.
	first.offeredPkts.Add(1)
	first.offeredBytes.Add(uint64(len(frame)))
	headCPU := device.Kind(first.loc.Load()) == device.KindCPU
	if headCPU {
		// DMA demand is metered at arrival too: this frame must cross to
		// reach the CPU-resident head, and — when the head is also the tail —
		// cross back on egress, whether or not the engine ever grants it.
		r.dma.offer(dmaToCPU, uint64(len(frame)))
		if len(tc.elems) == 1 {
			r.dma.offer(dmaToNIC, uint64(len(frame)))
		}
	}
	j := job{
		frame:    frame,
		hash:     packet.FlowHash(frame),
		ingress:  r.now(),
		crossing: headCPU, // NIC ingress → CPU
	}
	r.inFlight.Add(1)
	tc.inflight.Add(1)
	s := first.shardFor(j.hash)
	if s.q.push(j) {
		s.owner.wakeIfSleeping()
		return true
	}
	r.inFlight.Done()
	tc.inflight.Add(-1)
	tc.ingressDrops.Add(1)
	now := r.now()
	// Senders have no worker identity: ingress drops land in cell 0.
	tc.meter.Cell(0).Drop(now)
	first.meter.Cell(0).Drop(now)
	return false
}

// Drain blocks until every accepted frame has left the pipeline.
func (r *Runtime) Drain() { r.inFlight.Wait() }

// Close shuts the pipeline down after draining. The runtime cannot be
// restarted. Safe to call concurrently with Send: late Sends are rejected.
func (r *Runtime) Close() {
	r.closeMu.Lock()
	if !r.closed.CompareAndSwap(false, true) {
		r.closeMu.Unlock()
		return
	}
	r.closeMu.Unlock()
	// Wake any worker parked on a non-positive rate: chargeFor re-checks
	// closed on wakeup and abandons its burst, so Drain below cannot hang on
	// frames a rate-less element will never serve.
	for _, tc := range r.chains {
		for _, el := range tc.elems {
			el.rateMu.Lock()
			el.rateCond.Broadcast()
			el.rateMu.Unlock()
		}
	}
	r.Drain()
	close(r.stop)
	r.workerWG.Wait()
}

// SetEgressTap installs fn to receive every delivered frame of every chain
// (tests). Must be set before Start. With Config.Workers > 1 different
// chains' tails may be served by different pool workers, in which case fn
// is called concurrently from several goroutines and must synchronize
// internally. With Config.PoolFrames the frame buffer is recycled when fn
// returns, so fn must copy anything it keeps.
func (r *Runtime) SetEgressTap(fn func(frame []byte)) {
	r.egress = func(_ int, frame []byte) { fn(frame) }
}

// SetChainEgressTap is SetEgressTap with the delivering chain's index, for
// multi-tenant tests that attribute egress per tenant.
func (r *Runtime) SetChainEgressTap(fn func(chainIdx int, frame []byte)) { r.egress = fn }

// run is the pool worker's goroutine body: allocate the per-worker batch
// scratch once (decoders, job slices, context arrays), then enter the
// polling loop. The split keeps every allocation in this prologue so the
// loop itself is provably allocation-free.
func (w *worker) run() {
	r := w.r
	defer r.workerWG.Done()
	batch := r.cfg.BatchSize
	decs := make([]*packet.Decoder, batch)
	for i := range decs {
		decs[i] = r.decoders.Get()
	}
	defer w.releaseLease() // worker exit returns any banked device budget
	defer func() {
		for _, d := range decs {
			r.decoders.Put(d)
		}
	}()
	jobs := make([]job, batch)
	inline := make([]job, 0, batch)
	ctxs := make([]nf.Ctx, batch)
	ptrs := make([]*nf.Ctx, batch)
	lats := make([]int64, 0, batch)
	w.loop(decs, jobs, inline, ctxs, ptrs, lats)
}

// loop polls every owned ring round-robin, draining and processing up to
// one burst per visit; it handles migration pause rendezvous between
// bursts and parks when a full sweep finds no work.
//
//pam:hotpath
func (w *worker) loop(decs []*packet.Decoder, jobs, inline []job, ctxs []nf.Ctx, ptrs []*nf.Ctx, lats []int64) {
	r := w.r
	for {
		if w.ctrlPending.Load() != 0 {
			w.handleCtrl()
		}
		did := false
		for _, s := range w.shards {
			if s.el.paused.Load() {
				continue // frozen: the ring buffers arrivals
			}
			n := s.q.popBatch(jobs)
			if n == 0 {
				continue
			}
			did = true
			w.processBurst(s.el, jobs[:n], &inline, decs, ctxs, ptrs, &lats)
			if w.ctrlPending.Load() != 0 {
				w.handleCtrl()
			}
		}
		if did {
			continue
		}
		// Park. The order is load-bearing: set sleeping, then re-check for
		// work published before the flag flip — producers publish first and
		// read sleeping second, so one side always sees the other.
		w.sleeping.Store(true)
		if w.anyWork() {
			w.sleeping.Store(false)
			continue
		}
		select { //pam:slowpath-ok the park itself: blocking here is the point
		case <-w.wake:
		case req := <-w.ctrl:
			w.ackPause(req)
		case <-r.stop:
			w.sleeping.Store(false)
			return
		}
		w.sleeping.Store(false)
	}
}

// anyWork reports whether any owned ring holds runnable frames or a pause
// rendezvous is pending — the park's final re-check.
func (w *worker) anyWork() bool {
	if w.ctrlPending.Load() != 0 {
		return true
	}
	for _, s := range w.shards {
		if !s.el.paused.Load() && !s.q.empty() {
			return true
		}
	}
	return false
}

// handleCtrl acks every pending pause rendezvous. Called only between
// bursts, so an ack guarantees no burst of the pausing element is in
// flight on this worker.
//
//pam:slowpath
func (w *worker) handleCtrl() {
	for {
		select {
		case req := <-w.ctrl:
			w.ackPause(req)
		default:
			return
		}
	}
}

// ackPause completes one pause rendezvous: the lease goes back first so a
// frozen element's banked budget flows to the gate where co-resident
// tenants can use it, then the ack unblocks the migration coordinator.
//
//pam:slowpath
func (w *worker) ackPause(req *pauseReq) {
	w.ctrlPending.Add(-1)
	w.releaseLease()
	req.acked <- struct{}{}
}

// processBurst runs one burst through an element's NF and forwards it:
// one gate transaction, one PCIe propagation charge, one ProcessBatch call
// and batched metering for the whole burst. Survivors whose successor
// element is on the same device, in a shard this worker owns, and whose
// ring is empty are processed run-to-completion in the same visit — the
// loop continues with the successor instead of paying a re-queue hop. PCIe
// crossings, foreign-owner shards and frozen or backlogged successors
// enqueue to the destination ring, so gate charging always happens where
// the frames are consumed.
//
//pam:hotpath
func (w *worker) processBurst(el *element, jobs []job, inline *[]job, decs []*packet.Decoder, ctxs []nf.Ctx, ptrs []*nf.Ctx, lats *[]int64) {
	r := w.r
	for {
		n := len(jobs)

		// Emulate the shared device capacity: the burst's bytes are converted
		// into normalized device-seconds at the element's catalog rate and
		// admitted through the *device's* gate in a single transaction — one
		// budget shared by every resident element across all hosted chains, so
		// co-resident overload physically slows this element down.
		total := 0
		crossBytes, crossed := 0, false
		for i := range jobs {
			total += len(jobs[i].frame)
			if jobs[i].crossing {
				crossed = true
				crossBytes += len(jobs[i].frame)
			}
		}
		cost, dev, gen, ok := el.chargeFor(total)
		if !ok {
			// Runtime closed while this burst was parked on a rate-less
			// element: abandon it so Close's Drain completes. The frames are
			// accounted as this element's queue drops — they were accepted
			// but never served.
			dropNow := r.now()
			el.drops.Add(uint64(n))
			el.meter.Cell(w.idx+1).DropN(uint64(n), dropNow)
			el.ch.meter.Cell(w.idx+1).DropN(uint64(n), dropNow)
			for i := range jobs {
				r.recycle(jobs[i].frame)
			}
			r.inFlight.Add(-n)
			el.ch.inflight.Add(int64(-n))
			return
		}
		w.charge(cost, dev, gen)

		// PCIe crossings to reach this element draw on the runtime's shared
		// DMA-engine budget — one charge per burst (descriptors are posted
		// back-to-back, so the fixed overhead is paid once; serialization is
		// per crossing byte). Contention blocks here, which is how N workers
		// or N tenant chains crossing at once physically share one link.
		// SleepPCIe additionally sleeps the unloaded crossing latency (the
		// gate models occupancy and queueing, not the latency floor).
		if crossed {
			r.dma.cross(dirTo(device.Kind(el.loc.Load())), crossBytes)
			if r.cfg.SleepPCIe {
				// The latency-floor sleep is opt-in emulation fidelity, not a
				// dataplane stall.
				time.Sleep(r.cfg.Link.PropDelay + r.cfg.Link.SerializationTime(crossBytes)) //pam:slowpath-ok SleepPCIe latency floor
			}
		}

		now := r.now()
		el.meter.Cell(w.idx+1).ObserveN(uint64(n), uint64(total), now)
		for i := range jobs {
			dec := decs[i]
			// Decode is allocation-free on well-formed frames; its malformed-
			// frame error path formats, which NFs tolerate and never hit in
			// steady state.
			_, _ = dec.Decode(jobs[i].frame) //pam:slowpath-ok decode error path formats
			c := &ctxs[i]
			*c = nf.Ctx{Frame: jobs[i].frame, Decoder: dec, Now: now}
			if k, ok := flow.FromDecoder(dec); ok {
				c.FlowKey, c.HasFlow = k, true
			}
			ptrs[i] = c
		}
		inst := *el.inst.Load()
		verdicts := inst.ProcessBatch(ptrs[:n])

		if el.pos == len(el.ch.elems)-1 {
			w.egressBatch(el, jobs, verdicts, lats)
			return
		}

		// Forward survivors to the next element's shard for their flow. The
		// next element's offered meters count every forwarded frame —
		// inlined, accepted or queue-dropped — so its demand reflects
		// arrivals, not grants.
		next := el.ch.elems[el.pos+1]
		crossingNext := el.loc.Load() != next.loc.Load()
		finished, qdrops := 0, 0
		fwdPkts, fwdBytes := uint64(0), uint64(0)
		keep := (*inline)[:0]
		for i := range jobs {
			if i < len(verdicts) && verdicts[i] == nf.VerdictPass {
				j := jobs[i]
				j.crossing = crossingNext
				fwdPkts++
				fwdBytes += uint64(len(j.frame))
				ns := next.shardFor(j.hash)
				// Run-to-completion: a same-device successor in a shard this
				// worker owns is processed in this visit — but only when its
				// ring is empty, so a frame buffered there (across a freeze,
				// say) can never be overtaken by a newer frame of its flow.
				if !crossingNext && ns.owner == w && !next.paused.Load() && ns.q.empty() {
					keep = append(keep, j)
					continue
				}
				if ns.q.push(j) {
					if ns.owner != w {
						ns.owner.wakeIfSleeping()
					}
					continue
				}
				next.drops.Add(1)
				qdrops++
			}
			finished++
			r.recycle(jobs[i].frame)
		}
		if fwdPkts > 0 {
			next.offeredPkts.Add(fwdPkts)
			next.offeredBytes.Add(fwdBytes)
			// Crossing demand at arrival, queue-dropped frames included: the
			// hop to a cross-device neighbour, plus the egress hop a
			// CPU-resident tail will owe.
			nextLoc := device.Kind(next.loc.Load())
			if crossingNext {
				r.dma.offer(dirTo(nextLoc), fwdBytes)
			}
			if next.pos == len(el.ch.elems)-1 && nextLoc == device.KindCPU {
				r.dma.offer(dmaToNIC, fwdBytes)
			}
		}
		if qdrops > 0 {
			dropNow := r.now()
			el.ch.meter.Cell(w.idx+1).DropN(uint64(qdrops), dropNow)
			next.meter.Cell(w.idx+1).DropN(uint64(qdrops), dropNow)
		}
		if finished > 0 {
			r.inFlight.Add(-finished)
			el.ch.inflight.Add(int64(-finished))
		}
		*inline = keep
		if len(keep) == 0 {
			return
		}
		jobs = keep
		el = next
	}
}

// egressBatch completes a burst at the chain tail: one PCIe charge back to
// the NIC when the tail runs on the CPU, one histogram critical section for
// the burst's latencies, one meter update for its packets and bytes.
//
//pam:hotpath
func (w *worker) egressBatch(el *element, jobs []job, verdicts []nf.Verdict, lats *[]int64) {
	r := w.r
	if device.Kind(el.loc.Load()) == device.KindCPU {
		bytes := 0
		for i := range jobs {
			if i < len(verdicts) && verdicts[i] == nf.VerdictPass {
				bytes += len(jobs[i].frame)
			}
		}
		// The egress hop back to the NIC draws on the same shared DMA-engine
		// budget as every other crossing (demand was metered when the frames
		// arrived at this tail).
		if bytes > 0 {
			r.dma.cross(dmaToNIC, bytes)
			if r.cfg.SleepPCIe {
				time.Sleep(r.cfg.Link.PropDelay + r.cfg.Link.SerializationTime(bytes)) //pam:slowpath-ok SleepPCIe latency floor
			}
		}
	}
	now := r.now()
	var delivered, deliveredBytes uint64
	*lats = (*lats)[:0]
	for i := range jobs {
		if i < len(verdicts) && verdicts[i] == nf.VerdictPass {
			*lats = append(*lats, int64(now-jobs[i].ingress))
			delivered++
			deliveredBytes += uint64(len(jobs[i].frame))
			if r.egress != nil {
				r.egress(el.ch.idx, jobs[i].frame)
			}
		}
		r.recycle(jobs[i].frame)
	}
	// One histogram lock per burst, not per frame: amortized to the point
	// of vanishing from profiles, and the histogram has no lock-free form.
	el.ch.latency.RecordBatch(*lats) //pam:slowpath-ok amortized per-burst histogram lock
	el.ch.meter.Cell(w.idx+1).ObserveN(delivered, deliveredBytes, now)
	r.inFlight.Add(-len(jobs))
	el.ch.inflight.Add(int64(-len(jobs)))
}

// freeze pauses the element: flag first (workers re-check paused before
// every burst and every inline hop), then rendezvous with each owning
// worker. Each owner acks at a burst boundary with its token lease
// returned, so once freeze returns, no burst of this element is in flight
// anywhere and the served meters are stable. Arriving frames accumulate in
// the element's bounded rings — the freeze buffer. The freeze is scoped to
// this element: the owning workers keep draining every other ring they
// own. Idempotent in effect (a second freeze just re-rendezvouses), but
// callers serialize via migMu or the fleet tier's suspended control loop.
func (el *element) freeze() {
	el.paused.Store(true)
	acked := make(chan struct{}, len(el.owners))
	req := &pauseReq{acked: acked}
	for _, ow := range el.owners {
		ow.ctrlPending.Add(1)
		ow.ctrl <- req
		ow.wakeIfSleeping()
	}
	for range el.owners {
		<-acked
	}
}

// unfreeze resumes a frozen element: clear the flag, then wake the owners —
// the frozen rings may hold buffered frames no future push would announce.
func (el *element) unfreeze() {
	el.paused.Store(false)
	for _, ow := range el.owners {
		ow.wakeIfSleeping()
	}
}

// doMigrate performs the UNO sequence over the freeze rendezvous (see
// element.freeze). Callers hold el.migMu.
func (el *element) doMigrate(to device.Kind) (migrate.Report, error) {
	r := el.parent
	from := device.Kind(el.loc.Load())
	if from == to {
		return migrate.Report{Element: el.name}, nil
	}
	rate, err := r.cfg.Catalog.Lookup(el.typ, to)
	if err != nil {
		return migrate.Report{}, err
	}
	gate, err := r.gateFor(to)
	if err != nil {
		return migrate.Report{}, err
	}
	fresh, err := nf.New(el.name, el.typ)
	if err != nil {
		return migrate.Report{}, err
	}

	el.freeze()
	defer el.unfreeze()

	tr := migrate.PCIeTransport{Link: r.cfg.Link, Setup: time.Millisecond}
	old := *el.inst.Load()
	rep, err := migrate.Move(old, fresh, tr)
	if err != nil {
		return migrate.Report{}, err
	}
	for _, s := range el.shards {
		rep.Buffered += s.q.pending()
	}
	if r.cfg.SleepPCIe {
		time.Sleep(rep.Transfer)
	}
	// The element is frozen (every owner acked), so no ProcessBatch call is
	// in flight anywhere: the swap is a plain publish.
	el.inst.Store(&fresh)
	// Cut the telemetry attribution before the placement flips: everything
	// metered up to this instant was served on — and must be priced at the
	// catalog capacity of — the old device. The element is still frozen, so
	// the served meters are stable; offered counters may tick from upstream
	// forwarding into the freeze buffers, which only shifts frames neither
	// device has served yet.
	el.epochMu.Lock()
	el.epochs = append(el.epochs, locEpoch{
		loc:          from,
		bytes:        el.meter.Bytes(),
		pkts:         el.meter.Packets(),
		drops:        el.meter.Drops(),
		offeredBytes: el.offeredBytes.Load(),
		offeredPkts:  el.offeredPkts.Load(),
	})
	el.epochMu.Unlock()
	el.loc.Store(int32(to))
	// Re-attach to the destination device's shared gate at the catalog rate
	// there. Attach/detach moves only the resident bookkeeping — the gates'
	// banked tokens are untouched, so the freeze window neither leaks nor
	// mints device budget; and because the byte→device-second divisor
	// changes with the rate, an element migrated fast→slow cannot carry the
	// old device's cheaper costing into its first post-migration burst.
	el.place(gate, bytesPerSec(rate, r.cfg.Scale))
	rep.Replayed = rep.Buffered // FIFO consumption replays the queues
	return rep, nil
}

// Migrate live-moves the named element to the device, searching every
// hosted chain; the name must be unique across chains. When several chains
// host the name it returns *AmbiguousElementError listing every one of
// them, so the caller can disambiguate with MigrateChain. Loss-free: frames
// arriving during the move wait in the element's rings (up to QueueDepth in
// aggregate).
func (r *Runtime) Migrate(name string, to device.Kind) (migrate.Report, error) {
	var hosts []int
	for ci, tc := range r.chains {
		if tc.spec.Index(name) >= 0 {
			hosts = append(hosts, ci)
		}
	}
	switch len(hosts) {
	case 0:
		return migrate.Report{}, fmt.Errorf("emul: no element %q", name)
	case 1:
		return r.MigrateChain(hosts[0], name, to)
	}
	names := make([]string, len(hosts))
	for i, ci := range hosts {
		names[i] = r.chains[ci].name
	}
	return migrate.Report{}, &AmbiguousElementError{Element: name, Chains: names}
}

// MigrateChain live-moves the named element of the given chain to the
// device, returning the migration report. Only the migrating element
// freezes; other chains keep forwarding throughout the move.
func (r *Runtime) MigrateChain(ci int, name string, to device.Kind) (migrate.Report, error) {
	// The read lock holds Close off for the duration: the pause rendezvous
	// with the pool workers requires them alive, so the closed check and
	// the rendezvous must be atomic with respect to Close.
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	if !r.started.Load() {
		return migrate.Report{}, errors.New("emul: not started")
	}
	if r.closed.Load() {
		return migrate.Report{}, errors.New("emul: closed")
	}
	if ci < 0 || ci >= len(r.chains) {
		return migrate.Report{}, fmt.Errorf("emul: no chain %d", ci)
	}
	for _, el := range r.chains[ci].elems {
		if el.name != name {
			continue
		}
		el.migMu.Lock()
		defer el.migMu.Unlock()
		return el.doMigrate(to)
	}
	return migrate.Report{}, fmt.Errorf("emul: no element %q in chain %q", name, r.chains[ci].name)
}

// Scale returns the effective rate divisor the runtime was built with;
// multiplying a measured wall-clock rate by it recovers catalog (Table-1)
// units.
func (r *Runtime) Scale() float64 { return r.cfg.Scale }

// Elapsed returns emulation time: wall-clock since Start, or zero before it.
func (r *Runtime) Elapsed() time.Duration {
	if !r.started.Load() {
		return 0
	}
	return r.now()
}

// Placement returns chain 0's current placement as a chain. See Placements.
func (r *Runtime) Placement() *chain.Chain { return r.Placements()[0] }

// Placements returns every hosted chain's current placement, in chain-index
// order.
func (r *Runtime) Placements() []*chain.Chain {
	out := make([]*chain.Chain, len(r.chains))
	for ci, tc := range r.chains {
		c := tc.spec.Clone()
		for i, el := range tc.elems {
			c.SetLoc(i, device.Kind(el.loc.Load()))
		}
		out[ci] = c
	}
	return out
}

// statKey qualifies an element name with its chain when several chains are
// hosted, so per-name maps cannot collide across tenants.
func (r *Runtime) statKey(tc *tenantChain, name string) string {
	if len(r.chains) == 1 {
		return name
	}
	return tc.name + "/" + name
}

// NFStats returns the per-element NF statistics. With a single hosted chain
// keys are element names; with several, "chainName/elementName".
func (r *Runtime) NFStats() map[string]nf.Stats {
	out := make(map[string]nf.Stats)
	for _, tc := range r.chains {
		for _, el := range tc.elems {
			out[r.statKey(tc, el.name)] = (*el.inst.Load()).Stats()
		}
	}
	return out
}

// Instance returns the live NF instance for a name (tests inspect state),
// searching chains in index order.
func (r *Runtime) Instance(name string) (nf.NF, bool) {
	for _, tc := range r.chains {
		for _, el := range tc.elems {
			if el.name == name {
				return *el.inst.Load(), true
			}
		}
	}
	return nil, false
}

// Result summarizes the run so far. The accounting identity is
//
//	accepted Sends = Delivered + Σ NF verdict drops + Σ QueueDrops
//
// with ingress rejections (Send returning false) counted separately in
// IngressDrops.
type Result struct {
	Chain         string // chain name; "" for the aggregate of all chains
	Latency       metrics.Summary
	Offered       uint64
	Delivered     uint64
	Dropped       uint64 // all drops seen by the meter (ingress + queue)
	IngressDrops  uint64
	DeliveredGbps float64 // at emulated (scaled) rate
	QueueDrops    map[string]uint64
}

// result snapshots one chain's measurements. Map keys follow statKey.
func (r *Runtime) result(tc *tenantChain) Result {
	qd := make(map[string]uint64, len(tc.elems))
	for _, el := range tc.elems {
		qd[r.statKey(tc, el.name)] = el.drops.Load()
	}
	return Result{
		Chain:         tc.name,
		Latency:       tc.latency.Snapshot(),
		Offered:       tc.offered.Load(),
		Delivered:     tc.meter.Packets(),
		Dropped:       tc.meter.Drops(),
		IngressDrops:  tc.ingressDrops.Load(),
		DeliveredGbps: tc.meter.Gbps(),
		QueueDrops:    qd,
	}
}

// ChainResults snapshots every hosted chain's measurements, in chain-index
// order.
func (r *Runtime) ChainResults() []Result {
	out := make([]Result, len(r.chains))
	for ci, tc := range r.chains {
		out[ci] = r.result(tc)
	}
	return out
}

// Results snapshots the runtime's aggregate measurements across all hosted
// chains (identical to the single chain's results when one chain is
// hosted).
func (r *Runtime) Results() Result {
	if len(r.chains) == 1 {
		res := r.result(r.chains[0])
		res.Chain = ""
		return res
	}
	agg := Result{QueueDrops: make(map[string]uint64)}
	merged := metrics.NewHistogram()
	for _, tc := range r.chains {
		res := r.result(tc)
		agg.Offered += res.Offered
		agg.Delivered += res.Delivered
		agg.Dropped += res.Dropped
		agg.IngressDrops += res.IngressDrops
		agg.DeliveredGbps += res.DeliveredGbps
		for k, v := range res.QueueDrops {
			agg.QueueDrops[k] += v
		}
		merged.Merge(tc.latency)
	}
	agg.Latency = merged.Snapshot()
	return agg
}

// AmbiguousElementError reports a Migrate-by-name call that matched an
// element in several hosted chains; the caller must disambiguate with
// MigrateChain. Chains lists the name of every hosting chain in chain-index
// order, so surfaces like pamctl can print an actionable message.
type AmbiguousElementError struct {
	Element string
	Chains  []string
}

// Error implements error.
func (e *AmbiguousElementError) Error() string {
	return fmt.Sprintf("emul: element %q exists in chains %q; use MigrateChain to disambiguate",
		e.Element, e.Chains)
}
