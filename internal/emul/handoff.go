package emul

// Chain-granular drain/freeze/handoff hooks: the dataplane side of a
// cross-server chain migration. The fleet tier (internal/fleet) composes
// them into the staged sequence
//
//	destination: FreezeChain            — rings buffer rerouted arrivals
//	(traffic rerouted to the destination server)
//	source:      QuiesceChain           — ingress closed, stragglers rejected
//	source:      DrainChain             — in-flight frames finish
//	source:      FreezeChain            — belt and braces: no burst anywhere
//	source:      SnapshotChain          — per-element placement + NF state
//	destination: RestoreChain           — state installed, placement replayed
//	destination: ThawChain              — buffered frames replay in FIFO order
//
// after which the source chain stays quiesced and frozen (parked: its
// meters stop, its demand disappears from the source server's telemetry)
// until a later handoff migrates the tenant back. Every hook is control
// plane: the only hot-path cost of the whole feature is one atomic load
// (quiesced) and one atomic add (inflight) per accepted frame.
//
// The hooks enforce their protocol — SnapshotChain and RestoreChain refuse
// elements that are not frozen, RestoreChain refuses a snapshot whose
// element names or types do not match — so a coordinator bug surfaces as
// an error, not silent frame corruption.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/nf"
)

// ChainSnapshot is the migratable image of one chain: per-element placement
// and serialized NF state, taken on a quiesced + drained + frozen source
// chain and installed on a frozen destination chain.
type ChainSnapshot struct {
	Chain    string
	Elements []ElementSnapshot
}

// StateBytes sums the serialized NF state across elements — the transfer
// size a cross-server migration ships.
func (s ChainSnapshot) StateBytes() int {
	n := 0
	for _, e := range s.Elements {
		n += len(e.State)
	}
	return n
}

// ElementSnapshot is one element's slice of a ChainSnapshot.
type ElementSnapshot struct {
	Name string
	Type string
	// Loc is the element's device placement at snapshot time; RestoreChain
	// replays it so the destination reproduces the source's border
	// positions, not the chain's initial layout.
	Loc device.Kind
	// State is the NF's serialized dynamic state; nil for a stateless NF.
	State []byte
}

// findChain resolves a chain index with the started/closed/range checks
// every handoff hook shares. Callers hold closeMu.RLock.
func (r *Runtime) findChain(ci int) (*tenantChain, error) {
	if !r.started.Load() {
		return nil, errors.New("emul: not started")
	}
	if r.closed.Load() {
		return nil, errors.New("emul: closed")
	}
	if ci < 0 || ci >= len(r.chains) {
		return nil, fmt.Errorf("emul: no chain %d", ci)
	}
	return r.chains[ci], nil
}

// ChainIndex returns the index of the named hosted chain, or -1.
func (r *Runtime) ChainIndex(name string) int {
	for ci, tc := range r.chains {
		if tc.name == name {
			return ci
		}
	}
	return -1
}

// QuiesceChain closes a chain's ingress: subsequent SendChain calls report
// false without metering. In-flight frames keep forwarding — pair with
// DrainChain to empty the pipeline.
func (r *Runtime) QuiesceChain(ci int) error {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	tc, err := r.findChain(ci)
	if err != nil {
		return err
	}
	tc.quiesced.Store(true)
	return nil
}

// ResumeChain reopens a quiesced chain's ingress and unfreezes its
// elements — the abort path of a failed handoff, and the receive path when
// a tenant migrates back onto a parked chain.
func (r *Runtime) ResumeChain(ci int) error {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	tc, err := r.findChain(ci)
	if err != nil {
		return err
	}
	for _, el := range tc.elems {
		if el.paused.Load() {
			el.unfreeze()
		}
	}
	tc.quiesced.Store(false)
	return nil
}

// DrainChain blocks until every accepted frame of the chain has left the
// pipeline, or the timeout expires. The chain must be quiesced first (new
// arrivals would never let the count settle) and must not be frozen
// (frozen rings never drain). Other chains keep forwarding throughout.
func (r *Runtime) DrainChain(ci int, timeout time.Duration) error {
	r.closeMu.RLock()
	tc, err := r.findChain(ci)
	r.closeMu.RUnlock()
	if err != nil {
		return err
	}
	if !tc.quiesced.Load() {
		return fmt.Errorf("emul: chain %q not quiesced; drain would race ingress", tc.name)
	}
	deadline := time.Now().Add(timeout)
	for tc.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("emul: chain %q drain timeout: %d frames in flight", tc.name, tc.inflight.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// FreezeChain freezes every element of the chain, head to tail, via the
// same pause rendezvous a live migration uses: once it returns, no burst
// of any of the chain's elements is in flight anywhere, and each element's
// rings buffer whatever arrives. Other chains — including ones sharing the
// same pool workers — keep forwarding.
func (r *Runtime) FreezeChain(ci int) error {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	tc, err := r.findChain(ci)
	if err != nil {
		return err
	}
	for _, el := range tc.elems {
		el.migMu.Lock()
		el.freeze()
		el.migMu.Unlock()
	}
	return nil
}

// ThawChain resumes every element of a frozen chain and reopens its
// ingress, returning how many frames were waiting in the freeze buffers —
// FIFO consumption replays them in order, so a handoff that froze the
// destination before rerouting traffic loses nothing.
func (r *Runtime) ThawChain(ci int) (buffered int, err error) {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	tc, err := r.findChain(ci)
	if err != nil {
		return 0, err
	}
	for _, el := range tc.elems {
		for _, s := range el.shards {
			buffered += s.q.pending()
		}
	}
	for _, el := range tc.elems {
		el.migMu.Lock()
		el.unfreeze()
		el.migMu.Unlock()
	}
	tc.quiesced.Store(false)
	return buffered, nil
}

// SnapshotChain captures a frozen chain's migratable image: every
// element's current placement and serialized NF state. It refuses a chain
// that is not fully frozen — on a live chain the instances could be mid-
// ProcessBatch on another worker.
func (r *Runtime) SnapshotChain(ci int) (ChainSnapshot, error) {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	tc, err := r.findChain(ci)
	if err != nil {
		return ChainSnapshot{}, err
	}
	snap := ChainSnapshot{Chain: tc.name, Elements: make([]ElementSnapshot, 0, len(tc.elems))}
	for _, el := range tc.elems {
		el.migMu.Lock()
		if !el.paused.Load() {
			el.migMu.Unlock()
			return ChainSnapshot{}, fmt.Errorf("emul: chain %q element %q not frozen; snapshot would race the dataplane", tc.name, el.name)
		}
		es := ElementSnapshot{Name: el.name, Type: el.typ, Loc: device.Kind(el.loc.Load())}
		if st, ok := (*el.inst.Load()).(nf.Stateful); ok {
			blob, err := st.Snapshot()
			if err != nil {
				el.migMu.Unlock()
				return ChainSnapshot{}, fmt.Errorf("emul: snapshot %q: %w", el.name, err)
			}
			es.State = blob
		}
		el.migMu.Unlock()
		snap.Elements = append(snap.Elements, es)
	}
	return snap, nil
}

// RestoreChain installs a snapshot into the chain: fresh NF instances
// restored from the shipped state, and the snapshot's placements replayed
// element by element (with the telemetry epoch cut and gate re-attachment
// a local migration performs). The chain must be frozen — FreezeChain
// first, ThawChain after — and must structurally match the snapshot
// (same element names and types in order). Returns the installed state
// size in bytes.
func (r *Runtime) RestoreChain(ci int, snap ChainSnapshot) (stateBytes int, err error) {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	tc, err := r.findChain(ci)
	if err != nil {
		return 0, err
	}
	if len(snap.Elements) != len(tc.elems) {
		return 0, fmt.Errorf("emul: snapshot of %q has %d elements; chain %q has %d",
			snap.Chain, len(snap.Elements), tc.name, len(tc.elems))
	}
	for i, el := range tc.elems {
		es := snap.Elements[i]
		if es.Name != el.name || es.Type != el.typ {
			return 0, fmt.Errorf("emul: snapshot element %d is %s/%s; chain %q hosts %s/%s",
				i, es.Name, es.Type, tc.name, el.name, el.typ)
		}
	}
	for i, el := range tc.elems {
		es := snap.Elements[i]
		el.migMu.Lock()
		if !el.paused.Load() {
			el.migMu.Unlock()
			return stateBytes, fmt.Errorf("emul: chain %q element %q not frozen; restore would race the dataplane", tc.name, el.name)
		}
		if err := el.restoreFrom(es); err != nil {
			el.migMu.Unlock()
			return stateBytes, err
		}
		stateBytes += len(es.State)
		el.migMu.Unlock()
	}
	return stateBytes, nil
}

// restoreFrom installs one element's snapshot slice: a fresh instance
// restored from the shipped state replaces the current one, and the
// element re-places onto the snapshot's device. Callers hold el.migMu with
// the element frozen.
func (el *element) restoreFrom(es ElementSnapshot) error {
	r := el.parent
	fresh, err := nf.New(el.name, el.typ)
	if err != nil {
		return err
	}
	if es.State != nil {
		st, ok := fresh.(nf.Stateful)
		if !ok {
			return fmt.Errorf("emul: element %q carries state but NF type %q is stateless", el.name, el.typ)
		}
		if err := st.Restore(es.State); err != nil {
			return fmt.Errorf("emul: restore %q: %w", el.name, err)
		}
	}
	// Frozen: no ProcessBatch call is in flight anywhere, so the swap is a
	// plain publish (same argument as doMigrate).
	el.inst.Store(&fresh)
	from := device.Kind(el.loc.Load())
	if from == es.Loc {
		return nil
	}
	rate, err := r.cfg.Catalog.Lookup(el.typ, es.Loc)
	if err != nil {
		return err
	}
	gate, err := r.gateFor(es.Loc)
	if err != nil {
		return err
	}
	// Cut the telemetry attribution before the placement flips, exactly as
	// a local migration does: anything this element served so far was on
	// the old device.
	el.epochMu.Lock()
	el.epochs = append(el.epochs, locEpoch{
		loc:          from,
		bytes:        el.meter.Bytes(),
		pkts:         el.meter.Packets(),
		drops:        el.meter.Drops(),
		offeredBytes: el.offeredBytes.Load(),
		offeredPkts:  el.offeredPkts.Load(),
	})
	el.epochMu.Unlock()
	el.loc.Store(int32(es.Loc))
	el.place(gate, bytesPerSec(rate, r.cfg.Scale))
	return nil
}
