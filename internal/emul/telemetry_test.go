package emul_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func TestLoadSamplerMeasuresWindow(t *testing.T) {
	r := newRuntime(t, 1) // Scale 1: gates effectively never throttle
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)

	synth := traffic.NewSynth(8, 1)
	const n, size = 400, 512
	sent := 0
	for i := 0; i < n; i++ {
		if r.Send(synth.Frame(uint64(i%8), size)) {
			sent++
		}
	}
	r.Drain()
	time.Sleep(2 * time.Millisecond) // ensure a non-degenerate window
	s := ls.Sample()

	if s.Window < time.Millisecond {
		t.Fatalf("window = %v, want >= 1ms", s.Window)
	}
	if len(s.Elements) != 4 {
		t.Fatalf("elements = %d, want 4", len(s.Elements))
	}
	// Every element upstream of a verdict drop processes all accepted
	// frames; the head element must have seen exactly the accepted count.
	if got := s.Elements[0].ServedPkts; got != uint64(sent) {
		t.Errorf("head served %d pkts, want %d", got, sent)
	}
	// Device aggregation: Figure 1 places LB on the CPU and the rest on the
	// NIC. Device Utilization (what the detector sees) must be the sum of
	// offered demand per resident element, and GrantUtilization the sum of
	// what they were actually granted (served/θ).
	var nicD, cpuD, nicG, cpuG float64
	for _, el := range s.Elements {
		cap, err := device.Table1().Lookup(el.Type, el.Loc)
		if err != nil {
			t.Fatalf("lookup %s on %v: %v", el.Type, el.Loc, err)
		}
		if el.ServedPkts == 0 {
			t.Errorf("element %s served nothing", el.Name)
		}
		if el.OfferedPkts < el.ServedPkts {
			t.Errorf("%s offered %d pkts < served %d", el.Name, el.OfferedPkts, el.ServedPkts)
		}
		if want := el.ServedGbps / float64(cap); math.Abs(el.Utilization-want) > 1e-9 {
			t.Errorf("%s utilization = %v, want %v", el.Name, el.Utilization, want)
		}
		if want := el.OfferedGbps / float64(cap); math.Abs(el.Demand-want) > 1e-9 {
			t.Errorf("%s demand = %v, want %v", el.Name, el.Demand, want)
		}
		if el.Loc == device.KindCPU {
			cpuD += el.Demand
			cpuG += el.Utilization
		} else {
			nicD += el.Demand
			nicG += el.Utilization
		}
	}
	if math.Abs(s.NIC.Utilization-nicD) > 1e-9 || math.Abs(s.CPU.Utilization-cpuD) > 1e-9 {
		t.Errorf("device demand NIC=%v CPU=%v, want %v / %v",
			s.NIC.Utilization, s.CPU.Utilization, nicD, cpuD)
	}
	if math.Abs(s.NIC.GrantUtilization-nicG) > 1e-9 || math.Abs(s.CPU.GrantUtilization-cpuG) > 1e-9 {
		t.Errorf("device grant NIC=%v CPU=%v, want %v / %v",
			s.NIC.GrantUtilization, s.CPU.GrantUtilization, nicG, cpuG)
	}
	// The device gate's own grant-rate accounting must agree with the
	// metered form within the window's measurement slack.
	if s.NIC.GrantRate <= 0 {
		t.Error("NIC gate granted nothing over a window with served traffic")
	}
	if s.CPU.ServedGbps <= 0 {
		t.Error("LB on the CPU served nothing")
	}
	// Scale mapping: the sample reports catalog units. At Scale 1 the
	// wall-clock rate is the catalog rate.
	wantGbps := float64(sent) * size * 8 * r.Scale() / s.Window.Seconds() / 1e9
	if math.Abs(s.Elements[0].ServedGbps-wantGbps)/wantGbps > 0.01 {
		t.Errorf("head served %v Gbps, want ~%v", s.Elements[0].ServedGbps, wantGbps)
	}
	// Loss accounting: window loss must match the runtime's meters.
	res := r.Results()
	if s.Drops != res.Dropped {
		t.Errorf("window drops = %d, runtime drops = %d", s.Drops, res.Dropped)
	}
	if s.DeliveredPkts != res.Delivered {
		t.Errorf("window delivered = %d, runtime delivered = %d", s.DeliveredPkts, res.Delivered)
	}

	// Telemetry conversion carries the same numbers.
	ts := s.Telemetry()
	if ts.NICUtil != s.NIC.Utilization || ts.CPUUtil != s.CPU.Utilization ||
		ts.DeliveredGbps != s.DeliveredGbps || ts.LossRate != s.LossRate || ts.At != s.At {
		t.Errorf("telemetry conversion mismatch: %+v vs %+v", ts, s)
	}

	// A quiet follow-up window measures zero load.
	time.Sleep(2 * time.Millisecond)
	q := ls.Sample()
	if q.DeliveredPkts != 0 || q.Drops != 0 || q.NIC.Utilization != 0 {
		t.Errorf("quiet window not zero: %+v", q)
	}
	if q.At <= s.At {
		t.Errorf("sample time did not advance: %v then %v", s.At, q.At)
	}
}

func TestLoadSamplerAttributesMigrationWindowPerDevice(t *testing.T) {
	// Regression: the sampler used to read the element's placement at
	// sample time and charge the entire window's served/offered bytes — and
	// the catalog-capacity denominator — to the post-migration device. A
	// migration must cut the window so the slice served on the old device
	// is attributed to it, priced at its own capacity.
	c, err := chain.New("t", chain.Element{Name: "m0", Type: device.TypeMonitor, Loc: device.KindSmartNIC})
	if err != nil {
		t.Fatal(err)
	}
	r, err := emul.New(emul.Config{
		Chain:   c,
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   10, // generous: nothing throttles, counts are exact
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)

	synth := traffic.NewSynth(8, 1)
	const size, nNIC, nCPU = 512, 100, 40
	send := func(n int) {
		for i := 0; i < n; i++ {
			if !r.Send(synth.Frame(uint64(i%8), size)) {
				t.Fatal("ingress drop in an unthrottled runtime")
			}
		}
		r.Drain()
	}
	send(nNIC)
	if _, err := r.Migrate("m0", device.KindCPU); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	send(nCPU)
	time.Sleep(2 * time.Millisecond)
	s := ls.Sample()

	// The window spans the migration: one ElementLoad per placement
	// segment, each priced at its own device's capacity.
	if len(s.Elements) != 2 {
		t.Fatalf("elements = %+v, want 2 segments (pre- and post-migration)", s.Elements)
	}
	nicSeg, cpuSeg := s.Elements[0], s.Elements[1]
	if nicSeg.Loc != device.KindSmartNIC || cpuSeg.Loc != device.KindCPU {
		t.Fatalf("segment locs = %v, %v; want SmartNIC then CPU", nicSeg.Loc, cpuSeg.Loc)
	}
	if nicSeg.ServedPkts != nNIC || cpuSeg.ServedPkts != nCPU {
		t.Errorf("served split = %d / %d pkts, want %d / %d",
			nicSeg.ServedPkts, cpuSeg.ServedPkts, nNIC, nCPU)
	}
	// Capacity denominators follow the segment's device: Monitor runs at
	// θS = 3.2 on the NIC and θC = 10 on the CPU.
	if want := nicSeg.ServedGbps / 3.2; math.Abs(nicSeg.Utilization-want) > 1e-9 {
		t.Errorf("NIC segment utilization = %v, want served/3.2 = %v", nicSeg.Utilization, want)
	}
	if want := cpuSeg.ServedGbps / 10; math.Abs(cpuSeg.Utilization-want) > 1e-9 {
		t.Errorf("CPU segment utilization = %v, want served/10 = %v", cpuSeg.Utilization, want)
	}
	// Device aggregation sees both sides of the move.
	if s.NIC.ServedGbps <= 0 {
		t.Error("pre-migration service vanished from the old device")
	}
	if s.CPU.ServedGbps <= 0 {
		t.Error("post-migration service missing from the new device")
	}
	wantNIC := float64(nNIC) / float64(nNIC+nCPU)
	if got := s.NIC.ServedGbps / (s.NIC.ServedGbps + s.CPU.ServedGbps); math.Abs(got-wantNIC) > 1e-9 {
		t.Errorf("NIC share of served = %v, want %v", got, wantNIC)
	}

	// The next window is all post-migration: a single CPU segment.
	send(10)
	time.Sleep(2 * time.Millisecond)
	q := ls.Sample()
	if len(q.Elements) != 1 || q.Elements[0].Loc != device.KindCPU {
		t.Fatalf("follow-up elements = %+v, want one CPU segment", q.Elements)
	}
	if q.Elements[0].ServedPkts != 10 {
		t.Errorf("follow-up served = %d, want 10", q.Elements[0].ServedPkts)
	}
}

func TestLoadSamplerMeasuresDMADirections(t *testing.T) {
	// Figure-1 traffic crosses twice before the NIC segment: NIC ingress →
	// LB on the CPU (toCPU), then LB → Logger (toNIC). The sampler must
	// report both directions' demand and grant, and with an unloaded link
	// the grant must track the demand.
	r := newRuntime(t, 1)
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)

	synth := traffic.NewSynth(8, 1)
	const n, size = 300, 512
	sent := 0
	for i := 0; i < n; i++ {
		if r.Send(synth.Frame(uint64(i%8), size)) {
			sent++
		}
	}
	r.Drain()
	time.Sleep(2 * time.Millisecond)
	s := ls.Sample()

	if s.DMA.ToCPU.DemandGbps <= 0 || s.DMA.ToNIC.DemandGbps <= 0 {
		t.Fatalf("DMA demand = %+v, want both directions positive", s.DMA)
	}
	// Every *arrival* wants to cross to the CPU-resident head — including
	// the frames the full ingress queue rejected — so demand is metered on
	// all n, while the grant covers only the accepted frames.
	toGbps := func(frames int) float64 {
		return float64(frames) * size * 8 * r.Scale() / s.Window.Seconds() / 1e9
	}
	if want := toGbps(n); math.Abs(s.DMA.ToCPU.DemandGbps-want)/want > 0.01 {
		t.Errorf("toCPU demand = %v Gbps, want ~%v (all arrivals)", s.DMA.ToCPU.DemandGbps, want)
	}
	if want := toGbps(sent); math.Abs(s.DMA.ToCPU.GrantGbps-want)/want > 0.01 {
		t.Errorf("toCPU grant = %v Gbps, want ~%v (accepted frames)", s.DMA.ToCPU.GrantGbps, want)
	}
	if s.DMA.Utilization <= 0 || s.DMA.GrantRate <= 0 {
		t.Errorf("DMA utilization/grant rate = %v/%v, want both positive", s.DMA.Utilization, s.DMA.GrantRate)
	}
	// The grant rate includes the per-burst descriptor overhead, so it is
	// at least the demand's serialization share.
	if s.DMA.GrantRate < s.DMA.ToCPU.Demand+s.DMA.ToNIC.Demand-1e-9 {
		t.Errorf("grant rate %v below offered serialization %v",
			s.DMA.GrantRate, s.DMA.ToCPU.Demand+s.DMA.ToNIC.Demand)
	}
	ts := s.Telemetry()
	if ts.DMAUtil != s.DMA.Utilization {
		t.Errorf("Telemetry DMAUtil = %v, want %v", ts.DMAUtil, s.DMA.Utilization)
	}
}

func TestLoadSamplerSeesQueueDrops(t *testing.T) {
	// Throttle hard (huge Scale) with a tiny queue so the logger's queue
	// overflows and the window's loss rate reflects it.
	// Shallow queues and tiny frames keep Close's drain of the throttled
	// pipeline to a couple of seconds.
	r, err := emul.New(emul.Config{
		Chain:      scenario.Figure1Chain(),
		Catalog:    device.Table1(),
		Scale:      5e5,
		QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)
	synth := traffic.NewSynth(4, 2)
	for i := 0; i < 150; i++ {
		r.Send(synth.Frame(uint64(i%4), 64))
	}
	time.Sleep(50 * time.Millisecond)
	s := ls.Sample()
	if s.Drops == 0 {
		t.Fatalf("no drops measured under saturation: %+v", s)
	}
	if s.LossRate <= 0 {
		t.Errorf("loss rate = %v, want > 0", s.LossRate)
	}
}
