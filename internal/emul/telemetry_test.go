package emul_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func TestLoadSamplerMeasuresWindow(t *testing.T) {
	r := newRuntime(t, 1) // Scale 1: gates effectively never throttle
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)

	synth := traffic.NewSynth(8, 1)
	const n, size = 400, 512
	sent := 0
	for i := 0; i < n; i++ {
		if r.Send(synth.Frame(uint64(i%8), size)) {
			sent++
		}
	}
	r.Drain()
	time.Sleep(2 * time.Millisecond) // ensure a non-degenerate window
	s := ls.Sample()

	if s.Window < time.Millisecond {
		t.Fatalf("window = %v, want >= 1ms", s.Window)
	}
	if len(s.Elements) != 4 {
		t.Fatalf("elements = %d, want 4", len(s.Elements))
	}
	// Every element upstream of a verdict drop processes all accepted
	// frames; the head element must have seen exactly the accepted count.
	if got := s.Elements[0].ServedPkts; got != uint64(sent) {
		t.Errorf("head served %d pkts, want %d", got, sent)
	}
	// Device aggregation: Figure 1 places LB on the CPU and the rest on the
	// NIC. Device Utilization (what the detector sees) must be the sum of
	// offered demand per resident element, and GrantUtilization the sum of
	// what they were actually granted (served/θ).
	var nicD, cpuD, nicG, cpuG float64
	for _, el := range s.Elements {
		cap, err := device.Table1().Lookup(el.Type, el.Loc)
		if err != nil {
			t.Fatalf("lookup %s on %v: %v", el.Type, el.Loc, err)
		}
		if el.ServedPkts == 0 {
			t.Errorf("element %s served nothing", el.Name)
		}
		if el.OfferedPkts < el.ServedPkts {
			t.Errorf("%s offered %d pkts < served %d", el.Name, el.OfferedPkts, el.ServedPkts)
		}
		if want := el.ServedGbps / float64(cap); math.Abs(el.Utilization-want) > 1e-9 {
			t.Errorf("%s utilization = %v, want %v", el.Name, el.Utilization, want)
		}
		if want := el.OfferedGbps / float64(cap); math.Abs(el.Demand-want) > 1e-9 {
			t.Errorf("%s demand = %v, want %v", el.Name, el.Demand, want)
		}
		if el.Loc == device.KindCPU {
			cpuD += el.Demand
			cpuG += el.Utilization
		} else {
			nicD += el.Demand
			nicG += el.Utilization
		}
	}
	if math.Abs(s.NIC.Utilization-nicD) > 1e-9 || math.Abs(s.CPU.Utilization-cpuD) > 1e-9 {
		t.Errorf("device demand NIC=%v CPU=%v, want %v / %v",
			s.NIC.Utilization, s.CPU.Utilization, nicD, cpuD)
	}
	if math.Abs(s.NIC.GrantUtilization-nicG) > 1e-9 || math.Abs(s.CPU.GrantUtilization-cpuG) > 1e-9 {
		t.Errorf("device grant NIC=%v CPU=%v, want %v / %v",
			s.NIC.GrantUtilization, s.CPU.GrantUtilization, nicG, cpuG)
	}
	// The device gate's own grant-rate accounting must agree with the
	// metered form within the window's measurement slack.
	if s.NIC.GrantRate <= 0 {
		t.Error("NIC gate granted nothing over a window with served traffic")
	}
	if s.CPU.ServedGbps <= 0 {
		t.Error("LB on the CPU served nothing")
	}
	// Scale mapping: the sample reports catalog units. At Scale 1 the
	// wall-clock rate is the catalog rate.
	wantGbps := float64(sent) * size * 8 * r.Scale() / s.Window.Seconds() / 1e9
	if math.Abs(s.Elements[0].ServedGbps-wantGbps)/wantGbps > 0.01 {
		t.Errorf("head served %v Gbps, want ~%v", s.Elements[0].ServedGbps, wantGbps)
	}
	// Loss accounting: window loss must match the runtime's meters.
	res := r.Results()
	if s.Drops != res.Dropped {
		t.Errorf("window drops = %d, runtime drops = %d", s.Drops, res.Dropped)
	}
	if s.DeliveredPkts != res.Delivered {
		t.Errorf("window delivered = %d, runtime delivered = %d", s.DeliveredPkts, res.Delivered)
	}

	// Telemetry conversion carries the same numbers.
	ts := s.Telemetry()
	if ts.NICUtil != s.NIC.Utilization || ts.CPUUtil != s.CPU.Utilization ||
		ts.DeliveredGbps != s.DeliveredGbps || ts.LossRate != s.LossRate || ts.At != s.At {
		t.Errorf("telemetry conversion mismatch: %+v vs %+v", ts, s)
	}

	// A quiet follow-up window measures zero load.
	time.Sleep(2 * time.Millisecond)
	q := ls.Sample()
	if q.DeliveredPkts != 0 || q.Drops != 0 || q.NIC.Utilization != 0 {
		t.Errorf("quiet window not zero: %+v", q)
	}
	if q.At <= s.At {
		t.Errorf("sample time did not advance: %v then %v", s.At, q.At)
	}
}

func TestLoadSamplerSeesQueueDrops(t *testing.T) {
	// Throttle hard (huge Scale) with a tiny queue so the logger's queue
	// overflows and the window's loss rate reflects it.
	// Shallow queues and tiny frames keep Close's drain of the throttled
	// pipeline to a couple of seconds.
	r, err := emul.New(emul.Config{
		Chain:      scenario.Figure1Chain(),
		Catalog:    device.Table1(),
		Scale:      5e5,
		QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)
	synth := traffic.NewSynth(4, 2)
	for i := 0; i < 150; i++ {
		r.Send(synth.Frame(uint64(i%4), 64))
	}
	time.Sleep(50 * time.Millisecond)
	s := ls.Sample()
	if s.Drops == 0 {
		t.Fatalf("no drops measured under saturation: %+v", s)
	}
	if s.LossRate <= 0 {
		t.Errorf("loss rate = %v, want > 0", s.LossRate)
	}
}
