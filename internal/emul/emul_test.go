package emul_test

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/nf"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func newRuntime(t *testing.T, scale float64) *emul.Runtime {
	t.Helper()
	r, err := emul.New(emul.Config{
		Chain:   scenario.Figure1Chain(),
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   scale,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestEndToEndDelivery(t *testing.T) {
	r := newRuntime(t, 100) // generous rates so nothing throttles
	r.Start()
	synth := traffic.NewSynth(8, 1)
	const n = 500
	sent := 0
	for i := 0; i < n; i++ {
		if r.Send(synth.Frame(uint64(i%8), 512)) {
			sent++
		}
	}
	r.Drain()
	res := r.Results()
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// All accepted frames must be accounted for: delivered + NF verdict
	// drops (firewall/DPI may legitimately drop) + queue drops.
	var queueDrops uint64
	for _, d := range res.QueueDrops {
		queueDrops += d
	}
	var nfDrops uint64
	for _, s := range r.NFStats() {
		nfDrops += s.Dropped
	}
	if res.Delivered+nfDrops+queueDrops != uint64(sent) {
		t.Errorf("accounting: delivered=%d nfDrops=%d queueDrops=%d sent=%d",
			res.Delivered, nfDrops, queueDrops, sent)
	}
	if res.IngressDrops != uint64(n-sent) {
		t.Errorf("ingress drops = %d, want %d", res.IngressDrops, n-sent)
	}
	// Every NF processed traffic.
	for name, s := range r.NFStats() {
		if s.Processed == 0 {
			t.Errorf("NF %s processed nothing", name)
		}
	}
	r.Close()
}

func TestThrottleEnforcesCapacity(t *testing.T) {
	// Scale 1e5: Logger on the NIC throttles to 2 Gbps/1e5 = 2.5 kB/s;
	// 20 frames × 512 B = 10.24 kB minus the ~3 kB burst needs ≈ 3 s of
	// tokens at the Logger — the pipeline must take visibly long.
	r := newRuntime(t, 1e5)
	r.Start()
	synth := traffic.NewSynth(4, 2)
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		r.Send(synth.Frame(uint64(i%4), 512))
	}
	r.Drain()
	elapsed := time.Since(start)
	res := r.Results()
	r.Close()
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	t.Logf("delivered %d frames in %v", res.Delivered, elapsed)
	if elapsed < 200*time.Millisecond {
		t.Errorf("throttle had no effect: %v", elapsed)
	}
}

func TestLiveMigrationKeepsState(t *testing.T) {
	r := newRuntime(t, 100)
	r.Start()
	defer r.Close()
	synth := traffic.NewSynth(8, 3)
	for i := 0; i < 200; i++ {
		r.Send(synth.Frame(uint64(i%8), 256))
	}
	r.Drain()

	inst, ok := r.Instance(scenario.NameMonitor)
	if !ok {
		t.Fatal("monitor instance missing")
	}
	flowsBefore := inst.(*nf.Monitor).FlowCount()
	if flowsBefore == 0 {
		t.Fatal("monitor saw no flows before migration")
	}

	rep, err := r.Migrate(scenario.NameMonitor, device.KindCPU)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if rep.StateBytes == 0 {
		t.Error("migration moved no state")
	}
	got := r.Placement()
	if got.At(got.Index(scenario.NameMonitor)).Loc != device.KindCPU {
		t.Error("placement not updated")
	}
	inst2, _ := r.Instance(scenario.NameMonitor)
	if inst2.(*nf.Monitor).FlowCount() != flowsBefore {
		t.Errorf("flow state lost: %d -> %d", flowsBefore, inst2.(*nf.Monitor).FlowCount())
	}

	// Traffic continues post-migration.
	before := r.Results().Delivered
	for i := 0; i < 100; i++ {
		r.Send(synth.Frame(uint64(i%8), 256))
	}
	r.Drain()
	if r.Results().Delivered <= before {
		t.Error("no deliveries after migration")
	}
}

func TestMigrationUnderLoad(t *testing.T) {
	// Frames sent concurrently with the migration must not be lost
	// (loss-free UNO semantics): delivered + NF drops + queue drops == sent.
	// A queue deep enough for the whole burst guarantees zero queue drops.
	r, err := emul.New(emul.Config{
		Chain:      scenario.Figure1Chain(),
		Catalog:    device.Table1(),
		Link:       pcie.DefaultLink(),
		Scale:      100,
		QueueDepth: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	synth := traffic.NewSynth(8, 4)

	done := make(chan int)
	go func() {
		sent := 0
		for i := 0; i < 1000; i++ {
			if r.Send(synth.Frame(uint64(i%8), 200)) {
				sent++
			}
		}
		done <- sent
	}()
	time.Sleep(2 * time.Millisecond)
	if _, err := r.Migrate(scenario.NameLogger, device.KindCPU); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	sent := <-done
	r.Drain()
	res := r.Results()
	var queueDrops uint64
	for _, d := range res.QueueDrops {
		queueDrops += d
	}
	var nfDrops uint64
	for _, s := range r.NFStats() {
		nfDrops += s.Dropped
	}
	if res.Delivered+nfDrops+queueDrops != uint64(sent) {
		t.Errorf("frames lost across migration: delivered=%d nfDrops=%d queueDrops=%d sent=%d",
			res.Delivered, nfDrops, queueDrops, sent)
	}
	if queueDrops != 0 {
		t.Errorf("queue drops = %d; the 2048-deep freeze buffer must absorb the burst", queueDrops)
	}
}

func TestMigrateUnknownElement(t *testing.T) {
	r := newRuntime(t, 100)
	r.Start()
	defer r.Close()
	if _, err := r.Migrate("nope", device.KindCPU); err == nil {
		t.Error("unknown element accepted")
	}
}

func TestMigrateNoopSameDevice(t *testing.T) {
	r := newRuntime(t, 100)
	r.Start()
	defer r.Close()
	rep, err := r.Migrate(scenario.NameLB, device.KindCPU) // already there
	if err != nil {
		t.Fatal(err)
	}
	if rep.StateBytes != 0 {
		t.Error("no-op migration moved state")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := emul.New(emul.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := emul.New(emul.Config{Chain: scenario.Figure1Chain()}); err == nil {
		t.Error("missing catalog accepted")
	}
}

func TestConfigValidatesLink(t *testing.T) {
	// Regression: withDefaults never called Link.Validate (chainsim does),
	// so a negative PropDelay or bandwidth was silently accepted and later
	// produced negative sleeps and negative DMA-gate costs.
	base := func() emul.Config {
		return emul.Config{Chain: scenario.Figure1Chain(), Catalog: device.Table1()}
	}
	bad := base()
	bad.Link = pcie.Link{PropDelay: -time.Microsecond}
	if _, err := emul.New(bad); err == nil {
		t.Error("negative PropDelay accepted")
	}
	bad = base()
	bad.Link = pcie.Link{BandwidthGbps: -64}
	if _, err := emul.New(bad); err == nil {
		t.Error("negative bandwidth accepted")
	}
	good := base()
	good.Link = pcie.DefaultLink()
	r, err := emul.New(good)
	if err != nil {
		t.Fatalf("default link rejected: %v", err)
	}
	_ = r
}
