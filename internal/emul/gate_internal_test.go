package emul

import (
	"sync"
	"testing"
	"time"
)

// TestGateRateIncreaseMidWait: a rate raised while take is sleeping (what a
// migration to a faster device does) must shorten the wait. The old gate
// slept the full deficit computed at the old rate.
func TestGateRateIncreaseMidWait(t *testing.T) {
	var g gate
	g.setRate(1000, 10) // 1 k units/s, tiny burst: 5000 units needs ~5 s
	done := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		g.take(5000)
		done <- time.Since(start)
	}()
	time.Sleep(50 * time.Millisecond)
	g.setRate(50e6, 50e4) // migration to a much faster device
	select {
	case elapsed := <-done:
		if elapsed > time.Second {
			t.Errorf("take took %v after the rate increase; the old-rate deficit was ~5s", elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("take still blocked 3s after the rate increase")
	}
}

// TestGateAdmitsOversizedBurst: a request larger than the configured bucket
// must be admitted after a proportional wait, not spin forever (the bucket
// clamp would otherwise keep tokens below the request).
func TestGateAdmitsOversizedBurst(t *testing.T) {
	var g gate
	g.setRate(1e6, 1e4) // 10 ms of bucket
	const n = 1e5       // 10× the bucket ≈ 90 ms beyond the initial burst
	start := time.Now()
	g.take(n)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("oversized take took %v", elapsed)
	}
}

// TestGateEnforcesRate: batched admission must still meter the configured
// unit rate over time.
func TestGateEnforcesRate(t *testing.T) {
	var g gate
	g.setRate(100_000, 1514) // 100 k units/s, small burst
	start := time.Now()
	for i := 0; i < 10; i++ {
		g.take(2000) // 20 k units total, ≈185 ms after the initial burst
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("20 k units at 100 k/s admitted in %v; throttle ineffective", elapsed)
	}
}

// TestGateZeroRateBlocksUntilSetRate is the regression test for the
// division-by-zero bug: take on a gate whose rate was never set (an element
// observed before placement, or one paused mid-migration) computed
// (need-tokens)/0 = +Inf, whose Duration conversion overflows negative and
// degenerated the wait loop into a busy spin. The fixed gate parks the
// waiter on a condition until a positive rate arrives.
func TestGateZeroRateBlocksUntilSetRate(t *testing.T) {
	var g gate
	done := make(chan struct{})
	go func() {
		g.take(100)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("take returned on a zero-rate gate")
	case <-time.After(50 * time.Millisecond):
		// Still blocked — as it must be. (The old code also failed to
		// return here, but burned a CPU core doing it.)
	}
	g.setRate(1e6, 1e4)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("take still blocked after setRate supplied a positive rate")
	}
}

// TestGateSetRateClampsTokens is the regression test for the fast→slow
// retarget bug: a gate carrying a fast device's accumulated tokens across
// setRate admitted a full old-rate burst before throttling at the new rate,
// corrupting the first post-migration measurement window. The new burst must
// clamp the balance.
func TestGateSetRateClampsTokens(t *testing.T) {
	var g gate
	g.setRate(50e6, 50e4) // fast: the bucket seeds with 500k tokens
	time.Sleep(5 * time.Millisecond)
	g.setRate(1000, 10) // migrated to a slow device: 10-unit bucket

	// 2000 units at 1000 units/s must take ~2 s; with the carried 500k
	// balance it would return instantly.
	start := time.Now()
	g.take(2000)
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Errorf("take of 2000 units at 1000/s returned in %v; old tokens not clamped to the new burst", elapsed)
	}
}

// TestGateFIFOFairness: two concurrent takers of equal bursts must share the
// grant roughly evenly — tickets are served in arrival order, so neither
// worker can starve the other by winning every wakeup race.
func TestGateFIFOFairness(t *testing.T) {
	var g gate
	g.setRate(100_000, 1000) // 100 k units/s, 10 ms bucket
	const per = 1000         // each take is 10 ms of budget
	stop := time.Now().Add(300 * time.Millisecond)
	counts := make([]int, 2)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				g.take(per)
				counts[w]++
			}
		}(w)
	}
	wg.Wait()
	a, b := counts[0], counts[1]
	if a == 0 || b == 0 {
		t.Fatalf("a taker starved: %d vs %d grants", a, b)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(lo) < 0.5*float64(hi) {
		t.Errorf("unfair grant split: %d vs %d (want within 2×)", a, b)
	}
}
