package emul

import (
	"testing"
	"time"

	"repro/internal/packet"
)

// TestGateRateIncreaseMidWait: a rate raised while take is sleeping (what a
// migration to a faster device does) must shorten the wait. The old gate
// slept the full deficit computed at the old rate.
func TestGateRateIncreaseMidWait(t *testing.T) {
	var g gate
	g.setRate(1000) // 1 kB/s: 5000 B needs ~3.5 s beyond the initial burst
	done := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		g.take(5000)
		done <- time.Since(start)
	}()
	time.Sleep(50 * time.Millisecond)
	g.setRate(50e6) // migration to a much faster device
	select {
	case elapsed := <-done:
		if elapsed > time.Second {
			t.Errorf("take took %v after the rate increase; the old-rate deficit was ~3.5s", elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("take still blocked 3s after the rate increase")
	}
}

// TestGateAdmitsOversizedBurst: a burst larger than the configured bucket
// must be admitted after a proportional wait, not spin forever (the bucket
// clamp would otherwise keep tokens below the request).
func TestGateAdmitsOversizedBurst(t *testing.T) {
	var g gate
	g.setRate(1e6) // burst = max(10 kB, MaxFrameSize) = 10 kB
	n := 4 * packet.MaxFrameSize * 16
	if float64(n) <= g.burst {
		t.Fatalf("test burst %d not larger than bucket %.0f", n, g.burst)
	}
	start := time.Now()
	g.take(n) // ~97 kB at 1 MB/s ≈ 90 ms
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("oversized take took %v", elapsed)
	}
}

// TestGateEnforcesRate: batched admission must still meter the configured
// byte rate over time.
func TestGateEnforcesRate(t *testing.T) {
	var g gate
	g.setRate(100_000) // 100 kB/s, burst 1514
	start := time.Now()
	for i := 0; i < 10; i++ {
		g.take(2000) // 20 kB total, ≈185 ms after the initial burst
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("20 kB at 100 kB/s admitted in %v; throttle ineffective", elapsed)
	}
}
