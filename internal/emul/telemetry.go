package emul

// This file is the emulator-native telemetry source of the live control
// plane: LoadSampler turns window deltas of the runtime's per-element and
// egress meters into the per-device load picture the overload detector
// consumes ("periodically query the load of SmartNIC and CPU", §2 of the
// paper). Where the discrete-event simulator reports a server's busy
// fraction, the emulator reports fluid-model demand — Σ θ̂_i/θd_i with θ̂_i
// the element's *measured* served rate — which, unlike a busy fraction, can
// exceed 1 under overload. The detector's threshold semantics are unchanged
// either way; loss rate remains the sharper saturation signal.

import (
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/telemetry"
)

// ElementLoad is one element's measured load over a sampling window.
type ElementLoad struct {
	Name string
	Type string
	Loc  device.Kind // placement at sample time
	// ServedGbps is the rate the element actually processed during the
	// window, rescaled by Config.Scale into catalog (Table-1) units.
	ServedGbps float64
	// ServedPkts counts frames processed in the window.
	ServedPkts uint64
	// Drops counts frames lost entering this element's queues in the window
	// (queue-full rejections, plus ingress rejections for the head element).
	Drops uint64
	// Utilization is ServedGbps over the element's catalog capacity on its
	// current device: the measured form of the paper's θcur/θd_i term.
	Utilization float64
}

// DeviceLoad aggregates the elements resident on one device.
type DeviceLoad struct {
	ServedGbps  float64 // Σ per-element served rate, catalog units
	Utilization float64 // Σ per-element utilization (fluid-model demand)
	Drops       uint64  // frames lost entering resident elements' queues
}

// LoadSample is one polling window's measured load, in catalog units.
type LoadSample struct {
	At     time.Duration // emulation time at the end of the window
	Window time.Duration
	NIC    DeviceLoad
	CPU    DeviceLoad
	// DeliveredGbps is the chain's egress rate over the window (θcur).
	DeliveredGbps float64
	DeliveredPkts uint64
	// Drops counts every frame lost in the window (ingress + queue drops).
	Drops uint64
	// LossRate is Drops/(Drops+DeliveredPkts) for the window.
	LossRate float64
	Elements []ElementLoad
}

// Telemetry converts the sample into the detector's input form.
func (s LoadSample) Telemetry() telemetry.Sample {
	return telemetry.Sample{
		At:            s.At,
		NICUtil:       s.NIC.Utilization,
		CPUUtil:       s.CPU.Utilization,
		DeliveredGbps: s.DeliveredGbps,
		LossRate:      s.LossRate,
	}
}

// LoadSampler produces LoadSamples from a runtime by differencing its meters
// between calls: each Sample covers exactly the window since the previous
// one. Safe for concurrent use, though samples are typically taken by a
// single control loop.
type LoadSampler struct {
	rt *Runtime

	mu        sync.Mutex
	last      time.Duration
	served    []uint64 // per-element bytes at last sample
	pkts      []uint64
	drops     []uint64
	delivered uint64 // egress meter packets at last sample
	bytes     uint64
	allDrops  uint64
}

// NewLoadSampler attaches a sampler to the runtime. The first Sample call
// measures from Start (or from sampler creation if the runtime was already
// running).
func NewLoadSampler(rt *Runtime) *LoadSampler {
	s := &LoadSampler{
		rt:     rt,
		served: make([]uint64, len(rt.elems)),
		pkts:   make([]uint64, len(rt.elems)),
		drops:  make([]uint64, len(rt.elems)),
		last:   rt.Elapsed(),
	}
	for i, el := range rt.elems {
		s.served[i] = el.meter.Bytes()
		s.pkts[i] = el.meter.Packets()
		s.drops[i] = el.meter.Drops()
	}
	s.delivered = rt.meter.Packets()
	s.bytes = rt.meter.Bytes()
	s.allDrops = rt.meter.Drops()
	return s
}

// Sample closes the current window and returns its measurements. A window
// shorter than 1 ms (or a runtime that has not started) yields a zero-load
// sample so callers never divide by a degenerate interval.
func (s *LoadSampler) Sample() LoadSample {
	s.mu.Lock()
	defer s.mu.Unlock()

	r := s.rt
	now := r.Elapsed()
	win := now - s.last
	out := LoadSample{At: now, Window: win}
	if win < time.Millisecond {
		return out
	}
	scale := r.cfg.Scale
	sec := win.Seconds()
	toGbps := func(bytes uint64) float64 {
		return float64(bytes) * 8 * scale / sec / 1e9
	}

	out.Elements = make([]ElementLoad, len(r.elems))
	for i, el := range r.elems {
		bytes, pkts, drops := el.meter.Bytes(), el.meter.Packets(), el.meter.Drops()
		loc := device.Kind(el.loc.Load())
		load := ElementLoad{
			Name:       el.name,
			Type:       el.typ,
			Loc:        loc,
			ServedGbps: toGbps(bytes - s.served[i]),
			ServedPkts: pkts - s.pkts[i],
			Drops:      drops - s.drops[i],
		}
		if cap, err := r.cfg.Catalog.Lookup(el.typ, loc); err == nil && cap > 0 {
			load.Utilization = load.ServedGbps / float64(cap)
		}
		s.served[i], s.pkts[i], s.drops[i] = bytes, pkts, drops
		out.Elements[i] = load

		dev := &out.NIC
		if loc == device.KindCPU {
			dev = &out.CPU
		}
		dev.ServedGbps += load.ServedGbps
		dev.Utilization += load.Utilization
		dev.Drops += load.Drops
	}

	delivered, bytes, drops := r.meter.Packets(), r.meter.Bytes(), r.meter.Drops()
	out.DeliveredPkts = delivered - s.delivered
	out.DeliveredGbps = toGbps(bytes - s.bytes)
	out.Drops = drops - s.allDrops
	if t := out.Drops + out.DeliveredPkts; t > 0 {
		out.LossRate = float64(out.Drops) / float64(t)
	}
	s.delivered, s.bytes, s.allDrops = delivered, bytes, drops
	s.last = now
	return out
}
