package emul

// This file is the emulator-native telemetry source of the live control
// plane: LoadSampler turns window deltas of the runtime's per-element and
// egress meters into the per-device load picture the overload detector
// consumes ("periodically query the load of SmartNIC and CPU", §2 of the
// paper). With the shared per-device capacity gates the sampler is
// contention-aware and reports both sides of an overload:
//
//   - *Demand* — Σ offered_i/θd_i over resident elements, with offered_i the
//     rate at which traffic arrived at element i's queues (including frames
//     the full queue rejected). Demand exceeds 1 under overload and is what
//     DeviceLoad.Utilization carries to the detector.
//   - *Grant* — Σ served_i/θd_i, plus the device gate's own grant-rate
//     accounting in normalized device-seconds per second. The gate caps the
//     grant at ~1.0, which is exactly why delivered throughput physically
//     collapses while demand keeps climbing.
//
// With several hosted chains both sums run over every element resident on
// the device regardless of chain, which is what makes a summed-utilization
// hot spot visible even when every single chain is individually feasible;
// per-chain delivered/loss rides alongside in LoadSample.Chains. Loss rate
// remains the sharper saturation signal.

import (
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/telemetry"
)

// locEpoch is the attribution cut a migration records on its element while
// the shards are frozen: the element's cumulative meter totals at the
// moment it left loc. The LoadSampler splits any window spanning the cut so
// the slice up to it is attributed to — and priced at the catalog capacity
// of — the old device. Without the cut the sampler read the element's
// placement at sample time and charged the entire window, including the
// part served before the move, to the post-migration device.
type locEpoch struct {
	loc          device.Kind
	bytes        uint64
	pkts         uint64
	drops        uint64
	offeredBytes uint64
	offeredPkts  uint64
}

// ElementLoad is one element's measured load over a sampling window. A
// window that spans a live migration yields one entry per placement
// segment (the slice served on the old device, then the slice on the new
// one), each priced at its own device's catalog capacity.
type ElementLoad struct {
	Chain string // hosting chain's name
	Name  string
	Type  string
	Loc   device.Kind // placement during this segment of the window
	// ServedGbps is the rate the element actually processed during the
	// window, rescaled by Config.Scale into catalog (Table-1) units.
	ServedGbps float64
	// ServedPkts counts frames processed in the window.
	ServedPkts uint64
	// OfferedGbps is the rate at which traffic arrived at the element's
	// queues during the window — including frames the full queue rejected —
	// in catalog units. Under contention it exceeds ServedGbps.
	OfferedGbps float64
	// OfferedPkts counts frames that arrived in the window.
	OfferedPkts uint64
	// Drops counts frames lost entering this element's queues in the window
	// (queue-full rejections, plus ingress rejections for the head element).
	Drops uint64
	// Utilization is ServedGbps over the element's catalog capacity on its
	// current device: the share of the shared device budget the element was
	// actually granted.
	Utilization float64
	// Demand is OfferedGbps over the same capacity: the measured form of the
	// paper's θcur/θd_i term that keeps climbing when the device gate can no
	// longer grant it. The device sums Demand for overload detection.
	Demand float64
}

// DeviceLoad aggregates the elements resident on one device — across every
// hosted chain, because tenants share the devices and utilization is
// additive in the linear model.
type DeviceLoad struct {
	ServedGbps float64 // Σ per-element served rate, catalog units
	// Utilization is the device's offered *demand*: Σ per-element Demand.
	// It exceeds 1 under overload even though the shared capacity gate
	// physically caps service at the device budget — this is the value the
	// detector consumes, so Σ demand > 1 stays visible while delivered
	// throughput collapses.
	Utilization float64
	// GrantUtilization is Σ per-element Utilization (served/θ): the share of
	// the device budget residents actually received, ≈ min(demand, 1) plus
	// whatever burst the gate had banked.
	GrantUtilization float64
	// GrantRate is the device gate's own measured grant rate over the window
	// in normalized device-seconds per second — the authoritative form of
	// the same quantity, taken from the gate's cumulative grant counter.
	GrantRate float64
	Drops     uint64 // frames lost entering resident elements' queues
}

// DMADirLoad is one crossing direction's measured DMA-engine load over a
// sampling window.
type DMADirLoad struct {
	// DemandGbps is the rate at which traffic arrived wanting to cross in
	// this direction — including frames a full queue later dropped — in
	// catalog units. Under engine saturation it exceeds GrantGbps.
	DemandGbps float64
	// Demand is the offered share of the engine budget (link-seconds per
	// second): the serialization time the offered crossings would occupy.
	Demand float64
	// GrantGbps is the crossing rate the engine actually admitted, catalog
	// units.
	GrantGbps float64
	// Grant is the granted share of the engine budget, including the
	// per-burst descriptor overhead (PropDelay) the demand meter cannot
	// anticipate. The shared gate pins Σ Grant near 1.0.
	Grant float64
}

// DMALoad is the shared DMA engine's measured load over a sampling window:
// both directions' demand and grant, plus the totals the detector and the
// selection recheck consume. The engine is one shared budget (DESIGN §4) —
// the per-direction split is attribution, not separate capacity.
type DMALoad struct {
	ToCPU DMADirLoad // NIC/FPGA side → host CPU
	ToNIC DMADirLoad // host CPU → NIC side, including final egress
	// Utilization is the total offered demand in link-seconds per second —
	// the crossing analogue of DeviceLoad.Utilization, exceeding 1 while a
	// crossing-bound overload keeps the grant pinned at the budget.
	Utilization float64
	// GrantRate is the gate's own measured total grant over the window in
	// link-seconds per second, from its cumulative grant counter.
	GrantRate float64
}

// ChainLoad is one hosted chain's delivered traffic over a sampling window,
// the per-tenant view multi-chain selection and tenant-flatness assertions
// consume.
type ChainLoad struct {
	Name string
	// DeliveredGbps is the chain's egress rate over the window (its θcur),
	// in catalog units.
	DeliveredGbps float64
	DeliveredPkts uint64
	// Drops counts the chain's frames lost in the window (ingress + queue).
	Drops uint64
	// LossRate is Drops/(Drops+DeliveredPkts) for the window.
	LossRate float64
	// NICDemand/CPUDemand are the chain's contribution to each device's
	// demand utilization (Σ offered/θ over the chain's elements on that
	// device). The fleet coordinator ranks tenants by them to pick which
	// chain to push to another server when a whole server escalates.
	NICDemand float64
	CPUDemand float64
}

// LoadSample is one polling window's measured load, in catalog units.
type LoadSample struct {
	At     time.Duration // emulation time at the end of the window
	Window time.Duration
	NIC    DeviceLoad
	CPU    DeviceLoad
	// DMA is the shared PCIe DMA engine's measured load — the third
	// contended resource alongside the two devices.
	DMA DMALoad
	// DeliveredGbps is the aggregate egress rate over the window (Σ over
	// chains; the single chain's θcur when one chain is hosted).
	DeliveredGbps float64
	DeliveredPkts uint64
	// Drops counts every frame lost in the window (ingress + queue drops).
	Drops uint64
	// LossRate is Drops/(Drops+DeliveredPkts) for the window.
	LossRate float64
	Elements []ElementLoad
	// Chains is the per-tenant breakdown, parallel to the runtime's hosted
	// chains.
	Chains []ChainLoad
}

// Telemetry converts the sample into the detector's input form. The
// utilizations are the demand form, so the detector sees Σ offered/θ > 1
// during an overload whose delivered throughput the device gates have
// already collapsed.
func (s LoadSample) Telemetry() telemetry.Sample {
	return telemetry.Sample{
		At:            s.At,
		NICUtil:       s.NIC.Utilization,
		CPUUtil:       s.CPU.Utilization,
		DMAUtil:       s.DMA.Utilization,
		DeliveredGbps: s.DeliveredGbps,
		LossRate:      s.LossRate,
	}
}

// meterCursor is a sampler's per-meter position at the last sample. epoch
// counts the element's migration epochs already consumed, so each window is
// split at exactly the cuts that fell inside it.
type meterCursor struct {
	bytes        uint64
	pkts         uint64
	drops        uint64
	offeredBytes uint64
	offeredPkts  uint64
	epoch        int
}

// LoadSampler produces LoadSamples from a runtime by differencing its meters
// between calls: each Sample covers exactly the window since the previous
// one. Safe for concurrent use, though samples are typically taken by a
// single control loop.
type LoadSampler struct {
	rt *Runtime

	mu      sync.Mutex
	last    time.Duration
	elems   [][]meterCursor // per chain, per element
	chains  []meterCursor   // per chain egress meter
	granted map[device.Kind]float64
	dma     dmaCounters
}

// NewLoadSampler attaches a sampler to the runtime. The first Sample call
// measures from Start (or from sampler creation if the runtime was already
// running).
func NewLoadSampler(rt *Runtime) *LoadSampler {
	s := &LoadSampler{
		rt:      rt,
		elems:   make([][]meterCursor, len(rt.chains)),
		chains:  make([]meterCursor, len(rt.chains)),
		granted: make(map[device.Kind]float64, len(rt.gates)),
		last:    rt.Elapsed(),
	}
	for ci, tc := range rt.chains {
		s.elems[ci] = make([]meterCursor, len(tc.elems))
		for i, el := range tc.elems {
			el.epochMu.Lock()
			epoch := len(el.epochs)
			el.epochMu.Unlock()
			s.elems[ci][i] = meterCursor{
				bytes: el.meter.Bytes(), pkts: el.meter.Packets(), drops: el.meter.Drops(),
				offeredBytes: el.offeredBytes.Load(), offeredPkts: el.offeredPkts.Load(),
				epoch: epoch,
			}
		}
		s.chains[ci] = meterCursor{bytes: tc.meter.Bytes(), pkts: tc.meter.Packets(), drops: tc.meter.Drops()}
	}
	for kind, dg := range rt.gates {
		s.granted[kind] = dg.grantedUnits()
	}
	s.dma = rt.dma.counters()
	return s
}

// Sample closes the current window and returns its measurements. A window
// shorter than 1 ms (or a runtime that has not started) yields a zero-load
// sample so callers never divide by a degenerate interval.
func (s *LoadSampler) Sample() LoadSample {
	s.mu.Lock()
	defer s.mu.Unlock()

	r := s.rt
	now := r.Elapsed()
	win := now - s.last
	out := LoadSample{At: now, Window: win}
	if win < time.Millisecond {
		return out
	}
	scale := r.cfg.Scale
	sec := win.Seconds()
	toGbps := func(bytes uint64) float64 {
		return float64(bytes) * 8 * scale / sec / 1e9
	}

	out.Chains = make([]ChainLoad, len(r.chains))
	for ci, tc := range r.chains {
		var nicDemand, cpuDemand float64
		for i, el := range tc.elems {
			cur := &s.elems[ci][i]
			// Read order matters against a concurrent migration: placement
			// first, then epochs, then meters. A migration landing after the
			// loc read either also lands its epoch cut in this snapshot
			// (bounding any misattribution to the cut instant) or shows up
			// whole in the *next* window; the meters, read last, can never
			// predate an epoch in the snapshot (segment deltas saturate at
			// zero regardless).
			loc := device.Kind(el.loc.Load())
			el.epochMu.Lock()
			epochs := append([]locEpoch(nil), el.epochs[cur.epoch:]...)
			el.epochMu.Unlock()
			bytes, pkts, drops := el.meter.Bytes(), el.meter.Packets(), el.meter.Drops()
			offBytes, offPkts := el.offeredBytes.Load(), el.offeredPkts.Load()

			// One segment per placement the element held during the window:
			// each migration epoch recorded since the last sample cuts the
			// window, and the final segment runs to the current totals on the
			// current device.
			segs := append(epochs, locEpoch{
				loc: loc, bytes: bytes, pkts: pkts, drops: drops,
				offeredBytes: offBytes, offeredPkts: offPkts,
			})
			prev := locEpoch{
				bytes: cur.bytes, pkts: cur.pkts, drops: cur.drops,
				offeredBytes: cur.offeredBytes, offeredPkts: cur.offeredPkts,
			}
			for si, seg := range segs {
				load := ElementLoad{
					Chain:       tc.name,
					Name:        el.name,
					Type:        el.typ,
					Loc:         seg.loc,
					ServedGbps:  toGbps(sub(seg.bytes, prev.bytes)),
					ServedPkts:  sub(seg.pkts, prev.pkts),
					OfferedGbps: toGbps(sub(seg.offeredBytes, prev.offeredBytes)),
					OfferedPkts: sub(seg.offeredPkts, prev.offeredPkts),
					Drops:       sub(seg.drops, prev.drops),
				}
				prev = seg
				// Idle pre-migration segments carry no information; the final
				// (current-placement) segment is always emitted.
				if si < len(segs)-1 && load.ServedPkts == 0 && load.OfferedPkts == 0 && load.Drops == 0 {
					continue
				}
				if cap, err := r.cfg.Catalog.Lookup(el.typ, seg.loc); err == nil && cap > 0 {
					load.Utilization = load.ServedGbps / cap.Float()
					load.Demand = load.OfferedGbps / cap.Float()
				}
				out.Elements = append(out.Elements, load)

				dev := &out.NIC
				if seg.loc == device.KindCPU {
					dev = &out.CPU
				}
				dev.ServedGbps += load.ServedGbps
				dev.Utilization += load.Demand
				dev.GrantUtilization += load.Utilization
				dev.Drops += load.Drops
				if seg.loc == device.KindCPU {
					cpuDemand += load.Demand
				} else {
					nicDemand += load.Demand
				}
			}
			*cur = meterCursor{
				bytes: bytes, pkts: pkts, drops: drops,
				offeredBytes: offBytes, offeredPkts: offPkts,
				epoch: cur.epoch + len(epochs),
			}
		}

		bytes, pkts, drops := tc.meter.Bytes(), tc.meter.Packets(), tc.meter.Drops()
		cur := &s.chains[ci]
		cl := ChainLoad{
			Name:          tc.name,
			DeliveredGbps: toGbps(bytes - cur.bytes),
			DeliveredPkts: pkts - cur.pkts,
			Drops:         drops - cur.drops,
			NICDemand:     nicDemand,
			CPUDemand:     cpuDemand,
		}
		if t := cl.Drops + cl.DeliveredPkts; t > 0 {
			cl.LossRate = float64(cl.Drops) / float64(t)
		}
		*cur = meterCursor{bytes: bytes, pkts: pkts, drops: drops}
		out.Chains[ci] = cl

		out.DeliveredGbps += cl.DeliveredGbps
		out.DeliveredPkts += cl.DeliveredPkts
		out.Drops += cl.Drops
	}
	if t := out.Drops + out.DeliveredPkts; t > 0 {
		out.LossRate = float64(out.Drops) / float64(t)
	}
	for kind, dg := range r.gates {
		total := dg.grantedUnits()
		rate := (total - s.granted[kind]) / sec
		s.granted[kind] = total
		switch kind {
		case device.KindSmartNIC:
			out.NIC.GrantRate = rate
		case device.KindCPU:
			out.CPU.GrantRate = rate
		}
	}
	dc := r.dma.counters()
	dir := func(i dmaDir) DMADirLoad {
		return DMADirLoad{
			DemandGbps: toGbps(sub(dc.demandBytes[i], s.dma.demandBytes[i])),
			Demand:     (dc.demandUnits[i] - s.dma.demandUnits[i]) / sec,
			GrantGbps:  toGbps(sub(dc.grantBytes[i], s.dma.grantBytes[i])),
			Grant:      (dc.grantUnits[i] - s.dma.grantUnits[i]) / sec,
		}
	}
	out.DMA.ToCPU = dir(dmaToCPU)
	out.DMA.ToNIC = dir(dmaToNIC)
	out.DMA.Utilization = out.DMA.ToCPU.Demand + out.DMA.ToNIC.Demand
	out.DMA.GrantRate = (dc.granted - s.dma.granted) / sec
	s.dma = dc
	s.last = now
	return out
}

// sub is saturating uint64 subtraction: cumulative counters read at
// slightly different instants (meters vs. a concurrent migration's epoch
// cut) must difference to zero, not wrap.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
