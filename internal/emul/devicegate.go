package emul

// Shared per-device capacity gates. Before this file existed every element
// throttled at its own θd_i/Scale token bucket, so co-resident elements
// could *each* run at full capacity simultaneously — a summed-utilization
// hot spot showed up in the LoadSampler's arithmetic but never as real
// slowdown. The deviceGate inverts that model: one token bucket per device
// instance, denominated in normalized device-seconds, shared by every
// resident element across all hosted chains. A burst of B bytes at an
// element whose scaled capacity is R bytes/s costs B/R seconds of the
// device's budget, and the device accrues exactly 1.0 device-second per
// wall-clock second — so a lone element is capped at its own θd_i (it can
// never consume more than one device-second per second), while Σ demand > 1
// physically collapses every resident's delivered throughput, which is the
// premise PAM reacts to. Grants are FIFO by ticket so co-resident elements
// share the budget burst-by-burst instead of racing wakeups.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
)

// gate is a token bucket over abstract units (bytes for the legacy
// per-element form, normalized device-seconds for deviceGate). take blocks
// until the requested units are available; waiters are served FIFO by
// ticket. Two historic bugs are fixed here and guarded by regression tests:
//
//  1. take with rate == 0 (a gate constructed before its first setRate)
//     divided by zero — time.Duration(+Inf) overflows to a negative sleep,
//     degenerating the wait loop into a busy spin. A non-positive rate now
//     blocks on a condition until setRate supplies one.
//  2. setRate did not clamp an existing token balance to the new burst: a
//     gate retargeted fast→slow carried the old rate's accumulated tokens
//     and admitted a full old-rate burst before throttling, corrupting the
//     first post-change measurement window.
type gate struct {
	mu   sync.Mutex
	cond *sync.Cond // lazily bound to mu; wakes zero-rate and FIFO waiters

	rate    float64 // units per second
	tokens  float64
	burst   float64 // token cap; requests larger than it are still admissible
	last    time.Time
	granted float64 // cumulative units granted, for grant-rate telemetry

	head, tail uint64 // FIFO tickets: tail issues, head serves
}

// ensureCond binds the condition variable on first use. Callers hold mu.
func (g *gate) ensureCond() {
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
}

// setRate retargets the bucket to rate units/s with the given burst cap.
// The first call seeds the bucket full; later calls clamp any accumulated
// balance to the new burst (bugfix 2) and wake waiters blocked on a zero
// rate or sleeping against the old one (a rate raised mid-wait takes effect
// within maxGateSleep).
func (g *gate) setRate(rate, burst float64) {
	g.mu.Lock()
	g.ensureCond()
	g.rate = rate
	g.burst = burst
	if g.last.IsZero() {
		g.last = time.Now()
		g.tokens = burst
	}
	if g.tokens > g.burst {
		g.tokens = g.burst
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// maxGateSleep bounds one throttling sleep so that a rate raised mid-wait
// (a live migration to a faster device) takes effect within milliseconds
// instead of after the full deficit computed at the old rate.
const maxGateSleep = 5 * time.Millisecond

// take blocks until n units of budget are available. Requests larger than
// the configured burst (a big batch at a slow device) are still admissible:
// tokens may accumulate up to the request size. Waiters are granted in
// arrival order, so concurrent takers share the budget fairly rather than
// racing each other's wakeups. A non-positive rate blocks on the condition
// until setRate supplies one (bugfix 1).
func (g *gate) take(n float64) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.ensureCond()
	ticket := g.tail
	g.tail++
	for g.head != ticket {
		g.cond.Wait()
	}
	for {
		for g.rate <= 0 {
			g.cond.Wait()
		}
		now := time.Now()
		g.tokens += g.rate * now.Sub(g.last).Seconds()
		g.last = now
		limit := g.burst
		if n > limit {
			limit = n
		}
		if g.tokens > limit {
			g.tokens = limit
		}
		if g.tokens >= n {
			g.tokens -= n
			g.granted += n
			g.head++
			g.cond.Broadcast()
			g.mu.Unlock()
			return
		}
		wait := time.Duration((n - g.tokens) / g.rate * float64(time.Second))
		if wait > maxGateSleep {
			wait = maxGateSleep
		}
		g.mu.Unlock()
		time.Sleep(wait)
		g.mu.Lock()
	}
}

// grantedUnits returns the cumulative units granted so far; the LoadSampler
// differences it between windows into a grant rate.
func (g *gate) grantedUnits() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.granted
}

// deviceGate is one emulated device instance's shared capacity: a gate in
// normalized device-seconds at a fixed rate of 1.0 (one device-second per
// wall-clock second — Config.Scale is already folded into each element's
// byte rate, so no further scaling applies here). Elements attach on
// placement and re-attach on live migration; attach/detach is pure
// bookkeeping and never creates or destroys banked budget, so a migration
// freeze cannot leak device time.
type deviceGate struct {
	kind device.Kind
	gate
	residents atomic.Int32
}

// newDeviceGate builds the gate for one device instance with the given
// fairness burst (Config.DeviceBurst worth of bankable device time).
func newDeviceGate(kind device.Kind, burst time.Duration) *deviceGate {
	dg := &deviceGate{kind: kind}
	dg.setRate(1.0, burst.Seconds())
	return dg
}

func (dg *deviceGate) attach()       { dg.residents.Add(1) }
func (dg *deviceGate) detach()       { dg.residents.Add(-1) }
func (dg *deviceGate) resident() int { return int(dg.residents.Load()) }

// newDeviceGates builds the runtime's registry: one shared gate per device
// kind. All kinds are materialized upfront so a live migration can target a
// device no element started on. The list comes from device.Kinds — the
// registry used to hard-code three kinds, so a kind added to the device
// package was silently absent here and the first placement on it
// dereferenced a nil gate.
func newDeviceGates(burst time.Duration) map[device.Kind]*deviceGate {
	gates := make(map[device.Kind]*deviceGate, len(device.Kinds()))
	for _, k := range device.Kinds() {
		gates[k] = newDeviceGate(k, burst)
	}
	return gates
}

// UnknownDeviceKindError reports a placement or migration that targets a
// device kind the gate registry does not carry — a kind outside
// device.Kinds. Callers get a typed error instead of a nil-gate panic.
type UnknownDeviceKindError struct {
	Kind device.Kind
}

// Error implements error.
func (e *UnknownDeviceKindError) Error() string {
	return fmt.Sprintf("emul: no capacity gate for device kind %v (known kinds: %v)", e.Kind, device.Kinds())
}
