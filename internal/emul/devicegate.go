package emul

// Shared per-device capacity gates. Before this file existed every element
// throttled at its own θd_i/Scale token bucket, so co-resident elements
// could *each* run at full capacity simultaneously — a summed-utilization
// hot spot showed up in the LoadSampler's arithmetic but never as real
// slowdown. The deviceGate inverts that model: one token bucket per device
// instance, denominated in normalized device-seconds, shared by every
// resident element across all hosted chains. A burst of B bytes at an
// element whose scaled capacity is R bytes/s costs B/R seconds of the
// device's budget, and the device accrues exactly 1.0 device-second per
// wall-clock second — so a lone element is capped at its own θd_i (it can
// never consume more than one device-second per second), while Σ demand > 1
// physically collapses every resident's delivered throughput, which is the
// premise PAM reacts to.
//
// The gate is two-tier. The *fast path* keeps the balance in an
// atomic.Int64 of nano-units (1 unit = 1e9 nano-units) and grants an
// uncontended burst with one CAS — no mutex, no condition variable, no
// clock read unless the balance has run dry. Every burst of every chain
// crosses a gate, so this path bounds the whole dataplane's throughput.
// The *slow path* is a FIFO queue of pooled waiter nodes under the mutex:
// takers fall back to it when the balance cannot cover them (token
// exhaustion — the contended regime where fairness matters) or when the
// rate is non-positive (zero-rate parking). Grants are FIFO by queue
// position so co-resident elements share the budget burst-by-burst, and
// wakeups are targeted — a grant signals only the next head, setRate only
// the current one — instead of the historic cond.Broadcast thundering herd
// (O(waiters) spurious wakeups per grant). The nodes and their channels
// come from a sync.Pool, so a saturated gate churning through thousands of
// slow-path grants allocates nothing in steady state; while any waiter is
// queued, the fast path stands down so newcomers cannot barge past the
// queue.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
)

// gateEpoch anchors the gates' monotonic clock: balances accrue against
// time.Since(gateEpoch), which reads the runtime's monotonic clock without
// allocating.
var gateEpoch = time.Now()

// gateNanos is the gates' monotonic clock in nanoseconds.
func gateNanos() int64 { return int64(time.Since(gateEpoch)) }

// nanoUnits converts a unit quantity (device-seconds, link-seconds, bytes —
// the gate is unit-agnostic) into the int64 nano-unit fixed point the fast
// path CASes on. Rounding up means a grant can never admit more than was
// asked cheaper than budgeted — the gate may overcharge by at most one
// nano-unit (1e-9 device-seconds) per burst, never undercharge.
func nanoUnits(n float64) int64 {
	return int64(math.Ceil(n * 1e9))
}

// gate is a token bucket over abstract units (bytes for the legacy
// per-element form, normalized device-seconds for deviceGate, link-seconds
// for dmaGate). take blocks until the requested units are available. Three
// historic bugs remain fixed here and guarded by regression tests:
//
//  1. take with rate == 0 (a gate constructed before its first setRate)
//     divided by zero — time.Duration(+Inf) overflows to a negative sleep,
//     degenerating the wait loop into a busy spin. A non-positive rate now
//     parks the waiter on the slow path's condition until setRate supplies
//     one.
//  2. setRate did not clamp an existing token balance to the new burst: a
//     gate retargeted fast→slow carried the old rate's accumulated tokens
//     and admitted a full old-rate burst before throttling, corrupting the
//     first post-change measurement window.
//  3. Close could hang on workers parked in a zero-rate wait (fixed at the
//     element layer; the gate's park is always wakeable by broadcast).
//
// Invariants the fast path must preserve (see DESIGN §4):
//   - No minting: the balance only grows through refill, and refill is
//     serialized by a CAS on the last-accrual timestamp — exactly one
//     winner credits each elapsed interval, capped at the limit.
//   - FIFO under contention: tryTake declines whenever waiters > 0, so the
//     ticket queue drains in arrival order (modulo the benign race of a
//     taker that passed the waiter check just before the first ticket was
//     issued — bounded to one burst).
//   - Zero-rate and clamp semantics are unchanged: both live behind the
//     slow path and setRate, which the fast path never bypasses (a
//     non-positive rate fails the fast path's rate check).
type gate struct {
	// Fast-path state: everything the uncontended grant touches is atomic.
	balance atomic.Int64  // banked budget, nano-units
	lastAcc atomic.Int64  // gateNanos() at the last refill accrual
	limitN  atomic.Int64  // refill cap, nano-units: the burst, or an oversized head request
	burstN  atomic.Int64  // configured burst, nano-units (limitN's resting value)
	rateB   atomic.Uint64 // math.Float64bits of the rate in units/s
	granted atomic.Int64  // cumulative nano-units granted, net of returned leases
	waiters atomic.Int32  // slow-path FIFO population; fast path stands down when > 0

	mu     sync.Mutex
	seeded bool // first setRate seeds the bucket full

	// FIFO waiter queue: an intrusive list of pooled nodes, head served
	// first. Guarded by mu.
	qHead, qTail *gateWaiter
}

// gateWaiter is one slow-path waiter's parking spot. ready (capacity 1)
// carries both wakeup kinds a waiter can receive: promotion to head when
// the previous head is granted, and a setRate nudge while the head parks on
// a non-positive rate. Nodes recycle through waiterPool; the buffered
// channel makes signals non-blocking and a stale token is drained before
// the node is pooled again.
type gateWaiter struct {
	ready chan struct{}
	next  *gateWaiter
}

// waiterPool recycles slow-path waiter nodes so a contended gate's FIFO
// queue allocates nothing in steady state.
var waiterPool = sync.Pool{
	New: func() any { return &gateWaiter{ready: make(chan struct{}, 1)} },
}

// signal nudges the waiter; a non-blocking send because ready is never
// read-raced by more than its owner and a buffered token is never lost.
func (w *gateWaiter) signal() {
	select {
	case w.ready <- struct{}{}:
	default:
	}
}

// loadRate reads the configured rate without the mutex.
func (g *gate) loadRate() float64 { return math.Float64frombits(g.rateB.Load()) }

// setRate retargets the bucket to rate units/s with the given burst cap.
// The first call seeds the bucket full; later calls clamp any accumulated
// balance to the new burst (bugfix 2) and wake waiters blocked on a zero
// rate or sleeping against the old one (a rate raised mid-wait takes effect
// within maxGateSleep).
//
//pam:slowpath
func (g *gate) setRate(rate, burst float64) {
	g.mu.Lock()
	g.rateB.Store(math.Float64bits(rate))
	bn := nanoUnits(burst)
	g.burstN.Store(bn)
	g.limitN.Store(bn)
	if !g.seeded {
		g.seeded = true
		g.lastAcc.Store(gateNanos())
		g.balance.Store(bn)
	}
	for {
		b := g.balance.Load()
		if b <= bn || g.balance.CompareAndSwap(b, bn) {
			break
		}
	}
	// Only the queue head ever waits on the rate (the rest wait on
	// promotion), so a targeted signal replaces the historic broadcast;
	// a head sleeping against the old rate's deficit re-checks within
	// maxGateSleep on its own.
	if g.qHead != nil {
		g.qHead.signal()
	}
	g.mu.Unlock()
}

// maxGateSleep bounds one throttling sleep so that a rate raised mid-wait
// (a live migration to a faster device) takes effect within milliseconds
// instead of after the full deficit computed at the old rate.
const maxGateSleep = 5 * time.Millisecond

// refill credits the balance with the budget accrued since the last refill,
// capped at the current limit. Lock-free: the CAS on lastAcc elects exactly
// one winner per elapsed interval, so concurrent refills cannot credit the
// same nanoseconds twice (no minting); the balance CAS loop tolerates
// concurrent grants and lease returns.
//
//pam:hotpath
func (g *gate) refill() {
	now := gateNanos()
	last := g.lastAcc.Load()
	if now <= last || !g.lastAcc.CompareAndSwap(last, now) {
		return
	}
	rate := g.loadRate()
	if rate <= 0 {
		return // the interval accrues nothing; rate checks park takers
	}
	lim := g.limitN.Load()
	for {
		b := g.balance.Load()
		if b >= lim {
			return
		}
		// Float math bounds the credit before it meets int64: a gate idle
		// for hours at a high unit rate must saturate at the limit, not
		// overflow.
		nb := float64(b) + rate*float64(now-last)
		if nb > float64(lim) {
			nb = float64(lim)
		}
		if g.balance.CompareAndSwap(b, int64(nb)) {
			return
		}
	}
}

// casTake debits need nano-units iff the balance covers them.
//
//pam:hotpath
func (g *gate) casTake(need int64) bool {
	for {
		b := g.balance.Load()
		if b < need {
			return false
		}
		if g.balance.CompareAndSwap(b, b-need) {
			return true
		}
	}
}

// tryTake is the lock-free fast path: grant need nano-units now or report
// false. It declines whenever FIFO waiters are queued (fairness: newcomers
// must not barge past the ticket queue) or the rate is non-positive
// (zero-rate parking lives on the slow path). The clock is read only when
// the banked balance has run dry — the steady-state grant is balance check,
// CAS, grant counter: three uncontended atomics.
//
//pam:hotpath
func (g *gate) tryTake(need int64) bool {
	if g.waiters.Load() != 0 || g.loadRate() <= 0 {
		return false
	}
	if g.casTake(need) {
		g.granted.Add(need)
		return true
	}
	g.refill()
	if g.casTake(need) {
		g.granted.Add(need)
		return true
	}
	return false
}

// take blocks until n units of budget are available: the CAS fast path when
// the banked balance covers the burst, the FIFO slow path on exhaustion.
// Requests larger than the configured burst (a big batch at a slow device)
// are still admissible: the slow path raises the refill cap to the request
// size while it is at the head of the queue.
func (g *gate) take(n float64) {
	if n <= 0 {
		return
	}
	g.takeNanos(nanoUnits(n))
}

// takeNanos is take in the fixed-point form the lease machinery uses.
//
//pam:hotpath
func (g *gate) takeNanos(need int64) {
	if need <= 0 {
		return
	}
	if g.tryTake(need) {
		return
	}
	g.slowTake(need)
}

// slowTake is the contended path: a FIFO queue of pooled waiter nodes
// under the mutex, bounded sleeps against the deficit, parking on the
// node's channel while not yet at the head or while the rate is
// non-positive (bugfix 1). Token accounting still goes through the shared
// atomic balance, so the fast and slow paths can never double-spend.
// Wakeups are targeted: the grant promotes exactly the next waiter and
// setRate nudges exactly the head, so a grant is O(1) regardless of queue
// population. A stale token on the node's channel (a setRate nudge that
// raced a grant, say) at worst causes one spurious loop iteration and is
// drained before the node returns to the pool.
//
//pam:slowpath
func (g *gate) slowTake(need int64) {
	w := waiterPool.Get().(*gateWaiter)
	g.mu.Lock()
	g.waiters.Add(1)
	if g.qTail == nil {
		g.qHead, g.qTail = w, w
	} else {
		g.qTail.next = w
		g.qTail = w
	}
	for g.qHead != w {
		g.mu.Unlock()
		<-w.ready
		g.mu.Lock()
	}
	for {
		for g.loadRate() <= 0 {
			g.mu.Unlock()
			<-w.ready // setRate signals the head
			g.mu.Lock()
		}
		// An oversized request (need > burst) raises the refill cap while
		// it is being served; only the FIFO head mutates limitN, and the
		// grant below restores it.
		if need > g.limitN.Load() {
			g.limitN.Store(need)
		}
		g.refill()
		if g.casTake(need) {
			g.granted.Add(need)
			if bn := g.burstN.Load(); need > bn {
				g.limitN.Store(bn)
			}
			g.qHead = w.next
			if g.qHead == nil {
				g.qTail = nil
			} else {
				g.qHead.signal() // promote the next waiter
			}
			g.waiters.Add(-1)
			g.mu.Unlock()
			w.next = nil
			select { // drain a stale nudge before pooling the node
			case <-w.ready:
			default:
			}
			waiterPool.Put(w)
			return
		}
		deficit := need - g.balance.Load()
		wait := time.Duration(float64(deficit) / g.loadRate())
		if wait > maxGateSleep || wait <= 0 {
			wait = maxGateSleep
		}
		g.mu.Unlock()
		time.Sleep(wait)
		g.mu.Lock()
	}
}

// returnNanos banks an unused lease remainder back into the balance, capped
// at the current limit (tokens above the cap are forfeited, never minted),
// and credits the grant counter by exactly the amount banked — so
// grantedUnits stays an upper bound on real accrual and, once every lease
// is returned, an exact account of budget actually consumed. Lock-free; a
// FIFO waiter sleeping against an empty bucket re-checks the balance within
// maxGateSleep.
//
//pam:hotpath
func (g *gate) returnNanos(n int64) {
	if n <= 0 {
		return
	}
	var banked int64
	for {
		b := g.balance.Load()
		room := g.limitN.Load() - b
		if room <= 0 {
			return
		}
		banked = n
		if banked > room {
			banked = room
		}
		if g.balance.CompareAndSwap(b, b+banked) {
			break
		}
	}
	g.granted.Add(-banked)
}

// grantedUnits returns the cumulative units granted so far, net of returned
// leases; the LoadSampler differences it between windows into a grant rate.
func (g *gate) grantedUnits() float64 {
	return float64(g.granted.Load()) / 1e9
}

// leaseDiv sets the lease quantum: each worker's local bank is at most
// burst/(leaseDiv·residents), so even with every resident worker holding a
// full lease the outstanding budget stays a fraction of the fairness burst
// and a newly contended gate reaches the FIFO path within one quantum.
const leaseDiv = 8

// deviceGate is one emulated device instance's shared capacity: a gate in
// normalized device-seconds at a fixed rate of 1.0 (one device-second per
// wall-clock second — Config.Scale is already folded into each element's
// byte rate, so no further scaling applies here). Elements attach on
// placement and re-attach on live migration; attach/detach is pure
// bookkeeping and never creates or destroys banked budget, so a migration
// freeze cannot leak device time.
type deviceGate struct {
	kind device.Kind
	gate
	residents atomic.Int32
}

// newDeviceGate builds the gate for one device instance with the given
// fairness burst (Config.DeviceBurst worth of bankable device time).
func newDeviceGate(kind device.Kind, burst time.Duration) *deviceGate {
	dg := &deviceGate{kind: kind}
	dg.setRate(1.0, burst.Seconds())
	return dg
}

func (dg *deviceGate) attach()       { dg.residents.Add(1) }
func (dg *deviceGate) detach()       { dg.residents.Add(-1) }
func (dg *deviceGate) resident() int { return int(dg.residents.Load()) }

// drawLease grants need nano-units plus a small lease quantum the calling
// worker banks locally and charges later bursts against without touching
// the gate — the amortization that makes the steady uncontended path free
// of shared-memory traffic. Strictly non-blocking and fast-path-only: under
// contention (waiters queued, balance dry) it declines entirely so the
// caller falls back to the blocking FIFO take and fairness is preserved.
//
// Leases are drawn only while the bucket is healthy: the draw must leave at
// least half the burst banked. Near saturation a pocketed lease would let a
// worker serve bursts out of tokens granted in an earlier telemetry window,
// smoothing the very collapse the shared gate exists to produce (and
// spiking served/θ past the window's grants) — so an unhealthy bucket
// degrades to per-burst grants with exactly the pre-lease FIFO dynamics.
// The balance check races with concurrent takers, but it only ever errs by
// declining a lease or dipping one quantum past the watermark: no tokens
// are minted either way.
//
// extra is the lease actually drawn (0 when only the burst itself fit).
//
//pam:hotpath
func (dg *deviceGate) drawLease(need int64) (extra int64, ok bool) {
	res := int64(dg.residents.Load())
	if res < 1 {
		res = 1
	}
	quantum := dg.burstN.Load() / (leaseDiv * res)
	if quantum > 0 && dg.balance.Load() >= need+quantum+dg.burstN.Load()/2 &&
		dg.tryTake(need+quantum) {
		return quantum, true
	}
	if dg.tryTake(need) {
		return 0, true
	}
	return 0, false
}

// newDeviceGates builds the runtime's registry: one shared gate per device
// kind. All kinds are materialized upfront so a live migration can target a
// device no element started on. The list comes from device.Kinds — the
// registry used to hard-code three kinds, so a kind added to the device
// package was silently absent here and the first placement on it
// dereferenced a nil gate.
func newDeviceGates(burst time.Duration) map[device.Kind]*deviceGate {
	gates := make(map[device.Kind]*deviceGate, len(device.Kinds()))
	for _, k := range device.Kinds() {
		gates[k] = newDeviceGate(k, burst)
	}
	return gates
}

// UnknownDeviceKindError reports a placement or migration that targets a
// device kind the gate registry does not carry — a kind outside
// device.Kinds. Callers get a typed error instead of a nil-gate panic.
type UnknownDeviceKindError struct {
	Kind device.Kind
}

// Error implements error.
func (e *UnknownDeviceKindError) Error() string {
	return fmt.Sprintf("emul: no capacity gate for device kind %v (known kinds: %v)", e.Kind, device.Kinds())
}
