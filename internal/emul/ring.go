package emul

// Bounded lock-free MPSC ring queue — the per-(element, shard) input queue
// of the run-to-completion worker pool. Producers are SendChain callers and
// upstream pool workers forwarding a burst; the consumer is always the one
// pool worker that owns the shard, so the dequeue side needs no CAS at all.
//
// The design is the classic bounded MPMC ring restricted to one consumer:
// each slot carries a sequence number that encodes its state relative to
// the enqueue/dequeue cursors. A producer claims a slot by CASing the
// enqueue cursor, writes the job, then publishes it by storing seq = pos+1;
// the consumer observes seq == pos+1 (the atomic load orders the job read
// after the publish), copies the job out, and recycles the slot with
// seq = pos+capacity. push is strictly non-blocking: a full ring reports
// false and the caller accounts an ingress/queue drop, exactly as the old
// bounded channel's default case did. The ring doubles as the migration
// freeze buffer — a paused element's rings simply stop being polled, and
// pending() feeds the migration report's Buffered count.

import "sync/atomic"

type ringSlot struct {
	seq atomic.Uint64
	job job
}

type ring struct {
	mask  uint64
	slots []ringSlot
	// The cursors live on their own cache lines: enq is hammered by
	// producers, deq only by the owning worker.
	_   [56]byte
	enq atomic.Uint64
	_   [56]byte
	deq atomic.Uint64
}

// newRing builds a ring with capacity rounded up to the next power of two
// (minimum 8, so tiny QueueDepth configs still hold one burst).
func newRing(capacity int) *ring {
	n := 8
	for n < capacity {
		n <<= 1
	}
	q := &ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// push enqueues one job, reporting false when the ring is full. Safe for
// any number of concurrent producers.
//
//pam:hotpath
func (q *ring) push(j job) bool {
	pos := q.enq.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				s.job = j
				s.seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case seq < pos:
			// The slot still holds an unconsumed entry from one lap ago:
			// the ring is full. (Producers never lap the consumer, so a
			// stale sequence here is definitive, not transient.)
			return false
		default:
			// Another producer claimed this position; advance past it.
			pos = q.enq.Load()
		}
	}
}

// popBatch dequeues up to len(dst) published jobs. Single-consumer only:
// the owning worker is the sole caller, so the dequeue cursor needs no CAS.
//
//pam:hotpath
func (q *ring) popBatch(dst []job) int {
	pos := q.deq.Load()
	n := 0
	for n < len(dst) {
		s := &q.slots[pos&q.mask]
		if s.seq.Load() != pos+1 {
			break // unpublished (or empty): stop at the gap
		}
		dst[n] = s.job
		s.job.frame = nil // drop the buffer reference; ownership moved out
		s.seq.Store(pos + q.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		q.deq.Store(pos)
	}
	return n
}

// empty reports whether the ring holds no entries, claimed-but-unpublished
// slots included — the conservative direction for both callers: the inline
// forwarding check must not overtake a frame mid-publish, and the park
// check treats a claim in progress as work (the producer's wake follows its
// publish, so the worker cannot sleep through it).
//
//pam:hotpath
func (q *ring) empty() bool { return q.enq.Load() == q.deq.Load() }

// pending returns the number of enqueued entries (migration reports).
func (q *ring) pending() int { return int(q.enq.Load() - q.deq.Load()) }
