package emul_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/nf"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func newBatchRuntime(t *testing.T, cfg emul.Config) *emul.Runtime {
	t.Helper()
	if cfg.Chain == nil {
		cfg.Chain = scenario.Figure1Chain()
	}
	if cfg.Catalog == nil {
		cfg.Catalog = device.Table1()
	}
	if (cfg.Link == pcie.Link{}) {
		cfg.Link = pcie.DefaultLink()
	}
	r, err := emul.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

// accounting returns sent-side and receive-side tallies for the identity
// offered = delivered + NF drops + queue drops + ingress drops.
func accounting(r *emul.Runtime) (delivered, nfDrops, queueDrops, ingress uint64) {
	res := r.Results()
	for _, d := range res.QueueDrops {
		queueDrops += d
	}
	for _, s := range r.NFStats() {
		nfDrops += s.Dropped
	}
	return res.Delivered, nfDrops, queueDrops, res.IngressDrops
}

// TestBatchAccountingIdentity runs the sharded, pooled, batched dataplane
// and requires every offered frame to be accounted for:
// offered = delivered + NF verdict drops + queue drops + ingress drops.
func TestBatchAccountingIdentity(t *testing.T) {
	r := newBatchRuntime(t, emul.Config{
		Scale:      50,
		QueueDepth: 1024,
		BatchSize:  32,
		Workers:    4,
		PoolFrames: true,
	})
	r.Start()
	synth := traffic.NewSynth(16, 11)
	const n = 5000
	for i := 0; i < n; i++ {
		tmpl := synth.Frame(uint64(i%16), 512)
		f := r.AcquireFrame(len(tmpl))
		copy(f, tmpl)
		r.Send(f)
	}
	r.Drain()
	delivered, nfDrops, queueDrops, ingress := accounting(r)
	res := r.Results()
	if res.Offered != n {
		t.Fatalf("offered = %d, want %d", res.Offered, n)
	}
	if delivered+nfDrops+queueDrops+ingress != n {
		t.Errorf("identity broken: delivered=%d nfDrops=%d queueDrops=%d ingress=%d ≠ offered=%d",
			delivered, nfDrops, queueDrops, ingress, n)
	}
	if delivered == 0 {
		t.Error("nothing delivered under batch mode")
	}
	for name, s := range r.NFStats() {
		if s.Processed == 0 {
			t.Errorf("NF %s processed nothing", name)
		}
	}
	r.Close()
}

// TestBatchPerFlowOrdering: flow-hash sharding must preserve per-flow FIFO
// order end to end even with the element sharded across pool workers.
func TestBatchPerFlowOrdering(t *testing.T) {
	r := newBatchRuntime(t, emul.Config{
		Scale:      10,
		QueueDepth: 4096,
		BatchSize:  16,
		Workers:    4,
	})
	// Sequence numbers ride in the IPv4 ID field (bytes 18..19 of the frame).
	seq := func(frame []byte) uint16 { return uint16(frame[18])<<8 | uint16(frame[19]) }
	flowOf := func(frame []byte) byte { return frame[29] } // last byte of src IP
	lastSeen := map[byte]uint16{}
	var mu sync.Mutex
	var misordered int
	r.SetEgressTap(func(frame []byte) {
		mu.Lock()
		f, s := flowOf(frame), seq(frame)
		if prev, ok := lastSeen[f]; ok && s <= prev {
			misordered++
		}
		lastSeen[f] = s
		mu.Unlock()
	})
	r.Start()
	synth := traffic.NewSynth(8, 13)
	sent := 0
	for i := 0; i < 4000; i++ {
		fr := synth.Frame(uint64(i%8), 256)
		fr[18], fr[19] = byte(i>>8), byte(i) // monotone per flow because i mod 8 is fixed per flow
		if r.Send(fr) {
			sent++
		}
	}
	r.Drain()
	r.Close()
	if sent == 0 {
		t.Fatal("nothing accepted")
	}
	if misordered > 0 {
		t.Errorf("%d frames arrived out of order within their flow", misordered)
	}
}

// TestShardedMigrationUnderLoad: freeze → transfer → restore → replay must
// stay loss-free when the element is sharded across pool workers mid-traffic.
func TestShardedMigrationUnderLoad(t *testing.T) {
	r := newBatchRuntime(t, emul.Config{
		Scale:      100,
		QueueDepth: 8192,
		BatchSize:  16,
		Workers:    4,
	})
	r.Start()
	defer r.Close()

	done := make(chan int)
	go func() {
		synth := traffic.NewSynth(8, 17)
		sent := 0
		for i := 0; i < 2000; i++ {
			if r.Send(synth.Frame(uint64(i%8), 200)) {
				sent++
			}
		}
		done <- sent
	}()
	time.Sleep(2 * time.Millisecond)
	rep, err := r.Migrate(scenario.NameMonitor, device.KindCPU)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if rep.StateBytes == 0 {
		t.Error("migration moved no state")
	}
	sent := <-done
	r.Drain()

	delivered, nfDrops, queueDrops, _ := accounting(r)
	if delivered+nfDrops+queueDrops != uint64(sent) {
		t.Errorf("frames lost across sharded migration: delivered=%d nfDrops=%d queueDrops=%d sent=%d",
			delivered, nfDrops, queueDrops, sent)
	}
	if queueDrops != 0 {
		t.Errorf("queue drops = %d; the shard freeze buffers must absorb the burst", queueDrops)
	}
	inst, _ := r.Instance(scenario.NameMonitor)
	if got := inst.(*nf.Monitor).FlowCount(); got != 8 {
		t.Errorf("monitor tracks %d flows after migration, want 8", got)
	}
	if loc := r.Placement(); loc.At(loc.Index(scenario.NameMonitor)).Loc != device.KindCPU {
		t.Error("placement not updated")
	}
}

// TestSendCloseRace hammers Send from several goroutines while Close runs.
// Run under -race: the old runtime checked closed and then sent on a
// channel Close was concurrently closing (panic: send on closed channel).
func TestSendCloseRace(t *testing.T) {
	r := newBatchRuntime(t, emul.Config{Scale: 10, BatchSize: 8, Workers: 2})
	r.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			synth := traffic.NewSynth(4, seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Send(synth.Frame(uint64(i%4), 128))
			}
		}(int64(g + 100))
	}
	time.Sleep(10 * time.Millisecond)
	r.Close() // must not panic against concurrent Sends
	close(stop)
	wg.Wait()
	if r.Send(traffic.NewSynth(1, 1).Frame(0, 128)) {
		t.Error("Send accepted after Close")
	}
}

// TestSteadyStateAllocs guards the near-zero-alloc promise of the pooled
// batch dataplane end to end: after warm-up, pushing a frame through the
// whole four-element chain must cost ~a tenth of an allocation, not several
// per hop. Counted via MemStats because the work happens on worker
// goroutines (testing.AllocsPerRun only sees the calling goroutine; the
// per-component guards live in packet and nf).
func TestSteadyStateAllocs(t *testing.T) {
	r := newBatchRuntime(t, emul.Config{
		Scale:      1, // generous rates: no throttle sleeps during the measurement
		QueueDepth: 4096,
		BatchSize:  64,
		Workers:    2,
		PoolFrames: true,
	})
	r.Start()
	defer r.Close()
	synth := traffic.NewSynth(8, 21)
	tmpls := make([][]byte, 8)
	for i := range tmpls {
		tmpls[i] = synth.Frame(uint64(i), 512)
	}
	send := func(count int) {
		for i := 0; i < count; i++ {
			tmpl := tmpls[i%8]
			f := r.AcquireFrame(len(tmpl))
			copy(f, tmpl)
			for !r.Send(f) {
				runtime.Gosched()
			}
		}
		r.Drain()
	}
	send(4000) // warm up: flow tables, logger ring, conn caches, pools

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const n = 20000
	send(n)
	runtime.ReadMemStats(&after)
	perFrame := float64(after.Mallocs-before.Mallocs) / n
	t.Logf("steady-state allocs/frame = %.3f", perFrame)
	if perFrame > 1.5 {
		t.Errorf("steady-state allocations regressed: %.2f allocs/frame, want ≤1.5", perFrame)
	}
}
