package emul

// Gate microbenchmarks: the shared device gate is crossed by every burst of
// every chain, so its uncontended grant cost bounds the whole dataplane.
// BenchmarkGateContention hammers ONE deviceGate from 1/4/16 workers with
// tiny bursts whose summed demand stays far below the budget — the gate is
// never token-limited, so the benchmark isolates the cost of the grant
// mechanism itself (the CAS fast path vs. the historic mutex+cond FIFO
// path). It is part of the CI bench smoke and the ratcheted BENCH.json
// trajectory.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
)

func BenchmarkGateContention(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			dg := newDeviceGate(device.KindSmartNIC, 10*time.Millisecond)
			// 1 ns of device time per burst: even tens of millions of
			// grants per second demand well under the 1.0 device-second/s
			// refill, so every take is an uncontended-in-tokens grant.
			const cost = 1e-9
			per := b.N / workers
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						dg.take(cost)
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(per*workers)/time.Since(start).Seconds(), "frames/s")
		})
	}
}
