package emul_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/pcie"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func twoChains(t *testing.T) (*chain.Chain, *chain.Chain) {
	t.Helper()
	a, err := chain.New("tenant-a",
		chain.Element{Name: "a-log", Type: device.TypeLogger, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chain.New("tenant-b",
		chain.Element{Name: "b-mon", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestMigrationFreezeScopedToChain proves the freeze is chain-scoped: while
// tenant A's element is frozen mid-migration (held open for tens of
// milliseconds by a slow emulated link), tenant B keeps delivering frames.
// Run under -race: the sender, the migrating coordinator and both chains'
// workers run concurrently.
func TestMigrationFreezeScopedToChain(t *testing.T) {
	a, b := twoChains(t)
	r, err := emul.New(emul.Config{
		Chains:  []*chain.Chain{a, b},
		Catalog: device.Table1(),
		// A slow link plus SleepPCIe makes the migration's state transfer
		// really sleep, holding A's freeze open while B must keep flowing.
		Link:      pcie.Link{PropDelay: 40 * time.Millisecond, BandwidthGbps: 64},
		SleepPCIe: true,
		Scale:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var deliveredB atomic.Uint64
	r.SetChainEgressTap(func(ci int, _ []byte) {
		if ci == 1 {
			deliveredB.Add(1)
		}
	})
	r.Start()
	defer r.Close()

	stop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		synth := traffic.NewSynth(8, 7)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SendChain(1, synth.Frame(uint64(i%8), 256))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Let B reach steady state, then migrate A's element. Migrate returns
	// only after the freeze→transfer→restore→resume sequence completes, so
	// the delivered-count delta across the call is traffic B moved while A
	// was mid-migration.
	time.Sleep(10 * time.Millisecond)
	before := deliveredB.Load()
	startMig := time.Now()
	rep, err := r.MigrateChain(0, "a-log", device.KindCPU)
	if err != nil {
		t.Fatalf("MigrateChain: %v", err)
	}
	frozen := time.Since(startMig)
	during := deliveredB.Load() - before
	close(stop)
	<-senderDone

	if frozen < 40*time.Millisecond {
		t.Fatalf("migration window only %v; the slow link should hold the freeze ≥ 40ms", frozen)
	}
	if rep.Transfer < 40*time.Millisecond {
		t.Errorf("measured transfer %v, want ≥ the link's 40ms propagation", rep.Transfer)
	}
	if during == 0 {
		t.Errorf("tenant B delivered nothing during tenant A's %v migration freeze", frozen)
	}
	pl := r.Placements()
	if loc := pl[0].At(0).Loc; loc != device.KindCPU {
		t.Errorf("A's element not migrated: %v", pl[0])
	}
	if loc := pl[1].At(0).Loc; loc != device.KindSmartNIC {
		t.Errorf("B's element moved by A's migration: %v", pl[1])
	}
}

// TestCrossChainUtilizationDetection drives two tenants, each well below
// its own capacity, and checks the summed accounting end to end: the
// sampler's NIC utilization is the exact sum of every resident element's
// utilization across both chains, each chain alone stays below the overload
// threshold, and the detector fires on the aggregate — the hot spot exists
// only because the tenants share the device.
func TestCrossChainUtilizationDetection(t *testing.T) {
	a, b := twoChains(t)
	r, err := emul.New(emul.Config{
		Chains:  []*chain.Chain{a, b},
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	ls := emul.NewLoadSampler(r)
	det := telemetry.NewDetector(telemetry.DetectorConfig{Consecutive: 2, Alpha: 1})

	// Pace one 512 B frame per 2.5 ms into each chain against absolute
	// deadlines: ≈1.64 Mbps wall → 1.64 Gbps catalog. Nominal utilization:
	// logger 0.82, monitor 0.51 — each chain individually below the 0.95
	// threshold; the sum ≈ 1.33 is far above it, with headroom for a loaded
	// CI machine (sleeps only overshoot, which lowers both terms together).
	synth := traffic.NewSynth(8, 9)
	const tick = 2500 * time.Microsecond
	const window = 50 * time.Millisecond
	start := time.Now()
	fired := false
	var samples []emul.LoadSample
	for i := 1; time.Since(start) < 200*time.Millisecond; i++ {
		r.SendChain(0, synth.Frame(uint64(i%8), 512))
		r.SendChain(1, synth.Frame(uint64((i+3)%8), 512))
		if len(samples) < int(time.Since(start)/window) {
			s := ls.Sample()
			samples = append(samples, s)
			if fire, _ := det.Observe(s.Telemetry()); fire {
				fired = true
				break
			}
		}
		if d := time.Duration(i)*tick - time.Since(start); d > 0 {
			time.Sleep(d)
		}
	}

	if len(samples) == 0 {
		t.Fatal("no samples taken")
	}
	for _, s := range samples {
		// Exact accounting: device demand (what the detector sees) is the
		// sum of offered demand over elements of every chain resident on it,
		// and the granted share is Σ served/θ.
		var demand, grant float64
		perChain := map[string]float64{}
		for _, el := range s.Elements {
			if el.Loc == device.KindSmartNIC {
				demand += el.Demand
				grant += el.Utilization
				perChain[el.Chain] += el.Demand
			}
		}
		if diff := s.NIC.Utilization - demand; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("NIC utilization %v != Σ element demand %v", s.NIC.Utilization, demand)
		}
		if diff := s.NIC.GrantUtilization - grant; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("NIC grant %v != Σ element served utilization %v", s.NIC.GrantUtilization, grant)
		}
		for name, u := range perChain {
			if u >= 0.95 {
				t.Fatalf("chain %s alone at %.2f demand; the test must overload only the sum", name, u)
			}
		}
		if len(perChain) == 2 && s.NIC.Utilization < 0.95 {
			t.Fatalf("summed demand %.2f below threshold; pacing too slow", s.NIC.Utilization)
		}
		// The shared gate physically caps the granted share at the device
		// budget (plus banked burst): the hot spot is real, not cosmetic.
		if len(perChain) == 2 && s.NIC.GrantUtilization > 1.35 {
			t.Fatalf("NIC granted %.2f device budget; the shared gate should cap near 1.0", s.NIC.GrantUtilization)
		}
	}
	if !fired {
		t.Fatalf("detector never fired on the summed demand; samples: %+v", samples)
	}
}

// TestMultiChainAccountingAndAddressing covers the per-chain bookkeeping of
// the multi-tenant runtime: per-chain offered/delivered roll up into the
// aggregate, egress frames are attributed to the right chain, stat keys are
// chain-qualified, and element addressing requires the chain when names
// repeat across tenants.
func TestMultiChainAccountingAndAddressing(t *testing.T) {
	a, err := chain.New("tenant-a",
		chain.Element{Name: "mon0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chain.New("tenant-b",
		chain.Element{Name: "mon0", Type: device.TypeMonitor, Loc: device.KindCPU},
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := emul.New(emul.Config{
		Chains:  []*chain.Chain{a, b},
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var egressA, egressB atomic.Uint64
	r.SetChainEgressTap(func(ci int, _ []byte) {
		if ci == 0 {
			egressA.Add(1)
		} else {
			egressB.Add(1)
		}
	})
	r.Start()
	defer r.Close()

	synth := traffic.NewSynth(8, 5)
	const na, nb = 120, 80
	for i := 0; i < na; i++ {
		r.SendChain(0, synth.Frame(uint64(i%8), 256))
	}
	for i := 0; i < nb; i++ {
		r.SendChain(1, synth.Frame(uint64(i%8), 256))
	}
	if r.SendChain(2, synth.Frame(0, 256)) {
		t.Error("out-of-range chain index accepted")
	}
	if r.SendChain(-1, synth.Frame(0, 256)) {
		t.Error("negative chain index accepted")
	}
	r.Drain()

	per := r.ChainResults()
	if len(per) != 2 {
		t.Fatalf("ChainResults = %d entries, want 2", len(per))
	}
	if per[0].Chain != "tenant-a" || per[1].Chain != "tenant-b" {
		t.Errorf("chain names = %q, %q", per[0].Chain, per[1].Chain)
	}
	if per[0].Offered != na || per[1].Offered != nb {
		t.Errorf("per-chain offered = %d/%d, want %d/%d", per[0].Offered, per[1].Offered, na, nb)
	}
	if egressA.Load() != per[0].Delivered || egressB.Load() != per[1].Delivered {
		t.Errorf("egress attribution: tap %d/%d vs results %d/%d",
			egressA.Load(), egressB.Load(), per[0].Delivered, per[1].Delivered)
	}
	agg := r.Results()
	if agg.Offered != na+nb {
		t.Errorf("aggregate offered = %d, want %d", agg.Offered, na+nb)
	}
	if agg.Delivered != per[0].Delivered+per[1].Delivered {
		t.Errorf("aggregate delivered %d != %d + %d", agg.Delivered, per[0].Delivered, per[1].Delivered)
	}
	if agg.Latency.Count != per[0].Latency.Count+per[1].Latency.Count {
		t.Errorf("aggregate latency count %d != %d + %d",
			agg.Latency.Count, per[0].Latency.Count, per[1].Latency.Count)
	}

	stats := r.NFStats()
	if _, ok := stats["tenant-a/mon0"]; !ok {
		t.Errorf("NFStats keys not chain-qualified: %v", stats)
	}

	// The duplicated element name must be addressed through its chain, and
	// the typed error must name *every* hosting chain (the old scan stopped
	// at the second match).
	var amb *emul.AmbiguousElementError
	if _, err := r.Migrate("mon0", device.KindCPU); err == nil {
		t.Error("ambiguous Migrate accepted")
	} else if !errors.As(err, &amb) {
		t.Errorf("ambiguous Migrate returned %T, want *emul.AmbiguousElementError", err)
	} else if amb.Element != "mon0" || len(amb.Chains) != 2 ||
		amb.Chains[0] != "tenant-a" || amb.Chains[1] != "tenant-b" {
		t.Errorf("AmbiguousElementError = %+v, want mon0 in [tenant-a tenant-b]", amb)
	}
	if _, err := r.MigrateChain(0, "mon0", device.KindCPU); err != nil {
		t.Errorf("MigrateChain: %v", err)
	}
	if pl := r.Placements(); pl[0].At(0).Loc != device.KindCPU || pl[1].At(0).Loc != device.KindCPU {
		t.Errorf("placements after chain-scoped migration: %v / %v", pl[0], pl[1])
	}
}

// TestMigrateAmbiguityListsAllChains pins the duplicate-name scan to the
// full host list: with three chains sharing an element name, the typed
// error must report all three (the pre-fix scan bailed at the second).
func TestMigrateAmbiguityListsAllChains(t *testing.T) {
	mk := func(cn string) *chain.Chain {
		c, err := chain.New(cn, chain.Element{Name: "dup0", Type: device.TypeMonitor, Loc: device.KindSmartNIC})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	r, err := emul.New(emul.Config{
		Chains:  []*chain.Chain{mk("t-one"), mk("t-two"), mk("t-three")},
		Catalog: device.Table1(),
		Scale:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	var amb *emul.AmbiguousElementError
	_, err = r.Migrate("dup0", device.KindCPU)
	if !errors.As(err, &amb) {
		t.Fatalf("Migrate returned %v (%T), want *emul.AmbiguousElementError", err, err)
	}
	want := []string{"t-one", "t-two", "t-three"}
	if len(amb.Chains) != len(want) {
		t.Fatalf("Chains = %v, want %v", amb.Chains, want)
	}
	for i, w := range want {
		if amb.Chains[i] != w {
			t.Errorf("Chains[%d] = %q, want %q", i, amb.Chains[i], w)
		}
	}
	if amb.Error() == "" || amb.Element != "dup0" {
		t.Errorf("error not actionable: %+v", amb)
	}
}

// TestConfigChainValidation covers the multi-chain configuration surface.
func TestConfigChainValidation(t *testing.T) {
	a, b := mustTwo(t)
	if _, err := emul.New(emul.Config{Chain: a, Chains: []*chain.Chain{b}, Catalog: device.Table1()}); err == nil {
		t.Error("Chain and Chains together accepted")
	}
	dup := a.Clone()
	if _, err := emul.New(emul.Config{Chains: []*chain.Chain{a, dup}, Catalog: device.Table1()}); err == nil {
		t.Error("duplicate chain names accepted")
	}
	if _, err := emul.New(emul.Config{Chains: []*chain.Chain{a, nil}, Catalog: device.Table1()}); err == nil {
		t.Error("nil chain entry accepted")
	}
	r, err := emul.New(emul.Config{Chains: []*chain.Chain{a, b}, Catalog: device.Table1(), Scale: 100})
	if err != nil {
		t.Fatalf("two-chain config rejected: %v", err)
	}
	if r.NumChains() != 2 {
		t.Errorf("NumChains = %d, want 2", r.NumChains())
	}
	if got := len(r.Placements()); got != 2 {
		t.Errorf("Placements = %d entries, want 2", got)
	}
}

// statKey-qualified maps aside, single-chain behaviour must be unchanged:
// bare element names and a bare Results view.
func TestSingleChainKeysUnqualified(t *testing.T) {
	a, _ := mustTwo(t)
	r, err := emul.New(emul.Config{Chains: []*chain.Chain{a}, Catalog: device.Table1(), Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	synth := traffic.NewSynth(4, 3)
	for i := 0; i < 50; i++ {
		r.Send(synth.Frame(uint64(i%4), 256))
	}
	r.Drain()
	if _, ok := r.NFStats()["x0"]; !ok {
		t.Errorf("single-chain NFStats keys qualified: %v", r.NFStats())
	}
	if res := r.Results(); res.Chain != "" || res.Delivered == 0 {
		t.Errorf("single-chain aggregate results: %+v", res)
	}
}

func mustTwo(t *testing.T) (*chain.Chain, *chain.Chain) {
	t.Helper()
	a, err := chain.New("a", chain.Element{Name: "x0", Type: device.TypeMonitor, Loc: device.KindSmartNIC})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chain.New("b", chain.Element{Name: "y0", Type: device.TypeFirewall, Loc: device.KindSmartNIC})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestFreezeSixteenTenantsWorkerPool is the worker-pool version of the
// chain-scoped-freeze guarantee at realistic tenancy: 16 single-element
// tenants share a two-worker pool, so the migrating tenant's ring lives on
// a worker that also owns seven other tenants' rings. While tenant 0 is
// frozen for ≥40 ms (slow emulated link + SleepPCIe), every one of the 15
// other tenants — including the ones on the frozen tenant's own worker —
// must keep delivering: the pause drains only the migrating element's
// rings, the worker itself never parks on the freeze. Run under -race: the
// sender, the migration coordinator and both pool workers race here.
func TestFreezeSixteenTenantsWorkerPool(t *testing.T) {
	const tenants = 16
	chains := make([]*chain.Chain, tenants)
	for i := range chains {
		c, err := chain.New(fmt.Sprintf("tenant-%02d", i),
			chain.Element{Name: fmt.Sprintf("mon%d", i), Type: device.TypeMonitor, Loc: device.KindSmartNIC},
		)
		if err != nil {
			t.Fatal(err)
		}
		chains[i] = c
	}
	r, err := emul.New(emul.Config{
		Chains:    chains,
		Catalog:   device.Table1(),
		Link:      pcie.Link{PropDelay: 40 * time.Millisecond, BandwidthGbps: 64},
		SleepPCIe: true,
		Scale:     100,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered [tenants]atomic.Uint64
	r.SetChainEgressTap(func(ci int, _ []byte) {
		delivered[ci].Add(1)
	})
	r.Start()
	defer r.Close()

	stop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		synth := traffic.NewSynth(8, 11)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// One sweep across the non-migrating tenants, then yield: each
			// tenant sees a frame roughly every half millisecond, so a 40 ms
			// freeze window holds dozens of delivery opportunities per tenant.
			for ci := 1; ci < tenants; ci++ {
				r.SendChain(ci, synth.Frame(uint64(i%8), 256))
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	time.Sleep(10 * time.Millisecond)
	var before [tenants]uint64
	for ci := 1; ci < tenants; ci++ {
		before[ci] = delivered[ci].Load()
	}
	startMig := time.Now()
	rep, err := r.MigrateChain(0, "mon0", device.KindCPU)
	if err != nil {
		t.Fatalf("MigrateChain: %v", err)
	}
	frozen := time.Since(startMig)
	var during [tenants]uint64
	for ci := 1; ci < tenants; ci++ {
		during[ci] = delivered[ci].Load() - before[ci]
	}
	close(stop)
	<-senderDone

	if frozen < 40*time.Millisecond {
		t.Fatalf("migration window only %v; the slow link should hold the freeze ≥ 40ms", frozen)
	}
	if rep.Transfer < 40*time.Millisecond {
		t.Errorf("measured transfer %v, want ≥ the link's 40ms propagation", rep.Transfer)
	}
	for ci := 1; ci < tenants; ci++ {
		if during[ci] == 0 {
			t.Errorf("tenant %d delivered nothing during tenant 0's %v freeze", ci, frozen)
		}
	}
	pl := r.Placements()
	if loc := pl[0].At(0).Loc; loc != device.KindCPU {
		t.Errorf("migrated element not on CPU: %v", pl[0])
	}
	for ci := 1; ci < tenants; ci++ {
		if loc := pl[ci].At(0).Loc; loc != device.KindSmartNIC {
			t.Errorf("tenant %d moved by tenant 0's migration: %v", ci, pl[ci])
		}
	}
}
