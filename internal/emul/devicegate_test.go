package emul

// White-box tests of the shared per-device capacity gates: grant sharing
// between co-resident elements, budget conservation across a chain-scoped
// migration freeze (attach/detach must neither leak nor mint device time),
// and the zero-rate element path. Run under -race: senders, pool workers
// and the migration coordinator all run concurrently.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/traffic"
)

func twoTenantRuntime(t *testing.T, typA, typB string, link pcie.Link, sleepPCIe bool) *Runtime {
	t.Helper()
	a, err := chain.New("tenant-a", chain.Element{Name: "ga0", Type: typA, Loc: device.KindSmartNIC})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chain.New("tenant-b", chain.Element{Name: "gb0", Type: typB, Loc: device.KindSmartNIC})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Chains:     []*chain.Chain{a, b},
		Catalog:    device.Table1(),
		Link:       link,
		Scale:      1000,
		QueueDepth: 32,
		BatchSize:  8,
		SleepPCIe:  sleepPCIe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDeviceGateSharesCapacity saturates two co-resident elements of the
// same type and requires each to receive roughly half the device's grant —
// the FIFO ticket queue must split the shared budget instead of letting one
// element starve the other. It also bounds the total grant at the device's
// physical budget (1 device-second per second plus the banked burst).
func TestDeviceGateSharesCapacity(t *testing.T) {
	r := twoTenantRuntime(t, device.TypeMonitor, device.TypeMonitor, pcie.DefaultLink(), false)
	r.Start()
	start := time.Now()

	// Offer ~1 MB/s per chain against the Monitor's 400 kB/s scaled rate:
	// both tenants stay saturated for the whole measurement window.
	synth := traffic.NewSynth(8, 3)
	for time.Since(start) < 250*time.Millisecond {
		for k := 0; k < 4; k++ {
			r.SendChain(0, synth.Frame(uint64(k), 256))
			r.SendChain(1, synth.Frame(uint64(k+4), 256))
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	granted := r.gates[device.KindSmartNIC].grantedUnits()
	servedA := r.chains[0].elems[0].meter.Bytes()
	servedB := r.chains[1].elems[0].meter.Bytes()
	r.Close()

	if servedA == 0 || servedB == 0 {
		t.Fatalf("a tenant starved: served %d / %d bytes", servedA, servedB)
	}
	shareA := float64(servedA) / float64(servedA+servedB)
	if shareA < 0.3 || shareA > 0.7 {
		t.Errorf("grant split %.2f / %.2f; co-resident equals should each get ~half",
			shareA, 1-shareA)
	}
	// Conservation: the device cannot grant more than one device-second per
	// second plus its banked burst (10 ms), with slack for the burst in
	// flight at the cut.
	if limit := elapsed + 0.010 + 0.015; granted > limit {
		t.Errorf("NIC granted %.3f device-seconds in %.3f s (limit %.3f); budget minted", granted, elapsed, limit)
	}
	// And under saturation it should have granted most of the budget.
	if granted < 0.5*elapsed {
		t.Errorf("NIC granted only %.3f device-seconds in %.3f s under saturation", granted, elapsed)
	}
}

// TestDeviceGateAttachDetachDuringFreeze migrates tenant A's element off the
// SmartNIC while tenant B saturates it, holding the freeze open ≥40 ms via a
// slow emulated link. Detach/re-attach across the freeze must move only the
// resident bookkeeping: the NIC's total grant stays within its physical
// budget (no leak, no minting), tenant B keeps being granted throughout, and
// the registry's resident counts end up on the right devices.
func TestDeviceGateAttachDetachDuringFreeze(t *testing.T) {
	link := pcie.Link{PropDelay: 40 * time.Millisecond, BandwidthGbps: 64}
	r := twoTenantRuntime(t, device.TypeLogger, device.TypeMonitor, link, true)
	r.Start()
	defer r.Close()

	if got := r.gates[device.KindSmartNIC].resident(); got != 2 {
		t.Fatalf("NIC residents before migration = %d, want 2", got)
	}

	start := time.Now()
	stop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		synth := traffic.NewSynth(8, 7)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SendChain(0, synth.Frame(uint64(i%4), 256))
			r.SendChain(1, synth.Frame(uint64(i%8), 256))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	beforeB := r.chains[1].elems[0].meter.Bytes()
	if _, err := r.MigrateChain(0, "ga0", device.KindCPU); err != nil {
		t.Fatalf("MigrateChain: %v", err)
	}
	duringB := r.chains[1].elems[0].meter.Bytes() - beforeB
	time.Sleep(30 * time.Millisecond)
	close(stop)
	<-senderDone
	elapsed := time.Since(start).Seconds()

	if duringB == 0 {
		t.Error("tenant B granted nothing across tenant A's migration freeze")
	}
	if got := r.gates[device.KindSmartNIC].resident(); got != 1 {
		t.Errorf("NIC residents after migration = %d, want 1", got)
	}
	if got := r.gates[device.KindCPU].resident(); got != 1 {
		t.Errorf("CPU residents after migration = %d, want 1", got)
	}
	granted := r.gates[device.KindSmartNIC].grantedUnits()
	if limit := elapsed + 0.010 + 0.015; granted > limit {
		t.Errorf("NIC granted %.3f device-seconds in %.3f s (limit %.3f); the freeze leaked budget",
			granted, elapsed, limit)
	}
}

// TestDeviceGateRegistryCoversAllKinds guards the registry construction:
// one gate per device.Kinds entry (the map used to hard-code three kinds,
// so a kind added to the device package was silently absent) and a typed
// error — not a nil deref — for a kind outside the list.
func TestDeviceGateRegistryCoversAllKinds(t *testing.T) {
	r := twoTenantRuntime(t, device.TypeMonitor, device.TypeMonitor, pcie.DefaultLink(), false)
	for _, k := range device.Kinds() {
		g, err := r.gateFor(k)
		if err != nil || g == nil {
			t.Errorf("gateFor(%v) = %v, %v; every declared kind must have a gate", k, g, err)
		}
		if g != nil && g.kind != k {
			t.Errorf("gateFor(%v) returned the %v gate", k, g.kind)
		}
	}
	var unknown *UnknownDeviceKindError
	if _, err := r.gateFor(device.Kind(99)); !errors.As(err, &unknown) {
		t.Fatalf("gateFor(99) err = %v, want *UnknownDeviceKindError", err)
	} else if unknown.Kind != device.Kind(99) {
		t.Errorf("error kind = %v, want 99", unknown.Kind)
	}
}

// TestCloseReleasesParkedWorker is the shutdown regression: Close must not
// hang while a worker is parked in chargeFor on a rate-less element with
// frames in flight. Close wakes the park, the worker abandons (and
// accounts) its burst, and Drain completes.
func TestCloseReleasesParkedWorker(t *testing.T) {
	r := twoTenantRuntime(t, device.TypeMonitor, device.TypeMonitor, pcie.DefaultLink(), false)
	r.Start()

	// Simulate the pre-placement state: the worker that picks these frames
	// up must park on the rate condition.
	el := r.chains[0].elems[0]
	zeroed := *el.placed.Load()
	zeroed.bps = 0
	el.placed.Store(&zeroed)

	synth := traffic.NewSynth(4, 5)
	accepted := 0
	for i := 0; i < 4; i++ {
		if r.SendChain(0, synth.Frame(uint64(i), 256)) {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no frame accepted")
	}
	time.Sleep(20 * time.Millisecond) // let the worker reach the park

	done := make(chan struct{})
	go func() {
		r.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a worker parked in a zero-rate element")
	}
	// The abandoned burst is accounted as this element's drops.
	if got := el.meter.Drops(); got != uint64(accepted) {
		t.Errorf("abandoned frames dropped = %d, want %d", got, accepted)
	}
}

// TestZeroRateElementParks covers the element-side zero-rate path: a worker
// observing an element before its first placement must park on the rate
// condition (not spin in 5 ms slices) and wake when place supplies a rate.
func TestZeroRateElementParks(t *testing.T) {
	r := twoTenantRuntime(t, device.TypeMonitor, device.TypeMonitor, pcie.DefaultLink(), false)
	el := r.chains[0].elems[0]

	// Simulate the pre-placement state the constructor normally never
	// exposes: no rate yet.
	zeroed := *el.placed.Load()
	zeroed.bps = 0
	el.placed.Store(&zeroed)

	type res struct {
		cost float64
		dev  *deviceGate
	}
	done := make(chan res, 1)
	go func() {
		c, d, _, ok := el.chargeFor(1000)
		if !ok {
			t.Error("chargeFor aborted without a close")
		}
		done <- res{c, d}
	}()
	select {
	case <-done:
		t.Fatal("chargeFor returned on a zero-rate element")
	case <-time.After(50 * time.Millisecond):
	}
	el.place(r.gates[device.KindSmartNIC], 500_000)
	select {
	case got := <-done:
		if got.dev != r.gates[device.KindSmartNIC] {
			t.Error("chargeFor returned the wrong device gate")
		}
		if want := 1000.0 / 500_000; got.cost != want {
			t.Errorf("cost = %v device-seconds, want %v", got.cost, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("chargeFor still blocked after place supplied a rate")
	}
}
