package device_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func TestTable1Verbatim(t *testing.T) {
	// The paper's Table 1: capacities of vNFs on the SmartNIC and CPU.
	cat := device.Table1()
	cases := []struct {
		nf       string
		nic, cpu device.Gbps
	}{
		{device.TypeFirewall, 10, 4},
		{device.TypeLogger, 2, 4},
		{device.TypeMonitor, 3.2, 10},
		{device.TypeLoadBalancer, device.Unbounded, 4},
	}
	for _, tc := range cases {
		c, ok := cat[tc.nf]
		if !ok {
			t.Fatalf("missing %q", tc.nf)
		}
		if c.SmartNIC != tc.nic {
			t.Errorf("%s θS = %v, want %v", tc.nf, c.SmartNIC, tc.nic)
		}
		if c.CPU != tc.cpu {
			t.Errorf("%s θC = %v, want %v", tc.nf, c.CPU, tc.cpu)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	cat := device.Table1()
	if _, err := cat.Lookup("nonesuch", device.KindCPU); err == nil {
		t.Error("want error for unknown type")
	}
	cat["zeronf"] = device.Capacity{}
	if _, err := cat.Lookup("zeronf", device.KindSmartNIC); err == nil {
		t.Error("want error for zero capacity")
	}
}

func TestUtilizationLinearity(t *testing.T) {
	cat := device.Table1()
	nic := device.Device{Kind: device.KindSmartNIC}
	res := []string{device.TypeLogger, device.TypeMonitor, device.TypeFirewall}
	u1, err := nic.Utilization(cat, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := nic.Utilization(cat, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u2-2*u1) > 1e-12 {
		t.Errorf("utilization not linear: u(1)=%v u(2)=%v", u1, u2)
	}
	// 1/2 + 1/3.2 + 1/10 = 0.9125 at 1 Gbps.
	if math.Abs(u1-0.9125) > 1e-12 {
		t.Errorf("u(1) = %v, want 0.9125", u1)
	}
}

func TestDMAUtilizationAndSaturation(t *testing.T) {
	nic := device.Device{Kind: device.KindSmartNIC, DMAEngineGbps: 40}
	// 4 crossings at 2 Gbps over a 40 Gbps DMA budget: 4*2/40 = 0.2.
	if u := nic.DMAUtilization(2, 4); math.Abs(u-0.2) > 1e-12 {
		t.Errorf("DMA util = %v, want 0.2", u)
	}
	if sat := nic.DMASaturation(4); sat != 10 {
		t.Errorf("DMA saturation = %v, want 10", sat)
	}
	// Unmodelled device: zero utilization, infinite saturation.
	cpu := device.Device{Kind: device.KindCPU}
	if u := cpu.DMAUtilization(2, 4); u != 0 {
		t.Errorf("CPU DMA util = %v, want 0", u)
	}
	if sat := cpu.DMASaturation(4); !math.IsInf(float64(sat), 1) {
		t.Errorf("CPU DMA saturation = %v, want +Inf", sat)
	}
	if sat := nic.DMASaturation(0); !math.IsInf(float64(sat), 1) {
		t.Errorf("0-crossing DMA saturation = %v, want +Inf", sat)
	}
}

func TestSaturationInverseOfUtilization(t *testing.T) {
	cat := device.Table1()
	nic := device.Device{Kind: device.KindSmartNIC}
	res := []string{device.TypeLogger, device.TypeMonitor, device.TypeFirewall}
	sat, err := nic.Saturation(cat, res)
	if err != nil {
		t.Fatal(err)
	}
	u, err := nic.Utilization(cat, res, sat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-1) > 1e-9 {
		t.Errorf("util at saturation = %v, want 1", u)
	}
}

func TestSaturationEmptyDeviceIsInfinite(t *testing.T) {
	nic := device.Device{Kind: device.KindSmartNIC}
	sat, err := nic.Saturation(device.Table1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(sat), 1) {
		t.Errorf("saturation = %v, want +Inf", sat)
	}
}

func TestOverloadedEpsilon(t *testing.T) {
	if device.Overloaded(1.0) {
		t.Error("exactly 1.0 must not flap to overloaded")
	}
	if !device.Overloaded(1.01) {
		t.Error("1.01 must be overloaded")
	}
}

func TestKindString(t *testing.T) {
	if device.KindSmartNIC.String() != "SmartNIC" ||
		device.KindCPU.String() != "CPU" ||
		device.KindFPGA.String() != "FPGA" {
		t.Error("kind names wrong")
	}
}

func TestCatalogClone(t *testing.T) {
	cat := device.Table1()
	cp := cat.Clone()
	cp[device.TypeLogger] = device.Capacity{SmartNIC: 99}
	if cat[device.TypeLogger].SmartNIC == 99 {
		t.Error("Clone shares storage with original")
	}
}

// Property: utilization is additive over residents and monotone in
// throughput; saturation inverts it.
func TestPropertyUtilizationAdditive(t *testing.T) {
	cat := device.ExtendedCatalog()
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeNAT, device.TypeDPI, device.TypeRateLimiter, device.TypeIDS,
	}
	nic := device.Device{Kind: device.KindSmartNIC}
	f := func(aIdx, bIdx uint8, tp uint16) bool {
		a := types[int(aIdx)%len(types)]
		b := types[int(bIdx)%len(types)]
		cur := device.Gbps(float64(tp%5000)/1000 + 0.001)
		ua, err1 := nic.Utilization(cat, []string{a}, cur)
		ub, err2 := nic.Utilization(cat, []string{b}, cur)
		uab, err3 := nic.Utilization(cat, []string{a, b}, cur)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(uab-(ua+ub)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
