// Package device models the two packet-processing devices of the paper —
// the SmartNIC (NPU-based, e.g. Netronome Agilio CX) and the host CPU — via
// the linear resource-utilization model PAM adopts from CoCo [5]:
//
//	a vNF i with device capacity θd_i running at chain throughput θcur
//	consumes the fraction θcur/θd_i of device d's resources, and device d
//	is overloaded when the sum over resident vNFs exceeds 1.
//
// The package also carries the paper's Table 1 capacity catalog, an
// FPGA-style profile for the future-work experiment, and helpers to compute
// aggregate utilization and fluid-model saturation throughput.
package device

import (
	"fmt"
	"math"
)

// Kind enumerates device classes NFs can be placed on.
type Kind uint8

// Device kinds. KindFPGA models the paper's future-work target (§4).
const (
	KindSmartNIC Kind = iota
	KindCPU
	KindFPGA
)

// Kinds lists every device kind, in declaration order. Registries that key
// per-device resources by kind (the emulator's shared capacity gates) build
// from this list, so adding a kind here automatically materializes its
// entry everywhere instead of leaving a nil lookup to trip over.
func Kinds() []Kind {
	return []Kind{KindSmartNIC, KindCPU, KindFPGA}
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSmartNIC:
		return "SmartNIC"
	case KindCPU:
		return "CPU"
	case KindFPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Gbps expresses throughput in gigabits per second. The //pam:unit
// directive registers it as a unit domain with cmd/pamlint's unitcheck
// analyzer: converting it to or from plain numerics anywhere outside a
// //pam:unitconv helper (MeasuredGbps, Float, the utilization math below)
// is rejected, so a raw measurement or a bytes/s quantity cannot be
// laundered into catalog units by a bare cast.
//
//pam:unit gbps
type Gbps float64

// MeasuredGbps types a raw throughput measurement — a meter reading, a
// smoothed control-loop estimate — as catalog Gbps. It is the one blessed
// entry point from plain float64 into the Gbps domain; every other
// non-constant cast is a unitcheck violation.
//
//pam:unitconv
func MeasuredGbps(v float64) Gbps { return Gbps(v) }

// Float strips the Gbps unit for display, serialization and config structs
// that carry plain numerics — the blessed exit from the domain.
//
//pam:unitconv
func (g Gbps) Float() float64 { return float64(g) }

// Capacity is the per-device throughput capacity of one vNF type (Table 1's
// θS and θC, plus an FPGA column for the future-work profile). A zero value
// means "cannot run on that device"; Unbounded marks entries the paper lists
// as ">10 Gbps".
type Capacity struct {
	SmartNIC Gbps
	CPU      Gbps
	FPGA     Gbps
}

// Unbounded is the stand-in capacity for Table 1 entries given as ">10 Gbps";
// large enough never to constrain the experiments.
const Unbounded Gbps = 1000

// On returns the capacity on the given device kind.
func (c Capacity) On(k Kind) Gbps {
	switch k {
	case KindSmartNIC:
		return c.SmartNIC
	case KindCPU:
		return c.CPU
	case KindFPGA:
		return c.FPGA
	default:
		return 0
	}
}

// Catalog maps vNF type names to capacities. It is the algorithm's source of
// θd_i values.
type Catalog map[string]Capacity

// Canonical vNF type names used across the repository.
const (
	TypeFirewall     = "Firewall"
	TypeLogger       = "Logger"
	TypeMonitor      = "Monitor"
	TypeLoadBalancer = "LoadBalancer"
	TypeNAT          = "NAT"
	TypeDPI          = "DPI"
	TypeRateLimiter  = "RateLimiter"
	TypeIDS          = "IDS"
)

// Table1 returns the paper's Table 1 verbatim: measured capacities of the
// four vNFs on the SmartNIC (θS) and CPU (θC), in Gbps. The Load Balancer's
// ">10 Gbps" NIC entry is represented by Unbounded. FPGA columns extend the
// catalog for the §4 future-work experiment (profile: pipeline-parallel
// match NFs run faster, stateful NFs at NIC parity).
func Table1() Catalog {
	return Catalog{
		TypeFirewall:     {SmartNIC: 10, CPU: 4, FPGA: 20},
		TypeLogger:       {SmartNIC: 2, CPU: 4, FPGA: 2.5},
		TypeMonitor:      {SmartNIC: 3.2, CPU: 10, FPGA: 6},
		TypeLoadBalancer: {SmartNIC: Unbounded, CPU: 4, FPGA: Unbounded},
	}
}

// ExtendedCatalog returns Table1 plus capacities for the additional NF types
// implemented in this repository, following the same measurement style
// (match-action NFs fast on the NIC, stateful/payload NFs faster on the CPU).
func ExtendedCatalog() Catalog {
	c := Table1()
	c[TypeNAT] = Capacity{SmartNIC: 6, CPU: 5, FPGA: 12}
	c[TypeDPI] = Capacity{SmartNIC: 1.5, CPU: 6, FPGA: 3}
	c[TypeRateLimiter] = Capacity{SmartNIC: 8, CPU: 5, FPGA: 16}
	c[TypeIDS] = Capacity{SmartNIC: 1.8, CPU: 5, FPGA: 3.5}
	return c
}

// Lookup returns the capacity of the vNF type on device kind k, or an error
// when the type is unknown or cannot run there.
func (c Catalog) Lookup(nfType string, k Kind) (Gbps, error) {
	cap, ok := c[nfType]
	if !ok {
		return 0, fmt.Errorf("device: unknown vNF type %q", nfType)
	}
	g := cap.On(k)
	if g <= 0 {
		return 0, fmt.Errorf("device: vNF type %q cannot run on %v", nfType, k)
	}
	return g, nil
}

// Clone returns a deep copy of the catalog.
func (c Catalog) Clone() Catalog {
	out := make(Catalog, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Device is a placement target with a normalized resource budget of 1.0 per
// the linear model. The SmartNIC's DMA engines are a *separate* hardware
// resource (descriptor rings and DMA blocks, not NPU microengines):
// DMAEngineGbps is their aggregate capacity, consumed once per PCIe crossing
// at the chain throughput. Zero means "not modelled" (CPU, FPGA).
type Device struct {
	Name          string
	Kind          Kind
	DMAEngineGbps Gbps
}

// Utilization computes Σ θcur/θd_i for the resident vNF types (with
// multiplicity). It returns an error for unknown types.
//
//pam:unitconv
func (d Device) Utilization(cat Catalog, residents []string, cur Gbps) (float64, error) {
	var u float64
	for _, t := range residents {
		g, err := cat.Lookup(t, d.Kind)
		if err != nil {
			return 0, err
		}
		u += float64(cur) / float64(g)
	}
	return u, nil
}

// DMAUtilization computes the DMA-engine utilization at chain throughput cur
// with the given number of PCIe crossings. It returns 0 when the device does
// not model DMA engines.
//
//pam:unitconv
func (d Device) DMAUtilization(cur Gbps, crossings int) float64 {
	if d.DMAEngineGbps <= 0 || crossings <= 0 {
		return 0
	}
	return float64(crossings) * float64(cur) / float64(d.DMAEngineGbps)
}

// Saturation returns the fluid-model maximum chain throughput supportable by
// the device's vNF budget: the θ at which utilization reaches 1.0. Residents
// with Unbounded capacity contribute negligibly. It returns +Inf for an
// empty device.
//
//pam:unitconv
func (d Device) Saturation(cat Catalog, residents []string) (Gbps, error) {
	var perGbit float64 // utilization per Gbps of chain throughput
	for _, t := range residents {
		g, err := cat.Lookup(t, d.Kind)
		if err != nil {
			return 0, err
		}
		perGbit += 1 / float64(g)
	}
	if perGbit == 0 {
		return Gbps(math.Inf(1)), nil
	}
	return Gbps(1 / perGbit), nil
}

// DMASaturation returns the chain throughput at which the DMA engines
// saturate given the crossing count, or +Inf when unmodelled.
//
//pam:unitconv
func (d Device) DMASaturation(crossings int) Gbps {
	if d.DMAEngineGbps <= 0 || crossings <= 0 {
		return Gbps(math.Inf(1))
	}
	return d.DMAEngineGbps / Gbps(crossings)
}

// Overloaded reports whether utilization exceeds 1 (with a small epsilon to
// avoid flapping on exact saturation).
func Overloaded(util float64) bool { return util > 1.0+1e-9 }
