// Package pcap reads and writes the classic libpcap capture format
// (tcpdump-compatible, magic 0xa1b2c3d4, LINKTYPE_ETHERNET). The traffic
// generator uses it to export reproducible workloads, and the Logger NF's
// journal can be exported as a capture for offline inspection with standard
// tools — the reproduction's stand-in for the paper's testbed packet
// captures.
//
// Only the original (non-ng) format is implemented: microsecond timestamps,
// one linktype per file, no options. That is exactly what tcpdump -r needs.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Format constants.
const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4

	// LinkTypeEthernet is LINKTYPE_ETHERNET (1).
	LinkTypeEthernet = 1

	fileHeaderLen   = 24
	recordHeaderLen = 16

	// DefaultSnapLen is the conventional no-truncation snap length.
	DefaultSnapLen = 262144
)

// Errors.
var (
	ErrBadMagic  = errors.New("pcap: bad magic")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Packet is one captured record.
type Packet struct {
	// Time is the capture timestamp. The writer stores it as seconds +
	// microseconds since the epoch; purely relative (virtual) times work
	// fine and round-trip exactly at µs resolution.
	Time time.Duration
	// Data is the captured frame (possibly truncated to SnapLen).
	Data []byte
	// OrigLen is the original wire length (≥ len(Data)).
	OrigLen int
}

// Writer emits a pcap stream. Create with NewWriter, which writes the file
// header immediately.
type Writer struct {
	w       io.Writer
	snapLen int
	count   int
}

// NewWriter writes the global header for an Ethernet capture with the given
// snap length (0 selects DefaultSnapLen).
func NewWriter(w io.Writer, snapLen int) (*Writer, error) {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WritePacket appends one record, truncating to the snap length.
func (w *Writer) WritePacket(p Packet) error {
	data := p.Data
	origLen := p.OrigLen
	if origLen < len(data) {
		origLen = len(data)
	}
	if len(data) > w.snapLen {
		data = data[:w.snapLen]
	}
	var hdr [recordHeaderLen]byte
	sec := p.Time / time.Second
	usec := (p.Time % time.Second) / time.Microsecond
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(usec))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Reader consumes a pcap stream. Both little- and big-endian files are
// accepted.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	snapLen int
}

// NewReader parses the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicMicros:
		order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(hdr[0:4]) == magicMicros {
			order = binary.BigEndian
		} else {
			return nil, ErrBadMagic
		}
	}
	if lt := order.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported linktype %d", lt)
	}
	return &Reader{r: r, order: order, snapLen: int(order.Uint32(hdr[16:20]))}, nil
}

// SnapLen returns the file's snap length.
func (r *Reader) SnapLen() int { return r.snapLen }

// Next returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: %w", ErrTruncated)
	}
	sec := r.order.Uint32(hdr[0:4])
	usec := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > uint32(r.snapLen)+65536 {
		return Packet{}, fmt.Errorf("pcap: implausible record length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: %w", ErrTruncated)
	}
	return Packet{
		Time:    time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
		Data:    data,
		OrigLen: int(origLen),
	}, nil
}

// ReadAll drains the stream.
func ReadAll(r io.Reader) ([]Packet, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Packet
	for {
		p, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
