package pcap_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pcap"
	"repro/internal/traffic"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	synth := traffic.NewSynth(4, 1)
	var want []pcap.Packet
	for i := 0; i < 10; i++ {
		p := pcap.Packet{
			Time: time.Duration(i) * 123 * time.Microsecond,
			Data: synth.Frame(uint64(i%4), 200+i*37),
		}
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if w.Count() != 10 {
		t.Errorf("count = %d", w.Count())
	}

	got, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Time != want[i].Time {
			t.Errorf("pkt %d time = %v, want %v", i, got[i].Time, want[i].Time)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("pkt %d data mismatch", i)
		}
		if got[i].OrigLen != len(want[i].Data) {
			t.Errorf("pkt %d origlen = %d, want %d", i, got[i].OrigLen, len(want[i].Data))
		}
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte(i)
	}
	if err := w.WritePacket(pcap.Packet{Data: data}); err != nil {
		t.Fatal(err)
	}
	got, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Data) != 64 {
		t.Errorf("caplen = %d, want 64", len(got[0].Data))
	}
	if got[0].OrigLen != 500 {
		t.Errorf("origlen = %d, want 500", got[0].OrigLen)
	}
}

func TestBadMagic(t *testing.T) {
	junk := make([]byte, 24)
	if _, err := pcap.NewReader(bytes.NewReader(junk)); !errors.Is(err, pcap.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBigEndianAccepted(t *testing.T) {
	// Hand-build a big-endian header + one empty record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], pcap.LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1)  // 1 s
	binary.BigEndian.PutUint32(rec[4:8], 5)  // 5 µs
	binary.BigEndian.PutUint32(rec[8:12], 3) // caplen
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3})

	got, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Time != time.Second+5*time.Microsecond {
		t.Fatalf("got = %+v", got)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf, 0)
	w.WritePacket(pcap.Packet{Data: []byte{1, 2, 3, 4}})
	full := buf.Bytes()
	r, err := pcap.NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, pcap.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestEmptyFileCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	if _, err := pcap.NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// Property: arbitrary packet sequences round-trip bit-exactly (timestamps
// at µs resolution).
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf, 0)
		if err != nil {
			return false
		}
		n := 1 + r.Intn(20)
		want := make([]pcap.Packet, n)
		for i := range want {
			data := make([]byte, 1+r.Intn(1500))
			r.Read(data)
			want[i] = pcap.Packet{
				Time: time.Duration(r.Int63n(1e15)) / time.Microsecond * time.Microsecond,
				Data: data,
			}
			if err := w.WritePacket(want[i]); err != nil {
				return false
			}
		}
		got, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(got) != n {
			return false
		}
		for i := range want {
			if got[i].Time != want[i].Time || !bytes.Equal(got[i].Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
