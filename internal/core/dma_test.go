package core_test

// Selection under a crossing-bound overload: the shared PCIe DMA engine is
// saturated while both devices stay feasible. PAM and MultiPAM must trigger
// on the DMA utilization (measured or model), pick only candidates whose
// move does not add crossings, and terminate once the model's
// post-migration crossing load cools.

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
)

// splitChain weaves CPU→NIC→CPU, costing 4 crossings per frame (ingress,
// lb→slog, slog→lb2, egress). Migrating the Logger — a border on both sides
// — merges the CPU segments and halves the crossings.
func splitChain(t *testing.T) *chain.Chain {
	t.Helper()
	c, err := chain.New("split",
		chain.Element{Name: "slb0", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: "slog0", Type: device.TypeLogger, Loc: device.KindSmartNIC},
		chain.Element{Name: "slb1", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPAMFiresOnModelDMAOverload(t *testing.T) {
	c := splitChain(t)
	if got := c.Crossings(); got != 4 {
		t.Fatalf("split chain crossings = %d, want 4", got)
	}
	v := scenario.View(c, scenario.DefaultParams(), 1.0)
	v.NIC.DMAEngineGbps = 4 // 4 crossings × 1.0 Gbps / 4 = 1.0 ≥ threshold
	// NIC utilization is only the Logger's 1/2 = 0.5: the devices are fine,
	// the interconnect is not.
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Element != "slog0" {
		t.Fatalf("steps = %v, want single slog0 migration", plan.Steps)
	}
	if plan.After.Crossings >= plan.Before.Crossings {
		t.Errorf("crossings %d -> %d: a DMA-triggered move must reduce them",
			plan.Before.Crossings, plan.After.Crossings)
	}
	if plan.After.DMAUtil >= 1 {
		t.Errorf("post-migration model DMA util = %v, want < 1", plan.After.DMAUtil)
	}
}

func TestPAMFiresOnMeasuredDMAOverload(t *testing.T) {
	// The default 40 Gbps engine model sees nothing (4×1/40 = 0.1); only
	// the backend's measurement reports the saturation — as with the device
	// gates, the live dataplane's collapse is invisible to the model.
	v := scenario.View(splitChain(t), scenario.DefaultParams(), 1.0)
	v.MeasuredDMAUtil = 1.2
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Element != "slog0" {
		t.Fatalf("steps = %v, want single slog0 migration", plan.Steps)
	}
}

func TestPAMDMARefusesCrossingAddingCandidates(t *testing.T) {
	// A chain entirely on the NIC crosses nowhere; its head/tail borders
	// would each *add* crossings if pushed aside. A DMA-triggered episode
	// must refuse them all and land in the terminal case rather than deepen
	// the interconnect overload.
	c, err := chain.New("nic-only",
		chain.Element{Name: "mon0", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
		chain.Element{Name: "fw0", Type: device.TypeFirewall, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	v := scenario.View(c, scenario.DefaultParams(), 1.0)
	v.MeasuredDMAUtil = 1.2
	_, err = core.PAM{}.Select(v)
	if !errors.Is(err, core.ErrBothOverloaded) {
		t.Fatalf("err = %v, want ErrBothOverloaded (no crossing-neutral candidate)", err)
	}
}

func TestMultiPAMFiresOnAggregateDMAOverload(t *testing.T) {
	// The crossing-storm geometry: one split tenant plus two CPU-resident
	// Monitor tenants whose ingress+egress crossings load the same engine.
	// No tenant overloads anything alone; the NIC's aggregate utilization is
	// far below threshold; only the summed crossing demand saturates.
	split := splitChain(t)
	bgA, err := chain.New("bg-a", chain.Element{Name: "cmon0", Type: device.TypeMonitor, Loc: device.KindCPU})
	if err != nil {
		t.Fatal(err)
	}
	bgB, err := chain.New("bg-b", chain.Element{Name: "cmon1", Type: device.TypeMonitor, Loc: device.KindCPU})
	if err != nil {
		t.Fatal(err)
	}
	p := scenario.DefaultParams()
	nic, cpu := scenario.Devices(p)
	nic.DMAEngineGbps = 4.4 // (4×1.0 + 2×0.4 + 2×0.4)/4.4 ≈ 1.27
	v := core.MultiView{
		Loads: []core.Load{
			{Chain: bgA, Throughput: 0.4},
			{Chain: bgB, Throughput: 0.4},
			{Chain: split, Throughput: 1.0},
		},
		Catalog: device.Table1(),
		NIC:     nic,
		CPU:     cpu,
	}
	plan, err := core.MultiPAM{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("steps = %v, want exactly one", plan.Steps)
	}
	st := plan.Steps[0]
	if st.ChainIndex != 2 || st.Step.Element != "slog0" || st.Step.To != device.KindCPU {
		t.Fatalf("step = %+v, want slog0 of chain 2 -> CPU", st)
	}
	if got := plan.Results[2].Crossings(); got != 2 {
		t.Errorf("split chain crossings after plan = %d, want 2", got)
	}
	// After the merge the engine cools: (2×1.0 + 0.8 + 0.8)/4.4 ≈ 0.82.
	if _, err := (core.MultiPAM{}).Select(core.MultiView{
		Loads: []core.Load{
			{Chain: plan.Results[0], Throughput: 0.4},
			{Chain: plan.Results[1], Throughput: 0.4},
			{Chain: plan.Results[2], Throughput: 1.0},
		},
		Catalog: device.Table1(),
		NIC:     nic,
		CPU:     cpu,
	}); !errors.Is(err, core.ErrNotOverloaded) {
		t.Errorf("post-plan Select err = %v, want ErrNotOverloaded", err)
	}
}
