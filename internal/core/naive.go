package core

import (
	"fmt"

	"repro/internal/device"
)

// The naive baselines. The paper's §3 describes the naive policy as picking
// "the vNF on SmartNIC with minimal capacity θS", while Figure 1(b) shows it
// migrating the mid-chain Monitor; DESIGN.md §2 (Inconsistency A) explains
// why both readings are implemented. All naive policies ignore chain
// geometry, which is exactly the behaviour PAM improves upon.

// NaiveMinNICCapacity migrates the single SmartNIC vNF with the smallest θS
// (the literal §3 sentence; UNO's "bottleneck vNF with minimum processing
// capacity").
type NaiveMinNICCapacity struct{}

// Name implements Selector.
func (NaiveMinNICCapacity) Name() string { return "Naive-MinNICCap" }

// Select implements Selector.
func (n NaiveMinNICCapacity) Select(v View) (Plan, error) {
	return naiveSingle(n.Name(), v, func(v View, types []string, positions []int) (int, error) {
		best, bestIdx := device.Gbps(0), -1
		for j, t := range types {
			g, err := v.Catalog.Lookup(t, device.KindSmartNIC)
			if err != nil {
				return -1, err
			}
			if bestIdx == -1 || g < best {
				best, bestIdx = g, j
			}
		}
		return bestIdx, nil
	})
}

// NaiveCheapestOnCPU migrates the single SmartNIC vNF with the largest θC,
// i.e. the one cheapest to host on the CPU. On the Figure 1 chain this
// selects Monitor (θC = 10 Gbps), reproducing the migration the paper draws
// in Figure 1(b).
type NaiveCheapestOnCPU struct{}

// Name implements Selector.
func (NaiveCheapestOnCPU) Name() string { return "Naive-CheapCPU" }

// Select implements Selector.
func (n NaiveCheapestOnCPU) Select(v View) (Plan, error) {
	return naiveSingle(n.Name(), v, func(v View, types []string, positions []int) (int, error) {
		best, bestIdx := device.Gbps(0), -1
		for j, t := range types {
			g, err := v.Catalog.Lookup(t, device.KindCPU)
			if err != nil {
				return -1, err
			}
			if bestIdx == -1 || g > best {
				best, bestIdx = g, j
			}
		}
		return bestIdx, nil
	})
}

// NaiveMinCapacityLoop is the iterative flavour of NaiveMinNICCapacity: it
// keeps migrating minimum-θS vNFs (checking the Eq. 2 CPU constraint, for
// fairness with PAM) until the SmartNIC is no longer overloaded, without any
// border awareness. It isolates the value of PAM's border restriction in
// the ablation benches.
type NaiveMinCapacityLoop struct{}

// Name implements Selector.
func (NaiveMinCapacityLoop) Name() string { return "Naive-MinCapLoop" }

// Select implements Selector.
func (n NaiveMinCapacityLoop) Select(v View) (Plan, error) {
	if err := v.Chain.Validate(); err != nil {
		return Plan{}, err
	}
	overloaded, err := v.NICOverloaded()
	if err != nil {
		return Plan{}, err
	}
	if !overloaded {
		return Plan{}, ErrNotOverloaded
	}
	work := v.Chain.Clone()
	excluded := make(map[string]bool)
	var steps []Step
	for iter := 0; iter <= work.Len(); iter++ {
		// Pick min θS among remaining NIC vNFs.
		b0, b0Cap := -1, device.Gbps(0)
		for _, i := range work.On(device.KindSmartNIC) {
			e := work.At(i)
			if excluded[e.Name] {
				continue
			}
			g, err := v.Catalog.Lookup(e.Type, device.KindSmartNIC)
			if err != nil {
				return Plan{}, fmt.Errorf("naive: %w", err)
			}
			if b0 == -1 || g < b0Cap {
				b0, b0Cap = i, g
			}
		}
		if b0 == -1 {
			return Plan{}, ErrBothOverloaded
		}
		elem := work.At(b0)
		cpuTypes := append(work.TypesOn(device.KindCPU), elem.Type)
		cpuU, err := v.CPU.Utilization(v.Catalog, cpuTypes, v.Throughput)
		if err != nil {
			return Plan{}, fmt.Errorf("naive: %w", err)
		}
		if cpuU >= 1 {
			excluded[elem.Name] = true
			continue
		}
		work.SetLoc(b0, device.KindCPU)
		steps = append(steps, Step{Element: elem.Name, From: device.KindSmartNIC, To: device.KindCPU})
		nicU, err := device.Device{Kind: device.KindSmartNIC}.
			Utilization(v.Catalog, work.TypesOn(device.KindSmartNIC), v.Throughput)
		if err != nil {
			return Plan{}, fmt.Errorf("naive: %w", err)
		}
		if nicU < 1 {
			return finishPlan(n.Name(), v, work, steps)
		}
	}
	return Plan{}, fmt.Errorf("naive: did not terminate on chain %q", v.Chain.Name)
}

// naiveSingle implements the shared one-shot naive skeleton: verify the NIC
// is overloaded, pick one NIC vNF via choose (returns an index into the
// parallel types/positions slices), and migrate it.
func naiveSingle(name string, v View, choose func(View, []string, []int) (int, error)) (Plan, error) {
	if err := v.Chain.Validate(); err != nil {
		return Plan{}, err
	}
	overloaded, err := v.NICOverloaded()
	if err != nil {
		return Plan{}, err
	}
	if !overloaded {
		return Plan{}, ErrNotOverloaded
	}
	positions := v.Chain.On(device.KindSmartNIC)
	if len(positions) == 0 {
		return Plan{}, ErrNoCandidate
	}
	types := make([]string, len(positions))
	for j, i := range positions {
		types[j] = v.Chain.At(i).Type
	}
	j, err := choose(v, types, positions)
	if err != nil {
		return Plan{}, fmt.Errorf("%s: %w", name, err)
	}
	if j < 0 || j >= len(positions) {
		return Plan{}, ErrNoCandidate
	}
	work := v.Chain.Clone()
	pos := positions[j]
	elem := work.At(pos)
	work.SetLoc(pos, device.KindCPU)
	steps := []Step{{Element: elem.Name, From: device.KindSmartNIC, To: device.KindCPU}}
	return finishPlan(name, v, work, steps)
}
