package core_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
)

func figure1View(t *testing.T, throughput device.Gbps) core.View {
	t.Helper()
	return scenario.View(scenario.Figure1Chain(), scenario.DefaultParams(), throughput)
}

func TestPAMSelectsLoggerOnFigure1(t *testing.T) {
	v := figure1View(t, 1.05) // just past the NIC saturation point
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("PAM.Select: %v", err)
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("steps = %v, want exactly one", plan.Steps)
	}
	if got := plan.Steps[0].Element; got != scenario.NameLogger {
		t.Errorf("migrated %q, want %q (the min-capacity border vNF)", got, scenario.NameLogger)
	}
	if plan.After.Crossings != plan.Before.Crossings {
		t.Errorf("crossings %d -> %d, PAM must not add PCIe crossings on figure1",
			plan.Before.Crossings, plan.After.Crossings)
	}
	if plan.Result.At(plan.Result.Index(scenario.NameLogger)).Loc != device.KindCPU {
		t.Errorf("result placement does not have Logger on CPU: %v", plan.Result)
	}
	// Original chain must be untouched.
	if v.Chain.At(v.Chain.Index(scenario.NameLogger)).Loc != device.KindSmartNIC {
		t.Errorf("Select mutated the input chain")
	}
}

func TestPAMNotOverloaded(t *testing.T) {
	v := figure1View(t, 0.5) // well under saturation
	_, err := core.PAM{}.Select(v)
	if !errors.Is(err, core.ErrNotOverloaded) {
		t.Fatalf("err = %v, want ErrNotOverloaded", err)
	}
}

func TestPAMBothOverloaded(t *testing.T) {
	// At a measured throughput the CPU cannot absorb any border vNF
	// (Eq. 2 fails for every candidate), PAM must report the paper's
	// terminal scale-out case.
	v := figure1View(t, 3.5) // LB alone puts CPU at 0.875; +any vNF exceeds 1
	_, err := core.PAM{}.Select(v)
	if !errors.Is(err, core.ErrBothOverloaded) {
		t.Fatalf("err = %v, want ErrBothOverloaded", err)
	}
}

// TestPAMMeasuredDemandOverrides covers the shared-capacity backend's view:
// measured demand drives the overload check when the model (evaluated at a
// collapsed delivered θcur) can no longer see the hot spot, and measured
// demand past the threshold on *both* devices is the paper's scale-out
// terminal case.
func TestPAMMeasuredDemandOverrides(t *testing.T) {
	// Model says calm (θcur 0.5 → NIC util ≈ 0.46), measurement says hot:
	// the measured demand must win and produce the Figure-1 plan.
	v := figure1View(t, 0.5)
	v.MeasuredNICUtil = 1.4
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("PAM.Select with measured NIC demand: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Element != scenario.NameLogger {
		t.Errorf("plan = %v, want the Logger push-aside", plan)
	}

	// Measurement says calm even though the model would fire: not overloaded.
	v = figure1View(t, 1.05)
	v.MeasuredNICUtil = 0.5
	if _, err := (core.PAM{}).Select(v); !errors.Is(err, core.ErrNotOverloaded) {
		t.Errorf("err = %v, want ErrNotOverloaded when measured demand is calm", err)
	}

	// Both devices' measured demand past the threshold: terminal case, even
	// though Eq. 2 at the collapsed θcur would look feasible.
	v = figure1View(t, 0.5)
	v.MeasuredNICUtil = 1.4
	v.MeasuredCPUUtil = 1.1
	if _, err := (core.PAM{}).Select(v); !errors.Is(err, core.ErrBothOverloaded) {
		t.Errorf("err = %v, want ErrBothOverloaded on measured double overload", err)
	}
}

func TestPAMEq2ExcludesAndFallsBack(t *testing.T) {
	// Craft capacities where the min-capacity border (Logger) would
	// overload the CPU, so PAM must fall back to the other border
	// (Firewall) instead of migrating mid-chain.
	v := figure1View(t, 1.05)
	cat := v.Catalog.Clone()
	cat[device.TypeLogger] = device.Capacity{SmartNIC: 2, CPU: 0.5}  // CPU can't host it
	cat[device.TypeFirewall] = device.Capacity{SmartNIC: 3, CPU: 40} // cheap on CPU
	v.Catalog = cat
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("PAM.Select: %v", err)
	}
	if len(plan.Steps) == 0 || plan.Steps[0].Element != scenario.NameFirewall {
		t.Fatalf("steps = %v, want firewall first (logger excluded by Eq. 2)", plan.Steps)
	}
	for _, s := range plan.Steps {
		if s.Element == scenario.NameLogger {
			t.Errorf("logger migrated despite Eq. 2 exclusion: %v", plan.Steps)
		}
	}
}

func TestPAMMultiStepSlidesBorder(t *testing.T) {
	// Make every NIC vNF expensive enough that migrating one border is not
	// sufficient (Eq. 3 keeps failing) and the CPU roomy enough to accept
	// several: PAM must slide the border inward and migrate multiple vNFs,
	// in border order only.
	c := scenario.Figure1Chain()
	v := scenario.View(c, scenario.DefaultParams(), 1.5)
	cat := device.Catalog{
		device.TypeLoadBalancer: {SmartNIC: device.Unbounded, CPU: 100},
		device.TypeLogger:       {SmartNIC: 2, CPU: 100},
		device.TypeMonitor:      {SmartNIC: 2.1, CPU: 100},
		device.TypeFirewall:     {SmartNIC: 2.2, CPU: 100},
	}
	v.Catalog = cat
	// NIC util at 1.5: 1.5*(1/2+1/2.1+1/2.2) = 2.14 → needs ≥2 migrations:
	// after logger: 1.5*(1/2.1+1/2.2) = 1.396 still hot; after monitor:
	// 1.5/2.2 = 0.68 → stop.
	plan, err := core.PAM{}.Select(v)
	if err != nil {
		t.Fatalf("PAM.Select: %v", err)
	}
	want := []string{scenario.NameLogger, scenario.NameMonitor}
	if len(plan.Steps) != len(want) {
		t.Fatalf("steps = %v, want %v", plan.Steps, want)
	}
	for i, w := range want {
		if plan.Steps[i].Element != w {
			t.Errorf("step %d = %q, want %q", i, plan.Steps[i].Element, w)
		}
	}
	if plan.After.Crossings != plan.Before.Crossings {
		t.Errorf("crossings %d -> %d; sliding-border migration must not add crossings",
			plan.Before.Crossings, plan.After.Crossings)
	}
}

func TestNaiveCheapestOnCPUPicksMonitor(t *testing.T) {
	v := figure1View(t, 1.05)
	plan, err := core.NaiveCheapestOnCPU{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Element != scenario.NameMonitor {
		t.Fatalf("steps = %v, want single monitor migration (Figure 1(b))", plan.Steps)
	}
	if got, want := plan.After.Crossings, plan.Before.Crossings+2; got != want {
		t.Errorf("crossings after naive = %d, want %d (+2 per §1)", got, want)
	}
}

func TestNaiveMinNICCapacityPicksLogger(t *testing.T) {
	v := figure1View(t, 1.05)
	plan, err := core.NaiveMinNICCapacity{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Element != scenario.NameLogger {
		t.Fatalf("steps = %v, want single logger migration (§3's literal reading)", plan.Steps)
	}
}

func TestNaiveMinCapacityLoopRelievesNIC(t *testing.T) {
	v := figure1View(t, 1.05)
	plan, err := core.NaiveMinCapacityLoop{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if plan.Empty() {
		t.Fatal("expected at least one migration")
	}
	a, err := core.Analyze(plan.Result, v, v.Throughput)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The paper's Eq. 3 ignores the DMA charge; reconstruct that check.
	nicU, err := device.Device{Kind: device.KindSmartNIC}.
		Utilization(v.Catalog, plan.Result.TypesOn(device.KindSmartNIC), v.Throughput)
	if err != nil {
		t.Fatal(err)
	}
	if nicU >= 1 {
		t.Errorf("NIC still overloaded after loop: util=%.3f (analysis=%+v)", nicU, a)
	}
}

func TestAnalyzeFigure1Fluid(t *testing.T) {
	// Fluid-model numbers derived by hand in DESIGN.md §2/§5.
	v := figure1View(t, 1.0)
	a, err := core.Analyze(v.Chain, v, 1.0)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Crossings != 2 {
		t.Errorf("crossings = %d, want 2", a.Crossings)
	}
	// NIC util at 1 Gbps: 1/2 + 1/3.2 + 1/10 = 0.9125; DMA engines carry
	// 2 crossings / 40 Gbps = 0.05 separately.
	if !close(a.NICUtil, 0.9125, 1e-9) {
		t.Errorf("NIC util = %v, want 0.9125", a.NICUtil)
	}
	if !close(a.DMAUtil, 0.05, 1e-9) {
		t.Errorf("DMA util = %v, want 0.05", a.DMAUtil)
	}
	if !close(a.CPUUtil, 0.25, 1e-9) {
		t.Errorf("CPU util = %v, want 0.25", a.CPUUtil)
	}
	if !close(float64(a.NICSaturation), 1/0.9125, 1e-9) {
		t.Errorf("NIC saturation = %v, want %v", a.NICSaturation, 1/0.9125)
	}
	if !close(float64(a.DMASaturation), 20, 1e-9) {
		t.Errorf("DMA saturation = %v, want 20", a.DMASaturation)
	}
	if !close(float64(a.CPUSaturation), 4, 1e-9) {
		t.Errorf("CPU saturation = %v, want 4", a.CPUSaturation)
	}
}

func close(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// --- property-based tests -------------------------------------------------

// randomChain builds a random valid chain over the extended catalog.
func randomChain(r *rand.Rand) *chain.Chain {
	types := []string{
		device.TypeFirewall, device.TypeLogger, device.TypeMonitor,
		device.TypeLoadBalancer, device.TypeNAT, device.TypeDPI,
		device.TypeRateLimiter, device.TypeIDS,
	}
	n := 2 + r.Intn(6)
	elems := make([]chain.Element, n)
	for i := range elems {
		loc := device.KindSmartNIC
		if r.Intn(2) == 0 {
			loc = device.KindCPU
		}
		elems[i] = chain.Element{
			Name: types[r.Intn(len(types))] + string(rune('a'+i)),
			Type: types[r.Intn(len(types))],
			Loc:  loc,
		}
	}
	c, err := chain.New("rand", elems...)
	if err != nil {
		panic(err)
	}
	return c
}

// Property: under BorderModeStrict, migrating any border vNF to the CPU
// never increases PCIe crossings (the paper's central claim, §2).
func TestPropertyStrictBorderMigrationNeverAddsCrossings(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChain(r)
		before := c.Crossings()
		bl, br := c.Borders(chain.BorderModeStrict)
		for _, idx := range append(append([]int{}, bl...), br...) {
			cc := c.Clone()
			cc.SetLoc(idx, device.KindCPU)
			if cc.Crossings() > before {
				t.Logf("chain %v: migrating %d raised crossings %d -> %d",
					c, idx, before, cc.Crossings())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PAM terminates on random chains with one of its three defined
// outcomes and, when it produces a plan under strict borders, the plan never
// increases crossings and every step moves NIC→CPU.
func TestPropertyPAMTerminatesAndIsSane(t *testing.T) {
	p := scenario.DefaultParams()
	f := func(seed int64, tp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChain(r)
		throughput := device.Gbps(0.1 + float64(tp%40)/10) // 0.1 .. 4.0
		v := scenario.ViewExtended(c, p, throughput)
		v.BorderMode = chain.BorderModeStrict
		plan, err := core.PAM{Mode: chain.BorderModeStrict}.Select(v)
		if err != nil {
			return errors.Is(err, core.ErrNotOverloaded) || errors.Is(err, core.ErrBothOverloaded)
		}
		if plan.After.Crossings > plan.Before.Crossings {
			t.Logf("plan added crossings: %v", plan)
			return false
		}
		for _, s := range plan.Steps {
			if s.From != device.KindSmartNIC || s.To != device.KindCPU {
				t.Logf("bad step direction: %v", s)
				return false
			}
		}
		// Eq. 3 as the algorithm sees it (no DMA term) must hold after.
		nicU, err := device.Device{Kind: device.KindSmartNIC}.
			Utilization(v.Catalog, plan.Result.TypesOn(device.KindSmartNIC), throughput)
		if err != nil {
			t.Logf("utilization: %v", err)
			return false
		}
		return nicU < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PAM migrates only vNFs that were border vNFs at the moment of
// their migration (replaying the plan step by step).
func TestPropertyPAMMigratesOnlyBorders(t *testing.T) {
	p := scenario.DefaultParams()
	f := func(seed int64, tp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChain(r)
		throughput := device.Gbps(0.1 + float64(tp%40)/10)
		v := scenario.ViewExtended(c, p, throughput)
		plan, err := core.PAM{}.Select(v)
		if err != nil {
			return true // covered by the termination property
		}
		replay := c.Clone()
		for _, s := range plan.Steps {
			bl, br := replay.Borders(chain.BorderModePaper)
			idx := replay.Index(s.Element)
			if !containsInt(bl, idx) && !containsInt(br, idx) {
				t.Logf("step %v was not a border of %v", s, replay)
				return false
			}
			replay.SetLoc(idx, device.KindCPU)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
