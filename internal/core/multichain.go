package core

import (
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/device"
)

// Multi-chain extension. The paper evaluates a single service chain, but an
// NFV server hosts many chains sharing one SmartNIC and CPU; utilizations
// then sum across chains (the linear model is additive), and a hot spot can
// be relieved by pushing borders aside in any chain. This file extends PAM
// to that setting while preserving the paper's single-chain behaviour
// exactly when only one chain is present.

// Load pairs a chain with its measured throughput.
type Load struct {
	Chain      *chain.Chain
	Throughput device.Gbps
}

// MultiView is the controller's snapshot for a multi-chain deployment.
type MultiView struct {
	Loads      []Load
	Catalog    device.Catalog
	NIC        device.Device
	CPU        device.Device
	BorderMode chain.BorderMode
	// OverloadThreshold as in View; zero selects the default.
	OverloadThreshold float64
	// MeasuredNICUtil and MeasuredCPUUtil as in View: the aggregate
	// telemetry-measured demand utilizations, which a shared-capacity
	// backend supplies because its delivered throughput (and therefore the
	// model's Σ θcur/θd estimate) collapses under the very overload being
	// detected.
	MeasuredNICUtil float64
	MeasuredCPUUtil float64
	// MeasuredDMAUtil as in View: the measured PCIe DMA-engine demand
	// summed over every chain's crossings. The engine is one budget shared
	// by all tenants, so a crossing-bound hot spot can exist in the sum
	// alone.
	MeasuredDMAUtil float64
}

// MultiPlan is a plan over several chains: per-chain migration steps plus
// the resulting placements (parallel to the view's Loads).
type MultiPlan struct {
	Selector string
	Steps    []MultiStepEntry
	Results  []*chain.Chain
}

// MultiStepEntry tags a Step with the chain it belongs to.
type MultiStepEntry struct {
	ChainIndex int
	Step       Step
}

// Empty reports whether the plan migrates nothing.
func (p MultiPlan) Empty() bool { return len(p.Steps) == 0 }

// String summarizes the plan.
func (p MultiPlan) String() string {
	name := p.Selector
	if name == "" {
		name = "multi"
	}
	if p.Empty() {
		return name + ": no migration"
	}
	s := fmt.Sprintf("%s: %d migration(s):", name, len(p.Steps))
	for _, st := range p.Steps {
		s += fmt.Sprintf(" [chain %d: %v]", st.ChainIndex, st.Step)
	}
	return s
}

// MultiSelector decides which vNFs to migrate off an overloaded SmartNIC in
// a multi-chain deployment. It is the control loop's native selector
// interface; single-chain Selectors participate through AsMulti.
type MultiSelector interface {
	// Name identifies the policy in reports.
	Name() string
	// SelectMulti computes a migration plan for the view. Implementations
	// must not mutate the view's chains; the plan's Results are modified
	// clones parallel to the view's Loads.
	SelectMulti(v MultiView) (MultiPlan, error)
}

// AsMulti lifts a single-chain Selector into a MultiSelector for views with
// exactly one load — the adapter both engines use when the operator
// configures a paper-mode (single-chain) policy. A multi-chain view is
// rejected rather than silently projected onto one tenant.
func AsMulti(sel Selector) MultiSelector { return singleAsMulti{sel} }

type singleAsMulti struct{ sel Selector }

func (a singleAsMulti) Name() string { return a.sel.Name() }

func (a singleAsMulti) SelectMulti(v MultiView) (MultiPlan, error) {
	if len(v.Loads) != 1 {
		return MultiPlan{}, fmt.Errorf("core: selector %q is single-chain; view has %d chains (use a MultiSelector)",
			a.sel.Name(), len(v.Loads))
	}
	p, err := a.sel.Select(View{
		Chain:             v.Loads[0].Chain,
		Catalog:           v.Catalog,
		Throughput:        v.Loads[0].Throughput,
		NIC:               v.NIC,
		CPU:               v.CPU,
		BorderMode:        v.BorderMode,
		OverloadThreshold: v.OverloadThreshold,
		MeasuredNICUtil:   v.MeasuredNICUtil,
		MeasuredCPUUtil:   v.MeasuredCPUUtil,
		MeasuredDMAUtil:   v.MeasuredDMAUtil,
	})
	if err != nil {
		return MultiPlan{}, err
	}
	mp := MultiPlan{Selector: p.Selector, Results: []*chain.Chain{p.Result}}
	for _, st := range p.Steps {
		mp.Steps = append(mp.Steps, MultiStepEntry{ChainIndex: 0, Step: st})
	}
	return mp, nil
}

// nicUtilAll sums SmartNIC utilization over all chains at their respective
// throughputs (no DMA term: Eq. 3 semantics).
func nicUtilAll(loads []Load, cat device.Catalog, results []*chain.Chain) (float64, error) {
	var u float64
	nic := device.Device{Kind: device.KindSmartNIC}
	for i, l := range loads {
		c := results[i]
		ui, err := nic.Utilization(cat, c.TypesOn(device.KindSmartNIC), l.Throughput)
		if err != nil {
			return 0, err
		}
		u += ui
	}
	return u, nil
}

// cpuUtilAll sums CPU utilization over all chains.
func cpuUtilAll(loads []Load, cat device.Catalog, results []*chain.Chain, cpu device.Device) (float64, error) {
	var u float64
	for i, l := range loads {
		ui, err := cpu.Utilization(cat, results[i].TypesOn(device.KindCPU), l.Throughput)
		if err != nil {
			return 0, err
		}
		u += ui
	}
	return u, nil
}

// dmaUtilAll sums the fluid model's DMA-engine utilization over all chains
// at their respective throughputs: every tenant's crossings draw on the one
// shared engine. Zero when the NIC device models no DMA engines.
func dmaUtilAll(loads []Load, results []*chain.Chain, nic device.Device) float64 {
	var u float64
	for i, l := range loads {
		u += nic.DMAUtilization(l.Throughput, results[i].Crossings())
	}
	return u
}

// MultiPAM runs the PAM loop over a multi-chain view: while the SmartNIC's
// aggregate utilization is at or above the threshold, pick — across all
// chains — the border vNF with minimum θS whose move passes the aggregate
// Eq. 2 check, migrate it, slide that chain's border, and repeat. With one
// chain this reduces to the paper's algorithm.
type MultiPAM struct {
	Mode chain.BorderMode
}

// Name identifies the policy.
func (MultiPAM) Name() string { return "Multi-PAM" }

// SelectMulti implements MultiSelector.
func (m MultiPAM) SelectMulti(v MultiView) (MultiPlan, error) { return m.Select(v) }

// Select computes the migration plan. It returns ErrNotOverloaded when the
// aggregate NIC utilization is below the threshold and ErrBothOverloaded
// when the border sets empty out while the NIC stays hot.
func (m MultiPAM) Select(v MultiView) (MultiPlan, error) {
	if len(v.Loads) == 0 {
		return MultiPlan{}, ErrNoCandidate
	}
	results := make([]*chain.Chain, len(v.Loads))
	totalElems := 0
	for i, l := range v.Loads {
		if err := l.Chain.Validate(); err != nil {
			return MultiPlan{}, fmt.Errorf("multichain %d: %w", i, err)
		}
		results[i] = l.Chain.Clone()
		totalElems += l.Chain.Len()
	}
	th := v.OverloadThreshold
	if th <= 0 {
		th = DefaultOverloadThreshold
	}

	// Overload is declared on the measured aggregate demand when the
	// backend supplied one (shared device capacity collapses delivered
	// throughput, so the model's Σ θcur/θd cannot exceed the threshold
	// during the very overload being handled); the fluid model remains the
	// check for purely model-driven callers.
	u := v.MeasuredNICUtil
	if u <= 0 {
		var err error
		u, err = nicUtilAll(v.Loads, v.Catalog, results)
		if err != nil {
			return MultiPlan{}, err
		}
	}
	// The shared DMA engine is the third contended resource: its demand
	// sums over every tenant's crossings, so a crossing-bound hot spot can
	// exist in the sum alone while both devices stay feasible — and a
	// border migration that merges segments is exactly the relief.
	dmaU := v.MeasuredDMAUtil
	if dmaU <= 0 {
		dmaU = dmaUtilAll(v.Loads, results, v.NIC)
	}
	overDMA := dmaU >= th
	if u < th && !overDMA {
		return MultiPlan{}, ErrNotOverloaded
	}
	// Measured both-overloaded terminal case, as in PAM.Select: with every
	// device's demand past the threshold a push-aside only moves the hot
	// spot, so the operator must scale out.
	if v.MeasuredNICUtil >= th && v.MeasuredCPUUtil >= th {
		return MultiPlan{}, ErrBothOverloaded
	}

	mode := m.Mode
	if v.BorderMode != chain.BorderModePaper {
		mode = v.BorderMode
	}
	excluded := make(map[string]bool) // "chainIdx/name"

	var steps []MultiStepEntry
	for iter := 0; iter <= totalElems; iter++ {
		// Gather border candidates across all chains, smallest θS first
		// (ties broken by chain then position for determinism).
		type cand struct {
			chainIdx, pos int
			cap           device.Gbps
		}
		var cands []cand
		for ci, c := range results {
			bl, br := c.Borders(mode)
			for _, pos := range mergeUnique(bl, br) {
				e := c.At(pos)
				if excluded[fmt.Sprintf("%d/%s", ci, e.Name)] {
					continue
				}
				g, err := v.Catalog.Lookup(e.Type, device.KindSmartNIC)
				if err != nil {
					return MultiPlan{}, fmt.Errorf("multichain: %w", err)
				}
				cands = append(cands, cand{chainIdx: ci, pos: pos, cap: g})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].cap != cands[j].cap {
				return cands[i].cap < cands[j].cap
			}
			if cands[i].chainIdx != cands[j].chainIdx {
				return cands[i].chainIdx < cands[j].chainIdx
			}
			return cands[i].pos < cands[j].pos
		})

		migrated := false
		for _, cd := range cands {
			c := results[cd.chainIdx]
			e := c.At(cd.pos)
			// Aggregate Eq. 2: CPU over all chains plus the candidate.
			cpuU, err := cpuUtilAll(v.Loads, v.Catalog, results, v.CPU)
			if err != nil {
				return MultiPlan{}, err
			}
			g, err := v.Catalog.Lookup(e.Type, device.KindCPU)
			if err != nil {
				excluded[fmt.Sprintf("%d/%s", cd.chainIdx, e.Name)] = true
				continue
			}
			cpuU += v.Loads[cd.chainIdx].Throughput.Float() / g.Float()
			if cpuU >= 1 {
				excluded[fmt.Sprintf("%d/%s", cd.chainIdx, e.Name)] = true
				continue
			}
			// A DMA-triggered episode must relieve the interconnect: exclude
			// candidates whose move would add crossings (see PAM.Select).
			if overDMA {
				before := c.Crossings()
				c.SetLoc(cd.pos, device.KindCPU)
				added := c.Crossings() > before
				c.SetLoc(cd.pos, device.KindSmartNIC)
				if added {
					excluded[fmt.Sprintf("%d/%s", cd.chainIdx, e.Name)] = true
					continue
				}
			}
			c.SetLoc(cd.pos, device.KindCPU)
			steps = append(steps, MultiStepEntry{
				ChainIndex: cd.chainIdx,
				Step:       Step{Element: e.Name, From: device.KindSmartNIC, To: device.KindCPU},
			})
			migrated = true
			break
		}
		if !migrated {
			return MultiPlan{}, ErrBothOverloaded
		}

		// Aggregate Eq. 3, with the model's post-migration crossing load
		// required to cool when the episode was DMA-triggered.
		u, err := nicUtilAll(v.Loads, v.Catalog, results)
		if err != nil {
			return MultiPlan{}, err
		}
		dmaCool := !overDMA || dmaUtilAll(v.Loads, results, v.NIC) < 1
		if u < 1 && dmaCool {
			return MultiPlan{Selector: m.Name(), Steps: steps, Results: results}, nil
		}
	}
	return MultiPlan{}, fmt.Errorf("multichain: did not terminate")
}
