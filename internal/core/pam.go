package core

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/device"
)

// PAM implements the paper's Push Aside Migration selection algorithm (§2).
//
// Step 1 — Border vNF identification: compute the left/right border sets
// BL/BR of SmartNIC-resident vNFs whose neighbour sits on the CPU.
//
// Step 2 — Migration vNF selection (Eq. 1): b0 = argmin over BL ∪ BR of θS.
//
// Step 3 — Overload alleviation check: (Eq. 2) migrating b0 must not create
// a CPU hot spot — otherwise drop b0 from the border sets and retry Step 2;
// (Eq. 3) if, with b0 pushed aside, the SmartNIC is no longer overloaded,
// migrate b0 and terminate; otherwise migrate b0, slide the border inward
// (downstream of a left border, upstream of a right border), and loop.
//
// If the border sets empty out while the SmartNIC is still overloaded the
// paper's terminal case applies and ErrBothOverloaded is returned.
type PAM struct {
	// Mode selects border identification semantics; the zero value
	// (BorderModePaper) matches the paper's Figure 1 literally. The view's
	// BorderMode, when different policies are compared, takes precedence.
	Mode chain.BorderMode
}

// Name implements Selector.
func (PAM) Name() string { return "PAM" }

// Select implements Selector, running Steps 1–3 against the view.
func (p PAM) Select(v View) (Plan, error) {
	if err := v.Chain.Validate(); err != nil {
		return Plan{}, err
	}
	overNIC, err := v.NICOverloaded()
	if err != nil {
		return Plan{}, err
	}
	// A crossing-bound overload — the shared DMA engine saturated while the
	// NIC itself stays feasible — also triggers selection: a border
	// migration that merges device segments removes crossings, which is
	// exactly the relief the interconnect needs.
	overDMA, err := v.DMAOverloaded()
	if err != nil {
		return Plan{}, err
	}
	if !overNIC && !overDMA {
		return Plan{}, ErrNotOverloaded
	}
	// The paper's terminal case, detected from measurement: when the
	// backend reports both devices' demand at or past the threshold there
	// is nowhere to push aside to — the model's Eq. 2, evaluated at the
	// collapsed delivered θcur, could not see it.
	th := v.OverloadThreshold
	if th <= 0 {
		th = DefaultOverloadThreshold
	}
	if v.MeasuredNICUtil >= th && v.MeasuredCPUUtil >= th {
		return Plan{}, ErrBothOverloaded
	}

	work := v.Chain.Clone()
	mode := p.Mode
	if v.BorderMode != chain.BorderModePaper {
		mode = v.BorderMode
	}

	// Border sets as position indices into work. Rebuilding after each
	// migration implements both the implicit removal of migrated vNFs and
	// the explicit border slide of Step 3: when a left border moves to the
	// CPU its downstream SmartNIC neighbour becomes the new left border
	// (symmetrically for right borders).
	excluded := make(map[string]bool) // b0s rejected by Eq. 2

	var steps []Step
	for iter := 0; iter <= work.Len(); iter++ {
		bl, br := work.Borders(mode)
		cands := mergeUnique(bl, br)

		// Step 2 (Eq. 1): minimum-θS border not excluded by Eq. 2.
		b0 := -1
		var b0Cap device.Gbps
		for {
			b0 = -1
			for _, i := range cands {
				e := work.At(i)
				if excluded[e.Name] {
					continue
				}
				g, err := v.Catalog.Lookup(e.Type, device.KindSmartNIC)
				if err != nil {
					return Plan{}, fmt.Errorf("pam: %w", err)
				}
				if b0 == -1 || g < b0Cap {
					b0, b0Cap = i, g
				}
			}
			if b0 == -1 {
				// Border sets exhausted while the NIC is still hot.
				return Plan{}, ErrBothOverloaded
			}

			// Step 3 check 1 (Eq. 2): CPU must absorb b0 without a new
			// hot spot: Σ_{i on C} θcur/θC_i + θcur/θC_b0 < 1.
			elem := work.At(b0)
			cpuTypes := append(work.TypesOn(device.KindCPU), elem.Type)
			cpuU, err := v.CPU.Utilization(v.Catalog, cpuTypes, v.Throughput)
			if err != nil {
				return Plan{}, fmt.Errorf("pam: %w", err)
			}
			if cpuU >= 1 {
				excluded[elem.Name] = true
				continue // back to Step 2
			}
			// A DMA-triggered episode must relieve the interconnect: a
			// candidate whose move *adds* crossings (possible for the paper
			// mode's head/tail borders) would deepen the very overload being
			// handled, so it is excluded like an Eq. 2 failure.
			if overDMA {
				before := work.Crossings()
				work.SetLoc(b0, device.KindCPU)
				added := work.Crossings() > before
				work.SetLoc(b0, device.KindSmartNIC)
				if added {
					excluded[elem.Name] = true
					continue
				}
			}
			break
		}

		// Migrate b0.
		elem := work.At(b0)
		work.SetLoc(b0, device.KindCPU)
		steps = append(steps, Step{Element: elem.Name, From: device.KindSmartNIC, To: device.KindCPU})

		// Step 3 check 2 (Eq. 3): Σ_{i on S, i≠b0} θcur/θS_i < 1.
		// The paper's equation sums plain vNF utilizations; in a
		// NIC-triggered episode the DMA charge for crossings stays a
		// dataplane effect the algorithm does not see. A DMA-triggered
		// episode additionally requires the model's post-migration crossing
		// load to cool below the engine budget before terminating.
		nicU, err := device.Device{Kind: device.KindSmartNIC}.
			Utilization(v.Catalog, work.TypesOn(device.KindSmartNIC), v.Throughput)
		if err != nil {
			return Plan{}, fmt.Errorf("pam: %w", err)
		}
		dmaCool := !overDMA || v.NIC.DMAUtilization(v.Throughput, work.Crossings()) < 1
		if nicU < 1 && dmaCool {
			return finishPlan(p.Name(), v, work, steps)
		}
		// Otherwise loop: border sets are recomputed from the updated
		// placement, which performs the Step-3 slide.
	}
	return Plan{}, fmt.Errorf("pam: did not terminate on chain %q", v.Chain.Name)
}

// mergeUnique merges two ascending index slices without duplicates.
func mergeUnique(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
