package core_test

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
)

func multiView(loads ...core.Load) core.MultiView {
	p := scenario.DefaultParams()
	nic, cpu := scenario.Devices(p)
	return core.MultiView{
		Loads:   loads,
		Catalog: device.Table1(),
		NIC:     nic,
		CPU:     cpu,
	}
}

func TestMultiPAMReducesToSingleChainPAM(t *testing.T) {
	// With exactly one chain, MultiPAM must make the same decision as PAM.
	v := multiView(core.Load{Chain: scenario.Figure1Chain(), Throughput: 1.05})
	plan, err := core.MultiPAM{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Step.Element != scenario.NameLogger {
		t.Fatalf("steps = %v, want single logger migration", plan.Steps)
	}
	single, err := core.PAM{}.Select(scenario.View(scenario.Figure1Chain(), scenario.DefaultParams(), 1.05))
	if err != nil {
		t.Fatal(err)
	}
	if single.Steps[0].Element != plan.Steps[0].Step.Element {
		t.Errorf("multi (%v) and single (%v) disagree", plan.Steps, single.Steps)
	}
}

func TestMultiPAMAggregatesUtilization(t *testing.T) {
	// Two half-loaded copies of the Figure-1 chain: each alone is fine
	// (util 0.55×0.9125 = 0.50) but together the NIC is at 1.0. MultiPAM
	// must see the aggregate hot spot and migrate.
	a := scenario.Figure1Chain()
	b := scenario.Figure1Chain()
	b.Name = "figure1-b"
	v := multiView(
		core.Load{Chain: a, Throughput: 0.55},
		core.Load{Chain: b, Throughput: 0.55},
	)
	plan, err := core.MultiPAM{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if plan.Empty() {
		t.Fatal("no migration despite aggregate overload")
	}
	// The minimum-θS border across both chains is a Logger (θS = 2).
	if plan.Steps[0].Step.Element != scenario.NameLogger {
		t.Errorf("first step = %v, want a logger", plan.Steps[0])
	}
	// Crossings must not grow in any chain.
	for i, res := range plan.Results {
		if res.Crossings() != v.Loads[i].Chain.Crossings() {
			t.Errorf("chain %d crossings %d -> %d", i, v.Loads[i].Chain.Crossings(), res.Crossings())
		}
	}
	// Aggregate NIC must now be below 1 under Eq. 3 semantics.
	nic := device.Device{Kind: device.KindSmartNIC}
	var u float64
	for i, res := range plan.Results {
		ui, err := nic.Utilization(v.Catalog, res.TypesOn(device.KindSmartNIC), v.Loads[i].Throughput)
		if err != nil {
			t.Fatal(err)
		}
		u += ui
	}
	if u >= 1 {
		t.Errorf("aggregate NIC util %.3f after plan", u)
	}
}

func TestMultiPAMNotOverloaded(t *testing.T) {
	v := multiView(core.Load{Chain: scenario.Figure1Chain(), Throughput: 0.3})
	_, err := (core.MultiPAM{}).Select(v)
	if !errors.Is(err, core.ErrNotOverloaded) {
		t.Fatalf("err = %v, want ErrNotOverloaded", err)
	}
}

func TestMultiPAMBothOverloaded(t *testing.T) {
	// CPU already carries too much for any border to move.
	a := scenario.Figure1Chain()
	v := multiView(
		core.Load{Chain: a, Throughput: 1.05},
		// A second chain placed entirely on the CPU soaks its capacity.
		core.Load{Chain: mustChain(t,
			chain.Element{Name: "x0", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
			chain.Element{Name: "x1", Type: device.TypeFirewall, Loc: device.KindCPU},
		), Throughput: 2.5},
	)
	// CPU util: LB(a) 1.05/4 + LB(x) 2.5/4 + FW(x) 2.5/4 = 1.51 — anything
	// more overloads it.
	_, err := (core.MultiPAM{}).Select(v)
	if !errors.Is(err, core.ErrBothOverloaded) {
		t.Fatalf("err = %v, want ErrBothOverloaded", err)
	}
}

func TestMultiPAMEmptyView(t *testing.T) {
	_, err := (core.MultiPAM{}).Select(core.MultiView{})
	if !errors.Is(err, core.ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
}

func TestMultiPAMPrefersGlobalMinCapacityBorder(t *testing.T) {
	// Chain A's only border is a Firewall (θS 10); chain B's border is a
	// Logger (θS 2). Both are Eq.-2-feasible; the global Eq. 1 argmin must
	// pick B's logger even though A is listed first.
	// NIC: 6.0/10 + 0.7/2 = 0.95 (hot). CPU: monA 6/10 + lbB 0.7/4 = 0.775;
	// adding logB costs 0.7/4 = 0.175 → 0.95 < 1 (feasible).
	a := mustChain(t,
		chain.Element{Name: "monA", Type: device.TypeMonitor, Loc: device.KindCPU},
		chain.Element{Name: "fwA", Type: device.TypeFirewall, Loc: device.KindSmartNIC},
	)
	b := mustChain(t,
		chain.Element{Name: "lbB", Type: device.TypeLoadBalancer, Loc: device.KindCPU},
		chain.Element{Name: "logB", Type: device.TypeLogger, Loc: device.KindSmartNIC},
	)
	v := multiView(
		core.Load{Chain: a, Throughput: 6.0},
		core.Load{Chain: b, Throughput: 0.7},
	)
	plan, err := core.MultiPAM{}.Select(v)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if plan.Steps[0].ChainIndex != 1 || plan.Steps[0].Step.Element != "logB" {
		t.Errorf("first step = %+v, want logB from chain 1", plan.Steps[0])
	}
}

func mustChain(t *testing.T, elems ...chain.Element) *chain.Chain {
	t.Helper()
	c, err := chain.New("t", elems...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
