package core

import (
	"fmt"
	"time"
)

// Escalation is the structured form of PAM's scale-out terminal case. The
// paper's decision loop ends at "both devices overloaded → start another
// instance"; instead of logging that verdict as a dead-end skip, the
// control loop reports it upward as an Escalation so a fleet tier can act
// on it — migrate the offending tenant's chain to a calmer server. The
// snapshot carries the measured three-resource demand picture the selector
// rejected, which is everything a coordinator needs to pick a destination
// with genuine headroom.
type Escalation struct {
	// At is the backend clock (virtual or wall) when the terminal verdict
	// was reached.
	At time.Duration
	// Reason classifies the verdict.
	Reason EscalationReason
	// NICUtil, CPUUtil and DMAUtil are the measured demand utilizations of
	// the window that fired the episode (Σ offered/θ per device; offered
	// crossing load over the engine budget for DMAUtil). Demand exceeds 1
	// under overload even though delivered throughput has collapsed.
	NICUtil float64
	CPUUtil float64
	DMAUtil float64
	// DeliveredGbps is the detector's smoothed measured delivered rate at
	// the verdict — the θcur selection was attempted at.
	DeliveredGbps float64
}

// EscalationReason says why the per-server loop could not relieve the
// overload locally.
type EscalationReason uint8

const (
	// EscalateBothOverloaded is the paper's measured terminal case: demand
	// on every device is past the threshold, so a push-aside only moves
	// the hot spot.
	EscalateBothOverloaded EscalationReason = iota
	// EscalateNoFeasiblePlan covers the border-set exhaustion form of the
	// same verdict: the NIC (or DMA engine) stays hot but no candidate
	// passes the aggregate Eq. 2 / crossing-relief checks.
	EscalateNoFeasiblePlan
)

// String names the reason.
func (r EscalationReason) String() string {
	if r == EscalateBothOverloaded {
		return "both-overloaded"
	}
	return "no-feasible-plan"
}

// String renders the escalation for logs.
func (e Escalation) String() string {
	return fmt.Sprintf("scale-out (%v): nic=%.2f cpu=%.2f dma=%.2f delivered=%.2f Gbps",
		e.Reason, e.NICUtil, e.CPUUtil, e.DMAUtil, e.DeliveredGbps)
}
