// Package core implements the paper's contribution: the PAM (Push Aside
// Migration) border-vNF selection algorithm of §2 — Steps 1–3 with
// Equations 1–3 — together with the naive baselines of §3 and Figure 1(b),
// and a fluid-model analyzer used to predict placement quality.
//
// The algorithm is a pure function from a load View (chain placement,
// capacity catalog, measured chain throughput) to a migration Plan; the
// orchestrator executes plans against the live dataplane.
package core

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/device"
)

// View is the controller's snapshot of the system at decision time: the
// current chain placement, the capacity catalog (θd_i), the measured chain
// throughput θcur, and the device models.
//
// θcur is the *delivered* chain throughput telemetry measures. Because a
// saturated device pins measured utilization at 1.0 (it can never exceed
// it), overload is declared at a threshold slightly below saturation,
// matching how operators "periodically query the load" in §2.
type View struct {
	Chain      *chain.Chain
	Catalog    device.Catalog
	Throughput device.Gbps // θcur, the measured (delivered) chain throughput
	NIC        device.Device
	CPU        device.Device
	BorderMode chain.BorderMode
	// OverloadThreshold is the model-utilization level at which the
	// SmartNIC counts as overloaded; zero selects
	// DefaultOverloadThreshold.
	OverloadThreshold float64
	// MeasuredNICUtil, when positive, overrides the fluid-model estimate in
	// the overload check with the telemetry-measured demand utilization
	// (Σ offered/θ over resident vNFs). A backend with shared device
	// capacity must supply it: its delivered throughput collapses under
	// overload, so the model evaluated at θcur can no longer exceed the
	// threshold even while offered demand does. Eq. 2/3 still run on the
	// model at θcur — feasibility of the *post-migration* placement is a
	// prediction only the model can make.
	MeasuredNICUtil float64
	// MeasuredCPUUtil is the CPU-side measured demand. When both measured
	// utilizations reach the threshold the selectors return
	// ErrBothOverloaded — the paper's scale-out terminal case, detected
	// from measurement rather than from the model's collapsed θcur. The
	// selection equations themselves consult the model.
	MeasuredCPUUtil float64
	// MeasuredDMAUtil, when positive, is the telemetry-measured PCIe
	// DMA-engine demand (offered crossing load over the shared engine
	// budget, in engine-seconds per second). A crossing-bound overload —
	// the engine saturated while both devices stay feasible — triggers
	// selection through it, and the selectors then refuse any candidate
	// whose move would *add* crossings and require the model's
	// post-migration DMA estimate to cool before terminating.
	MeasuredDMAUtil float64
}

// DefaultOverloadThreshold declares the NIC hot when the linear model puts
// its utilization at 95% or above.
const DefaultOverloadThreshold = 0.95

// Errors returned by selectors.
var (
	// ErrBothOverloaded mirrors the paper's terminal case: "If both CPU and
	// SmartNIC are overloaded ... the network operator must start another
	// instance" (scale-out is out of PAM's scope).
	ErrBothOverloaded = errors.New("core: both SmartNIC and CPU overloaded; scale out required")
	// ErrNotOverloaded reports that no migration is needed.
	ErrNotOverloaded = errors.New("core: SmartNIC is not overloaded")
	// ErrNoCandidate reports an empty candidate set for a naive policy.
	ErrNoCandidate = errors.New("core: no migratable vNF on the SmartNIC")
)

// Analysis is the fluid-model evaluation of a placement at a given
// throughput: per-device utilization and saturation, DMA-engine load from
// PCIe crossings, and the placement's maximum supportable chain throughput.
type Analysis struct {
	Crossings     int
	NICUtil       float64
	CPUUtil       float64
	DMAUtil       float64
	NICSaturation device.Gbps
	CPUSaturation device.Gbps
	DMASaturation device.Gbps
	MaxThroughput device.Gbps
}

// Analyze evaluates placement c under view parameters (catalog, devices) at
// throughput cur.
func Analyze(c *chain.Chain, v View, cur device.Gbps) (Analysis, error) {
	cross := c.Crossings()
	nicTypes := c.TypesOn(device.KindSmartNIC)
	cpuTypes := c.TypesOn(device.KindCPU)

	nicU, err := v.NIC.Utilization(v.Catalog, nicTypes, cur)
	if err != nil {
		return Analysis{}, fmt.Errorf("analyze NIC: %w", err)
	}
	cpuU, err := v.CPU.Utilization(v.Catalog, cpuTypes, cur)
	if err != nil {
		return Analysis{}, fmt.Errorf("analyze CPU: %w", err)
	}
	nicSat, err := v.NIC.Saturation(v.Catalog, nicTypes)
	if err != nil {
		return Analysis{}, fmt.Errorf("analyze NIC saturation: %w", err)
	}
	cpuSat, err := v.CPU.Saturation(v.Catalog, cpuTypes)
	if err != nil {
		return Analysis{}, fmt.Errorf("analyze CPU saturation: %w", err)
	}
	dmaSat := v.NIC.DMASaturation(cross)
	maxT := nicSat
	if cpuSat < maxT {
		maxT = cpuSat
	}
	if dmaSat < maxT {
		maxT = dmaSat
	}
	return Analysis{
		Crossings:     cross,
		NICUtil:       nicU,
		CPUUtil:       cpuU,
		DMAUtil:       v.NIC.DMAUtilization(cur, cross),
		NICSaturation: nicSat,
		CPUSaturation: cpuSat,
		DMASaturation: dmaSat,
		MaxThroughput: maxT,
	}, nil
}

// NICOverloaded reports whether the view's SmartNIC utilization reaches the
// overload threshold: the measured demand utilization when the backend
// supplied one, otherwise the fluid model at the measured throughput.
func (v View) NICOverloaded() (bool, error) {
	th := v.OverloadThreshold
	if th <= 0 {
		th = DefaultOverloadThreshold
	}
	if v.MeasuredNICUtil > 0 {
		return v.MeasuredNICUtil >= th, nil
	}
	a, err := Analyze(v.Chain, v, v.Throughput)
	if err != nil {
		return false, err
	}
	return a.NICUtil >= th, nil
}

// DMAOverloaded reports whether the PCIe/DMA-engine utilization reaches the
// overload threshold: the measured demand when the backend supplied one,
// otherwise the fluid model's crossings×θcur/θ_DMA estimate (zero when the
// NIC device models no DMA engines).
func (v View) DMAOverloaded() (bool, error) {
	th := v.OverloadThreshold
	if th <= 0 {
		th = DefaultOverloadThreshold
	}
	if v.MeasuredDMAUtil > 0 {
		return v.MeasuredDMAUtil >= th, nil
	}
	if err := v.Chain.Validate(); err != nil {
		return false, err
	}
	return v.NIC.DMAUtilization(v.Throughput, v.Chain.Crossings()) >= th, nil
}

// Step is one vNF migration.
type Step struct {
	Element string
	From    device.Kind
	To      device.Kind
}

// String renders the step.
func (s Step) String() string {
	return fmt.Sprintf("%s: %v -> %v", s.Element, s.From, s.To)
}

// Plan is a selector's decision: the ordered migrations and the resulting
// placement, with before/after analyses at the view's throughput.
type Plan struct {
	Selector string
	Steps    []Step
	Result   *chain.Chain
	Before   Analysis
	After    Analysis
}

// Empty reports whether the plan migrates nothing.
func (p Plan) Empty() bool { return len(p.Steps) == 0 }

// String summarizes the plan.
func (p Plan) String() string {
	if p.Empty() {
		return fmt.Sprintf("%s: no migration", p.Selector)
	}
	s := fmt.Sprintf("%s: %d migration(s):", p.Selector, len(p.Steps))
	for _, st := range p.Steps {
		s += " [" + st.String() + "]"
	}
	s += fmt.Sprintf(" crossings %d -> %d", p.Before.Crossings, p.After.Crossings)
	return s
}

// Selector decides which vNFs to migrate off an overloaded SmartNIC.
type Selector interface {
	// Name identifies the policy in reports.
	Name() string
	// Select computes a migration plan for the view. Implementations must
	// not mutate v.Chain; the plan's Result is a modified clone.
	Select(v View) (Plan, error)
}

// apply builds a plan around a working chain the selectors mutate.
func finishPlan(name string, v View, work *chain.Chain, steps []Step) (Plan, error) {
	before, err := Analyze(v.Chain, v, v.Throughput)
	if err != nil {
		return Plan{}, err
	}
	after, err := Analyze(work, v, v.Throughput)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Selector: name, Steps: steps, Result: work, Before: before, After: after}, nil
}
