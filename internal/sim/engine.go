// Package sim is a minimal deterministic discrete-event simulation engine:
// a virtual clock, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, a seeded RNG, and a FIFO queueing Server primitive.
//
// The engine is single-threaded by design — determinism matters more than
// parallelism for reproducing latency figures — and uses time.Duration as
// virtual time (nanosecond resolution), so results are exact and free of GC
// or scheduler jitter.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a discrete-event executor. Create with New.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
}

// New returns an engine with its virtual clock at zero and a deterministic
// RNG seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic RNG. Callers must only use it
// from event callbacks (the engine is single-threaded).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it always indicates a simulation bug.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn at now+d.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue empties or the next event would pass
// `until`, then advances the clock to `until`. It returns the number of
// events executed.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for e.events.Len() > 0 && e.events[0].at <= until {
		e.Step()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// RunAll executes events until none remain and returns the count. Useful in
// tests; production runs bound time with Run.
func (e *Engine) RunAll() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
