package sim

import (
	"time"
)

// Server is a single FIFO queueing server with a bounded queue, the building
// block for device and link models. Jobs carry a deterministic service time;
// when the queue (including the job in service) is full, Submit rejects the
// job, which models tail drop.
//
// Busy time is accounted so callers can read measured utilization, and a
// high-water mark records the deepest queue observed.
type Server struct {
	eng *Engine

	// QueueCapacity bounds waiting jobs plus the one in service; 0 means
	// unbounded.
	QueueCapacity int

	queue     []job
	busy      bool
	busyTime  time.Duration
	lastIdle  time.Duration
	accepted  uint64
	rejected  uint64
	highWater int
}

type job struct {
	service time.Duration
	done    func(start, end time.Duration)
}

// NewServer attaches a server to an engine with the given queue capacity.
func NewServer(eng *Engine, queueCapacity int) *Server {
	return &Server{eng: eng, QueueCapacity: queueCapacity}
}

// Submit enqueues a job requiring the given service time. done (optional) is
// invoked at completion with the service start and end times. Submit reports
// whether the job was accepted; rejected jobs are counted as drops.
func (s *Server) Submit(service time.Duration, done func(start, end time.Duration)) bool {
	if service < 0 {
		service = 0
	}
	inSystem := len(s.queue)
	if s.busy {
		inSystem++
	}
	if s.QueueCapacity > 0 && inSystem >= s.QueueCapacity {
		s.rejected++
		return false
	}
	s.accepted++
	s.queue = append(s.queue, job{service: service, done: done})
	if len(s.queue) > s.highWater {
		s.highWater = len(s.queue)
	}
	if !s.busy {
		s.startNext()
	}
	return true
}

func (s *Server) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	start := s.eng.Now()
	s.eng.After(j.service, func() {
		end := s.eng.Now()
		s.busyTime += end - start
		if j.done != nil {
			j.done(start, end)
		}
		s.startNext()
	})
}

// Accepted returns how many jobs were admitted.
func (s *Server) Accepted() uint64 { return s.accepted }

// Rejected returns how many jobs were tail-dropped.
func (s *Server) Rejected() uint64 { return s.rejected }

// QueueLen returns the number of jobs waiting (excluding the one in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// HighWater returns the deepest observed queue length.
func (s *Server) HighWater() int { return s.highWater }

// BusyTime returns cumulative time the server spent serving completed jobs.
func (s *Server) BusyTime() time.Duration { return s.busyTime }

// Utilization returns busy time as a fraction of the elapsed interval.
func (s *Server) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busyTime) / float64(elapsed)
}
