package sim_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := sim.New(1)
	var got []int
	e.At(30*time.Microsecond, func() { got = append(got, 3) })
	e.At(10*time.Microsecond, func() { got = append(got, 1) })
	e.At(20*time.Microsecond, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30*time.Microsecond {
		t.Errorf("clock = %v, want 30µs", e.Now())
	}
}

func TestEngineFIFOForSimultaneous(t *testing.T) {
	e := sim.New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestEngineRunStopsAtHorizon(t *testing.T) {
	e := sim.New(1)
	ran := false
	e.At(2*time.Second, func() { ran = true })
	n := e.Run(time.Second)
	if n != 0 || ran {
		t.Fatalf("event past horizon ran (n=%d ran=%v)", n, ran)
	}
	if e.Now() != time.Second {
		t.Errorf("clock = %v, want 1s", e.Now())
	}
	e.Run(3 * time.Second)
	if !ran {
		t.Error("event within extended horizon did not run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := sim.New(1)
	hits := 0
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			e.After(time.Millisecond, recur)
		}
	}
	e.After(0, recur)
	e.RunAll()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if e.Now() != 4*time.Millisecond {
		t.Errorf("clock = %v, want 4ms", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := sim.New(1)
	e.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(500*time.Millisecond, func() {})
	})
	e.RunAll()
}

func TestServerSerializesJobs(t *testing.T) {
	e := sim.New(1)
	s := sim.NewServer(e, 0)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit(10*time.Millisecond, func(_, end time.Duration) { ends = append(ends, end) })
	}
	e.RunAll()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(ends) != 3 {
		t.Fatalf("ends = %v", ends)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Errorf("end[%d] = %v, want %v", i, ends[i], want[i])
		}
	}
	if s.BusyTime() != 30*time.Millisecond {
		t.Errorf("busy = %v, want 30ms", s.BusyTime())
	}
	if got := s.Utilization(60 * time.Millisecond); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestServerTailDrop(t *testing.T) {
	e := sim.New(1)
	s := sim.NewServer(e, 2) // one in service + one waiting
	ok1 := s.Submit(time.Millisecond, nil)
	ok2 := s.Submit(time.Millisecond, nil)
	ok3 := s.Submit(time.Millisecond, nil) // must be rejected
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("admission = %v %v %v, want true true false", ok1, ok2, ok3)
	}
	if s.Rejected() != 1 || s.Accepted() != 2 {
		t.Errorf("accepted=%d rejected=%d", s.Accepted(), s.Rejected())
	}
	e.RunAll()
	// After draining, capacity is available again.
	if !s.Submit(time.Millisecond, nil) {
		t.Error("server did not free capacity after draining")
	}
}

func TestServerZeroServiceJobs(t *testing.T) {
	e := sim.New(1)
	s := sim.NewServer(e, 0)
	done := 0
	for i := 0; i < 100; i++ {
		s.Submit(0, func(_, _ time.Duration) { done++ })
	}
	e.RunAll()
	if done != 100 {
		t.Fatalf("done = %d, want 100", done)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := sim.New(7)
		s := sim.NewServer(e, 8)
		var out []time.Duration
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			at := time.Duration(r.Intn(1000)) * time.Microsecond
			svc := time.Duration(r.Intn(50)) * time.Microsecond
			e.At(at, func() {
				s.Submit(svc, func(_, end time.Duration) { out = append(out, end) })
			})
		}
		e.RunAll()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: with an unbounded queue, completion times are the classic FIFO
// recurrence end[i] = max(arrival[i], end[i-1]) + service[i].
func TestPropertyServerFIFORecurrence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		arr := make([]time.Duration, n)
		svc := make([]time.Duration, n)
		var tprev time.Duration
		for i := range arr {
			tprev += time.Duration(r.Intn(100)) * time.Microsecond
			arr[i] = tprev
			svc[i] = time.Duration(r.Intn(200)) * time.Microsecond
		}
		e := sim.New(seed)
		s := sim.NewServer(e, 0)
		got := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			i := i
			e.At(arr[i], func() {
				s.Submit(svc[i], func(_, end time.Duration) { got = append(got, end) })
			})
		}
		e.RunAll()
		if len(got) != n {
			return false
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var end time.Duration
		for i := 0; i < n; i++ {
			start := arr[i]
			if end > start {
				start = end
			}
			end = start + svc[i]
			if got[i] != end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
