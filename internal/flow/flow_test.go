package flow_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/flow"
	"repro/internal/packet"
)

func key(a, b byte, sp, dp uint16) flow.Key {
	return flow.Key{
		SrcIP:   packet.IPv4Addr{10, 0, 0, a},
		DstIP:   packet.IPv4Addr{10, 0, 0, b},
		SrcPort: sp,
		DstPort: dp,
		Proto:   packet.ProtoTCP,
	}
}

func TestReverseAndCanonical(t *testing.T) {
	k := key(1, 2, 100, 200)
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.SrcPort != k.DstPort {
		t.Fatalf("reverse = %v", r)
	}
	if k.Canonical() != r.Canonical() {
		t.Error("canonical differs across directions")
	}
}

func TestSymmetricHash(t *testing.T) {
	k := key(1, 2, 100, 200)
	if k.SymmetricHash() != k.Reverse().SymmetricHash() {
		t.Error("symmetric hash is not symmetric")
	}
	if k.Hash() == k.Reverse().Hash() {
		t.Error("directional hash unexpectedly symmetric (collision?)")
	}
}

func TestFromDecoder(t *testing.T) {
	b := packet.NewBuilder()
	frame := b.BuildUDP4(
		packet.Ethernet{Type: packet.EtherTypeIPv4},
		packet.IPv4{Version: 4, TTL: 64, Src: packet.IPv4Addr{1, 1, 1, 1}, Dst: packet.IPv4Addr{2, 2, 2, 2}},
		packet.UDP{SrcPort: 5, DstPort: 6}, nil)
	d := packet.NewDecoder()
	if _, err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	k, ok := flow.FromDecoder(d)
	if !ok {
		t.Fatal("no flow extracted")
	}
	if k.SrcPort != 5 || k.DstPort != 6 || k.Proto != packet.ProtoUDP {
		t.Errorf("key = %v", k)
	}
}

func TestTableTouchAndLookup(t *testing.T) {
	tbl := flow.NewTable(time.Second, 0)
	k := key(1, 2, 3, 4)
	e := tbl.Touch(k, 100, 10*time.Millisecond)
	if e.Packets != 1 || e.Bytes != 100 {
		t.Fatalf("entry = %+v", e)
	}
	tbl.Touch(k, 50, 20*time.Millisecond)
	got, ok := tbl.Lookup(k, 30*time.Millisecond)
	if !ok || got.Packets != 2 || got.Bytes != 150 {
		t.Fatalf("lookup = %+v ok=%v", got, ok)
	}
	if tbl.Len() != 1 {
		t.Errorf("len = %d", tbl.Len())
	}
}

func TestTableTTLExpiry(t *testing.T) {
	tbl := flow.NewTable(100*time.Millisecond, 0)
	k := key(1, 2, 3, 4)
	tbl.Touch(k, 10, 0)
	if _, ok := tbl.Lookup(k, 50*time.Millisecond); !ok {
		t.Fatal("entry expired too early")
	}
	if _, ok := tbl.Lookup(k, 200*time.Millisecond); ok {
		t.Fatal("entry did not expire")
	}
}

func TestTableSweep(t *testing.T) {
	tbl := flow.NewTable(time.Millisecond, 0)
	for i := 0; i < 50; i++ {
		tbl.Touch(key(byte(i), 2, 3, 4), 10, 0)
	}
	if n := tbl.Sweep(time.Second); n != 50 {
		t.Errorf("swept %d, want 50", n)
	}
	if tbl.Len() != 0 {
		t.Errorf("len = %d after sweep", tbl.Len())
	}
}

func TestTableBoundEviction(t *testing.T) {
	tbl := flow.NewTable(0, 16)
	for i := 0; i < 200; i++ {
		tbl.Touch(key(byte(i), byte(i/255), uint16(i), 4), 10, time.Duration(i))
	}
	if tbl.Len() > 16 {
		t.Errorf("len = %d, want ≤ 16", tbl.Len())
	}
}

func TestSnapshotRestore(t *testing.T) {
	tbl := flow.NewTable(0, 0)
	for i := 0; i < 20; i++ {
		tbl.Touch(key(byte(i), 2, 3, 4), i*10, time.Duration(i))
	}
	snap := tbl.Snapshot()
	if len(snap) != 20 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
	tbl2 := flow.NewTable(0, 0)
	tbl2.Restore(snap)
	if tbl2.Len() != 20 {
		t.Fatalf("restored = %d entries", tbl2.Len())
	}
	e, ok := tbl2.Lookup(key(5, 2, 3, 4), time.Hour)
	if !ok || e.Bytes != 50 {
		t.Fatalf("restored entry = %+v ok=%v", e, ok)
	}
}

func TestDelete(t *testing.T) {
	tbl := flow.NewTable(0, 0)
	k := key(9, 2, 3, 4)
	tbl.Touch(k, 1, 0)
	if !tbl.Delete(k) {
		t.Error("delete existing returned false")
	}
	if tbl.Delete(k) {
		t.Error("delete missing returned true")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tbl := flow.NewTable(0, 0)
	for i := 0; i < 10; i++ {
		tbl.Touch(key(byte(i), 2, 3, 4), 1, 0)
	}
	n := 0
	tbl.Range(func(*flow.Entry) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

// Property: SymmetricHash is invariant under direction reversal for random
// keys, and Canonical is idempotent.
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := flow.Key{
			SrcIP:   packet.IPv4FromUint32(r.Uint32()),
			DstIP:   packet.IPv4FromUint32(r.Uint32()),
			SrcPort: uint16(r.Intn(65536)),
			DstPort: uint16(r.Intn(65536)),
			Proto:   packet.IPProto(r.Intn(256)),
		}
		if k.SymmetricHash() != k.Reverse().SymmetricHash() {
			return false
		}
		c := k.Canonical()
		return c == c.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: table counters equal the sum of touches for any sequence.
func TestPropertyTableAccounting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := flow.NewTable(0, 0)
		keys := make([]flow.Key, 1+r.Intn(8))
		for i := range keys {
			keys[i] = key(byte(i), 7, uint16(i), 99)
		}
		wantPkts := make(map[flow.Key]uint64)
		wantBytes := make(map[flow.Key]uint64)
		for i := 0; i < 500; i++ {
			k := keys[r.Intn(len(keys))]
			n := r.Intn(1500)
			tbl.Touch(k, n, time.Duration(i))
			wantPkts[k]++
			wantBytes[k] += uint64(n)
		}
		for k, wp := range wantPkts {
			e, ok := tbl.Lookup(k, time.Hour)
			if !ok || e.Packets != wp || e.Bytes != wantBytes[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
