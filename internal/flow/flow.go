// Package flow provides flow identification for the NF dataplane: 5-tuple
// keys extracted from decoded packets, a symmetric non-cryptographic hash
// suitable for load balancing (both directions of a connection map to the
// same value, as in gopacket's FastHash), and a sharded flow table with TTL
// eviction used by the Monitor, NAT and Firewall NFs.
package flow

import (
	"fmt"

	"repro/internal/packet"
)

// Key is a canonical IPv4 5-tuple. It is comparable and therefore usable as
// a map key.
type Key struct {
	SrcIP   packet.IPv4Addr
	DstIP   packet.IPv4Addr
	SrcPort uint16
	DstPort uint16
	Proto   packet.IPProto
}

// String renders the key as "proto src:port>dst:port".
func (k Key) String() string {
	return fmt.Sprintf("%v %v:%d>%v:%d", k.Proto, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// Reverse returns the key for the opposite direction of the same flow.
func (k Key) Reverse() Key {
	return Key{
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
		Proto:   k.Proto,
	}
}

// Canonical returns the direction-independent form of the key: the
// (IP, port) endpoint pair is ordered so that both directions produce the
// same canonical key.
func (k Key) Canonical() Key {
	if less(k.DstIP, k.SrcIP) || (k.DstIP == k.SrcIP && k.DstPort < k.SrcPort) {
		return k.Reverse()
	}
	return k
}

func less(a, b packet.IPv4Addr) bool { return a.Uint32() < b.Uint32() }

// FromDecoder extracts the flow key from the most recent Decode of d. ok is
// false when the packet has no IPv4 layer. Non-TCP/UDP packets produce a key
// with zero ports.
func FromDecoder(d *packet.Decoder) (k Key, ok bool) {
	if !d.Has(packet.LayerIPv4) {
		return Key{}, false
	}
	k.SrcIP = d.IP4.Src
	k.DstIP = d.IP4.Dst
	k.Proto = d.IP4.Protocol
	k.SrcPort = d.SrcPort()
	k.DstPort = d.DstPort()
	return k, true
}

// fnv-1a constants (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvAddr(h uint64, a packet.IPv4Addr) uint64 {
	h = fnvByte(h, a[0])
	h = fnvByte(h, a[1])
	h = fnvByte(h, a[2])
	return fnvByte(h, a[3])
}

func fnvPort(h uint64, p uint16) uint64 {
	h = fnvByte(h, byte(p>>8))
	return fnvByte(h, byte(p))
}

// Hash returns a direction-sensitive FNV-1a hash of the key.
func (k Key) Hash() uint64 {
	h := uint64(fnvOffset)
	h = fnvAddr(h, k.SrcIP)
	h = fnvAddr(h, k.DstIP)
	h = fnvPort(h, k.SrcPort)
	h = fnvPort(h, k.DstPort)
	return fnvByte(h, byte(k.Proto))
}

// SymmetricHash returns a hash that is identical for both directions of a
// flow (A→B and B→A), the property load balancers need to keep a connection
// pinned to one backend. It hashes the canonical form.
func (k Key) SymmetricHash() uint64 {
	return k.Canonical().Hash()
}
