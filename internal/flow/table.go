package flow

import (
	"sync"
	"time"
)

// Entry is the per-flow state kept by Table: byte/packet counts and
// timestamps, plus an opaque user value for NFs that attach their own state
// (e.g. NAT bindings).
type Entry struct {
	Key       Key
	Packets   uint64
	Bytes     uint64
	FirstSeen time.Duration
	LastSeen  time.Duration
	Value     any
}

// Table is a sharded, concurrency-safe flow table with lazy TTL eviction.
// Time is virtual (supplied by the caller) so the table behaves identically
// under the discrete-event simulator and the live emulator.
type Table struct {
	shards [tableShards]tableShard
	ttl    time.Duration
	maxPer int
}

const tableShards = 16

type tableShard struct {
	mu sync.Mutex
	m  map[Key]*Entry
}

// NewTable creates a table evicting entries idle for longer than ttl.
// maxFlows bounds the total number of entries (0 means unbounded); when the
// bound is hit, the oldest entry in the insertion shard is evicted.
func NewTable(ttl time.Duration, maxFlows int) *Table {
	t := &Table{ttl: ttl}
	if maxFlows > 0 {
		t.maxPer = (maxFlows + tableShards - 1) / tableShards
	}
	for i := range t.shards {
		t.shards[i].m = make(map[Key]*Entry)
	}
	return t
}

func (t *Table) shard(k Key) *tableShard {
	return &t.shards[k.Hash()%tableShards]
}

// Touch records a packet of the given size for key k at virtual time now,
// creating the entry if needed, and returns the entry. The returned entry
// must only be mutated while no other goroutine accesses the same key;
// NFs in this codebase respect that by sharding flows across workers.
func (t *Table) Touch(k Key, size int, now time.Duration) *Entry {
	s := t.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[k]
	if !ok {
		if t.maxPer > 0 && len(s.m) >= t.maxPer {
			s.evictOldestLocked()
		}
		e = &Entry{Key: k, FirstSeen: now}
		s.m[k] = e
	}
	e.Packets++
	e.Bytes += uint64(size)
	e.LastSeen = now
	return e
}

// Lookup returns the entry for k if present and not expired at now.
func (t *Table) Lookup(k Key, now time.Duration) (*Entry, bool) {
	s := t.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[k]
	if !ok {
		return nil, false
	}
	if t.ttl > 0 && now-e.LastSeen > t.ttl {
		delete(s.m, k)
		return nil, false
	}
	return e, true
}

// Delete removes the entry for k, reporting whether it existed.
func (t *Table) Delete(k Key) bool {
	s := t.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[k]
	delete(s.m, k)
	return ok
}

// Len returns the current number of entries (expired entries that were never
// re-touched are included until swept).
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Sweep removes all entries idle longer than the TTL as of now and returns
// how many were evicted.
func (t *Table) Sweep(now time.Duration) int {
	if t.ttl <= 0 {
		return 0
	}
	evicted := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.m {
			if now-e.LastSeen > t.ttl {
				delete(s.m, k)
				evicted++
			}
		}
		s.mu.Unlock()
	}
	return evicted
}

// Range calls fn for a snapshot of every entry; fn must not retain the
// entry pointer beyond the call. Iteration order is unspecified.
func (t *Table) Range(fn func(*Entry) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		entries := make([]*Entry, 0, len(s.m))
		for _, e := range s.m {
			entries = append(entries, e)
		}
		s.mu.Unlock()
		for _, e := range entries {
			if !fn(e) {
				return
			}
		}
	}
}

// Snapshot returns copies of all entries, used by migration to transfer NF
// state between devices.
func (t *Table) Snapshot() []Entry {
	var out []Entry
	t.Range(func(e *Entry) bool {
		out = append(out, *e)
		return true
	})
	return out
}

// Restore installs entries (e.g. from a migration snapshot), overwriting any
// existing state for the same keys.
func (t *Table) Restore(entries []Entry) {
	for _, e := range entries {
		cp := e
		s := t.shard(e.Key)
		s.mu.Lock()
		s.m[e.Key] = &cp
		s.mu.Unlock()
	}
}

func (s *tableShard) evictOldestLocked() {
	var oldest *Entry
	for _, e := range s.m {
		if oldest == nil || e.LastSeen < oldest.LastSeen {
			oldest = e
		}
	}
	if oldest != nil {
		delete(s.m, oldest.Key)
	}
}
