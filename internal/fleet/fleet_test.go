package fleet_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/fleet"
	"repro/internal/orchestrator"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

const (
	tenantMover    = "mover"
	tenantNeighbor = "neighbor"
)

// server is one test server: a runtime pre-provisioned with every tenant's
// chain, its live loop, its agent, and per-chain delivery counters.
type server struct {
	id        fleet.ServerID
	rt        *emul.Runtime
	live      *orchestrator.Live
	delivered [2]atomic.Uint64 // frames out, by chain index
}

// newServer builds a two-tenant server: mover (a stateful Monitor) at chain
// 0 and neighbor (a Logger) at chain 1, both on the SmartNIC.
func newServer(t *testing.T, id fleet.ServerID, tr fleet.Transport) *server {
	t.Helper()
	mover, err := chain.New(tenantMover,
		chain.Element{Name: "mov-mon", Type: device.TypeMonitor, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := chain.New(tenantNeighbor,
		chain.Element{Name: "nbr-log", Type: device.TypeLogger, Loc: device.KindSmartNIC},
	)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := emul.New(emul.Config{
		Chains:  []*chain.Chain{mover, neighbor},
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		Scale:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &server{id: id, rt: rt}
	rt.SetChainEgressTap(func(ci int, _ []byte) {
		if ci >= 0 && ci < len(s.delivered) {
			s.delivered[ci].Add(1)
		}
	})
	rt.Start()
	t.Cleanup(func() { rt.Close() })

	p := scenario.DefaultParams()
	live, err := orchestrator.NewLive(rt, orchestrator.Config{
		PollEvery:     10 * time.Millisecond,
		MultiSelector: core.MultiPAM{},
	}, scenario.View(nil, p, 0))
	if err != nil {
		t.Fatal(err)
	}
	s.live = live
	if _, err := fleet.NewAgent(id, live, tr); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCrossServerMigrationKeepsNeighborDelivered is the satellite -race
// test: while the mover tenant's chain migrates server A → server B, both
// servers' co-resident neighbor traffic keeps flowing, and the mover's own
// frames — rerouted mid-flight by the registry flip — survive via the
// destination's freeze buffers. Senders, both dataplanes, both agents and
// the coordinator all run concurrently.
func TestCrossServerMigrationKeepsNeighborDelivered(t *testing.T) {
	tr := fleet.NewChanTransport()
	defer tr.Close()
	a := newServer(t, "srv-a", tr)
	b := newServer(t, "srv-b", tr)
	byID := map[fleet.ServerID]*server{a.id: a, b.id: b}

	reg, err := fleet.NewRegistry(a.id, b.id)
	if err != nil {
		t.Fatal(err)
	}
	if s := reg.Assign(tenantMover, 1.0); s != a.id {
		t.Fatalf("mover assigned to %s", s)
	}
	reg.Assign(tenantNeighbor, 1.0) // lands on b; a's neighbor chain is driven directly
	coord := fleet.NewCoordinator(reg, tr, fleet.CoordinatorConfig{})

	// Seed the mover's Monitor with state worth shipping.
	synth := traffic.NewSynth(8, 3)
	for i := 0; i < 200; i++ {
		a.rt.SendChain(0, synth.Frame(uint64(i%8), 512))
	}
	a.rt.Drain()

	stop := make(chan struct{})
	senderDone := make(chan struct{})
	var moverSent, nbrASent, nbrBSent atomic.Uint64
	go func() {
		defer close(senderDone)
		sy := traffic.NewSynth(8, 11)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Mover traffic follows the registry — the flip mid-migration
			// reroutes it into srv-b's frozen chain, where it buffers.
			home, _ := reg.Lookup(tenantMover)
			if byID[home].rt.SendChain(0, sy.Frame(uint64(i%8), 512)) {
				moverSent.Add(1)
			}
			// Neighbor traffic on both servers, unaffected throughout.
			if a.rt.SendChain(1, sy.Frame(uint64(i%8), 512)) {
				nbrASent.Add(1)
			}
			if b.rt.SendChain(1, sy.Frame(uint64(i%8), 512)) {
				nbrBSent.Add(1)
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	m, err := coord.Migrate(tenantMover, b.id)
	if err != nil {
		t.Fatalf("Migrate: %v\nlog: %s", err, strings.Join(coord.Log(), "\n"))
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	<-senderDone
	a.rt.Drain()
	b.rt.Drain()

	if m.From != a.id || m.To != b.id {
		t.Errorf("migration %v, want srv-a -> srv-b", m)
	}
	if m.StateBytes == 0 {
		t.Error("no NF state shipped for a stateful Monitor chain")
	}
	if home, _ := reg.Lookup(tenantMover); home != b.id {
		t.Errorf("registry still routes mover to %s", home)
	}
	// The parked source chain rejects traffic.
	if a.rt.SendChain(0, synth.Frame(0, 512)) {
		t.Error("parked source chain accepted a frame after handoff")
	}

	// Neighbors: delivered within tolerance of accepted on both servers.
	for _, tc := range []struct {
		name      string
		sent, got uint64
	}{
		{"neighbor@a", nbrASent.Load(), a.delivered[1].Load()},
		{"neighbor@b", nbrBSent.Load(), b.delivered[1].Load()},
	} {
		if tc.sent == 0 {
			t.Fatalf("%s sent nothing", tc.name)
		}
		if frac := float64(tc.got) / float64(tc.sent); frac < 0.9 {
			t.Errorf("%s delivered %d/%d (%.2f), want >= 0.9 despite the concurrent migration",
				tc.name, tc.got, tc.sent, frac)
		}
	}
	// The mover's accepted frames survive the handoff: drained on the
	// source before the snapshot, or buffered and replayed on the
	// destination.
	moverGot := a.delivered[0].Load() + b.delivered[0].Load()
	moverAccepted := moverSent.Load() + 200 // plus the state-seeding frames
	if frac := float64(moverGot) / float64(moverAccepted); frac < 0.95 {
		t.Errorf("mover delivered %d/%d (%.2f) across the handoff, want >= 0.95",
			moverGot, moverAccepted, frac)
	}
	if b.delivered[0].Load() == 0 {
		t.Error("destination delivered no mover frames after the handoff")
	}
	// The source loop learned of the departure (cooldown event).
	var external bool
	for _, e := range a.live.Events() {
		if e.Kind == orchestrator.EventExternal {
			external = true
		}
	}
	if !external {
		t.Errorf("source loop recorded no external-move event:\n%s", a.live.Describe())
	}
}

func TestMigrateValidation(t *testing.T) {
	tr := fleet.NewChanTransport()
	defer tr.Close()
	a := newServer(t, "va", tr)
	_ = newServer(t, "vb", tr)
	reg, err := fleet.NewRegistry("va", "vb")
	if err != nil {
		t.Fatal(err)
	}
	reg.Assign(tenantMover, 1.0)
	coord := fleet.NewCoordinator(reg, tr, fleet.CoordinatorConfig{})
	if _, err := coord.Migrate("ghost", "vb"); err == nil {
		t.Error("migrating an unknown tenant succeeded")
	}
	if _, err := coord.Migrate(tenantMover, "va"); err == nil {
		t.Error("migrating a tenant onto its own server succeeded")
	}
	_ = a
}

func TestAgentProtocolGuards(t *testing.T) {
	tr := fleet.NewChanTransport()
	defer tr.Close()
	_ = newServer(t, "pg", tr)

	if _, err := tr.Call("pg", fleet.FinalizeRequest{Tenant: tenantMover, Ok: true}); err == nil {
		t.Error("finalize without detach accepted")
	}
	if _, err := tr.Call("pg", fleet.CommitReceiveRequest{Tenant: tenantMover}); err == nil {
		t.Error("commit without prepare accepted")
	}
	if _, err := tr.Call("pg", fleet.AbortReceiveRequest{Tenant: tenantMover}); err == nil {
		t.Error("abort without prepare accepted")
	}
	if _, err := tr.Call("pg", fleet.DetachRequest{Tenant: "ghost"}); err == nil {
		t.Error("detach of an unhosted tenant accepted")
	}
	// Prepare then abort leaves the server fully serviceable.
	if _, err := tr.Call("pg", fleet.PrepareReceiveRequest{Tenant: tenantMover}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call("pg", fleet.PrepareReceiveRequest{Tenant: tenantMover}); err == nil {
		t.Error("double prepare accepted")
	}
	if _, err := tr.Call("pg", fleet.AbortReceiveRequest{Tenant: tenantMover}); err != nil {
		t.Fatal(err)
	}
}

func TestChanTransportLifecycle(t *testing.T) {
	tr := fleet.NewChanTransport()
	if err := tr.Register("x", func(fleet.Request) (fleet.Reply, error) {
		return fleet.StatusReply{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register("x", nil); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := tr.Call("nope", fleet.StatusRequest{}); err == nil {
		t.Error("call to unregistered server succeeded")
	}
	if _, err := tr.Call("x", fleet.StatusRequest{}); err != nil {
		t.Errorf("call failed: %v", err)
	}
	if err := tr.Escalate(fleet.Escalation{Server: "x"}); err != nil {
		t.Errorf("escalate failed: %v", err)
	}
	select {
	case e := <-tr.Escalations():
		if e.Server != "x" {
			t.Errorf("escalation from %s", e.Server)
		}
	default:
		t.Error("escalation not delivered")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := tr.Call("x", fleet.StatusRequest{}); err == nil {
		t.Error("call after close succeeded")
	}
	if err := tr.Escalate(fleet.Escalation{}); err == nil {
		t.Error("escalate after close succeeded")
	}
	if _, open := <-tr.Escalations(); open {
		t.Error("escalation stream still open after close")
	}
	if err := tr.Register("y", nil); err == nil {
		t.Error("register after close succeeded")
	}
}
