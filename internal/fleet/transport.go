package fleet

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/emul"
)

// Transport carries every coordinator↔agent exchange: synchronous staged
// RPCs coordinator→agent (Call) and the asynchronous escalation stream
// agent→coordinator (Escalate / Escalations). Keeping the boundary here
// means the same coordinator logic would drive a wire transport; the
// in-process ChanTransport below keeps the whole fleet in one -race test
// binary.
type Transport interface {
	// Register installs a server's request handler. One handler per server.
	Register(id ServerID, h Handler) error
	// Call delivers a request to a server and blocks for its reply.
	Call(id ServerID, req Request) (Reply, error)
	// Escalate enqueues a server's scale-out report for the coordinator.
	// It must not block: it is called from the per-server polling
	// goroutine with the loop's decision lock held.
	Escalate(e Escalation) error
	// Escalations is the coordinator's receive side; closed by Close.
	Escalations() <-chan Escalation
	// Close tears the transport down; subsequent calls fail.
	Close() error
}

// Handler serves one server's side of the staged protocol.
type Handler func(Request) (Reply, error)

// Request is a coordinator→agent message. The concrete types below are the
// protocol's stages.
type Request interface{ isRequest() }

// Reply is an agent's response to a Request.
type Reply interface{ isReply() }

// StatusRequest asks a server for its current load picture.
type StatusRequest struct{}

// StatusReply is the server's answer: its last closed sampling window and
// the detector's hot state.
type StatusReply struct {
	Load emul.LoadSample
	// Hot reports whether the server is in (or has not yet recovered from)
	// an overload episode: its detector is fired, or the smoothed
	// utilization is still above the hysteresis clear threshold.
	Hot bool
}

// PrepareReceiveRequest (coordinator→destination) opens a handoff: the
// destination suspends its local loop and freezes the tenant's
// pre-provisioned chain so rerouted traffic buffers losslessly.
type PrepareReceiveRequest struct{ Tenant string }

// PrepareReceiveReply acknowledges the freeze.
type PrepareReceiveReply struct{}

// DetachRequest (coordinator→source) extracts the tenant: quiesce ingress,
// drain in-flight frames, freeze, snapshot. The source loop stays
// suspended until FinalizeRequest.
type DetachRequest struct{ Tenant string }

// DetachReply carries the chain's migratable image.
type DetachReply struct{ Snapshot emul.ChainSnapshot }

// CommitReceiveRequest (coordinator→destination) installs the snapshot and
// thaws: buffered reroutes replay, the destination loop resumes.
type CommitReceiveRequest struct {
	Tenant   string
	Snapshot emul.ChainSnapshot
}

// CommitReceiveReply reports what the install moved.
type CommitReceiveReply struct {
	StateBytes int
	Buffered   int
}

// FinalizeRequest (coordinator→source) ends the handoff. Ok=true parks the
// source chain (quiesced and frozen, its demand gone from the server);
// Ok=false is the abort path: ingress reopens and the chain resumes as if
// nothing happened. Either way the source loop resumes.
type FinalizeRequest struct {
	Tenant string
	Ok     bool
}

// FinalizeReply acknowledges the finalize.
type FinalizeReply struct{}

// AbortReceiveRequest (coordinator→destination) unwinds PrepareReceive
// when a later stage failed: the frozen chain thaws untouched and the
// destination loop resumes.
type AbortReceiveRequest struct{ Tenant string }

// AbortReceiveReply acknowledges the unwind.
type AbortReceiveReply struct{}

func (StatusRequest) isRequest()         {}
func (PrepareReceiveRequest) isRequest() {}
func (DetachRequest) isRequest()         {}
func (CommitReceiveRequest) isRequest()  {}
func (FinalizeRequest) isRequest()       {}
func (AbortReceiveRequest) isRequest()   {}

func (StatusReply) isReply()         {}
func (PrepareReceiveReply) isReply() {}
func (DetachReply) isReply()         {}
func (CommitReceiveReply) isReply()  {}
func (FinalizeReply) isReply()       {}
func (AbortReceiveReply) isReply()   {}

// escalationBuffer bounds the coordinator's inbox. Escalations repeat
// (the per-server loop re-arms and re-fires while hot), so dropping one
// under a full buffer loses nothing but latency.
const escalationBuffer = 64

// ChanTransport is the in-process Transport: one serving goroutine per
// registered server, channel-backed RPC, a buffered escalation stream.
type ChanTransport struct {
	mu      sync.Mutex
	servers map[ServerID]chan rpc
	wg      sync.WaitGroup
	esc     chan Escalation
	// quit, closed by Close, releases in-flight Calls and stops the
	// serving goroutines; the rpc channels themselves stay open so a
	// racing Call can never send on a closed channel.
	quit   chan struct{}
	closed bool
}

type rpc struct {
	req   Request
	reply chan rpcReply
}

type rpcReply struct {
	rep Reply
	err error
}

// NewChanTransport builds an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{
		servers: make(map[ServerID]chan rpc),
		esc:     make(chan Escalation, escalationBuffer),
		quit:    make(chan struct{}),
	}
}

// Register implements Transport: it spawns the server's serving goroutine.
// All requests to one server execute serially on it, which is the staged
// protocol's per-server ordering guarantee.
func (t *ChanTransport) Register(id ServerID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("fleet: transport closed")
	}
	if _, dup := t.servers[id]; dup {
		return fmt.Errorf("fleet: server %q already registered", id)
	}
	ch := make(chan rpc)
	t.servers[id] = ch
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case <-t.quit:
				return
			case c := <-ch:
				rep, err := h(c.req)
				c.reply <- rpcReply{rep: rep, err: err}
			}
		}
	}()
	return nil
}

// Call implements Transport. The coordinator boundary is control plane by
// construction — every Call crosses a channel rendezvous and blocks for
// the agent's staged work.
//
//pam:slowpath
func (t *ChanTransport) Call(id ServerID, req Request) (Reply, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("fleet: transport closed")
	}
	ch, ok := t.servers[id]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: no server %q", id)
	}
	c := rpc{req: req, reply: make(chan rpcReply, 1)}
	select {
	case ch <- c:
	case <-t.quit:
		return nil, errors.New("fleet: transport closed")
	}
	select {
	case r := <-c.reply:
		return r.rep, r.err
	case <-t.quit:
		return nil, errors.New("fleet: transport closed")
	}
}

// Escalate implements Transport. Non-blocking by contract: the report is
// dropped (with an error) when the coordinator's inbox is full, because
// the per-server loop re-fires the same verdict after its next hot streak.
//
//pam:slowpath
func (t *ChanTransport) Escalate(e Escalation) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return errors.New("fleet: transport closed")
	}
	select {
	case t.esc <- e:
		return nil
	default:
		return fmt.Errorf("fleet: escalation inbox full, dropped report from %s", e.Server)
	}
}

// Escalations implements Transport.
func (t *ChanTransport) Escalations() <-chan Escalation { return t.esc }

// Close implements Transport: server goroutines drain and exit, then the
// escalation stream closes so a coordinator ranging over it terminates.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.servers = map[ServerID]chan rpc{}
	t.mu.Unlock()
	close(t.quit)
	t.wg.Wait()
	close(t.esc)
	return nil
}
