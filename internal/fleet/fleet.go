// Package fleet is the cross-server tier above the per-server control
// loop: a Coordinator owning the tenant→server placement registry and one
// Agent per server, each wrapping an orchestrator.Live / emul.Runtime pair
// as the leaf.
//
// The per-server loop handles overload by pushing border vNFs across its
// own SmartNIC↔CPU boundary (the paper's PAM). When that search hits the
// paper's terminal case — both devices hot, no feasible Multi-PAM plan —
// the loop no longer dead-ends: it reports a structured core.Escalation
// upward, and the coordinator relieves the server by migrating the
// offending tenant's whole chain to a calm server. That is the paper's
// "scale out" arrow, mechanized: push your neighbor aside first; when
// every neighbor on the box is hot too, push the tenant to the next box.
//
// Cross-server chain migration is staged (prepare → detach → commit →
// finalize) over a Transport, with the destination's pre-provisioned chain
// frozen before traffic reroutes so rerouted frames buffer and replay
// instead of dropping, and the source's chain quiesced, drained and
// snapshot under a suspended local loop. All coordinator↔agent
// communication crosses the Transport boundary; the in-process
// ChanTransport keeps the whole fleet in one test binary, -race clean.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/emul"
)

// ServerID names one server (one Agent / runtime pair) in the fleet.
type ServerID string

// Escalation is a server-level scale-out report: the per-server loop's
// structured terminal-case verdict, stamped with the reporting server and
// the per-tenant load breakdown the coordinator ranks offenders by.
type Escalation struct {
	Server ServerID
	Core   core.Escalation
	// Chains is the escalating window's per-tenant breakdown (demand per
	// device, delivered, loss), copied from the server's last load sample.
	Chains []emul.ChainLoad
}

func (e Escalation) String() string {
	return fmt.Sprintf("server %s: %v", e.Server, e.Core)
}

// Sample is fleet-level telemetry: one server's measured load window.
type Sample struct {
	Server ServerID
	Load   emul.LoadSample
}

// Migration records one executed cross-server chain migration.
type Migration struct {
	Tenant string
	From   ServerID
	To     ServerID
	// Reason is the escalation verdict that triggered the move; zero-valued
	// for rebalance-driven moves.
	Reason core.EscalationReason
	// StateBytes is the serialized NF state shipped source→destination.
	StateBytes int
	// Buffered counts frames that arrived at the destination during the
	// freeze window and replayed after the thaw.
	Buffered int
	// Took is the wall-clock span of the staged sequence (prepare→finalize).
	Took time.Duration
}

func (m Migration) String() string {
	return fmt.Sprintf("%s: %s -> %s (%d state bytes, %d replayed, %v)",
		m.Tenant, m.From, m.To, m.StateBytes, m.Buffered, m.Took)
}
