package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the coordinator's tenant→server placement map. Placement is
// traffic routing: every server pre-provisions every tenant's chain, so
// "tenant T lives on server S" means T's frames are sent to S's runtime
// and T's chain on every other server sits parked. Assignment is
// weighted-least-loaded with deterministic tie-breaks (declaration order),
// so a seeded churn sequence always reproduces the same placements.
type Registry struct {
	mu      sync.RWMutex
	servers []ServerID
	rank    map[ServerID]int // declaration order, the tie-break
	tenants map[string]ServerID
	weights map[string]float64
}

// RegistryMove is one rebalance step: move the tenant From→To.
type RegistryMove struct {
	Tenant string
	From   ServerID
	To     ServerID
}

// NewRegistry builds a registry over the given servers, in the order that
// breaks load ties.
func NewRegistry(servers ...ServerID) (*Registry, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("fleet: registry needs at least one server")
	}
	r := &Registry{
		servers: append([]ServerID(nil), servers...),
		rank:    make(map[ServerID]int, len(servers)),
		tenants: make(map[string]ServerID),
		weights: make(map[string]float64),
	}
	for i, s := range servers {
		if _, dup := r.rank[s]; dup {
			return nil, fmt.Errorf("fleet: duplicate server %q", s)
		}
		r.rank[s] = i
	}
	return r, nil
}

// Servers returns the fleet's servers in declaration order.
func (r *Registry) Servers() []ServerID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]ServerID(nil), r.servers...)
}

// Assign places an arriving tenant on the least-loaded server (by summed
// tenant weight, ties by declaration order) and returns it. Re-assigning an
// existing tenant updates its weight in place without moving it.
func (r *Registry) Assign(tenant string, weight float64) ServerID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.tenants[tenant]; ok {
		r.weights[tenant] = weight
		return s
	}
	best := r.leastLoaded()
	r.tenants[tenant] = best
	r.weights[tenant] = weight
	return best
}

// leastLoaded picks the min-load server, ties by declaration order.
// Callers hold mu.
func (r *Registry) leastLoaded() ServerID {
	best := r.servers[0]
	bestLoad := r.load(best)
	for _, s := range r.servers[1:] {
		if l := r.load(s); l < bestLoad {
			best, bestLoad = s, l
		}
	}
	return best
}

// load sums the weights placed on s. Callers hold mu.
func (r *Registry) load(s ServerID) float64 {
	var sum float64
	for t, on := range r.tenants {
		if on == s {
			sum += r.weights[t]
		}
	}
	return sum
}

// Remove deletes a departing tenant.
func (r *Registry) Remove(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tenants, tenant)
	delete(r.weights, tenant)
}

// Lookup returns the tenant's server.
func (r *Registry) Lookup(tenant string) (ServerID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.tenants[tenant]
	return s, ok
}

// SetWeight updates a placed tenant's weight (the coordinator refreshes it
// from measured per-chain demand).
func (r *Registry) SetWeight(tenant string, weight float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[tenant]; ok {
		r.weights[tenant] = weight
	}
}

// Move repoints a tenant at a server (the routing flip of a cross-server
// migration).
func (r *Registry) Move(tenant string, to ServerID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.rank[to]; !ok {
		return fmt.Errorf("fleet: unknown server %q", to)
	}
	if _, ok := r.tenants[tenant]; !ok {
		return fmt.Errorf("fleet: unknown tenant %q", tenant)
	}
	r.tenants[tenant] = to
	return nil
}

// Load returns the summed tenant weight placed on s.
func (r *Registry) Load(s ServerID) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.load(s)
}

// Placements returns each server's tenants, sorted, keyed by server.
func (r *Registry) Placements() map[ServerID][]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[ServerID][]string, len(r.servers))
	for _, s := range r.servers {
		out[s] = nil
	}
	for t, s := range r.tenants {
		out[s] = append(out[s], t)
	}
	for _, ts := range out {
		sort.Strings(ts)
	}
	return out
}

// Rebalance computes up to maxMoves tenant moves that shrink the fleet's
// load spread: each step moves the lightest tenant off the most-loaded
// server that still lands the pair closer together, stopping when no move
// helps. maxMoves <= 0 means unbounded. The result is deterministic for a
// given placement (sorted iteration, declaration-order ties) and is a
// *plan* — the caller routes each move through the staged migration to
// make it real.
func (r *Registry) Rebalance(maxMoves int) []RegistryMove {
	r.mu.Lock()
	defer r.mu.Unlock()
	var plan []RegistryMove
	// Each accepted move strictly shrinks the mover pair's gap, but the
	// global spread is recomputed per step; the tenant-count bound keeps a
	// pathological placement from cycling.
	for i := 0; i < len(r.tenants) && (maxMoves <= 0 || len(plan) < maxMoves); i++ {
		mv, ok := r.bestMove()
		if !ok {
			break
		}
		r.tenants[mv.Tenant] = mv.To
		plan = append(plan, mv)
	}
	return plan
}

// bestMove finds the single move that most reduces the max-min load gap,
// or ok=false when none helps. Callers hold mu.
func (r *Registry) bestMove() (RegistryMove, bool) {
	if len(r.servers) < 2 {
		return RegistryMove{}, false
	}
	hi, lo := r.servers[0], r.servers[0]
	hiLoad, loLoad := r.load(hi), r.load(lo)
	for _, s := range r.servers[1:] {
		l := r.load(s)
		if l > hiLoad {
			hi, hiLoad = s, l
		}
		if l < loLoad {
			lo, loLoad = s, l
		}
	}
	gap := hiLoad - loLoad
	if gap <= 0 {
		return RegistryMove{}, false
	}
	// Among the hot server's tenants, the one whose weight sits closest to
	// half the gap leaves the pair most even after the move (a weight w
	// turns the pairwise gap into |gap−2w|, minimized at w = gap/2); any
	// 0 < w < gap strictly shrinks it. Names sorted so ties are
	// deterministic.
	var names []string
	for t, s := range r.tenants {
		if s == hi {
			names = append(names, t)
		}
	}
	sort.Strings(names)
	best, bestAfter := "", gap
	for _, t := range names {
		w := r.weights[t]
		if w <= 0 || w >= gap {
			continue
		}
		after := gap - 2*w
		if after < 0 {
			after = -after
		}
		if after < bestAfter {
			best, bestAfter = t, after
		}
	}
	if best == "" {
		return RegistryMove{}, false
	}
	return RegistryMove{Tenant: best, From: hi, To: lo}, true
}
