package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
)

// Agent is one server's fleet endpoint: it wraps the server's control loop
// (orchestrator.Live) and dataplane (emul.Runtime) as the leaf, forwards
// the loop's scale-out escalations to the coordinator, and executes the
// staged handoff protocol against the local runtime. Tenants are addressed
// by chain name — every server pre-provisions every tenant's chain, so the
// agent resolves a tenant to a local chain index with Runtime.ChainIndex.
type Agent struct {
	id   ServerID
	live *orchestrator.Live
	tr   Transport
	// drainTimeout bounds DetachRequest's wait for in-flight frames.
	drainTimeout time.Duration

	mu sync.Mutex
	// detachResume holds the source-side loop release between Detach and
	// Finalize; recvResume the destination-side release between
	// PrepareReceive and CommitReceive/AbortReceive. Keyed by tenant so a
	// protocol violation (double prepare, finalize without detach) is an
	// error instead of a leaked lock.
	detachResume map[string]func()
	recvResume   map[string]func()
}

// NewAgent registers a server on the transport and wires the loop's
// escalation hook to it. The loop keeps running exactly as before — the
// agent only adds the upward report and the externally-driven handoff
// path.
func NewAgent(id ServerID, live *orchestrator.Live, tr Transport) (*Agent, error) {
	if live == nil {
		return nil, errors.New("fleet: agent needs a live loop")
	}
	a := &Agent{
		id:           id,
		live:         live,
		tr:           tr,
		drainTimeout: 2 * time.Second,
		detachResume: make(map[string]func()),
		recvResume:   make(map[string]func()),
	}
	if err := tr.Register(id, a.handle); err != nil {
		return nil, err
	}
	// The hook runs on the polling goroutine with the loop's decision lock
	// held: build the report, enqueue it (Escalate never blocks), return.
	live.OnEscalation(func(ce core.Escalation) {
		e := Escalation{Server: id, Core: ce}
		if ls, ok := live.LastSample(); ok {
			e.Chains = ls.Chains
		}
		_ = a.tr.Escalate(e) // a dropped report re-fires next hot streak
	})
	return a, nil
}

// ID returns the server this agent fronts.
func (a *Agent) ID() ServerID { return a.id }

// handle serves the coordinator's staged protocol. Requests to one agent
// execute serially (the transport's per-server ordering), so the stage
// bookkeeping needs no further synchronization beyond a.mu.
func (a *Agent) handle(req Request) (Reply, error) {
	switch r := req.(type) {
	case StatusRequest:
		// Hot must outlive the detector's fired flag: the loop re-arms the
		// detector when it escalates (so the episode can retry), which would
		// otherwise make the server look recovered to the coordinator at the
		// exact moment it reported being stuck. A server is hot until its
		// smoothed utilization re-enters the hysteresis band.
		ls, _ := a.live.LastSample()
		det := a.live.Detector()
		hot := det.Fired() || det.SmoothedUtil() >= det.Config().ClearThreshold
		return StatusReply{Load: ls, Hot: hot}, nil
	case PrepareReceiveRequest:
		return a.prepareReceive(r.Tenant)
	case DetachRequest:
		return a.detach(r.Tenant)
	case CommitReceiveRequest:
		return a.commitReceive(r.Tenant, r)
	case FinalizeRequest:
		return a.finalize(r.Tenant, r.Ok)
	case AbortReceiveRequest:
		return a.abortReceive(r.Tenant)
	default:
		return nil, fmt.Errorf("fleet: agent %s: unknown request %T", a.id, req)
	}
}

// chainFor resolves a tenant to its pre-provisioned local chain.
func (a *Agent) chainFor(tenant string) (int, error) {
	ci := a.live.Runtime().ChainIndex(tenant)
	if ci < 0 {
		return 0, fmt.Errorf("fleet: server %s hosts no chain for tenant %q", a.id, tenant)
	}
	return ci, nil
}

// prepareReceive opens the destination side: suspend the local loop (no
// local decision may touch the dataplane mid-handoff) and freeze the
// tenant's chain so traffic rerouted from here on buffers losslessly.
func (a *Agent) prepareReceive(tenant string) (Reply, error) {
	ci, err := a.chainFor(tenant)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if _, busy := a.recvResume[tenant]; busy {
		a.mu.Unlock()
		return nil, fmt.Errorf("fleet: server %s already receiving %q", a.id, tenant)
	}
	a.mu.Unlock()
	resume := a.live.Suspend()
	if err := a.live.Runtime().FreezeChain(ci); err != nil {
		resume()
		return nil, err
	}
	a.mu.Lock()
	a.recvResume[tenant] = resume
	a.mu.Unlock()
	return PrepareReceiveReply{}, nil
}

// detach extracts the tenant from the source: quiesce ingress, drain the
// pipeline, freeze, snapshot. The loop stays suspended — the chain is
// half-gone and no local decision may run — until Finalize.
func (a *Agent) detach(tenant string) (Reply, error) {
	ci, err := a.chainFor(tenant)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if _, busy := a.detachResume[tenant]; busy {
		a.mu.Unlock()
		return nil, fmt.Errorf("fleet: server %s already detaching %q", a.id, tenant)
	}
	a.mu.Unlock()
	rt := a.live.Runtime()
	resume := a.live.Suspend()
	fail := func(err error) (Reply, error) {
		_ = rt.ResumeChain(ci)
		resume()
		return nil, err
	}
	if err := rt.QuiesceChain(ci); err != nil {
		return fail(err)
	}
	if err := rt.DrainChain(ci, a.drainTimeout); err != nil {
		return fail(err)
	}
	if err := rt.FreezeChain(ci); err != nil {
		return fail(err)
	}
	snap, err := rt.SnapshotChain(ci)
	if err != nil {
		return fail(err)
	}
	a.mu.Lock()
	a.detachResume[tenant] = resume
	a.mu.Unlock()
	return DetachReply{Snapshot: snap}, nil
}

// commitReceive installs the shipped snapshot into the frozen chain and
// thaws it: buffered reroutes replay in order, the local loop learns a
// chain arrived (cooldown) and resumes.
func (a *Agent) commitReceive(tenant string, r CommitReceiveRequest) (Reply, error) {
	ci, err := a.chainFor(tenant)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	resume, ok := a.recvResume[tenant]
	a.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: server %s: commit for %q without prepare", a.id, tenant)
	}
	rt := a.live.Runtime()
	stateBytes, err := rt.RestoreChain(ci, r.Snapshot)
	if err != nil {
		// Leave the chain frozen: the coordinator unwinds with
		// AbortReceive, which thaws it untouched.
		return nil, err
	}
	buffered, err := rt.ThawChain(ci)
	if err != nil {
		return nil, err
	}
	a.live.NoteExternalMove(ci)
	a.mu.Lock()
	delete(a.recvResume, tenant)
	a.mu.Unlock()
	resume()
	return CommitReceiveReply{StateBytes: stateBytes, Buffered: buffered}, nil
}

// finalize ends the source side. Ok parks the chain as-is (quiesced and
// frozen, demand gone); !Ok is the abort path — ingress reopens and the
// chain serves again. Either way the suspended loop resumes.
func (a *Agent) finalize(tenant string, ok bool) (Reply, error) {
	ci, err := a.chainFor(tenant)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	resume, pending := a.detachResume[tenant]
	delete(a.detachResume, tenant)
	a.mu.Unlock()
	if !pending {
		return nil, fmt.Errorf("fleet: server %s: finalize for %q without detach", a.id, tenant)
	}
	if ok {
		a.live.NoteExternalMove(ci)
	} else if err := a.live.Runtime().ResumeChain(ci); err != nil {
		resume()
		return nil, err
	}
	resume()
	return FinalizeReply{}, nil
}

// abortReceive unwinds PrepareReceive after a later stage failed: the
// frozen chain thaws untouched and the loop resumes.
func (a *Agent) abortReceive(tenant string) (Reply, error) {
	ci, err := a.chainFor(tenant)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	resume, pending := a.recvResume[tenant]
	delete(a.recvResume, tenant)
	a.mu.Unlock()
	if !pending {
		return nil, fmt.Errorf("fleet: server %s: abort for %q without prepare", a.id, tenant)
	}
	if _, err := a.live.Runtime().ThawChain(ci); err != nil {
		resume()
		return nil, err
	}
	resume()
	return AbortReceiveReply{}, nil
}
