package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// CoordinatorConfig tunes the fleet tier's placement decisions.
type CoordinatorConfig struct {
	// MaxDestUtil is the demand-utilization ceiling a destination may reach
	// after absorbing the migrated tenant, on either device. Kept below the
	// detector's clear threshold so the migration lands the destination
	// calm, not merely not-yet-hot. Default 0.8.
	MaxDestUtil float64
}

func (c *CoordinatorConfig) setDefaults() {
	if c.MaxDestUtil <= 0 {
		c.MaxDestUtil = 0.8
	}
}

// Coordinator is the fleet's brain: it owns the tenant→server Registry,
// listens for per-server scale-out escalations on the Transport, picks the
// offending tenant and a calm destination, and executes the staged
// cross-server chain migration. One coordinator goroutine serves the whole
// fleet; every dataplane touch happens inside an agent, on the far side of
// a Transport call.
type Coordinator struct {
	reg *Registry
	tr  Transport
	cfg CoordinatorConfig

	mu         sync.Mutex
	migrations []Migration
	log        []string
	done       chan struct{}
}

// NewCoordinator builds a coordinator over an assembled registry and
// transport. Call Start to begin serving escalations, or drive
// HandleEscalation / Migrate directly for deterministic tests.
func NewCoordinator(reg *Registry, tr Transport, cfg CoordinatorConfig) *Coordinator {
	cfg.setDefaults()
	return &Coordinator{reg: reg, tr: tr, cfg: cfg}
}

// Registry exposes the placement map (the traffic router reads it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Start launches the serving goroutine. It exits when the transport
// closes; Wait blocks for that.
func (c *Coordinator) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done != nil {
		return
	}
	done := make(chan struct{})
	c.done = done
	go func() {
		defer close(done)
		for e := range c.tr.Escalations() {
			if _, err := c.HandleEscalation(e); err != nil {
				c.logf("escalation from %s unresolved: %v", e.Server, err)
			}
		}
	}()
}

// Wait blocks until the serving goroutine exits (the transport closed).
// No-op when Start was never called.
func (c *Coordinator) Wait() {
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	if done != nil {
		<-done
	}
}

// HandleEscalation resolves one scale-out report: re-check the server is
// still hot (the buffered stream can hold stale repeats), rank its tenants
// by the escalating window's per-chain demand, pick the calmest feasible
// destination, and run the staged migration. Returns the executed
// migration, or an error when the fleet has no feasible relief (every
// other server too close to its own ceiling).
func (c *Coordinator) HandleEscalation(e Escalation) (Migration, error) {
	rep, err := c.status(e.Server)
	if err != nil {
		return Migration{}, err
	}
	if !rep.Hot {
		// The server recovered (or a prior migration already relieved it)
		// between report and handling: a stale repeat, not a failure.
		c.logf("escalation from %s: already clear, no action", e.Server)
		return Migration{}, nil
	}
	offender, weight, err := c.pickOffender(e)
	if err != nil {
		return Migration{}, err
	}
	dest, err := c.pickDestination(e, offender)
	if err != nil {
		return Migration{}, err
	}
	m, err := c.Migrate(offender, dest)
	if err != nil {
		return Migration{}, err
	}
	m.Reason = e.Core.Reason
	c.reg.SetWeight(offender, weight)
	c.mu.Lock()
	c.migrations[len(c.migrations)-1].Reason = e.Core.Reason
	c.mu.Unlock()
	return m, nil
}

// pickOffender ranks the escalating server's tenants by their measured
// demand contribution (NIC + CPU) in the escalating window and returns the
// heaviest — the paper's aggressor, the tenant whose removal relieves the
// most. Ties break by name for determinism.
func (c *Coordinator) pickOffender(e Escalation) (tenant string, weight float64, err error) {
	resident := c.reg.Placements()[e.Server]
	if len(resident) == 0 {
		return "", 0, fmt.Errorf("fleet: %s escalated but hosts no tenants", e.Server)
	}
	demand := make(map[string]float64, len(e.Chains))
	for _, cl := range e.Chains {
		demand[cl.Name] = cl.NICDemand + cl.CPUDemand
	}
	sort.Strings(resident)
	best, bestD := "", -1.0
	for _, t := range resident {
		if d := demand[t]; d > bestD {
			best, bestD = t, d
		}
	}
	return best, bestD, nil
}

// pickDestination surveys every other server and returns the calmest one
// that can absorb the offender below the config ceiling on both devices.
func (c *Coordinator) pickDestination(e Escalation, offender string) (ServerID, error) {
	var offNIC, offCPU float64
	for _, cl := range e.Chains {
		if cl.Name == offender {
			offNIC, offCPU = cl.NICDemand, cl.CPUDemand
		}
	}
	best, bestUtil := ServerID(""), 0.0
	for _, s := range c.reg.Servers() {
		if s == e.Server {
			continue
		}
		rep, err := c.status(s)
		if err != nil {
			c.logf("candidate %s unreachable: %v", s, err)
			continue
		}
		nic := rep.Load.NIC.Utilization + offNIC
		cpu := rep.Load.CPU.Utilization + offCPU
		if rep.Hot || nic > c.cfg.MaxDestUtil || cpu > c.cfg.MaxDestUtil {
			continue
		}
		util := max(nic, cpu)
		if best == "" || util < bestUtil {
			best, bestUtil = s, util
		}
	}
	if best == "" {
		return "", fmt.Errorf("fleet: no server can absorb %q (need nic %.2f cpu %.2f under %.2f)",
			offender, offNIC, offCPU, c.cfg.MaxDestUtil)
	}
	return best, nil
}

func (c *Coordinator) status(s ServerID) (StatusReply, error) {
	rep, err := c.tr.Call(s, StatusRequest{})
	if err != nil {
		return StatusReply{}, err
	}
	sr, ok := rep.(StatusReply)
	if !ok {
		return StatusReply{}, fmt.Errorf("fleet: %s answered status with %T", s, rep)
	}
	return sr, nil
}

// Migrate runs the staged cross-server chain migration for one tenant:
//
//  1. destination PrepareReceive — its copy of the chain freezes
//  2. registry flip — tenant traffic reroutes into the frozen chain
//  3. source Detach — quiesce, drain, freeze, snapshot (loop suspended)
//  4. destination CommitReceive — restore state + placement, thaw, replay
//  5. source Finalize — chain parks, loop resumes
//
// Any stage failure unwinds: the registry flips back, the destination
// aborts (thaw untouched), the source resumes serving. The tenant loses
// service only for the drain-to-thaw window, and frames rerouted during it
// replay from the destination's freeze buffers.
func (c *Coordinator) Migrate(tenant string, to ServerID) (Migration, error) {
	from, ok := c.reg.Lookup(tenant)
	if !ok {
		return Migration{}, fmt.Errorf("fleet: unknown tenant %q", tenant)
	}
	if from == to {
		return Migration{}, fmt.Errorf("fleet: tenant %q already on %s", tenant, to)
	}
	start := time.Now()
	if _, err := c.tr.Call(to, PrepareReceiveRequest{Tenant: tenant}); err != nil {
		return Migration{}, fmt.Errorf("fleet: prepare on %s: %w", to, err)
	}
	if err := c.reg.Move(tenant, to); err != nil {
		_, _ = c.tr.Call(to, AbortReceiveRequest{Tenant: tenant})
		return Migration{}, err
	}
	unwind := func(stage string, err error) (Migration, error) {
		_ = c.reg.Move(tenant, from)
		_, _ = c.tr.Call(to, AbortReceiveRequest{Tenant: tenant})
		return Migration{}, fmt.Errorf("fleet: %s: %w", stage, err)
	}
	rep, err := c.tr.Call(from, DetachRequest{Tenant: tenant})
	if err != nil {
		return unwind(fmt.Sprintf("detach on %s", from), err)
	}
	det, ok := rep.(DetachReply)
	if !ok {
		return unwind("detach", fmt.Errorf("unexpected reply %T", rep))
	}
	rep, err = c.tr.Call(to, CommitReceiveRequest{Tenant: tenant, Snapshot: det.Snapshot})
	if err != nil {
		// The source still holds the intact chain: reopen it.
		_, _ = c.tr.Call(from, FinalizeRequest{Tenant: tenant, Ok: false})
		return unwind(fmt.Sprintf("commit on %s", to), err)
	}
	com, ok := rep.(CommitReceiveReply)
	if !ok {
		_, _ = c.tr.Call(from, FinalizeRequest{Tenant: tenant, Ok: false})
		return unwind("commit", fmt.Errorf("unexpected reply %T", rep))
	}
	if _, err := c.tr.Call(from, FinalizeRequest{Tenant: tenant, Ok: true}); err != nil {
		// The destination already owns the tenant; the source just failed
		// to park cleanly. Record the migration and surface the error.
		c.logf("finalize on %s failed: %v", from, err)
	}
	m := Migration{
		Tenant:     tenant,
		From:       from,
		To:         to,
		StateBytes: com.StateBytes,
		Buffered:   com.Buffered,
		Took:       time.Since(start),
	}
	c.mu.Lock()
	c.migrations = append(c.migrations, m)
	c.mu.Unlock()
	c.logf("migrated %v", m)
	return m, nil
}

// Rebalance computes the registry's rebalance plan and executes each move
// through the staged migration, stopping at the first failure. Called on
// tenant arrival/departure; maxMoves bounds the disruption (<= 0 means
// unbounded).
func (c *Coordinator) Rebalance(maxMoves int) ([]Migration, error) {
	plan := c.reg.Rebalance(maxMoves)
	var out []Migration
	for _, mv := range plan {
		// Rebalance already flipped the registry; flip back so Migrate owns
		// the flip at the protocol's reroute point.
		if err := c.reg.Move(mv.Tenant, mv.From); err != nil {
			return out, err
		}
		m, err := c.Migrate(mv.Tenant, mv.To)
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Migrations returns every executed cross-server migration.
func (c *Coordinator) Migrations() []Migration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Migration(nil), c.migrations...)
}

// Log returns the coordinator's human-readable event log.
func (c *Coordinator) Log() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.log...)
}

func (c *Coordinator) logf(format string, args ...any) {
	c.mu.Lock()
	c.log = append(c.log, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}
