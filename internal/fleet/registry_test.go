package fleet_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fleet"
)

// churn replays a seeded arrival/departure sequence against a fresh
// registry and returns it. Same seed, same resulting placement — the
// determinism the fleet tier's reproducibility rests on.
func churn(t *testing.T, seed int64, ops int) *fleet.Registry {
	t.Helper()
	reg, err := fleet.NewRegistry("s0", "s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var present []string
	next := 0
	for i := 0; i < ops; i++ {
		if len(present) == 0 || rng.Float64() < 0.6 {
			name := fmt.Sprintf("tenant-%03d", next)
			next++
			reg.Assign(name, 0.1+rng.Float64())
			present = append(present, name)
		} else {
			idx := rng.Intn(len(present))
			reg.Remove(present[idx])
			present = append(present[:idx], present[idx+1:]...)
		}
	}
	return reg
}

func spread(reg *fleet.Registry) float64 {
	servers := reg.Servers()
	lo, hi := reg.Load(servers[0]), reg.Load(servers[0])
	for _, s := range servers[1:] {
		l := reg.Load(s)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return hi - lo
}

func TestRegistryChurnDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := churn(t, seed, 200)
		b := churn(t, seed, 200)
		if !reflect.DeepEqual(a.Placements(), b.Placements()) {
			t.Errorf("seed %d: same churn, different placements:\n%v\n%v",
				seed, a.Placements(), b.Placements())
		}
		planA := a.Rebalance(0)
		planB := b.Rebalance(0)
		if !reflect.DeepEqual(planA, planB) {
			t.Errorf("seed %d: same placement, different rebalance plan:\n%v\n%v",
				seed, planA, planB)
		}
	}
}

func TestRegistryAssignLeastLoaded(t *testing.T) {
	reg, err := fleet.NewRegistry("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if s := reg.Assign("t1", 1.0); s != "a" {
		t.Errorf("first tenant on %s, want declaration-order tie-break to a", s)
	}
	if s := reg.Assign("t2", 0.5); s != "b" {
		t.Errorf("second tenant on %s, want the empty server b", s)
	}
	if s := reg.Assign("t3", 0.1); s != "b" {
		t.Errorf("third tenant on %s, want the lighter server b", s)
	}
	if s := reg.Assign("t1", 2.0); s != "a" {
		t.Errorf("re-assign moved t1 to %s", s)
	}
	if w := reg.Load("a"); w != 2.0 {
		t.Errorf("re-assign did not update weight: load(a) = %v", w)
	}
}

func TestRegistryRebalanceShrinksSpread(t *testing.T) {
	reg := churn(t, 99, 300)
	// Pile everything onto one server, then rebalance.
	pl := reg.Placements()
	for _, ts := range pl {
		for _, tn := range ts {
			if err := reg.Move(tn, "s0"); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := spread(reg)
	plan := reg.Rebalance(0)
	after := spread(reg)
	if len(plan) == 0 {
		t.Fatal("no rebalance plan for a fully skewed placement")
	}
	if after >= before {
		t.Errorf("rebalance left spread %.3f, was %.3f", after, before)
	}
	for _, mv := range plan {
		if mv.From != "s0" {
			t.Errorf("move %v drains the wrong server", mv)
		}
	}
	// A second pass finds little or nothing left to move.
	if again := reg.Rebalance(0); len(again) > len(plan) {
		t.Errorf("rebalance not converging: second pass wants %d moves", len(again))
	}
}

func TestRegistryRebalanceRespectsMaxMoves(t *testing.T) {
	reg, err := fleet.NewRegistry("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		reg.Assign(fmt.Sprintf("t%d", i), 1.0)
		if err := reg.Move(fmt.Sprintf("t%d", i), "a"); err != nil {
			t.Fatal(err)
		}
	}
	if plan := reg.Rebalance(2); len(plan) > 2 {
		t.Errorf("maxMoves=2 produced %d moves", len(plan))
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := fleet.NewRegistry(); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := fleet.NewRegistry("a", "a"); err == nil {
		t.Error("duplicate server accepted")
	}
	reg, err := fleet.NewRegistry("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Move("ghost", "a"); err == nil {
		t.Error("move of unknown tenant accepted")
	}
	reg.Assign("t", 1)
	if err := reg.Move("t", "ghost-server"); err == nil {
		t.Error("move to unknown server accepted")
	}
	if _, ok := reg.Lookup("ghost"); ok {
		t.Error("lookup of unknown tenant succeeded")
	}
}

// BenchmarkFleetRebalance measures the coordinator-side cost of planning a
// full rebalance of a skewed 64-tenant, 4-server fleet — pure registry
// arithmetic, no transport, no dataplane.
func BenchmarkFleetRebalance(b *testing.B) {
	reg, err := fleet.NewRegistry("s0", "s1", "s2", "s3")
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%03d", i)
		reg.Assign(names[i], 0.1+rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tn := range names {
			if err := reg.Move(tn, "s0"); err != nil {
				b.Fatal(err)
			}
		}
		if plan := reg.Rebalance(0); len(plan) == 0 {
			b.Fatal("no plan for a fully skewed placement")
		}
	}
}
