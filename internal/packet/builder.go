package packet

import (
	"encoding/binary"
	"fmt"
)

// Builder assembles complete Ethernet frames front-to-back into a reusable
// buffer, fixing up length and checksum fields that depend on outer/inner
// layers. It is the serialization counterpart of Decoder and is used by the
// traffic generator and by NFs that rewrite packets (NAT).
//
// A Builder is not safe for concurrent use.
type Builder struct {
	buf []byte
}

// NewBuilder returns a Builder with capacity for a maximum-size frame.
func NewBuilder() *Builder {
	return &Builder{buf: make([]byte, 0, MaxFrameSize)}
}

// Bytes returns the most recently built frame. The slice is valid until the
// next Build call; callers that retain frames must copy.
func (b *Builder) Bytes() []byte { return b.buf }

// BuildUDP4 assembles Ethernet/IPv4/UDP with the given payload, computing
// all lengths and checksums. The frame is padded to MinFrameSize if shorter.
// It returns the frame (valid until the next call) and its length.
func (b *Builder) BuildUDP4(eth Ethernet, ip IPv4, udp UDP, payload []byte) []byte {
	ipHL := IPv4MinHeaderLen + len(ip.Options)
	total := EthernetHeaderLen + ipHL + UDPHeaderLen + len(payload)
	b.grow(total)

	eth.Type = EtherTypeIPv4
	eth.Serialize(b.buf[0:])

	ip.Version = 4
	ip.Protocol = ProtoUDP
	ip.Length = uint16(ipHL + UDPHeaderLen + len(payload))
	ipOff := EthernetHeaderLen

	udp.Length = uint16(UDPHeaderLen + len(payload))
	udpOff := ipOff + ipHL
	udp.Serialize(b.buf[udpOff:])
	copy(b.buf[udpOff+UDPHeaderLen:], payload)

	ip.Serialize(b.buf[ipOff:]) // computes IP header checksum

	// UDP checksum over pseudo-header + segment.
	seg := b.buf[udpOff : udpOff+UDPHeaderLen+len(payload)]
	ck := PseudoHeaderChecksum(ip.Src, ip.Dst, ProtoUDP, seg)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(seg[6:8], ck)

	b.pad(total)
	return b.buf
}

// BuildTCP4 assembles Ethernet/IPv4/TCP with the given payload, computing
// all lengths and checksums. The frame is padded to MinFrameSize if shorter.
func (b *Builder) BuildTCP4(eth Ethernet, ip IPv4, tcp TCP, payload []byte) []byte {
	ipHL := IPv4MinHeaderLen + len(ip.Options)
	tcpHL := TCPMinHeaderLen + len(tcp.Options)
	total := EthernetHeaderLen + ipHL + tcpHL + len(payload)
	b.grow(total)

	eth.Type = EtherTypeIPv4
	eth.Serialize(b.buf[0:])

	ip.Version = 4
	ip.Protocol = ProtoTCP
	ip.Length = uint16(ipHL + tcpHL + len(payload))
	ipOff := EthernetHeaderLen

	tcpOff := ipOff + ipHL
	tcp.Serialize(b.buf[tcpOff:])
	copy(b.buf[tcpOff+tcpHL:], payload)

	ip.Serialize(b.buf[ipOff:])

	seg := b.buf[tcpOff : tcpOff+tcpHL+len(payload)]
	ck := PseudoHeaderChecksum(ip.Src, ip.Dst, ProtoTCP, seg)
	binary.BigEndian.PutUint16(seg[16:18], ck)

	b.pad(total)
	return b.buf
}

// BuildICMP4 assembles Ethernet/IPv4/ICMPv4 with the given payload.
func (b *Builder) BuildICMP4(eth Ethernet, ip IPv4, icmp ICMPv4, payload []byte) []byte {
	ipHL := IPv4MinHeaderLen + len(ip.Options)
	total := EthernetHeaderLen + ipHL + ICMPHeaderLen + len(payload)
	b.grow(total)

	eth.Type = EtherTypeIPv4
	eth.Serialize(b.buf[0:])

	ip.Version = 4
	ip.Protocol = ProtoICMP
	ip.Length = uint16(ipHL + ICMPHeaderLen + len(payload))
	ipOff := EthernetHeaderLen

	icmpOff := ipOff + ipHL
	icmp.Serialize(b.buf[icmpOff:])
	copy(b.buf[icmpOff+ICMPHeaderLen:], payload)

	ip.Serialize(b.buf[ipOff:])

	seg := b.buf[icmpOff : icmpOff+ICMPHeaderLen+len(payload)]
	ck := Checksum(seg)
	binary.BigEndian.PutUint16(seg[2:4], ck)

	b.pad(total)
	return b.buf
}

func (b *Builder) grow(n int) {
	if cap(b.buf) < n {
		b.buf = make([]byte, n)
	} else {
		b.buf = b.buf[:n]
	}
	clear(b.buf)
}

// pad extends the frame with zero bytes to the Ethernet minimum when needed.
func (b *Builder) pad(n int) {
	if n >= MinFrameSize {
		return
	}
	b.buf = b.buf[:MinFrameSize]
	clear(b.buf[n:MinFrameSize])
}

// FixupIPv4Checksum recomputes the IPv4 header checksum of frame in place.
// frame must contain an Ethernet+IPv4 stack; it returns an error otherwise.
// NFs that rewrite IP addresses (e.g. NAT) call this before forwarding.
func FixupIPv4Checksum(frame []byte) error {
	if len(frame) < EthernetHeaderLen+IPv4MinHeaderLen {
		return fmt.Errorf("fixup: %w", ErrTruncated)
	}
	if EtherType(binary.BigEndian.Uint16(frame[12:14])) != EtherTypeIPv4 {
		return fmt.Errorf("fixup: %w: not IPv4", ErrUnsupported)
	}
	ipb := frame[EthernetHeaderLen:]
	hlen := int(ipb[0]&0x0f) * 4
	if hlen < IPv4MinHeaderLen || hlen > len(ipb) {
		return fmt.Errorf("fixup: %w: bad IHL", ErrBadHeader)
	}
	ipb[10], ipb[11] = 0, 0
	ck := Checksum(ipb[:hlen])
	binary.BigEndian.PutUint16(ipb[10:12], ck)
	return nil
}

// FixupTransportChecksum recomputes the TCP or UDP checksum of an IPv4 frame
// in place after header fields were rewritten.
func FixupTransportChecksum(frame []byte) error {
	if len(frame) < EthernetHeaderLen+IPv4MinHeaderLen {
		return fmt.Errorf("fixup: %w", ErrTruncated)
	}
	if EtherType(binary.BigEndian.Uint16(frame[12:14])) != EtherTypeIPv4 {
		return fmt.Errorf("fixup: %w: not IPv4", ErrUnsupported)
	}
	ipb := frame[EthernetHeaderLen:]
	hlen := int(ipb[0]&0x0f) * 4
	if hlen < IPv4MinHeaderLen || hlen > len(ipb) {
		return fmt.Errorf("fixup: %w: bad IHL", ErrBadHeader)
	}
	totalLen := int(binary.BigEndian.Uint16(ipb[2:4]))
	if totalLen < hlen || totalLen > len(ipb) {
		totalLen = len(ipb)
	}
	var src, dst IPv4Addr
	copy(src[:], ipb[12:16])
	copy(dst[:], ipb[16:20])
	proto := IPProto(ipb[9])
	seg := ipb[hlen:totalLen]
	switch proto {
	case ProtoTCP:
		if len(seg) < TCPMinHeaderLen {
			return fmt.Errorf("fixup: %w: short tcp", ErrTruncated)
		}
		seg[16], seg[17] = 0, 0
		ck := PseudoHeaderChecksum(src, dst, ProtoTCP, seg)
		binary.BigEndian.PutUint16(seg[16:18], ck)
	case ProtoUDP:
		if len(seg) < UDPHeaderLen {
			return fmt.Errorf("fixup: %w: short udp", ErrTruncated)
		}
		seg[6], seg[7] = 0, 0
		ck := PseudoHeaderChecksum(src, dst, ProtoUDP, seg)
		if ck == 0 {
			ck = 0xffff
		}
		binary.BigEndian.PutUint16(seg[6:8], ck)
	default:
		return fmt.Errorf("fixup: %w: proto %v", ErrUnsupported, proto)
	}
	return nil
}
