package packet_test

import (
	"testing"

	"repro/internal/packet"
)

// FuzzDecode hammers the decoder with arbitrary bytes: it must never panic,
// and whenever it reports success for an IPv4 frame the header fields must
// be self-consistent.
func FuzzDecode(f *testing.F) {
	b := packet.NewBuilder()
	f.Add([]byte{})
	f.Add(b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{SrcPort: 1, DstPort: 2}, []byte("seed")))
	f.Add(b.BuildTCP4(sampleEth(), sampleIP(), packet.TCP{SrcPort: 3, DstPort: 4}, nil))
	f.Add(b.BuildICMP4(sampleEth(), sampleIP(), packet.ICMPv4{Type: packet.ICMPEchoRequest}, nil))

	d := packet.NewDecoder()
	f.Fuzz(func(t *testing.T, data []byte) {
		layers, err := d.Decode(data)
		if err != nil {
			return
		}
		for _, lt := range layers {
			if lt == packet.LayerIPv4 {
				if d.IP4.Version != 4 {
					t.Fatalf("accepted IPv4 with version %d", d.IP4.Version)
				}
				if int(d.IP4.IHL)*4 < packet.IPv4MinHeaderLen {
					t.Fatalf("accepted IPv4 with IHL %d", d.IP4.IHL)
				}
			}
		}
	})
}

// FuzzFixups ensures checksum fixup helpers never panic and keep valid
// frames valid.
func FuzzFixups(f *testing.F) {
	b := packet.NewBuilder()
	f.Add(b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{SrcPort: 5, DstPort: 6}, []byte("x")))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp := append([]byte(nil), data...)
		if err := packet.FixupIPv4Checksum(cp); err == nil {
			if !packet.VerifyIPv4Checksum(cp[packet.EthernetHeaderLen:]) {
				t.Fatal("fixup produced invalid checksum")
			}
		}
		cp2 := append([]byte(nil), data...)
		_ = packet.FixupTransportChecksum(cp2)
	})
}
