package packet

import "sync"

// DecoderPool recycles Decoders across dataplane workers so that spinning a
// worker (or a burst slot) up and down does not allocate. Decoders keep
// their preallocated layer structs between uses; Get hands out a Decoder
// whose previous decode state is stale but harmless (Decode overwrites it).
type DecoderPool struct {
	p sync.Pool
}

// NewDecoderPool returns an empty pool.
func NewDecoderPool() *DecoderPool {
	dp := &DecoderPool{}
	dp.p.New = func() any { return NewDecoder() }
	return dp
}

// Get returns a ready Decoder, reusing a pooled one when available.
func (dp *DecoderPool) Get() *Decoder {
	return dp.p.Get().(*Decoder)
}

// Put returns a Decoder to the pool. The caller must not use it afterwards.
func (dp *DecoderPool) Put(d *Decoder) {
	if d == nil {
		return
	}
	dp.p.Put(d)
}

// FramePool recycles max-size frame buffers, the emulator's stand-in for a
// DPDK mbuf pool: steady-state frame traffic allocates nothing because
// every delivered or dropped frame's buffer is returned for reuse. Only
// full-capacity buffers (cap ≥ MaxFrameSize) are retained, so recycling a
// foreign, smaller slice quietly degrades to the GC instead of poisoning
// the pool with undersized buffers.
type FramePool struct {
	p sync.Pool
}

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool {
	fp := &FramePool{}
	fp.p.New = func() any { return new([MaxFrameSize]byte) }
	return fp
}

// Get returns a frame buffer of length n (n ≤ MaxFrameSize is the expected
// case; larger n falls back to a dedicated allocation). Contents are
// arbitrary — callers overwrite the frame.
func (fp *FramePool) Get(n int) []byte {
	if n > MaxFrameSize {
		return make([]byte, n)
	}
	arr := fp.p.Get().(*[MaxFrameSize]byte)
	return arr[:n]
}

// Put recycles a frame buffer obtained from Get (or any slice with
// full-frame capacity). The caller must not use the slice afterwards.
// Pooling array pointers rather than slice headers keeps Put itself
// allocation-free.
func (fp *FramePool) Put(b []byte) {
	if cap(b) < MaxFrameSize {
		return
	}
	fp.p.Put((*[MaxFrameSize]byte)(b[:MaxFrameSize]))
}
