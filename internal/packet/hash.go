package packet

import "encoding/binary"

// fnv-1a constants (64-bit), duplicated from internal/flow because flow
// imports packet; only self-consistency matters for sharding, not equality
// with flow.Key.Hash.
const (
	flowHashOffset = 14695981039346656037
	flowHashPrime  = 1099511628211
)

// FlowHash computes a symmetric 5-tuple hash straight from the wire bytes
// of an Ethernet frame, without a full decode — the RSS-style receive hash
// a NIC would compute to spread frames across queues. Both directions of a
// connection produce the same value (endpoints are ordered canonically
// before hashing, as in flow.Key.SymmetricHash), which the dataplane
// relies on: NFs that key state on the canonical flow (LoadBalancer,
// Firewall) must see a whole connection on one worker shard, and per-flow
// FIFO order must survive parallel processing.
//
// Non-IPv4 and truncated frames hash to 0, collapsing them onto a single
// shard, which keeps their relative order too. Fragmented or portless
// protocols hash the 2-tuple plus protocol.
func FlowHash(frame []byte) uint64 {
	if len(frame) < EthernetHeaderLen+IPv4MinHeaderLen {
		return 0
	}
	if EtherType(binary.BigEndian.Uint16(frame[12:14])) != EtherTypeIPv4 {
		return 0
	}
	ip := frame[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return 0
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4MinHeaderLen || len(ip) < ihl {
		return 0
	}
	proto := ip[9]
	src := binary.BigEndian.Uint32(ip[12:16])
	dst := binary.BigEndian.Uint32(ip[16:20])
	var sport, dport uint16
	if (proto == uint8(ProtoTCP) || proto == uint8(ProtoUDP)) && len(ip) >= ihl+4 {
		sport = binary.BigEndian.Uint16(ip[ihl : ihl+2])
		dport = binary.BigEndian.Uint16(ip[ihl+2 : ihl+4])
	}
	// Canonical endpoint order: lower (IP, port) pair first, so A→B and
	// B→A hash identically.
	if dst < src || (dst == src && dport < sport) {
		src, dst = dst, src
		sport, dport = dport, sport
	}
	h := uint64(flowHashOffset)
	h = flowHashU32(h, src)
	h = flowHashU16(h, sport)
	h = flowHashU32(h, dst)
	h = flowHashU16(h, dport)
	return (h ^ uint64(proto)) * flowHashPrime
}

func flowHashU32(h uint64, v uint32) uint64 {
	h = (h ^ uint64(v>>24&0xff)) * flowHashPrime
	h = (h ^ uint64(v>>16&0xff)) * flowHashPrime
	h = (h ^ uint64(v>>8&0xff)) * flowHashPrime
	return (h ^ uint64(v&0xff)) * flowHashPrime
}

func flowHashU16(h uint64, v uint16) uint64 {
	h = (h ^ uint64(v>>8)) * flowHashPrime
	return (h ^ uint64(v&0xff)) * flowHashPrime
}
