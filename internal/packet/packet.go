// Package packet implements a compact packet model for the PAM reproduction:
// wire-format parsing and serialization for Ethernet, IPv4, IPv6, TCP, UDP
// and ICMPv4, an allocation-free decoder in the style of gopacket's
// DecodingLayerParser, checksum computation, and builders used by the
// traffic generator.
//
// Design notes (following the gopacket guide): decoding writes into
// caller-preallocated layer structs instead of allocating per packet, which
// keeps the emulated dataplane hot path garbage-free; serialization appends
// layers back-to-front into a reusable buffer.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Supported EtherTypes.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeIPv6 EtherType = 0x86DD
)

// String names well-known EtherTypes.
func (e EtherType) String() string {
	switch e {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeIPv6:
		return "IPv6"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(e))
	}
}

// IPProto identifies the transport protocol of an IP packet.
type IPProto uint8

// Supported IP protocol numbers.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String names well-known IP protocols.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// Wire-format size constants in bytes.
const (
	EthernetHeaderLen = 14
	IPv4MinHeaderLen  = 20
	IPv6HeaderLen     = 40
	TCPMinHeaderLen   = 20
	UDPHeaderLen      = 8
	ICMPHeaderLen     = 8

	// MinFrameSize and MaxFrameSize bound Ethernet frame sizes the
	// generator produces (64B minimum without FCS per the DPDK sender the
	// paper uses; 1500B MTU + 14B header).
	MinFrameSize = 60
	MaxFrameSize = 1514
)

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadHeader   = errors.New("packet: malformed header")
	ErrUnsupported = errors.New("packet: unsupported layer")
)

// MAC is a 6-byte Ethernet hardware address. The array form keeps it usable
// as a map key.
type MAC [6]byte

// String formats the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4Addr is an IPv4 address in network byte order. The fixed-size form
// keeps it allocation-free and usable as a map key.
type IPv4Addr [4]byte

// String formats the address in dotted decimal.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer, convenient for LPM.
func (a IPv4Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IPv4FromUint32 builds an address from a big-endian integer.
func IPv4FromUint32(v uint32) IPv4Addr {
	var a IPv4Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Src, Dst MAC
	Type     EtherType
}

// Decode parses the header from data and returns the payload.
func (e *Ethernet) Decode(data []byte) (payload []byte, err error) {
	if len(data) < EthernetHeaderLen {
		return nil, fmt.Errorf("ethernet: %w: %d bytes", ErrTruncated, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	return data[EthernetHeaderLen:], nil
}

// HeaderLen returns the encoded header size.
func (e *Ethernet) HeaderLen() int { return EthernetHeaderLen }

// Serialize writes the header into b, which must have room for HeaderLen
// bytes. It returns the number of bytes written.
func (e *Ethernet) Serialize(b []byte) int {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], uint16(e.Type))
	return EthernetHeaderLen
}

// IPv4 is a decoded IPv4 header. Options are preserved as a sub-slice of the
// original data and are not interpreted.
type IPv4 struct {
	Version  uint8
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits
	TTL      uint8
	Protocol IPProto
	Checksum uint16
	Src, Dst IPv4Addr
	Options  []byte
}

// Decode parses the header from data and returns the payload (bounded by the
// header's Length field when it is consistent).
func (ip *IPv4) Decode(data []byte) (payload []byte, err error) {
	if len(data) < IPv4MinHeaderLen {
		return nil, fmt.Errorf("ipv4: %w: %d bytes", ErrTruncated, len(data))
	}
	vihl := data[0]
	ip.Version = vihl >> 4
	if ip.Version != 4 {
		return nil, fmt.Errorf("ipv4: %w: version %d", ErrBadVersion, ip.Version)
	}
	ip.IHL = vihl & 0x0f
	hlen := int(ip.IHL) * 4
	if hlen < IPv4MinHeaderLen {
		return nil, fmt.Errorf("ipv4: %w: IHL %d", ErrBadHeader, ip.IHL)
	}
	if len(data) < hlen {
		return nil, fmt.Errorf("ipv4: %w: header %d > %d", ErrTruncated, hlen, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProto(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	ip.Options = data[IPv4MinHeaderLen:hlen]
	end := int(ip.Length)
	if end < hlen || end > len(data) {
		// Tolerate padded or trimmed frames; deliver what we have.
		end = len(data)
	}
	return data[hlen:end], nil
}

// HeaderLen returns the encoded header size including options.
func (ip *IPv4) HeaderLen() int {
	hl := int(ip.IHL) * 4
	if hl < IPv4MinHeaderLen {
		hl = IPv4MinHeaderLen + len(ip.Options)
	}
	return hl
}

// Serialize writes the header into b (which must have room for HeaderLen
// bytes), computing the header checksum. It returns bytes written.
func (ip *IPv4) Serialize(b []byte) int {
	hlen := IPv4MinHeaderLen + len(ip.Options)
	ip.IHL = uint8(hlen / 4)
	b[0] = ip.Version<<4 | ip.IHL
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = uint8(ip.Protocol)
	b[10], b[11] = 0, 0
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	copy(b[IPv4MinHeaderLen:hlen], ip.Options)
	ip.Checksum = Checksum(b[:hlen])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return hlen
}

// VerifyChecksum reports whether the header bytes carry a valid checksum.
func VerifyIPv4Checksum(header []byte) bool {
	if len(header) < IPv4MinHeaderLen {
		return false
	}
	hlen := int(header[0]&0x0f) * 4
	if hlen < IPv4MinHeaderLen || hlen > len(header) {
		return false
	}
	return Checksum(header[:hlen]) == 0
}

// IPv6 is a decoded IPv6 fixed header. Extension headers are not chased; the
// NextHeader value is exposed as-is.
type IPv6 struct {
	Version      uint8
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16 // payload length
	NextHeader   IPProto
	HopLimit     uint8
	Src, Dst     [16]byte
}

// Decode parses the fixed header and returns the payload.
func (ip *IPv6) Decode(data []byte) (payload []byte, err error) {
	if len(data) < IPv6HeaderLen {
		return nil, fmt.Errorf("ipv6: %w: %d bytes", ErrTruncated, len(data))
	}
	v := data[0] >> 4
	if v != 6 {
		return nil, fmt.Errorf("ipv6: %w: version %d", ErrBadVersion, v)
	}
	ip.Version = v
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = uint32(data[1]&0x0f)<<16 | uint32(data[2])<<8 | uint32(data[3])
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = IPProto(data[6])
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])
	end := IPv6HeaderLen + int(ip.Length)
	if end > len(data) {
		end = len(data)
	}
	return data[IPv6HeaderLen:end], nil
}

// HeaderLen returns the fixed header size.
func (ip *IPv6) HeaderLen() int { return IPv6HeaderLen }

// Serialize writes the fixed header into b and returns bytes written.
func (ip *IPv6) Serialize(b []byte) int {
	b[0] = 6<<4 | ip.TrafficClass>>4
	b[1] = ip.TrafficClass<<4 | uint8(ip.FlowLabel>>16)
	b[2] = uint8(ip.FlowLabel >> 8)
	b[3] = uint8(ip.FlowLabel)
	binary.BigEndian.PutUint16(b[4:6], ip.Length)
	b[6] = uint8(ip.NextHeader)
	b[7] = ip.HopLimit
	copy(b[8:24], ip.Src[:])
	copy(b[24:40], ip.Dst[:])
	return IPv6HeaderLen
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a decoded TCP header. Options are preserved uninterpreted.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

// Decode parses the header from data and returns the payload.
func (t *TCP) Decode(data []byte) (payload []byte, err error) {
	if len(data) < TCPMinHeaderLen {
		return nil, fmt.Errorf("tcp: %w: %d bytes", ErrTruncated, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < TCPMinHeaderLen {
		return nil, fmt.Errorf("tcp: %w: data offset %d", ErrBadHeader, t.DataOffset)
	}
	if len(data) < hlen {
		return nil, fmt.Errorf("tcp: %w: header %d > %d", ErrTruncated, hlen, len(data))
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[TCPMinHeaderLen:hlen]
	return data[hlen:], nil
}

// HeaderLen returns the encoded header size including options.
func (t *TCP) HeaderLen() int { return TCPMinHeaderLen + len(t.Options) }

// Serialize writes the header into b without computing the checksum (the
// pseudo-header checksum is applied by the builder, which knows the IP
// layer). Returns bytes written.
func (t *TCP) Serialize(b []byte) int {
	hlen := TCPMinHeaderLen + len(t.Options)
	t.DataOffset = uint8(hlen / 4)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = t.DataOffset << 4
	b[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], 0)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[TCPMinHeaderLen:hlen], t.Options)
	return hlen
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Decode parses the header from data and returns the payload.
func (u *UDP) Decode(data []byte) (payload []byte, err error) {
	if len(data) < UDPHeaderLen {
		return nil, fmt.Errorf("udp: %w: %d bytes", ErrTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end < UDPHeaderLen || end > len(data) {
		end = len(data)
	}
	return data[UDPHeaderLen:end], nil
}

// HeaderLen returns the encoded header size.
func (u *UDP) HeaderLen() int { return UDPHeaderLen }

// Serialize writes the header into b without the checksum and returns bytes
// written.
func (u *UDP) Serialize(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], 0)
	return UDPHeaderLen
}

// ICMPv4 is a decoded ICMPv4 header.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID, Seq  uint16
}

// ICMP type values used by the tests and generator.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// Decode parses the header from data and returns the payload.
func (ic *ICMPv4) Decode(data []byte) (payload []byte, err error) {
	if len(data) < ICMPHeaderLen {
		return nil, fmt.Errorf("icmp: %w: %d bytes", ErrTruncated, len(data))
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	return data[ICMPHeaderLen:], nil
}

// HeaderLen returns the encoded header size.
func (ic *ICMPv4) HeaderLen() int { return ICMPHeaderLen }

// Serialize writes the header into b with a zero checksum field (the builder
// computes it over header+payload) and returns bytes written.
func (ic *ICMPv4) Serialize(b []byte) int {
	b[0] = ic.Type
	b[1] = ic.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], ic.ID)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	return ICMPHeaderLen
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// PseudoHeaderChecksum computes the transport checksum for an IPv4
// pseudo-header plus the given transport segment (header and payload with a
// zeroed checksum field).
func PseudoHeaderChecksum(src, dst IPv4Addr, proto IPProto, segment []byte) uint16 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(len(segment))
	n := len(segment)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(segment[i])<<8 | uint32(segment[i+1])
	}
	if n%2 == 1 {
		sum += uint32(segment[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
