package packet_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func sampleEth() packet.Ethernet {
	return packet.Ethernet{
		Src:  packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		Dst:  packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02},
		Type: packet.EtherTypeIPv4,
	}
}

func sampleIP() packet.IPv4 {
	return packet.IPv4{
		Version: 4,
		TTL:     64,
		Src:     packet.IPv4Addr{10, 0, 0, 1},
		Dst:     packet.IPv4Addr{192, 168, 1, 2},
	}
}

func TestUDPRoundTrip(t *testing.T) {
	b := packet.NewBuilder()
	payload := []byte("hello pam")
	frame := b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{SrcPort: 1234, DstPort: 53}, payload)

	d := packet.NewDecoder()
	layers, err := d.Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := []packet.LayerType{packet.LayerEthernet, packet.LayerIPv4, packet.LayerUDP, packet.LayerPayload}
	if len(layers) != len(want) {
		t.Fatalf("layers = %v, want %v", layers, want)
	}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("layers = %v, want %v", layers, want)
		}
	}
	if d.UDP.SrcPort != 1234 || d.UDP.DstPort != 53 {
		t.Errorf("ports = %d,%d", d.UDP.SrcPort, d.UDP.DstPort)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload = %q, want %q", d.Payload, payload)
	}
	if d.IP4.Src != (packet.IPv4Addr{10, 0, 0, 1}) {
		t.Errorf("src = %v", d.IP4.Src)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	b := packet.NewBuilder()
	tcp := packet.TCP{SrcPort: 4000, DstPort: 443, Seq: 7, Ack: 9, Flags: packet.TCPSyn | packet.TCPAck, Window: 1024}
	frame := b.BuildTCP4(sampleEth(), sampleIP(), tcp, []byte("payload"))
	d := packet.NewDecoder()
	if _, err := d.Decode(frame); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !d.Has(packet.LayerTCP) {
		t.Fatal("no TCP layer decoded")
	}
	if d.TCP.Seq != 7 || d.TCP.Ack != 9 || d.TCP.Flags != packet.TCPSyn|packet.TCPAck {
		t.Errorf("tcp = %+v", d.TCP)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	b := packet.NewBuilder()
	frame := b.BuildICMP4(sampleEth(), sampleIP(), packet.ICMPv4{Type: packet.ICMPEchoRequest, ID: 3, Seq: 4}, []byte("ping"))
	d := packet.NewDecoder()
	if _, err := d.Decode(frame); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !d.Has(packet.LayerICMPv4) || d.ICMP.ID != 3 || d.ICMP.Seq != 4 {
		t.Errorf("icmp = %+v", d.ICMP)
	}
}

func TestChecksumsValid(t *testing.T) {
	b := packet.NewBuilder()
	frame := b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{SrcPort: 1, DstPort: 2}, []byte("x"))
	ipb := frame[packet.EthernetHeaderLen:]
	if !packet.VerifyIPv4Checksum(ipb) {
		t.Error("IPv4 checksum invalid")
	}
	// Verify UDP checksum: pseudo-header checksum over the segment (bounded
	// by the IP total length — the frame carries Ethernet padding beyond
	// it) with the stored checksum zeroed must equal the stored value.
	var src, dst packet.IPv4Addr
	copy(src[:], ipb[12:16])
	copy(dst[:], ipb[16:20])
	totalLen := int(ipb[2])<<8 | int(ipb[3])
	seg := append([]byte(nil), ipb[20:totalLen]...)
	stored := uint16(seg[6])<<8 | uint16(seg[7])
	seg[6], seg[7] = 0, 0
	if got := packet.PseudoHeaderChecksum(src, dst, packet.ProtoUDP, seg); got != stored {
		t.Errorf("udp checksum = %04x, stored %04x", got, stored)
	}
}

func TestMinFramePadding(t *testing.T) {
	b := packet.NewBuilder()
	frame := b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{}, nil)
	if len(frame) != packet.MinFrameSize {
		t.Errorf("frame = %dB, want padded to %d", len(frame), packet.MinFrameSize)
	}
}

func TestDecodeTruncated(t *testing.T) {
	d := packet.NewDecoder()
	if _, err := d.Decode([]byte{1, 2, 3}); !errors.Is(err, packet.ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	// Truncated IP header after valid Ethernet.
	b := packet.NewBuilder()
	frame := b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{}, nil)
	if _, err := d.Decode(frame[:packet.EthernetHeaderLen+4]); !errors.Is(err, packet.ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeUnknownEtherType(t *testing.T) {
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	d := packet.NewDecoder()
	layers, err := d.Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(layers) < 1 || layers[0] != packet.LayerEthernet {
		t.Fatalf("layers = %v", layers)
	}
	if d.Has(packet.LayerIPv4) {
		t.Error("spurious IPv4 decode")
	}
}

func TestBadIPVersion(t *testing.T) {
	b := packet.NewBuilder()
	frame := append([]byte(nil), b.BuildUDP4(sampleEth(), sampleIP(), packet.UDP{}, nil)...)
	frame[packet.EthernetHeaderLen] = 0x65 // version 6 in an IPv4 slot
	d := packet.NewDecoder()
	if _, err := d.Decode(frame); !errors.Is(err, packet.ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	var ip6 packet.IPv6
	ip6.TrafficClass = 0xAB
	ip6.FlowLabel = 0x12345
	ip6.NextHeader = packet.ProtoUDP
	ip6.HopLimit = 64
	ip6.Src[15] = 1
	ip6.Dst[15] = 2
	payload := []byte("sixsixsix")
	ip6.Length = uint16(packet.UDPHeaderLen + len(payload))

	buf := make([]byte, packet.EthernetHeaderLen+packet.IPv6HeaderLen+packet.UDPHeaderLen+len(payload))
	eth := sampleEth()
	eth.Type = packet.EtherTypeIPv6
	eth.Serialize(buf)
	ip6.Serialize(buf[packet.EthernetHeaderLen:])
	udp := packet.UDP{SrcPort: 9, DstPort: 10, Length: uint16(packet.UDPHeaderLen + len(payload))}
	udp.Serialize(buf[packet.EthernetHeaderLen+packet.IPv6HeaderLen:])
	copy(buf[packet.EthernetHeaderLen+packet.IPv6HeaderLen+packet.UDPHeaderLen:], payload)

	d := packet.NewDecoder()
	if _, err := d.Decode(buf); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !d.Has(packet.LayerIPv6) || !d.Has(packet.LayerUDP) {
		t.Fatal("missing layers")
	}
	if d.IP6.TrafficClass != 0xAB || d.IP6.FlowLabel != 0x12345 {
		t.Errorf("ip6 = %+v", d.IP6)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestFixupTransportChecksum(t *testing.T) {
	b := packet.NewBuilder()
	frame := append([]byte(nil), b.BuildTCP4(sampleEth(), sampleIP(), packet.TCP{SrcPort: 80, DstPort: 81}, []byte("abc"))...)
	// Corrupt the destination IP, then fix both checksums.
	frame[packet.EthernetHeaderLen+16] = 99
	if err := packet.FixupIPv4Checksum(frame); err != nil {
		t.Fatal(err)
	}
	if err := packet.FixupTransportChecksum(frame); err != nil {
		t.Fatal(err)
	}
	if !packet.VerifyIPv4Checksum(frame[packet.EthernetHeaderLen:]) {
		t.Error("IP checksum still invalid after fixup")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: the checksum of this sequence is 0xddf2
	// complemented.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := packet.Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
}

func TestAddrHelpers(t *testing.T) {
	a := packet.IPv4Addr{1, 2, 3, 4}
	if a.String() != "1.2.3.4" {
		t.Errorf("String = %q", a.String())
	}
	if packet.IPv4FromUint32(a.Uint32()) != a {
		t.Error("Uint32 round trip failed")
	}
	m := packet.MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC = %q", m.String())
	}
}

// Property: any UDP frame the builder produces decodes back to the same
// header fields and payload, regardless of payload size.
func TestPropertyBuildDecodeRoundTrip(t *testing.T) {
	b := packet.NewBuilder()
	d := packet.NewDecoder()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ip := sampleIP()
		ip.Src = packet.IPv4FromUint32(r.Uint32())
		ip.Dst = packet.IPv4FromUint32(r.Uint32())
		udp := packet.UDP{SrcPort: uint16(r.Intn(65536)), DstPort: uint16(r.Intn(65536))}
		payload := make([]byte, r.Intn(1200))
		r.Read(payload)
		frame := b.BuildUDP4(sampleEth(), ip, udp, payload)
		if _, err := d.Decode(frame); err != nil {
			return false
		}
		if d.IP4.Src != ip.Src || d.IP4.Dst != ip.Dst {
			return false
		}
		if d.UDP.SrcPort != udp.SrcPort || d.UDP.DstPort != udp.DstPort {
			return false
		}
		if len(payload) > 0 && !bytes.Equal(d.Payload, payload) {
			return false
		}
		return packet.VerifyIPv4Checksum(frame[packet.EthernetHeaderLen:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	d := packet.NewDecoder()
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = d.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
