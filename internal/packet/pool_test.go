package packet_test

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/traffic"
)

func TestDecoderPoolReuse(t *testing.T) {
	dp := packet.NewDecoderPool()
	frame := traffic.NewSynth(4, 1).Frame(0, 256)
	d := dp.Get()
	if _, err := d.Decode(frame); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !d.Has(packet.LayerIPv4) {
		t.Fatal("pooled decoder did not decode IPv4")
	}
	dp.Put(d)
	d2 := dp.Get()
	if _, err := d2.Decode(frame); err != nil {
		t.Fatalf("Decode after reuse: %v", err)
	}
	dp.Put(nil) // must not panic
}

func TestFramePoolSizes(t *testing.T) {
	fp := packet.NewFramePool()
	b := fp.Get(512)
	if len(b) != 512 || cap(b) < packet.MaxFrameSize {
		t.Fatalf("Get(512): len=%d cap=%d", len(b), cap(b))
	}
	fp.Put(b)

	big := fp.Get(packet.MaxFrameSize + 100)
	if len(big) != packet.MaxFrameSize+100 {
		t.Fatalf("oversize Get: len=%d", len(big))
	}
	fp.Put(make([]byte, 10)) // undersized: silently not pooled
	got := fp.Get(packet.MaxFrameSize)
	if cap(got) < packet.MaxFrameSize {
		t.Fatalf("undersized buffer leaked into pool: cap=%d", cap(got))
	}
}

func TestFlowHashConsistency(t *testing.T) {
	synth := traffic.NewSynth(8, 42)
	// Same flow, different sizes → same hash (headers determine it).
	h1 := packet.FlowHash(synth.Frame(3, 128))
	h2 := packet.FlowHash(synth.Frame(3, 1400))
	if h1 != h2 {
		t.Errorf("same flow hashed differently: %x vs %x", h1, h2)
	}
	// Distinct flows should spread: at least two distinct hashes over 8 flows.
	seen := map[uint64]bool{}
	for f := uint64(0); f < 8; f++ {
		seen[packet.FlowHash(synth.Frame(f, 256))] = true
	}
	if len(seen) < 2 {
		t.Errorf("flow hash does not spread: %d distinct values over 8 flows", len(seen))
	}
	// Both directions of a connection must hash identically (symmetric,
	// like flow.Key.SymmetricHash): canonical-key NFs require the whole
	// connection on one shard.
	b := packet.NewBuilder()
	fwd := b.BuildUDP4(
		packet.Ethernet{Type: packet.EtherTypeIPv4},
		packet.IPv4{Version: 4, TTL: 64, Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2}},
		packet.UDP{SrcPort: 5555, DstPort: 80}, []byte("fwd"))
	hf := packet.FlowHash(fwd)
	rev := b.BuildUDP4(
		packet.Ethernet{Type: packet.EtherTypeIPv4},
		packet.IPv4{Version: 4, TTL: 64, Src: packet.IPv4Addr{10, 0, 0, 2}, Dst: packet.IPv4Addr{10, 0, 0, 1}},
		packet.UDP{SrcPort: 80, DstPort: 5555}, []byte("rev"))
	if hr := packet.FlowHash(rev); hf != hr {
		t.Errorf("hash not symmetric: fwd %x, rev %x", hf, hr)
	}
	// Junk input collapses to shard 0, never panics.
	if packet.FlowHash(nil) != 0 || packet.FlowHash(make([]byte, 20)) != 0 {
		t.Error("short frames must hash to 0")
	}
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06 // EtherType ARP
	if packet.FlowHash(arp) != 0 {
		t.Error("non-IPv4 must hash to 0")
	}
}

// TestHotPathAllocs guards the batched dataplane's per-frame building
// blocks: decode into a reused decoder, frame pool round trips, and the
// shard hash must all be allocation-free in steady state.
func TestHotPathAllocs(t *testing.T) {
	frame := traffic.NewSynth(4, 1).Frame(1, 1024)
	d := packet.NewDecoder()
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := d.Decode(frame); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("Decode allocates %.1f/op, want 0", n)
	}
	fp := packet.NewFramePool()
	fp.Put(fp.Get(1024)) // warm the pool
	if n := testing.AllocsPerRun(1000, func() {
		b := fp.Get(1024)
		fp.Put(b)
	}); n > 0 {
		t.Errorf("FramePool Get+Put allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = packet.FlowHash(frame)
	}); n > 0 {
		t.Errorf("FlowHash allocates %.1f/op, want 0", n)
	}
}
